package msm

import (
	"math/big"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

func mustCurve(t testing.TB, name string) *curve.Curve {
	t.Helper()
	c, err := curve.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDigitsReconstruct(t *testing.T) {
	c := mustCurve(t, "BN254")
	for _, s := range []int{1, 4, 11, 13, 16, 23} {
		for _, k := range c.SampleScalars(20, 42) {
			digits := Digits(k, c.ScalarBits, s)
			want := k.ToBig()
			got := new(big.Int)
			for j := len(digits) - 1; j >= 0; j-- {
				got.Lsh(got, uint(s))
				got.Add(got, big.NewInt(int64(digits[j])))
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("s=%d: digits do not reconstruct scalar", s)
			}
		}
	}
}

func TestSignedDigitsReconstruct(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	for _, s := range []int{2, 4, 11, 16} {
		half := int64(1) << (s - 1)
		for _, k := range c.SampleScalars(20, 43) {
			digits := SignedDigits(k, c.ScalarBits, s)
			want := k.ToBig()
			got := new(big.Int)
			for j := len(digits) - 1; j >= 0; j-- {
				d := int64(digits[j])
				if d < -half+1 && d != -half || d > half {
					t.Fatalf("s=%d: digit %d out of range", s, d)
				}
				got.Lsh(got, uint(s))
				got.Add(got, big.NewInt(d))
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("s=%d: signed digits do not reconstruct scalar", s)
			}
		}
	}
}

func TestSignedDigitsEdge(t *testing.T) {
	// All-ones scalar forces carries through every window.
	w := 4
	k := bigint.New(w)
	for i := range k {
		k[i] = ^uint64(0)
	}
	for _, s := range []int{3, 8, 13} {
		digits := SignedDigits(k, 256, s)
		got := new(big.Int)
		for j := len(digits) - 1; j >= 0; j-- {
			got.Lsh(got, uint(s))
			got.Add(got, big.NewInt(int64(digits[j])))
		}
		if got.Cmp(k.ToBig()) != 0 {
			t.Fatalf("s=%d: carry chain broken", s)
		}
	}
}

func TestMSMMatchesReference(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-377", "BLS12-381"} {
		c := mustCurve(t, name)
		n := 64
		points := c.SamplePoints(n, 7)
		scalars := c.SampleScalars(n, 8)
		want := c.MSMReference(points, scalars)

		for _, cfg := range []Config{
			{WindowSize: 4, Workers: 1},
			{WindowSize: 13, Workers: 1},
			{WindowSize: 8, Workers: 4},
			{WindowSize: 4, Signed: true, Workers: 1},
			{WindowSize: 13, Signed: true, Workers: 8},
			{}, // heuristic everything
		} {
			got, err := MSM(c, points, scalars, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !c.EqualXYZZ(got, want) {
				t.Fatalf("%s cfg=%+v: MSM != reference", name, cfg)
			}
		}
	}
}

func TestMSMMNT4753(t *testing.T) {
	c := mustCurve(t, "MNT4753")
	n := 16
	points := c.SamplePoints(n, 9)
	scalars := c.SampleScalars(n, 10)
	want := c.MSMReference(points, scalars)
	got, err := MSM(c, points, scalars, Config{WindowSize: 11, Signed: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualXYZZ(got, want) {
		t.Fatal("753-bit MSM mismatch")
	}
}

func TestMSMEdgeCases(t *testing.T) {
	c := mustCurve(t, "BN254")
	// empty input
	got, err := MSM(c, nil, nil, Config{})
	if err != nil || !got.IsInf() {
		t.Fatal("empty MSM should be infinity")
	}
	// mismatched lengths
	if _, err := MSM(c, c.SamplePoints(2, 1), c.SampleScalars(3, 1), Config{}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	// all-zero scalars
	pts := c.SamplePoints(8, 2)
	zeros := make([]bigint.Nat, 8)
	for i := range zeros {
		zeros[i] = bigint.New(4)
	}
	got, err = MSM(c, pts, zeros, Config{WindowSize: 5, Workers: 2})
	if err != nil || !got.IsInf() {
		t.Fatal("zero-scalar MSM should be infinity")
	}
	// single point, scalar one
	one := bigint.New(4)
	one.SetUint64(1)
	got, err = MSM(c, pts[:1], []bigint.Nat{one}, Config{WindowSize: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantP := c.NewXYZZ()
	c.SetAffine(wantP, &pts[0])
	if !c.EqualXYZZ(got, wantP) {
		t.Fatal("1*P != P")
	}
}

func TestMSMDuplicatePoints(t *testing.T) {
	// Duplicate points land in the same bucket, exercising the PACC
	// doubling edge case inside bucket accumulation.
	c := mustCurve(t, "BN254")
	p := c.SamplePoints(1, 3)[0]
	points := []curve.PointAffine{p, p, p, p}
	one := bigint.New(4)
	one.SetUint64(5)
	scalars := []bigint.Nat{one, one, one, one}
	got, err := MSM(c, points, scalars, Config{WindowSize: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := c.MSMReference(points, scalars)
	if !c.EqualXYZZ(got, want) {
		t.Fatal("duplicate-point MSM mismatch")
	}
}

func TestHeuristicWindowSize(t *testing.T) {
	small := HeuristicWindowSize(1 << 10)
	big_ := HeuristicWindowSize(1 << 26)
	if small >= big_ {
		t.Fatalf("window size should grow with N: s(2^10)=%d s(2^26)=%d", small, big_)
	}
	if got := HeuristicWindowSize(1); got != 1 {
		t.Fatalf("HeuristicWindowSize(1) = %d", got)
	}
	if big_ < 15 || big_ > 24 {
		t.Fatalf("s(2^26) = %d looks wrong", big_)
	}
}

func BenchmarkMSMCPU(b *testing.B) {
	c := mustCurve(b, "BN254")
	for _, n := range []int{1 << 10, 1 << 14} {
		points := c.SamplePoints(n, 5)
		scalars := c.SampleScalars(n, 6)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MSM(c, points, scalars, Config{Signed: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	k := 0
	for 1<<k < n {
		k++
	}
	return "2^" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}
