package cluster_test

// End-to-end over real HTTP: worker provd services on loopback
// listeners, real cluster Agents registering and heartbeating, a real
// coordinator routing /v1/prove — plus the honest-degradation contract
// of the coordinator's healthz, the metrics surface, and the agent's
// re-registration loop.

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/service"
	"distmsm/internal/telemetry"
)

func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	_ = json.Unmarshal(raw, &out)
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	_ = json.Unmarshal(raw, &out)
	return resp.StatusCode, out
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterHTTPEndToEnd wires the full production topology in one
// process: two worker services behind loopback listeners, agents
// keeping their leases, a coordinator with a local verification
// backend, and a client proving over HTTP. One worker is then killed
// abruptly (agent stopped without deregistering, listener torn down)
// and the cluster must keep serving, report itself degraded, and
// count the lost node in its stats and metrics.
func TestClusterHTTPEndToEnd(t *testing.T) {
	check := clusterLeakCheck(t)
	const constraints = 64
	ref := newProvingService(t, 2, constraints)

	lease := 400 * time.Millisecond
	metrics := telemetry.NewRegistry()
	coord := cluster.NewCoordinator(cluster.Config{
		Local:           ref,
		Lease:           lease,
		SweepInterval:   50 * time.Millisecond,
		DefaultTimeout:  60 * time.Second,
		DispatchTimeout: 5 * time.Second,
		Metrics:         metrics,
	})
	cts := httptest.NewServer(coord.Handler())

	type worker struct {
		svc   *service.Service
		ts    *httptest.Server
		agent *cluster.Agent
	}
	workers := make([]worker, 2)
	for i := range workers {
		svc := newProvingService(t, 2, constraints)
		ts := httptest.NewServer(svc.Handler())
		agent, err := cluster.StartAgent(cluster.AgentConfig{
			Coordinator: cts.URL,
			NodeID:      fmt.Sprintf("w%d", i),
			Addr:        ts.URL,
			Circuits:    []string{"synthetic"},
			Workers:     svc.Workers(),
			Interval:    100 * time.Millisecond,
			Load: func() (int, int) {
				st := svc.Stats()
				return st.Queued, st.InFlight
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = worker{svc: svc, ts: ts, agent: agent}
	}
	waitFor(t, func() bool { return coord.AliveNodes() == 2 }, "both workers to register")

	// A healthy cluster answers ok and proves through a worker node.
	code, health := getJSON(t, cts.URL+"/v1/healthz")
	if code != http.StatusOK || health["status"] != "ok" || health["degraded"] != false {
		t.Fatalf("healthy healthz: code %d body %v", code, health)
	}
	code, out := postJSON(t, cts.URL+"/v1/prove", `{"circuit":"synthetic","seed":5}`)
	if code != http.StatusOK {
		t.Fatalf("prove: HTTP %d body %v", code, out)
	}
	proof, err := hex.DecodeString(out["proof"].(string))
	if err != nil {
		t.Fatalf("proof not hex: %v", err)
	}
	refProof, err := ref.ProveLocal(context.Background(), "synthetic", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(proof, refProof) {
		t.Fatal("HTTP-proved proof differs from the local reference")
	}

	// Malformed requests are rejected at the edge.
	if code, _ := postJSON(t, cts.URL+"/v1/prove", `{"circuit":""}`); code != http.StatusBadRequest {
		t.Fatalf("empty circuit: HTTP %d, want 400", code)
	}

	// Kill worker 0 the crash way: no deregister, heartbeats just stop,
	// connections die. The lease sweeper must notice on its own.
	workers[0].agent.Kill()
	workers[0].ts.CloseClientConnections()
	workers[0].ts.Close()
	waitFor(t, func() bool { return coord.AliveNodes() == 1 }, "the crashed worker's lease to expire")

	code, health = getJSON(t, cts.URL+"/v1/healthz")
	if code != http.StatusOK || health["status"] != "degraded" || health["degraded"] != true {
		t.Fatalf("degraded healthz: code %d body %v — a cluster that can still serve must stay 200", code, health)
	}
	// The cluster still proves after the crash.
	if code, out := postJSON(t, cts.URL+"/v1/prove", `{"circuit":"synthetic","seed":6}`); code != http.StatusOK {
		t.Fatalf("prove after crash: HTTP %d body %v", code, out)
	}

	// The operator's node table distinguishes the crashed node from the
	// survivor — and, unlike healthz, answers 200 regardless.
	code, table := getJSON(t, cts.URL+"/v1/cluster/nodes")
	if code != http.StatusOK {
		t.Fatalf("nodes: HTTP %d, want 200", code)
	}
	states := map[string]int{}
	for _, raw := range table["nodes"].([]any) {
		states[raw.(map[string]any)["state"].(string)]++
	}
	if states["alive"] != 1 || states["lost"] != 1 {
		t.Fatalf("node states %v, want 1 alive + 1 lost", states)
	}

	// The node-level metrics are on the wire.
	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"distmsm_cluster_registrations_total",
		"distmsm_cluster_lost_nodes_total",
		"distmsm_cluster_nodes{",
		"distmsm_cluster_dispatch_seconds",
	} {
		if !strings.Contains(string(raw), metric) {
			t.Errorf("metrics exposition missing %s", metric)
		}
	}
	if st := coord.Stats(); st.LostNodes != 1 {
		t.Errorf("lost nodes %d, want 1", st.LostNodes)
	}

	// Graceful teardown: the survivor deregisters (draining, not lost),
	// and the local fallback keeps the cluster answering 200.
	workers[1].agent.Stop()
	if code, _ := getJSON(t, cts.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after graceful drain: HTTP %d, want 200 via local fallback", code)
	}
	workers[1].ts.Close()
	cts.Close()
	coord.Close()
	for _, w := range workers {
		clusterShutdown(t, w.svc)
	}
	clusterShutdown(t, ref)
	check()
}

// TestAgentReregister drives the agent's recovery loop against a stub
// coordinator that answers every heartbeat with Reregister — the shape
// of a coordinator that restarted and lost its node table. The agent
// must register again on its own, with its sequence numbers reset.
func TestAgentReregister(t *testing.T) {
	check := clusterLeakCheck(t)
	var registrations atomic.Int64
	var rejected atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		registrations.Add(1)
		_ = json.NewEncoder(w).Encode(cluster.RegisterResponse{LeaseMS: 300, HeartbeatMS: 50})
	})
	mux.HandleFunc("/v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		// The first two heartbeats are refused like an amnesiac
		// coordinator would; later ones are accepted.
		if rejected.Add(1) <= 2 {
			_ = json.NewEncoder(w).Encode(cluster.HeartbeatResponse{OK: false, Reregister: true})
			return
		}
		_ = json.NewEncoder(w).Encode(cluster.HeartbeatResponse{OK: true})
	})
	mux.HandleFunc("/v1/cluster/deregister", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"ok": true})
	})
	ts := httptest.NewServer(mux)

	agent, err := cluster.StartAgent(cluster.AgentConfig{
		Coordinator: ts.URL,
		NodeID:      "amnesia",
		Addr:        "http://127.0.0.1:1",
		Interval:    30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return registrations.Load() >= 3 }, "the agent to re-register after Reregister answers")
	agent.Stop()
	ts.Close()
	check()
}
