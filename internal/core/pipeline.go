package core

import (
	"fmt"

	"distmsm/internal/gpusim"
)

// EstimatePipeline prices a back-to-back sequence of `count` identical
// MSMs (one Groth16 proof issues several, §3.2.3: "proof generation
// involves several MSM calculations ... bucket-reduce can be efficiently
// pipelined"). The CPU bucket-reduce of MSM i overlaps the GPU phases of
// MSM i+1, so steady-state throughput is governed by the slower of the
// two pipeline stages rather than their sum.
func (p *Plan) EstimatePipeline(count int) (gpusim.Cost, error) {
	if count < 1 {
		return gpusim.Cost{}, fmt.Errorf("core: pipeline needs count >= 1, got %d", count)
	}
	single := p.EstimateCost()
	if count == 1 {
		return single, nil
	}
	gpuStage := single.Scatter + single.BucketSum + single.Transfer
	cpuStage := single.BucketReduce + single.WindowReduce

	out := single
	if !single.ReduceOnCPU {
		// GPU reduce serialises with the GPU phases — no overlap.
		out.Scatter *= float64(count)
		out.BucketSum *= float64(count)
		out.BucketReduce *= float64(count)
		out.WindowReduce *= float64(count)
		out.Transfer *= float64(count)
		return out, nil
	}
	// Software pipeline: fill (one GPU stage) + count×max(stages) steady
	// state + drain (one CPU stage).
	bottleneck := gpuStage
	if cpuStage > bottleneck {
		bottleneck = cpuStage
	}
	total := gpuStage + float64(count-1)*bottleneck + cpuStage
	// Attribute the pipelined total proportionally for reporting.
	scale := total / (float64(count) * (gpuStage + cpuStage))
	out.Scatter = single.Scatter * float64(count) * scale
	out.BucketSum = single.BucketSum * float64(count) * scale
	out.BucketReduce = single.BucketReduce * float64(count) * scale
	out.WindowReduce = single.WindowReduce * float64(count) * scale
	out.Transfer = single.Transfer * float64(count) * scale
	out.ReduceOnCPU = false // already folded into the pipelined phases
	return out, nil
}
