package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// funcClient adapts a function to WorkerClient for unit tests.
type funcClient func(ctx context.Context, req DispatchRequest) ([]byte, error)

func (f funcClient) Dispatch(ctx context.Context, req DispatchRequest) ([]byte, error) {
	return f(ctx, req)
}

// blockingClient blocks every dispatch until its context is cancelled —
// a partitioned node.
func blockingClient() funcClient {
	return func(ctx context.Context, req DispatchRequest) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// proofClient answers every dispatch with a fixed proof.
func proofClient(proof []byte) funcClient {
	return func(ctx context.Context, req DispatchRequest) ([]byte, error) {
		return append([]byte(nil), proof...), nil
	}
}

// newTestCoordinator builds a coordinator whose DialWorker resolves node
// addresses through the given client table, and closes it with the test.
func newTestCoordinator(t *testing.T, cfg Config, clients map[string]WorkerClient) *Coordinator {
	t.Helper()
	cfg.DialWorker = func(addr string) WorkerClient { return clients[addr] }
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	return c
}

func mustRegister(t *testing.T, c *Coordinator, id string) {
	t.Helper()
	if _, err := c.Register(RegisterRequest{NodeID: id, Addr: id}); err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
}

// fakeLocal is a LocalBackend for unit tests: it proves a fixed byte
// string and accepts exactly that byte string.
type fakeLocal struct {
	proof  []byte
	proves atomic.Int64
}

func (f *fakeLocal) ProveLocal(ctx context.Context, circuit string, seed int64) ([]byte, error) {
	f.proves.Add(1)
	return append([]byte(nil), f.proof...), nil
}

func (f *fakeLocal) VerifyProof(circuit string, seed int64, proof []byte) (bool, error) {
	return bytes.Equal(proof, f.proof), nil
}

// TestRegisterHeartbeatDeregister covers the node-table lifecycle:
// registration, monotone heartbeat sequence numbers, the
// unknown-heartbeat Reregister answer (which must NOT grow the table),
// graceful deregistration and the MaxNodes bound.
func TestRegisterHeartbeatDeregister(t *testing.T) {
	c := newTestCoordinator(t, Config{MaxNodes: 2}, map[string]WorkerClient{
		"n1": proofClient([]byte("p1")),
		"n2": proofClient([]byte("p2")),
	})
	mustRegister(t, c, "n1")

	if resp, err := c.Heartbeat(HeartbeatRequest{NodeID: "n1", Seq: 1}); err != nil || !resp.OK {
		t.Fatalf("heartbeat 1: resp %+v err %v", resp, err)
	}
	// The same sequence number again is a delayed duplicate.
	if _, err := c.Heartbeat(HeartbeatRequest{NodeID: "n1", Seq: 1}); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("stale heartbeat error = %v, want ErrStaleLease", err)
	}
	// A heartbeat from a node the coordinator has never seen asks it to
	// re-register and must not create a table entry.
	resp, err := c.Heartbeat(HeartbeatRequest{NodeID: "ghost", Seq: 1})
	if err != nil || resp.OK || !resp.Reregister {
		t.Fatalf("unknown heartbeat: resp %+v err %v, want Reregister", resp, err)
	}
	if n := len(c.Snapshot()); n != 1 {
		t.Fatalf("unknown heartbeat grew the node table to %d entries", n)
	}

	if err := c.Deregister(DeregisterRequest{NodeID: "ghost"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("deregister unknown = %v, want ErrUnknownNode", err)
	}
	if err := c.Deregister(DeregisterRequest{NodeID: "n1"}); err != nil {
		t.Fatalf("deregister n1: %v", err)
	}
	if snap := c.Snapshot(); snap[0].State != "draining" {
		t.Fatalf("n1 state %q after deregister, want draining", snap[0].State)
	}

	// The table is bounded: with MaxNodes 2 a third distinct node is
	// refused, but a known node may always re-register (and revives from
	// draining).
	mustRegister(t, c, "n2")
	if _, err := c.Register(RegisterRequest{NodeID: "n3", Addr: "n3"}); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("register beyond MaxNodes = %v, want ErrTooManyNodes", err)
	}
	mustRegister(t, c, "n1")
	if snap := c.Snapshot(); snap[0].State != "alive" {
		t.Fatalf("n1 state %q after re-register, want alive", snap[0].State)
	}

	st := c.Stats()
	if st.Registrations != 3 || st.Heartbeats != 1 || st.StaleHeartbeats != 1 {
		t.Fatalf("stats %+v, want 3 registrations, 1 heartbeat, 1 stale", st)
	}
}

// TestLeaseExpiryRedispatch is the failover core: a job dispatched to a
// node whose lease then expires must be cancelled and re-dispatched to
// a survivor, and the lost node's bookkeeping must say so.
func TestLeaseExpiryRedispatch(t *testing.T) {
	lease := time.Hour // expiry driven manually; the sweeper never fires
	c := newTestCoordinator(t, Config{
		Lease:    lease,
		HedgeMin: time.Hour, // hedging disabled: this test wants the redispatch path
	}, map[string]WorkerClient{
		"a": blockingClient(),
		"b": proofClient([]byte("proof-b")),
	})
	mustRegister(t, c, "a")
	mustRegister(t, c, "b")

	type res struct {
		proof []byte
		err   error
	}
	done := make(chan res, 1)
	go func() {
		proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 7, Timeout: 30 * time.Second})
		done <- res{proof, err}
	}()

	// Wait until the job is in flight on node a (registration order makes
	// a the first pick), then expire a's lease.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := c.Snapshot(); snap[0].InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never became in-flight on node a")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.mu.Lock()
	c.nodes["a"].lastHB = time.Now().Add(-2 * lease)
	c.mu.Unlock()
	c.expireLeases(time.Now())

	r := <-done
	if r.err != nil {
		t.Fatalf("prove after lease expiry: %v", r.err)
	}
	if !bytes.Equal(r.proof, []byte("proof-b")) {
		t.Fatalf("proof %q, want survivor b's", r.proof)
	}
	st := c.Stats()
	if st.LostNodes != 1 || st.LostJobsRecovered != 1 || st.Redispatches != 1 {
		t.Fatalf("stats %+v, want 1 lost node, 1 recovered job, 1 redispatch", st)
	}
	if snap := c.Snapshot(); snap[0].State != "lost" {
		t.Fatalf("node a state %q, want lost", snap[0].State)
	}
	// A heartbeat revives a lost node.
	if resp, err := c.Heartbeat(HeartbeatRequest{NodeID: "a", Seq: 1}); err != nil || !resp.OK {
		t.Fatalf("reviving heartbeat: resp %+v err %v", resp, err)
	}
	if snap := c.Snapshot(); snap[0].State != "alive" {
		t.Fatalf("node a state %q after reviving heartbeat, want alive", snap[0].State)
	}
}

// TestHedgedDispatch: a straggling primary gets a speculative duplicate
// after the hedge delay, the fast hedge wins, and the straggler's
// dispatch context is cancelled.
func TestHedgedDispatch(t *testing.T) {
	primaryCancelled := make(chan struct{})
	clients := map[string]WorkerClient{
		"slow": funcClient(func(ctx context.Context, req DispatchRequest) ([]byte, error) {
			<-ctx.Done()
			close(primaryCancelled)
			return nil, ctx.Err()
		}),
		"fast": proofClient([]byte("proof-fast")),
	}
	c := newTestCoordinator(t, Config{HedgeMin: 20 * time.Millisecond}, clients)
	mustRegister(t, c, "slow")
	mustRegister(t, c, "fast")

	proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 1, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("hedged prove: %v", err)
	}
	if !bytes.Equal(proof, []byte("proof-fast")) {
		t.Fatalf("proof %q, want the hedge's", proof)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("the losing primary dispatch was never cancelled")
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats %+v, want 1 hedge, 1 hedge win", st)
	}
}

// TestExpiredDeadlineFailsFast is the regression test for the
// dispatch-deadline bug: when the job deadline has already passed at
// launch time, dispatchHedged used to ship the request with
// TimeoutMS = 0 — which the wire defines as "use the worker default" —
// handing an abandoned job a fresh worker-default timeout on the node.
// The attempt must instead fail locally without a single client
// dispatch, and must not charge the node's breaker.
func TestExpiredDeadlineFailsFast(t *testing.T) {
	var dispatches atomic.Int64
	var zeroTimeout atomic.Bool
	clients := map[string]WorkerClient{
		"n1": funcClient(func(ctx context.Context, req DispatchRequest) ([]byte, error) {
			dispatches.Add(1)
			if req.TimeoutMS == 0 {
				zeroTimeout.Store(true)
			}
			return []byte("proof"), nil
		}),
	}
	c := newTestCoordinator(t, Config{HedgeMin: time.Hour}, clients)
	mustRegister(t, c, "n1")

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := c.Prove(ctx, ProveRequest{Circuit: "synthetic", Seed: 1, Timeout: 10 * time.Second})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline prove error = %v, want DeadlineExceeded", err)
	}
	if n := dispatches.Load(); n != 0 {
		t.Fatalf("expired-deadline job reached the worker %d times, want 0", n)
	}
	if zeroTimeout.Load() {
		t.Fatal("a dispatch went out with TimeoutMS = 0 (worker-default timeout)")
	}
	// The local fail-fast is not the node's fault: its breaker must stay
	// closed and routable for the next (healthy) job.
	proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 2, Timeout: 10 * time.Second})
	if err != nil || !bytes.Equal(proof, []byte("proof")) {
		t.Fatalf("post-expiry prove: proof %q err %v", proof, err)
	}
}

// TestNodeBreakerQuarantine drives a node's breaker through the
// coordinator: repeated dispatch failures quarantine it, routing skips
// it while open, and a successful half-open probe re-closes it.
func TestNodeBreakerQuarantine(t *testing.T) {
	var healthy atomic.Bool
	var aDispatches atomic.Int64
	clients := map[string]WorkerClient{
		"a": funcClient(func(ctx context.Context, req DispatchRequest) ([]byte, error) {
			aDispatches.Add(1)
			if healthy.Load() {
				return []byte("proof-a"), nil
			}
			return nil, errors.New("injected dispatch failure")
		}),
		"b": proofClient([]byte("proof-b")),
	}
	cooldown := 300 * time.Millisecond
	c := newTestCoordinator(t, Config{
		Breaker:  BreakerConfig{FailThreshold: 2, Cooldown: cooldown},
		HedgeMin: time.Hour,
	}, clients)
	mustRegister(t, c, "a")
	mustRegister(t, c, "b")

	// Distinct circuit names per job dodge the circuit-affinity fast path
	// so the least-loaded scan (registration order: a first) is exercised
	// every time.
	prove := func(i int) ([]byte, error) {
		return c.Prove(context.Background(), ProveRequest{Circuit: fmt.Sprintf("c%d", i), Seed: int64(i), Timeout: 10 * time.Second})
	}
	for i := 1; i <= 2; i++ { // two failures on a → quarantined; b absorbs both jobs
		proof, err := prove(i)
		if err != nil || !bytes.Equal(proof, []byte("proof-b")) {
			t.Fatalf("job %d: proof %q err %v, want failover to b", i, proof, err)
		}
	}
	if snap := c.Snapshot(); snap[0].BreakerS != "open" {
		t.Fatalf("node a breaker %q after %d failures, want open", snap[0].BreakerS, 2)
	}
	if st := c.Stats(); st.BreakerTrips != 1 {
		t.Fatalf("breaker trips %d, want 1", st.BreakerTrips)
	}
	// While quarantined, routing never offers a the job.
	before := aDispatches.Load()
	if proof, err := prove(3); err != nil || !bytes.Equal(proof, []byte("proof-b")) {
		t.Fatalf("job during quarantine: proof %q err %v", proof, err)
	}
	if got := aDispatches.Load(); got != before {
		t.Fatalf("quarantined node a was dispatched to (%d → %d)", before, got)
	}
	// After the cooldown a healthy probe re-closes the breaker.
	time.Sleep(cooldown + 20*time.Millisecond)
	healthy.Store(true)
	if proof, err := prove(4); err != nil || !bytes.Equal(proof, []byte("proof-a")) {
		t.Fatalf("probe job: proof %q err %v, want node a's", proof, err)
	}
	if snap := c.Snapshot(); snap[0].BreakerS != "closed" {
		t.Fatalf("node a breaker %q after successful probe, want closed", snap[0].BreakerS)
	}
}

// TestHedgeLoserReleasesProbeSlot is the regression test for a breaker
// wedge: a half-open probe dispatch that loses the hedge race is
// cancelled before any outcome is recorded, which used to leave the
// breaker HalfOpen with its single probe slot consumed forever — the
// slow-but-recovering node was silently excluded from routing for good.
// The abandoned probe must release its slot so a later job can probe
// the node and re-close its breaker.
func TestHedgeLoserReleasesProbeSlot(t *testing.T) {
	const (
		aFail = iota // answer immediately with an error
		aHang        // block until the dispatch context dies
		aOK          // answer with a proof
	)
	var mode atomic.Int32
	clients := map[string]WorkerClient{
		"a": funcClient(func(ctx context.Context, req DispatchRequest) ([]byte, error) {
			switch mode.Load() {
			case aFail:
				return nil, errors.New("injected dispatch failure")
			case aHang:
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return []byte("proof-a"), nil
		}),
		"b": proofClient([]byte("proof-b")),
	}
	cooldown := 50 * time.Millisecond
	c := newTestCoordinator(t, Config{
		Breaker:  BreakerConfig{FailThreshold: 1, Cooldown: cooldown},
		HedgeMin: 20 * time.Millisecond,
	}, clients)
	mustRegister(t, c, "a")
	mustRegister(t, c, "b")

	// Distinct circuit names dodge the circuit-affinity fast path so the
	// least-loaded scan (registration order: a first) runs every time.
	prove := func(i int) ([]byte, error) {
		return c.Prove(context.Background(), ProveRequest{Circuit: fmt.Sprintf("c%d", i), Seed: int64(i), Timeout: 10 * time.Second})
	}

	// One failure trips a's breaker open; the job fails over to b.
	if proof, err := prove(1); err != nil || !bytes.Equal(proof, []byte("proof-b")) {
		t.Fatalf("trip job: proof %q err %v, want failover to b", proof, err)
	}
	if snap := c.Snapshot(); snap[0].BreakerS != "open" {
		t.Fatalf("node a breaker %q, want open", snap[0].BreakerS)
	}

	// Past the cooldown, a is offered a half-open probe — which hangs, so
	// the hedge fires, b wins, and the probe is cancelled as the loser.
	time.Sleep(cooldown + 20*time.Millisecond)
	mode.Store(aHang)
	if proof, err := prove(2); err != nil || !bytes.Equal(proof, []byte("proof-b")) {
		t.Fatalf("hedged probe job: proof %q err %v, want the hedge's", proof, err)
	}
	if st := c.Stats(); st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats %+v, want 1 hedge, 1 hedge win", st)
	}

	// The cancelled probe goroutine drops its in-flight entry
	// asynchronously; wait for it so the least-loaded scan sees a tie and
	// picks a (registration order) rather than b.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap := c.Snapshot(); snap[0].InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the losing probe dispatch never unwound")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The cancelled probe must have released its slot: the next job
	// probes a again, and the now-healthy node re-closes its breaker.
	mode.Store(aOK)
	proof, err := prove(3)
	if err != nil || !bytes.Equal(proof, []byte("proof-a")) {
		t.Fatalf("re-probe job: proof %q err %v, want recovered node a's (probe slot leaked?)", proof, err)
	}
	if snap := c.Snapshot(); snap[0].BreakerS != "closed" {
		t.Fatalf("node a breaker %q after successful re-probe, want closed", snap[0].BreakerS)
	}
}

// TestDegradeToLocal: with every node gone the coordinator proves
// locally; without a local backend it reports ErrNoNodes.
func TestDegradeToLocal(t *testing.T) {
	local := &fakeLocal{proof: []byte("proof-local")}
	c := newTestCoordinator(t, Config{Local: local}, nil)
	proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 9, Timeout: 10 * time.Second})
	if err != nil || !bytes.Equal(proof, []byte("proof-local")) {
		t.Fatalf("degraded prove: proof %q err %v", proof, err)
	}
	if st := c.Stats(); st.LocalFallbacks != 1 {
		t.Fatalf("local fallbacks %d, want 1", st.LocalFallbacks)
	}

	bare := newTestCoordinator(t, Config{}, nil)
	if _, err := bare.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 9, Timeout: time.Second}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("remote-only empty cluster = %v, want ErrNoNodes", err)
	}
}

// queueFullErr mimics the service's admission rejection: an error with
// a structural RetryAfterHint, as the coordinator detects it.
type queueFullErr struct{ after time.Duration }

func (e *queueFullErr) Error() string                 { return "test: queue full" }
func (e *queueFullErr) RetryAfterHint() time.Duration { return e.after }

// busyLocal rejects the first N proves with a retryable queue-full
// error, then proves.
type busyLocal struct {
	fakeLocal
	rejects atomic.Int64
}

func (b *busyLocal) ProveLocal(ctx context.Context, circuit string, seed int64) ([]byte, error) {
	if b.rejects.Add(-1) >= 0 {
		return nil, fmt.Errorf("submit: %w", &queueFullErr{after: time.Millisecond})
	}
	return b.fakeLocal.ProveLocal(ctx, circuit, seed)
}

// TestDegradeToLocalBackpressure: a local admission rejection carrying
// a retry-after hint is backpressure, not failure — the degraded job
// waits its turn and completes; only the job's own deadline ends the
// wait.
func TestDegradeToLocalBackpressure(t *testing.T) {
	local := &busyLocal{fakeLocal: fakeLocal{proof: []byte("proof-local")}}
	local.rejects.Store(2)
	c := newTestCoordinator(t, Config{Local: local}, nil)
	proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 9, Timeout: 10 * time.Second})
	if err != nil || !bytes.Equal(proof, []byte("proof-local")) {
		t.Fatalf("backpressured degraded prove: proof %q err %v", proof, err)
	}
	if got := local.proves.Load(); got != 1 {
		t.Fatalf("local proves %d, want 1 after two queue-full retries", got)
	}
	if st := c.Stats(); st.LocalFallbacks != 1 || st.JobsCompleted != 1 {
		t.Fatalf("stats %+v, want one fallback counted once and one completion", st)
	}

	// A queue that never admits ends at the job deadline, not in a spin.
	never := &busyLocal{fakeLocal: fakeLocal{proof: []byte("p")}}
	never.rejects.Store(1 << 30)
	c2 := newTestCoordinator(t, Config{Local: never}, nil)
	_, err = c2.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 9, Timeout: 80 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("never-admitting local queue = %v, want DeadlineExceeded", err)
	}
}

// TestCorruptResponseRedispatch: a node returning garbage is caught by
// proof verification, charged a breaker failure, and the job
// re-dispatches to an honest node.
func TestCorruptResponseRedispatch(t *testing.T) {
	good := []byte("proof-good")
	local := &fakeLocal{proof: good}
	clients := map[string]WorkerClient{
		"liar":   proofClient([]byte("proof-garbage")),
		"honest": proofClient(good),
	}
	c := newTestCoordinator(t, Config{Local: local, HedgeMin: time.Hour}, clients)
	mustRegister(t, c, "liar")
	mustRegister(t, c, "honest")

	proof, err := c.Prove(context.Background(), ProveRequest{Circuit: "synthetic", Seed: 3, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if !bytes.Equal(proof, good) {
		t.Fatalf("proof %q, want the honest node's", proof)
	}
	st := c.Stats()
	if st.CorruptProofs != 1 {
		t.Fatalf("corrupt proofs %d, want 1", st.CorruptProofs)
	}
	if local.proves.Load() != 0 {
		t.Fatal("the job degraded to local instead of re-dispatching to the honest node")
	}
	if snap := c.Snapshot(); snap[0].Failures != 1 {
		t.Fatalf("liar failures %d, want the corrupt response charged", snap[0].Failures)
	}
}

// TestCoordinatorClose: a closed coordinator refuses new work and new
// registrations, and Close is idempotent.
func TestCoordinatorClose(t *testing.T) {
	c := NewCoordinator(Config{})
	c.Close()
	c.Close()
	if _, err := c.Prove(context.Background(), ProveRequest{Circuit: "x", Seed: 1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("prove after close = %v, want ErrShuttingDown", err)
	}
	if _, err := c.Register(RegisterRequest{NodeID: "n", Addr: "n"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("register after close = %v, want ErrShuttingDown", err)
	}
}

// TestNodeFaultInjectorDeterminism: decisions are pure in (seed, node,
// seq) — same inputs, same fault pattern, independent of call order.
func TestNodeFaultInjectorDeterminism(t *testing.T) {
	cfg := NodeFaultConfig{Seed: 42, Crash: 0.05, Partition: 0.1, Slow: 0.1, Corrupt: 0.1}
	a, err := NewNodeInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNodeInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[NodeFaultClass]int{}
	for node := 0; node < 3; node++ {
		for seq := uint64(0); seq < 200; seq++ {
			da, db := a.Decide(node, seq), b.Decide(node, seq)
			if da != db {
				t.Fatalf("node %d seq %d: %v vs %v", node, seq, da, db)
			}
			classes[da]++
		}
	}
	// With 600 draws and ~35% total fault probability, every class should
	// have fired at least once — the chaos test is actually injecting.
	for _, cl := range []NodeFaultClass{NodeFaultCrash, NodeFaultPartition, NodeFaultSlow, NodeFaultCorrupt} {
		if classes[cl] == 0 {
			t.Fatalf("fault class %v never drawn in 600 decisions", cl)
		}
	}
	if _, err := NewNodeInjector(NodeFaultConfig{Crash: 0.9, Partition: 0.9}); !errors.Is(err, ErrBadNodeFaultConfig) {
		t.Fatalf("over-unity probabilities = %v, want ErrBadNodeFaultConfig", err)
	}
}
