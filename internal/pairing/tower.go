// Package pairing implements a bilinear pairing on BN254 from scratch:
// the extension-field tower Fp2 = Fp[u]/(u²+1), Fp6 = Fp2[v]/(v³−ξ) with
// ξ = 9+u, Fp12 = Fp6[w]/(w²−v); the sextic-twist group G2; a Tate-style
// Miller loop; and the final exponentiation. It is the substrate for the
// Groth16 prover/verifier used in the paper's end-to-end evaluation
// (Table 4). Correctness rests on algebraic self-tests (field axioms,
// bilinearity e(aP, bQ) = e(P,Q)^{ab}, non-degeneracy) rather than
// external vectors, since the build is offline.
package pairing

import (
	"math/big"

	"distmsm/internal/field"
)

// E2 is an element of Fp2 = Fp[u]/(u²+1): A0 + A1·u.
type E2 struct{ A0, A1 field.Element }

// E6 is an element of Fp6 = Fp2[v]/(v³−ξ): C0 + C1·v + C2·v².
type E6 struct{ C0, C1, C2 E2 }

// E12 is an element of Fp12 = Fp6[w]/(w²−v): D0 + D1·w.
type E12 struct{ D0, D1 E6 }

// Tower provides arithmetic for the BN254 extension tower.
type Tower struct {
	F *field.Field // the base field Fp
}

// NewTower wraps the base field.
func NewTower(f *field.Field) *Tower { return &Tower{F: f} }

// ---------- Fp2 ----------

// E2Zero returns a fresh zero.
func (t *Tower) E2Zero() E2 { return E2{t.F.Zero(), t.F.Zero()} }

// E2One returns a fresh one.
func (t *Tower) E2One() E2 { return E2{t.F.One(), t.F.Zero()} }

// E2Set copies y into z.
func (t *Tower) E2Set(z *E2, y *E2) { z.A0.Set(y.A0); z.A1.Set(y.A1) }

// E2IsZero reports z == 0.
func (t *Tower) E2IsZero(z *E2) bool { return z.A0.IsZero() && z.A1.IsZero() }

// E2Equal reports x == y.
func (t *Tower) E2Equal(x, y *E2) bool { return x.A0.Equal(y.A0) && x.A1.Equal(y.A1) }

// E2Add sets z = x + y.
func (t *Tower) E2Add(z, x, y *E2) { t.F.Add(z.A0, x.A0, y.A0); t.F.Add(z.A1, x.A1, y.A1) }

// E2Sub sets z = x - y.
func (t *Tower) E2Sub(z, x, y *E2) { t.F.Sub(z.A0, x.A0, y.A0); t.F.Sub(z.A1, x.A1, y.A1) }

// E2Neg sets z = -x.
func (t *Tower) E2Neg(z, x *E2) { t.F.Neg(z.A0, x.A0); t.F.Neg(z.A1, x.A1) }

// E2Double sets z = 2x.
func (t *Tower) E2Double(z, x *E2) { t.F.Double(z.A0, x.A0); t.F.Double(z.A1, x.A1) }

// E2Mul sets z = x·y (z may alias x or y).
func (t *Tower) E2Mul(z, x, y *E2) {
	f := t.F
	t0, t1, t2 := f.NewElement(), f.NewElement(), f.NewElement()
	f.Mul(t0, x.A0, y.A0) // a0b0
	f.Mul(t1, x.A1, y.A1) // a1b1
	f.Mul(t2, x.A0, y.A1)
	tmp := f.NewElement()
	f.Mul(tmp, x.A1, y.A0)
	f.Add(t2, t2, tmp) // a0b1 + a1b0
	f.Sub(z.A0, t0, t1)
	z.A1.Set(t2)
}

// E2Square sets z = x² (z may alias x).
func (t *Tower) E2Square(z, x *E2) {
	f := t.F
	sum, diff, prod := f.NewElement(), f.NewElement(), f.NewElement()
	f.Add(sum, x.A0, x.A1)
	f.Sub(diff, x.A0, x.A1)
	f.Mul(prod, x.A0, x.A1)
	f.Mul(z.A0, sum, diff) // a0² - a1²
	f.Double(z.A1, prod)   // 2a0a1
}

// E2MulByFp scales both coordinates by an Fp element.
func (t *Tower) E2MulByFp(z, x *E2, c field.Element) {
	t.F.Mul(z.A0, x.A0, c)
	t.F.Mul(z.A1, x.A1, c)
}

// E2MulByXi multiplies by the sextic non-residue ξ = 9 + u:
// (9a0 − a1) + (a0 + 9a1)u.
func (t *Tower) E2MulByXi(z, x *E2) {
	f := t.F
	nine := f.FromUint64(9)
	t0, t1 := f.NewElement(), f.NewElement()
	f.Mul(t0, x.A0, nine)
	f.Sub(t0, t0, x.A1)
	f.Mul(t1, x.A1, nine)
	f.Add(t1, t1, x.A0)
	z.A0.Set(t0)
	z.A1.Set(t1)
}

// E2Inv sets z = x⁻¹ = (a0 − a1·u)/(a0² + a1²).
func (t *Tower) E2Inv(z, x *E2) {
	f := t.F
	n := f.NewElement()
	tmp := f.NewElement()
	f.Square(n, x.A0)
	f.Square(tmp, x.A1)
	f.Add(n, n, tmp)
	f.Inv(n, n)
	f.Mul(z.A0, x.A0, n)
	f.Neg(tmp, x.A1)
	f.Mul(z.A1, tmp, n)
}

// E2Clone returns an independent copy.
func (t *Tower) E2Clone(x *E2) E2 { return E2{x.A0.Clone(), x.A1.Clone()} }

// ---------- Fp6 ----------

// E6Zero returns a fresh zero.
func (t *Tower) E6Zero() E6 { return E6{t.E2Zero(), t.E2Zero(), t.E2Zero()} }

// E6One returns a fresh one.
func (t *Tower) E6One() E6 { return E6{t.E2One(), t.E2Zero(), t.E2Zero()} }

// E6Set copies y into z.
func (t *Tower) E6Set(z, y *E6) { t.E2Set(&z.C0, &y.C0); t.E2Set(&z.C1, &y.C1); t.E2Set(&z.C2, &y.C2) }

// E6IsZero reports z == 0.
func (t *Tower) E6IsZero(z *E6) bool {
	return t.E2IsZero(&z.C0) && t.E2IsZero(&z.C1) && t.E2IsZero(&z.C2)
}

// E6Equal reports x == y.
func (t *Tower) E6Equal(x, y *E6) bool {
	return t.E2Equal(&x.C0, &y.C0) && t.E2Equal(&x.C1, &y.C1) && t.E2Equal(&x.C2, &y.C2)
}

// E6Add sets z = x + y.
func (t *Tower) E6Add(z, x, y *E6) {
	t.E2Add(&z.C0, &x.C0, &y.C0)
	t.E2Add(&z.C1, &x.C1, &y.C1)
	t.E2Add(&z.C2, &x.C2, &y.C2)
}

// E6Sub sets z = x - y.
func (t *Tower) E6Sub(z, x, y *E6) {
	t.E2Sub(&z.C0, &x.C0, &y.C0)
	t.E2Sub(&z.C1, &x.C1, &y.C1)
	t.E2Sub(&z.C2, &x.C2, &y.C2)
}

// E6Neg sets z = -x.
func (t *Tower) E6Neg(z, x *E6) {
	t.E2Neg(&z.C0, &x.C0)
	t.E2Neg(&z.C1, &x.C1)
	t.E2Neg(&z.C2, &x.C2)
}

// E6Mul sets z = x·y (Karatsuba over the cubic extension; z may alias).
func (t *Tower) E6Mul(z, x, y *E6) {
	t0, t1, t2 := t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Mul(&t0, &x.C0, &y.C0)
	t.E2Mul(&t1, &x.C1, &y.C1)
	t.E2Mul(&t2, &x.C2, &y.C2)

	s1, s2, tmp := t.E2Zero(), t.E2Zero(), t.E2Zero()

	// c0 = t0 + ξ((a1+a2)(b1+b2) − t1 − t2)
	t.E2Add(&s1, &x.C1, &x.C2)
	t.E2Add(&s2, &y.C1, &y.C2)
	t.E2Mul(&tmp, &s1, &s2)
	t.E2Sub(&tmp, &tmp, &t1)
	t.E2Sub(&tmp, &tmp, &t2)
	t.E2MulByXi(&tmp, &tmp)
	c0 := t.E2Zero()
	t.E2Add(&c0, &t0, &tmp)

	// c1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
	t.E2Add(&s1, &x.C0, &x.C1)
	t.E2Add(&s2, &y.C0, &y.C1)
	t.E2Mul(&tmp, &s1, &s2)
	t.E2Sub(&tmp, &tmp, &t0)
	t.E2Sub(&tmp, &tmp, &t1)
	c1 := t.E2Zero()
	t.E2MulByXi(&c1, &t2)
	t.E2Add(&c1, &c1, &tmp)

	// c2 = (a0+a2)(b0+b2) − t0 − t2 + t1
	t.E2Add(&s1, &x.C0, &x.C2)
	t.E2Add(&s2, &y.C0, &y.C2)
	t.E2Mul(&tmp, &s1, &s2)
	t.E2Sub(&tmp, &tmp, &t0)
	t.E2Sub(&tmp, &tmp, &t2)
	c2 := t.E2Zero()
	t.E2Add(&c2, &tmp, &t1)

	t.E2Set(&z.C0, &c0)
	t.E2Set(&z.C1, &c1)
	t.E2Set(&z.C2, &c2)
}

// E6Square sets z = x².
func (t *Tower) E6Square(z, x *E6) { t.E6Mul(z, x, x) }

// E6MulByV multiplies by v: (c0, c1, c2) → (ξ·c2, c0, c1).
func (t *Tower) E6MulByV(z, x *E6) {
	c0 := t.E2Zero()
	t.E2MulByXi(&c0, &x.C2)
	c1 := t.E2Clone(&x.C0)
	c2 := t.E2Clone(&x.C1)
	t.E2Set(&z.C0, &c0)
	t.E2Set(&z.C1, &c1)
	t.E2Set(&z.C2, &c2)
}

// E6Inv sets z = x⁻¹ via the standard cubic-extension formula.
func (t *Tower) E6Inv(z, x *E6) {
	v0, v1, v2 := t.E2Zero(), t.E2Zero(), t.E2Zero()
	tmp := t.E2Zero()

	// v0 = c0² − ξ·c1·c2
	t.E2Square(&v0, &x.C0)
	t.E2Mul(&tmp, &x.C1, &x.C2)
	t.E2MulByXi(&tmp, &tmp)
	t.E2Sub(&v0, &v0, &tmp)
	// v1 = ξ·c2² − c0·c1
	t.E2Square(&v1, &x.C2)
	t.E2MulByXi(&v1, &v1)
	t.E2Mul(&tmp, &x.C0, &x.C1)
	t.E2Sub(&v1, &v1, &tmp)
	// v2 = c1² − c0·c2
	t.E2Square(&v2, &x.C1)
	t.E2Mul(&tmp, &x.C0, &x.C2)
	t.E2Sub(&v2, &v2, &tmp)

	// F = c0·v0 + ξ·(c2·v1 + c1·v2)
	f0, f1 := t.E2Zero(), t.E2Zero()
	t.E2Mul(&f0, &x.C0, &v0)
	t.E2Mul(&f1, &x.C2, &v1)
	t.E2Mul(&tmp, &x.C1, &v2)
	t.E2Add(&f1, &f1, &tmp)
	t.E2MulByXi(&f1, &f1)
	t.E2Add(&f0, &f0, &f1)
	t.E2Inv(&f0, &f0)

	t.E2Mul(&z.C0, &v0, &f0)
	t.E2Mul(&z.C1, &v1, &f0)
	t.E2Mul(&z.C2, &v2, &f0)
}

// ---------- Fp12 ----------

// E12Zero returns a fresh zero.
func (t *Tower) E12Zero() E12 { return E12{t.E6Zero(), t.E6Zero()} }

// E12One returns a fresh one.
func (t *Tower) E12One() E12 { return E12{t.E6One(), t.E6Zero()} }

// E12Set copies y into z.
func (t *Tower) E12Set(z, y *E12) { t.E6Set(&z.D0, &y.D0); t.E6Set(&z.D1, &y.D1) }

// E12Equal reports x == y.
func (t *Tower) E12Equal(x, y *E12) bool { return t.E6Equal(&x.D0, &y.D0) && t.E6Equal(&x.D1, &y.D1) }

// E12IsOne reports x == 1.
func (t *Tower) E12IsOne(x *E12) bool {
	one := t.E12One()
	return t.E12Equal(x, &one)
}

// E12Add sets z = x + y.
func (t *Tower) E12Add(z, x, y *E12) { t.E6Add(&z.D0, &x.D0, &y.D0); t.E6Add(&z.D1, &x.D1, &y.D1) }

// E12Sub sets z = x - y.
func (t *Tower) E12Sub(z, x, y *E12) { t.E6Sub(&z.D0, &x.D0, &y.D0); t.E6Sub(&z.D1, &x.D1, &y.D1) }

// E12Mul sets z = x·y: c0 = a0b0 + v·a1b1, c1 = a0b1 + a1b0 (Karatsuba).
func (t *Tower) E12Mul(z, x, y *E12) {
	t0, t1 := t.E6Zero(), t.E6Zero()
	t.E6Mul(&t0, &x.D0, &y.D0)
	t.E6Mul(&t1, &x.D1, &y.D1)
	s0, s1, mid := t.E6Zero(), t.E6Zero(), t.E6Zero()
	t.E6Add(&s0, &x.D0, &x.D1)
	t.E6Add(&s1, &y.D0, &y.D1)
	t.E6Mul(&mid, &s0, &s1)
	t.E6Sub(&mid, &mid, &t0)
	t.E6Sub(&mid, &mid, &t1)
	vT1 := t.E6Zero()
	t.E6MulByV(&vT1, &t1)
	t.E6Add(&z.D0, &t0, &vT1)
	t.E6Set(&z.D1, &mid)
}

// E12Square sets z = x².
func (t *Tower) E12Square(z, x *E12) { t.E12Mul(z, x, x) }

// E12Conjugate sets z = (d0, −d1), which equals x^(p⁶).
func (t *Tower) E12Conjugate(z, x *E12) {
	t.E6Set(&z.D0, &x.D0)
	t.E6Neg(&z.D1, &x.D1)
}

// E12Inv sets z = x⁻¹ = (d0 − d1·w)/(d0² − v·d1²).
func (t *Tower) E12Inv(z, x *E12) {
	t0, t1 := t.E6Zero(), t.E6Zero()
	t.E6Square(&t0, &x.D0)
	t.E6Square(&t1, &x.D1)
	vT1 := t.E6Zero()
	t.E6MulByV(&vT1, &t1)
	t.E6Sub(&t0, &t0, &vT1)
	t.E6Inv(&t0, &t0)
	t.E6Mul(&z.D0, &x.D0, &t0)
	neg := t.E6Zero()
	t.E6Neg(&neg, &x.D1)
	t.E6Mul(&z.D1, &neg, &t0)
}

// E12Exp sets z = x^e for a non-negative exponent.
func (t *Tower) E12Exp(z, x *E12, e *big.Int) {
	acc := t.E12One()
	base := t.E12Zero()
	t.E12Set(&base, x)
	for i := 0; i < e.BitLen(); i++ {
		if e.Bit(i) == 1 {
			t.E12Mul(&acc, &acc, &base)
		}
		t.E12Square(&base, &base)
	}
	t.E12Set(z, &acc)
}

// E12FromFp embeds an Fp element into Fp12 (the c000 coefficient).
func (t *Tower) E12FromFp(c field.Element) E12 {
	z := t.E12Zero()
	z.D0.C0.A0.Set(c)
	return z
}

// E12ScaleFp multiplies every coefficient by an Fp scalar.
func (t *Tower) E12ScaleFp(z, x *E12, c field.Element) {
	for _, e6 := range []*struct{ src, dst *E6 }{{&x.D0, &z.D0}, {&x.D1, &z.D1}} {
		for _, pair := range []*struct{ s, d *E2 }{
			{&e6.src.C0, &e6.dst.C0}, {&e6.src.C1, &e6.dst.C1}, {&e6.src.C2, &e6.dst.C2},
		} {
			t.F.Mul(pair.d.A0, pair.s.A0, c)
			t.F.Mul(pair.d.A1, pair.s.A1, c)
		}
	}
}
