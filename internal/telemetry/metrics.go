package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the dependency-free metrics half of the package: a
// registry of counters, gauges and fixed-bucket histograms with
// Prometheus text exposition (text format version 0.0.4). Handles are
// registered once (registration allocates and may take a lock) and
// updated forever after via atomics — Inc/Add/Set/Observe are safe on
// any hot path.

// Counter is a monotonically increasing metric. The zero value is
// usable, but registry-issued handles are the normal way to get one.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as float64 bits so
// breaker states, byte totals and seconds all fit.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (CAS loop; d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest. Observe is
// allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; per-bucket (not cumulative)
	sum    Gauge
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile of the observed distribution by
// monotone piecewise-linear interpolation over the cumulative bucket
// counts: within the bucket where the cumulative count crosses q·Count,
// the value is interpolated linearly between the bucket's bounds (the
// first bucket interpolates up from zero). The estimate is exact when
// samples are uniform within their bucket and always within one bucket
// width otherwise; it is nondecreasing in q. Samples beyond the last
// finite bound (the +Inf bucket) clamp to that bound — a fixed-bucket
// histogram cannot see past it. Returns NaN when the histogram is empty
// or q is NaN; q is clamped to [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	lo := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			return lo + (bound-lo)*(rank-cum)/c
		}
		cum += c
		lo = bound
	}
	// The crossing lands in the +Inf bucket: clamp.
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefSecondsBuckets is the default latency bucketing, in seconds —
// 500µs to ~2 minutes, roughly ×2.5 per step, wide enough for both a
// sub-millisecond MSM shard and a multi-second proof job.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one (family, label-set) time series.
type series struct {
	labels string // rendered label pairs without braces, e.g. `gpu="0"`
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus
// text format. It is safe for concurrent use; handle registration is
// idempotent (the same name+labels returns the same handle).
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", name))
	}
	return f
}

func (f *family) get(labels string) *series {
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s
}

// Counter registers (or fetches) the counter series name{labels}.
// labels is the rendered pair list without braces (`class="transient"`)
// or "" for none.
func (r *Registry) Counter(name, help, labels string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindCounter).get(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or fetches) the gauge series name{labels}.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindGauge).get(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is fn(), evaluated at
// exposition time — the natural shape for state snapshots like breaker
// states. fn must be safe to call from any goroutine and must not call
// back into the registry.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.family(name, help, kindGaugeFunc).get(labels).fn = fn
}

// Histogram registers (or fetches) the histogram series name{labels}
// with the given upper bounds (DefSecondsBuckets when nil).
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindHistogram).get(labels)
	if s.hist == nil {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		s.hist = h
	}
	return s.hist
}

func writeVal(b *strings.Builder, v float64) {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		fmt.Fprintf(b, "%d", int64(v))
		return
	}
	fmt.Fprintf(b, "%g", v)
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, families in registration order, series in
// registration order within each family.
func (r *Registry) WritePrometheus() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		for _, labels := range f.order {
			s := f.series[labels]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name, labels), s.ctr.Value())
			case kindGauge:
				b.WriteString(seriesName(f.name, labels))
				b.WriteByte(' ')
				writeVal(&b, s.gauge.Value())
				b.WriteByte('\n')
			case kindGaugeFunc:
				b.WriteString(seriesName(f.name, labels))
				b.WriteByte(' ')
				writeVal(&b, s.fn())
				b.WriteByte('\n')
			case kindHistogram:
				h := s.hist
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s %d\n",
						seriesName(f.name+"_bucket", joinLabels(labels, fmt.Sprintf(`le="%g"`, bound))), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s %d\n",
					seriesName(f.name+"_bucket", joinLabels(labels, `le="+Inf"`)), cum)
				b.WriteString(seriesName(f.name+"_sum", labels))
				b.WriteByte(' ')
				writeVal(&b, h.Sum())
				b.WriteByte('\n')
				fmt.Fprintf(&b, "%s %d\n", seriesName(f.name+"_count", labels), h.Count())
			}
		}
	}
	return b.String()
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// Handler returns an http.Handler serving the registry in the
// Prometheus text format — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.WritePrometheus()))
	})
}

// Families returns the registered family names, sorted — a test and
// debugging convenience.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
