package gpusim

import (
	"errors"
	"fmt"
)

// ErrNoGPUs is returned when a cluster is requested with fewer than one
// GPU. It is re-exported by the public API and matches with errors.Is.
var ErrNoGPUs = errors.New("gpusim: cluster needs at least one GPU")

// ErrBadDevice is returned when a cluster is requested with an empty or
// inconsistent device specification (a zero Device would otherwise make
// the occupancy and bandwidth models divide by zero deep inside a run).
var ErrBadDevice = errors.New("gpusim: invalid device specification")

// Cluster is a homogeneous multi-GPU system with a host CPU, the
// execution substrate DistMSM schedules onto.
type Cluster struct {
	Dev  Device
	N    int
	IC   Interconnect
	Host CPU
	// Faults, when non-nil, is consulted once per shard execution by the
	// concurrent engine; nil injects nothing.
	Faults *FaultInjector
	// Health, when non-nil, is the cross-request circuit-breaker registry:
	// BuildPlan consults it to exclude quarantined GPUs (and give
	// half-open ones probe shards), and the scheduler reports per-GPU run
	// outcomes back into it. nil plans over every device.
	Health *HealthRegistry
}

// NewCluster returns an n-GPU cluster of the given device with the DGX
// interconnect and host CPU profile. It rejects n < 1 (ErrNoGPUs) and
// empty or inconsistent device specs (ErrBadDevice) with typed
// sentinels instead of failing later inside the cost model.
func NewCluster(dev Device, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w, got %d", ErrNoGPUs, n)
	}
	if err := validateDevice(dev); err != nil {
		return nil, err
	}
	return &Cluster{Dev: dev, N: n, IC: NVLinkDGX(), Host: Rome7742()}, nil
}

// validateDevice rejects device specs the performance model cannot
// price: every capacity and throughput figure must be positive.
func validateDevice(dev Device) error {
	if dev.Name == "" {
		return fmt.Errorf("%w: empty device name", ErrBadDevice)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"SMs", float64(dev.SMs)},
		{"MaxThreadsPerSM", float64(dev.MaxThreadsPerSM)},
		{"RegFilePerSM", float64(dev.RegFilePerSM)},
		{"SharedMemPerSM", float64(dev.SharedMemPerSM)},
		{"Int32TOPS", dev.Int32TOPS},
		{"MemBandwidthGBs", dev.MemBandwidthGBs},
		{"Efficiency", dev.Efficiency},
	} {
		if f.v <= 0 {
			return fmt.Errorf("%w: %s (%s) must be positive, got %v", ErrBadDevice, f.name, dev.Name, f.v)
		}
	}
	if dev.TensorInt8TOPS < 0 {
		return fmt.Errorf("%w: TensorInt8TOPS (%s) must be non-negative", ErrBadDevice, dev.Name)
	}
	return nil
}

// WithFaults returns a shallow copy of the cluster with the fault
// injector attached; the receiver is not modified, so one cluster can
// serve faulty and fault-free executions concurrently.
func (c *Cluster) WithFaults(f *FaultInjector) *Cluster {
	cl := *c
	cl.Faults = f
	return &cl
}

// WithHealth returns a shallow copy of the cluster with the health
// registry attached. The registry itself is shared (it is the point:
// breaker state persists across every run on the copy), only the cluster
// value is copied.
func (c *Cluster) WithHealth(r *HealthRegistry) *Cluster {
	cl := *c
	cl.Health = r
	return &cl
}

// ShardFault is the per-shard consultation point of the engine: the
// fault (if any) injected into the attempt-th execution of the
// (window, bucketLo) shard on the given GPU. Without an injector it
// always reports FaultNone.
func (c *Cluster) ShardFault(gpu, window, bucketLo, attempt int) Fault {
	return c.Faults.Decide(gpu, window, bucketLo, attempt)
}

// Model returns the per-device cost model.
func (c *Cluster) Model() Model { return Model{Dev: c.Dev} }

// Cost is a wall-time breakdown of one MSM execution, in seconds, by the
// phases of Figure 1. Phases within one entry are already serialised;
// Total assumes the phases themselves run back to back except for the
// CPU bucket-reduce, which §3.2.3 overlaps with GPU work.
type Cost struct {
	Scatter      float64 // bucket-scatter kernels
	BucketSum    float64 // bucket accumulation kernels
	BucketReduce float64 // Σ 2^i·B_i (GPU or CPU depending on algorithm)
	WindowReduce float64 // final window combination
	Transfer     float64 // host<->device traffic
	// ReduceOnCPU marks BucketReduce as host work that overlaps GPU
	// execution; it then contributes only the excess beyond GPU time.
	ReduceOnCPU bool
}

// Total returns the end-to-end seconds.
func (c Cost) Total() float64 {
	gpu := c.Scatter + c.BucketSum + c.Transfer
	if c.ReduceOnCPU {
		// CPU reduce is pipelined behind GPU phases; only the tail that
		// outlasts the GPU shows up.
		if c.BucketReduce > gpu {
			return c.BucketReduce + c.WindowReduce
		}
		return gpu + c.WindowReduce
	}
	return gpu + c.BucketReduce + c.WindowReduce
}

// AddInPlace accumulates o into c field by field.
func (c *Cost) AddInPlace(o Cost) {
	c.Scatter += o.Scatter
	c.BucketSum += o.BucketSum
	c.BucketReduce += o.BucketReduce
	c.WindowReduce += o.WindowReduce
	c.Transfer += o.Transfer
	c.ReduceOnCPU = c.ReduceOnCPU || o.ReduceOnCPU
}

// Milliseconds formats seconds as milliseconds for reporting.
func Milliseconds(sec float64) float64 { return sec * 1e3 }

// NodeSize is the GPUs per DGX node in the paper's testbed; beyond it a
// cluster spans multiple nodes. The paper's methodology runs the
// per-node shares sequentially on one DGX and reports the longest
// runtime — equivalent to parallel nodes with no inter-node traffic —
// which is exactly how the cost model composes per-GPU loads (phase
// times are the max over GPUs). DistMSM needs no inter-node exchanges
// until the final window results reach the host.
const NodeSize = 8

// Nodes returns the DGX node count the cluster spans.
func (c *Cluster) Nodes() int { return (c.N + NodeSize - 1) / NodeSize }
