package kernel

import (
	"math/rand"
	"testing"
)

func TestGraphsValidate(t *testing.T) {
	for _, g := range []*Graph{PACCGraph(), PADDGraph(), PDBLGraph()} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	g := &Graph{
		Name:   "bad",
		Inputs: []string{"a"},
		Ops: []Op{
			{"x=a*b", "x", []string{"a", "b"}, true}, // b undefined
		},
		Outputs: []string{"x"},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("expected undefined-source error")
	}
	g2 := &Graph{
		Name:   "bad2",
		Inputs: []string{"a"},
		Ops: []Op{
			{"x=a+a", "x", []string{"a"}, false},
			{"x=a+a again", "x", []string{"a"}, false},
		},
		Outputs: []string{"x"},
	}
	if err := g2.Validate(); err == nil {
		t.Fatal("expected redefinition error")
	}
	g3 := &Graph{Name: "bad3", Inputs: []string{"a"}, Outputs: []string{"y"}}
	if err := g3.Validate(); err == nil {
		t.Fatal("expected undefined-output error")
	}
}

// The multiplication counts the paper quotes: PADD needs 14 modular
// multiplications, the dedicated PACC kernel only 10 (§4.1).
func TestMulCounts(t *testing.T) {
	if got := PADDGraph().MulCount(); got != 14 {
		t.Errorf("PADD muls = %d, want 14", got)
	}
	if got := PACCGraph().MulCount(); got != 10 {
		t.Errorf("PACC muls = %d, want 10", got)
	}
	if got := PDBLGraph().MulCount(); got != 9 {
		t.Errorf("PDBL muls = %d, want 9", got)
	}
}

// The straightforward (pseudocode-order) register pressures of §4.2:
// 11 live big integers for PADD and 9 for PACC.
func TestStraightforwardPressureMatchesPaper(t *testing.T) {
	if got := PeakPressure(PADDGraph(), StraightforwardOrder(PADDGraph())); got != 11 {
		t.Errorf("straightforward PADD pressure = %d, want 11 (paper §4.2)", got)
	}
	if got := PeakPressure(PACCGraph(), StraightforwardOrder(PACCGraph())); got != 9 {
		t.Errorf("straightforward PACC pressure = %d, want 9 (paper §4.2)", got)
	}
}

func TestOptimalSchedule(t *testing.T) {
	// PADD: the paper's optimal order reaches 9 (11 → 9); the search must
	// find it. PACC: the paper reports 7; this model's accounting floor is
	// 8 (one Montgomery-scratch difference from Figure 5's bookkeeping),
	// recorded in EXPERIMENTS.md.
	padd, err := OptimalSchedule(PADDGraph())
	if err != nil {
		t.Fatal(err)
	}
	if padd.Peak != 9 {
		t.Errorf("optimal PADD pressure = %d, want 9 (paper §4.2.1)", padd.Peak)
	}
	if !IsTopological(PADDGraph(), padd.Order) {
		t.Error("optimal PADD order is not topological")
	}
	pacc, err := OptimalSchedule(PACCGraph())
	if err != nil {
		t.Fatal(err)
	}
	if pacc.Peak != 8 {
		t.Errorf("optimal PACC pressure = %d, want 8 (model floor; paper reports 7)", pacc.Peak)
	}
	if !IsTopological(PACCGraph(), pacc.Order) {
		t.Error("optimal PACC order is not topological")
	}
}

// Property: the optimal peak is a lower bound over random topological orders.
func TestOptimalIsLowerBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for _, g := range []*Graph{PACCGraph(), PADDGraph(), PDBLGraph()} {
		opt, err := OptimalSchedule(g)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			order := randomTopoOrder(g, rnd)
			if !IsTopological(g, order) {
				t.Fatalf("%s: generated order invalid", g.Name)
			}
			if p := PeakPressure(g, order); p < opt.Peak {
				t.Fatalf("%s: random order beat the optimum: %d < %d", g.Name, p, opt.Peak)
			}
		}
	}
}

func randomTopoOrder(g *Graph, rnd *rand.Rand) []int {
	defined := map[string]bool{}
	for _, in := range g.Inputs {
		defined[in] = true
	}
	done := make([]bool, len(g.Ops))
	var order []int
	for len(order) < len(g.Ops) {
		var ready []int
		for i, op := range g.Ops {
			if done[i] {
				continue
			}
			ok := true
			for _, s := range op.Srcs {
				if !defined[s] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		pick := ready[rnd.Intn(len(ready))]
		done[pick] = true
		defined[g.Ops[pick].Dst] = true
		order = append(order, pick)
	}
	return order
}

// The fusion pass must collapse PACC's 17 raw operations into the paper's
// 12 scheduling units and preserve graph validity and outputs.
func TestFusedSchedulingUnits(t *testing.T) {
	fg := Fused(PACCGraph())
	if err := fg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(fg.Ops) != 12 {
		t.Errorf("fused PACC has %d units, want 12 (paper §4.2.1)", len(fg.Ops))
	}
	// Outputs must still be produced.
	dsts := map[string]bool{}
	for _, op := range fg.Ops {
		dsts[op.Dst] = true
	}
	for _, o := range fg.Outputs {
		if !dsts[o] {
			t.Errorf("fused PACC lost output %s", o)
		}
	}
	// PADD fusion also validates.
	if err := Fused(PADDGraph()).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpillReachesTarget(t *testing.T) {
	g := PACCGraph()
	sched, err := OptimalSchedule(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanSpills(g, sched.Order, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PeakRegisters > 5 {
		t.Errorf("spilled PACC peak = %d, want <= 5 (paper §4.2.2)", plan.PeakRegisters)
	}
	if plan.PeakShared == 0 || plan.Transfers == 0 || len(plan.Spilled) == 0 {
		t.Error("spill plan is suspiciously empty")
	}
	outputs := map[string]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	for _, v := range plan.Spilled {
		if outputs[v] {
			t.Errorf("accumulator output %s was spilled", v)
		}
	}
	// A trivial target needs no spills.
	plan0, err := PlanSpills(g, sched.Order, sched.Peak)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan0.Spilled) != 0 {
		t.Error("no spills should be needed at the schedule's own peak")
	}
	// An impossible target errors instead of looping.
	if _, err := PlanSpills(g, sched.Order, 0); err == nil {
		t.Error("expected error for unreachable spill target")
	}
}

func TestRegsPerBigInt(t *testing.T) {
	// Paper: "a single big integer can consume 8 to 24 registers".
	cases := map[int]int{254: 8, 253: 8, 377: 12, 381: 12, 753: 24}
	for bits, want := range cases {
		if got := RegsPerBigInt(bits); got != want {
			t.Errorf("RegsPerBigInt(%d) = %d, want %d", bits, got, want)
		}
	}
	// Paper: straightforward PADD needs 132 registers for BLS12-377 and
	// 264 for MNT4753 (11 live ints × 12/24 regs).
	peak := PeakPressure(PADDGraph(), StraightforwardOrder(PADDGraph()))
	if got := peak * RegsPerBigInt(377); got != 132 {
		t.Errorf("BLS12-377 straightforward PADD registers = %d, want 132", got)
	}
	if got := peak * RegsPerBigInt(753); got != 264 {
		t.Errorf("MNT4753 straightforward PADD registers = %d, want 264", got)
	}
}

func TestOccupancyModel(t *testing.T) {
	const regFile, maxThreads = 65536, 2048
	// Fewer registers -> occupancy never decreases.
	prev := 0.0
	for regs := 256; regs >= 16; regs /= 2 {
		occ := Occupancy(regs, regFile, maxThreads)
		if occ < prev {
			t.Fatalf("occupancy decreased when registers dropped to %d", regs)
		}
		prev = occ
	}
	if Occupancy(32, regFile, maxThreads) != 1.0 {
		t.Error("32 regs/thread should give full occupancy on A100-class SM")
	}
	if occ := Occupancy(64, regFile, maxThreads); occ != 0.5 {
		t.Errorf("64 regs/thread occupancy = %v, want 0.5", occ)
	}
	// Degenerate inputs stay sane.
	if Occupancy(0, regFile, maxThreads) <= 0 || Occupancy(1<<20, regFile, maxThreads) <= 0 {
		t.Error("occupancy must stay positive")
	}
}

func TestBuildSpecWaterfall(t *testing.T) {
	var prev *Spec
	for _, v := range Variants() {
		spec, err := BuildSpec(v)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Variant != v {
			t.Errorf("spec variant mismatch for %v", v)
		}
		switch v {
		case VariantBaseline:
			if spec.Muls != 14 || spec.PeakLive != 11 {
				t.Errorf("baseline spec = %+v, want 14 muls / 11 live", spec)
			}
		case VariantPACC:
			if spec.Muls != 10 || spec.PeakLive != 9 {
				t.Errorf("PACC spec = %+v, want 10 muls / 9 live", spec)
			}
		case VariantOptimalOrder:
			if spec.PeakLive >= 9 {
				t.Errorf("optimal order did not reduce pressure: %+v", spec)
			}
		case VariantSpill:
			if spec.PeakLive > 5 || spec.SharedInts == 0 {
				t.Errorf("spill spec = %+v, want <=5 live with shared residents", spec)
			}
		case VariantTensorCore:
			if !spec.TensorCore || spec.TCCompacted {
				t.Errorf("TC spec = %+v", spec)
			}
		case VariantTCCompact:
			if !spec.TensorCore || !spec.TCCompacted {
				t.Errorf("TC-compact spec = %+v", spec)
			}
		}
		if prev != nil && v <= VariantSpill && spec.PeakLive > prev.PeakLive {
			t.Errorf("pressure increased from %v to %v", prev.Variant, v)
		}
		prev = &spec
	}
}

func TestVariantStrings(t *testing.T) {
	if VariantBaseline.String() != "Baseline" || VariantTCCompact.String() != "On-the-fly Compact" {
		t.Error("variant names wrong")
	}
	if Variant(99).String() != "Unknown" {
		t.Error("unknown variant name")
	}
}

func TestPressureProfileLength(t *testing.T) {
	g := PACCGraph()
	prof := PressureProfile(g, StraightforwardOrder(g))
	if len(prof) != len(g.Ops) {
		t.Fatalf("profile length %d != ops %d", len(prof), len(g.Ops))
	}
	max := 0
	for _, p := range prof {
		if p > max {
			max = p
		}
	}
	if max != PeakPressure(g, StraightforwardOrder(g)) {
		t.Fatal("profile max != peak")
	}
}

func BenchmarkOptimalScheduleSearch(b *testing.B) {
	g := PADDGraph()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSchedule(g); err != nil {
			b.Fatal(err)
		}
	}
}
