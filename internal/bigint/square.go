package bigint

import "math/bits"

// Dedicated squaring: x² needs only the upper-triangle partial products
// (doubled) plus the diagonal, roughly halving the multiply count of the
// schoolbook product. SquareCIOS plugs the optimisation into Montgomery
// reduction; field.Square routes through it.

// SqrInto sets z = x² using the triangle+diagonal method. z must have
// 2·len(x) limbs and must not alias x.
func SqrInto(z Nat, x Nat) {
	n := len(x)
	if len(z) != 2*n {
		panic("bigint: SqrInto destination width")
	}
	for i := range z {
		z[i] = 0
	}
	// Off-diagonal products x[i]·x[j] for i < j.
	for i := 0; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		var carry uint64
		for j := i + 1; j < n; j++ {
			hi, lo := bits.Mul64(xi, x[j])
			var c uint64
			lo, c = bits.Add64(lo, z[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			z[i+j] = lo
			carry = hi
		}
		z[i+n] = carry
	}
	// Double the triangle.
	var carry uint64
	for i := 0; i < 2*n; i++ {
		nv := z[i]<<1 | carry
		carry = z[i] >> 63
		z[i] = nv
	}
	// Add the diagonal squares.
	carry = 0
	for i := 0; i < n; i++ {
		hi, lo := bits.Mul64(x[i], x[i])
		var c uint64
		z[2*i], c = bits.Add64(z[2*i], lo, carry)
		hi += c
		z[2*i+1], carry = bits.Add64(z[2*i+1], hi, 0)
	}
	// carry must be zero: x² < 2^(128n).
	if carry != 0 {
		panic("bigint: SqrInto overflow (impossible)")
	}
}

// SquareSOS sets z = x²·R⁻¹ mod N: the SOS reduction applied to the
// dedicated squaring (the Montgomery-squaring fast path). z may alias x.
func (m *Montgomery) SquareSOS(z, x Nat) {
	w := m.width
	var buf [2*maxLimbs + 1]uint64
	var t Nat
	if w <= maxLimbs {
		t = buf[: 2*w+1 : 2*w+1]
		for i := range t {
			t[i] = 0
		}
	} else {
		t = make(Nat, 2*w+1)
	}
	SqrInto(t[:2*w], x)
	for i := 0; i < w; i++ {
		u := t[i] * m.NPrime0
		var carry uint64
		for j := 0; j < w; j++ {
			hi, lo := bits.Mul64(u, m.N[j])
			var c uint64
			lo, c = bits.Add64(lo, t[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[i+j] = lo
			carry = hi
		}
		for k := i + w; carry != 0 && k < len(t); k++ {
			t[k], carry = bits.Add64(t[k], carry, 0)
		}
	}
	copy(z, t[w:2*w])
	m.reduceOnce(z, t[2*w])
}
