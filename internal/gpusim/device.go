// Package gpusim is the hardware substitution layer of this reproduction
// (see DESIGN.md): a calibrated analytic performance model of the GPUs
// the paper evaluates on. It prices elliptic-curve kernels (through the
// register-pressure/occupancy specs of internal/kernel), global and
// shared-memory atomic operations with contention, device-memory traffic
// and host transfers. The DistMSM scheduler and the baseline MSM
// implementations execute their real algorithms and ask this model for
// the time the same work would take on the modeled hardware.
package gpusim

// Device describes one GPU.
type Device struct {
	Name string
	SMs  int
	// MaxThreadsPerSM is the resident-thread ceiling per SM.
	MaxThreadsPerSM int
	// RegFilePerSM is the number of 32-bit registers per SM.
	RegFilePerSM int
	// SharedMemPerSM is shared-memory bytes per SM.
	SharedMemPerSM int

	// Int32TOPS is CUDA-core int32 multiply-add throughput (tera-ops/s).
	Int32TOPS float64
	// TensorInt8TOPS is tensor-core int8 throughput (tera-ops/s);
	// 0 disables the tensor-core path (e.g. AMD RDNA2).
	TensorInt8TOPS float64
	// MemBandwidthGBs is device-memory bandwidth in GB/s.
	MemBandwidthGBs float64

	// Efficiency is the achieved fraction of peak arithmetic throughput
	// for dependent big-integer kernels (calibration constant).
	Efficiency float64
}

// A100 models the NVIDIA A100-80GB of the paper's DGX testbed.
func A100() Device {
	return Device{
		Name:            "NVIDIA A100",
		SMs:             108,
		MaxThreadsPerSM: 2048,
		RegFilePerSM:    65536,
		SharedMemPerSM:  164 << 10,
		Int32TOPS:       19.5,
		TensorInt8TOPS:  624,
		MemBandwidthGBs: 2039,
		Efficiency:      0.22,
	}
}

// RTX4090 models the NVIDIA RTX 4090 (Figure 9): 2.12× the A100's
// CUDA-core integer throughput, less memory bandwidth.
func RTX4090() Device {
	return Device{
		Name:            "NVIDIA RTX4090",
		SMs:             128,
		MaxThreadsPerSM: 1536,
		RegFilePerSM:    65536,
		SharedMemPerSM:  100 << 10,
		Int32TOPS:       41.3,
		TensorInt8TOPS:  661,
		MemBandwidthGBs: 1008,
		Efficiency:      0.22,
	}
}

// AMD6900XT models the AMD Radeon 6900XT (Figure 9): similar register
// capacity and bandwidth class, notably lower integer throughput, no
// int8 matrix unit, and a less mature toolchain (lower efficiency).
func AMD6900XT() Device {
	return Device{
		Name:            "AMD 6900XT",
		SMs:             80,
		MaxThreadsPerSM: 2048,
		RegFilePerSM:    65536,
		SharedMemPerSM:  64 << 10,
		Int32TOPS:       10.4,
		TensorInt8TOPS:  0,
		MemBandwidthGBs: 1660, // effective, Infinity-Cache assisted (the paper notes "similar memory bandwidth")
		Efficiency:      0.19,
	}
}

// MaxThreads returns the device's total resident-thread capacity at full
// occupancy (the paper's N_T is 2^16 for an A100-class part; this model
// derives it from the SM configuration).
func (d Device) MaxThreads() int { return d.SMs * d.MaxThreadsPerSM }

// CPU models the host processor for the window-reduce/bucket-reduce
// offload of §3.2.3. The paper's extrapolation: a GPU can be up to 128×
// faster than a high-end CPU on EC arithmetic.
type CPU struct {
	Name string
	// ECThroughputRatio is this CPU's EC-arithmetic throughput as a
	// fraction of one reference A100.
	ECThroughputRatio float64
}

// Rome7742 models one AMD Rome 7742 socket of the DGX host.
func Rome7742() CPU { return CPU{Name: "AMD Rome 7742", ECThroughputRatio: 1.0 / 128.0} }

// Interconnect models host-device and device-device links.
type Interconnect struct {
	// HostLinkGBs is the per-GPU host link bandwidth (GB/s).
	HostLinkGBs float64
	// HostLatency is the fixed per-transfer latency in seconds.
	HostLatency float64
}

// NVLinkDGX returns the DGX-A100 interconnect profile.
func NVLinkDGX() Interconnect { return Interconnect{HostLinkGBs: 64, HostLatency: 10e-6} }
