package pairing

import (
	"context"
	"math/big"

	"distmsm/internal/field"
)

// G2Affine is an affine point on the sextic twist E'/Fp2:
// y² = x³ + 3/(9+u).
type G2Affine struct {
	X, Y E2
	Inf  bool
}

// G2Jacobian is a Jacobian-coordinate point on the twist (Z = 0 at
// infinity).
type G2Jacobian struct {
	X, Y, Z E2
}

// G2 provides arithmetic on the twist group.
type G2 struct {
	T *Tower
	// B is the twist coefficient b' = 3/ξ.
	B E2
	// Gen is the canonical BN254 G2 generator.
	Gen G2Affine
}

// bn254 G2 generator coordinates (the alt_bn128 values).
const (
	g2x0Dec = "10857046999023057135944570762232829481370756359578518086990519993285655852781"
	g2x1Dec = "11559732032986387107991004021392285783925812861821192530917403151452391805634"
	g2y0Dec = "8495653923123431417604973247489272438418190587263600148770280649306958101930"
	g2y1Dec = "4082367875863433681332203403145435568316851327593401208105741076214120093531"
)

// NewG2 builds the twist group for the BN254 base field.
func NewG2(t *Tower) *G2 {
	f := t.F
	g := &G2{T: t}
	// b' = 3/(9+u)
	xi := E2{f.FromUint64(9), f.One()}
	xiInv := t.E2Zero()
	t.E2Inv(&xiInv, &xi)
	three := f.FromUint64(3)
	g.B = t.E2Zero()
	t.E2MulByFp(&g.B, &xiInv, three)

	g.Gen = G2Affine{
		X: E2{f.FromBig(mustBig(g2x0Dec)), f.FromBig(mustBig(g2x1Dec))},
		Y: E2{f.FromBig(mustBig(g2y0Dec)), f.FromBig(mustBig(g2y1Dec))},
	}
	return g
}

func mustBig(dec string) *big.Int {
	v, ok := new(big.Int).SetString(dec, 10)
	if !ok {
		panic("pairing: bad integer literal")
	}
	return v
}

// IsOnCurve reports whether an affine point satisfies the twist equation.
func (g *G2) IsOnCurve(p *G2Affine) bool {
	if p.Inf {
		return true
	}
	t := g.T
	lhs, rhs := t.E2Zero(), t.E2Zero()
	t.E2Square(&lhs, &p.Y)
	t.E2Square(&rhs, &p.X)
	t.E2Mul(&rhs, &rhs, &p.X)
	t.E2Add(&rhs, &rhs, &g.B)
	return t.E2Equal(&lhs, &rhs)
}

// FromAffine lifts an affine point to Jacobian coordinates.
func (g *G2) FromAffine(p *G2Affine) G2Jacobian {
	t := g.T
	if p.Inf {
		return G2Jacobian{X: t.E2One(), Y: t.E2One(), Z: t.E2Zero()}
	}
	return G2Jacobian{X: t.E2Clone(&p.X), Y: t.E2Clone(&p.Y), Z: t.E2One()}
}

// ToAffine normalises a Jacobian point (one Fp2 inversion).
func (g *G2) ToAffine(p *G2Jacobian) G2Affine {
	t := g.T
	if t.E2IsZero(&p.Z) {
		return G2Affine{Inf: true}
	}
	zInv, zInv2, zInv3 := t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Inv(&zInv, &p.Z)
	t.E2Square(&zInv2, &zInv)
	t.E2Mul(&zInv3, &zInv2, &zInv)
	out := G2Affine{X: t.E2Zero(), Y: t.E2Zero()}
	t.E2Mul(&out.X, &p.X, &zInv2)
	t.E2Mul(&out.Y, &p.Y, &zInv3)
	return out
}

// Double sets p = 2p (a = 0 Jacobian doubling).
func (g *G2) Double(p *G2Jacobian) {
	t := g.T
	if t.E2IsZero(&p.Z) {
		return
	}
	a, b, c, d, e, f := t.E2Zero(), t.E2Zero(), t.E2Zero(), t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Square(&a, &p.X) // A = X²
	t.E2Square(&b, &p.Y) // B = Y²
	t.E2Square(&c, &b)   // C = B²
	// D = 2((X+B)² − A − C)
	t.E2Add(&d, &p.X, &b)
	t.E2Square(&d, &d)
	t.E2Sub(&d, &d, &a)
	t.E2Sub(&d, &d, &c)
	t.E2Double(&d, &d)
	// E = 3A, F = E²
	t.E2Double(&e, &a)
	t.E2Add(&e, &e, &a)
	t.E2Square(&f, &e)
	// Z3 = 2YZ (before X/Y are overwritten)
	t.E2Mul(&p.Z, &p.Y, &p.Z)
	t.E2Double(&p.Z, &p.Z)
	// X3 = F − 2D
	t.E2Sub(&p.X, &f, &d)
	t.E2Sub(&p.X, &p.X, &d)
	// Y3 = E(D − X3) − 8C
	t.E2Sub(&d, &d, &p.X)
	t.E2Mul(&p.Y, &e, &d)
	t.E2Double(&c, &c)
	t.E2Double(&c, &c)
	t.E2Double(&c, &c)
	t.E2Sub(&p.Y, &p.Y, &c)
}

// AddMixed sets p += q for affine q (madd-2007-bl with edge handling).
func (g *G2) AddMixed(p *G2Jacobian, q *G2Affine) {
	t := g.T
	if q.Inf {
		return
	}
	if t.E2IsZero(&p.Z) {
		*p = g.FromAffine(q)
		return
	}
	z1z1, u2, s2 := t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Square(&z1z1, &p.Z)
	t.E2Mul(&u2, &q.X, &z1z1)
	t.E2Mul(&s2, &q.Y, &p.Z)
	t.E2Mul(&s2, &s2, &z1z1)
	h, rr := t.E2Zero(), t.E2Zero()
	t.E2Sub(&h, &u2, &p.X)
	t.E2Sub(&rr, &s2, &p.Y)
	if t.E2IsZero(&h) {
		if t.E2IsZero(&rr) {
			g.Double(p)
			return
		}
		*p = G2Jacobian{X: t.E2One(), Y: t.E2One(), Z: t.E2Zero()}
		return
	}
	t.E2Double(&rr, &rr) // r = 2(S2 − Y1)
	hh, i, j, v := t.E2Zero(), t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Square(&hh, &h)
	t.E2Double(&i, &hh)
	t.E2Double(&i, &i) // I = 4HH
	t.E2Mul(&j, &h, &i)
	t.E2Mul(&v, &p.X, &i)
	// Z3 = (Z1+H)² − Z1Z1 − HH
	t.E2Add(&p.Z, &p.Z, &h)
	t.E2Square(&p.Z, &p.Z)
	t.E2Sub(&p.Z, &p.Z, &z1z1)
	t.E2Sub(&p.Z, &p.Z, &hh)
	// X3 = r² − J − 2V
	x3 := t.E2Zero()
	t.E2Square(&x3, &rr)
	t.E2Sub(&x3, &x3, &j)
	t.E2Sub(&x3, &x3, &v)
	t.E2Sub(&x3, &x3, &v)
	// Y3 = r(V − X3) − 2·Y1·J
	y3 := t.E2Zero()
	t.E2Sub(&v, &v, &x3)
	t.E2Mul(&y3, &rr, &v)
	t.E2Mul(&j, &p.Y, &j)
	t.E2Double(&j, &j)
	t.E2Sub(&y3, &y3, &j)
	t.E2Set(&p.X, &x3)
	t.E2Set(&p.Y, &y3)
}

// ScalarMul returns k·q by double-and-add.
func (g *G2) ScalarMul(q *G2Affine, k *big.Int) G2Affine {
	acc := g.FromAffine(&G2Affine{Inf: true})
	for i := k.BitLen() - 1; i >= 0; i-- {
		g.Double(&acc)
		if k.Bit(i) == 1 {
			g.AddMixed(&acc, q)
		}
	}
	return g.ToAffine(&acc)
}

// ScalarMulFr returns k·q for a scalar-field element.
func (g *G2) ScalarMulFr(q *G2Affine, fr *field.Field, k field.Element) G2Affine {
	return g.ScalarMul(q, fr.ToBig(k))
}

// Add returns p + q in affine form.
func (g *G2) Add(p, q *G2Affine) G2Affine {
	acc := g.FromAffine(p)
	g.AddMixed(&acc, q)
	return g.ToAffine(&acc)
}

// Neg returns −p.
func (g *G2) Neg(p *G2Affine) G2Affine {
	if p.Inf {
		return G2Affine{Inf: true}
	}
	t := g.T
	out := G2Affine{X: t.E2Clone(&p.X), Y: t.E2Zero()}
	t.E2Neg(&out.Y, &p.Y)
	return out
}

// Equal reports whether two affine points are equal.
func (g *G2) Equal(p, q *G2Affine) bool {
	if p.Inf || q.Inf {
		return p.Inf == q.Inf
	}
	return g.T.E2Equal(&p.X, &q.X) && g.T.E2Equal(&p.Y, &q.Y)
}

// MSM computes Σ k_i·Q_i with a windowed Pippenger over G2 (the prover's
// second MSM; window fixed at 8 bits, adequate for the functional sizes).
//
// Deprecated: long-running provers should use MSMContext so a cancelled
// job does not run the full G2 MSM to completion on the caller
// goroutine.
func (g *G2) MSM(points []G2Affine, scalars []*big.Int) G2Affine {
	res, _ := g.MSMContext(context.Background(), points, scalars)
	return res
}

// MSMContext computes Σ k_i·Q_i with a windowed Pippenger over G2,
// honouring ctx at every window boundary and every 64 scalars inside the
// scatter loop, so a cancellation lands within O(64) bucket additions
// instead of waiting out the whole MSM.
func (g *G2) MSMContext(ctx context.Context, points []G2Affine, scalars []*big.Int) (G2Affine, error) {
	const s = 8
	if err := ctx.Err(); err != nil {
		return G2Affine{Inf: true}, err
	}
	maxBits := 0
	for _, k := range scalars {
		if k.BitLen() > maxBits {
			maxBits = k.BitLen()
		}
	}
	if maxBits == 0 {
		return G2Affine{Inf: true}, nil
	}
	nWin := (maxBits + s - 1) / s
	acc := g.FromAffine(&G2Affine{Inf: true})
	for j := nWin - 1; j >= 0; j-- {
		if err := ctx.Err(); err != nil {
			return G2Affine{Inf: true}, err
		}
		for b := 0; b < s; b++ {
			g.Double(&acc)
		}
		buckets := make([]*G2Jacobian, 1<<s)
		for i, k := range scalars {
			if i&63 == 0 {
				if err := ctx.Err(); err != nil {
					return G2Affine{Inf: true}, err
				}
			}
			d := 0
			for b := 0; b < s; b++ {
				d |= int(k.Bit(j*s+b)) << b
			}
			if d == 0 {
				continue
			}
			if buckets[d] == nil {
				p := g.FromAffine(&G2Affine{Inf: true})
				buckets[d] = &p
			}
			g.AddMixed(buckets[d], &points[i])
		}
		running := g.FromAffine(&G2Affine{Inf: true})
		total := g.FromAffine(&G2Affine{Inf: true})
		for d := len(buckets) - 1; d >= 1; d-- {
			if buckets[d] != nil {
				aff := g.ToAffine(buckets[d])
				g.AddMixed(&running, &aff)
			}
			raff := g.ToAffine(&running)
			g.AddMixed(&total, &raff)
		}
		taff := g.ToAffine(&total)
		g.AddMixed(&acc, &taff)
	}
	return g.ToAffine(&acc), nil
}
