package tensorcore

import (
	"math/big"

	"distmsm/internal/bigint"
)

// MontMultiplier performs Montgomery modular multiplication with the
// m×n product of Algorithm 2 executed on the simulated tensor cores
// (§4.3): both n and n' = -n⁻¹ mod R are constants, so both the
// reduction-factor computation m = C·n' mod R and the wide product m×n
// run as digit-matrix multiplications. Results are bit-for-bit equal to
// the CUDA-core (CIOS) path; the engines' counters expose the tensor-core
// work for the cost model.
type MontMultiplier struct {
	m *bigint.Montgomery
	// engN multiplies by the modulus n (width w digits → 2w product).
	engN *Engine
	// engNPrime multiplies by n' (full width) to form m = C_low·n' mod R.
	engNPrime *Engine
	// Compact selects on-the-fly register compaction; when false the
	// expanded fragments take the memory round trip (CompactViaMemory).
	Compact bool
}

// NewMontMultiplier builds the tensor-core Montgomery multiplier for the
// given Montgomery context.
func NewMontMultiplier(m *bigint.Montgomery) *MontMultiplier {
	w := m.Width()
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
	nPrime := new(big.Int).ModInverse(m.N.ToBig(), r)
	nPrime.Neg(nPrime).Mod(nPrime, r)
	return &MontMultiplier{
		m:         m,
		engN:      NewEngine(m.N, w),
		engNPrime: NewEngine(bigint.FromBig(nPrime, w), w),
	}
}

// Counters returns the accumulated simulated-hardware counters of both
// engines.
func (t *MontMultiplier) Counters() Counters {
	a, b := t.engN.Counters, t.engNPrime.Counters
	return Counters{
		MMAOps:     a.MMAOps + b.MMAOps,
		Shuffles:   a.Shuffles + b.Shuffles,
		MemWrites:  a.MemWrites + b.MemWrites,
		CompactOps: a.CompactOps + b.CompactOps,
	}
}

// MulBatch computes z[i] = x[i]·y[i]·R⁻¹ mod N for a batch of 8
// independent products (the warp-level batching of Figure 7a). All slices
// must have the context's width.
func (t *MontMultiplier) MulBatch(z, x, y *[Batch]bigint.Nat) {
	w := t.m.Width()

	// Step 1 (CUDA cores): full products C = x·y.
	var cLow [Batch][]uint8
	cFull := make([]bigint.Nat, Batch)
	for i := 0; i < Batch; i++ {
		c := bigint.New(2 * w)
		bigint.MulInto(c, x[i], y[i])
		cFull[i] = c
		cLow[i] = Digits8(c[:w])
	}

	// Step 2 (tensor cores): m = (C mod R)·n' mod R.
	mExpanded := t.engNPrime.MulBatch(&cLow)
	var mDigits [Batch][]uint8
	for i := 0; i < Batch; i++ {
		mLimbs := t.fold(t.engNPrime, mExpanded[i], 2*w)
		mDigits[i] = Digits8(mLimbs[:w]) // mod R: keep the low w limbs
	}

	// Step 3 (tensor cores): P = m·n, the multiply the paper offloads.
	pExpanded := t.engN.MulBatch(&mDigits)

	for i := 0; i < Batch; i++ {
		p := t.fold(t.engN, pExpanded[i], 2*w+1)
		// C + P ≡ 0 mod R by construction; (C+P)/R < 2N.
		sum := bigint.New(2*w + 1)
		copy(sum, cFull[i])
		carry := bigint.AddInto(sum[:2*w], sum[:2*w], p[:2*w])
		sum[2*w] = p[2*w] + carry
		res := sum[w : 2*w+1] // divide by R
		copy(z[i], res[:w])
		if res[w] != 0 || z[i].Cmp(t.m.N) >= 0 {
			bigint.SubInto(z[i], z[i], t.m.N)
		}
	}
}

// fold converts expanded convolution outputs to limbs via the selected
// compaction strategy.
func (t *MontMultiplier) fold(e *Engine, c []uint32, limbs int) []uint64 {
	var compacted []uint64
	if t.Compact {
		compacted = e.CompactOnTheFly(c)
	} else {
		compacted = e.CompactViaMemory(c)
	}
	return CompactedToValue(compacted, limbs)
}
