package core

import (
	"context"
	"errors"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/msm"
)

// Failure-injection / adversarial-input tests for the functional DistMSM
// path: extreme scalars, degenerate point sets, and mixed-sign digit
// streams must all reduce to the double-and-add reference.

func TestRunExtremeScalars(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 4)
	points := c.SamplePoints(8, 101)
	w := (c.ScalarBits + 63) / 64

	allOnes := bigint.New(w)
	for i := 0; i < c.ScalarBits; i++ {
		allOnes[i/64] |= 1 << (uint(i) % 64)
	}
	one := bigint.New(w)
	one.SetUint64(1)
	powTwo := bigint.New(w)
	powTwo[w-1] = 1 << 61 // the isolated top in-range bit (position 253)

	scalars := []bigint.Nat{
		allOnes,         // forces carries through every signed window
		bigint.New(w),   // zero
		one,             // identity coefficient
		powTwo,          // isolated high bit
		allOnes.Clone(), // duplicate of an extreme value
		one.Clone(),     // duplicate small value
		allOnes.Clone(), // triplicate
		bigint.New(w),   // another zero
	}
	want := c.MSMReference(points, scalars)
	for _, opts := range []Options{
		{WindowSize: 7},
		{WindowSize: 13, Unsigned: true},
		{WindowSize: 4, ForceNaiveScatter: true},
	} {
		res, err := Run(c, cl, points, scalars, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Fatalf("%+v: extreme-scalar MSM mismatch", opts)
		}
	}
}

// Scalars wider than the curve's λ must be rejected, not silently
// truncated (found by this very test before the guard existed).
func TestRunRejectsOverwideScalars(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	points := c.SamplePoints(1, 110)
	w := (c.ScalarBits + 63) / 64
	tooWide := bigint.New(w)
	tooWide[w-1] = 1 << 62 // bit 254 == 2^λ
	if _, err := Run(c, cl, points, []bigint.Nat{tooWide}, Options{WindowSize: 8}); err == nil {
		t.Fatal("over-wide scalar accepted")
	}
}

func TestRunDegeneratePointSets(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	cl := cluster(t, 8)
	base := c.SamplePoints(1, 102)[0]
	neg := curve.PointAffine{X: base.X.Clone(), Y: base.Y.Clone()}
	c.NegAffine(&neg)

	// All the same point, plus its negation, plus infinities: every
	// bucket-edge (doubling, cancellation, skip) fires.
	points := []curve.PointAffine{base, base, neg, {Inf: true}, base, neg, {Inf: true}, base}
	scalars := c.SampleScalars(len(points), 103)
	want := c.MSMReference(points, scalars)
	res, err := Run(c, cl, points, scalars, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("degenerate point-set MSM mismatch")
	}
}

// TestInputValidation is the table-driven audit of every construction
// and entry-point guard: degenerate cluster shapes, non-physical device
// specs and zero-length inputs must fail fast with their typed sentinels
// instead of dividing by zero (or worse) deep inside a run.
func TestInputValidation(t *testing.T) {
	c := mustCurve(t, "BN254")
	goodDev := gpusim.A100()
	badDev := goodDev
	badDev.SMs = 0
	unnamedDev := goodDev
	unnamedDev.Name = ""
	pts1 := c.SamplePoints(1, 120)
	scs1 := c.SampleScalars(1, 121)

	clusterCases := []struct {
		name string
		dev  gpusim.Device
		n    int
		want error
	}{
		{"zero GPUs", goodDev, 0, gpusim.ErrNoGPUs},
		{"negative GPUs", goodDev, -3, gpusim.ErrNoGPUs},
		{"zero-value device", gpusim.Device{}, 4, gpusim.ErrBadDevice},
		{"zero SMs", badDev, 4, gpusim.ErrBadDevice},
		{"unnamed device", unnamedDev, 4, gpusim.ErrBadDevice},
		{"valid", goodDev, 1, nil},
	}
	for _, tc := range clusterCases {
		t.Run("cluster/"+tc.name, func(t *testing.T) {
			_, err := gpusim.NewCluster(tc.dev, tc.n)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("want success, got %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}

	cl := cluster(t, 2)
	runCases := []struct {
		name    string
		points  []curve.PointAffine
		scalars []bigint.Nat
		want    error
	}{
		{"nil inputs", nil, nil, ErrEmptyInput},
		{"empty non-nil inputs", []curve.PointAffine{}, []bigint.Nat{}, ErrEmptyInput},
		{"nil scalars only", pts1, nil, ErrLengthMismatch},
		{"nil points only", nil, scs1, ErrLengthMismatch},
		{"length mismatch", c.SamplePoints(3, 122), c.SampleScalars(2, 123), ErrLengthMismatch},
		{"valid", pts1, scs1, nil},
	}
	for _, tc := range runCases {
		for _, e := range []Engine{EngineSerial, EngineConcurrent} {
			t.Run("run/"+tc.name+"/"+e.String(), func(t *testing.T) {
				_, err := RunContext(context.Background(), c, cl, tc.points, tc.scalars,
					Options{WindowSize: 8, Engine: e})
				if tc.want == nil {
					if err != nil {
						t.Fatalf("want success, got %v", err)
					}
					return
				}
				if !errors.Is(err, tc.want) {
					t.Fatalf("want %v, got %v", tc.want, err)
				}
			})
		}
	}

	// BuildPlan shares the n guard with the entry points.
	if _, err := BuildPlan(c, cl, 0, Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("BuildPlan(n=0): want ErrEmptyInput, got %v", err)
	}
	if _, err := BuildPlan(c, cl, -5, Options{}); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("BuildPlan(n=-5): want ErrEmptyInput, got %v", err)
	}

	// An invalid fault config is rejected before any work is scheduled.
	badFaults := &gpusim.FaultConfig{Transient: 2}
	_, err := RunContext(context.Background(), c, cl, pts1, scs1,
		Options{WindowSize: 8, Engine: EngineConcurrent, Faults: badFaults})
	if !errors.Is(err, gpusim.ErrBadFaultConfig) {
		t.Errorf("want ErrBadFaultConfig, got %v", err)
	}
}

func TestRunStatsConsistency(t *testing.T) {
	// The recorded PACC count must match the nonzero-digit count the
	// plan implies (one accumulate per scattered point).
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	n := 64
	points := c.SamplePoints(n, 104)
	scalars := c.SampleScalars(n, 105)
	res, err := Run(c, cl, points, scalars, Options{WindowSize: 9, Unsigned: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count nonzero digits directly with the streaming recoder.
	plan := res.Plan
	rec := msm.NewWindowRecoder(scalars, c.ScalarBits, plan.S, plan.Signed)
	var nonzero uint64
	var digits []int32
	for j := 0; j < plan.Windows; j++ {
		digits = rec.Window(j, digits)
		for _, d := range digits {
			if d != 0 {
				nonzero++
			}
		}
	}
	if res.Stats.PACCOps != nonzero {
		t.Fatalf("PACC ops %d != nonzero digits %d", res.Stats.PACCOps, nonzero)
	}
	if res.Stats.Scatter.GlobalAtomics == 0 {
		t.Fatal("scatter stats missing")
	}
}
