package groth16

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"distmsm/internal/r1cs"
)

// Cancellation coverage for the context-threaded prover pipeline: before
// this PR only the MSM shards inside a context-aware MSMFunc observed
// ctx — the NTT/QAP/quotient phases could not be cancelled or deadlined.

// TestProveContextExpiredDeadline: a job already past its deadline must
// return context.DeadlineExceeded from inside the prover itself. msmG1
// is nil (the CPU Pippenger, which has no context at all), so the error
// can only come from groth16's own phase-boundary checks.
func TestProveContextExpiredDeadline(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 60, 5)
	rnd := rand.New(rand.NewSource(5))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := e.ProveContext(ctx, cs, pk, w, rnd, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded from inside Prove, got %v", err)
	}
}

// TestProveContextCancelMidQuotient cancels while the prover is inside
// the quotient's coset NTTs: the witness check passes first (so the
// cancel is observed by the pipeline, not the entry guard), then a
// pre-cancelled context aborts the first NTT between butterfly passes.
func TestProveContextCancelMidQuotient(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 120, 6)
	rnd := rand.New(rand.NewSource(6))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	// Direct quotient check: a dead context must surface from the NTT
	// layer (the quotient has no other early-outs).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.quotient(ctx, cs, pk.Domain, w, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("quotient: want context.Canceled, got %v", err)
	}
	// And through the public entry point with a live-then-dead context:
	// cancel after the Satisfied check has had time to start.
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.ProveContext(ctx2, cs, pk, w, rnd, nil)
		done <- err
	}()
	cancel2()
	select {
	case err := <-done:
		// Either the proof finished before the cancel landed (small
		// circuit) or it was cancelled; both are correct, a hang is not.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("want nil or context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled ProveContext did not return")
	}
}

// TestSetupContextCancel: SetupContext observes a dead context inside
// the per-variable key-element loop.
func TestSetupContextCancel(t *testing.T) {
	e := newEngine(t)
	cs, _ := r1cs.BuildSynthetic(e.Fr, 80, 7)
	rnd := rand.New(rand.NewSource(7))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.SetupContext(ctx, cs, rnd); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
