package service

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"distmsm/internal/gpusim"
)

// TestChaos is the service's acceptance gauntlet: a fleet of jobs runs
// against a cluster injecting all four fault classes (transient errors,
// stragglers, device losses, corrupted results) with aggressive breaker
// tuning, while a chaos goroutine cancels a random subset of the jobs
// at random points in their pipeline — queued, mid-NTT, mid-MSM,
// mid-phase. Invariants:
//
//   - every job terminates: with a verified proof, or with a context
//     error for the cancelled ones — never a hang, never a fault error
//     (the scheduler and the serial fallback absorb all four classes);
//   - every completed proof is byte-identical to a CPU-only reference
//     proof of the same (circuit, seed) — faults, retries, quarantine
//     and serial degradation never change a single bit;
//   - after shutdown, no goroutine of the service survives.
func TestChaos(t *testing.T) {
	check := leakCheck(t)
	const (
		constraints = 64
		jobCount    = 18
	)
	svc := newTestService(t, 4, constraints, func(c *Config) {
		c.Workers = 3
		c.QueueDepth = jobCount // admit the whole fleet; backpressure is tested elsewhere
		c.Faults = &gpusim.FaultConfig{
			Seed:            5,
			Transient:       0.10,
			Straggler:       0.05,
			StragglerFactor: 4,
			DeviceLost:      0.02,
			Corrupt:         0.05,
		}
		c.Health = gpusim.HealthConfig{FaultThreshold: 2, CooldownRuns: 2, ProbeBuckets: 16}
	})

	// CPU-only reference proofs, one per seed: same witness generator,
	// same proof randomness, no simulated GPUs anywhere near them.
	circ := svc.circuits["synthetic"]
	reference := make(map[int64][]byte)
	for seed := int64(1); seed <= jobCount; seed++ {
		w, err := circ.witness(seed)
		if err != nil {
			t.Fatal(err)
		}
		proof, err := svc.eng.ProveContext(context.Background(), circ.cs, circ.pk, w,
			rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			t.Fatal(err)
		}
		reference[seed] = svc.eng.MarshalProof(proof)
	}

	chaosRnd := rand.New(rand.NewSource(99))
	var cancels sync.WaitGroup
	jobs := make([]*Job, 0, jobCount)
	for seed := int64(1); seed <= jobCount; seed++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: seed, Timeout: time.Minute})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		jobs = append(jobs, job)
		// Cancel roughly half the fleet at a random point of its life —
		// some while still queued, some deep inside proving.
		if chaosRnd.Intn(2) == 0 {
			delay := time.Duration(chaosRnd.Intn(300)) * time.Millisecond
			cancels.Add(1)
			go func(j *Job, d time.Duration) {
				defer cancels.Done()
				time.Sleep(d)
				j.Cancel()
			}(job, delay)
		}
	}

	completed, cancelled := 0, 0
	for _, job := range jobs {
		proof, err := job.Wait(context.Background())
		switch {
		case err == nil:
			completed++
			got := svc.eng.MarshalProof(proof)
			if !bytes.Equal(got, reference[job.Seed]) {
				t.Errorf("job %d (seed %d): proof not bit-identical to CPU reference", job.ID, job.Seed)
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			cancelled++
		default:
			t.Errorf("job %d (seed %d): unexpected terminal error %v", job.ID, job.Seed, err)
		}
	}
	cancels.Wait()
	t.Logf("chaos: %d completed, %d cancelled", completed, cancelled)
	if completed == 0 {
		t.Error("chaos cancelled every job; nothing exercised the fault path to completion")
	}

	// The injector hit the fleet and the scheduler reported it into the
	// cross-request registry (exact counts depend on cancellation timing;
	// existence does not).
	var shards, faults int
	for _, h := range svc.Health() {
		shards += h.Shards
		faults += h.Faults
	}
	if shards == 0 {
		t.Error("health registry saw no committed shards across the whole fleet")
	}
	st := svc.Stats()
	if int(st.Completed) != completed || int(st.Cancelled) != cancelled || st.Failed != 0 {
		t.Errorf("stats %+v disagree with observed %d completed / %d cancelled", st, completed, cancelled)
	}

	shutdownClean(t, svc)
	check()
}
