package msm

import (
	"fmt"

	"distmsm/internal/bigint"
)

// WindowRecoder produces scalar digits one window at a time, least
// significant window first, without materialising the full
// digits[windows][n] matrix that Digits/SignedDigits imply. The only
// cross-window state of the signed recoding is a carry bit per scalar,
// so the recoder holds n bytes of carries instead of windows·n·4 bytes
// of digits — the streaming form the execution engines consume.
//
// Windows must be requested strictly in order (0, 1, 2, ...); the
// returned slice is owned by the caller. The digit streams are
// bit-identical to Digits (unsigned) and SignedDigits (signed), with
// windows past the recoding's natural length reading as all-zero.
type WindowRecoder struct {
	scalars    []bigint.Nat
	scalarBits int
	s          int
	signed     bool
	next       int
	carries    []uint8 // signed mode only: carry into window `next`
}

// NewWindowRecoder builds a recoder for the given scalars. Scalar width
// validation is the caller's job (see core.RunContext); out-of-range
// window sizes panic as in Digits.
func NewWindowRecoder(scalars []bigint.Nat, scalarBits, s int, signed bool) *WindowRecoder {
	if s < 1 || s > 31 {
		panic(fmt.Sprintf("msm: window size %d out of range [1,31]", s))
	}
	r := &WindowRecoder{scalars: scalars, scalarBits: scalarBits, s: s, signed: signed}
	if signed {
		r.carries = make([]uint8, len(scalars))
	}
	return r
}

// rawWindows is ⌈λ/s⌉, the window count before the signed carry window.
func (r *WindowRecoder) rawWindows() int { return NumWindows(r.scalarBits, r.s) }

// Window appends window j's digits for every scalar to dst (growing it
// to len(scalars)) and returns it. j must equal the number of windows
// already produced.
func (r *WindowRecoder) Window(j int, dst []int32) []int32 {
	if j != r.next {
		panic(fmt.Sprintf("msm: recoder window %d requested, next is %d", j, r.next))
	}
	r.next++
	if cap(dst) < len(r.scalars) {
		dst = make([]int32, len(r.scalars))
	}
	dst = dst[:len(r.scalars)]
	raw := r.rawWindows()
	if j >= raw {
		// Past the scalar bits: zero except the signed carry bits.
		for i := range dst {
			dst[i] = 0
			if r.signed && j == raw {
				dst[i] = int32(r.carries[i])
			}
		}
		return dst
	}
	width := r.s
	if rem := r.scalarBits - j*r.s; rem < width {
		width = rem
	}
	if !r.signed {
		for i, k := range r.scalars {
			dst[i] = int32(uint32(k.Bits(j*r.s, width)))
		}
		return dst
	}
	half := int64(1) << (r.s - 1)
	for i, k := range r.scalars {
		v := int64(k.Bits(j*r.s, width)) + int64(r.carries[i])
		if v > half {
			dst[i] = int32(v - (int64(1) << r.s))
			r.carries[i] = 1
		} else {
			dst[i] = int32(v)
			r.carries[i] = 0
		}
	}
	return dst
}
