package ntt

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
)

func frField(t testing.TB) *field.Field {
	t.Helper()
	c, err := curve.ByName("BN254")
	if err != nil {
		t.Fatal(err)
	}
	return c.ScalarField
}

func randVec(f *field.Field, rnd *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = f.Rand(rnd)
	}
	return out
}

func cloneVec(v []field.Element) []field.Element {
	out := make([]field.Element, len(v))
	for i := range v {
		out[i] = v[i].Clone()
	}
	return out
}

func TestNewDomainErrors(t *testing.T) {
	f := frField(t)
	if _, err := NewDomain(f, 3); err == nil {
		t.Error("non-power-of-two must fail")
	}
	if _, err := NewDomain(f, 1<<29); err == nil {
		t.Error("beyond 2-adicity must fail")
	}
	if _, err := NewDomain(f, 1); err != nil {
		t.Errorf("size-1 domain: %v", err)
	}
}

func TestForwardMatchesDirectEvaluation(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(1))
	d, err := NewDomain(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := randVec(f, rnd, 8)
	got := cloneVec(coeffs)
	mustForward(t, d, got)
	// Direct evaluation at ω^j.
	wj := f.One()
	tmp := f.NewElement()
	for j := 0; j < 8; j++ {
		want := EvaluatePoly(f, coeffs, wj)
		if !got[j].Equal(want) {
			t.Fatalf("NTT[%d] mismatch", j)
		}
		f.Mul(tmp, wj, d.root)
		wj.Set(tmp)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 64, 256, 1024} {
		d, err := NewDomain(f, n)
		if err != nil {
			t.Fatal(err)
		}
		v := randVec(f, rnd, n)
		w := cloneVec(v)
		mustForward(t, d, w)
		mustInverse(t, d, w)
		for i := range v {
			if !w[i].Equal(v[i]) {
				t.Fatalf("n=%d: inverse round trip failed at %d", n, i)
			}
		}
		// Coset round trip too.
		mustCosetForward(t, d, w)
		mustCosetInverse(t, d, w)
		for i := range v {
			if !w[i].Equal(v[i]) {
				t.Fatalf("n=%d: coset round trip failed at %d", n, i)
			}
		}
	}
}

func TestNTTLinearity(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(3))
	d, _ := NewDomain(f, 128)
	a := randVec(f, rnd, 128)
	b := randVec(f, rnd, 128)
	sum := make([]field.Element, 128)
	for i := range sum {
		sum[i] = f.NewElement()
		f.Add(sum[i], a[i], b[i])
	}
	fa, fb, fsum := cloneVec(a), cloneVec(b), cloneVec(sum)
	mustForward(t, d, fa)
	mustForward(t, d, fb)
	mustForward(t, d, fsum)
	tmp := f.NewElement()
	for i := range fsum {
		f.Add(tmp, fa[i], fb[i])
		if !fsum[i].Equal(tmp) {
			t.Fatal("NTT not linear")
		}
	}
}

func TestMulPolysMatchesSchoolbook(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(4))
	d, _ := NewDomain(f, 64)
	a := randVec(f, rnd, 20)
	b := randVec(f, rnd, 30)
	got, err := d.MulPolys(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]field.Element, 64)
	for i := range want {
		want[i] = f.NewElement()
	}
	tmp := f.NewElement()
	for i := range a {
		for j := range b {
			f.Mul(tmp, a[i], b[j])
			f.Add(want[i+j], want[i+j], tmp)
		}
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("MulPolys coefficient %d mismatch", i)
		}
	}
	if _, err := d.MulPolys(randVec(f, rnd, 65), b); err == nil {
		t.Error("oversized operand must fail")
	}
}

func TestCosetAvoidsSubgroup(t *testing.T) {
	f := frField(t)
	d, _ := NewDomain(f, 256)
	// g^N != 1 guaranteed by construction.
	gN := f.NewElement()
	f.Exp(gN, d.gen, big.NewInt(256))
	if gN.Equal(f.One()) {
		t.Fatal("coset shift lies in the subgroup")
	}
}

func BenchmarkNTT(b *testing.B) {
	f := frField(b)
	rnd := rand.New(rand.NewSource(5))
	for _, n := range []int{1 << 10, 1 << 14} {
		d, _ := NewDomain(f, n)
		v := randVec(f, rnd, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustForward(b, d, v)
			}
		})
	}
}

func sizeName(n int) string {
	k := 0
	for 1<<k < n {
		k++
	}
	return "2^" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}

func TestParallelMatchesSerial(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(21))
	for _, n := range []int{64, 1024, 4096} {
		d, err := NewDomain(f, n)
		if err != nil {
			t.Fatal(err)
		}
		v := randVec(f, rnd, n)
		serial := cloneVec(v)
		parallel := cloneVec(v)
		mustForward(t, d, serial)
		for _, workers := range []int{1, 3, 8} {
			p := cloneVec(v)
			d.ParallelForward(p, workers)
			for i := range p {
				if !p[i].Equal(serial[i]) {
					t.Fatalf("n=%d workers=%d: parallel forward mismatch at %d", n, workers, i)
				}
			}
		}
		d.ParallelForward(parallel, 4)
		d.ParallelInverse(parallel, 4)
		for i := range v {
			if !parallel[i].Equal(v[i]) {
				t.Fatalf("n=%d: parallel round trip failed at %d", n, i)
			}
		}
	}
}

func BenchmarkNTTParallel(b *testing.B) {
	f := frField(b)
	rnd := rand.New(rand.NewSource(22))
	n := 1 << 14
	d, _ := NewDomain(f, n)
	v := randVec(f, rnd, n)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustForward(b, d, v)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.ParallelForward(v, 0)
		}
	})
}

func TestFourStepMatchesForward(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ n1, n2 int }{{4, 8}, {8, 8}, {16, 4}, {2, 32}} {
		n := tc.n1 * tc.n2
		d, err := NewDomain(f, n)
		if err != nil {
			t.Fatal(err)
		}
		v := randVec(f, rnd, n)
		want := cloneVec(v)
		mustForward(t, d, want)
		got, err := d.FourStep(v, tc.n1, tc.n2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%dx%d: four-step mismatch at %d", tc.n1, tc.n2, i)
			}
		}
	}
	// Bad splits rejected.
	d, _ := NewDomain(f, 16)
	if _, err := d.FourStep(randVec(f, rnd, 16), 3, 5); err == nil {
		t.Fatal("non-matching split accepted")
	}
	if _, err := d.FourStep(randVec(f, rnd, 8), 4, 4); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestMultiGPUNTTScaling(t *testing.T) {
	// The paper's future-work projection: the distributed NTT scales with
	// GPU count until the all-to-all transpose dominates.
	n := 1 << 24
	var prev float64
	for i, g := range []int{1, 2, 4, 8} {
		cl, err := gpusim.NewCluster(gpusim.A100(), g)
		if err != nil {
			t.Fatal(err)
		}
		sec := MultiGPUNTTSeconds(cl, n, 254)
		if sec <= 0 {
			t.Fatal("non-positive NTT time")
		}
		if i > 0 && sec >= prev {
			t.Errorf("no NTT speedup at %d GPUs (%.4g -> %.4g)", g, prev, sec)
		}
		prev = sec
	}
	// Communication eventually bounds the speedup below linear.
	cl1, _ := gpusim.NewCluster(gpusim.A100(), 1)
	cl32, _ := gpusim.NewCluster(gpusim.A100(), 32)
	sp := MultiGPUNTTSeconds(cl1, n, 254) / MultiGPUNTTSeconds(cl32, n, 254)
	if sp >= 32 {
		t.Errorf("32-GPU NTT speedup %.1fx should be sub-linear (transpose-bound)", sp)
	}
}

// TestContextTransformsMatchAndCancel: the *Context transforms are
// bit-identical to the ctx-less wrappers on a live context, and an
// already-dead context aborts every variant with its error before (or
// between) butterfly passes, leaving no panic behind.
func TestContextTransformsMatchAndCancel(t *testing.T) {
	f := frField(t)
	rnd := rand.New(rand.NewSource(77))
	d, err := NewDomain(f, 256)
	if err != nil {
		t.Fatal(err)
	}
	orig := randVec(f, rnd, 256)

	variants := []struct {
		name string
		ref  func(a []field.Element)
		ctx  func(ctx context.Context, a []field.Element) error
	}{
		{"forward", d.Forward, d.ForwardContext},
		{"inverse", d.Inverse, d.InverseContext},
		{"coset-forward", d.CosetForward, d.CosetForwardContext},
		{"coset-inverse", d.CosetInverse, d.CosetInverseContext},
	}
	for _, v := range variants {
		want := cloneVec(orig)
		v.ref(want)
		got := cloneVec(orig)
		if err := v.ctx(context.Background(), got); err != nil {
			t.Fatalf("%s: live context errored: %v", v.name, err)
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("%s: context variant diverged at %d", v.name, i)
			}
		}

		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := v.ctx(cancelled, cloneVec(orig)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", v.name, err)
		}
		expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel2()
		if err := v.ctx(expired, cloneVec(orig)); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: want context.DeadlineExceeded, got %v", v.name, err)
		}
	}
}

// The must* helpers route every test through the context-first API —
// the ctx-less Forward/Inverse wrappers are deprecated, and make lint
// rejects new in-repo calls to them. A background context never
// cancels, so any returned error is fatal.
func mustForward(tb testing.TB, d *Domain, a []field.Element) {
	tb.Helper()
	if err := d.ForwardContext(context.Background(), a); err != nil {
		tb.Fatal(err)
	}
}

func mustInverse(tb testing.TB, d *Domain, a []field.Element) {
	tb.Helper()
	if err := d.InverseContext(context.Background(), a); err != nil {
		tb.Fatal(err)
	}
}

func mustCosetForward(tb testing.TB, d *Domain, a []field.Element) {
	tb.Helper()
	if err := d.CosetForwardContext(context.Background(), a); err != nil {
		tb.Fatal(err)
	}
}

func mustCosetInverse(tb testing.TB, d *Domain, a []field.Element) {
	tb.Helper()
	if err := d.CosetInverseContext(context.Background(), a); err != nil {
		tb.Fatal(err)
	}
}
