package groth16

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"distmsm/internal/r1cs"
)

// FuzzProofRoundTrip feeds arbitrary bytes to the proof and
// verifying-key decoders. Invariants: the decoders never panic on any
// input; whatever they accept re-encodes to exactly the bytes that were
// decoded (the encoding is canonical, so a proof cannot have two
// distinct wire forms — malleable encodings are a classic proof-system
// footgun). Seeded with a genuine proof/VK pair so the accepting path is
// explored from the first run.
func FuzzProofRoundTrip(f *testing.F) {
	e, err := NewEngine()
	if err != nil {
		f.Fatal(err)
	}
	cs, w := r1cs.BuildSynthetic(e.Fr, 20, 9)
	rnd := rand.New(rand.NewSource(9))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		f.Fatal(err)
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(e.MarshalProof(proof))
	f.Add(e.MarshalVerifyingKey(vk))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, e.ProofSize()))
	f.Add(make([]byte, e.ProofSize()))

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := e.UnmarshalProof(data); err == nil {
			out := e.MarshalProof(p)
			if !bytes.Equal(out, data) {
				t.Fatalf("proof round-trip not canonical:\n in %x\nout %x", data, out)
			}
		}
		if vk, err := e.UnmarshalVerifyingKey(data); err == nil {
			out := e.MarshalVerifyingKey(vk)
			if !bytes.Equal(out, data) {
				t.Fatalf("verifying-key round-trip not canonical:\n in %x\nout %x", data, out)
			}
		}
	})
}
