package curve

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
	"math/rand"

	"distmsm/internal/bigint"
)

// DerivePoint deterministically derives a curve point from a seed by
// hashing to an x-coordinate and incrementing until x³ + Ax + B is a
// quadratic residue (try-and-increment map-to-curve).
func (c *Curve) DerivePoint(seed uint64) PointAffine {
	f := c.Fp
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h := sha256.Sum256(buf[:])
	// Widen the hash to the field size so high limbs are populated.
	xv := new(big.Int).SetBytes(h[:])
	for xv.BitLen() < f.Bits()-8 {
		h = sha256.Sum256(h[:])
		xv.Lsh(xv, 256)
		xv.Add(xv, new(big.Int).SetBytes(h[:]))
	}
	x := f.FromBig(xv)
	rhs, t, y := f.NewElement(), f.NewElement(), f.NewElement()
	one := f.One()
	for {
		f.Square(rhs, x)
		f.Mul(rhs, rhs, x)
		f.Mul(t, c.A, x)
		f.Add(rhs, rhs, t)
		f.Add(rhs, rhs, c.B)
		if f.Sqrt(y, rhs) {
			return PointAffine{X: x.Clone(), Y: y.Clone()}
		}
		f.Add(x, x, one)
	}
}

// SamplePoints deterministically generates n distinct affine points for
// workload construction: P_0 and a step point D are derived by hashing,
// then P_{i+1} = P_i + D (one PACC each), and the whole chain is
// batch-normalised back to affine with two inversions total.
func (c *Curve) SamplePoints(n int, seed uint64) []PointAffine {
	if n == 0 {
		return nil
	}
	base := c.DerivePoint(seed*2 + 1)
	step := c.DerivePoint(seed*2 + 2)
	adder := c.NewAdder()

	acc := c.NewXYZZ()
	c.SetAffine(acc, &base)
	chain := make([]*PointXYZZ, n)
	for i := 0; i < n; i++ {
		chain[i] = acc.Clone()
		adder.Acc(acc, &step)
	}
	return c.BatchToAffine(chain)
}

// SampleScalars deterministically generates n scalars of the curve's
// ScalarBits width. When the scalar field is known, scalars are reduced
// below the group order; otherwise they are uniform λ-bit integers.
func (c *Curve) SampleScalars(n int, seed int64) []bigint.Nat {
	rnd := rand.New(rand.NewSource(seed))
	width := (c.ScalarBits + 63) / 64
	out := make([]bigint.Nat, n)
	var order *big.Int
	if c.ScalarField != nil {
		order = c.ScalarField.Modulus
	} else {
		order = new(big.Int).Lsh(big.NewInt(1), uint(c.ScalarBits))
	}
	for i := range out {
		v := new(big.Int).Rand(rnd, order)
		out[i] = bigint.FromBig(v, width)
	}
	return out
}
