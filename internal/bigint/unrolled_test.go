package bigint

import (
	"math/big"
	"math/rand"
	"testing"
)

// unrolledModuli are the qualifying 4- and 6-limb moduli: the curve
// fields plus adversarial odd moduli near the width boundaries.
var unrolledModuli = []string{
	// BN254 Fp (4 limbs)
	"21888242871839275222246405745257275088696311157297823662689037894645226208583",
	// BN254 Fr (4 limbs)
	"21888242871839275222246405745257275088548364400416034343698204186575808495617",
	// BLS12-381 Fp (6 limbs)
	"4002409555221667393417789825735904156556882819939007885332058136124031650490837864442687629129015664037894272559787",
	// BLS12-381 Fr (4 limbs)
	"52435875175126190479447740508185965837690552500527637822603658699938581184513",
}

func TestBackendSelection(t *testing.T) {
	for i, dec := range unrolledModuli {
		m, _ := montCtx(t, dec)
		want := "unrolled4"
		if m.Width() == 6 {
			want = "unrolled6"
		}
		if got := m.Backend(); got != want {
			t.Errorf("modulus %d: backend %q, want %q", i, got, want)
		}
	}
	// A modulus with the top limb ≥ 2^63-1 must stay on the generic path.
	n := new(big.Int).Lsh(big.NewInt(1), 256)
	n.Sub(n, big.NewInt(189)) // 2^256-189 is odd with a saturated top limb
	m, err := NewMontgomery(n)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Backend(); got != "generic" {
		t.Errorf("saturated 4-limb modulus selected %q, want generic", got)
	}
	// The 12-limb test modulus is out of unrolled range.
	m, _ = montCtx(t, testModuli[4])
	if got := m.Backend(); got != "generic" {
		t.Errorf("12-limb modulus selected %q, want generic", got)
	}
}

// edgeValues returns the boundary operands of the differential tests:
// 0, 1, p-1, R-1 mod p, R mod p, and p-small.
func edgeValues(n *big.Int, w int) []Nat {
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(n, big.NewInt(1)),
		new(big.Int).Mod(new(big.Int).Sub(r, big.NewInt(1)), n),
		new(big.Int).Mod(r, n),
		new(big.Int).Sub(n, big.NewInt(2)),
	}
	out := make([]Nat, len(vals))
	for i, v := range vals {
		out[i] = FromBig(v, w)
	}
	return out
}

// TestUnrolledMatchesGeneric cross-checks the dispatched unrolled
// kernels against the generic CIOS/SOS reference and math/big on random
// operands and the edge values.
func TestUnrolledMatchesGeneric(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for _, dec := range unrolledModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		rInv := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
		rInv.ModInverse(rInv, n)

		operands := edgeValues(n, w)
		for i := 0; i < 200; i++ {
			operands = append(operands, randResidue(rnd, n, w))
		}
		check := func(x, y Nat) {
			t.Helper()
			fast, ref := New(w), New(w)
			m.Mul(fast, x, y)
			m.MulCIOS(ref, x, y)
			if !fast.Equal(ref) {
				t.Fatalf("mod %s: unrolled mul %v*%v = %v, CIOS %v", n, x, y, fast, ref)
			}
			want := new(big.Int).Mul(x.ToBig(), y.ToBig())
			want.Mul(want, rInv).Mod(want, n)
			if fast.ToBig().Cmp(want) != 0 {
				t.Fatalf("mod %s: unrolled mul disagrees with math/big", n)
			}
			sq, sqRef := New(w), New(w)
			m.Square(sq, x)
			m.SquareSOS(sqRef, x)
			if !sq.Equal(sqRef) {
				t.Fatalf("mod %s: unrolled square != SquareSOS for %v", n, x)
			}
			sum, sumRef := New(w), New(w)
			m.AddMod(sum, x, y)
			m.addModGeneric(sumRef, x, y)
			if !sum.Equal(sumRef) {
				t.Fatalf("mod %s: unrolled add != generic for %v+%v", n, x, y)
			}
			diff, diffRef := New(w), New(w)
			m.SubMod(diff, x, y)
			m.subModGeneric(diffRef, x, y)
			if !diff.Equal(diffRef) {
				t.Fatalf("mod %s: unrolled sub != generic for %v-%v", n, x, y)
			}
		}
		// Every edge pair, plus random pairs.
		edges := edgeValues(n, w)
		for _, x := range edges {
			for _, y := range edges {
				check(x, y)
			}
		}
		for i := 0; i+1 < len(operands); i += 2 {
			check(operands[i], operands[i+1])
		}
	}
}

// TestUnrolledAliasing verifies z aliasing x and/or y is safe.
func TestUnrolledAliasing(t *testing.T) {
	rnd := rand.New(rand.NewSource(78))
	for _, dec := range unrolledModuli {
		m, n := montCtx(t, dec)
		w := m.Width()
		x := randResidue(rnd, n, w)
		y := randResidue(rnd, n, w)

		want := New(w)
		m.Mul(want, x, y)
		xa := x.Clone()
		m.Mul(xa, xa, y)
		if !xa.Equal(want) {
			t.Fatalf("mod %s: mul with z==x wrong", n)
		}
		ya := y.Clone()
		m.Mul(ya, x, ya)
		if !ya.Equal(want) {
			t.Fatalf("mod %s: mul with z==y wrong", n)
		}

		m.Square(want, x)
		xa = x.Clone()
		m.Square(xa, xa)
		if !xa.Equal(want) {
			t.Fatalf("mod %s: square with z==x wrong", n)
		}

		m.Mul(want, x, x)
		xa = x.Clone()
		m.Mul(xa, xa, xa)
		if !xa.Equal(want) {
			t.Fatalf("mod %s: mul with z==x==y wrong", n)
		}
	}
}

// fuzzOperand reduces raw fuzz bytes into a residue mod n.
func fuzzOperand(data []byte, n *big.Int, w int) Nat {
	v := new(big.Int).SetBytes(data)
	v.Mod(v, n)
	return FromBig(v, w)
}

// FuzzMul4Parity differentially fuzzes the 4-limb unrolled kernels
// against generic CIOS and math/big over the BN254 base field.
func FuzzMul4Parity(f *testing.F) {
	n, _ := new(big.Int).SetString(unrolledModuli[0], 10)
	m, err := NewMontgomery(n)
	if err != nil {
		f.Fatal(err)
	}
	seedParityCorpus(f, n)
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		fuzzParity(t, m, n, xb, yb)
	})
}

// FuzzMul6Parity is the 6-limb analogue over the BLS12-381 base field.
func FuzzMul6Parity(f *testing.F) {
	n, _ := new(big.Int).SetString(unrolledModuli[2], 10)
	m, err := NewMontgomery(n)
	if err != nil {
		f.Fatal(err)
	}
	seedParityCorpus(f, n)
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		fuzzParity(t, m, n, xb, yb)
	})
}

func seedParityCorpus(f *testing.F, n *big.Int) {
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*((n.BitLen()+63)/64)))
	seeds := [][]byte{
		{},
		{0},
		{1},
		new(big.Int).Sub(n, big.NewInt(1)).Bytes(),
		new(big.Int).Sub(r, big.NewInt(1)).Bytes(),
		n.Bytes(),
	}
	for _, x := range seeds {
		for _, y := range seeds {
			f.Add(x, y)
		}
	}
}

func fuzzParity(t *testing.T, m *Montgomery, n *big.Int, xb, yb []byte) {
	w := m.Width()
	x := fuzzOperand(xb, n, w)
	y := fuzzOperand(yb, n, w)

	fast, ref := New(w), New(w)
	m.Mul(fast, x, y)
	m.MulCIOS(ref, x, y)
	if !fast.Equal(ref) {
		t.Fatalf("unrolled mul != CIOS: %v * %v", x, y)
	}
	rInv := new(big.Int).Lsh(big.NewInt(1), uint(64*w))
	rInv.ModInverse(rInv, n)
	want := new(big.Int).Mul(x.ToBig(), y.ToBig())
	want.Mul(want, rInv).Mod(want, n)
	if fast.ToBig().Cmp(want) != 0 {
		t.Fatalf("unrolled mul != math/big: %v * %v", x, y)
	}

	sq, sqRef := New(w), New(w)
	m.Square(sq, x)
	m.SquareSOS(sqRef, x)
	if !sq.Equal(sqRef) {
		t.Fatalf("unrolled square != SquareSOS: %v", x)
	}

	sum, sumRef := New(w), New(w)
	m.AddMod(sum, x, y)
	m.addModGeneric(sumRef, x, y)
	if !sum.Equal(sumRef) {
		t.Fatalf("unrolled add != generic: %v + %v", x, y)
	}
	diff, diffRef := New(w), New(w)
	m.SubMod(diff, x, y)
	m.subModGeneric(diffRef, x, y)
	if !diff.Equal(diffRef) {
		t.Fatalf("unrolled sub != generic: %v - %v", x, y)
	}
}

// BenchmarkUnrolled measures the dispatched fast path against the
// generic reference at both widths.
func BenchmarkUnrolled(b *testing.B) {
	rnd := rand.New(rand.NewSource(79))
	for _, tc := range []struct {
		name string
		mod  string
	}{
		{"4limb", unrolledModuli[0]},
		{"6limb", unrolledModuli[2]},
	} {
		m, n := montCtx(b, tc.mod)
		w := m.Width()
		x := randResidue(rnd, n, w)
		y := randResidue(rnd, n, w)
		z := New(w)
		b.Run(tc.name+"/Mul", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Mul(z, x, y)
			}
		})
		b.Run(tc.name+"/Square", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Square(z, x)
			}
		})
		b.Run(tc.name+"/AddMod", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.AddMod(z, x, y)
			}
		})
		b.Run(tc.name+"/MulCIOSGeneric", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.MulCIOS(z, x, y)
			}
		})
		b.Run(tc.name+"/SquareSOSGeneric", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.SquareSOS(z, x)
			}
		})
	}
}
