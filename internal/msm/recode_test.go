package msm

import (
	"math/rand"
	"testing"

	"distmsm/internal/bigint"
)

// randScalars returns n random scalars of at most `bits` bits.
func randScalars(n, bits int, seed int64) []bigint.Nat {
	rnd := rand.New(rand.NewSource(seed))
	words := (bits + 63) / 64
	out := make([]bigint.Nat, n)
	for i := range out {
		k := bigint.New(words)
		for w := range k {
			k[w] = rnd.Uint64()
		}
		// Mask down to the scalar width.
		if rem := bits % 64; rem != 0 {
			k[words-1] &= (1 << rem) - 1
		}
		out[i] = k
	}
	// Force the edge values in as well: zero, one, all-ones.
	if n >= 3 {
		out[0] = bigint.New(words)
		one := bigint.New(words)
		one.SetUint64(1)
		out[1] = one
		ones := bigint.New(words)
		for i := 0; i < bits; i++ {
			ones[i/64] |= 1 << (uint(i) % 64)
		}
		out[2] = ones
	}
	return out
}

// TestWindowRecoderMatchesBatchRecoding checks the streaming recoder is
// bit-identical to Digits / SignedDigits across window sizes, including
// the carry window and the zero tail past the recoding's length.
func TestWindowRecoderMatchesBatchRecoding(t *testing.T) {
	const scalarBits = 253
	scalars := randScalars(32, scalarBits, 7)
	for _, signed := range []bool{false, true} {
		for _, s := range []int{2, 4, 8, 13, 16, 21} {
			windows := NumWindows(scalarBits, s) + 2 // past the natural length
			rec := NewWindowRecoder(scalars, scalarBits, s, signed)
			var digits []int32
			for j := 0; j < windows; j++ {
				digits = rec.Window(j, digits)
				for i, k := range scalars {
					var want int32
					if signed {
						ds := SignedDigits(k, scalarBits, s)
						if j < len(ds) {
							want = ds[j]
						}
					} else {
						ds := Digits(k, scalarBits, s)
						if j < len(ds) {
							want = int32(ds[j])
						}
					}
					if digits[i] != want {
						t.Fatalf("signed=%v s=%d window %d scalar %d: got %d want %d",
							signed, s, j, i, digits[i], want)
					}
				}
			}
		}
	}
}

func TestWindowRecoderEnforcesOrder(t *testing.T) {
	scalars := randScalars(4, 253, 8)
	rec := NewWindowRecoder(scalars, 253, 8, true)
	rec.Window(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order window request must panic")
		}
	}()
	rec.Window(2, nil)
}
