package experiments

import (
	"fmt"
	"math"

	"distmsm/internal/baselines"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
)

// Fig3 reports the §3.1 per-thread workload estimate (normalised to each
// platform's minimum) across window sizes, for 1/8/16/32 GPUs —
// reproducing the shape of Figure 3: the optimum shifts to smaller
// windows as GPUs are added.
func Fig3() (string, error) {
	const n, nt, lambda = 1 << 26, 1 << 16, 253
	gpus := []int{1, 8, 16, 32}
	t := newTable("Figure 3: per-thread workload estimate (normalised), N=2^26, N_T=2^16, lambda=253",
		6, 12, 12, 12, 12)
	header := []string{"s"}
	for _, g := range gpus {
		header = append(header, fmt.Sprintf("%d GPU(s)", g))
	}
	t.row(header...)

	mins := map[int]float64{}
	for _, g := range gpus {
		mins[g] = math.Inf(1)
		for s := 6; s <= 24; s++ {
			w := core.PerThreadWork(core.WorkloadParams{N: n, ScalarBits: lambda, S: s, NGPU: g, NT: nt})
			if w < mins[g] {
				mins[g] = w
			}
		}
	}
	for s := 6; s <= 24; s += 2 {
		cells := []string{fmt.Sprint(s)}
		for _, g := range gpus {
			w := core.PerThreadWork(core.WorkloadParams{N: n, ScalarBits: lambda, S: s, NGPU: g, NT: nt})
			cells = append(cells, fmt.Sprintf("%.2f", w/mins[g]))
		}
		t.row(cells...)
	}
	for _, g := range gpus {
		t.line(fmt.Sprintf("optimal s for %2d GPU(s): %d", g,
			core.OptimalWindow(n, lambda, g, nt, 6, 24)))
	}
	return t.String(), nil
}

// Fig8Config selects the scalability sweep.
type Fig8Config struct {
	LogN int
	GPUs []int
}

// DefaultFig8Config mirrors the paper's axis.
func DefaultFig8Config() Fig8Config { return Fig8Config{LogN: 26, GPUs: []int{1, 2, 4, 8, 16, 32}} }

// Fig8Series is one implementation's speedup-over-one-GPU curve.
type Fig8Series struct {
	Name     string
	Speedups []float64 // aligned with the GPUs axis
}

// Fig8Series computes scalability for DistMSM and every baseline on its
// first supported curve (averaging across curves matches the paper's
// presentation; per-curve series keep the report compact).
func Fig8Data(cfg Fig8Config) ([]Fig8Series, error) {
	dev := gpusim.A100()
	n := 1 << uint(cfg.LogN)
	var out []Fig8Series

	distAvg := make([]float64, len(cfg.GPUs))
	cs, err := mustCurves()
	if err != nil {
		return nil, err
	}
	for _, c := range cs {
		var t1 float64
		for i, g := range cfg.GPUs {
			cl, err := gpusim.NewCluster(dev, g)
			if err != nil {
				return nil, err
			}
			res, err := core.Analytic(c, cl, n, core.Options{})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				t1 = res.Cost.Total()
			}
			distAvg[i] += t1 / res.Cost.Total() / float64(len(cs))
		}
	}
	out = append(out, Fig8Series{Name: "DistMSM", Speedups: distAvg})

	for _, b := range baselines.All() {
		c, err := curve.ByName(b.Curves[0])
		if err != nil {
			return nil, err
		}
		sp := make([]float64, len(cfg.GPUs))
		var t1 float64
		for i, g := range cfg.GPUs {
			tm, err := b.Estimate(c, dev, g, n)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				t1 = tm
			}
			sp[i] = t1 / tm
		}
		out = append(out, Fig8Series{Name: b.Name, Speedups: sp})
	}
	return out, nil
}

// Fig8 renders the multi-GPU-over-single-GPU speedup curves.
func Fig8(cfg Fig8Config) (string, error) {
	series, err := Fig8Data(cfg)
	if err != nil {
		return "", err
	}
	t := newTable(fmt.Sprintf("Figure 8: speedup of multi-GPU over single GPU (N=2^%d)", cfg.LogN),
		12, 8, 8, 8, 8, 8, 8)
	header := []string{"impl"}
	for _, g := range cfg.GPUs {
		header = append(header, fmt.Sprintf("%dGPU", g))
	}
	t.row(header...)
	for _, s := range series {
		cells := []string{s.Name}
		for _, v := range s.Speedups {
			cells = append(cells, fmt.Sprintf("%.2fx", v))
		}
		t.row(cells...)
	}
	return t.String(), nil
}

// Fig9Row is one device comparison.
type Fig9Row struct {
	Device              string
	Bellperson, DistMSM float64
}

// Fig9Data compares Bellperson and DistMSM on the three devices
// (BLS12-381, N=2^26, one GPU each), as in Figure 9.
func Fig9Data() ([]Fig9Row, error) {
	c, err := curve.ByName("BLS12-381")
	if err != nil {
		return nil, err
	}
	bell, err := baselines.ByName("Bellperson")
	if err != nil {
		return nil, err
	}
	n := 1 << 26
	var out []Fig9Row
	for _, dev := range []gpusim.Device{gpusim.A100(), gpusim.RTX4090(), gpusim.AMD6900XT()} {
		bp, err := bell.Estimate(c, dev, 1, n)
		if err != nil {
			return nil, err
		}
		cl, err := gpusim.NewCluster(dev, 1)
		if err != nil {
			return nil, err
		}
		res, err := core.Analytic(c, cl, n, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig9Row{Device: dev.Name, Bellperson: bp, DistMSM: res.Cost.Total()})
	}
	return out, nil
}

// Fig9 renders the cross-device comparison.
func Fig9() (string, error) {
	rows, err := Fig9Data()
	if err != nil {
		return "", err
	}
	t := newTable("Figure 9: modeled execution time (ms) of Bellperson and DistMSM across GPUs (BLS12-381, N=2^26)",
		18, 14, 14, 10)
	t.row("Device", "Bellperson", "DistMSM", "Speedup")
	for _, r := range rows {
		t.row(r.Device, ms(r.Bellperson), ms(r.DistMSM), fmt.Sprintf("%.1fx", r.Bellperson/r.DistMSM))
	}
	return t.String(), nil
}

// Fig10Row is one GPU-count breakdown entry.
type Fig10Row struct {
	GPUs                      int
	NoOpt                     float64
	AlgOnly, KernelOnly, Full float64
}

// Fig10Data isolates the two optimisation families (§5.3.1): the
// multi-GPU Pippenger algorithm and the PADD kernel pipeline, against the
// NO-OPT configuration (single-GPU algorithm, straightforward kernel).
func Fig10Data(logN int) ([]Fig10Row, error) {
	c, err := curve.ByName("BLS12-381")
	if err != nil {
		return nil, err
	}
	n := 1 << uint(logN)
	noOptAlg := func(v kernel.Variant) core.Options {
		return core.Options{
			Variant: v, VariantSet: true,
			Unsigned: true, ForceNaiveScatter: true, ReduceOnGPU: true, SplitNDim: true,
		}
	}
	var out []Fig10Row
	for _, g := range []int{1, 4, 8, 16, 32} {
		cl, err := gpusim.NewCluster(gpusim.A100(), g)
		if err != nil {
			return nil, err
		}
		opts := noOptAlg(kernel.VariantBaseline)
		if g == 1 {
			opts.SplitNDim = false
		}
		run := func(o core.Options) (float64, error) {
			r, err := core.Analytic(c, cl, n, o)
			if err != nil {
				return 0, err
			}
			return r.Cost.Total(), nil
		}
		noOpt, err := run(opts)
		if err != nil {
			return nil, err
		}
		alg, err := run(core.Options{Variant: kernel.VariantBaseline, VariantSet: true})
		if err != nil {
			return nil, err
		}
		kOpts := opts
		kOpts.Variant = core.DefaultVariant
		kern, err := run(kOpts)
		if err != nil {
			return nil, err
		}
		full, err := run(core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig10Row{GPUs: g, NoOpt: noOpt, AlgOnly: alg, KernelOnly: kern, Full: full})
	}
	return out, nil
}

// Fig10 renders the optimisation breakdown: individual, calculated
// (product) and observed overall speedups over NO-OPT.
func Fig10() (string, error) {
	rows, err := Fig10Data(26)
	if err != nil {
		return "", err
	}
	t := newTable("Figure 10: breakdown of DistMSM's optimisations (BLS12-381, N=2^26, speedup over NO-OPT)",
		6, 12, 12, 12, 12)
	t.row("GPUs", "MultiGPU", "PADD-opts", "Calculated", "Observed")
	for _, r := range rows {
		alg := r.NoOpt / r.AlgOnly
		kern := r.NoOpt / r.KernelOnly
		obs := r.NoOpt / r.Full
		t.row(fmt.Sprint(r.GPUs),
			fmt.Sprintf("%.2fx", alg), fmt.Sprintf("%.2fx", kern),
			fmt.Sprintf("%.2fx", alg*kern), fmt.Sprintf("%.2fx", obs))
	}
	return t.String(), nil
}

// Fig11Row is one scatter comparison point.
type Fig11Row struct {
	S                   int
	Naive, Hierarchical float64 // seconds; Hierarchical < 0 marks "fails"
}

// Fig11Data compares the two scatter strategies across window sizes on a
// 16-GPU system (BLS12-381, N=2^26), as in Figure 11; beyond s=14 the
// hierarchical variant exceeds shared memory and is reported as failing.
func Fig11Data() ([]Fig11Row, error) {
	c, err := curve.ByName("BLS12-381")
	if err != nil {
		return nil, err
	}
	cl, err := gpusim.NewCluster(gpusim.A100(), 16)
	if err != nil {
		return nil, err
	}
	n := 1 << 26
	var out []Fig11Row
	for s := 6; s <= 24; s += 1 {
		nv, err := core.Analytic(c, cl, n, core.Options{WindowSize: s, ForceNaiveScatter: true})
		if err != nil {
			return nil, err
		}
		row := Fig11Row{S: s, Naive: nv.Cost.Scatter, Hierarchical: -1}
		if s <= 14 {
			h, err := core.Analytic(c, cl, n, core.Options{WindowSize: s})
			if err != nil {
				return nil, err
			}
			row.Hierarchical = h.Cost.Scatter
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig11 renders the bucket-scatter comparison.
func Fig11() (string, error) {
	rows, err := Fig11Data()
	if err != nil {
		return "", err
	}
	t := newTable("Figure 11: modeled bucket-scatter time (ms), 16 GPUs, BLS12-381, N=2^26",
		6, 12, 14, 10)
	t.row("s", "Naive", "Hierarchical", "Speedup")
	for _, r := range rows {
		if r.Hierarchical < 0 {
			t.row(fmt.Sprint(r.S), ms(r.Naive), "fails (shm)", "-")
			continue
		}
		t.row(fmt.Sprint(r.S), ms(r.Naive), ms(r.Hierarchical),
			fmt.Sprintf("%.1fx", r.Naive/r.Hierarchical))
	}
	return t.String(), nil
}

// Fig12Row is one curve's kernel-optimisation waterfall.
type Fig12Row struct {
	Curve    string
	Speedups []float64 // cumulative speedup over baseline, per Variant
}

// Fig12Data prices 10^6 accumulation operations per kernel variant per
// curve on the A100 and reports cumulative speedups over the baseline.
func Fig12Data() ([]Fig12Row, error) {
	cs, err := mustCurves()
	if err != nil {
		return nil, err
	}
	m := gpusim.Model{Dev: gpusim.A100()}
	var out []Fig12Row
	for _, c := range cs {
		base := 0.0
		row := Fig12Row{Curve: c.Name}
		for _, v := range kernel.Variants() {
			spec, err := kernel.BuildSpec(v)
			if err != nil {
				return nil, err
			}
			tm := m.ECOpSeconds(spec, c.Fp.Bits(), 1e6)
			if v == kernel.VariantBaseline {
				base = tm
			}
			row.Speedups = append(row.Speedups, base/tm)
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig12 renders the PADD-optimisation waterfall.
func Fig12() (string, error) {
	rows, err := Fig12Data()
	if err != nil {
		return "", err
	}
	t := newTable("Figure 12: accumulation-kernel optimisation waterfall (cumulative speedup over baseline, A100)",
		11, 10, 11, 12, 12, 12, 12)
	header := []string{"Curve"}
	for _, v := range kernel.Variants() {
		header = append(header, v.String())
	}
	t.row(header...)
	for _, r := range rows {
		cells := []string{r.Curve}
		for _, s := range r.Speedups {
			cells = append(cells, fmt.Sprintf("%.2fx", s))
		}
		t.row(cells...)
	}
	return t.String(), nil
}
