package service

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPProveRoundTrip drives the JSON API end to end: submit over
// HTTP, decode the hex proof, unmarshal and verify it out of band.
func TestHTTPProveRoundTrip(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/prove", "application/json",
		strings.NewReader(`{"circuit":"synthetic","seed":11}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /prove: status %d", resp.StatusCode)
	}
	var out struct {
		JobID uint64 `json:"job_id"`
		Proof string `json:"proof"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	raw, err := hex.DecodeString(out.Proof)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := svc.eng.UnmarshalProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	vk, err := svc.VerifyingKey("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	w, err := svc.circuits["synthetic"].witness(11)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := svc.eng.Verify(vk, proof, w[1:1+svc.circuits["synthetic"].cs.NPublic])
	if err != nil || !ok {
		t.Fatalf("HTTP-delivered proof failed verification: ok=%v err=%v", ok, err)
	}

	// Error mapping: unknown circuit → 404, malformed body → 400.
	resp, err = http.Post(srv.URL+"/prove", "application/json", strings.NewReader(`{"circuit":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown circuit: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/prove", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Health and stats endpoints respond with JSON.
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	srv.Close()
	shutdownClean(t, svc)
	check()
}
