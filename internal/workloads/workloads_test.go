package workloads

import (
	"context"
	"math/rand"
	"testing"

	"distmsm/internal/groth16"
	"distmsm/internal/r1cs"
)

func TestWorkloadInventory(t *testing.T) {
	all := All()
	if len(all) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(all))
	}
	want := map[string]int{
		"Zcash-Sprout": 2585747,
		"Otti-SGD":     6968254,
		"Zen-LeNet":    77689757,
	}
	for _, w := range all {
		if want[w.Name] != w.Constraints {
			t.Errorf("%s: %d constraints, want %d", w.Name, w.Constraints, want[w.Name])
		}
	}
	if _, err := ByName("Zcash-Sprout"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected unknown-workload error")
	}
}

// Table 4 shape: the modeled end-to-end speedup sits in the paper's
// ~25× band for every workload, and the modeled absolute times are
// within 2× of the published numbers.
func TestTable4Speedups(t *testing.T) {
	for _, w := range All() {
		cpu := LibsnarkProver(w.Constraints)
		gpu, err := DistMSMProver(w.Constraints, 8)
		if err != nil {
			t.Fatal(err)
		}
		speedup := cpu.Total() / gpu.Total()
		paperSpeedup := w.PaperLibsnarkSec / w.PaperDistMSMSec
		if speedup < paperSpeedup*0.7 || speedup > paperSpeedup*1.4 {
			t.Errorf("%s: speedup %.1fx vs paper %.1fx", w.Name, speedup, paperSpeedup)
		}
		if cpu.Total() < w.PaperLibsnarkSec/2 || cpu.Total() > w.PaperLibsnarkSec*2 {
			t.Errorf("%s: libsnark model %.1fs vs paper %.1fs", w.Name, cpu.Total(), w.PaperLibsnarkSec)
		}
		if gpu.Total() < w.PaperDistMSMSec/2 || gpu.Total() > w.PaperDistMSMSec*2 {
			t.Errorf("%s: DistMSM model %.1fs vs paper %.1fs", w.Name, gpu.Total(), w.PaperDistMSMSec)
		}
	}
}

// §5.1.1: CPU proof generation splits ~78.2 / 17.9 / 3.9 across
// MSM / NTT / others; after acceleration the un-offloaded "others"
// dominates (Amdahl).
func TestStageProportions(t *testing.T) {
	cpu := LibsnarkProver(1 << 22)
	tot := cpu.Total()
	if f := cpu.MSM / tot; f < 0.75 || f > 0.81 {
		t.Errorf("CPU MSM fraction %.3f, want ~0.782", f)
	}
	if f := cpu.NTT / tot; f < 0.15 || f > 0.21 {
		t.Errorf("CPU NTT fraction %.3f, want ~0.179", f)
	}
	gpu, err := DistMSMProver(1<<22, 8)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Other < gpu.MSM || gpu.Other < gpu.NTT {
		t.Error("after acceleration the CPU-resident stage should dominate")
	}
}

// More GPUs shrink only the MSM stage.
func TestGPUScalingLimitedByAmdahl(t *testing.T) {
	g1, err := DistMSMProver(1<<22, 1)
	if err != nil {
		t.Fatal(err)
	}
	g8, err := DistMSMProver(1<<22, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g8.MSM >= g1.MSM {
		t.Error("8-GPU MSM stage should be faster than 1-GPU")
	}
	if g8.Other != g1.Other || g8.NTT != g1.NTT {
		t.Error("non-MSM stages should be unaffected by GPU count")
	}
	if g1.Total()/g8.Total() > 3 {
		t.Error("end-to-end gain should be Amdahl-limited")
	}
}

// A small instance of the synthetic workload circuit really proves and
// verifies through the full Groth16 pipeline — the functional anchor
// behind the Table 4 model.
func TestSmallInstanceProvesForReal(t *testing.T) {
	e, err := groth16.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	cs, w := r1cs.BuildSynthetic(e.Fr, 100, 4)
	rnd := rand.New(rand.NewSource(8))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(vk, proof, w[1:1+cs.NPublic])
	if err != nil || !ok {
		t.Fatalf("small workload instance failed to verify: %v", err)
	}
}

// §5.1.1's hypothetical all-GPU distribution: with MSM on 8 GPUs, NTT
// dominates (the paper reports 38.1 / 50.4 / 11.5%).
func TestAllGPUProjection(t *testing.T) {
	m := 1 << 24
	one, err := AllGPUProjection(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := one.MSM / one.Total(); f < 0.70 || f > 0.85 {
		t.Errorf("single-GPU MSM fraction %.3f, want ~0.789", f)
	}
	eight, err := AllGPUProjection(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if eight.NTT <= eight.MSM {
		t.Error("with 8-GPU MSM, NTT should dominate (paper: 50.4% vs 38.1%)")
	}
	if f := eight.NTT / eight.Total(); f < 0.38 || f > 0.70 {
		t.Errorf("8-GPU NTT fraction %.3f, want ~0.504", f)
	}
}

// The paper's closing projection: multi-GPU NTT lifts the Amdahl ceiling.
func TestFutureProjectionBeatsNTTBottleneck(t *testing.T) {
	m := 1 << 24
	now, err := AllGPUProjection(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	future, err := FutureProjection(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if future.Total() >= now.Total() {
		t.Errorf("multi-GPU NTT should reduce the total: %.4g vs %.4g", future.Total(), now.Total())
	}
	if future.NTT >= now.NTT {
		t.Error("NTT stage should shrink with multi-GPU NTT")
	}
	one, err := FutureProjection(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.NTT != now.NTT*8/8 && one.Total() <= 0 {
		t.Error("degenerate single-GPU projection")
	}
}

// §3.2.3: pipelining the MSM stream across proofs never loses and wins
// whenever the CPU reduce is on the critical path.
func TestProofPipelineEstimate(t *testing.T) {
	pipe, serial, err := ProofPipelineEstimate(1<<22, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pipe > serial*1.0001 {
		t.Errorf("pipelined (%.4g) worse than serial (%.4g)", pipe, serial)
	}
	if pipe <= 0 || serial <= 0 {
		t.Fatal("non-positive estimates")
	}
}
