//go:build !race

package service

// timingScale stretches the deadlines of timing-sensitive tests; 1 on
// normal builds, larger under the race detector (see race_on_test.go),
// whose instrumentation slows the CPU-bound prover several-fold on a
// small host.
const timingScale = 1
