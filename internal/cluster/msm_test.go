package cluster

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"distmsm/internal/curve"
	"distmsm/internal/outsource"
	"distmsm/internal/serial"
)

// msmTestClient is an MSM-capable worker fake: it evaluates shards
// exactly like the service's /v1/msm handler (derive bases from the
// seed, MSMReference over the explicit scalars), optionally lying by
// returning claim+G — a valid wrong point only the outsourced check can
// catch.
type msmTestClient struct {
	lie        bool
	junk       bool
	dispatches atomic.Int64

	mu   sync.Mutex
	seen []MSMDispatchRequest
}

func (c *msmTestClient) Dispatch(ctx context.Context, req DispatchRequest) ([]byte, error) {
	return nil, errors.New("msm test client does not prove")
}

func (c *msmTestClient) DispatchMSM(ctx context.Context, req MSMDispatchRequest) ([]byte, error) {
	c.dispatches.Add(1)
	c.mu.Lock()
	c.seen = append(c.seen, req)
	c.mu.Unlock()
	if c.junk {
		return []byte("not a curve point"), nil
	}
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		return nil, err
	}
	scalars, err := req.DecodeScalars()
	if err != nil {
		return nil, err
	}
	points := crv.SamplePoints(req.RangeHi, req.PointSeed)[req.RangeLo:req.RangeHi]
	sum := crv.MSMReference(points, scalars)
	if c.lie {
		crv.NewAdder().Acc(sum, &crv.Gen)
	}
	aff := crv.ToAffine(sum)
	return serial.MarshalPoint(crv, &aff, false), nil
}

// msmReferenceBytes is what a fault-free serial evaluation of the whole
// instance marshals to — the byte-identity oracle of every MSM test.
func msmReferenceBytes(t *testing.T, req MSMRequest) []byte {
	t.Helper()
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		t.Fatalf("curve %q: %v", req.Curve, err)
	}
	points := crv.SamplePoints(req.N, req.PointSeed)
	scalars := crv.SampleScalars(req.N, req.ScalarSeed)
	sum := crv.MSMReference(points, scalars)
	aff := crv.ToAffine(sum)
	return serial.MarshalPoint(crv, &aff, false)
}

// TestMSMHonestFleet: an honest fleet returns bytes identical to the
// serial reference, every shard passes exactly one constant-size check,
// and each shard's real and challenge instances land on distinct nodes.
func TestMSMHonestFleet(t *testing.T) {
	clients := map[string]WorkerClient{}
	fakes := map[string]*msmTestClient{}
	for _, id := range []string{"n1", "n2", "n3"} {
		f := &msmTestClient{}
		fakes[id] = f
		clients[id] = f
	}
	c := newTestCoordinator(t, Config{MSMRandom: outsource.NewSeededReader(7)}, clients)
	for id := range clients {
		mustRegister(t, c, id)
	}

	req := MSMRequest{Curve: "BN254", PointSeed: 11, ScalarSeed: 12, N: 200}
	got, err := c.MSM(context.Background(), req)
	if err != nil {
		t.Fatalf("MSM: %v", err)
	}
	if want := msmReferenceBytes(t, req); !bytes.Equal(got, want) {
		t.Fatalf("MSM result diverges from the serial reference")
	}

	st := c.Stats()
	if st.MSMChecks != 3 { // one per shard: three MSM-capable nodes → three shards
		t.Fatalf("MSMChecks = %d, want 3", st.MSMChecks)
	}
	if st.MSMRejects != 0 || st.CorruptProofs != 0 {
		t.Fatalf("honest fleet charged: rejects=%d corrupt=%d", st.MSMRejects, st.CorruptProofs)
	}

	// Each shard range must appear exactly twice (real + challenge), on
	// two distinct nodes, under identical frames apart from the blob.
	type shardKey struct{ lo, hi int }
	owners := map[shardKey][]string{}
	for id, f := range fakes {
		f.mu.Lock()
		for _, r := range f.seen {
			if r.Curve != req.Curve || r.PointSeed != req.PointSeed {
				t.Errorf("node %s saw frame for wrong instance: %+v", id, r)
			}
			owners[shardKey{r.RangeLo, r.RangeHi}] = append(owners[shardKey{r.RangeLo, r.RangeHi}], id)
		}
		f.mu.Unlock()
	}
	if len(owners) != 3 {
		t.Fatalf("saw %d shard ranges, want 3", len(owners))
	}
	for k, ids := range owners {
		if len(ids) != 2 {
			t.Fatalf("shard [%d,%d) dispatched %d times, want 2", k.lo, k.hi, len(ids))
		}
		if ids[0] == ids[1] {
			t.Errorf("shard [%d,%d): real and challenge both went to %s despite idle nodes", k.lo, k.hi, ids[0])
		}
	}
}

// TestMSMLyingNodeCharged: a node that returns valid-but-wrong points
// (claim + G) is caught by the constant-size check, charged on its
// breaker like a corrupt proof, excluded, and the final result is still
// byte-identical to the reference.
func TestMSMLyingNodeCharged(t *testing.T) {
	liar := &msmTestClient{lie: true}
	good1, good2 := &msmTestClient{}, &msmTestClient{}
	c := newTestCoordinator(t, Config{MSMRandom: outsource.NewSeededReader(3)}, map[string]WorkerClient{
		"bad": liar, "good1": good1, "good2": good2,
	})
	for _, id := range []string{"bad", "good1", "good2"} {
		mustRegister(t, c, id)
	}

	req := MSMRequest{Curve: "BN254", PointSeed: 21, ScalarSeed: 22, N: 150}
	got, err := c.MSM(context.Background(), req)
	if err != nil {
		t.Fatalf("MSM: %v", err)
	}
	if want := msmReferenceBytes(t, req); !bytes.Equal(got, want) {
		t.Fatalf("MSM result diverges from the serial reference despite rejection")
	}

	st := c.Stats()
	if liar.dispatches.Load() == 0 {
		t.Fatalf("liar never dispatched to — the test asserted nothing")
	}
	if st.MSMRejects == 0 {
		t.Fatalf("no check rejected although a lying node took shards")
	}
	if st.CorruptProofs == 0 {
		t.Fatalf("CorruptProofs = 0, want the liar charged")
	}
	charged := false
	for _, n := range c.Snapshot() {
		switch n.ID {
		case "bad":
			charged = n.Failures > 0
		case "good1", "good2":
			if n.Failures != 0 {
				t.Errorf("honest node %s charged %d failures", n.ID, n.Failures)
			}
		}
	}
	if !charged {
		t.Fatalf("lying node's breaker was not charged")
	}
}

// TestMSMJunkResponseCharged: a node answering bytes that do not decode
// to a curve point is charged at decode time — the outsourced check
// never even runs for it — and the job still completes correctly.
func TestMSMJunkResponseCharged(t *testing.T) {
	junk := &msmTestClient{junk: true}
	good := &msmTestClient{}
	c := newTestCoordinator(t, Config{MSMRandom: outsource.NewSeededReader(5)}, map[string]WorkerClient{
		"junk": junk, "good": good,
	})
	mustRegister(t, c, "junk")
	mustRegister(t, c, "good")

	req := MSMRequest{Curve: "BLS12-381", PointSeed: 31, ScalarSeed: 32, N: 64}
	got, err := c.MSM(context.Background(), req)
	if err != nil {
		t.Fatalf("MSM: %v", err)
	}
	if want := msmReferenceBytes(t, req); !bytes.Equal(got, want) {
		t.Fatalf("MSM result diverges from the serial reference")
	}
	if st := c.Stats(); st.CorruptProofs == 0 {
		t.Fatalf("junk responder was never charged")
	}
}

// TestMSMDegradesLocal: with no MSM-capable node (a fleet of plain
// provers), the coordinator evaluates locally — no checks, one fallback
// per shard, correct bytes.
func TestMSMDegradesLocal(t *testing.T) {
	c := newTestCoordinator(t, Config{MSMRandom: outsource.NewSeededReader(9)}, map[string]WorkerClient{
		"prover": proofClient([]byte("p1")), // WorkerClient only: no MSM surface
	})
	mustRegister(t, c, "prover")

	req := MSMRequest{Curve: "BN254", PointSeed: 41, ScalarSeed: 42, N: 50}
	got, err := c.MSM(context.Background(), req)
	if err != nil {
		t.Fatalf("MSM: %v", err)
	}
	if want := msmReferenceBytes(t, req); !bytes.Equal(got, want) {
		t.Fatalf("local degrade diverges from the serial reference")
	}
	st := c.Stats()
	if st.LocalFallbacks == 0 {
		t.Fatalf("LocalFallbacks = 0, want the degrade path taken")
	}
	if st.MSMChecks != 0 {
		t.Fatalf("MSMChecks = %d on the local path, want 0", st.MSMChecks)
	}
}

// TestMSMRejectsBadRequest: malformed client-facing jobs fail with
// ErrBadMessage before touching the fleet.
func TestMSMRejectsBadRequest(t *testing.T) {
	c := newTestCoordinator(t, Config{}, map[string]WorkerClient{})
	for _, req := range []MSMRequest{
		{Curve: "nope", N: 4},
		{Curve: "BN254", N: 0},
		{Curve: "BN254", N: MaxMSMPoints + 1},
	} {
		if _, err := c.MSM(context.Background(), req); !errors.Is(err, ErrBadMessage) {
			t.Errorf("MSM(%+v) = %v, want ErrBadMessage", req, err)
		}
	}
}

// TestMSMShardRanges pins the sharding arithmetic: covers [0, n)
// exactly, respects the wire cap, never exceeds n shards.
func TestMSMShardRanges(t *testing.T) {
	for _, tc := range []struct {
		n, nodes, want int
	}{
		{10, 0, 1},
		{10, 3, 3},
		{2, 8, 2},
		{MaxMSMShard + 1, 1, 2},
		{3 * MaxMSMShard, 2, 3},
	} {
		shards := msmShardRanges(tc.n, tc.nodes)
		if len(shards) != tc.want {
			t.Errorf("msmShardRanges(%d, %d) = %d shards, want %d", tc.n, tc.nodes, len(shards), tc.want)
		}
		next := 0
		for _, s := range shards {
			if s[0] != next || s[1] <= s[0] || s[1]-s[0] > MaxMSMShard {
				t.Fatalf("msmShardRanges(%d, %d): bad shard %v at offset %d", tc.n, tc.nodes, s, next)
			}
			next = s[1]
		}
		if next != tc.n {
			t.Fatalf("msmShardRanges(%d, %d) covers [0, %d), want [0, %d)", tc.n, tc.nodes, next, tc.n)
		}
	}
}
