package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
	"distmsm/internal/msm"
	"distmsm/internal/telemetry"
)

// This file promotes the fixed-base precomputation (§2.3.1) and the GLV
// endomorphism split from internal/msm helpers to first-class engine
// strategies, selectable through Options.FixedBase / Options.GLV:
//
//   - FixedBase evaluation runs the merged-window form: every window's
//     digits scatter into ONE shared bucket array whose references index
//     the flat table vector flat[j·base+i] = 2^(j·s)·B_i, so the whole
//     MSM is a single-window plan — one bucket-reduce, no window-reduce
//     doubling ladder — that the existing shard scheduler (retries,
//     steals, speculation, verification, device loss) executes unchanged.
//   - GLV rewrites (points, scalars) into the 2N-point half-width split
//     before planning; every downstream phase then sees a standard MSM
//     with half the windows.
//
// Both strategies are bit-identical to the plain serial reference: the
// per-bucket accumulation order is fixed by the scatter, buckets are
// never split across shards, and the final reduce is deterministic.

// FixedBase is an immutable per-window precomputation over a fixed
// base-point vector — the Groth16 proving-key columns, typically —
// optionally with the GLV endomorphism split folded into the tables.
// Build one with NewFixedBase and attach it to an execution with
// Options.FixedBase (distmsm.WithPrecomputedBases); one FixedBase is
// safe for concurrent use by any number of executions.
type FixedBase struct {
	c   *curve.Curve
	glv *msm.GLV // nil without the endomorphism split
	pre *msm.Precomputed

	n          int // caller base-vector length
	base       int // flat stride: n, or 2n with GLV
	s          int
	windows    int // signed window count (incl. carry) over scalarBits
	scalarBits int // effective scalar width the windows cover
	// flat[j·base+i] = 2^(j·s)·B_i: the virtual point vector the merged
	// single-window plan's bucket references index into.
	flat []curve.PointAffine
}

// NewFixedBase precomputes per-window tables for the base vector. The
// options honoured are WindowSize (0 picks the cheapest merged-window
// size for this length) and GLV (fold the endomorphism split into the
// tables — the base vector doubles, the window count halves; all points
// must lie in the prime-order subgroup). Signed-digit recoding is always
// used. The tables hold Windows()× the input storage; amortise them
// across many MSMs over the same bases.
func NewFixedBase(c *curve.Curve, points []curve.PointAffine, opts Options) (*FixedBase, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: precompute needs at least one base point", ErrEmptyInput)
	}
	if opts.Unsigned {
		return nil, fmt.Errorf("core: fixed-base tables require signed-digit recoding")
	}
	fb := &FixedBase{c: c, n: len(points), base: len(points), scalarBits: c.ScalarBits}
	basePts := points
	if opts.GLV {
		g, err := glvContext(c)
		if err != nil {
			return nil, err
		}
		fb.glv = g
		fb.scalarBits = g.HalfBits() + 4
		fb.base = 2 * len(points)
		basePts = g.SplitPoints(points)
	}
	fb.s = opts.WindowSize
	if fb.s == 0 {
		fb.s = fixedBaseWindow(fb.base, fb.scalarBits)
	}
	if fb.s < 2 || fb.s > 26 {
		return nil, fmt.Errorf("core: fixed-base window size %d out of range", fb.s)
	}
	fb.windows = msm.NumWindows(fb.scalarBits, fb.s) + 1 // signed carry window

	// The table builder sizes its columns from the curve's scalar width;
	// hand it the effective (possibly GLV-halved) width.
	cc := *c
	cc.ScalarBits = fb.scalarBits
	pre, err := msm.Precompute(&cc, basePts, msm.Config{WindowSize: fb.s, Signed: true})
	if err != nil {
		return nil, err
	}
	fb.pre = pre
	fb.flat = pre.Flatten()
	return fb, nil
}

// fixedBaseWindow picks s minimising the merged-window host work:
// base·⌈bits/s⌉ accumulations plus one 2·2^(s−1) running-suffix reduce.
func fixedBaseWindow(base, bits int) int {
	best, bestCost := 8, float64(0)
	for s := 4; s <= 20; s++ {
		cost := float64(base)*float64((bits+s-1)/s+1) + float64(int(2)<<(s-1))
		if bestCost == 0 || cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// WindowSize returns the precomputation's window size s.
func (fb *FixedBase) WindowSize() int { return fb.s }

// Windows returns the stored window-table count (the storage factor).
func (fb *FixedBase) Windows() int { return fb.windows }

// N returns the base-vector length scalars must match.
func (fb *FixedBase) N() int { return fb.n }

// GLV reports whether the endomorphism split is folded into the tables.
func (fb *FixedBase) GLV() bool { return fb.glv != nil }

// MemoryBytes estimates the table storage for admission budgeting.
func (fb *FixedBase) MemoryBytes() int64 { return fb.pre.MemoryBytes() }

// scatter builds the merged single-window bucket assignment for one
// scalar vector: digit d of window j of scalar i becomes the signed
// reference ±(j·base+i+1) in bucket |d| — all windows in one shared
// bucket array, exactly the §2.3.1 evaluation. The per-bucket reference
// order (scalars ascending, windows ascending within a scalar, GLV k1
// before k2) is what both engines replay, which keeps results
// bit-identical across engines and fault schedules.
func (fb *FixedBase) scatter(scalars []bigint.Nat) (*ScatterResult, error) {
	res := &ScatterResult{Buckets: make([][]int32, 1<<(fb.s-1)+1)}
	res.Stats.Passes = 1
	put := func(j int, d int32, idx int, flip bool) {
		if d == 0 {
			return
		}
		neg := d < 0
		if neg {
			d = -d
		}
		if flip {
			neg = !neg
		}
		ref := int32(j*fb.base + idx + 1)
		if neg {
			ref = -ref
		}
		res.Buckets[d] = append(res.Buckets[d], ref)
		res.Stats.GlobalAtomics++
	}
	if fb.glv == nil {
		for i, k := range scalars {
			for j, d := range msm.SignedDigits(k, fb.scalarBits, fb.s) {
				put(j, d, i, false)
			}
		}
		return res, nil
	}
	for i, k := range scalars {
		k1, neg1, k2, neg2, err := fb.glv.DecomposeNat(k)
		if err != nil {
			return nil, err
		}
		for j, d := range msm.SignedDigits(k1, fb.scalarBits, fb.s) {
			put(j, d, i, neg1)
		}
		for j, d := range msm.SignedDigits(k2, fb.scalarBits, fb.s) {
			put(j, d, fb.n+i, neg2)
		}
	}
	return res, nil
}

// buildFixedBasePlan schedules the merged single-window execution: one
// window of 2^(s−1)+1 signed buckets over the windows·base flat point
// vector, partitioned across the (health-admitted) GPUs exactly like any
// other plan — so the fault-tolerant scheduler composes unchanged.
func buildFixedBasePlan(cl *gpusim.Cluster, fb *FixedBase, opts Options) (*Plan, error) {
	var adm *gpusim.Admission
	if cl.Health != nil {
		a := cl.Health.Admit(cl.N)
		adm = &a
	}
	variant := DefaultVariant
	if opts.VariantSet {
		variant = opts.Variant
	}
	spec, err := kernel.BuildSpec(variant)
	if err != nil {
		return nil, err
	}
	paddSpec, err := kernel.BuildPADDSpec(variant)
	if err != nil {
		return nil, err
	}
	model := cl.Model()
	p := &Plan{
		Curve:     fb.c,
		Cluster:   cl,
		N:         len(fb.flat),
		S:         fb.s,
		Signed:    true,
		Windows:   1,
		Buckets:   1<<(fb.s-1) + 1,
		Spec:      spec,
		PADDSpec:  paddSpec,
		NT:        model.ConcurrentThreads(spec, fb.c.Fp.Bits()),
		Block:     opts.Block,
		FixedBase: fb,
	}
	if p.Block.Threads == 0 {
		p.Block = DefaultBlock()
	}
	pool, err := devicePool(cl, opts)
	if err != nil {
		return nil, err
	}
	p.Devices = pool
	p.Assignments = assignBucketsAdmitted(1, p.Buckets, pool, adm)
	return p, nil
}

// runFixedBase executes an MSM through the precomputed tables: scatter
// every window's digits into the shared bucket array, then run the
// selected engine over the merged single-window plan.
func runFixedBase(ctx context.Context, c *curve.Curve, cl *gpusim.Cluster, scalars []bigint.Nat, opts Options) (*Result, error) {
	fb := opts.FixedBase
	if fb.c.Name != c.Name {
		return nil, fmt.Errorf("core: precomputed bases are for %s, not %s", fb.c.Name, c.Name)
	}
	if len(scalars) != fb.n {
		return nil, fmt.Errorf("%w: %d scalars for %d precomputed bases", ErrLengthMismatch, len(scalars), fb.n)
	}
	if opts.WindowSize != 0 && opts.WindowSize != fb.s {
		return nil, fmt.Errorf("core: window size %d conflicts with tables precomputed at s=%d", opts.WindowSize, fb.s)
	}
	if opts.Unsigned {
		return nil, fmt.Errorf("core: fixed-base evaluation is signed-digit only")
	}
	if opts.GLV && fb.glv == nil {
		return nil, fmt.Errorf("core: WithGLV set but the tables were precomputed without the endomorphism split")
	}
	t0 := time.Now()
	sc, err := fb.scatter(scalars)
	if err != nil {
		return nil, err
	}
	scatterDur := time.Since(t0)
	if tr := opts.Tracer; tr != nil {
		tr.Record(telemetry.Span{Name: "scatter", Cat: "msm", Track: telemetry.TrackHost,
			Start: t0, Dur: scatterDur, Labeled: true, Window: 0})
	}
	plan, err := buildFixedBasePlan(cl, fb, opts)
	if err != nil {
		return nil, err
	}
	plan.Pre = []*ScatterResult{sc}
	var res *Result
	switch opts.Engine {
	case EngineConcurrent:
		res, err = runConcurrent(ctx, fb.flat, nil, plan, opts)
	case EngineSerial:
		res, err = runSerial(ctx, fb.flat, nil, plan, opts)
	default:
		return nil, fmt.Errorf("core: unknown engine %d", opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	res.Stats.Phase.Scatter += scatterDur
	res.Cost = plan.EstimateCost()
	return res, nil
}

// glvCache memoises the per-curve GLV context (cube roots, endomorphism
// verification, lattice basis) — pure curve constants, safe to share.
var glvCache sync.Map // curve name -> *glvEntry

type glvEntry struct {
	once sync.Once
	g    *msm.GLV
	err  error
}

func glvContext(c *curve.Curve) (*msm.GLV, error) {
	v, _ := glvCache.LoadOrStore(c.Name, &glvEntry{})
	e := v.(*glvEntry)
	e.once.Do(func() { e.g, e.err = msm.NewGLV(c) })
	return e.g, e.err
}

// glvSplit rewrites the execution inputs through the endomorphism:
// 2N points (negated copies where a decomposition half is negative),
// half-width scalars, and a curve copy with the narrowed scalar width
// for the planner. All input points must lie in the prime-order
// subgroup — the λ-relation does not hold elsewhere.
func glvSplit(g *msm.GLV, c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat) ([]curve.PointAffine, []bigint.Nat, *curve.Curve, error) {
	n := len(points)
	pts := g.SplitPoints(points)
	ks := make([]bigint.Nat, 2*n)
	for i := range scalars {
		k1, neg1, k2, neg2, err := g.DecomposeNat(scalars[i])
		if err != nil {
			return nil, nil, nil, err
		}
		ks[i], ks[n+i] = k1, k2
		if neg1 {
			pts[i] = negAffineCopy(c, pts[i])
		}
		if neg2 {
			pts[n+i] = negAffineCopy(c, pts[n+i])
		}
	}
	hc := *c
	hc.ScalarBits = g.HalfBits() + 4
	return pts, ks, &hc, nil
}

// negAffineCopy negates a point into fresh Y storage (the input may
// share element storage with the caller's vector).
func negAffineCopy(c *curve.Curve, p curve.PointAffine) curve.PointAffine {
	if p.Inf {
		return p
	}
	negY := c.Fp.NewElement()
	c.Fp.Neg(negY, p.Y)
	return curve.PointAffine{X: p.X, Y: negY}
}
