package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// opCounts extracts the engine-independent op-count fields of Stats.
func opCounts(s Stats) [3]uint64 { return [3]uint64{s.PACCOps, s.ReduceOps, s.WindowOps} }

// TestEngineParity: the concurrent engine must produce bit-identical
// points and identical op counts to the serial reference across curves,
// GPU counts and configurations (the acceptance property of this PR).
func TestEngineParity(t *testing.T) {
	ctx := context.Background()
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		for _, n := range []int{1, 65, 192} {
			points := c.SamplePoints(n, 41)
			scalars := c.SampleScalars(n, 42)
			for _, gpus := range []int{1, 4, 8} {
				cl := cluster(t, gpus)
				for _, opts := range []Options{
					{WindowSize: 8},
					{WindowSize: 8, Unsigned: true},
					{WindowSize: 8, ForceNaiveScatter: true},
					{WindowSize: 13},
				} {
					serialOpts, concOpts := opts, opts
					serialOpts.Engine = EngineSerial
					concOpts.Engine = EngineConcurrent
					ref, err := RunContext(ctx, c, cl, points, scalars, serialOpts)
					if err != nil {
						t.Fatalf("%s n=%d gpus=%d %+v serial: %v", name, n, gpus, opts, err)
					}
					got, err := RunContext(ctx, c, cl, points, scalars, concOpts)
					if err != nil {
						t.Fatalf("%s n=%d gpus=%d %+v concurrent: %v", name, n, gpus, opts, err)
					}
					if !reflect.DeepEqual(ref.Point, got.Point) {
						t.Fatalf("%s n=%d gpus=%d %+v: engines disagree bit-for-bit", name, n, gpus, opts)
					}
					if opCounts(ref.Stats) != opCounts(got.Stats) {
						t.Fatalf("%s n=%d gpus=%d %+v: op counts differ: serial %v concurrent %v",
							name, n, gpus, opts, opCounts(ref.Stats), opCounts(got.Stats))
					}
					if ref.Stats.Scatter != got.Stats.Scatter {
						t.Fatalf("%s n=%d gpus=%d %+v: scatter stats differ: %+v vs %+v",
							name, n, gpus, opts, ref.Stats.Scatter, got.Stats.Scatter)
					}
				}
			}
		}
	}
}

func TestConcurrentEnginePerGPUStats(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 4)
	n := 128
	points := c.SamplePoints(n, 51)
	scalars := c.SampleScalars(n, 52)
	res, err := RunContext(context.Background(), c, cl, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.PerGPU) != 4 {
		t.Fatalf("want 4 per-GPU stats, got %d", len(res.Stats.PerGPU))
	}
	var total uint64
	for _, g := range res.Stats.PerGPU {
		if g.Shards == 0 {
			t.Errorf("gpu %d executed no shards", g.GPU)
		}
		total += g.PACCOps
	}
	if total != res.Stats.PACCOps {
		t.Errorf("per-GPU PACC ops %d != total %d", total, res.Stats.PACCOps)
	}
	if res.Stats.Phase.BucketSum == 0 || res.Stats.Phase.BucketReduce == 0 {
		t.Error("phase times not recorded")
	}
	// The serial engine does not attribute work to GPUs.
	ser, err := RunContext(context.Background(), c, cl, points, scalars,
		Options{WindowSize: 8, Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Stats.PerGPU != nil {
		t.Error("serial engine must not report per-GPU stats")
	}
}

// TestRunContextCancelled: a pre-cancelled context must fail fast with
// context.Canceled on both engines.
func TestRunContextCancelled(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 4)
	n := 64
	points := c.SamplePoints(n, 61)
	scalars := c.SampleScalars(n, 62)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range []Engine{EngineSerial, EngineConcurrent} {
		_, err := RunContext(ctx, c, cl, points, scalars, Options{WindowSize: 8, Engine: e})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v engine: want context.Canceled, got %v", e, err)
		}
	}
}

// TestRunContextCancelMidFlight: cancelling during a long execution
// must return context.Canceled within a shard boundary, well before the
// full MSM would complete, and without deadlocking the workers.
func TestRunContextCancelMidFlight(t *testing.T) {
	c := mustCurve(t, "MNT4753") // 753-bit field: expensive per PACC
	cl := cluster(t, 8)
	n := 1024
	points := c.SamplePoints(n, 71)
	scalars := c.SampleScalars(n, 72)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		err  error
		took time.Duration
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		_, err := RunContext(ctx, c, cl, points, scalars,
			Options{WindowSize: 8, Engine: EngineConcurrent})
		done <- outcome{err, time.Since(start)}
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v (after %v)", o.err, o.took)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled execution did not return: workers deadlocked")
	}
}

// TestSumBucketsPropagatesErrors covers the once-dead firstErr: a
// corrupt bucket reference must surface as an error from every engine
// path instead of reporting success silently (or panicking).
func TestSumBucketsPropagatesErrors(t *testing.T) {
	c := mustCurve(t, "BN254")
	points := c.SamplePoints(4, 81)
	bad := [][]int32{nil, {1, 2}, {99}, {-3}} // ref 99 exceeds the input
	var stats Stats
	var scr []*bucketScratch
	if _, err := sumBuckets(c, points, bad, 4, &scr, &stats); err == nil {
		t.Fatal("out-of-range bucket reference must error")
	}
	zero := [][]int32{nil, {0}} // ref 0 is never produced by a scatter
	if _, err := sumBuckets(c, points, zero, 1, &scr, &stats); err == nil {
		t.Fatal("zero bucket reference must error")
	}
	// The shared shard kernel reports the same corruption.
	if _, err := sumBucketRange(c, points, bad, 0, len(bad), make([]*curve.PointXYZZ, len(bad)), newBucketScratch(c)); err == nil {
		t.Fatal("sumBucketRange must propagate the error")
	}
}

// TestRunEmptyInput: zero-length inputs are rejected with the typed
// sentinel on both engines (never answered with a silent identity, and
// never a panic).
func TestRunEmptyInput(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	cl := cluster(t, 4)
	for _, e := range []Engine{EngineSerial, EngineConcurrent} {
		if _, err := RunContext(context.Background(), c, cl, nil, nil, Options{Engine: e}); !errors.Is(err, ErrEmptyInput) {
			t.Fatalf("%v: want ErrEmptyInput, got %v", e, err)
		}
		if _, err := RunContext(context.Background(), c, cl, []curve.PointAffine{}, []bigint.Nat{}, Options{Engine: e}); !errors.Is(err, ErrEmptyInput) {
			t.Fatalf("%v: want ErrEmptyInput for empty non-nil slices, got %v", e, err)
		}
	}
}

// TestCancelMidBucketReduce cancels the context while the host reducer
// goroutine is inside the bucket-reduce of a window — not at a shard
// boundary — and asserts the run returns promptly with context.Canceled
// and leaks no goroutines. MNT4753's 753-bit field with a 12-bit window
// (2049 buckets, ~4100 PADDs per window) keeps the reducer busy for
// many milliseconds per window, so the cancel lands mid-reduce with
// high probability; the in-reduce cancellation check bounds the exit
// latency either way.
func TestCancelMidBucketReduce(t *testing.T) {
	before := runtime.NumGoroutine()
	c := mustCurve(t, "MNT4753")
	cl := cluster(t, 4)
	n := 96
	points := c.SamplePoints(n, 73)
	scalars := c.SampleScalars(n, 74)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, c, cl, points, scalars,
			Options{WindowSize: 12, Engine: EngineConcurrent})
		done <- err
	}()
	// Give the workers time to complete the first windows so the reducer
	// is (very likely) inside a bucket-reduce, then cancel.
	time.Sleep(120 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled execution did not return: reducer stuck inside bucket-reduce")
	}
	// goleak-style check: every goroutine of the run must exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled run: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextSentinels: the typed errors match with errors.Is.
func TestRunContextSentinels(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	points := c.SamplePoints(2, 91)
	scalars := c.SampleScalars(1, 92)
	if _, err := RunContext(context.Background(), c, cl, points, scalars, Options{}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("want ErrLengthMismatch, got %v", err)
	}
}
