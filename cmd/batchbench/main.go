// Command batchbench measures the amortized batch-proving throughput
// of the service's per-circuit base cache: N same-circuit jobs proved
// through SubmitBatch against cached fixed-base/GLV tables, versus the
// same N jobs on a cache-disabled service where every job runs the
// plain Pippenger path over the raw proving-key columns.
//
// "Amortized" is taken seriously: each side's rate divides N by its
// *full* wall time including circuit registration, so the cached side
// pays for its one-time table precompute and the comparison cannot
// hide it. The JSON report also carries the steady-state (post-
// registration) rates for the long-running-service picture.
//
//	batchbench -gpus 8 -constraints 512 -jobs 24 -out BENCH_pr6.json
//	batchbench -smoke        # quick CI variant: small sizes, no file
//
// Exit is non-zero if any job fails, if the cached run did not actually
// hit the cache, or (outside -smoke) if the amortized speedup falls
// below the 1.5x acceptance floor.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"distmsm/internal/gpusim"
	"distmsm/internal/service"
)

type sideReport struct {
	RegisterSeconds  float64 `json:"register_seconds"`
	BatchSeconds     float64 `json:"batch_seconds"`
	ProofsPerSec     float64 `json:"proofs_per_sec"`    // steady state: N / batch_seconds
	AmortizedPerSec  float64 `json:"amortized_per_sec"` // N / (register + batch)
	BaseCacheHits    uint64  `json:"base_cache_hits"`
	BaseCacheMisses  uint64  `json:"base_cache_misses"`
	BatchesCoalesced uint64  `json:"batches_coalesced"`
}

type report struct {
	GPUs             int        `json:"gpus"`
	Constraints      int        `json:"constraints"`
	Jobs             int        `json:"jobs"`
	Cached           sideReport `json:"cached"`
	Baseline         sideReport `json:"baseline"`          // DisableBaseCache: per-job recompute
	Speedup          float64    `json:"speedup"`           // steady-state ratio
	AmortizedSpeedup float64    `json:"amortized_speedup"` // registration included on both sides
}

func main() {
	var (
		gpus        = flag.Int("gpus", 8, "simulated GPU count")
		constraints = flag.Int("constraints", 512, "synthetic circuit size")
		jobs        = flag.Int("jobs", 24, "batch size (same circuit)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		smoke       = flag.Bool("smoke", false, "CI smoke: small sizes, no speedup floor, no file")
	)
	flag.Parse()
	if *smoke {
		*gpus, *constraints, *jobs = 4, 128, 8
	}
	if *jobs < 8 {
		fmt.Fprintln(os.Stderr, "batchbench: -jobs must be >= 8 (amortization target)")
		os.Exit(1)
	}
	if err := run(*gpus, *constraints, *jobs, *out, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "batchbench:", err)
		os.Exit(1)
	}
}

func run(gpus, constraints, jobs int, out string, smoke bool) error {
	ctx := context.Background()
	rep := report{GPUs: gpus, Constraints: constraints, Jobs: jobs}

	cached, err := measure(ctx, gpus, constraints, jobs, false)
	if err != nil {
		return fmt.Errorf("cached run: %w", err)
	}
	rep.Cached = cached
	if cached.BaseCacheHits != uint64(jobs) {
		return fmt.Errorf("cached run hit the base cache %d/%d times — the cache path is not engaged",
			cached.BaseCacheHits, jobs)
	}

	baseline, err := measure(ctx, gpus, constraints, jobs, true)
	if err != nil {
		return fmt.Errorf("baseline run: %w", err)
	}
	rep.Baseline = baseline

	rep.Speedup = cached.ProofsPerSec / baseline.ProofsPerSec
	rep.AmortizedSpeedup = cached.AmortizedPerSec / baseline.AmortizedPerSec
	fmt.Printf("batchbench: %d jobs x %d constraints on %d GPUs\n", jobs, constraints, gpus)
	fmt.Printf("  cached:   %.2f proofs/sec steady, %.2f amortized (register %.2fs, batch %.2fs)\n",
		cached.ProofsPerSec, cached.AmortizedPerSec, cached.RegisterSeconds, cached.BatchSeconds)
	fmt.Printf("  baseline: %.2f proofs/sec steady, %.2f amortized (register %.2fs, batch %.2fs)\n",
		baseline.ProofsPerSec, baseline.AmortizedPerSec, baseline.RegisterSeconds, baseline.BatchSeconds)
	fmt.Printf("  speedup:  %.2fx steady, %.2fx amortized\n", rep.Speedup, rep.AmortizedSpeedup)

	if !smoke && rep.AmortizedSpeedup < 1.5 {
		return fmt.Errorf("amortized speedup %.2fx below the 1.5x floor", rep.AmortizedSpeedup)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Println("batchbench: wrote", out)
	return nil
}

// measure runs one full cycle — build a service, register the circuit,
// push one batch of same-circuit jobs through it, drain — and reports
// the wall times. disable switches off the per-circuit base cache so
// the same batch exercises the per-job-recompute path.
func measure(ctx context.Context, gpus, constraints, jobs int, disable bool) (sideReport, error) {
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		return sideReport{}, err
	}
	svc, err := service.New(service.Config{
		Cluster:          cl,
		Workers:          1, // serial workers: throughput deltas, not scheduling noise
		QueueDepth:       jobs,
		DisableBaseCache: disable,
	})
	if err != nil {
		return sideReport{}, err
	}
	regStart := time.Now()
	if err := svc.RegisterSynthetic(ctx, "bench", constraints); err != nil {
		return sideReport{}, err
	}
	regSec := time.Since(regStart).Seconds()

	reqs := make([]service.Request, jobs)
	for i := range reqs {
		reqs[i] = service.Request{Circuit: "bench", Seed: int64(i + 1)}
	}
	batchStart := time.Now()
	batch, err := svc.SubmitBatch(reqs)
	if err != nil {
		return sideReport{}, err
	}
	for _, job := range batch {
		if _, err := job.Wait(ctx); err != nil {
			return sideReport{}, fmt.Errorf("job %d: %w", job.ID, err)
		}
	}
	batchSec := time.Since(batchStart).Seconds()

	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(shCtx); err != nil {
		return sideReport{}, fmt.Errorf("shutdown: %w", err)
	}
	st := svc.Stats()
	return sideReport{
		RegisterSeconds:  regSec,
		BatchSeconds:     batchSec,
		ProofsPerSec:     float64(jobs) / batchSec,
		AmortizedPerSec:  float64(jobs) / (regSec + batchSec),
		BaseCacheHits:    st.BaseCacheHits,
		BaseCacheMisses:  st.BaseCacheMisses,
		BatchesCoalesced: st.BatchesCoalesced,
	}, nil
}
