package pairing

import (
	"context"
	"math/big"
)

// This file is the G2 counterpart of the §2.3.1 fixed-base evaluation:
// per-window tables 2^(j·s)·Q_i let every window's signed digits scatter
// into one shared bucket array, and a Jacobian-coordinate bucket reduce
// defers the (two-inversion) Fp2 normalisation to a single final
// ToAffine. The windowed g2.MSM above normalises every bucket and every
// running sum per window — thousands of Fp2 inversions per proof — so
// for the repeated proving-key B2 column this path is the difference
// between the G2 MSM dominating the proof and it disappearing into the
// noise.

// AddJac sets p += q for Jacobian q (add-2007-bl with edge handling).
func (g *G2) AddJac(p *G2Jacobian, q *G2Jacobian) {
	t := g.T
	if t.E2IsZero(&q.Z) {
		return
	}
	if t.E2IsZero(&p.Z) {
		*p = G2Jacobian{X: t.E2Clone(&q.X), Y: t.E2Clone(&q.Y), Z: t.E2Clone(&q.Z)}
		return
	}
	z1z1, z2z2 := t.E2Zero(), t.E2Zero()
	t.E2Square(&z1z1, &p.Z)
	t.E2Square(&z2z2, &q.Z)
	u1, u2, s1, s2 := t.E2Zero(), t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Mul(&u1, &p.X, &z2z2)
	t.E2Mul(&u2, &q.X, &z1z1)
	t.E2Mul(&s1, &p.Y, &q.Z)
	t.E2Mul(&s1, &s1, &z2z2)
	t.E2Mul(&s2, &q.Y, &p.Z)
	t.E2Mul(&s2, &s2, &z1z1)
	h, rr := t.E2Zero(), t.E2Zero()
	t.E2Sub(&h, &u2, &u1)
	t.E2Sub(&rr, &s2, &s1)
	if t.E2IsZero(&h) {
		if t.E2IsZero(&rr) {
			g.Double(p)
			return
		}
		*p = G2Jacobian{X: t.E2One(), Y: t.E2One(), Z: t.E2Zero()}
		return
	}
	t.E2Double(&rr, &rr) // r = 2(S2 − S1)
	i, j, v := t.E2Zero(), t.E2Zero(), t.E2Zero()
	t.E2Double(&i, &h)
	t.E2Square(&i, &i) // I = (2H)²
	t.E2Mul(&j, &h, &i)
	t.E2Mul(&v, &u1, &i)
	// Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
	t.E2Add(&p.Z, &p.Z, &q.Z)
	t.E2Square(&p.Z, &p.Z)
	t.E2Sub(&p.Z, &p.Z, &z1z1)
	t.E2Sub(&p.Z, &p.Z, &z2z2)
	t.E2Mul(&p.Z, &p.Z, &h)
	// X3 = r² − J − 2V
	x3 := t.E2Zero()
	t.E2Square(&x3, &rr)
	t.E2Sub(&x3, &x3, &j)
	t.E2Sub(&x3, &x3, &v)
	t.E2Sub(&x3, &x3, &v)
	// Y3 = r(V − X3) − 2·S1·J
	y3 := t.E2Zero()
	t.E2Sub(&v, &v, &x3)
	t.E2Mul(&y3, &rr, &v)
	t.E2Mul(&j, &s1, &j)
	t.E2Double(&j, &j)
	t.E2Sub(&y3, &y3, &j)
	t.E2Set(&p.X, &x3)
	t.E2Set(&p.Y, &y3)
}

// e2BatchInv inverts every non-zero element in place with the Montgomery
// trick: one E2Inv plus 3(n−1) multiplications.
func (g *G2) e2BatchInv(xs []*E2) {
	t := g.T
	live := xs[:0]
	for _, x := range xs {
		if !t.E2IsZero(x) {
			live = append(live, x)
		}
	}
	if len(live) == 0 {
		return
	}
	prefix := make([]E2, len(live))
	acc := t.E2One()
	for i, x := range live {
		prefix[i] = t.E2Clone(&acc)
		t.E2Mul(&acc, &acc, x)
	}
	inv := t.E2Zero()
	t.E2Inv(&inv, &acc)
	for i := len(live) - 1; i >= 0; i-- {
		tmp := t.E2Zero()
		t.E2Mul(&tmp, &inv, &prefix[i])
		t.E2Mul(&inv, &inv, live[i])
		t.E2Set(live[i], &tmp)
	}
}

// batchToAffine normalises a Jacobian column with one shared inversion.
func (g *G2) batchToAffine(col []G2Jacobian) []G2Affine {
	t := g.T
	zs := make([]*E2, len(col))
	zcopy := make([]E2, len(col))
	for i := range col {
		zcopy[i] = t.E2Clone(&col[i].Z)
		zs[i] = &zcopy[i]
	}
	g.e2BatchInv(zs)
	out := make([]G2Affine, len(col))
	for i := range col {
		if t.E2IsZero(&col[i].Z) {
			out[i] = G2Affine{Inf: true}
			continue
		}
		zInv2, zInv3 := t.E2Zero(), t.E2Zero()
		t.E2Square(&zInv2, &zcopy[i])
		t.E2Mul(&zInv3, &zInv2, &zcopy[i])
		out[i] = G2Affine{X: t.E2Zero(), Y: t.E2Zero()}
		t.E2Mul(&out[i].X, &col[i].X, &zInv2)
		t.E2Mul(&out[i].Y, &col[i].Y, &zInv3)
	}
	return out
}

// G2Precomputed holds per-window fixed-base tables over a G2 point
// vector: tables[j][i] = 2^(j·s)·Q_i. Immutable after construction and
// safe for concurrent MSM calls.
type G2Precomputed struct {
	g          *G2
	s          int
	scalarBits int
	tables     [][]G2Affine
}

// Precompute builds signed-digit fixed-base tables covering scalars of
// up to scalarBits bits with window size s (0 selects 8).
func (g *G2) Precompute(points []G2Affine, s, scalarBits int) *G2Precomputed {
	if s <= 0 {
		s = 8
	}
	nWin := (scalarBits+s-1)/s + 1 // +1: signed-digit carry window
	p := &G2Precomputed{g: g, s: s, scalarBits: scalarBits, tables: make([][]G2Affine, nWin)}
	p.tables[0] = points
	prev := points
	for j := 1; j < nWin; j++ {
		col := make([]G2Jacobian, len(points))
		for i := range points {
			col[i] = g.FromAffine(&prev[i])
			for b := 0; b < s; b++ {
				g.Double(&col[i])
			}
		}
		p.tables[j] = g.batchToAffine(col)
		prev = p.tables[j]
	}
	return p
}

// N returns the base-vector length scalars must match.
func (p *G2Precomputed) N() int { return len(p.tables[0]) }

// MemoryBytes estimates the table storage (four base-field coordinates
// per stored point; column 0 aliases the caller's vector but is counted).
func (p *G2Precomputed) MemoryBytes() int64 {
	return int64(len(p.tables)) * int64(p.N()) * 4 * 32
}

// signedDigitsBig recodes k into ⌈bits/s⌉+1 signed windows with digits
// in [−2^(s−1), 2^(s−1)−1] plus a trailing carry.
func signedDigitsBig(k *big.Int, bits, s int, out []int32) []int32 {
	nWin := (bits + s - 1) / s
	out = append(out[:0], make([]int32, nWin+1)...)
	half, full := 1<<(s-1), 1<<s
	carry := 0
	for j := 0; j < nWin; j++ {
		d := carry
		for b := 0; b < s; b++ {
			d += int(k.Bit(j*s+b)) << b
		}
		carry = 0
		if d >= half {
			d -= full
			carry = 1
		}
		out[j] = int32(d)
	}
	out[nWin] = int32(carry)
	return out
}

// MSM computes Σ k_i·Q_i through the tables: every window's signed
// digits accumulate into one shared bucket array (merged single-window
// evaluation — no doublings), and the running-suffix bucket reduce stays
// in Jacobian coordinates, so the whole MSM costs exactly one Fp2
// inversion (the final normalisation). Scalars wider than the
// precomputed width are truncated — callers pass reduced field scalars.
//
// Deprecated: long-running provers should use MSMContext so a cancelled
// job does not run the full G2 MSM to completion on the caller
// goroutine.
func (p *G2Precomputed) MSM(scalars []*big.Int) G2Affine {
	res, _ := p.MSMContext(context.Background(), scalars)
	return res
}

// MSMContext computes Σ k_i·Q_i through the tables, honouring ctx every
// 64 scalars inside the scatter loop (the bucket reduce after it is
// O(2^(s-1)), too short to matter).
func (p *G2Precomputed) MSMContext(ctx context.Context, scalars []*big.Int) (G2Affine, error) {
	g := p.g
	t := g.T
	half := 1 << (p.s - 1)
	buckets := make([]*G2Jacobian, half+1)
	negY := t.E2Zero()
	var digits []int32
	for i, k := range scalars {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return G2Affine{Inf: true}, err
			}
		}
		digits = signedDigitsBig(k, p.scalarBits, p.s, digits)
		for j, d := range digits {
			if d == 0 {
				continue
			}
			pt := &p.tables[j][i]
			if pt.Inf {
				continue
			}
			use := pt
			var neg G2Affine
			if d < 0 {
				t.E2Neg(&negY, &pt.Y)
				neg = G2Affine{X: pt.X, Y: negY}
				use = &neg
				d = -d
			}
			if buckets[d] == nil {
				b := g.FromAffine(&G2Affine{Inf: true})
				buckets[d] = &b
			}
			g.AddMixed(buckets[d], use)
		}
	}
	running := g.FromAffine(&G2Affine{Inf: true})
	total := g.FromAffine(&G2Affine{Inf: true})
	for d := half; d >= 1; d-- {
		if buckets[d] != nil {
			g.AddJac(&running, buckets[d])
		}
		g.AddJac(&total, &running)
	}
	return g.ToAffine(&total), nil
}
