package gpusim

import (
	"fmt"
	"sync"
)

// This file is the cross-request GPU health registry: a per-device
// circuit breaker that turns the scheduler's per-run fault observations
// (PR 2's FaultStats, discarded after every MSM) into persistent cluster
// state. A production proving service sees the same GPU fail request
// after request — XID errors that recur until a reset, ECC pages that
// keep corrupting results — and re-discovering that on every MSM wastes
// retries, reassignments and (for silent corruption) verification
// budget. The registry quarantines a device after K breaker-relevant
// faults and re-admits it through half-open probe shards, so one sick
// GPU degrades the cluster by its own share and nothing more.
//
// Breaker state machine (per GPU):
//
//	Closed ──K consecutive faults──▶ Open ──CooldownRuns plans──▶ HalfOpen
//	  ▲                                ▲                             │
//	  │                                └────────any fault────────────┤
//	  └──────────────fault-free probe run with ≥1 shard──────────────┘
//
// Breaker-relevant faults are device losses and verification failures
// (caught corruptions) — the classes that indicate a sick device.
// Transient errors and stragglers are routine at scale and never trip
// the breaker; the in-run scheduler already absorbs them.

// BreakerState is the circuit-breaker state of one GPU.
type BreakerState int

const (
	// BreakerClosed: the GPU is healthy and receives its full share.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the GPU is quarantined and excluded from plans.
	BreakerOpen
	// BreakerHalfOpen: the GPU is offered a small probe shard; a
	// fault-free probe closes the breaker, any fault re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// HealthConfig tunes the circuit breaker. The zero value selects the
// documented defaults.
type HealthConfig struct {
	// FaultThreshold is how many consecutive breaker-relevant faults
	// (device losses + verification failures) a closed GPU accrues before
	// it is quarantined (default 3).
	FaultThreshold int
	// CooldownRuns is how many plans a quarantined GPU sits out before it
	// is offered a half-open probe shard (default 4).
	CooldownRuns int
	// ProbeBuckets is the size, in bucket units, of the shard offered to
	// a half-open GPU (default 32, clamped to the plan's size).
	ProbeBuckets int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FaultThreshold <= 0 {
		c.FaultThreshold = 3
	}
	if c.CooldownRuns <= 0 {
		c.CooldownRuns = 4
	}
	if c.ProbeBuckets <= 0 {
		c.ProbeBuckets = 32
	}
	return c
}

// GPUHealth is one device's registry snapshot.
type GPUHealth struct {
	GPU   int
	State BreakerState
	// ConsecutiveFaults is the current fault streak counting toward the
	// threshold (closed state only).
	ConsecutiveFaults int
	// SitOut is how many plans the GPU has sat out while open.
	SitOut int
	// Trips is how many times the breaker has opened over its lifetime.
	Trips int
	// Shards and Faults are lifetime totals across runs.
	Shards int
	Faults int
}

type breaker struct {
	state       BreakerState
	consecutive int
	sitOut      int
	trips       int
	shards      int
	faults      int
}

// HealthRegistry is the persistent per-GPU breaker state shared across
// MSM runs (and across a proving service's concurrent jobs). It is safe
// for concurrent use. The zero registry is not valid; use
// NewHealthRegistry.
type HealthRegistry struct {
	mu   sync.Mutex
	cfg  HealthConfig
	gpus map[int]*breaker
}

// NewHealthRegistry builds a registry with the given breaker tuning.
func NewHealthRegistry(cfg HealthConfig) *HealthRegistry {
	return &HealthRegistry{cfg: cfg.withDefaults(), gpus: map[int]*breaker{}}
}

// Config returns the default-filled configuration.
func (r *HealthRegistry) Config() HealthConfig { return r.cfg }

func (r *HealthRegistry) breakerLocked(g int) *breaker {
	b := r.gpus[g]
	if b == nil {
		b = &breaker{}
		r.gpus[g] = b
	}
	return b
}

// Admission is the registry's verdict for one plan: the devices that
// receive their full share and the half-open devices limited to a probe
// shard of ProbeBuckets bucket units.
type Admission struct {
	Full   []int
	Probes []int
	// ProbeBuckets is the per-probe shard size carried from the config so
	// the planner does not need the registry again.
	ProbeBuckets int
}

// Admit partitions GPUs [0, n) for the next plan and advances the open
// breakers' cooldown clocks (one tick per plan). Quarantined devices
// whose cooldown has elapsed move to half-open and are offered a probe.
// If every device is open — the whole cluster quarantined — the registry
// fails towards availability: all devices are re-admitted as probes
// rather than refusing to plan at all.
func (r *HealthRegistry) Admit(n int) Admission {
	r.mu.Lock()
	defer r.mu.Unlock()
	adm := Admission{ProbeBuckets: r.cfg.ProbeBuckets}
	for g := 0; g < n; g++ {
		b := r.breakerLocked(g)
		switch b.state {
		case BreakerClosed:
			adm.Full = append(adm.Full, g)
		case BreakerHalfOpen:
			adm.Probes = append(adm.Probes, g)
		case BreakerOpen:
			b.sitOut++
			if b.sitOut >= r.cfg.CooldownRuns {
				b.state = BreakerHalfOpen
				adm.Probes = append(adm.Probes, g)
			}
		}
	}
	if len(adm.Full) == 0 && len(adm.Probes) == 0 {
		for g := 0; g < n; g++ {
			b := r.breakerLocked(g)
			b.state = BreakerHalfOpen
			adm.Probes = append(adm.Probes, g)
		}
	}
	return adm
}

// RecordRun folds one run's outcome for GPU g into the breaker: shards
// is how many shard executions the device committed, faults how many
// breaker-relevant faults (device losses + verification failures) it
// produced. Closed devices accumulate consecutive faults toward the
// threshold; half-open devices close on a fault-free probe with at least
// one committed shard and re-open on any fault.
func (r *HealthRegistry) RecordRun(g, shards, faults int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakerLocked(g)
	b.shards += shards
	b.faults += faults
	switch b.state {
	case BreakerClosed:
		if faults > 0 {
			b.consecutive += faults
			if b.consecutive >= r.cfg.FaultThreshold {
				r.openLocked(b)
			}
		} else if shards > 0 {
			b.consecutive = 0
		}
	case BreakerHalfOpen:
		if faults > 0 {
			r.openLocked(b)
		} else if shards > 0 {
			b.state = BreakerClosed
			b.consecutive = 0
		}
		// A half-open device that saw neither shards nor faults (its probe
		// was stolen, or the run was cancelled first) stays half-open and
		// is probed again next plan.
	case BreakerOpen:
		// Work reached a quarantined device only through the all-open
		// emergency re-admission; faults keep it quarantined.
	}
}

func (r *HealthRegistry) openLocked(b *breaker) {
	b.state = BreakerOpen
	b.consecutive = 0
	b.sitOut = 0
	b.trips++
}

// State returns GPU g's current breaker state.
func (r *HealthRegistry) State(g int) BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.breakerLocked(g).state
}

// Snapshot returns the registry state for GPUs [0, n) — the payload of a
// service health endpoint.
func (r *HealthRegistry) Snapshot(n int) []GPUHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GPUHealth, n)
	for g := 0; g < n; g++ {
		b := r.breakerLocked(g)
		out[g] = GPUHealth{
			GPU:               g,
			State:             b.state,
			ConsecutiveFaults: b.consecutive,
			SitOut:            b.sitOut,
			Trips:             b.trips,
			Shards:            b.shards,
			Faults:            b.faults,
		}
	}
	return out
}

// Quarantined returns how many of GPUs [0, n) are currently open.
func (r *HealthRegistry) Quarantined(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := 0
	for g := 0; g < n; g++ {
		if r.breakerLocked(g).state == BreakerOpen {
			q++
		}
	}
	return q
}

func (h GPUHealth) String() string {
	return fmt.Sprintf("gpu%d %s (streak %d, trips %d, %d shards, %d faults)",
		h.GPU, h.State, h.ConsecutiveFaults, h.Trips, h.Shards, h.Faults)
}
