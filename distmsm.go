// Package distmsm is the public API of this DistMSM reproduction: a
// multi-scalar-multiplication library for zero-knowledge proof systems,
// with an execution engine that schedules Pippenger's algorithm across a
// (simulated) distributed multi-GPU system as described in "Accelerating
// Multi-Scalar Multiplication for Efficient Zero Knowledge Proofs with
// Multi-GPU Systems" (ASPLOS 2024).
//
// Quick start:
//
//	c, _ := distmsm.Curve("BN254")
//	points := c.SamplePoints(1<<12, 1)
//	scalars := c.SampleScalars(1<<12, 2)
//	sys, _ := distmsm.NewSystem(distmsm.A100, 8)
//	res, _ := sys.MSM(c, points, scalars, distmsm.Options{})
//	fmt.Println(c.ToAffine(res.Point), res.Cost.Total())
//
// The packages under internal/ hold the implementation: finite fields,
// curves, the CPU Pippenger, the GPU performance model, the DistMSM
// scheduler, tensor-core arithmetic, NTT, pairing and Groth16. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package distmsm

import (
	"distmsm/internal/baselines"
	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/experiments"
	"distmsm/internal/gpusim"
	"distmsm/internal/msm"
)

// Re-exported core types.
type (
	// CurveParams describes one supported elliptic curve.
	CurveParams = curve.Curve
	// PointAffine is an affine curve point.
	PointAffine = curve.PointAffine
	// PointXYZZ is a point in the XYZZ coordinate system.
	PointXYZZ = curve.PointXYZZ
	// Scalar is a little-endian multi-precision MSM scalar.
	Scalar = bigint.Nat
	// Options configure a DistMSM execution (zero value = full DistMSM).
	Options = core.Options
	// Result carries the MSM value, modeled cost and execution plan.
	Result = core.Result
	// Cost is a modeled wall-time breakdown.
	Cost = gpusim.Cost
	// Device describes a GPU model.
	Device = gpusim.Device
)

// DeviceModel selects a GPU profile for NewSystem.
type DeviceModel int

// The modeled devices of the paper's evaluation (§5.2).
const (
	A100 DeviceModel = iota
	RTX4090
	AMD6900XT
)

func (d DeviceModel) device() Device {
	switch d {
	case RTX4090:
		return gpusim.RTX4090()
	case AMD6900XT:
		return gpusim.AMD6900XT()
	default:
		return gpusim.A100()
	}
}

// Curves lists the supported curve names (Table 1).
func Curves() []string { return curve.Names() }

// Curve returns the named curve.
func Curve(name string) (*CurveParams, error) { return curve.ByName(name) }

// System is a simulated multi-GPU execution target.
type System struct {
	cluster *gpusim.Cluster
}

// NewSystem builds an n-GPU system of the given device model.
func NewSystem(model DeviceModel, n int) (*System, error) {
	cl, err := gpusim.NewCluster(model.device(), n)
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl}, nil
}

// GPUs returns the system's GPU count.
func (s *System) GPUs() int { return s.cluster.N }

// DeviceName returns the modeled device name.
func (s *System) DeviceName() string { return s.cluster.Dev.Name }

// MSM computes Σ scalars[i]·points[i] with the DistMSM scheduler,
// returning the exact result together with the modeled execution cost.
func (s *System) MSM(c *CurveParams, points []PointAffine, scalars []Scalar, opts Options) (*Result, error) {
	return core.Run(c, s.cluster, points, scalars, opts)
}

// Estimate prices an N-point MSM on the system without computing it
// (the paper-scale analytic mode).
func (s *System) Estimate(c *CurveParams, n int, opts Options) (*Result, error) {
	return core.Analytic(c, s.cluster, n, opts)
}

// CPUMSM computes the MSM with the host Pippenger implementation
// (reference / fallback path, no simulation).
func CPUMSM(c *CurveParams, points []PointAffine, scalars []Scalar) (*PointXYZZ, error) {
	return msm.MSM(c, points, scalars, msm.Config{Signed: true})
}

// BestBaseline returns the modeled time (seconds) and name of the
// fastest published baseline (Table 2) for the configuration.
func BestBaseline(c *CurveParams, model DeviceModel, gpus, n int) (float64, string, error) {
	t, b, err := baselines.BestGPU(c, model.device(), gpus, n)
	if err != nil {
		return 0, "", err
	}
	return t, b.Name, nil
}

// Experiments lists the reproducible tables and figures of the paper.
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one table or figure and returns its report.
func RunExperiment(name string) (string, error) { return experiments.Run(name) }

// EstimatePipelined prices `count` back-to-back MSMs on the system with
// the §3.2.3 software pipeline (the CPU bucket-reduce of one MSM hides
// behind the GPU phases of the next).
func (s *System) EstimatePipelined(c *CurveParams, n, count int, opts Options) (Cost, error) {
	plan, err := core.BuildPlan(c, s.cluster, n, opts)
	if err != nil {
		return Cost{}, err
	}
	return plan.EstimatePipeline(count)
}
