package tensorcore

// This file models the output data layout of Figure 7 and the two
// compaction strategies of §4.3. Tensor-core output fragments scatter the
// uint32 convolution elements across the warp: within each 32-element
// block, a group of 4 threads shares the block, each thread holding two
// consecutive elements of every 8-element run. Compacting four
// consecutive elements (C_{4t}..C_{4t+3} → Σ C_{4t+j}·2^{8j}) therefore
// spans two threads — unless the columns of the constant matrix are
// pre-shuffled so that each thread ends up owning four consecutive
// outputs, which is DistMSM's on-the-fly compaction trick.

// FragBlock is the fragment block size (uint32 elements per 4-thread group).
const FragBlock = 32

// FragThreads is the number of threads sharing one fragment block.
const FragThreads = 4

// NaiveOwner returns the thread (0..3 within the block's thread group)
// holding output element e under the hardware's natural fragment layout:
// each thread holds two consecutive elements of every 8-element run.
func NaiveOwner(e int) int { return (e % 8) / 2 }

// ShuffledColumn returns the matrix column at which output value v must be
// computed so that, under the natural fragment layout, every group of four
// consecutive values lands in a single thread. It is the generalisation of
// the paper's example swap {2,3,18,19} ↔ {8,9,24,25}, applied per
// 32-element block.
func ShuffledColumn(v int) int {
	block := v / FragBlock * FragBlock
	w := v % FragBlock
	half := w / 16 // 0 = lower 16 values, 1 = upper 16 values
	r := w % 16
	k := r / 4 // destination thread
	j := r % 4 // index within the thread's group of four
	// Thread k's positions for half h: {8j' + 2k + (j%2)} with j' = j/2,
	// offset by 16h.
	pos := 16*half + 8*(j/2) + 2*k + j%2
	return block + pos
}

// ShuffledOwner returns the owning thread of value v after shuffling.
func ShuffledOwner(v int) int { return NaiveOwner(ShuffledColumn(v) % FragBlock) }

// GroupThreadLocal reports whether compaction group g (values 4g..4g+3)
// is held entirely by one thread under the given value→thread mapping.
func GroupThreadLocal(owner func(int) int, g int) bool {
	t := owner(4 * g)
	for j := 1; j < 4; j++ {
		if owner(4*g+j) != t {
			return false
		}
	}
	return true
}

// CompactOnTheFly compacts raw convolution outputs within registers:
// every four consecutive uint32 fold into one value Σ C_{4t+j}·2^{8j}
// (≤ 47 bits; 45 bits for 256-bit operands), halving the representation
// to one value per 32 bits of product. Counters record the in-register
// multiply-adds; no memory traffic is generated.
func (e *Engine) CompactOnTheFly(c []uint32) []uint64 {
	n := (len(c) + 3) / 4
	out := make([]uint64, n)
	for t := 0; t < n; t++ {
		var d uint64
		for j := 0; j < 4; j++ {
			if idx := 4*t + j; idx < len(c) {
				d += uint64(c[idx]) << (8 * uint(j))
			}
		}
		out[t] = d
		e.Counters.CompactOps += 3
	}
	return out
}

// CompactViaMemory models the conventional path the paper criticises:
// the expanded uint32 fragments are first stored to memory through the
// official fragment-store API (4× the traffic of the dense form), then
// recombined. The returned values are identical to CompactOnTheFly; only
// the counters differ.
func (e *Engine) CompactViaMemory(c []uint32) []uint64 {
	e.Counters.MemWrites += len(c)
	out := make([]uint64, (len(c)+3)/4)
	for t := range out {
		var d uint64
		for j := 0; j < 4; j++ {
			if idx := 4*t + j; idx < len(c) {
				d += uint64(c[idx]) << (8 * uint(j))
			}
		}
		out[t] = d
	}
	return out
}

// CompactedToValue folds compacted 32-bit-stride values into 64-bit limbs:
// value = Σ D_t·2^(32t).
func CompactedToValue(d []uint64, limbs int) []uint64 {
	out := make([]uint64, limbs)
	for t, v := range d {
		lo := v << (32 * uint(t%2))
		var hi uint64
		if t%2 == 1 {
			hi = v >> 32
		}
		idx := t / 2
		if idx >= len(out) {
			break
		}
		var carry uint64
		out[idx], carry = add64(out[idx], lo)
		for i := idx + 1; i < len(out); i++ {
			add := carry
			if i == idx+1 {
				add += hi
			}
			if add == 0 {
				break
			}
			out[i], carry = add64(out[i], add)
		}
	}
	return out
}
