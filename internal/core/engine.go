package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/msm"
)

// defaultWorkers is the host parallelism when Options.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Engine selects how the functional execution is scheduled on the host.
// Both engines run the same scatter/sum/reduce phases over the same plan
// and produce bit-identical points and identical Stats op counts; they
// differ only in concurrency structure.
type Engine int

const (
	// EngineSerial is the reference composition: windows one after the
	// other, bucket-sum parallelised over host goroutines, bucket-reduce
	// after every window has been summed.
	EngineSerial Engine = iota
	// EngineConcurrent is the §3.2.2/§3.2.3 structure actually executed:
	// one worker goroutine per simulated GPU consumes that GPU's
	// (window, bucket-range) shard assignments, and a host reducer
	// goroutine overlaps the bucket-reduce of completed windows with the
	// bucket-sum of later ones.
	EngineConcurrent
)

func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineConcurrent:
		return "concurrent"
	}
	return "unknown"
}

// runSerial is the serial reference engine. The scalar recoding streams
// one window at a time (a per-scalar carry byte instead of the full
// digit matrix); cancellation is checked at every window boundary.
func runSerial(ctx context.Context, points []curve.PointAffine, scalars []bigint.Nat, plan *Plan, opts Options) (*Result, error) {
	c := plan.Curve
	res := &Result{Plan: plan}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	rec := msm.NewWindowRecoder(scalars, c.ScalarBits, plan.S, plan.Signed)
	bucketAcc := make([][]*curve.PointXYZZ, plan.Windows)
	var digits []int32
	for j := 0; j < plan.Windows; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		digits = rec.Window(j, digits)
		t0 := time.Now()
		sc, err := scatterWindow(plan, digits)
		if err != nil {
			return nil, err
		}
		res.Stats.Scatter.add(sc.Stats)
		res.Stats.Phase.Scatter += time.Since(t0)

		t0 = time.Now()
		bucketAcc[j], err = sumBuckets(c, points, sc.Buckets, workers, &res.Stats)
		if err != nil {
			return nil, err
		}
		res.Stats.Phase.BucketSum += time.Since(t0)
	}

	// Phase 3 (§3.2.3, host CPU): bucket-reduce each window with the
	// serial running-suffix method.
	adder := c.NewAdder()
	windowSums := make([]*curve.PointXYZZ, plan.Windows)
	t0 := time.Now()
	for j := 0; j < plan.Windows; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ops uint64
		windowSums[j], ops = reduceBuckets(c, bucketAcc[j], adder)
		res.Stats.ReduceOps += ops
	}
	res.Stats.Phase.BucketReduce = time.Since(t0)

	if err := windowReduce(ctx, plan, windowSums, res); err != nil {
		return nil, err
	}
	return res, nil
}

// windowReduce runs phase 4, the final Horner combination of the window
// sums, into res.Point.
func windowReduce(ctx context.Context, plan *Plan, windowSums []*curve.PointXYZZ, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c := plan.Curve
	adder := c.NewAdder()
	acc := c.NewXYZZ()
	t0 := time.Now()
	for j := plan.Windows - 1; j >= 0; j-- {
		for b := 0; b < plan.S; b++ {
			adder.Double(acc)
			res.Stats.WindowOps++
		}
		adder.Add(acc, windowSums[j])
		res.Stats.WindowOps++
	}
	res.Stats.Phase.WindowReduce = time.Since(t0)
	res.Point = acc
	return nil
}

// group is a minimal errgroup: the first error wins and cancels the
// derived context so sibling goroutines stop at their next boundary.
type group struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	once   sync.Once
	err    error
}

func newGroup(ctx context.Context) (*group, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &group{cancel: cancel}, ctx
}

func (g *group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// windowEntry is one in-flight window of the concurrent engine: its
// scatter result (shared by every GPU working on the window), the
// shared bucket-accumulator array the shards fill at disjoint ranges,
// and the count of shards still to finish.
type windowEntry struct {
	sc      *ScatterResult
	acc     []*curve.PointXYZZ
	pending int
}

// windowProvider recodes and scatters windows on demand, in window
// order, caching each window until every shard of it has completed.
// This keeps digit storage at one window (plus a carry byte per scalar)
// instead of the full digits[windows][n] matrix.
type windowProvider struct {
	mu      sync.Mutex
	plan    *Plan
	rec     *msm.WindowRecoder
	digits  []int32
	entries map[int]*windowEntry
	shards  []int // per-window shard count from the plan
	next    int

	stats       ScatterStats
	scatterTime time.Duration
}

func newWindowProvider(plan *Plan, scalars []bigint.Nat) *windowProvider {
	shards := make([]int, plan.Windows)
	for _, a := range plan.Assignments {
		shards[a.Window]++
	}
	return &windowProvider{
		plan:    plan,
		rec:     msm.NewWindowRecoder(scalars, plan.Curve.ScalarBits, plan.S, plan.Signed),
		entries: map[int]*windowEntry{},
		shards:  shards,
	}
}

// acquire returns window j's entry, recoding and scattering windows up
// to j first if needed. Scatter happens exactly once per window, in
// window order, so the scatter stats match the serial engine's.
func (p *windowProvider) acquire(j int) (*windowEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.next <= j {
		p.digits = p.rec.Window(p.next, p.digits)
		t0 := time.Now()
		sc, err := scatterWindow(p.plan, p.digits)
		if err != nil {
			return nil, err
		}
		p.scatterTime += time.Since(t0)
		p.stats.add(sc.Stats)
		p.entries[p.next] = &windowEntry{
			sc:      sc,
			acc:     make([]*curve.PointXYZZ, p.plan.Buckets),
			pending: p.shards[p.next],
		}
		p.next++
	}
	return p.entries[j], nil
}

// release marks one shard of window j done. When it was the last shard
// the window's scatter buffers are dropped and release reports true:
// the accumulators are ready for the reducer.
func (p *windowProvider) release(j int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[j]
	e.pending--
	if e.pending > 0 {
		return false
	}
	e.sc = nil
	delete(p.entries, j)
	return true
}

// runConcurrent is the concurrent per-GPU engine: one worker goroutine
// per simulated GPU executes that GPU's shard list from the plan, and a
// reducer goroutine bucket-reduces each window as soon as its last
// shard completes — overlapping the host reduce of window j with the
// bucket-sum of window j+1, the §3.2.3 pipeline. Cancellation is
// checked at every shard boundary; the first worker error cancels the
// rest and is returned.
func runConcurrent(ctx context.Context, points []curve.PointAffine, scalars []bigint.Nat, plan *Plan) (*Result, error) {
	c := plan.Curve
	res := &Result{Plan: plan}
	prov := newWindowProvider(plan, scalars)

	// Group the plan's assignments by GPU, preserving plan (and thus
	// window) order within each worker's shard list.
	shardsByGPU := map[int][]Assignment{}
	var gpuOrder []int
	for _, a := range plan.Assignments {
		if _, ok := shardsByGPU[a.GPU]; !ok {
			gpuOrder = append(gpuOrder, a.GPU)
		}
		shardsByGPU[a.GPU] = append(shardsByGPU[a.GPU], a)
	}

	// A completed window travels to the reducer as (index, accumulators);
	// the channel is buffered to the window count so sends never block
	// and cancellation cannot deadlock a worker mid-send.
	type doneWindow struct {
		j   int
		acc []*curve.PointXYZZ
	}
	windowSums := make([]*curve.PointXYZZ, plan.Windows)
	reduceCh := make(chan doneWindow, plan.Windows)

	grp, gctx := newGroup(ctx)
	var (
		statsMu   sync.Mutex
		workerWG  sync.WaitGroup
		reduceOps uint64
		reduceDur time.Duration
	)
	res.Stats.PerGPU = make([]GPUStats, len(gpuOrder))
	for slot, g := range gpuOrder {
		workerWG.Add(1)
		slot, g, shards := slot, g, shardsByGPU[g]
		grp.Go(func() error {
			defer workerWG.Done()
			st := GPUStats{GPU: g}
			defer func() {
				statsMu.Lock()
				res.Stats.PerGPU[slot] = st
				res.Stats.PACCOps += st.PACCOps
				res.Stats.Phase.BucketSum += st.Busy
				statsMu.Unlock()
			}()
			for _, a := range shards {
				if err := gctx.Err(); err != nil {
					return err
				}
				e, err := prov.acquire(a.Window)
				if err != nil {
					return err
				}
				t0 := time.Now()
				ops, err := sumBucketRange(c, points, e.sc.Buckets, a.BucketLo, a.BucketHi, e.acc)
				st.Busy += time.Since(t0)
				st.PACCOps += ops
				if err != nil {
					return err
				}
				st.Shards++
				if prov.release(a.Window) {
					reduceCh <- doneWindow{j: a.Window, acc: e.acc}
				}
			}
			return nil
		})
	}
	go func() {
		workerWG.Wait()
		close(reduceCh)
	}()
	grp.Go(func() error {
		adder := c.NewAdder()
		for d := range reduceCh {
			if err := gctx.Err(); err != nil {
				return err
			}
			t0 := time.Now()
			pt, ops := reduceBuckets(c, d.acc, adder)
			reduceDur += time.Since(t0)
			reduceOps += ops
			windowSums[d.j] = pt
		}
		return nil
	})
	if err := grp.Wait(); err != nil {
		return nil, err
	}

	res.Stats.Scatter = prov.stats
	res.Stats.Phase.Scatter = prov.scatterTime
	res.Stats.ReduceOps = reduceOps
	res.Stats.Phase.BucketReduce = reduceDur
	if err := windowReduce(ctx, plan, windowSums, res); err != nil {
		return nil, err
	}
	return res, nil
}
