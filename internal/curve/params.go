// Package curve implements short-Weierstrass elliptic-curve arithmetic for
// the four curves the paper evaluates (BN254, BLS12-377, BLS12-381 and an
// MNT4753-class 753-bit curve), in the affine and XYZZ coordinate systems
// used by DistMSM. It provides the PADD (Algorithm 1), PACC (Algorithm 4)
// and PDBL operations, reference scalar multiplication, and deterministic
// point sampling for workload generation.
package curve

import (
	"fmt"
	"math/big"
	"sync"

	"distmsm/internal/field"
)

// Curve describes y² = x³ + Ax + B over a prime field, plus the metadata
// MSM needs: the scalar bit-width λ and (when known) the scalar field.
type Curve struct {
	Name string
	Fp   *field.Field

	A, B field.Element

	// ScalarBits is λ, the bit width of MSM scalars (Table 1).
	ScalarBits int
	// ScalarField is the field of exponents (the group order r) when it is
	// known; it is nil for the synthetic 753-bit curve, whose group order
	// is not computed. MSM never needs it — scalars are plain integers.
	ScalarField *field.Field

	// Gen is a point on the curve used as the base for sampling. For the
	// synthetic curve it is derived by hashing; GenDerived records that.
	Gen        PointAffine
	GenDerived bool
}

// curve and field constants, decimal.
const (
	bn254FpDec = "21888242871839275222246405745257275088696311157297823662689037894645226208583"
	bn254FrDec = "21888242871839275222246405745257275088548364400416034343698204186575808495617"

	bls377FpDec = "258664426012969094010652733694893533536393512754914660539884262666720468348340822774968888139573360124440321458177"
	bls377FrDec = "8444461749428370424248824938781546531375899335154063827935233455917409239041"

	bls381FpDec = "4002409555221667393417789825735904156556882819939007885332058136124031650490837864442687629129015664037894272559787"
	bls381FrDec = "52435875175126190479447740508185965837690552500527637822603658699938581184513"

	bls381GxDec = "3685416753713387016781088315183077757961620795782546409894578378688607592378376318836054947676345821548104185464507"
	bls381GyDec = "1339506544944476473020471379941921221584933875938349620426543736416511423956333506472724655353366534992391756441569"
)

func mustBig(dec string) *big.Int {
	v, ok := new(big.Int).SetString(dec, 10)
	if !ok {
		panic("curve: bad integer literal " + dec)
	}
	return v
}

var registry struct {
	once sync.Once
	m    map[string]*Curve
	err  error
}

// Names lists the supported curve names in the paper's Table 1 order.
func Names() []string { return []string{"BN254", "BLS12-377", "BLS12-381", "MNT4753"} }

// ByName returns the named curve, constructing and caching all curves on
// first use.
func ByName(name string) (*Curve, error) {
	registry.once.Do(buildRegistry)
	if registry.err != nil {
		return nil, registry.err
	}
	c, ok := registry.m[name]
	if !ok {
		return nil, fmt.Errorf("curve: unknown curve %q (have %v)", name, Names())
	}
	return c, nil
}

// All returns every supported curve in Table 1 order.
func All() ([]*Curve, error) {
	var cs []*Curve
	for _, n := range Names() {
		c, err := ByName(n)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
	}
	return cs, nil
}

func buildRegistry() {
	registry.m = make(map[string]*Curve)
	build := func(c *Curve, err error) {
		if err != nil && registry.err == nil {
			registry.err = err
			return
		}
		registry.m[c.Name] = c
	}
	build(newBN254())
	build(newBLS12377())
	build(newBLS12381())
	build(newMNT4753Sim())
}

func newStandardCurve(name, fpDec, frDec string, a, b uint64, gx, gy *big.Int, scalarBits int) (*Curve, error) {
	fp, err := field.New(name+"-Fp", mustBig(fpDec))
	if err != nil {
		return nil, err
	}
	fr, err := field.New(name+"-Fr", mustBig(frDec))
	if err != nil {
		return nil, err
	}
	c := &Curve{
		Name:        name,
		Fp:          fp,
		A:           fp.FromUint64(a),
		B:           fp.FromUint64(b),
		ScalarBits:  scalarBits,
		ScalarField: fr,
	}
	if gx != nil {
		g := PointAffine{X: fp.FromBig(gx), Y: fp.FromBig(gy)}
		if !c.IsOnCurveAffine(&g) {
			return nil, fmt.Errorf("curve %s: generator is not on the curve", name)
		}
		c.Gen = g
	} else {
		c.Gen = c.DerivePoint(1)
		c.GenDerived = true
	}
	return c, nil
}

func newBN254() (*Curve, error) {
	return newStandardCurve("BN254", bn254FpDec, bn254FrDec, 0, 3,
		big.NewInt(1), big.NewInt(2), 254)
}

func newBLS12377() (*Curve, error) {
	// The canonical G1 generator constants are not embedded; the base
	// point is derived on-curve deterministically (MSM workloads only
	// need *some* curve points).
	return newStandardCurve("BLS12-377", bls377FpDec, bls377FrDec, 0, 1, nil, nil, 253)
}

func newBLS12381() (*Curve, error) {
	return newStandardCurve("BLS12-381", bls381FpDec, bls381FrDec, 0, 4,
		mustBig(bls381GxDec), mustBig(bls381GyDec), 255)
}

// newMNT4753Sim builds the synthetic 753-bit curve standing in for
// MNT4-753 (see DESIGN.md): the smallest prime p ≥ 2^752 with p ≡ 3 mod 4,
// curve y² = x³ + 2x + b for a b that makes the derived base point valid.
// The group order is unknown, so ScalarField is nil and MSM scalars are
// plain 753-bit integers — exactly the workload profile of Table 1.
func newMNT4753Sim() (*Curve, error) {
	p := new(big.Int).Lsh(big.NewInt(1), 752)
	p.Add(p, big.NewInt(3)) // keep p ≡ 3 mod 4
	for !p.ProbablyPrime(20) {
		p.Add(p, big.NewInt(4))
	}
	fp, err := field.New("MNT4753-Fp", p)
	if err != nil {
		return nil, err
	}
	c := &Curve{
		Name:       "MNT4753",
		Fp:         fp,
		A:          fp.FromUint64(2), // MNT4 curves have a = 2
		B:          fp.FromUint64(5),
		ScalarBits: 753,
	}
	c.Gen = c.DerivePoint(1)
	c.GenDerived = true
	return c, nil
}
