package curve

import (
	"math/big"
	"testing"
	"testing/quick"

	"distmsm/internal/bigint"
)

func TestWNAFMatchesDoubleAndAdd(t *testing.T) {
	c := mustCurve(t, "BN254")
	a := c.NewAdder()
	g := &c.Gen
	for _, w := range []int{2, 4, 5, 7} {
		for _, k := range c.SampleScalars(8, int64(w)) {
			want := a.ScalarMul(g, k)
			got := a.ScalarMulWNAF(g, k, w)
			if !c.EqualXYZZ(got, want) {
				t.Fatalf("w=%d: wNAF mismatch", w)
			}
		}
	}
	// zero scalar and infinity input
	zero := bigint.New(4)
	if !a.ScalarMulWNAF(g, zero, 4).IsInf() {
		t.Fatal("0*P != inf")
	}
	inf := PointAffine{Inf: true}
	if !a.ScalarMulWNAF(&inf, c.SampleScalars(1, 1)[0], 4).IsInf() {
		t.Fatal("k*inf != inf")
	}
}

func TestWNAFDigitProperties(t *testing.T) {
	prop := func(a, b uint64, wRaw uint8) bool {
		w := int(wRaw%5) + 2 // [2,6]
		k := bigint.Nat{a, b}
		digits := wnafDigits(k, w)
		v := new(big.Int)
		for i := len(digits) - 1; i >= 0; i-- {
			v.Lsh(v, 1)
			v.Add(v, big.NewInt(int64(digits[i])))
		}
		if v.Cmp(k.ToBig()) != 0 {
			return false
		}
		half := 1 << uint(w-1)
		for i, d := range digits {
			if d == 0 {
				continue
			}
			if int(d)%2 == 0 || int(d) >= half || int(d) <= -half {
				return false
			}
			// non-adjacency: next w-1 digits are zero
			for j := i + 1; j < i+w && j < len(digits); j++ {
				if digits[j] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCombMatchesDoubleAndAdd(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		a := c.NewAdder()
		g := &c.Gen
		for _, teeth := range []int{2, 4, 8} {
			comb := c.NewComb(g, teeth)
			for _, k := range c.SampleScalars(6, int64(teeth)) {
				want := a.ScalarMul(g, k)
				got := comb.Mul(k)
				if !c.EqualXYZZ(got, want) {
					t.Fatalf("%s teeth=%d: comb mismatch", name, teeth)
				}
			}
			zero := bigint.New((c.ScalarBits + 63) / 64)
			if !comb.Mul(zero).IsInf() {
				t.Fatalf("%s: comb 0*P != inf", name)
			}
		}
	}
}

func TestJacobianMatchesXYZZ(t *testing.T) {
	for _, name := range []string{"BN254", "MNT4753"} { // a=0 and a!=0 paths
		c := mustCurve(t, name)
		pts := c.SamplePoints(20, 77)
		ja := c.NewJacAdder()
		xa := c.NewAdder()

		jac := c.NewJacobian()
		xyzz := c.NewXYZZ()
		for i := range pts {
			ja.AccMixed(jac, &pts[i])
			xa.Acc(xyzz, &pts[i])
			if i%5 == 0 {
				ja.Double(jac)
				xa.Double(xyzz)
			}
		}
		gotJ := c.JacToAffine(jac)
		gotX := c.ToAffine(xyzz)
		if !c.EqualAffine(&gotJ, &gotX) {
			t.Fatalf("%s: Jacobian and XYZZ accumulation disagree", name)
		}
		// Edge cases: doubling via AccMixed, cancellation, infinity.
		j2 := c.NewJacobian()
		c.SetAffineJac(j2, &pts[0])
		ja.AccMixed(j2, &pts[0]) // same point → doubling path
		x2 := c.NewXYZZ()
		c.SetAffine(x2, &pts[0])
		xa.Acc(x2, &pts[0])
		aj, ax := c.JacToAffine(j2), c.ToAffine(x2)
		if !c.EqualAffine(&aj, &ax) {
			t.Fatalf("%s: Jacobian doubling edge mismatch", name)
		}
		neg := PointAffine{X: pts[0].X.Clone(), Y: pts[0].Y.Clone()}
		c.NegAffine(&neg)
		j3 := c.NewJacobian()
		c.SetAffineJac(j3, &pts[0])
		ja.AccMixed(j3, &neg)
		if !j3.IsInf() {
			t.Fatalf("%s: P + (−P) != inf in Jacobian", name)
		}
		ja.AccMixed(j3, &pts[1]) // inf + P = P
		a3 := c.JacToAffine(j3)
		if !c.EqualAffine(&a3, &pts[1]) {
			t.Fatalf("%s: inf + P != P in Jacobian", name)
		}
		ja.Double(j3)
		inf := c.NewJacobian()
		ja.Double(inf)
		if !inf.IsInf() {
			t.Fatalf("%s: 2*inf != inf in Jacobian", name)
		}
	}
}

// The coordinate-system comparison behind the paper's XYZZ choice.
func BenchmarkCoordinateSystems(b *testing.B) {
	c := mustCurve(b, "BLS12-381")
	pt := c.DerivePoint(123)
	b.Run("XYZZ-PACC", func(b *testing.B) {
		a := c.NewAdder()
		acc := c.NewXYZZ()
		c.SetAffine(acc, &c.Gen)
		a.Double(acc)
		for i := 0; i < b.N; i++ {
			a.Acc(acc, &pt)
		}
	})
	b.Run("Jacobian-madd", func(b *testing.B) {
		a := c.NewJacAdder()
		acc := c.NewJacobian()
		c.SetAffineJac(acc, &c.Gen)
		a.Double(acc)
		for i := 0; i < b.N; i++ {
			a.AccMixed(acc, &pt)
		}
	})
}

func BenchmarkScalarMulStrategies(b *testing.B) {
	c := mustCurve(b, "BN254")
	k := c.SampleScalars(1, 9)[0]
	g := &c.Gen
	b.Run("double-and-add", func(b *testing.B) {
		a := c.NewAdder()
		for i := 0; i < b.N; i++ {
			a.ScalarMul(g, k)
		}
	})
	b.Run("wnaf-5", func(b *testing.B) {
		a := c.NewAdder()
		for i := 0; i < b.N; i++ {
			a.ScalarMulWNAF(g, k, 5)
		}
	})
	comb := c.NewComb(g, 8)
	b.Run("comb-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comb.Mul(k)
		}
	})
}
