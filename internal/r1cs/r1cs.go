// Package r1cs implements rank-1 constraint systems — the circuit
// representation the paper's end-to-end workloads use ("the constraints
// are generated with the R1CS protocol", §5.1.1) — plus builders for the
// example and synthetic workload circuits.
package r1cs

import (
	"fmt"
	"math/rand"

	"distmsm/internal/field"
)

// Term is one coefficient·variable product of a linear combination.
type Term struct {
	Var   int
	Coeff field.Element
}

// LC is a linear combination Σ coeff·var over the witness vector.
type LC []Term

// Constraint is one rank-1 constraint ⟨A,w⟩·⟨B,w⟩ = ⟨C,w⟩.
type Constraint struct {
	A, B, C LC
}

// System is a rank-1 constraint system. The witness vector layout is
// [1, public..., private...]: index 0 is the constant one, indices
// 1..NPublic are public inputs, the rest are private.
type System struct {
	F           *field.Field
	NPublic     int
	NVars       int // including the constant-one slot
	Constraints []Constraint
}

// New creates a system with nPublic public inputs.
func New(f *field.Field, nPublic int) *System {
	return &System{F: f, NPublic: nPublic, NVars: 1 + nPublic}
}

// AllocVar allocates a new private variable, returning its index.
func (s *System) AllocVar() int {
	s.NVars++
	return s.NVars - 1
}

// AddConstraint appends A·B = C.
func (s *System) AddConstraint(a, b, c LC) {
	s.Constraints = append(s.Constraints, Constraint{A: a, B: b, C: c})
}

// One returns the LC for the constant 1.
func (s *System) One() LC { return LC{{Var: 0, Coeff: s.F.One()}} }

// Var returns the LC for a single variable with coefficient 1.
func (s *System) Var(i int) LC { return LC{{Var: i, Coeff: s.F.One()}} }

// EvalLC evaluates a linear combination against a full witness vector.
func (s *System) EvalLC(lc LC, w []field.Element) field.Element {
	acc := s.F.NewElement()
	tmp := s.F.NewElement()
	for _, t := range lc {
		s.F.Mul(tmp, t.Coeff, w[t.Var])
		s.F.Add(acc, acc, tmp)
	}
	return acc
}

// Satisfied checks every constraint against the witness.
func (s *System) Satisfied(w []field.Element) error {
	if len(w) != s.NVars {
		return fmt.Errorf("r1cs: witness length %d != %d variables", len(w), s.NVars)
	}
	if !w[0].Equal(s.F.One()) {
		return fmt.Errorf("r1cs: witness slot 0 must be the constant one")
	}
	tmp := s.F.NewElement()
	for q, c := range s.Constraints {
		a := s.EvalLC(c.A, w)
		b := s.EvalLC(c.B, w)
		cc := s.EvalLC(c.C, w)
		s.F.Mul(tmp, a, b)
		if !tmp.Equal(cc) {
			return fmt.Errorf("r1cs: constraint %d unsatisfied", q)
		}
	}
	return nil
}

// NewWitness returns a witness vector with slot 0 set to one.
func (s *System) NewWitness() []field.Element {
	w := make([]field.Element, s.NVars)
	for i := range w {
		w[i] = s.F.NewElement()
	}
	w[0].Set(s.F.One())
	return w
}

// --- circuit builders ---

// BuildProduct builds the quickstart circuit: public c, private a, b with
// a·b = c and neither factor equal to 1 (via inverse witnesses for a−1
// and b−1). Returns the system and the indices of a and b.
func BuildProduct(f *field.Field) (*System, int, int) {
	s := New(f, 1) // public: c at index 1
	a := s.AllocVar()
	b := s.AllocVar()
	// a·b = c
	s.AddConstraint(s.Var(a), s.Var(b), s.Var(1))
	// (a−1)·invA1 = 1 proves a ≠ 1; same for b.
	one := f.One()
	negOne := f.NewElement()
	f.Neg(negOne, one)
	for _, v := range []int{a, b} {
		inv := s.AllocVar()
		s.AddConstraint(LC{{v, one.Clone()}, {0, negOne.Clone()}}, s.Var(inv), s.One())
	}
	return s, a, b
}

// WitnessProduct builds a witness for BuildProduct given factors a, b.
func WitnessProduct(s *System, aVal, bVal field.Element) ([]field.Element, error) {
	f := s.F
	w := s.NewWitness()
	w[2].Set(aVal)
	w[3].Set(bVal)
	f.Mul(w[1], aVal, bVal)
	one := f.One()
	for i, v := range []field.Element{aVal, bVal} {
		d := f.NewElement()
		f.Sub(d, v, one)
		if d.IsZero() {
			return nil, fmt.Errorf("r1cs: factor %d equals one", i)
		}
		f.Inv(w[4+i], d)
	}
	return w, nil
}

// BuildSynthetic builds a satisfiable chain circuit with exactly n
// multiplication constraints (a hash-chain-like squaring ladder with a
// random affine twist per step) — the shape used to stand in for the
// paper's workload circuits. Returns the system and a valid witness.
func BuildSynthetic(f *field.Field, n int, seed int64) (*System, []field.Element) {
	rnd := rand.New(rand.NewSource(seed))
	s := New(f, 1)
	vars := make([]int, n+1)
	vals := make([]field.Element, n+1)
	vars[0] = s.AllocVar()
	vals[0] = f.Rand(rnd)
	coeffs := make([]field.Element, n)
	for q := 0; q < n; q++ {
		vars[q+1] = s.AllocVar()
		coeffs[q] = f.Rand(rnd)
		// x_{q+1} = x_q · (x_q + c_q)
		s.AddConstraint(
			s.Var(vars[q]),
			LC{{vars[q], f.One()}, {0, coeffs[q].Clone()}},
			s.Var(vars[q+1]),
		)
		t := f.NewElement()
		f.Add(t, vals[q], coeffs[q])
		vals[q+1] = f.NewElement()
		f.Mul(vals[q+1], vals[q], t)
	}
	// public output = final chain value: out·1 = x_n
	s.AddConstraint(s.Var(1), s.One(), s.Var(vars[n]))

	w := s.NewWitness()
	w[1].Set(vals[n])
	for i, v := range vars {
		w[v].Set(vals[i])
	}
	return s, w
}
