package outsource

import (
	"math/big"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

func testCurve(t *testing.T) *curve.Curve {
	t.Helper()
	c, err := curve.ByName("BN254")
	if err != nil {
		t.Fatalf("curve: %v", err)
	}
	return c
}

// instance builds a deterministic MSM instance plus its true result.
func instance(t *testing.T, c *curve.Curve, n int, seed uint64) ([]curve.PointAffine, []bigint.Nat, *curve.PointXYZZ) {
	t.Helper()
	points := c.SamplePoints(n, seed)
	scalars := c.SampleScalars(n, int64(seed)+1)
	return points, scalars, c.MSMReference(points, scalars)
}

func TestHonestWorkerAccepted(t *testing.T) {
	c := testCurve(t)
	points, scalars, q := instance(t, c, 64, 3)
	ck, err := NewCheck(c, points, scalars, Params{}, NewSeededReader(7))
	if err != nil {
		t.Fatalf("NewCheck: %v", err)
	}
	// Honest worker: compute both instances faithfully.
	chal := c.MSMReference(points, ck.Challenge())
	if !ck.Verify(q, chal) {
		t.Fatal("honest claims rejected")
	}
}

func TestCorruptClaimRejected(t *testing.T) {
	c := testCurve(t)
	points, scalars, q := instance(t, c, 64, 4)
	ck, err := NewCheck(c, points, scalars, Params{}, NewSeededReader(8))
	if err != nil {
		t.Fatalf("NewCheck: %v", err)
	}
	chal := c.MSMReference(points, ck.Challenge())
	a := c.NewAdder()

	// Corrupt the real claim only.
	badQ := q.Clone()
	a.Acc(badQ, &points[0])
	if ck.Verify(badQ, chal) {
		t.Fatal("corrupt real claim accepted")
	}
	// Corrupt the challenge claim only.
	badT := chal.Clone()
	a.Acc(badT, &points[1])
	if ck.Verify(q, badT) {
		t.Fatal("corrupt challenge claim accepted")
	}
	// Corrupt both (obliviously — the same perturbation on each side).
	if ck.Verify(badQ, badT) {
		t.Fatal("jointly corrupted claims accepted")
	}
	// nil claims are rejections, not panics.
	if ck.Verify(nil, chal) || ck.Verify(q, nil) {
		t.Fatal("nil claim accepted")
	}
}

// TestLazyWorkerCaughtByMask pins the sparse mask's purpose: a worker
// that consistently skips the same indices in both instances satisfies
// Δ_T = α·Δ_R automatically, and only the mask terms it dropped expose
// it. Skipping the whole second half of a 64-point instance must hit at
// least one of the 16 default mask terms for the seeds used here.
func TestLazyWorkerCaughtByMask(t *testing.T) {
	c := testCurve(t)
	points, scalars, _ := instance(t, c, 64, 5)
	ck, err := NewCheck(c, points, scalars, Params{}, NewSeededReader(9))
	if err != nil {
		t.Fatalf("NewCheck: %v", err)
	}
	half := len(points) / 2
	lazyQ := c.MSMReference(points[:half], scalars[:half])
	lazyT := c.MSMReference(points[:half], ck.Challenge()[:half])
	if ck.Verify(lazyQ, lazyT) {
		t.Fatal("half-lazy worker escaped the mask")
	}
}

// TestChallengeRelation pins the algebra the check relies on:
// MSM(P, y) == α·MSM(P, x) + Σ ρⱼ·P_{mⱼ} for honest evaluation, even
// for bases outside the prime-order subgroup (integer blinding).
func TestChallengeRelation(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c, err := curve.ByName(name)
		if err != nil {
			t.Fatalf("curve %s: %v", name, err)
		}
		points, scalars, q := instance(t, c, 48, 11)
		ck, err := NewCheck(c, points, scalars, Params{Lambda: 32, MaskTerms: 4}, NewSeededReader(12))
		if err != nil {
			t.Fatalf("NewCheck: %v", err)
		}
		chal := c.MSMReference(points, ck.Challenge())
		if !ck.Verify(q, chal) {
			t.Fatalf("%s: challenge relation does not hold", name)
		}
	}
}

func TestChallengeWidthUniform(t *testing.T) {
	c := testCurve(t)
	points, scalars, _ := instance(t, c, 32, 6)
	ck, err := NewCheck(c, points, scalars, Params{}, NewSeededReader(10))
	if err != nil {
		t.Fatalf("NewCheck: %v", err)
	}
	want := (ck.ChallengeBits() + 63) / 64
	for i, y := range ck.Challenge() {
		if len(y) != want {
			t.Fatalf("challenge scalar %d has width %d limbs, want %d", i, len(y), want)
		}
		if y.BitLen() > ck.ChallengeBits() {
			t.Fatalf("challenge scalar %d is %d bits, cap %d", i, y.BitLen(), ck.ChallengeBits())
		}
	}
	if ck.ChallengeBits() < c.ScalarBits+DefaultLambda {
		t.Fatalf("ChallengeBits %d below ScalarBits+Lambda", ck.ChallengeBits())
	}
}

func TestParamValidation(t *testing.T) {
	c := testCurve(t)
	points, scalars, _ := instance(t, c, 8, 7)
	for _, p := range []Params{{Lambda: 4}, {Lambda: 300}, {MaskTerms: -1}} {
		if _, err := NewCheck(c, points, scalars, p, NewSeededReader(1)); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if _, err := NewCheck(c, points, scalars[:4], Params{}, NewSeededReader(1)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewCheck(c, nil, nil, Params{}, NewSeededReader(1)); err == nil {
		t.Fatal("empty instance accepted")
	}
	// MaskTerms clamps to n rather than failing.
	ck, err := NewCheck(c, points, scalars, Params{MaskTerms: 1000}, NewSeededReader(1))
	if err != nil {
		t.Fatalf("clamped mask: %v", err)
	}
	if got := ck.Params().MaskTerms; got != len(points) {
		t.Fatalf("MaskTerms clamped to %d, want %d", got, len(points))
	}
}

func TestSeededReaderDeterministic(t *testing.T) {
	a, b := NewSeededReader(42), NewSeededReader(42)
	bufA, bufB := make([]byte, 257), make([]byte, 257)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatalf("seeded readers diverge at byte %d", i)
		}
	}
	other := NewSeededReader(43)
	bufC := make([]byte, 257)
	if _, err := other.Read(bufC); err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range bufA {
		if bufA[i] != bufC[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical streams")
	}
}

func TestMaskSumMatchesRefs(t *testing.T) {
	c := testCurve(t)
	points := c.SamplePoints(32, 13)
	m, err := NewMask(len(points), 6, NewSeededReader(14))
	if err != nil {
		t.Fatalf("NewMask: %v", err)
	}
	if len(m.Refs) != 6 {
		t.Fatalf("mask has %d refs, want 6", len(m.Refs))
	}
	// Reference: evaluate the signed sum with big-scalar machinery.
	a := c.NewAdder()
	want := c.NewXYZZ()
	one := bigint.FromBig(big.NewInt(1), 1)
	for _, ref := range m.Refs {
		if ref == 0 {
			t.Fatal("mask emitted the invalid ref 0")
		}
		idx := ref
		if idx < 0 {
			idx = -idx
		}
		p := points[idx-1]
		term := a.ScalarMul(&p, one)
		if ref < 0 {
			c.Neg(term)
		}
		a.Add(want, term)
	}
	got := m.Sum(c, points)
	if !c.EqualXYZZ(got, want) {
		t.Fatal("Mask.Sum disagrees with reference evaluation")
	}
}
