package gpusim

import (
	"math"

	"distmsm/internal/kernel"
)

// Calibration constants of the cost model. They are fitted once against
// the paper's single-GPU A100 numbers (Table 3) and then held fixed for
// every experiment; see EXPERIMENTS.md for the resulting paper-vs-model
// comparison.
const (
	// GlobalAtomicNs is the uncontended global-memory atomic cost.
	GlobalAtomicNs = 4.0
	// SharedAtomicNs is the uncontended shared-memory atomic cost.
	SharedAtomicNs = 0.7
	// ContentionFactor scales the serialisation penalty with the square
	// root of the concurrent writers per address (conflicting updates
	// serialise within an SM but coalesce across the chip, so the
	// effective penalty saturates; calibrated against Figure 11's 6.7x
	// hierarchical advantage at s=11).
	ContentionFactor = 0.16
	// TCTileOverhead accounts for zero padding in Toeplitz tiles.
	TCTileOverhead = 1.3
	// TCOffloadEfficiency is the fraction of the m×n CUDA-core work that
	// the tensor-core offload actually removes (fragment management and
	// operand marshalling stay on CUDA cores).
	TCOffloadEfficiency = 0.15
	// TCFragmentWriteFraction is the fraction of the expanded (4×)
	// fragment bytes that actually cross device memory on the naive
	// compaction path.
	TCFragmentWriteFraction = 0.04
	// TCExtraRegsPerWord is the extra 32-bit registers per thread the
	// tensor-core path needs for output fragments, per big-integer word.
	TCExtraRegsPerWord = 1.0
	// OccupancySaturation is the occupancy at which arithmetic-bound
	// kernels reach peak issue rate; beyond it extra resident warps add
	// nothing (latency is already hidden).
	OccupancySaturation = 0.25
	// SpillTransferOpFactor prices one register<->shared-memory big-int
	// transfer in int32 ops per word (shared memory is on-chip and wide).
	SpillTransferOpFactor = 0.125
	// CompilerSpillThresholdRegs is the per-thread register budget beyond
	// which the compiler spills to device memory (§4.2.2's criticised
	// mechanism); the excess words take SpillRoundTrips memory trips per
	// point operation. This is what makes high-pressure baseline kernels
	// partially memory-bound (Figure 9's device sensitivity).
	CompilerSpillThresholdRegs = 64
	// SpillRoundTrips is the average device-memory round trips per
	// compiler-spilled register word per point operation.
	SpillRoundTrips = 2
)

// Model prices GPU work for one device.
type Model struct {
	Dev Device
}

// MulIntOps returns the CUDA-core int32 multiply-add operations of one
// Montgomery modular multiplication at the given field width (CIOS on
// 32-bit words: two w×w passes plus carry handling).
func MulIntOps(fieldBits int) float64 {
	w := float64((fieldBits + 31) / 32)
	return 2*w*w + 4*w
}

// ecOpWork splits one EC point operation (PADD/PACC per spec) into
// CUDA-core int32 ops, tensor-core int8 ops, and fragment bytes.
func (m Model) ecOpWork(spec kernel.Spec, fieldBits int) (cudaOps, tcOps, fragBytes float64) {
	w := float64((fieldBits + 31) / 32)
	mulCUDA := MulIntOps(fieldBits)
	adds := 8 * w // the formula's additions/subtractions
	if spec.TensorCore && m.Dev.TensorInt8TOPS > 0 {
		// The m×n half of each reduction moves to tensor cores: part of
		// the w² reduction work leaves the CUDA cores (the rest is
		// fragment management), re-expressed as int8 MACs (16 per
		// int32 MAC) on the tensor units.
		cudaPerMul := mulCUDA - w*w*TCOffloadEfficiency
		tcPerMul := 16 * w * w * TCTileOverhead
		cudaOps = float64(spec.Muls)*cudaPerMul + adds
		tcOps = float64(spec.Muls) * tcPerMul
		if !spec.TCCompacted {
			// Expanded uint32 fragments take a memory round trip: the
			// paper's 4× traffic of the dense 2·fieldBits product.
			fragBytes = float64(spec.Muls) * 4 * (2 * float64(fieldBits) / 8) * TCFragmentWriteFraction
		}
	} else {
		cudaOps = float64(spec.Muls)*mulCUDA + adds
	}
	// Explicit spilling moves big integers through shared memory; the
	// paths are on-chip and wide, so the transfers are nearly free.
	cudaOps += float64(spec.SharedTransfers) * w * SpillTransferOpFactor
	// Register demand beyond the compiler's budget spills to device
	// memory (the paper's §4.2.2 motivation): price the round trips.
	if regs := m.ThreadRegs(spec, fieldBits); regs > CompilerSpillThresholdRegs {
		fragBytes += float64(regs-CompilerSpillThresholdRegs) * 4 * SpillRoundTrips
	}
	return cudaOps, tcOps, fragBytes
}

// throughputFactor converts occupancy to achieved issue rate: arithmetic
// kernels saturate the pipelines at OccupancySaturation; below that,
// throughput falls proportionally (not enough warps to hide latency).
func throughputFactor(occ float64) float64 {
	f := occ / OccupancySaturation
	if f > 1 {
		return 1
	}
	return f
}

// ThreadRegs returns the 32-bit registers per thread for the kernel.
func (m Model) ThreadRegs(spec kernel.Spec, fieldBits int) int {
	regs := kernel.ThreadRegisters(spec.PeakLive, fieldBits)
	if spec.TensorCore && m.Dev.TensorInt8TOPS > 0 {
		regs += int(TCExtraRegsPerWord * float64((fieldBits+31)/32))
	}
	return regs
}

// Occupancy returns the kernel's achieved occupancy on this device.
func (m Model) Occupancy(spec kernel.Spec, fieldBits int) float64 {
	return kernel.Occupancy(m.ThreadRegs(spec, fieldBits), m.Dev.RegFilePerSM, m.Dev.MaxThreadsPerSM)
}

// ConcurrentThreads returns resident threads across the device at the
// kernel's occupancy.
func (m Model) ConcurrentThreads(spec kernel.Spec, fieldBits int) int {
	t := int(float64(m.Dev.MaxThreads()) * m.Occupancy(spec, fieldBits))
	if t < 32 {
		t = 32
	}
	return t
}

// ECOpSeconds returns the wall time for totalOps EC point operations of
// the given kernel on this device. CUDA cores and tensor cores overlap
// (the paper: "the total arithmetic throughput is essentially the sum of
// their throughput"), so compute time is the maximum of the two streams;
// fragment traffic adds a bandwidth term.
func (m Model) ECOpSeconds(spec kernel.Spec, fieldBits int, totalOps float64) float64 {
	if totalOps <= 0 {
		return 0
	}
	cudaOps, tcOps, fragBytes := m.ecOpWork(spec, fieldBits)
	occ := m.Occupancy(spec, fieldBits)
	eff := m.Dev.Efficiency * throughputFactor(occ)
	cudaTime := totalOps * cudaOps / (m.Dev.Int32TOPS * 1e12 * eff)
	var tcTime float64
	if tcOps > 0 {
		tcTime = totalOps * tcOps / (m.Dev.TensorInt8TOPS * 1e12 * eff)
	}
	compute := cudaTime
	if tcTime > compute {
		compute = tcTime
	}
	return compute + m.MemSeconds(totalOps*fragBytes)
}

// ECOpSecondsPerThread prices a per-thread workload: the time for every
// logical thread to execute opsPerThread EC ops when nThreads logical
// threads share the device (waves of resident threads).
func (m Model) ECOpSecondsPerThread(spec kernel.Spec, fieldBits int, opsPerThread float64, nThreads int) float64 {
	return m.ECOpSeconds(spec, fieldBits, opsPerThread*float64(nThreads))
}

// GlobalAtomicSeconds prices totalOps global atomic RMWs with on average
// `contention` concurrent writers per address. The cost per operation
// grows with the square root of contention (saturating serialisation).
func (m Model) GlobalAtomicSeconds(totalOps, contention float64) float64 {
	if contention < 1 {
		contention = 1
	}
	perOp := GlobalAtomicNs * (1 + ContentionFactor*(math.Sqrt(contention)-1)) * 1e-9
	// Uncontended atomics are throughput-limited across the device, not
	// latency-limited per thread: normalise by SM parallelism.
	return totalOps * perOp / float64(m.Dev.SMs)
}

// SharedAtomicSeconds prices shared-memory atomics within thread blocks.
func (m Model) SharedAtomicSeconds(totalOps, contention float64) float64 {
	if contention < 1 {
		contention = 1
	}
	perOp := SharedAtomicNs * (1 + ContentionFactor*(math.Sqrt(contention)-1)) * 1e-9
	return totalOps * perOp / float64(m.Dev.SMs)
}

// MemSeconds prices bytes of device-memory traffic.
func (m Model) MemSeconds(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes / (m.Dev.MemBandwidthGBs * 1e9)
}

// HostTransferSeconds prices a host<->device transfer.
func HostTransferSeconds(bytes float64, ic Interconnect) float64 {
	if bytes <= 0 {
		return 0
	}
	return ic.HostLatency + bytes/(ic.HostLinkGBs*1e9)
}

// CPUECOpSeconds prices EC point operations on the host CPU, relative to
// a reference A100 (§3.2.3's "a GPU could be up to 128× faster").
func CPUECOpSeconds(cpu CPU, spec kernel.Spec, fieldBits int, totalOps float64) float64 {
	if totalOps <= 0 {
		return 0
	}
	ref := Model{Dev: A100()}
	cudaOps, _, _ := ref.ecOpWork(kernel.Spec{Variant: spec.Variant, Muls: spec.Muls, PeakLive: spec.PeakLive}, fieldBits)
	throughput := cpu.ECThroughputRatio * ref.Dev.Int32TOPS * 1e12 * ref.Dev.Efficiency
	return totalOps * cudaOps / throughput
}
