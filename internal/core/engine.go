package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/msm"
	"distmsm/internal/telemetry"
)

// defaultWorkers is the host parallelism when Options.Workers is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Engine selects how the functional execution is scheduled on the host.
// Both engines run the same scatter/sum/reduce phases over the same plan
// and produce bit-identical points and identical Stats op counts; they
// differ only in concurrency structure.
type Engine int

const (
	// EngineSerial is the reference composition: windows one after the
	// other, bucket-sum parallelised over host goroutines, bucket-reduce
	// after every window has been summed.
	EngineSerial Engine = iota
	// EngineConcurrent is the §3.2.2/§3.2.3 structure actually executed:
	// one worker goroutine per simulated GPU consumes that GPU's
	// (window, bucket-range) shard assignments, and a host reducer
	// goroutine overlaps the bucket-reduce of completed windows with the
	// bucket-sum of later ones.
	EngineConcurrent
)

func (e Engine) String() string {
	switch e {
	case EngineSerial:
		return "serial"
	case EngineConcurrent:
		return "concurrent"
	}
	return "unknown"
}

// runSerial is the serial reference engine. The scalar recoding streams
// one window at a time (a per-scalar carry byte instead of the full
// digit matrix); cancellation is checked at every window boundary.
func runSerial(ctx context.Context, points []curve.PointAffine, scalars []bigint.Nat, plan *Plan, opts Options) (*Result, error) {
	c := plan.Curve
	res := &Result{Plan: plan}
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	var rec *msm.WindowRecoder
	if plan.Pre == nil {
		rec = msm.NewWindowRecoder(scalars, c.ScalarBits, plan.S, plan.Signed)
	}
	tr := opts.Tracer
	bucketAcc := make([][]*curve.PointXYZZ, plan.Windows)
	var digits []int32
	var scratches []*bucketScratch // per-worker, reused across windows
	for j := 0; j < plan.Windows; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var sc *ScatterResult
		if plan.Pre != nil {
			// Pre-scattered window (fixed-base evaluation): the scatter —
			// and its wall time — happened at the transform; only the
			// op-count stats are folded in here.
			sc = plan.Pre[j]
			res.Stats.Scatter.add(sc.Stats)
		} else {
			digits = rec.Window(j, digits)
			t0 := time.Now()
			var err error
			sc, err = scatterWindow(plan, digits)
			if err != nil {
				return nil, err
			}
			dur := time.Since(t0)
			res.Stats.Scatter.add(sc.Stats)
			res.Stats.Phase.Scatter += dur
			if tr != nil {
				tr.Record(telemetry.Span{Name: "scatter", Cat: "msm", Track: telemetry.TrackHost,
					Start: t0, Dur: dur, Labeled: true, Window: int32(j)})
			}
		}

		t0 := time.Now()
		var err error
		bucketAcc[j], err = sumBuckets(c, points, sc.Buckets, workers, &scratches, &res.Stats)
		if err != nil {
			return nil, err
		}
		dur := time.Since(t0)
		// Serially there is no busy/wall distinction: one window's sum at
		// a time, so both readings are the summed window durations.
		res.Stats.Phase.BucketSum += dur
		res.Stats.Phase.BucketSumWall += dur
		if tr != nil {
			tr.Record(telemetry.Span{Name: "bucket-sum", Cat: "msm", Track: telemetry.TrackHost,
				Start: t0, Dur: dur, Labeled: true, Window: int32(j)})
		}
	}

	// Phase 3 (§3.2.3, host CPU): bucket-reduce each window with the
	// serial running-suffix method.
	adder := c.NewAdder()
	windowSums := make([]*curve.PointXYZZ, plan.Windows)
	t0 := time.Now()
	for j := 0; j < plan.Windows; j++ {
		var ops uint64
		var err error
		w0 := time.Now()
		windowSums[j], ops, err = reduceBuckets(ctx, c, bucketAcc[j], adder)
		res.Stats.ReduceOps += ops
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.Record(telemetry.Span{Name: "bucket-reduce", Cat: "msm", Track: telemetry.TrackHost,
				Start: w0, Dur: time.Since(w0), Labeled: true, Window: int32(j)})
		}
	}
	res.Stats.Phase.BucketReduce = time.Since(t0)

	if err := windowReduce(ctx, plan, windowSums, res, tr); err != nil {
		return nil, err
	}
	return res, nil
}

// windowReduce runs phase 4, the final Horner combination of the window
// sums, into res.Point.
func windowReduce(ctx context.Context, plan *Plan, windowSums []*curve.PointXYZZ, res *Result, tr *telemetry.Tracer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c := plan.Curve
	adder := c.NewAdder()
	acc := c.NewXYZZ()
	t0 := time.Now()
	for j := plan.Windows - 1; j >= 0; j-- {
		if plan.FixedBase == nil {
			// Horner doubling ladder. Fixed-base plans skip it: their
			// tables already carry the 2^(j·s) factors, which is the point
			// of the §2.3.1 precomputation.
			for b := 0; b < plan.S; b++ {
				adder.Double(acc)
				res.Stats.WindowOps++
			}
		}
		adder.Add(acc, windowSums[j])
		res.Stats.WindowOps++
	}
	res.Stats.Phase.WindowReduce = time.Since(t0)
	if tr != nil {
		tr.Record(telemetry.Span{Name: "window-reduce", Cat: "msm", Track: telemetry.TrackHost,
			Start: t0, Dur: res.Stats.Phase.WindowReduce})
	}
	res.Point = acc
	return nil
}

// group is a minimal errgroup: the first error wins and cancels the
// derived context so sibling goroutines stop at their next boundary.
type group struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	once   sync.Once
	err    error
}

func newGroup(ctx context.Context) (*group, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &group{cancel: cancel}, ctx
}

func (g *group) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.once.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// windowEntry is one in-flight window of the concurrent engine: its
// scatter result (shared by every GPU working on the window), the
// shared bucket-accumulator array the shards fill at disjoint ranges,
// and the count of shards still to finish.
type windowEntry struct {
	sc      *ScatterResult
	acc     []*curve.PointXYZZ
	pending int
}

// windowProvider recodes and scatters windows on demand, in window
// order, caching each window until every shard of it has completed.
// This keeps digit storage at one window (plus a carry byte per scalar)
// instead of the full digits[windows][n] matrix.
type windowProvider struct {
	mu      sync.Mutex
	plan    *Plan
	rec     *msm.WindowRecoder
	digits  []int32
	entries map[int]*windowEntry
	shards  []int // per-window shard count from the plan
	next    int

	stats       ScatterStats
	scatterTime time.Duration
	tr          *telemetry.Tracer // nil = tracing disabled
}

func newWindowProvider(plan *Plan, scalars []bigint.Nat) *windowProvider {
	shards := make([]int, plan.Windows)
	for _, a := range plan.Assignments {
		shards[a.Window]++
	}
	p := &windowProvider{
		plan:    plan,
		entries: map[int]*windowEntry{},
		shards:  shards,
	}
	if plan.Pre == nil {
		p.rec = msm.NewWindowRecoder(scalars, plan.Curve.ScalarBits, plan.S, plan.Signed)
	}
	return p
}

// acquire returns window j's entry, recoding and scattering windows up
// to j first if needed. Scatter happens exactly once per window, in
// window order, so the scatter stats match the serial engine's. The
// ScatterResult is returned separately, captured under the lock: a
// speculative or retried execution may outlive the window's release
// (which drops entry.sc), and must keep using the pointer it acquired.
func (p *windowProvider) acquire(j int) (*windowEntry, *ScatterResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.next <= j {
		var sc *ScatterResult
		if p.plan.Pre != nil {
			// Pre-scattered window (fixed-base evaluation): scatter wall
			// time was paid at the transform; only stats fold in here.
			sc = p.plan.Pre[p.next]
		} else {
			p.digits = p.rec.Window(p.next, p.digits)
			t0 := time.Now()
			var err error
			sc, err = scatterWindow(p.plan, p.digits)
			if err != nil {
				return nil, nil, err
			}
			dur := time.Since(t0)
			p.scatterTime += dur
			if p.tr != nil {
				p.tr.Record(telemetry.Span{Name: "scatter", Cat: "msm", Track: telemetry.TrackHost,
					Start: t0, Dur: dur, Labeled: true, Window: int32(p.next)})
			}
		}
		p.stats.add(sc.Stats)
		p.entries[p.next] = &windowEntry{
			sc:      sc,
			acc:     make([]*curve.PointXYZZ, p.plan.Buckets),
			pending: p.shards[p.next],
		}
		p.next++
	}
	e := p.entries[j]
	if e == nil {
		// The window was already fully committed and its buffers dropped:
		// every shard of it (including the caller's) has a winning result,
		// so this late speculative/stolen execution has nothing to do.
		return nil, nil, nil
	}
	return e, e.sc, nil
}

// release marks one shard of window j done. When it was the last shard
// the window's scatter buffers are dropped and release reports true:
// the accumulators are ready for the reducer.
func (p *windowProvider) release(j int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[j]
	e.pending--
	if e.pending > 0 {
		return false
	}
	e.sc = nil
	delete(p.entries, j)
	return true
}

// The concurrent per-GPU engine lives in scheduler.go (runConcurrent /
// runScheduled): one worker goroutine per simulated GPU pulls
// (window, bucket-range) shards from the fault-tolerant scheduler, and
// a reducer goroutine overlaps the host bucket-reduce of completed
// windows with the bucket-sum of later ones (§3.2.3).
