package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"distmsm/internal/gpusim"
)

// This file is the service's HTTP face: a small JSON API over Submit.
// Requests stay tiny — a circuit name and a witness seed — because the
// witness is generated server-side by the registered generator;
// clients never ship multi-megabyte witnesses over the wire.

// maxJobTimeout caps client-requested deadlines so one request cannot
// pin a worker for an hour.
const maxJobTimeout = 10 * time.Minute

// maxCircuitName bounds the circuit-name length accepted on the wire.
const maxCircuitName = 64

// jobRequestWire is the POST /prove body.
type jobRequestWire struct {
	Circuit   string `json:"circuit"`
	Seed      int64  `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// ParseJobRequest decodes and validates a wire-format job request. It
// is deliberately strict — unknown fields, oversized names,
// non-printable names and out-of-range timeouts are all rejected with
// errors wrapping ErrBadRequest — and it never panics on any input
// (FuzzJobRequest holds it to that).
func ParseJobRequest(body []byte) (Request, error) {
	var w jobRequestWire
	if err := json.Unmarshal(body, &w); err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if w.Circuit == "" {
		return Request{}, fmt.Errorf("%w: missing circuit name", ErrBadRequest)
	}
	if len(w.Circuit) > maxCircuitName {
		return Request{}, fmt.Errorf("%w: circuit name longer than %d bytes", ErrBadRequest, maxCircuitName)
	}
	for _, r := range w.Circuit {
		if r < 0x21 || r > 0x7E {
			return Request{}, fmt.Errorf("%w: circuit name contains non-printable or space character %q", ErrBadRequest, r)
		}
	}
	if w.TimeoutMS < 0 {
		return Request{}, fmt.Errorf("%w: negative timeout_ms", ErrBadRequest)
	}
	timeout := time.Duration(w.TimeoutMS) * time.Millisecond
	if timeout > maxJobTimeout {
		return Request{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadRequest, maxJobTimeout)
	}
	return Request{Circuit: w.Circuit, Seed: w.Seed, Timeout: timeout}, nil
}

// Handler returns the service's HTTP API:
//
//	POST /prove   {"circuit": "...", "seed": 1, "timeout_ms": 30000}
//	              → 200 {"proof": "<hex>", "job_id": n}
//	              → 429 + Retry-After on admission rejection
//	              → 504 on a blown job deadline
//	GET  /healthz → per-GPU breaker states (503 if any GPU quarantined)
//	GET  /stats   → counters snapshot
//	GET  /metrics → Prometheus text exposition (when Config.Metrics set)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/prove", s.handleProve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	if s.metrics != nil {
		mux.Handle("/metrics", s.metrics.reg.Handler())
	}
	return mux
}

func (s *Service) handleProve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := make([]byte, 0, 256)
	buf := make([]byte, 256)
	for len(body) < 1<<16 {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	req, err := ParseJobRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(req)
	var full *QueueFullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(full.RetryAfter.Seconds())+1))
		http.Error(w, full.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrUnknownCircuit):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrShuttingDown):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	proof, err := job.Wait(r.Context())
	if err != nil {
		job.Cancel() // client went away or job failed: either way, stop it
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else if errors.Is(err, context.Canceled) {
			// 499 is nginx's "client closed request"; net/http has no name
			// for it but it is the conventional code.
			code = 499
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, map[string]any{
		"job_id": job.ID,
		"proof":  hex.EncodeToString(s.eng.MarshalProof(proof)),
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Health()
	quarantined := 0
	gpus := make([]map[string]any, len(snap))
	for i, h := range snap {
		if h.State == gpusim.BreakerOpen {
			quarantined++
		}
		gpus[i] = map[string]any{
			"gpu":    h.GPU,
			"state":  h.State.String(),
			"streak": h.ConsecutiveFaults,
			"trips":  h.Trips,
			"shards": h.Shards,
			"faults": h.Faults,
		}
	}
	if quarantined > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{"quarantined": quarantined, "gpus": gpus})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
