// Command experiments regenerates the paper's evaluation tables and
// figures from this repository's implementations and cost models.
//
// Usage:
//
//	experiments              # run everything, in paper order
//	experiments table3 fig11 # run a subset
//	experiments -list        # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"distmsm"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	outDir := flag.String("o", "", "also write each report to <dir>/<name>.txt")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(distmsm.Experiments(), "\n"))
		return
	}
	names := flag.Args()
	if len(names) == 0 {
		names = distmsm.Experiments()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, n := range names {
		out, err := distmsm.RunExperiment(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, n+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
