package service

// Tests of the service's cluster-facing surface: the honest-degradation
// healthz contract and the coordinator dispatch endpoint.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distmsm/internal/cluster"
)

func getHealthz(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestHealthzHonestDegrade: a node with SOME GPUs quarantined still
// proves, so healthz must stay 200 with "degraded": true; only a node
// with EVERY GPU quarantined answers 503. One sick device must not make
// the whole node read as dead to load balancers and coordinators.
func TestHealthzHonestDegrade(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	srv := httptest.NewServer(svc.Handler())

	code, body := getHealthz(t, srv.URL)
	if code != http.StatusOK || body["status"] != "ok" || body["degraded"] != false {
		t.Fatalf("healthy node: code %d body %v", code, body)
	}

	// Trip GPU 0's breaker (threshold faults in one run): degraded, not
	// down.
	threshold := svc.health.Config().FaultThreshold
	svc.health.RecordRun(0, 1, threshold)
	code, body = getHealthz(t, srv.URL)
	if code != http.StatusOK {
		t.Fatalf("half-quarantined node answered %d — one sick GPU must not 503 the node", code)
	}
	if body["status"] != "degraded" || body["degraded"] != true || body["quarantined"] != float64(1) {
		t.Fatalf("half-quarantined body %v, want status=degraded quarantined=1", body)
	}

	// Trip the last GPU too: now the node is honestly down.
	svc.health.RecordRun(1, 1, threshold)
	code, body = getHealthz(t, srv.URL)
	if code != http.StatusServiceUnavailable || body["status"] != "down" {
		t.Fatalf("fully-quarantined node: code %d body %v, want 503/down", code, body)
	}

	srv.Close()
	shutdownClean(t, svc)
	check()
}

// TestClusterDispatchEndpoint: the worker-node face of the cluster —
// a coordinator dispatch proves and returns hex, bad messages bounce
// with 400/404, and the proof round-trips through VerifyProof.
func TestClusterDispatchEndpoint(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	srv := httptest.NewServer(svc.Handler())

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/cluster/dispatch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	code, raw := post(`{"job_id":7,"circuit":"synthetic","seed":42}`)
	if code != http.StatusOK {
		t.Fatalf("dispatch: HTTP %d: %s", code, raw)
	}
	w, proof, err := cluster.ParseDispatchResponse(raw)
	if err != nil || w.JobID != 7 {
		t.Fatalf("dispatch response %s: parsed %+v err %v", raw, w, err)
	}
	ok, err := svc.VerifyProof("synthetic", 42, proof)
	if err != nil || !ok {
		t.Fatalf("dispatched proof failed verification: ok=%v err=%v", ok, err)
	}
	// The dispatch path and the local path prove identical bytes — what
	// the coordinator's byte-identity guarantee stands on.
	local, err := svc.ProveLocal(context.Background(), "synthetic", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(proof, local) {
		t.Fatal("dispatched proof differs from ProveLocal's bytes")
	}
	// A corrupted proof must verify false, not error.
	bad := append([]byte(nil), proof...)
	bad[len(bad)/2] ^= 0x01
	if ok, err := svc.VerifyProof("synthetic", 42, bad); err != nil || ok {
		t.Fatalf("corrupted proof: ok=%v err=%v, want false/nil", ok, err)
	}
	if ok, err := svc.VerifyProof("synthetic", 42, []byte("garbage")); err != nil || ok {
		t.Fatalf("undecodable proof: ok=%v err=%v, want false/nil", ok, err)
	}
	if code, _ := post(`{"job_id":1,"circuit":"","seed":1}`); code != http.StatusBadRequest {
		t.Fatalf("empty circuit: HTTP %d, want 400", code)
	}
	if code, _ := post(`{"job_id":1,"circuit":"nope","seed":1}`); code != http.StatusNotFound {
		t.Fatalf("unknown circuit: HTTP %d, want 404", code)
	}

	srv.Close()
	shutdownClean(t, svc)
	check()
}
