// Package tensorcore is a bit-exact functional model of the tensor-core
// big-integer multiplication of DistMSM §4.3. Big integers are split into
// uint8 digits; multiplication by a *constant* integer (the Montgomery
// modulus n, or n' = -n⁻¹ mod R) becomes a matrix product against a
// constant Toeplitz digit matrix, executed as 8×8×16 integer MMA tiles
// with uint32 accumulators. The package also models the output fragment
// layout of Figure 7, the column shuffle that makes each thread own four
// consecutive output elements, and the on-the-fly register compaction
// that turns the redundant uint32 stream back into dense limbs.
//
// Everything is cross-checked against math/big; the op counters feed the
// GPU cost model in internal/gpusim.
package tensorcore

// Digits8 converts little-endian 64-bit limbs into little-endian uint8
// digits (8 per limb).
func Digits8(limbs []uint64) []uint8 {
	out := make([]uint8, len(limbs)*8)
	for i, l := range limbs {
		for b := 0; b < 8; b++ {
			out[i*8+b] = uint8(l >> (8 * uint(b)))
		}
	}
	return out
}

// Batch is the number of independent products one MMA pass computes —
// the eight 256-bit products of Figure 7a.
const Batch = 8

// mmaK is the depth of one simulated MMA tile (int8 m8n8k16 shape).
const mmaK = 16

// Counters tallies the simulated hardware operations for the cost model.
type Counters struct {
	MMAOps     int // 8x8x16 tensor-core tile operations
	Shuffles   int // warp shuffle / layout exchange operations
	MemWrites  int // uint32 values written to memory (naive compaction path)
	CompactOps int // in-register multiply-add compaction steps
}

// Engine multiplies batches of big integers by one constant integer using
// the simulated tensor-core path.
type Engine struct {
	// constDigits are the uint8 digits of the constant operand B.
	constDigits []uint8
	// aDigits is the digit count of the variable operand.
	aDigits int

	Counters Counters
}

// NewEngine builds an engine computing a × B for the constant B given as
// little-endian 64-bit limbs; variable operands carry aLimbs limbs.
func NewEngine(constLimbs []uint64, aLimbs int) *Engine {
	return &Engine{constDigits: Digits8(constLimbs), aDigits: aLimbs * 8}
}

// OutputElems returns the number of uint32 convolution outputs per
// product: one per digit of the full double-width result.
func (e *Engine) OutputElems() int { return e.aDigits + len(e.constDigits) }

// MulBatch multiplies each of the Batch variable operands (uint8 digit
// vectors of the engine's width) by the constant, returning the raw
// uint32 convolution outputs C with C[k] = Σ_{i+j=k} a_i·b_j — the
// "expanded" tensor-core result whose elements carry at most ~23
// significant bits. The computation is performed tile by tile through a
// simulated 8×8×16 integer MMA so the op counters reflect real tensor-core
// work.
func (e *Engine) MulBatch(as *[Batch][]uint8) [Batch][]uint32 {
	nOut := e.OutputElems()
	var out [Batch][]uint32
	for r := range out {
		out[r] = make([]uint32, nOut)
		if len(as[r]) != e.aDigits {
			panic("tensorcore: operand digit width mismatch")
		}
	}

	// The constant operand forms a Toeplitz matrix Bm with
	// Bm[i][k] = b_{k-i}; the product row a × Bm yields the convolution.
	// Tiles: rows of A are the batch (8), columns of A / rows of Bm are
	// the reduction dimension (digit index i), columns of Bm are outputs.
	for k0 := 0; k0 < nOut; k0 += Batch { // output-column tiles
		for i0 := 0; i0 < e.aDigits; i0 += mmaK { // reduction tiles
			var aTile [Batch][mmaK]uint8
			for r := 0; r < Batch; r++ {
				for i := 0; i < mmaK && i0+i < e.aDigits; i++ {
					aTile[r][i] = as[r][i0+i]
				}
			}
			var bTile [mmaK][Batch]uint8
			for i := 0; i < mmaK; i++ {
				for k := 0; k < Batch; k++ {
					col := k0 + k
					row := i0 + i
					if d := col - row; d >= 0 && d < len(e.constDigits) && row < e.aDigits {
						bTile[i][k] = e.constDigits[d]
					}
				}
			}
			var cTile [Batch][Batch]uint32
			mma(&cTile, &aTile, &bTile)
			e.Counters.MMAOps++
			for r := 0; r < Batch; r++ {
				for k := 0; k < Batch && k0+k < nOut; k++ {
					out[r][k0+k] += cTile[r][k]
				}
			}
		}
	}
	return out
}

// mma is the simulated tensor-core primitive: C += A(8×16) · B(16×8) with
// uint8 operands and uint32 accumulation, the int8 m8n8k16 MMA shape.
func mma(c *[Batch][Batch]uint32, a *[Batch][mmaK]uint8, b *[mmaK][Batch]uint8) {
	for r := 0; r < Batch; r++ {
		for k := 0; k < Batch; k++ {
			var acc uint32
			for i := 0; i < mmaK; i++ {
				acc += uint32(a[r][i]) * uint32(b[i][k])
			}
			c[r][k] += acc
		}
	}
}

// ExpandedToValue folds raw convolution outputs back into 64-bit limbs:
// value = Σ C[k]·2^(8k). The result has ⌈(len(C)+... )⌉ limbs as needed.
func ExpandedToValue(c []uint32, limbs int) []uint64 {
	out := make([]uint64, limbs)
	for k, v := range c {
		addShifted(out, uint64(v), 8*k)
	}
	return out
}

// addShifted adds v·2^bitOff into the little-endian limb vector (carries
// propagate; overflow past the top limb is dropped).
func addShifted(limbs []uint64, v uint64, bitOff int) {
	idx := bitOff / 64
	sh := uint(bitOff % 64)
	if idx >= len(limbs) {
		return
	}
	lo := v << sh
	var hi uint64
	if sh != 0 {
		hi = v >> (64 - sh)
	}
	var carry uint64
	limbs[idx], carry = add64(limbs[idx], lo)
	for i := idx + 1; i < len(limbs); i++ {
		add := carry
		if i == idx+1 {
			add += hi // hi < 2^63, carry <= 1: no overflow
		}
		if add == 0 {
			break
		}
		limbs[i], carry = add64(limbs[i], add)
	}
}

func add64(a, b uint64) (sum, carry uint64) {
	sum = a + b
	if sum < a {
		carry = 1
	}
	return
}
