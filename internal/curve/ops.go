package curve

import (
	"distmsm/internal/bigint"
	"distmsm/internal/field"
)

// Adder performs the elliptic-curve group operations of the paper —
// PADD (Algorithm 1), PACC (Algorithm 4) and PDBL — using a private set of
// scratch elements so the hot loops allocate nothing. An Adder is not safe
// for concurrent use; give each worker goroutine its own.
type Adder struct {
	c *Curve
	f *field.Field
	// scratch registers; the names mirror Algorithm 1/4.
	u1, u2, s1, s2, p, r, pp, ppp, q, v, t field.Element

	// Counts of the EC operations performed, used by the GPU cost model
	// when the simulator runs functionally.
	CountPADD, CountPACC, CountPDBL uint64
}

// NewAdder returns an Adder for curve c.
func (c *Curve) NewAdder() *Adder {
	f := c.Fp
	a := &Adder{c: c, f: f}
	for _, e := range []*field.Element{
		&a.u1, &a.u2, &a.s1, &a.s2, &a.p, &a.r, &a.pp, &a.ppp, &a.q, &a.v, &a.t,
	} {
		*e = f.NewElement()
	}
	return a
}

// ResetCounts zeroes the operation counters.
func (a *Adder) ResetCounts() { a.CountPADD, a.CountPACC, a.CountPDBL = 0, 0, 0 }

// Acc performs the dedicated point-accumulation operation of Algorithm 4:
// acc += p where p is affine (ZZ = ZZZ = 1), using 10 modular
// multiplications instead of PADD's 14. Doubling and cancellation edge
// cases are detected and handled.
func (a *Adder) Acc(acc *PointXYZZ, pt *PointAffine) {
	a.CountPACC++
	if pt.Inf {
		return
	}
	if acc.IsInf() {
		a.c.SetAffine(acc, pt)
		return
	}
	f := a.f
	f.Mul(a.u2, pt.X, acc.ZZ)  // U2 = X_P * ZZ_acc
	f.Mul(a.s2, pt.Y, acc.ZZZ) // S2 = Y_P * ZZZ_acc
	f.Sub(a.p, a.u2, acc.X)    // P = U2 - X_acc
	f.Sub(a.r, a.s2, acc.Y)    // R = S2 - Y_acc
	if a.p.IsZero() {
		if a.r.IsZero() {
			a.Double(acc)
			return
		}
		acc.SetInf() // acc == -P
		return
	}
	f.Square(a.pp, a.p)      // PP = P²
	f.Mul(a.ppp, a.pp, a.p)  // PPP = PP * P
	f.Mul(a.q, acc.X, a.pp)  // Q = X_acc * PP
	f.Square(a.v, a.r)       // V = R²
	f.Sub(a.v, a.v, a.ppp)   // V -= PPP
	f.Sub(a.v, a.v, a.q)     // V -= Q
	f.Sub(acc.X, a.v, a.q)   // X_acc' = V - Q
	f.Sub(a.t, a.q, acc.X)   // T = Q - X_acc'
	f.Mul(a.t, a.r, a.t)     // Y = R * T
	f.Mul(a.v, acc.Y, a.ppp) // T2 = Y_acc * PPP  (reuse v)
	f.Sub(acc.Y, a.t, a.v)   // Y_acc' = Y - T2
	f.Mul(acc.ZZ, acc.ZZ, a.pp)
	f.Mul(acc.ZZZ, acc.ZZZ, a.ppp)
}

// Add performs the general PADD of Algorithm 1: acc += q, both in XYZZ
// coordinates, using 14 modular multiplications.
func (a *Adder) Add(acc, q *PointXYZZ) {
	a.CountPADD++
	if q.IsInf() {
		return
	}
	if acc.IsInf() {
		acc.Set(q)
		return
	}
	f := a.f
	f.Mul(a.u1, acc.X, q.ZZ)  // U1 = X1 * ZZ2
	f.Mul(a.u2, q.X, acc.ZZ)  // U2 = X2 * ZZ1
	f.Mul(a.s1, acc.Y, q.ZZZ) // S1 = Y1 * ZZZ2
	f.Mul(a.s2, q.Y, acc.ZZZ) // S2 = Y2 * ZZZ1
	f.Sub(a.p, a.u2, a.u1)    // P = U2 - U1
	f.Sub(a.r, a.s2, a.s1)    // R = S2 - S1
	if a.p.IsZero() {
		if a.r.IsZero() {
			a.Double(acc)
			return
		}
		acc.SetInf()
		return
	}
	f.Square(a.pp, a.p)
	f.Mul(a.ppp, a.pp, a.p)
	f.Mul(a.q, a.u1, a.pp)
	f.Square(a.v, a.r)
	f.Sub(a.v, a.v, a.ppp)
	f.Sub(a.v, a.v, a.q)
	f.Sub(acc.X, a.v, a.q)  // X3 = R² - PPP - 2Q
	f.Sub(a.t, a.q, acc.X)  // T = Q - X3
	f.Mul(a.t, a.r, a.t)    // R*T
	f.Mul(a.v, a.s1, a.ppp) // S1*PPP
	f.Sub(acc.Y, a.t, a.v)  // Y3
	f.Mul(acc.ZZ, acc.ZZ, q.ZZ)
	f.Mul(acc.ZZ, acc.ZZ, a.pp)
	f.Mul(acc.ZZZ, acc.ZZZ, q.ZZZ)
	f.Mul(acc.ZZZ, acc.ZZZ, a.ppp)
}

// Double performs PDBL: acc = 2*acc, using the dbl-2008-s-1 XYZZ formulas.
// A point with Y = 0 (order two) correctly doubles to infinity.
func (a *Adder) Double(acc *PointXYZZ) {
	a.CountPDBL++
	if acc.IsInf() {
		return
	}
	f := a.f
	f.Double(a.u1, acc.Y)   // U = 2Y
	f.Square(a.v, a.u1)     // V = U²
	f.Mul(a.u2, a.u1, a.v)  // W = U*V
	f.Mul(a.s1, acc.X, a.v) // S = X*V
	f.Square(a.t, acc.X)    // X²
	f.Double(a.p, a.t)
	f.Add(a.t, a.t, a.p) // M = 3X² ...
	if !a.c.A.IsZero() {
		f.Square(a.r, acc.ZZ)
		f.Mul(a.r, a.r, a.c.A)
		f.Add(a.t, a.t, a.r) // ... + a*ZZ²
	}
	f.Square(a.q, a.t) // M²
	f.Sub(a.q, a.q, a.s1)
	f.Sub(a.q, a.q, a.s1) // X3 = M² - 2S
	f.Sub(a.r, a.s1, a.q) // S - X3
	f.Mul(a.r, a.t, a.r)  // M*(S-X3)
	f.Mul(a.s2, a.u2, acc.Y)
	f.Sub(acc.Y, a.r, a.s2) // Y3 = M*(S-X3) - W*Y
	acc.X.Set(a.q)
	f.Mul(acc.ZZ, acc.ZZ, a.v)
	f.Mul(acc.ZZZ, acc.ZZZ, a.u2)
}

// ScalarMul computes k*P by double-and-add (MSB first). It is the
// reference implementation that the Pippenger variants are tested against.
func (a *Adder) ScalarMul(pt *PointAffine, k bigint.Nat) *PointXYZZ {
	acc := a.c.NewXYZZ()
	for i := k.BitLen() - 1; i >= 0; i-- {
		a.Double(acc)
		if k.Bit(i) == 1 {
			a.Acc(acc, pt)
		}
	}
	return acc
}

// MSMReference computes Σ k_i·P_i naively (one scalar multiplication per
// term). O(N·λ) group operations — use only for small N in tests.
func (c *Curve) MSMReference(points []PointAffine, scalars []bigint.Nat) *PointXYZZ {
	a := c.NewAdder()
	acc := c.NewXYZZ()
	for i := range points {
		t := a.ScalarMul(&points[i], scalars[i])
		a.Add(acc, t)
	}
	return acc
}
