package msm

import (
	"fmt"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// Precomputed holds the window-merging precomputation of §2.3.1: for each
// base point P_i the multiples 2^(j·s)·P_i are stored per window, so that
// "elliptic curve points from two different windows can be directly
// summed using a single PADD operation". The whole MSM then collapses to
// a single window's bucket sum — no window-reduce doublings at all — at
// the cost of ⌈λ/s⌉× point storage. This is the memory/compute trade the
// ZPrize winners (and Yrrid) use; DistMSM adopts it for fixed bases.
type Precomputed struct {
	c      *curve.Curve
	s      int
	signed bool
	// tables[j][i] = 2^(j·s)·P_i in affine form.
	tables [][]curve.PointAffine
}

// Precompute builds the per-window tables for a fixed base-point vector.
// Each column is produced with s doublings and normalised back to affine
// with batch inversions.
func Precompute(c *curve.Curve, points []curve.PointAffine, cfg Config) (*Precomputed, error) {
	cfg = cfg.resolve(len(points))
	s := cfg.WindowSize
	if s < 1 || s > 31 {
		return nil, fmt.Errorf("msm: precompute window %d out of range", s)
	}
	nWin := NumWindows(c.ScalarBits, s)
	if cfg.Signed {
		nWin++ // carry window
	}
	p := &Precomputed{c: c, s: s, signed: cfg.Signed, tables: make([][]curve.PointAffine, nWin)}
	p.tables[0] = points
	a := c.NewAdder()
	prev := points
	for j := 1; j < nWin; j++ {
		col := make([]*curve.PointXYZZ, len(points))
		for i := range points {
			acc := c.NewXYZZ()
			c.SetAffine(acc, &prev[i])
			for b := 0; b < s; b++ {
				a.Double(acc)
			}
			col[i] = acc
		}
		p.tables[j] = c.BatchToAffine(col)
		prev = p.tables[j]
	}
	return p, nil
}

// WindowSize returns the precomputation's window size s.
func (p *Precomputed) WindowSize() int { return p.s }

// Tables returns the number of stored point tables (the storage factor).
func (p *Precomputed) Tables() int { return len(p.tables) }

// N returns the base-vector length the tables were built for.
func (p *Precomputed) N() int { return len(p.tables[0]) }

// Signed reports whether the tables were sized for signed-digit recoding.
func (p *Precomputed) Signed() bool { return p.signed }

// Table returns window j's point column (table[j][i] = 2^(j·s)·P_i). The
// slice is shared, not copied — callers must treat it as read-only.
func (p *Precomputed) Table(j int) []curve.PointAffine { return p.tables[j] }

// Flatten concatenates the window tables into one point vector with
// flat[j·n+i] = 2^(j·s)·P_i — the layout of the merged single-window
// evaluation, where every window's digits scatter into one shared bucket
// array. Only the affine headers are copied; the field-element storage
// is shared with the tables.
func (p *Precomputed) Flatten() []curve.PointAffine {
	n := p.N()
	flat := make([]curve.PointAffine, len(p.tables)*n)
	for j, col := range p.tables {
		copy(flat[j*n:(j+1)*n], col)
	}
	return flat
}

// MemoryBytes estimates the table storage: two base-field coordinates per
// stored point. Column 0 aliases the caller's base vector but is counted
// anyway — a conservative figure for admission budgeting.
func (p *Precomputed) MemoryBytes() int64 {
	limbBytes := int64((p.c.Fp.Bits()+63)/64) * 8
	return int64(len(p.tables)) * int64(p.N()) * 2 * limbBytes
}

// MSM computes Σ scalars[i]·P_i using the precomputed tables: all windows
// scatter into one shared bucket array, followed by a single bucket
// reduction and no doublings.
func (p *Precomputed) MSM(scalars []bigint.Nat) (*curve.PointXYZZ, error) {
	c := p.c
	if len(scalars) != len(p.tables[0]) {
		return nil, fmt.Errorf("msm: %d scalars for %d precomputed points", len(scalars), len(p.tables[0]))
	}
	nBuckets := 1 << p.s
	if p.signed {
		nBuckets = 1<<(p.s-1) + 1
	}
	buckets := make([]*curve.PointXYZZ, nBuckets)
	a := c.NewAdder()
	negY := c.Fp.NewElement()

	acc := func(d int32, pt *curve.PointAffine) {
		if d == 0 || pt.Inf {
			return
		}
		use := pt
		var neg curve.PointAffine
		if d < 0 {
			c.Fp.Neg(negY, pt.Y)
			neg = curve.PointAffine{X: pt.X, Y: negY}
			use = &neg
			d = -d
		}
		if buckets[d] == nil {
			buckets[d] = c.NewXYZZ()
		}
		a.Acc(buckets[d], use)
	}

	for i, k := range scalars {
		if p.signed {
			for j, d := range SignedDigits(k, c.ScalarBits, p.s) {
				if j >= len(p.tables) {
					return nil, fmt.Errorf("msm: scalar %d overflows precomputed windows", i)
				}
				acc(d, &p.tables[j][i])
			}
		} else {
			for j, d := range Digits(k, c.ScalarBits, p.s) {
				acc(int32(d), &p.tables[j][i])
			}
		}
	}

	running := c.NewXYZZ()
	total := c.NewXYZZ()
	for b := nBuckets - 1; b >= 1; b-- {
		if buckets[b] != nil {
			a.Add(running, buckets[b])
		}
		a.Add(total, running)
	}
	return total, nil
}
