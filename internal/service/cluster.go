package service

import (
	"context"
	"encoding/hex"
	"errors"
	"net/http"
	"time"

	"distmsm/internal/cluster"
)

// This file is the service's worker-node face: the endpoints and
// methods that let a provd instance serve as one node of a
// cluster.Coordinator's fleet, and the in-process backend the
// coordinator degrades to when every remote node is down.
//
//	POST /v1/cluster/dispatch   coordinator → worker: one proof job
//	  request   cluster.DispatchRequest
//	  response  200 {"job_id", "proof"} on success
//	            200 {"job_id", "error"} on a terminal job error
//	            429 admission rejected (Retry-After, seconds)
//	            404 unknown circuit    503 shutting down
//	            400 malformed          499 coordinator abandoned the job
//
// Cancelling the dispatch request cancels the job: when the coordinator
// hedges a straggling job and another node wins, or a lost lease
// re-dispatches this node's jobs, the abandoned HTTP request's context
// dies and the worker stops burning GPUs on a result nobody wants.
//
// ProveLocal and VerifyProof structurally satisfy cluster.LocalBackend,
// so a *Service plugs into cluster.Config.Local without this package
// and internal/cluster importing each other cyclically (cluster stays
// free of a service dependency; service imports cluster only for the
// wire types).

// ProveLocal proves (circuit, seed) through the service's own queue and
// returns the marshalled proof. The job deadline is ctx's deadline when
// it has one (the coordinator's end-to-end job deadline), the service
// default otherwise. It is the coordinator's degrade-to-local backend
// and the in-process flavour of the dispatch endpoint below.
func (s *Service) ProveLocal(ctx context.Context, circuitName string, seed int64) ([]byte, error) {
	req := Request{Circuit: circuitName, Seed: seed}
	if dl, ok := ctx.Deadline(); ok {
		req.Timeout = time.Until(dl)
	}
	job, err := s.Submit(req)
	if err != nil {
		return nil, err
	}
	proof, err := job.Wait(ctx)
	if err != nil {
		job.Cancel() // caller gave up or the job failed: either way, stop it
		return nil, err
	}
	return s.eng.MarshalProof(proof), nil
}

// VerifyProof checks a marshalled proof of (circuit, seed) against the
// circuit's verifying key, regenerating the witness's public inputs
// from the seed server-side exactly like proving does. A proof that
// fails to decode reports (false, nil) rather than an error: from the
// caller's seat — the coordinator deciding whether a remote node
// returned garbage — an undecodable proof and a failed pairing check
// are the same verdict.
func (s *Service) VerifyProof(circuitName string, seed int64, proofBytes []byte) (bool, error) {
	s.mu.Lock()
	c := s.circuits[circuitName]
	s.mu.Unlock()
	if c == nil {
		return false, errors.New("service: unknown circuit: " + circuitName)
	}
	proof, err := s.eng.UnmarshalProof(proofBytes)
	if err != nil {
		return false, nil
	}
	w, err := c.witness(seed)
	if err != nil {
		return false, err
	}
	return s.eng.Verify(c.vk, proof, w[1:1+c.cs.NPublic])
}

// handleClusterDispatch serves one coordinator-dispatched job.
func (s *Service) handleClusterDispatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := cluster.ParseDispatchRequest(readBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(Request{Circuit: req.Circuit, Seed: req.Seed, Timeout: req.Timeout()})
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	proof, err := job.Wait(r.Context())
	if err != nil {
		job.Cancel()
		if r.Context().Err() != nil {
			// The coordinator abandoned the dispatch (hedge lost, lease
			// re-dispatch, client gone): the job is cancelled above and the
			// status code is for the access log only.
			http.Error(w, err.Error(), 499)
			return
		}
		// A terminal job error travels as a dispatch-response error so the
		// coordinator can tell "this node failed the job" from "this node
		// is unreachable".
		writeJSON(w, cluster.DispatchResponse{JobID: req.JobID, Error: err.Error()})
		return
	}
	writeJSON(w, cluster.DispatchResponse{
		JobID: req.JobID,
		Proof: hex.EncodeToString(s.eng.MarshalProof(proof)),
	})
}
