package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 6; i++ {
		tr.Record(Span{Name: "s", Window: int32(i), Labeled: true, Start: base, Dur: time.Millisecond})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := int32(i + 2); s.Window != want {
			t.Fatalf("span %d window = %d, want %d (oldest spans must be dropped in order)", i, s.Window, want)
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be an empty no-op")
	}
}

// TestRecordAllocFree pins the tentpole's hot-path contract: recording
// into an enabled tracer allocates nothing (the ring is pre-allocated),
// and a disabled (nil) tracer costs only the nil check.
func TestRecordAllocFree(t *testing.T) {
	start := time.Now()
	enabled := NewTracer(64)
	if allocs := testing.AllocsPerRun(100, func() {
		enabled.Record(Span{Name: "shard", Cat: "msm", Track: TrackGPU(3),
			Start: start, Dur: time.Millisecond, Labeled: true, Window: 7, Attempt: 2})
	}); allocs != 0 {
		t.Errorf("enabled Record allocates %.1f objects/op, want 0", allocs)
	}
	var disabled *Tracer
	if allocs := testing.AllocsPerRun(100, func() {
		disabled.Record(Span{Name: "shard", Cat: "msm", Track: TrackGPU(3),
			Start: start, Dur: time.Millisecond, Labeled: true, Window: 7, Attempt: 2})
	}); allocs != 0 {
		t.Errorf("disabled Record allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMetricsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "", "")
	g := r.Gauge("t_gauge", "", "")
	h := r.Histogram("t_seconds", "", "", nil)
	if allocs := testing.AllocsPerRun(100, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { g.Set(3.5) }); allocs != 0 {
		t.Errorf("Gauge.Set allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(0.42) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f objects/op, want 0", allocs)
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Record(Span{Name: "scatter", Cat: "msm", Track: TrackHost, Start: base, Dur: 2 * time.Millisecond})
	tr.Record(Span{Name: "shard", Cat: "msm", Track: TrackGPU(0), Start: base.Add(time.Millisecond),
		Dur: 5 * time.Millisecond, Labeled: true, Window: 3, BucketLo: 0, BucketHi: 128, Attempt: 1, Speculative: true})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawShard, sawScatter, sawThreadName bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			sawThreadName = true
		case ev.Name == "shard":
			sawShard = true
			if ev.TID != int32(TrackGPU(0)) {
				t.Errorf("shard tid = %d, want %d", ev.TID, TrackGPU(0))
			}
			if ev.Args["window"] != float64(3) || ev.Args["attempt"] != float64(1) {
				t.Errorf("shard args = %v, want window 3 attempt 1", ev.Args)
			}
			if ev.Args["speculative"] != true {
				t.Errorf("shard args missing speculative flag: %v", ev.Args)
			}
			if ev.TS != 1000 { // 1ms after the earliest span, in µs
				t.Errorf("shard ts = %v µs, want 1000", ev.TS)
			}
		case ev.Name == "scatter":
			sawScatter = true
			if ev.TS != 0 || ev.Dur != 2000 {
				t.Errorf("scatter ts/dur = %v/%v, want 0/2000", ev.TS, ev.Dur)
			}
			if ev.Args != nil {
				t.Errorf("unlabeled span exported args: %v", ev.Args)
			}
		}
	}
	if !sawShard || !sawScatter || !sawThreadName {
		t.Fatalf("missing events: shard=%v scatter=%v thread_name=%v", sawShard, sawScatter, sawThreadName)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs by outcome", `outcome="completed"`).Add(3)
	r.Counter("jobs_total", "jobs by outcome", `outcome="failed"`).Inc()
	r.Gauge("queue_depth", "waiting jobs", "").Set(2)
	r.GaugeFunc("breaker_state", "per-GPU breaker", `gpu="0"`, func() float64 { return 1 })
	h := r.Histogram("job_seconds", "job latency", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	out := r.WritePrometheus()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{outcome="completed"} 3`,
		`jobs_total{outcome="failed"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		`breaker_state{gpu="0"} 1`,
		"# TYPE job_seconds histogram",
		`job_seconds_bucket{le="0.1"} 1`,
		`job_seconds_bucket{le="1"} 2`,
		`job_seconds_bucket{le="+Inf"} 3`,
		"job_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "job_seconds_sum 5.55") {
		t.Errorf("exposition sum wrong:\n%s", out)
	}

	// Idempotent registration returns the same handle.
	if r.Counter("jobs_total", "", `outcome="completed"`).Value() != 3 {
		t.Error("re-registration did not return the existing counter")
	}

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// counts per bucket: ≤1: 2 (0.5, 1), ≤2: 1 (1.5), ≤4: 1 (3), +Inf: 1
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Errorf("Sum = %v, want 106", h.Sum())
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context must carry no tracer")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) must return ctx unchanged")
	}
	tr := NewTracer(1)
	if FromContext(NewContext(ctx, tr)) != tr {
		t.Fatal("tracer lost in context round-trip")
	}
}

// TestPhaseLanes pins the lane algebra of the pipelined prover: phase
// lanes are negative tids that never collide with the host lane or any
// GPU lane, and TrackName renders all three families.
func TestPhaseLanes(t *testing.T) {
	seen := map[Track]bool{TrackHost: true}
	for g := 0; g < 64; g++ {
		seen[TrackGPU(g)] = true
	}
	for i := 0; i < 16; i++ {
		lane := TrackPhase(i)
		if seen[lane] {
			t.Fatalf("TrackPhase(%d) = %d collides with an existing lane", i, lane)
		}
		seen[lane] = true
	}
	for _, tc := range []struct {
		track Track
		want  string
	}{
		{TrackHost, "host"},
		{TrackGPU(0), "gpu0"},
		{TrackGPU(7), "gpu7"},
		{TrackPhase(0), "phase0"},
		{TrackPhase(5), "phase5"},
	} {
		if got := TrackName(tc.track); got != tc.want {
			t.Errorf("TrackName(%d) = %q, want %q", tc.track, got, tc.want)
		}
	}

	// The Chrome export names phase lanes like the others.
	tr := NewTracer(4)
	tr.Record(Span{Name: "quotient", Cat: "groth16", Track: TrackPhase(0), Start: time.Now(), Dur: time.Millisecond})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phase0"`) {
		t.Fatalf("Chrome trace missing phase lane name: %s", buf.String())
	}
}
