package pairing

import (
	"fmt"
	"math/big"

	"distmsm/internal/curve"
	"distmsm/internal/field"
)

// Pairing is a bilinear map e: G1 × G2 → GT over BN254, realised as the
// Tate pairing: a Miller loop f_{r,P}(ψ(Q)) over the group order r with
// affine line functions on E(Fp), followed by the final exponentiation
// to the power (p¹² − 1)/r. Bilinearity and non-degeneracy are verified
// by the package tests.
type Pairing struct {
	Curve *curve.Curve // BN254 G1
	Fp    *field.Field
	Fr    *field.Field
	T     *Tower
	G2    *G2

	// finalExp = (p¹² − 1)/r (reference path; the structured easy/hard
	// split in finalexp.go is the default).
	finalExp *big.Int
	hardPart *big.Int
	gammaP2  *E2
}

// NewBN254 constructs the pairing engine.
func NewBN254() (*Pairing, error) {
	c, err := curve.ByName("BN254")
	if err != nil {
		return nil, err
	}
	t := NewTower(c.Fp)
	e := &Pairing{Curve: c, Fp: c.Fp, Fr: c.ScalarField, T: t, G2: NewG2(t)}
	if !e.G2.IsOnCurve(&e.G2.Gen) {
		return nil, fmt.Errorf("pairing: embedded G2 generator is not on the twist")
	}
	p := c.Fp.Modulus
	p12 := new(big.Int).Exp(p, big.NewInt(12), nil)
	p12.Sub(p12, big.NewInt(1))
	e.finalExp = p12.Div(p12, c.ScalarField.Modulus)
	if new(big.Int).Mul(e.finalExp, c.ScalarField.Modulus).Cmp(new(big.Int).Sub(new(big.Int).Exp(p, big.NewInt(12), nil), big.NewInt(1))) != 0 {
		return nil, fmt.Errorf("pairing: r does not divide p^12 - 1 (wrong constants)")
	}
	// Fill the Frobenius/hard-part caches here so a Pairing shared by
	// concurrent verifiers (the service runs one per worker) never
	// mutates after construction.
	e.frobP2Gamma()
	e.hardExp()
	return e, nil
}

// untwist maps a twist point into E(Fp12): (x', y') → (x'·w², y'·w³).
// In the tower, w² = v and w³ = v·w, so
// x = x'·v  (an Fp6 coefficient of D0)  and  y = (x'-part in D1 via v·w).
func (e *Pairing) untwist(q *G2Affine) (x, y E12) {
	t := e.T
	// x'·w² = x'·v: place x' in the C1 slot of D0.
	x = t.E12Zero()
	t.E2Set(&x.D0.C1, &q.X)
	// y'·w³ = y'·v·w: place y' in the C1 slot of D1.
	y = t.E12Zero()
	t.E2Set(&y.D1.C1, &q.Y)
	return x, y
}

// Pair computes e(P, Q). Either argument at infinity yields 1.
func (e *Pairing) Pair(p *curve.PointAffine, q *G2Affine) E12 {
	t := e.T
	if p.Inf || q.Inf {
		return t.E12One()
	}
	f := e.MillerLoop(p, q)
	return e.FinalExponentiation(&f)
}

// MillerLoop computes f_{r,P}(ψ(Q)) without the final exponentiation.
func (e *Pairing) MillerLoop(p *curve.PointAffine, q *G2Affine) E12 {
	t := e.T
	fp := e.Fp
	xQ, yQ := e.untwist(q)

	f := t.E12One()
	// T = P, affine coordinates over Fp.
	xT, yT := p.X.Clone(), p.Y.Clone()
	inf := false

	r := e.Fr.Modulus
	lam, tmp, num, den := fp.NewElement(), fp.NewElement(), fp.NewElement(), fp.NewElement()
	line := t.E12Zero()

	evalLine := func() {
		// l(Q) = λ·xQ − yQ + (yT − λ·xT)
		t.E12ScaleFp(&line, &xQ, lam)
		t.E12Sub(&line, &line, &yQ)
		fp.Mul(tmp, lam, xT)
		fp.Sub(tmp, yT, tmp)
		c := t.E12FromFp(tmp)
		t.E12Add(&line, &line, &c)
		t.E12Mul(&f, &f, &line)
	}
	vertical := func(x field.Element) {
		// v(Q) = xQ − x
		c := t.E12FromFp(x)
		t.E12Sub(&line, &xQ, &c)
		t.E12Mul(&f, &f, &line)
	}

	for i := r.BitLen() - 2; i >= 0; i-- {
		// f = f²·l_{T,T}(Q); T = 2T
		t.E12Square(&f, &f)
		if !inf {
			if yT.IsZero() {
				vertical(xT)
				inf = true
			} else {
				// λ = 3x²/(2y)
				fp.Square(num, xT)
				fp.Double(tmp, num)
				fp.Add(num, num, tmp)
				fp.Double(den, yT)
				fp.Inv(den, den)
				fp.Mul(lam, num, den)
				evalLine()
				// T = 2T (affine)
				fp.Square(tmp, lam)
				fp.Sub(tmp, tmp, xT)
				fp.Sub(tmp, tmp, xT) // x3
				fp.Sub(num, xT, tmp)
				fp.Mul(num, lam, num)
				fp.Sub(yT, num, yT)
				xT.Set(tmp)
			}
		}
		if r.Bit(i) == 1 && !inf {
			// f = f·l_{T,P}(Q); T = T + P
			fp.Sub(den, p.X, xT)
			if den.IsZero() {
				fp.Sub(num, p.Y, yT)
				if num.IsZero() {
					// T == P: tangent line (handled above pattern)
					fp.Square(num, xT)
					fp.Double(tmp, num)
					fp.Add(num, num, tmp)
					fp.Double(den, yT)
					fp.Inv(den, den)
					fp.Mul(lam, num, den)
					evalLine()
					fp.Square(tmp, lam)
					fp.Sub(tmp, tmp, xT)
					fp.Sub(tmp, tmp, p.X)
					fp.Sub(num, xT, tmp)
					fp.Mul(num, lam, num)
					fp.Sub(yT, num, yT)
					xT.Set(tmp)
				} else {
					// T == −P: vertical line, T → infinity
					vertical(xT)
					inf = true
				}
			} else {
				fp.Inv(den, den)
				fp.Sub(num, p.Y, yT)
				fp.Mul(lam, num, den)
				evalLine()
				fp.Square(tmp, lam)
				fp.Sub(tmp, tmp, xT)
				fp.Sub(tmp, tmp, p.X)
				fp.Sub(num, xT, tmp)
				fp.Mul(num, lam, num)
				fp.Sub(yT, num, yT)
				xT.Set(tmp)
			}
		}
	}
	return f
}

// PairingProduct computes Π e(P_i, Q_i) with one shared final
// exponentiation — the form Groth16 verification uses.
func (e *Pairing) PairingProduct(ps []curve.PointAffine, qs []G2Affine) (E12, error) {
	if len(ps) != len(qs) {
		return E12{}, fmt.Errorf("pairing: %d G1 points but %d G2 points", len(ps), len(qs))
	}
	t := e.T
	acc := t.E12One()
	for i := range ps {
		if ps[i].Inf || qs[i].Inf {
			continue
		}
		f := e.MillerLoop(&ps[i], &qs[i])
		t.E12Mul(&acc, &acc, &f)
	}
	return e.FinalExponentiation(&acc), nil
}

// GT returns the multiplicative identity of the target group.
func (e *Pairing) GT() E12 { return e.T.E12One() }

// ReferenceFinalExp exposes the plain (p¹²−1)/r exponent for cross-checks.
func (e *Pairing) ReferenceFinalExp() *big.Int { return new(big.Int).Set(e.finalExp) }
