package msm

import (
	"math/big"
	"testing"
	"testing/quick"

	"distmsm/internal/bigint"
)

// Property-based tests (testing/quick) on the scalar-recoding and MSM
// invariants.

func TestQuickDigitsReconstruct(t *testing.T) {
	prop := func(a, b, c, d uint64, sRaw uint8) bool {
		s := int(sRaw%22) + 2 // s in [2, 23]
		k := bigint.Nat{a, b, c, d}
		v := new(big.Int)
		for j, dig := range Digits(k, 256, s) {
			v.Add(v, new(big.Int).Lsh(big.NewInt(int64(dig)), uint(j*s)))
		}
		return v.Cmp(k.ToBig()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignedDigitsReconstruct(t *testing.T) {
	prop := func(a, b, c, d uint64, sRaw uint8) bool {
		s := int(sRaw%20) + 3 // s in [3, 22]
		k := bigint.Nat{a, b, c, d}
		v := new(big.Int)
		half := int64(1) << (s - 1)
		for j, dig := range SignedDigits(k, 256, s) {
			if int64(dig) > half || int64(dig) < -half {
				return false
			}
			term := new(big.Int).Lsh(big.NewInt(int64(dig)), uint(j*s))
			v.Add(v, term)
		}
		return v.Cmp(k.ToBig()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MSM linearity: MSM(k ∪ {0}) == MSM(k), and scaling one scalar by two
// equals adding the same point twice.
func TestQuickMSMSmall(t *testing.T) {
	c := mustCurve(t, "BN254")
	points := c.SamplePoints(6, 7)
	prop := func(k1, k2, k3, k4, k5, k6 uint32) bool {
		scalars := make([]bigint.Nat, 6)
		for i, v := range []uint32{k1, k2, k3, k4, k5, k6} {
			scalars[i] = bigint.New(4)
			scalars[i].SetUint64(uint64(v))
		}
		got, err := MSM(c, points, scalars, Config{WindowSize: 7, Signed: true, Workers: 1})
		if err != nil {
			return false
		}
		want := c.MSMReference(points, scalars)
		return c.EqualXYZZ(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGLVDecompose(t *testing.T) {
	c := mustCurve(t, "BN254")
	g, err := NewGLV(c)
	if err != nil {
		t.Fatal(err)
	}
	r := c.ScalarField.Modulus
	prop := func(a, b, cc, d uint64) bool {
		k := new(big.Int).SetUint64(a)
		for _, x := range []uint64{b, cc, d} {
			k.Lsh(k, 64)
			k.Add(k, new(big.Int).SetUint64(x))
		}
		k.Mod(k, r)
		k1, k2 := g.Decompose(k)
		chk := new(big.Int).Mul(k2, g.lambda)
		chk.Add(chk, k1).Mod(chk, r)
		if chk.Cmp(k) != 0 {
			return false
		}
		return k1.BitLen() <= g.halfBits+2 && k2.BitLen() <= g.halfBits+2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
