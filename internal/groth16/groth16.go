// Package groth16 implements the Groth16 zkSNARK over BN254 from the
// substrates in this repository: R1CS → QAP via the NTT, proving-key
// MSMs over G1 (the workload DistMSM accelerates) and G2, and pairing-
// based verification. It is the end-to-end pipeline of Table 4; the
// prover accepts a pluggable G1 MSM so the simulated multi-GPU DistMSM
// can be swapped in for the CPU Pippenger.
package groth16

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/msm"
	"distmsm/internal/ntt"
	"distmsm/internal/pairing"
	"distmsm/internal/r1cs"
	"distmsm/internal/telemetry"
)

// ProvingKey holds the per-variable evaluated setup elements.
type ProvingKey struct {
	// G1 elements.
	Alpha, Beta, Delta curve.PointAffine
	A                  []curve.PointAffine // u_i(τ)·G1 per variable
	B1                 []curve.PointAffine // v_i(τ)·G1 per variable
	K                  []curve.PointAffine // ((βu_i+αv_i+w_i)/δ)·G1, private vars
	Z                  []curve.PointAffine // (τ^j·t(τ)/δ)·G1, j = 0..d-2
	// G2 elements.
	Beta2, Delta2 pairing.G2Affine
	B2            []pairing.G2Affine // v_i(τ)·G2 per variable

	Domain int // QAP domain size d
}

// VerifyingKey is the succinct verification key.
type VerifyingKey struct {
	Alpha                 curve.PointAffine
	Beta2, Gamma2, Delta2 pairing.G2Affine
	// IC[i] = ((βu_i+αv_i+w_i)/γ)·G1 for the constant one and each
	// public input.
	IC []curve.PointAffine
}

// Proof is the three-element Groth16 proof (~256 bytes over BN254).
type Proof struct {
	A curve.PointAffine
	B pairing.G2Affine
	C curve.PointAffine
}

// MSMFunc computes a G1 multi-scalar multiplication; the prover calls it
// for every G1 MSM so callers can route the work through DistMSM.
type MSMFunc func(points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error)

// MSMPhase identifies which proving-key column a G1 MSM runs over, so a
// phase-aware backend (ProveContextWith) can swap in per-column
// precomputed fixed-base tables.
type MSMPhase int

// The prover's G1 MSM phases, in execution order.
const (
	PhaseA MSMPhase = iota
	PhaseB1
	PhaseK
	PhaseZ
)

func (p MSMPhase) String() string {
	switch p {
	case PhaseA:
		return "A"
	case PhaseB1:
		return "B1"
	case PhaseK:
		return "K"
	case PhaseZ:
		return "Z"
	}
	return "?"
}

// PhasedMSMFunc routes one G1 MSM, told which proving-key column the
// point vector is. The scalars are witness-derived; the points are
// always exactly the registered key column for the phase.
type PhasedMSMFunc func(phase MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error)

// PhasedMSMContextFunc is the ctx-aware form of PhasedMSMFunc. The
// phase-DAG prover passes its per-proof group context, so the first
// failing phase cancels the other phases' MSMs mid-flight instead of
// merely before they start.
type PhasedMSMContextFunc func(ctx context.Context, phase MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error)

// G2MSMFunc routes the prover's single G2 MSM (over pk.B2).
//
// Deprecated: implement G2MSMContextFunc instead — a G2MSMFunc cannot
// observe cancellation, so a cancelled job runs the full pk.B2 MSM to
// completion on the prover goroutine, and it has no way to report an
// error.
type G2MSMFunc func(points []pairing.G2Affine, scalars []*big.Int) pairing.G2Affine

// G2MSMContextFunc routes the prover's single G2 MSM (over pk.B2),
// honouring ctx and returning errors instead of swallowing them.
type G2MSMContextFunc func(ctx context.Context, points []pairing.G2Affine, scalars []*big.Int) (pairing.G2Affine, error)

// WrapG2MSM adapts the old ctx-less G2MSMFunc signature to the ctx-aware
// form (the wrapped func still cannot observe cancellation mid-MSM; the
// context is only checked before it runs).
func WrapG2MSM(fn G2MSMFunc) G2MSMContextFunc {
	return func(ctx context.Context, points []pairing.G2Affine, scalars []*big.Int) (pairing.G2Affine, error) {
		if err := ctx.Err(); err != nil {
			return pairing.G2Affine{Inf: true}, err
		}
		return fn(points, scalars), nil
	}
}

// Provers bundles the MSM backends of one proof. Any field may be nil:
// G1 falls back to the CPU Pippenger, G2 to the built-in cancellable
// windowed G2 MSM. The ctx-aware forms (G1Ctx, G2Ctx) win over the
// ctx-less ones when both are set.
type Provers struct {
	G1    PhasedMSMFunc
	G1Ctx PhasedMSMContextFunc
	// G2 routes the prover's single G2 MSM.
	//
	// Deprecated: set G2Ctx so the MSM can be cancelled and can fail.
	G2    G2MSMFunc
	G2Ctx G2MSMContextFunc
	// Pipeline, when non-nil, makes ProveContextWith execute the
	// prover's phase DAG instead of its phase list: the quotient (on
	// parallel coset NTTs) overlaps the four witness-only MSM phases,
	// and msm-Z starts the moment h lands. Proofs are byte-identical to
	// the sequential schedule.
	Pipeline *PipelineOptions
}

// PipelineOptions configure the phase-DAG pipelined prover.
type PipelineOptions struct {
	// NTTWorkers bounds the quotient's parallel coset-NTT fan-out
	// (0 selects GOMAXPROCS) — the host-parallel stand-in for the
	// multi-GPU four-step NTT the paper names as the next target
	// (§5.1.1, internal/ntt/fourstep.go).
	NTTWorkers int
	// OnPhase, when set, receives every completed phase's name and wall
	// duration. Phases complete concurrently, so OnPhase must be safe
	// for concurrent use.
	OnPhase func(name string, d time.Duration)
}

// g1msm resolves the G1 backend in ctx-aware form.
func (e *Engine) g1msm(pr Provers) PhasedMSMContextFunc {
	switch {
	case pr.G1Ctx != nil:
		return pr.G1Ctx
	case pr.G1 != nil:
		return func(ctx context.Context, phase MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return pr.G1(phase, points, scalars)
		}
	}
	return func(ctx context.Context, _ MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return msm.MSM(e.P.Curve, points, scalars, msm.Config{Signed: true})
	}
}

// g2msm resolves the G2 backend in ctx-aware form.
func (e *Engine) g2msm(pr Provers) G2MSMContextFunc {
	switch {
	case pr.G2Ctx != nil:
		return pr.G2Ctx
	case pr.G2 != nil:
		return WrapG2MSM(pr.G2)
	}
	return func(ctx context.Context, points []pairing.G2Affine, scalars []*big.Int) (pairing.G2Affine, error) {
		return e.P.G2.MSMContext(ctx, points, scalars)
	}
}

// Engine bundles the pairing context used by setup/prove/verify.
type Engine struct {
	P  *pairing.Pairing
	Fr *field.Field
}

// NewEngine builds the BN254 Groth16 engine.
func NewEngine() (*Engine, error) {
	p, err := pairing.NewBN254()
	if err != nil {
		return nil, err
	}
	return &Engine{P: p, Fr: p.Fr}, nil
}

// qapEvalsAtTau evaluates all QAP basis polynomials at τ using the
// Lagrange basis on the size-d subgroup: L_q(τ) = ω^q·(τ^d−1)/(d·(τ−ω^q)).
func (e *Engine) qapEvalsAtTau(cs *r1cs.System, d int, tau field.Element) (u, v, w []field.Element, err error) {
	fr := e.Fr
	omega, err := fr.RootOfUnity(log2(d))
	if err != nil {
		return nil, nil, nil, err
	}
	// Compute L_q(τ) for all q with one batch inversion.
	tauD := fr.NewElement()
	fr.Exp(tauD, tau, big.NewInt(int64(d)))
	zH := fr.NewElement()
	fr.Sub(zH, tauD, fr.One()) // τ^d − 1
	dEl := fr.FromUint64(uint64(d))

	den := make([]field.Element, d)
	wq := fr.One()
	tmp := fr.NewElement()
	omegaPow := make([]field.Element, d)
	for q := 0; q < d; q++ {
		omegaPow[q] = wq.Clone()
		den[q] = fr.NewElement()
		fr.Sub(den[q], tau, wq)
		fr.Mul(tmp, den[q], dEl)
		den[q].Set(tmp)
		fr.Mul(tmp, wq, omega)
		wq.Set(tmp)
	}
	fr.BatchInvert(den)
	lag := make([]field.Element, d)
	for q := 0; q < d; q++ {
		lag[q] = fr.NewElement()
		fr.Mul(lag[q], den[q], zH)
		fr.Mul(tmp, lag[q], omegaPow[q])
		lag[q].Set(tmp)
	}

	u = zeroVec(fr, cs.NVars)
	v = zeroVec(fr, cs.NVars)
	w = zeroVec(fr, cs.NVars)
	for q, con := range cs.Constraints {
		for _, t := range con.A {
			fr.Mul(tmp, t.Coeff, lag[q])
			fr.Add(u[t.Var], u[t.Var], tmp)
		}
		for _, t := range con.B {
			fr.Mul(tmp, t.Coeff, lag[q])
			fr.Add(v[t.Var], v[t.Var], tmp)
		}
		for _, t := range con.C {
			fr.Mul(tmp, t.Coeff, lag[q])
			fr.Add(w[t.Var], w[t.Var], tmp)
		}
	}
	return u, v, w, nil
}

func zeroVec(f *field.Field, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = f.NewElement()
	}
	return out
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// Setup runs the (simulated) trusted setup for the constraint system,
// sampling the toxic waste from rnd and discarding it.
//
// Deprecated: long-running services should use SetupContext so a setup
// for a large circuit can be cancelled or deadlined.
func (e *Engine) Setup(cs *r1cs.System, rnd *rand.Rand) (*ProvingKey, *VerifyingKey, error) {
	return e.SetupContext(context.Background(), cs, rnd)
}

// setupCancelStride is how many per-variable key elements SetupContext
// computes between context checks. Each element is several hundred curve
// operations, so a stride of 64 bounds the cancellation latency to a few
// milliseconds without measurable overhead.
const setupCancelStride = 64

// SetupContext runs the trusted setup, honouring ctx between the QAP
// evaluation, the per-variable key-element loops (checked every
// setupCancelStride variables) and the Z-power loop. A cancelled setup
// returns ctx.Err() and the partial keys are discarded.
func (e *Engine) SetupContext(ctx context.Context, cs *r1cs.System, rnd *rand.Rand) (*ProvingKey, *VerifyingKey, error) {
	fr := e.Fr
	d := 1
	for d < len(cs.Constraints)+1 {
		d <<= 1
	}
	if log2(d) > fr.TwoAdicity() {
		return nil, nil, fmt.Errorf("groth16: circuit too large for the field's 2-adicity")
	}

	tau, alpha, beta, gamma, delta := fr.Rand(rnd), fr.Rand(rnd), fr.Rand(rnd), fr.Rand(rnd), fr.Rand(rnd)
	for _, x := range []field.Element{tau, gamma, delta} {
		if x.IsZero() {
			return nil, nil, fmt.Errorf("groth16: degenerate toxic waste")
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	u, v, w, err := e.qapEvalsAtTau(cs, d, tau)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	gammaInv, deltaInv := fr.NewElement(), fr.NewElement()
	fr.Inv(gammaInv, gamma)
	fr.Inv(deltaInv, delta)

	g1 := &e.P.Curve.Gen
	g2 := &e.P.G2.Gen
	// Fixed-base comb on the G1 generator: the setup performs ~4 G1
	// multiplications per variable, and the comb cuts each from λ
	// doublings+additions to λ/8 of either.
	comb := e.P.Curve.NewComb(g1, 8)
	mulG1 := func(k field.Element) curve.PointAffine {
		return e.P.Curve.ToAffine(comb.Mul(frNat(fr, k)))
	}
	mulG2 := func(k field.Element) pairing.G2Affine {
		return e.P.G2.ScalarMulFr(g2, fr, k)
	}

	pk := &ProvingKey{Domain: d}
	vk := &VerifyingKey{}
	pk.Alpha = mulG1(alpha)
	pk.Beta = mulG1(beta)
	pk.Delta = mulG1(delta)
	pk.Beta2 = mulG2(beta)
	pk.Delta2 = mulG2(delta)
	vk.Alpha = pk.Alpha
	vk.Beta2 = pk.Beta2
	vk.Gamma2 = mulG2(gamma)
	vk.Delta2 = pk.Delta2

	tmp, tmp2 := fr.NewElement(), fr.NewElement()
	pk.A = make([]curve.PointAffine, cs.NVars)
	pk.B1 = make([]curve.PointAffine, cs.NVars)
	pk.B2 = make([]pairing.G2Affine, cs.NVars)
	pk.K = make([]curve.PointAffine, cs.NVars)
	vk.IC = make([]curve.PointAffine, cs.NPublic+1)
	for i := 0; i < cs.NVars; i++ {
		if i%setupCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		pk.A[i] = mulG1(u[i])
		pk.B1[i] = mulG1(v[i])
		pk.B2[i] = mulG2(v[i])
		// k_i = β·u_i + α·v_i + w_i
		fr.Mul(tmp, beta, u[i])
		fr.Mul(tmp2, alpha, v[i])
		fr.Add(tmp, tmp, tmp2)
		fr.Add(tmp, tmp, w[i])
		if i <= cs.NPublic {
			fr.Mul(tmp2, tmp, gammaInv)
			vk.IC[i] = mulG1(tmp2)
			pk.K[i] = curve.PointAffine{Inf: true}
		} else {
			fr.Mul(tmp2, tmp, deltaInv)
			pk.K[i] = mulG1(tmp2)
		}
	}

	// Z_j = τ^j·t(τ)/δ with t(τ) = τ^d − 1.
	tTau := fr.NewElement()
	fr.Exp(tTau, tau, big.NewInt(int64(d)))
	fr.Sub(tTau, tTau, fr.One())
	fr.Mul(tTau, tTau, deltaInv)
	pk.Z = make([]curve.PointAffine, d-1)
	pw := tTau.Clone()
	for j := 0; j < d-1; j++ {
		if j%setupCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		pk.Z[j] = mulG1(pw)
		fr.Mul(tmp, pw, tau)
		pw.Set(tmp)
	}
	return pk, vk, nil
}

// frNat converts an Fr element to the plain scalar Nat the MSM consumes.
func frNat(fr *field.Field, k field.Element) bigint.Nat {
	return bigint.FromBig(fr.ToBig(k), fr.Width())
}

// phaseSpan records one prover phase into the run's tracer. Record is
// nil-safe, so a context without a tracer costs two time reads and a
// pointer check per phase — negligible against the ms-scale phases.
// Every phase passes its own start time and lane: the sequential prover
// draws all phases on TrackHost (they cannot overlap), the phase-DAG
// prover gives each phase its own telemetry.TrackPhase lane so
// concurrent phases never alias each other's start or duration.
func phaseSpan(tr *telemetry.Tracer, name string, track telemetry.Track, start time.Time) {
	tr.Record(telemetry.Span{Name: name, Cat: "groth16", Track: track,
		Start: start, Dur: time.Since(start)})
}

// Prove generates a proof for the witness. msmG1 routes the prover's G1
// multi-scalar multiplications (nil = CPU Pippenger).
//
// Deprecated: long-running services should use ProveContext, which
// additionally honours a context.Context at every phase boundary (NTT
// passes, QAP/quotient phases, each MSM) — not just inside a
// context-aware msmG1.
func (e *Engine) Prove(cs *r1cs.System, pk *ProvingKey, witness []field.Element, rnd *rand.Rand, msmG1 MSMFunc) (*Proof, error) {
	return e.ProveContext(context.Background(), cs, pk, witness, rnd, msmG1)
}

// ProveContext generates a proof for the witness, honouring ctx through
// the whole pipeline: the witness check, the quotient's six coset NTTs
// (cancellation between butterfly passes), and every G1/G2 MSM phase
// boundary. A cancelled or deadlined proof returns ctx.Err() — with an
// expired deadline that is context.DeadlineExceeded from inside the
// prover itself, independent of whether msmG1 observes the context.
// msmG1 routes the prover's G1 MSMs (nil = CPU Pippenger).
func (e *Engine) ProveContext(ctx context.Context, cs *r1cs.System, pk *ProvingKey, witness []field.Element, rnd *rand.Rand, msmG1 MSMFunc) (*Proof, error) {
	var pr Provers
	if msmG1 != nil {
		pr.G1 = func(_ MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
			return msmG1(points, scalars)
		}
	}
	return e.ProveContextWith(ctx, cs, pk, witness, rnd, pr)
}

// ProveContextWith is ProveContext with phase-aware MSM routing: the G1
// backend learns which proving-key column each MSM is over (so cached
// per-column fixed-base tables apply), and the G2 MSM over pk.B2 is
// routable too. Zero-valued Provers fields select the CPU defaults.
// With pr.Pipeline set the prover executes its phase DAG (see
// ProvePipelinedContext) instead of the sequential phase list.
func (e *Engine) ProveContextWith(ctx context.Context, cs *r1cs.System, pk *ProvingKey, witness []field.Element, rnd *rand.Rand, pr Provers) (*Proof, error) {
	if pr.Pipeline != nil {
		return e.ProvePipelinedContext(ctx, cs, pk, witness, rnd, pr, *pr.Pipeline)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cs.Satisfied(witness); err != nil {
		return nil, err
	}
	fr := e.Fr
	msmG1 := e.g1msm(pr)
	msmG2 := e.g2msm(pr)

	tr := telemetry.FromContext(ctx)
	t0 := time.Now()
	h, err := e.quotient(ctx, cs, pk.Domain, witness, 1)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "quotient", telemetry.TrackHost, t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	r, s := fr.Rand(rnd), fr.Rand(rnd)
	scalars := make([]bigint.Nat, len(witness))
	for i, a := range witness {
		scalars[i] = frNat(fr, a)
	}

	adder := e.P.Curve.NewAdder()
	g2 := e.P.G2

	// A = α + Σ a_i·u_i(τ) + r·δ  (G1)
	t0 = time.Now()
	sumA, err := msmG1(ctx, PhaseA, pk.A, scalars)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "msm-A", telemetry.TrackHost, t0)
	accA := e.P.Curve.NewXYZZ()
	e.P.Curve.SetAffine(accA, &pk.Alpha)
	adder.Add(accA, sumA)
	rDelta := adder.ScalarMul(&pk.Delta, frNat(fr, r))
	adder.Add(accA, rDelta)
	proofA := e.P.Curve.ToAffine(accA)

	// B = β + Σ a_i·v_i(τ) + s·δ  (G2), plus its G1 mirror.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	big2 := make([]*big.Int, len(witness))
	for i := range witness {
		big2[i] = fr.ToBig(witness[i])
	}
	t0 = time.Now()
	sumB2, err := msmG2(ctx, pk.B2, big2)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "msm-B2", telemetry.TrackHost, t0)
	withBeta := g2.Add(&sumB2, &pk.Beta2)
	sDelta2 := g2.ScalarMulFr(&pk.Delta2, fr, s)
	proofB := g2.Add(&withBeta, &sDelta2)

	t0 = time.Now()
	sumB1, err := msmG1(ctx, PhaseB1, pk.B1, scalars)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "msm-B1", telemetry.TrackHost, t0)
	accB1 := e.P.Curve.NewXYZZ()
	e.P.Curve.SetAffine(accB1, &pk.Beta)
	adder.Add(accB1, sumB1)
	sDelta1 := adder.ScalarMul(&pk.Delta, frNat(fr, s))
	adder.Add(accB1, sDelta1)

	// C = Σ_priv a_i·K_i + Σ_j h_j·Z_j + s·A + r·B1 − r·s·δ
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	privScalars := privateScalars(fr, cs, witness, scalars)
	t0 = time.Now()
	sumK, err := msmG1(ctx, PhaseK, pk.K, privScalars)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "msm-K", telemetry.TrackHost, t0)
	hScalars := quotientScalars(fr, pk, h)
	t0 = time.Now()
	sumH, err := msmG1(ctx, PhaseZ, pk.Z, hScalars)
	if err != nil {
		return nil, err
	}
	phaseSpan(tr, "msm-Z", telemetry.TrackHost, t0)
	accC := sumK
	adder.Add(accC, sumH)
	aAff := proofA
	sA := adder.ScalarMul(&aAff, frNat(fr, s))
	adder.Add(accC, sA)
	b1Aff := e.P.Curve.ToAffine(accB1)
	rB1 := adder.ScalarMul(&b1Aff, frNat(fr, r))
	adder.Add(accC, rB1)
	rs := fr.NewElement()
	fr.Mul(rs, r, s)
	rsDelta := adder.ScalarMul(&pk.Delta, frNat(fr, rs))
	e.P.Curve.Neg(rsDelta)
	adder.Add(accC, rsDelta)

	return &Proof{A: proofA, B: proofB, C: e.P.Curve.ToAffine(accC)}, nil
}

// privateScalars masks the public-input prefix of the witness scalars
// with zeros (the msm-K column covers private variables only).
func privateScalars(fr *field.Field, cs *r1cs.System, witness []field.Element, scalars []bigint.Nat) []bigint.Nat {
	out := make([]bigint.Nat, len(witness))
	for i := range witness {
		if i <= cs.NPublic {
			out[i] = bigint.New(fr.Width())
		} else {
			out[i] = scalars[i]
		}
	}
	return out
}

// quotientScalars lifts the quotient coefficients onto the msm-Z column,
// zero-padding to len(pk.Z).
func quotientScalars(fr *field.Field, pk *ProvingKey, h []field.Element) []bigint.Nat {
	out := make([]bigint.Nat, len(pk.Z))
	for j := range pk.Z {
		if j < len(h) {
			out[j] = frNat(fr, h[j])
		} else {
			out[j] = bigint.New(fr.Width())
		}
	}
	return out
}

// quotient computes the coefficients of h(X) = (a(X)·b(X) − c(X))/t(X)
// via coset NTTs (t is constant on the coset: g^d − 1). Each of the
// seven transforms honours ctx between butterfly passes, so a cancel or
// deadline lands mid-quotient instead of after it. nttWorkers selects
// the transform implementation: 1 keeps the serial *Context forms (the
// sequential prover's exact code path), anything else routes through
// the parallel coset NTTs (0 = GOMAXPROCS), which are bit-identical to
// the serial transforms.
func (e *Engine) quotient(ctx context.Context, cs *r1cs.System, d int, witness []field.Element, nttWorkers int) ([]field.Element, error) {
	fr := e.Fr
	dom, err := ntt.NewDomain(fr, d)
	if err != nil {
		return nil, err
	}
	inverse := dom.InverseContext
	cosetForward := dom.CosetForwardContext
	cosetInverse := dom.CosetInverseContext
	if nttWorkers != 1 {
		inverse = func(ctx context.Context, a []field.Element) error {
			return dom.ParallelInverseContext(ctx, a, nttWorkers)
		}
		cosetForward = func(ctx context.Context, a []field.Element) error {
			return dom.ParallelCosetForwardContext(ctx, a, nttWorkers)
		}
		cosetInverse = func(ctx context.Context, a []field.Element) error {
			return dom.ParallelCosetInverseContext(ctx, a, nttWorkers)
		}
	}
	evalA := zeroVec(fr, d)
	evalB := zeroVec(fr, d)
	evalC := zeroVec(fr, d)
	for q, con := range cs.Constraints {
		evalA[q].Set(cs.EvalLC(con.A, witness))
		evalB[q].Set(cs.EvalLC(con.B, witness))
		evalC[q].Set(cs.EvalLC(con.C, witness))
	}
	// To coefficients, then onto the coset.
	for _, v := range [][]field.Element{evalA, evalB, evalC} {
		if err := inverse(ctx, v); err != nil {
			return nil, err
		}
	}
	for _, v := range [][]field.Element{evalA, evalB, evalC} {
		if err := cosetForward(ctx, v); err != nil {
			return nil, err
		}
	}
	// t(g·ω^j) = g^d − 1, a constant.
	zInv := fr.NewElement()
	fr.Exp(zInv, dom.Gen(), big.NewInt(int64(d)))
	fr.Sub(zInv, zInv, fr.One())
	fr.Inv(zInv, zInv)
	tmp := fr.NewElement()
	for j := 0; j < d; j++ {
		fr.Mul(tmp, evalA[j], evalB[j])
		fr.Sub(tmp, tmp, evalC[j])
		fr.Mul(evalA[j], tmp, zInv)
	}
	if err := cosetInverse(ctx, evalA); err != nil {
		return nil, err
	}
	// h has degree ≤ d−2: the top coefficient must vanish.
	if !evalA[d-1].IsZero() {
		return nil, fmt.Errorf("groth16: quotient degree overflow (unsatisfied witness?)")
	}
	return evalA[:d-1], nil
}

// Verify checks the proof against the public inputs (without the leading
// constant one).
func (e *Engine) Verify(vk *VerifyingKey, proof *Proof, public []field.Element) (bool, error) {
	if len(public)+1 != len(vk.IC) {
		return false, fmt.Errorf("groth16: %d public inputs, key expects %d", len(public), len(vk.IC)-1)
	}
	fr := e.Fr
	adder := e.P.Curve.NewAdder()
	acc := e.P.Curve.NewXYZZ()
	e.P.Curve.SetAffine(acc, &vk.IC[0])
	for i, x := range public {
		term := adder.ScalarMul(&vk.IC[i+1], frNat(fr, x))
		adder.Add(acc, term)
	}
	ic := e.P.Curve.ToAffine(acc)

	// e(−A, B)·e(α, β)·e(IC, γ)·e(C, δ) == 1
	negA := curve.PointAffine{X: proof.A.X.Clone(), Y: proof.A.Y.Clone(), Inf: proof.A.Inf}
	e.P.Curve.NegAffine(&negA)
	out, err := e.P.PairingProduct(
		[]curve.PointAffine{negA, vk.Alpha, ic, proof.C},
		[]pairing.G2Affine{proof.B, vk.Beta2, vk.Gamma2, vk.Delta2},
	)
	if err != nil {
		return false, err
	}
	return e.P.T.E12IsOne(&out), nil
}
