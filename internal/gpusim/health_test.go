package gpusim

import "testing"

func TestHealthConfigDefaults(t *testing.T) {
	cfg := HealthConfig{}.withDefaults()
	if cfg.FaultThreshold != 3 || cfg.CooldownRuns != 4 || cfg.ProbeBuckets != 32 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	kept := HealthConfig{FaultThreshold: 7, CooldownRuns: 2, ProbeBuckets: 5}.withDefaults()
	if kept.FaultThreshold != 7 || kept.CooldownRuns != 2 || kept.ProbeBuckets != 5 {
		t.Fatalf("explicit config not kept: %+v", kept)
	}
}

// TestBreakerLifecycle walks one GPU through the full state machine:
// faults accumulate consecutively across runs, a fault-free run resets
// the streak, the threshold opens the breaker, CooldownRuns plans later
// a probe is offered, a faulty probe re-opens, and a fault-free probe
// closes.
func TestBreakerLifecycle(t *testing.T) {
	r := NewHealthRegistry(HealthConfig{})
	// Two faulty runs: below threshold, still closed.
	r.RecordRun(0, 1, 1)
	r.RecordRun(0, 1, 1)
	if s := r.State(0); s != BreakerClosed {
		t.Fatalf("after 2 faults: state %v, want closed", s)
	}
	// A fault-free run with work resets the streak...
	r.RecordRun(0, 3, 0)
	r.RecordRun(0, 1, 1)
	r.RecordRun(0, 1, 1)
	if s := r.State(0); s != BreakerClosed {
		t.Fatalf("streak did not reset: state %v, want closed", s)
	}
	// ...so it takes a third consecutive fault to trip.
	r.RecordRun(0, 0, 1)
	if s := r.State(0); s != BreakerOpen {
		t.Fatalf("after threshold: state %v, want open", s)
	}

	// The open GPU sits out CooldownRuns-1 plans...
	for i := 0; i < 3; i++ {
		adm := r.Admit(2)
		if len(adm.Full) != 1 || adm.Full[0] != 1 || len(adm.Probes) != 0 {
			t.Fatalf("cooldown plan %d: admission %+v, want only GPU 1 full", i, adm)
		}
	}
	// ...and is offered a probe on the CooldownRuns-th.
	adm := r.Admit(2)
	if len(adm.Probes) != 1 || adm.Probes[0] != 0 {
		t.Fatalf("post-cooldown admission %+v, want GPU 0 probing", adm)
	}
	if s := r.State(0); s != BreakerHalfOpen {
		t.Fatalf("post-cooldown state %v, want half-open", s)
	}

	// A fault during the probe re-opens immediately.
	r.RecordRun(0, 0, 1)
	if s := r.State(0); s != BreakerOpen {
		t.Fatalf("faulty probe: state %v, want open", s)
	}

	// Cooldown again, then a fault-free probe with committed work closes.
	for i := 0; i < 4; i++ {
		r.Admit(2)
	}
	if s := r.State(0); s != BreakerHalfOpen {
		t.Fatalf("second cooldown: state %v, want half-open", s)
	}
	r.RecordRun(0, 1, 0)
	if s := r.State(0); s != BreakerClosed {
		t.Fatalf("clean probe: state %v, want closed", s)
	}

	snap := r.Snapshot(2)
	if snap[0].Trips != 2 {
		t.Fatalf("GPU 0 trips = %d, want 2", snap[0].Trips)
	}
	if snap[0].Shards != 8 || snap[0].Faults != 6 {
		t.Fatalf("lifetime totals %d shards / %d faults, want 8/6", snap[0].Shards, snap[0].Faults)
	}
}

// TestBreakerProbeWithoutWorkStaysHalfOpen: a probe whose shard never
// ran (stolen, or the job was cancelled first) is neither evidence of
// health nor of sickness — the GPU is probed again next plan.
func TestBreakerProbeWithoutWorkStaysHalfOpen(t *testing.T) {
	r := NewHealthRegistry(HealthConfig{FaultThreshold: 1, CooldownRuns: 1})
	r.RecordRun(0, 0, 1)
	if s := r.State(0); s != BreakerOpen {
		t.Fatalf("state %v, want open", s)
	}
	r.Admit(2) // cooldown elapses → half-open
	r.RecordRun(0, 0, 0)
	if s := r.State(0); s != BreakerHalfOpen {
		t.Fatalf("empty probe run: state %v, want half-open", s)
	}
	adm := r.Admit(2)
	if len(adm.Probes) != 1 || adm.Probes[0] != 0 {
		t.Fatalf("admission %+v, want GPU 0 probing again", adm)
	}
}

// TestBreakerAllOpenEmergency: with every device quarantined the
// registry fails towards availability and re-admits all of them as
// probes instead of refusing to plan.
func TestBreakerAllOpenEmergency(t *testing.T) {
	r := NewHealthRegistry(HealthConfig{FaultThreshold: 1, CooldownRuns: 100})
	r.RecordRun(0, 0, 1)
	r.RecordRun(1, 0, 1)
	if q := r.Quarantined(2); q != 2 {
		t.Fatalf("quarantined = %d, want 2", q)
	}
	adm := r.Admit(2)
	if len(adm.Full) != 0 || len(adm.Probes) != 2 {
		t.Fatalf("emergency admission %+v, want both GPUs probing", adm)
	}
	if r.State(0) != BreakerHalfOpen || r.State(1) != BreakerHalfOpen {
		t.Fatal("emergency re-admission did not move devices to half-open")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
