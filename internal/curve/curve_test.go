package curve

import (
	"math/big"
	"testing"

	"distmsm/internal/bigint"
)

func mustCurve(t testing.TB, name string) *Curve {
	t.Helper()
	c, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testCurves returns the fast curves for exhaustive tests; MNT4753 is
// included only in the dedicated test to keep the suite quick.
func testCurves(t testing.TB) []*Curve {
	return []*Curve{mustCurve(t, "BN254"), mustCurve(t, "BLS12-377"), mustCurve(t, "BLS12-381")}
}

func TestRegistry(t *testing.T) {
	cs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("want 4 curves, got %d", len(cs))
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown curve")
	}
	// Table 1 bit widths.
	want := map[string]struct{ scalar, point int }{
		"BN254":     {254, 254},
		"BLS12-377": {253, 377},
		"BLS12-381": {255, 381},
		"MNT4753":   {753, 753},
	}
	for _, c := range cs {
		w := want[c.Name]
		if c.ScalarBits != w.scalar {
			t.Errorf("%s: scalar bits %d, want %d", c.Name, c.ScalarBits, w.scalar)
		}
		if c.Fp.Bits() != w.point {
			t.Errorf("%s: point bits %d, want %d", c.Name, c.Fp.Bits(), w.point)
		}
	}
}

func TestGeneratorsOnCurve(t *testing.T) {
	cs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if !c.IsOnCurveAffine(&c.Gen) {
			t.Errorf("%s: generator not on curve", c.Name)
		}
	}
	// The two curves with embedded constants must not be falling back.
	if mustCurve(t, "BN254").GenDerived || mustCurve(t, "BLS12-381").GenDerived {
		t.Error("standard generator was unexpectedly derived")
	}
}

func TestGroupLaws(t *testing.T) {
	for _, c := range testCurves(t) {
		pts := c.SamplePoints(3, 11)
		a := c.NewAdder()
		p, q, r := &pts[0], &pts[1], &pts[2]

		// commutativity: P+Q == Q+P
		s1, s2 := c.NewXYZZ(), c.NewXYZZ()
		c.SetAffine(s1, p)
		a.Acc(s1, q)
		c.SetAffine(s2, q)
		a.Acc(s2, p)
		if !c.EqualXYZZ(s1, s2) {
			t.Fatalf("%s: P+Q != Q+P", c.Name)
		}
		if !c.IsOnCurve(s1) {
			t.Fatalf("%s: P+Q off curve", c.Name)
		}

		// associativity: (P+Q)+R == P+(Q+R)
		t1 := s1.Clone()
		a.Acc(t1, r)
		t2 := c.NewXYZZ()
		c.SetAffine(t2, q)
		a.Acc(t2, r)
		t3 := c.NewXYZZ()
		c.SetAffine(t3, p)
		a.Add(t3, t2)
		if !c.EqualXYZZ(t1, t3) {
			t.Fatalf("%s: (P+Q)+R != P+(Q+R)", c.Name)
		}

		// identity: P + inf == P; inf + P == P
		inf := c.NewXYZZ()
		pz := c.NewXYZZ()
		c.SetAffine(pz, p)
		a.Add(pz, inf)
		want := c.NewXYZZ()
		c.SetAffine(want, p)
		if !c.EqualXYZZ(pz, want) {
			t.Fatalf("%s: P+inf != P", c.Name)
		}
		infAcc := c.NewXYZZ()
		a.Add(infAcc, pz)
		if !c.EqualXYZZ(infAcc, want) {
			t.Fatalf("%s: inf+P != P", c.Name)
		}

		// inverse: P + (-P) == inf, via both Acc and Add
		negP := PointAffine{X: p.X.Clone(), Y: p.Y.Clone()}
		c.NegAffine(&negP)
		cancel := c.NewXYZZ()
		c.SetAffine(cancel, p)
		a.Acc(cancel, &negP)
		if !cancel.IsInf() {
			t.Fatalf("%s: P + (-P) != inf (Acc)", c.Name)
		}

		// doubling consistency: Acc(P, P) == Double(P) == Add(P, P)
		d1 := c.NewXYZZ()
		c.SetAffine(d1, p)
		a.Acc(d1, p)
		d2 := c.NewXYZZ()
		c.SetAffine(d2, p)
		a.Double(d2)
		d3 := c.NewXYZZ()
		c.SetAffine(d3, p)
		pCopy := c.NewXYZZ()
		c.SetAffine(pCopy, p)
		a.Add(d3, pCopy)
		if !c.EqualXYZZ(d1, d2) || !c.EqualXYZZ(d2, d3) {
			t.Fatalf("%s: doubling paths disagree", c.Name)
		}
		if !c.IsOnCurve(d2) {
			t.Fatalf("%s: 2P off curve", c.Name)
		}
	}
}

func TestDoubleInfinity(t *testing.T) {
	c := mustCurve(t, "BN254")
	a := c.NewAdder()
	inf := c.NewXYZZ()
	a.Double(inf)
	if !inf.IsInf() {
		t.Fatal("2*inf != inf")
	}
}

func TestScalarMulSmall(t *testing.T) {
	for _, c := range testCurves(t) {
		a := c.NewAdder()
		g := &c.Gen
		// k*G computed by ScalarMul must equal repeated addition.
		acc := c.NewXYZZ()
		for k := 1; k <= 17; k++ {
			a.Acc(acc, g)
			kNat := bigint.New((c.ScalarBits + 63) / 64)
			kNat.SetUint64(uint64(k))
			got := a.ScalarMul(g, kNat)
			if !c.EqualXYZZ(got, acc) {
				t.Fatalf("%s: %d*G mismatch", c.Name, k)
			}
		}
		// 0*G == inf
		zero := bigint.New(4)
		if !a.ScalarMul(g, zero).IsInf() {
			t.Fatalf("%s: 0*G != inf", c.Name)
		}
	}
}

func TestScalarMulDistributes(t *testing.T) {
	for _, c := range testCurves(t) {
		a := c.NewAdder()
		g := &c.Gen
		w := (c.ScalarBits + 63) / 64
		k1 := bigint.FromBig(big.NewInt(0x123456789abcdef), w)
		k2 := bigint.FromBig(big.NewInt(0xfedcba987654321), w)
		sum := bigint.New(w)
		bigint.AddInto(sum, k1, k2)

		p1 := a.ScalarMul(g, k1)
		p2 := a.ScalarMul(g, k2)
		a.Add(p1, p2)
		want := a.ScalarMul(g, sum)
		if !c.EqualXYZZ(p1, want) {
			t.Fatalf("%s: (k1+k2)G != k1*G + k2*G", c.Name)
		}
	}
}

func TestScalarFieldOrderAnnihilates(t *testing.T) {
	// For the real curves, r*G must be the identity — this validates the
	// embedded group-order constants against the curve constants.
	for _, c := range testCurves(t) {
		if c.ScalarField == nil {
			continue
		}
		if c.GenDerived {
			// A derived point may live outside the prime-order subgroup
			// (cofactor > 1): multiply by the cofactor-cleared check is
			// skipped; BN254 and BLS12-381 have embedded generators.
			continue
		}
		a := c.NewAdder()
		w := (c.ScalarField.Modulus.BitLen() + 63) / 64
		r := bigint.FromBig(c.ScalarField.Modulus, w)
		if got := a.ScalarMul(&c.Gen, r); !got.IsInf() {
			t.Fatalf("%s: r*G != inf — group order constant wrong", c.Name)
		}
	}
}

func TestToAffineRoundTrip(t *testing.T) {
	c := mustCurve(t, "BN254")
	a := c.NewAdder()
	g := &c.Gen
	// Build a point with non-trivial ZZ by adding twice.
	p := c.NewXYZZ()
	c.SetAffine(p, g)
	a.Double(p)
	a.Acc(p, g) // 3G in XYZZ with ZZ != 1
	aff := c.ToAffine(p)
	back := c.NewXYZZ()
	c.SetAffine(back, &aff)
	if !c.EqualXYZZ(p, back) {
		t.Fatal("ToAffine round trip failed")
	}
	if !c.IsOnCurveAffine(&aff) {
		t.Fatal("affine point off curve")
	}
}

func TestBatchToAffineMatchesSingle(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	a := c.NewAdder()
	var ps []*PointXYZZ
	acc := c.NewXYZZ()
	for i := 0; i < 20; i++ {
		if i == 7 {
			ps = append(ps, c.NewXYZZ()) // include an infinity
			continue
		}
		a.Acc(acc, &c.Gen)
		ps = append(ps, acc.Clone())
	}
	batch := c.BatchToAffine(ps)
	for i, p := range ps {
		single := c.ToAffine(p)
		if !c.EqualAffine(&batch[i], &single) {
			t.Fatalf("batch[%d] != single conversion", i)
		}
	}
}

func TestSamplePointsDistinctAndValid(t *testing.T) {
	for _, c := range testCurves(t) {
		pts := c.SamplePoints(50, 3)
		seen := map[string]bool{}
		for i := range pts {
			if !c.IsOnCurveAffine(&pts[i]) {
				t.Fatalf("%s: sample %d off curve", c.Name, i)
			}
			k := pts[i].X.String()
			if seen[k] {
				t.Fatalf("%s: duplicate sample x", c.Name)
			}
			seen[k] = true
		}
	}
	if got := mustCurve(t, "BN254").SamplePoints(0, 1); got != nil {
		t.Fatal("SamplePoints(0) should be nil")
	}
}

func TestSampleScalarsWidth(t *testing.T) {
	for _, name := range Names() {
		c := mustCurve(t, name)
		ss := c.SampleScalars(32, 5)
		for _, s := range ss {
			if s.BitLen() > c.ScalarBits {
				t.Fatalf("%s: scalar too wide: %d bits", c.Name, s.BitLen())
			}
			if len(s)*64 < c.ScalarBits {
				t.Fatalf("%s: scalar storage too narrow", c.Name)
			}
		}
	}
}

func TestMNT4753Sim(t *testing.T) {
	c := mustCurve(t, "MNT4753")
	if c.Fp.Bits() != 753 {
		t.Fatalf("synthetic field is %d bits, want 753", c.Fp.Bits())
	}
	if !c.IsOnCurveAffine(&c.Gen) {
		t.Fatal("derived generator off curve")
	}
	a := c.NewAdder()
	p := c.NewXYZZ()
	c.SetAffine(p, &c.Gen)
	a.Double(p)
	a.Acc(p, &c.Gen)
	if !c.IsOnCurve(p) {
		t.Fatal("3G off curve on synthetic 753-bit curve")
	}
}

func TestMSMReferenceTiny(t *testing.T) {
	c := mustCurve(t, "BN254")
	pts := c.SamplePoints(4, 9)
	w := (c.ScalarBits + 63) / 64
	ks := []bigint.Nat{
		bigint.FromBig(big.NewInt(3), w),
		bigint.FromBig(big.NewInt(0), w),
		bigint.FromBig(big.NewInt(1), w),
		bigint.FromBig(big.NewInt(7), w),
	}
	got := c.MSMReference(pts, ks)
	// Manual: 3*P0 + P2 + 7*P3
	a := c.NewAdder()
	want := c.NewXYZZ()
	for i := 0; i < 3; i++ {
		a.Acc(want, &pts[0])
	}
	a.Acc(want, &pts[2])
	for i := 0; i < 7; i++ {
		a.Acc(want, &pts[3])
	}
	if !c.EqualXYZZ(got, want) {
		t.Fatal("MSMReference mismatch")
	}
}

func TestAdderCounts(t *testing.T) {
	c := mustCurve(t, "BN254")
	a := c.NewAdder()
	acc := c.NewXYZZ()
	a.Acc(acc, &c.Gen)
	a.Acc(acc, &c.Gen) // triggers a double internally
	q := acc.Clone()
	a.Add(acc, q)
	if a.CountPACC != 2 || a.CountPADD != 1 || a.CountPDBL < 1 {
		t.Fatalf("counts: PACC=%d PADD=%d PDBL=%d", a.CountPACC, a.CountPADD, a.CountPDBL)
	}
	a.ResetCounts()
	if a.CountPACC != 0 || a.CountPADD != 0 || a.CountPDBL != 0 {
		t.Fatal("ResetCounts failed")
	}
}

func BenchmarkPACC(b *testing.B) {
	for _, name := range Names() {
		c := mustCurve(b, name)
		a := c.NewAdder()
		acc := c.NewXYZZ()
		c.SetAffine(acc, &c.Gen)
		a.Double(acc)
		pt := c.DerivePoint(99)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Acc(acc, &pt)
			}
		})
	}
}

func BenchmarkPADD(b *testing.B) {
	for _, name := range Names() {
		c := mustCurve(b, name)
		a := c.NewAdder()
		acc := c.NewXYZZ()
		c.SetAffine(acc, &c.Gen)
		a.Double(acc)
		q := acc.Clone()
		a.Double(q)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Add(acc, q)
			}
		})
	}
}
