package cluster

import "time"

// This file is the node-level circuit breaker, the whole-node analogue
// of the per-GPU breaker in internal/gpusim/health.go. The state
// machine is the same —
//
//	Closed ──K consecutive failures──▶ Open ──Cooldown elapses──▶ HalfOpen
//	  ▲                                  ▲                           │
//	  │                                  └────────probe fails────────┤
//	  └────────────────────────probe succeeds────────────────────────┘
//
// — but the clock is wall time, not plan count: a node sits out
// Cooldown of real time (there is no shared "plan" epoch across an
// asynchronous job stream), and a half-open node admits exactly one
// probe dispatch at a time. Breaker-relevant failures are dispatch
// errors, dispatch timeouts and corrupted responses; an admission
// rejection from a busy-but-healthy worker also counts, because from
// the router's seat a node that cannot take work should stop being
// offered it for a while.

// BreakerState is the circuit-breaker state of one node.
type BreakerState int

const (
	// NodeClosed: the node is healthy and receives its full share.
	NodeClosed BreakerState = iota
	// NodeOpen: the node is quarantined and excluded from routing.
	NodeOpen
	// NodeHalfOpen: the node is offered one probe dispatch at a time; a
	// success closes the breaker, a failure re-opens it.
	NodeHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case NodeClosed:
		return "closed"
	case NodeOpen:
		return "open"
	case NodeHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the node breaker. The zero value selects the
// documented defaults.
type BreakerConfig struct {
	// FailThreshold is how many consecutive dispatch failures a closed
	// node accrues before it is quarantined (default 3).
	FailThreshold int
	// Cooldown is how long a quarantined node sits out before it is
	// offered a half-open probe dispatch (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// nodeBreaker is one node's breaker state. It is not self-locking: the
// coordinator mutates it under its own mutex.
type nodeBreaker struct {
	state       BreakerState
	consecutive int
	openedAt    time.Time
	// probing marks an in-flight half-open probe; a half-open node
	// admits one probe at a time.
	probing bool
	trips   int
}

// canAdmit reports, without side effects, whether a dispatch to this
// node would be admitted at time now. Used to scan candidates without
// consuming probe slots.
func (b *nodeBreaker) canAdmit(now time.Time, cfg BreakerConfig) bool {
	switch b.state {
	case NodeClosed:
		return true
	case NodeOpen:
		return now.Sub(b.openedAt) >= cfg.Cooldown
	case NodeHalfOpen:
		return !b.probing
	}
	return false
}

// admit commits the admission canAdmit promised: an open node past its
// cooldown transitions to half-open, and a half-open node consumes its
// probe slot. admitted is false if the admission raced away; probe
// reports that this admission consumed the half-open probe slot — the
// caller then owns that slot and must return it, either by recording
// the dispatch outcome or via releaseProbe when the attempt is
// abandoned without one.
func (b *nodeBreaker) admit(now time.Time, cfg BreakerConfig) (admitted, probe bool) {
	switch b.state {
	case NodeClosed:
		return true, false
	case NodeOpen:
		if now.Sub(b.openedAt) < cfg.Cooldown {
			return false, false
		}
		b.state = NodeHalfOpen
		b.probing = true
		return true, true
	case NodeHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// releaseProbe returns a half-open probe slot without recording an
// outcome. A probe dispatch that is abandoned before it completes — a
// hedge loser, or a job cancelled mid-flight — proves nothing about the
// node's health, but its slot must come back: otherwise the breaker
// would sit HalfOpen with its single slot consumed forever and the node
// would be silently excluded from routing for good. The state guard
// makes a late release a no-op when the breaker has since re-opened or
// closed (record already reset probing on those transitions).
func (b *nodeBreaker) releaseProbe() {
	if b.state == NodeHalfOpen {
		b.probing = false
	}
}

// record folds one dispatch outcome into the breaker. Returns true when
// the outcome tripped the breaker open (for metrics).
func (b *nodeBreaker) record(ok bool, now time.Time, cfg BreakerConfig) (tripped bool) {
	if ok {
		b.state = NodeClosed
		b.consecutive = 0
		b.probing = false
		return false
	}
	switch b.state {
	case NodeClosed:
		b.consecutive++
		if b.consecutive >= cfg.FailThreshold {
			b.open(now)
			return true
		}
	case NodeHalfOpen:
		// The probe failed: straight back to quarantine.
		b.open(now)
		return true
	case NodeOpen:
		// A failure landing while open (a dispatch launched before the
		// trip) restarts the cooldown clock.
		b.openedAt = now
	}
	return false
}

func (b *nodeBreaker) open(now time.Time) {
	b.state = NodeOpen
	b.consecutive = 0
	b.openedAt = now
	b.probing = false
	b.trips++
}
