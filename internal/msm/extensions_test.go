package msm

import (
	"math/big"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// --- precomputation (§2.3.1) ---

func TestPrecomputedMSMMatchesReference(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		n := 48
		points := c.SamplePoints(n, 51)
		scalars := c.SampleScalars(n, 52)
		want := c.MSMReference(points, scalars)
		for _, cfg := range []Config{
			{WindowSize: 6},
			{WindowSize: 9, Signed: true},
		} {
			pre, err := Precompute(c, points, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pre.MSM(scalars)
			if err != nil {
				t.Fatal(err)
			}
			if !c.EqualXYZZ(got, want) {
				t.Fatalf("%s cfg=%+v: precomputed MSM mismatch", name, cfg)
			}
			if pre.Tables() < 2 {
				t.Fatalf("%s: suspicious table count %d", name, pre.Tables())
			}
		}
	}
}

func TestPrecomputedErrors(t *testing.T) {
	c := mustCurve(t, "BN254")
	points := c.SamplePoints(4, 1)
	pre, err := Precompute(c, points, Config{WindowSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre.MSM(c.SampleScalars(5, 2)); err == nil {
		t.Fatal("scalar-count mismatch must error")
	}
	if _, err := Precompute(c, points, Config{WindowSize: 40}); err == nil {
		t.Fatal("oversized window must error")
	}
}

// --- batch-affine accumulation ---

func TestBatchAffineSumMatchesWindowSum(t *testing.T) {
	c := mustCurve(t, "BN254")
	n := 200
	points := c.SamplePoints(n, 61)
	// Digits engineered to hit all edge cases: zeros, negatives, repeats
	// (same bucket repeatedly → doubling path), and a duplicate point.
	digits := make([]int32, n)
	for i := range digits {
		switch i % 6 {
		case 0:
			digits[i] = 0
		case 1:
			digits[i] = 7
		case 2:
			digits[i] = -7
		case 3:
			digits[i] = int32(i%15 + 1)
		case 4:
			digits[i] = 1
		default:
			digits[i] = 15
		}
	}
	points[10] = points[4] // duplicate point into bucket 1 (doubling edge)
	digits[10], digits[4] = 1, 1

	nBuckets := 16
	got := BatchAffineSum(c, points, digits, nBuckets)

	a := c.NewAdder()
	cfg := Config{WindowSize: 4}
	want := windowSum(c, points, digits, cfg, a)
	// Reduce got buckets the same way and compare.
	running := c.NewXYZZ()
	total := c.NewXYZZ()
	for b := nBuckets - 1; b >= 1; b-- {
		if !got[b].Inf {
			a.Acc(running, &got[b])
		}
		a.Add(total, running)
	}
	if !c.EqualXYZZ(total, want) {
		t.Fatal("batch-affine buckets reduce to a different window sum")
	}
	// Every non-empty bucket is on the curve.
	for b := range got {
		if !got[b].Inf && !c.IsOnCurveAffine(&got[b]) {
			t.Fatalf("bucket %d off curve", b)
		}
	}
}

func TestBatchAffineMSMMatchesReference(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	n := 64
	points := c.SamplePoints(n, 71)
	scalars := c.SampleScalars(n, 72)
	want := c.MSMReference(points, scalars)
	for _, cfg := range []Config{
		{WindowSize: 5},
		{WindowSize: 8, Signed: true},
	} {
		got, err := BatchAffineMSM(c, points, scalars, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.EqualXYZZ(got, want) {
			t.Fatalf("cfg=%+v: batch-affine MSM mismatch", cfg)
		}
	}
	if _, err := BatchAffineMSM(c, points[:2], scalars, Config{}); err == nil {
		t.Fatal("length mismatch must error")
	}
	empty, err := BatchAffineMSM(c, nil, nil, Config{})
	if err != nil || !empty.IsInf() {
		t.Fatal("empty batch-affine MSM should be infinity")
	}
}

// --- GLV endomorphism ---

// subgroupPoints returns n distinct points of the prime-order subgroup
// (multiples of the canonical generator), required by GLV.
func subgroupPoints(t *testing.T, c *curve.Curve, n int, seed int64) []curve.PointAffine {
	t.Helper()
	a := c.NewAdder()
	acc := c.NewXYZZ()
	c.SetAffine(acc, &c.Gen)
	step := c.SampleScalars(1, seed)[0]
	base := a.ScalarMul(&c.Gen, step)
	var chain []*curve.PointXYZZ
	for i := 0; i < n; i++ {
		a.Add(base, acc)
		chain = append(chain, base.Clone())
	}
	return c.BatchToAffine(chain)
}

func TestGLVDecompose(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		g, err := NewGLV(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := c.ScalarField.Modulus
		for _, k := range []*big.Int{
			big.NewInt(1),
			big.NewInt(0),
			new(big.Int).Sub(r, big.NewInt(1)),
			new(big.Int).Rsh(r, 1),
		} {
			k1, k2 := g.Decompose(k)
			// k1 + k2·λ ≡ k (mod r)
			chk := new(big.Int).Mul(k2, g.lambda)
			chk.Add(chk, k1).Mod(chk, r)
			want := new(big.Int).Mod(k, r)
			if chk.Cmp(want) != 0 {
				t.Fatalf("%s: decomposition incongruent for k=%v", name, k)
			}
			// Both halves are short.
			if k1.BitLen() > g.halfBits+2 || k2.BitLen() > g.halfBits+2 {
				t.Fatalf("%s: long half-scalars: %d/%d bits (half=%d)",
					name, k1.BitLen(), k2.BitLen(), g.halfBits)
			}
		}
	}
}

func TestGLVPhiIsEndomorphism(t *testing.T) {
	c := mustCurve(t, "BN254")
	g, err := NewGLV(c)
	if err != nil {
		t.Fatal(err)
	}
	pts := c.SamplePoints(5, 81)
	a := c.NewAdder()
	w := (c.ScalarBits + 63) / 64
	lam := bigint.FromBig(g.lambda, w)
	for i := range pts {
		phi := g.Phi(&pts[i])
		if !c.IsOnCurveAffine(&phi) {
			t.Fatal("phi(P) off curve")
		}
		want := a.ScalarMul(&pts[i], lam)
		got := c.NewXYZZ()
		c.SetAffine(got, &phi)
		if !c.EqualXYZZ(got, want) {
			t.Fatalf("phi(P) != lambda*P for sample %d", i)
		}
	}
	inf := g.Phi(&curve.PointAffine{Inf: true})
	if !inf.Inf {
		t.Fatal("phi(O) != O")
	}
}

func TestGLVMSMMatchesReference(t *testing.T) {
	for _, name := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, name)
		g, err := NewGLV(c)
		if err != nil {
			t.Fatal(err)
		}
		n := 48
		points := subgroupPoints(t, c, n, 91)
		scalars := c.SampleScalars(n, 92)
		want := c.MSMReference(points, scalars)
		got, err := g.MSM(points, scalars, Config{WindowSize: 8, Signed: true})
		if err != nil {
			t.Fatal(err)
		}
		if !c.EqualXYZZ(got, want) {
			t.Fatalf("%s: GLV MSM mismatch", name)
		}
		// The inputs must not be corrupted by the sign handling.
		for i := range points {
			if !c.IsOnCurveAffine(&points[i]) {
				t.Fatalf("%s: input point %d mutated", name, i)
			}
		}
		again := c.MSMReference(points, scalars)
		if !c.EqualXYZZ(again, want) {
			t.Fatalf("%s: inputs changed by GLV MSM", name)
		}
	}
}

func TestGLVRejectsUnsupportedCurves(t *testing.T) {
	c := mustCurve(t, "MNT4753") // a = 2, no j-invariant-0 endomorphism
	if _, err := NewGLV(c); err == nil {
		t.Fatal("MNT4753 must be rejected")
	}
	// BLS12-377 has the endomorphism but no embedded subgroup generator
	// in this build; GLV must refuse rather than risk wrong results.
	if _, err := NewGLV(mustCurve(t, "BLS12-377")); err == nil {
		t.Fatal("BLS12-377 (derived generator) must be rejected")
	}
}

func BenchmarkMSMVariants(b *testing.B) {
	c := mustCurve(b, "BN254")
	const n = 1 << 12
	points := c.SamplePoints(n, 5)
	scalars := c.SampleScalars(n, 6)
	cfg := Config{Signed: true, Workers: 1}

	b.Run("pippenger", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MSM(c, points, scalars, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-affine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BatchAffineMSM(c, points, scalars, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	g, err := NewGLV(c)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("glv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.MSM(points, scalars, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	pre, err := Precompute(c, points, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pre.MSM(scalars); err != nil {
				b.Fatal(err)
			}
		}
	})
}
