package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/outsource"
	"distmsm/internal/telemetry"
)

// This file is the fault-tolerant shard scheduler of EngineConcurrent.
// PR 1's engine assumed every simulated GPU completes every
// (window, bucket-range) shard it is assigned; at DGX scale device loss,
// transient kernel failures, stragglers and (rarely) corrupted partial
// results are routine, so the scheduler recovers from all four classes
// while keeping the final point bit-identical to the fault-free run:
//
//   - transient-error: per-shard retry with capped exponential backoff;
//   - device-lost: the GPU is marked unhealthy and its remaining shards
//     are rebalanced onto the survivors (rebalanceTargets in plan.go);
//   - straggler: a shard in flight past a deadline (a multiple of its
//     estimated duration) is speculatively re-executed on an idle GPU,
//     first result wins;
//   - corrupted-result: a sampled random-linear-combination check
//     against a recomputed reference rejects wrong partial bucket sums
//     and re-executes the shard;
//   - all GPUs lost: the run degrades to the serial host engine.
//
// Without a fault injector the scheduler reduces exactly to PR 1's
// behavior: each shard runs once, on its assigned GPU, in plan order.

// RetryPolicy tunes the fault-tolerant concurrent scheduler. The zero
// value selects the documented defaults.
type RetryPolicy struct {
	// MaxAttempts is how many consecutive failures a shard accrues on
	// its current owner before being reassigned to another healthy GPU
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// consecutive failure up to MaxBackoff (defaults 200µs and 5ms of
	// host time).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// StragglerMultiple sets the speculation deadline: a shard in flight
	// longer than StragglerMultiple times its estimated duration is
	// speculatively re-executed on an idle GPU (default 8; negative
	// disables speculation).
	StragglerMultiple float64
}

// Validate rejects retry tunings the scheduler cannot honour. The
// policy is checked after default resolution, so only explicitly
// contradictory configurations fail: a MaxBackoff below BaseBackoff
// would silently invert the backoff cap, and a NaN or infinite
// StragglerMultiple would poison every speculation-deadline comparison.
// Errors wrap gpusim.ErrBadFaultConfig so callers match one sentinel
// for every fault-handling misconfiguration.
func (p RetryPolicy) Validate() error {
	d := p.withDefaults()
	if d.MaxBackoff < d.BaseBackoff {
		return fmt.Errorf("%w: MaxBackoff %v < BaseBackoff %v",
			gpusim.ErrBadFaultConfig, d.MaxBackoff, d.BaseBackoff)
	}
	if math.IsNaN(d.StragglerMultiple) || math.IsInf(d.StragglerMultiple, 0) {
		return fmt.Errorf("%w: StragglerMultiple = %v is not finite",
			gpusim.ErrBadFaultConfig, d.StragglerMultiple)
	}
	return nil
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 200 * time.Microsecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Millisecond
	}
	if p.StragglerMultiple == 0 {
		p.StragglerMultiple = 8
	}
	return p
}

// maxShardExecutions bounds the total executions of one shard across
// retries, reassignments and speculation; reaching it fails the MSM
// (it takes a pathological injector — e.g. Corrupt = 1 — to get there).
const maxShardExecutions = 64

// Host wall-time floors keeping the deadline heuristics out of timer
// noise: no shard is declared a straggler before minSpecDeadline, and an
// injected straggler stalls for at least minStragglerWait (capped so
// pathological configurations cannot stall tests indefinitely).
const (
	minSpecDeadline  = 2 * time.Millisecond
	minStragglerWait = 8 * time.Millisecond
	maxStragglerWait = 250 * time.Millisecond
)

// shardTask is the scheduler's state for one planned assignment. All
// fields are guarded by scheduler.mu.
type shardTask struct {
	a     Assignment
	owner int // current preferred GPU (starts as a.GPU)
	// weight is the shard's relative modeled cost — its share of the
	// window's bucket range — used to scale deadlines and delays.
	weight float64

	queued     bool
	done       bool
	running    int // in-flight executions (at most 2: primary + speculative)
	seq        int // executions launched so far (fault-decision attempt index)
	failures   int // consecutive failed executions
	notBefore  time.Time
	start      time.Time // launch time of the oldest in-flight execution
	speculated bool
	specGPU    int
}

// scheduler is the shared shard-dispatch state of one concurrent run.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	plan       *Plan
	pol        RetryPolicy
	inject     bool // fault injection configured: stealing/speculation enabled
	verifyP    float64
	verifyMode VerifyMode
	verifyMask int
	seed       uint64

	gpus     []int // worker GPUs, in plan order
	queues   map[int][]*shardTask
	healthy  map[int]bool
	nHealthy int
	tasks    []*shardTask
	nDone    int
	fatal    error

	// Online calibration of host seconds per unit of shard weight
	// (EWMA over committed executions), the base of the speculation
	// deadline — the "gpusim-estimated shard cost" scaled to host time.
	ewma  float64
	ewmaN int

	// Bucket-sum phase wall clock: the span from the first shard launch
	// to the last shard commit (Stats.Phase.BucketSumWall). Distinct
	// from the per-worker busy time summed into Stats.Phase.BucketSum —
	// the wall span never exceeds Σ busy on a saturated multi-GPU run.
	firstStart time.Time
	lastCommit time.Time

	stats FaultStats

	// Per-GPU run outcome for the cross-request health registry:
	// committed counts winning shard executions, breakerFaults the
	// breaker-relevant faults (device losses + verification failures)
	// attributed to the executing device.
	committed     map[int]int
	breakerFaults map[int]int
}

func newScheduler(plan *Plan, opts Options) *scheduler {
	s := &scheduler{
		plan:          plan,
		pol:           opts.Retry.withDefaults(),
		queues:        map[int][]*shardTask{},
		healthy:       map[int]bool{},
		committed:     map[int]int{},
		breakerFaults: map[int]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	if inj := plan.Cluster.Faults; inj != nil {
		s.inject = true
		s.seed = uint64(inj.Config().Seed)
		if inj.Config().Corrupt > 0 && opts.VerifySampling == 0 {
			// Corruption is silent without verification: default to
			// checking every shard unless the caller chose a rate.
			s.verifyP = 1
		}
	}
	if opts.VerifySampling > 0 {
		s.verifyP = opts.VerifySampling
		if s.verifyP > 1 {
			s.verifyP = 1
		}
	}
	s.verifyMode = opts.VerifyMode
	s.verifyMask = opts.VerifyMaskTerms
	for _, a := range plan.Assignments {
		if !s.healthy[a.GPU] {
			s.healthy[a.GPU] = true
			s.gpus = append(s.gpus, a.GPU)
		}
		t := &shardTask{
			a:      a,
			owner:  a.GPU,
			weight: float64(a.BucketHi-a.BucketLo) / float64(plan.Buckets),
			queued: true,
		}
		s.tasks = append(s.tasks, t)
		s.queues[a.GPU] = append(s.queues[a.GPU], t)
	}
	s.nHealthy = len(s.gpus)
	return s
}

func (s *scheduler) wake() {
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) fatalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

func (s *scheduler) snapshot() FaultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// next blocks until GPU g has something to execute. It returns the task
// with its execution index and whether this launch is speculative, or
// (nil, err) on cancellation, or (nil, nil) when g is done for good
// (all shards committed, a fatal error was recorded elsewhere, or g
// itself was lost).
func (s *scheduler) next(ctx context.Context, g int) (*shardTask, int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
		if s.fatal != nil || !s.healthy[g] || s.nDone == len(s.tasks) {
			return nil, 0, false, nil
		}
		now := time.Now()
		if t := s.popLocked(g, now); t != nil {
			seq, spec := s.launchLocked(t, now, false)
			return t, seq, spec, nil
		}
		if s.inject {
			if t := s.stealLocked(g, now); t != nil {
				seq, spec := s.launchLocked(t, now, false)
				return t, seq, spec, nil
			}
			if t := s.overdueLocked(now); t != nil {
				s.stats.SpeculativeLaunches++
				t.speculated = true
				t.specGPU = g
				seq, spec := s.launchLocked(t, now, true)
				return t, seq, spec, nil
			}
		}
		s.cond.Wait()
	}
}

// popLocked removes and returns the first ready task of g's queue.
func (s *scheduler) popLocked(g int, now time.Time) *shardTask {
	q := s.queues[g]
	for i, t := range q {
		if t.notBefore.After(now) {
			continue // in backoff; later entries may still be ready
		}
		s.queues[g] = append(q[:i:i], q[i+1:]...)
		t.queued = false
		return t
	}
	return nil
}

// stealLocked takes the lowest-window ready task queued on another
// healthy GPU — work stealing keeps survivors busy after a device loss
// skews the queues. Queues start window-ordered (the plan emits
// assignments in window order) but do not stay that way: requeueLocked
// appends retried shards at the tail, so the scan must consider every
// ready entry of every queue — stopping at the first ready entry could
// skip a lower-window retried shard and stall the reducer pipeline,
// which consumes windows in order.
func (s *scheduler) stealLocked(g int, now time.Time) *shardTask {
	bestGPU, bestIdx := -1, -1
	for _, g2 := range s.gpus {
		if g2 == g || !s.healthy[g2] {
			continue
		}
		for i, t := range s.queues[g2] {
			if t.notBefore.After(now) {
				continue
			}
			if bestIdx == -1 || t.a.Window < s.queues[bestGPU][bestIdx].a.Window {
				bestGPU, bestIdx = g2, i
			}
		}
	}
	if bestIdx == -1 {
		return nil
	}
	q := s.queues[bestGPU]
	t := q[bestIdx]
	s.queues[bestGPU] = append(q[:bestIdx:bestIdx], q[bestIdx+1:]...)
	t.queued = false
	s.stats.Steals++
	return t
}

// overdueLocked returns an in-flight, not-yet-speculated task past its
// deadline, if any. Deadlines need at least one committed execution to
// calibrate against.
func (s *scheduler) overdueLocked(now time.Time) *shardTask {
	if s.pol.StragglerMultiple <= 0 || s.ewmaN == 0 {
		return nil
	}
	for _, t := range s.tasks {
		if t.done || t.running == 0 || t.speculated {
			continue
		}
		if now.Sub(t.start) > s.deadlineLocked(t) {
			return t
		}
	}
	return nil
}

func (s *scheduler) deadlineLocked(t *shardTask) time.Duration {
	d := time.Duration(s.pol.StragglerMultiple * s.ewma * t.weight * float64(time.Second))
	if d < minSpecDeadline {
		d = minSpecDeadline
	}
	return d
}

func (s *scheduler) launchLocked(t *shardTask, now time.Time, spec bool) (int, bool) {
	t.running++
	t.seq++
	if t.running == 1 {
		t.start = now
	}
	if s.firstStart.IsZero() {
		s.firstStart = now // bucket-sum phase wall clock starts here
	}
	return t.seq, spec
}

// bucketSumWall returns the bucket-sum phase's wall-clock span: first
// shard launch to last shard commit (zero when nothing ever ran).
func (s *scheduler) bucketSumWall() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstStart.IsZero() || s.lastCommit.Before(s.firstStart) {
		return 0
	}
	return s.lastCommit.Sub(s.firstStart)
}

// stragglerWait scales the injected straggler stall to the shard's
// estimated duration times the configured factor.
func (s *scheduler) stragglerWait(t *shardTask, factor float64) time.Duration {
	s.mu.Lock()
	est := s.ewma * t.weight
	s.mu.Unlock()
	d := time.Duration(factor * est * float64(time.Second))
	if d < minStragglerWait {
		d = minStragglerWait
	}
	if d > maxStragglerWait {
		d = maxStragglerWait
	}
	return d
}

func (s *scheduler) countFault(class gpusim.FaultClass) {
	s.mu.Lock()
	switch class {
	case gpusim.FaultTransient:
		s.stats.TransientErrors++
	case gpusim.FaultStraggler:
		s.stats.Stragglers++
	case gpusim.FaultCorrupt:
		s.stats.Corruptions++
	}
	s.mu.Unlock()
}

func (s *scheduler) countVerifyRun() {
	s.mu.Lock()
	s.stats.VerificationRuns++
	s.mu.Unlock()
}

// fail records a failed execution of t on GPU g (transient error, or a
// rejected verification when verify is true) and requeues it with
// backoff unless a sibling execution already committed or is still
// running. Reaching maxShardExecutions turns the failure fatal.
// Verification failures are breaker-relevant and charged to g in the
// cross-request health report; transient errors are routine and are not.
func (s *scheduler) fail(g int, t *shardTask, verify bool) error {
	s.mu.Lock()
	defer func() {
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	t.running--
	if verify {
		s.stats.VerificationFailures++
		s.breakerFaults[g]++
	}
	if t.done {
		return nil
	}
	t.failures++
	if t.seq >= maxShardExecutions {
		var err error
		if verify {
			err = fmt.Errorf("%w: shard window %d buckets [%d,%d) rejected after %d executions",
				ErrVerificationFailed, t.a.Window, t.a.BucketLo, t.a.BucketHi, t.seq)
		} else {
			err = fmt.Errorf("core: shard window %d buckets [%d,%d) failed %d executions",
				t.a.Window, t.a.BucketLo, t.a.BucketHi, t.seq)
		}
		s.fatal = err
		return err
	}
	if t.running == 0 && !t.queued {
		s.requeueLocked(t, time.Now())
		s.stats.Retries++
	}
	return nil
}

// requeueLocked schedules t for re-execution after its capped
// exponential backoff, on its owner while the per-owner attempt budget
// lasts and the owner survives, otherwise on the least-loaded survivor.
func (s *scheduler) requeueLocked(t *shardTask, now time.Time) {
	backoff := s.pol.BaseBackoff
	for i := 1; i < t.failures && backoff < s.pol.MaxBackoff; i++ {
		backoff *= 2
	}
	if backoff > s.pol.MaxBackoff {
		backoff = s.pol.MaxBackoff
	}
	t.notBefore = now.Add(backoff)
	target := t.owner
	if !s.healthy[target] || t.failures >= s.pol.MaxAttempts {
		if g := s.leastLoadedLocked(t.owner); g >= 0 {
			target = g
		}
	}
	if target != t.owner {
		t.owner = target
		s.stats.Reassignments++
	}
	t.queued = true
	s.queues[target] = append(s.queues[target], t)
}

// leastLoadedLocked returns the healthy GPU with the shortest queue,
// preferring any GPU other than `avoid`; -1 if none are healthy.
func (s *scheduler) leastLoadedLocked(avoid int) int {
	best, bestLoad := -1, 0
	for _, g := range s.gpus {
		if !s.healthy[g] {
			continue
		}
		load := len(s.queues[g])
		if g == avoid {
			load++ // soft preference for moving off the failing device
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = g, load
		}
	}
	return best
}

// loseDevice marks g permanently unhealthy and rebalances its queued
// shards (plus t, the shard whose execution killed it) onto the
// survivors. When no survivor remains and work is outstanding it
// records and returns ErrAllGPUsLost.
func (s *scheduler) loseDevice(g int, t *shardTask) error {
	s.mu.Lock()
	defer func() {
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	t.running--
	if s.healthy[g] {
		s.healthy[g] = false
		s.nHealthy--
		s.stats.DevicesLost++
		s.breakerFaults[g]++
	}
	orphans := s.queues[g]
	delete(s.queues, g)
	if !t.done && !t.queued && t.running == 0 {
		t.queued = true // re-entered below via the orphan path
		orphans = append(orphans, t)
	}
	live := orphans[:0]
	for _, o := range orphans {
		if !o.done {
			live = append(live, o)
		}
	}
	if s.nHealthy == 0 {
		if s.nDone < len(s.tasks) {
			s.fatal = ErrAllGPUsLost
			return ErrAllGPUsLost
		}
		return nil
	}
	load := map[int]int{}
	var healthy []int
	for _, g2 := range s.gpus {
		if s.healthy[g2] {
			healthy = append(healthy, g2)
			load[g2] = len(s.queues[g2])
		}
	}
	for i, target := range rebalanceTargets(len(live), load, healthy) {
		o := live[i]
		o.owner = target
		o.queued = true
		s.queues[target] = append(s.queues[target], o)
		s.stats.Reassignments++
	}
	return nil
}

// commit records a completed execution on GPU g. It returns whether
// this execution won (committed the shard); losing sibling results are
// discarded. compSec (compute-only seconds, injected stalls excluded)
// feeds the deadline calibration.
func (s *scheduler) commit(g int, t *shardTask, isSpec bool, compSec float64) bool {
	s.mu.Lock()
	defer func() {
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	t.running--
	if t.weight > 0 && compSec > 0 {
		r := compSec / t.weight
		if s.ewmaN == 0 {
			s.ewma = r
		} else {
			s.ewma += 0.25 * (r - s.ewma)
		}
		s.ewmaN++
	}
	if t.done {
		return false
	}
	t.done = true
	t.failures = 0
	s.nDone++
	s.committed[g]++
	s.lastCommit = time.Now()
	if isSpec {
		s.stats.SpeculativeWins++
	}
	return true
}

// cancelExec retires an execution unwound by run cancellation: the
// in-flight count drops and the shard returns to its owner's queue so
// the scheduler's bookkeeping stays consistent while the workers
// drain, but — unlike fail — no retry or consecutive-failure
// accounting is charged and no backoff is applied. A run being torn
// down is not failing; charging FaultStats.Retries (and pushing the
// shard toward its reassignment budget) for the teardown skewed the
// stats of every cancelled run.
func (s *scheduler) cancelExec(t *shardTask) {
	s.mu.Lock()
	t.running--
	if !t.done && t.running == 0 && !t.queued {
		t.queued = true
		s.queues[t.owner] = append(s.queues[t.owner], t)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// reportHealth folds the run's per-GPU outcome into the cross-request
// health registry. It reports for every worker GPU of the plan — GPUs
// with zero shards and zero faults (e.g. a cancelled run) are a no-op in
// the breaker state machine, so cancellation never skews the breakers.
func (s *scheduler) reportHealth(h *gpusim.HealthRegistry) {
	s.mu.Lock()
	gpus := append([]int(nil), s.gpus...)
	committed := make(map[int]int, len(s.committed))
	for g, v := range s.committed {
		committed[g] = v
	}
	faults := make(map[int]int, len(s.breakerFaults))
	for g, v := range s.breakerFaults {
		faults[g] = v
	}
	s.mu.Unlock()
	for _, g := range gpus {
		h.RecordRun(g, committed[g], faults[g])
	}
}

// doneWindow carries a fully-accumulated window to the host reducer.
type doneWindow struct {
	j   int
	acc []*curve.PointXYZZ
}

// concExec bundles the shared state of one concurrent execution.
type concExec struct {
	c        *curve.Curve
	plan     *Plan
	points   []curve.PointAffine
	prov     *windowProvider
	sched    *scheduler
	reduceCh chan doneWindow
	tr       *telemetry.Tracer // nil = tracing disabled (zero cost)
}

// workerScratch is the per-GPU-worker reusable state: the bucket-sum
// scratch plus the private result buffer shard executions write into.
// Only the accumulator points escape (into the window entry); the
// pointer slice itself is cleared and reused across shards.
type workerScratch struct {
	sum  *bucketScratch
	priv []*curve.PointXYZZ
}

func (e *concExec) newWorkerScratch() *workerScratch {
	return &workerScratch{
		sum:  newBucketScratch(e.c),
		priv: make([]*curve.PointXYZZ, e.plan.Buckets),
	}
}

// execute runs one shard execution on GPU g: consult the fault
// injector, honour the injected fault, compute the partial bucket sums
// into a private buffer, optionally verify them, and commit (first
// result wins). Failed executions requeue through the scheduler.
func (e *concExec) execute(ctx context.Context, g int, t *shardTask, seq int, isSpec bool, st *GPUStats, ws *workerScratch) error {
	fault := e.plan.Cluster.ShardFault(g, t.a.Window, t.a.BucketLo, seq)
	switch fault.Class {
	case gpusim.FaultDeviceLost:
		return e.sched.loseDevice(g, t)
	case gpusim.FaultTransient:
		e.sched.countFault(fault.Class)
		return e.sched.fail(g, t, false)
	}
	entry, sc, err := e.prov.acquire(t.a.Window)
	if err != nil {
		return err
	}
	if entry == nil {
		// A sibling execution won and the window was fully released while
		// this launch was in flight; just retire the execution.
		e.sched.commit(g, t, false, 0)
		return nil
	}
	if fault.Class == gpusim.FaultStraggler {
		e.sched.countFault(fault.Class)
		if err := sleepCtx(ctx, e.sched.stragglerWait(t, fault.Factor)); err != nil {
			// Cancellation mid-stall tears the run down; it is not a shard
			// failure, so no retry/failure accounting is charged (fail here
			// would increment FaultStats.Retries and the shard's
			// consecutive-failure count for a run that is already ending).
			e.sched.cancelExec(t)
			return err
		}
	}
	priv := ws.priv
	for b := t.a.BucketLo; b < t.a.BucketHi; b++ {
		priv[b] = nil // clear this shard's range; the rest is never read
	}
	t0 := time.Now()
	ops, err := sumBucketRange(e.c, e.points, sc.Buckets, t.a.BucketLo, t.a.BucketHi, priv, ws.sum)
	comp := time.Since(t0)
	st.Busy += comp
	traceShard(e.tr, g, t, seq, isSpec, t0, comp)
	if err != nil {
		return err
	}
	if fault.Class == gpusim.FaultCorrupt {
		e.sched.countFault(fault.Class)
		corruptShard(e.c, priv, t.a.BucketLo, t.a.BucketHi)
	}
	if e.sched.verifyP > 0 &&
		gpusim.HashUnit(e.sched.seed, gpusim.TagVerify,
			uint64(t.a.Window), uint64(t.a.BucketLo), uint64(seq)) < e.sched.verifyP {
		e.sched.countVerifyRun()
		var ok bool
		var verr error
		if e.sched.verifyMode == VerifyRecompute {
			ok, verr = e.verifyShard(t, seq, priv, sc.Buckets, ws)
		} else {
			ok, verr = e.verifyShardChallenge(t, seq, priv, sc.Buckets)
		}
		if verr != nil {
			return verr
		}
		if !ok {
			return e.sched.fail(g, t, true)
		}
	}
	if !e.sched.commit(g, t, isSpec, comp.Seconds()) {
		return nil // a sibling execution won the race
	}
	for b := t.a.BucketLo; b < t.a.BucketHi; b++ {
		entry.acc[b] = priv[b]
	}
	st.Shards++
	st.PACCOps += ops
	if e.prov.release(t.a.Window) {
		e.reduceCh <- doneWindow{j: t.a.Window, acc: entry.acc}
	}
	return nil
}

// traceShard records one shard execution's compute span with its
// GPU/attempt/speculative labels. It is the only telemetry touchpoint
// on the shard hot path, and with tracing disabled (nil tracer) it
// must cost zero allocations — TestTraceShardAllocFree pins that, and
// the enabled path is allocation-free too (the span ring is
// pre-allocated).
func traceShard(tr *telemetry.Tracer, g int, t *shardTask, seq int, spec bool, start time.Time, d time.Duration) {
	if tr == nil {
		return
	}
	tr.Record(telemetry.Span{
		Name:        "shard",
		Cat:         "msm",
		Track:       telemetry.TrackGPU(g),
		Start:       start,
		Dur:         d,
		Labeled:     true,
		Window:      int32(t.a.Window),
		BucketLo:    int32(t.a.BucketLo),
		BucketHi:    int32(t.a.BucketHi),
		Attempt:     int32(seq),
		Speculative: spec,
	})
}

// verifyShard is the recompute-based differential reference check
// (Options.VerifyMode = VerifyRecompute). It is NOT cheap: it
// re-executes the entire shard — every point addition the original
// execution performed — to rebuild the reference bucket sums, then
// compares 64-bit random-coefficient linear combinations of the claimed
// and reference accumulators, so each sampled shard costs a full shard
// recompute plus ~2·96 point operations per bucket for the RLC fold. A
// corrupted accumulator escapes only if the coefficients align,
// probability ~2^-64 per check. The default VerifyOutsource mode
// (verifyShardChallenge) avoids the per-bucket recompute-and-RLC
// entirely; this path is kept selectable as the oracle the outsourced
// check is validated against.
func (e *concExec) verifyShard(t *shardTask, seq int, claim []*curve.PointXYZZ, buckets [][]int32, ws *workerScratch) (bool, error) {
	ref := make([]*curve.PointXYZZ, len(claim))
	if _, err := sumBucketRange(e.c, e.points, buckets, t.a.BucketLo, t.a.BucketHi, ref, ws.sum); err != nil {
		return false, err
	}
	seed := gpusim.Hash64(e.sched.seed, gpusim.TagCoeff,
		uint64(t.a.Window), uint64(t.a.BucketLo), uint64(seq))
	return rlcEqual(e.c, claim, ref, t.a.BucketLo, t.a.BucketHi, seed), nil
}

// verifyShardChallenge is the default shard check, the engine tier of
// the 2G2T-style protocol in internal/outsource (Options.VerifyMode =
// VerifyOutsource). The shard's references are re-aggregated into ONE
// challenge accumulator with a secret sparse mask — signed point
// references drawn from a seed the executing device never observes —
// shuffled into the stream, and the claim is accepted iff
//
//	challenge == Σ_b claim[b] + Σⱼ ±P_{mⱼ}
//
// The acceptance comparison costs the shard's bucket count plus the
// mask size in point additions, independent of how many references the
// shard aggregates; a corrupted accumulator vector escapes only if its
// per-bucket perturbations cancel exactly in the aggregate, which a
// mask-oblivious corruption cannot arrange. Unlike verifyShard there is
// no per-bucket reference reconstruction and no RLC fold — the
// challenge pass is a plain addition stream shaped exactly like the
// bucket-sum kernel, i.e. work a device could execute, not host-side
// recomputation of the claim.
func (e *concExec) verifyShardChallenge(t *shardTask, seq int, claim []*curve.PointXYZZ, buckets [][]int32) (bool, error) {
	rnd := outsource.NewSeededReader(gpusim.Hash64(e.sched.seed, gpusim.TagChallenge,
		uint64(t.a.Window), uint64(t.a.BucketLo), uint64(seq)))
	terms := e.sched.verifyMask
	if terms == 0 {
		terms = outsource.DefaultMaskTerms
	}
	mask, err := outsource.NewMask(len(e.points), terms, rnd)
	if err != nil {
		return false, err
	}
	a := e.c.NewAdder()
	negY := e.c.Fp.NewElement()
	acc := func(dst *curve.PointXYZZ, ref int32) error {
		negated := ref < 0
		if negated {
			ref = -ref
		}
		if ref < 1 || int(ref) > len(e.points) {
			return fmt.Errorf("core: challenge references point %d outside the %d-point input", ref, len(e.points))
		}
		pt := &e.points[int(ref)-1]
		if pt.Inf {
			return nil
		}
		if negated {
			e.c.Fp.Neg(negY, pt.Y)
			neg := curve.PointAffine{X: pt.X, Y: negY}
			a.Acc(dst, &neg)
			return nil
		}
		a.Acc(dst, pt)
		return nil
	}
	// Challenge pass: the shard's reference stream plus the mask terms,
	// aggregated into a single accumulator.
	challenge := e.c.NewXYZZ()
	for b := t.a.BucketLo; b < t.a.BucketHi; b++ {
		for _, ref := range buckets[b] {
			if err := acc(challenge, ref); err != nil {
				return false, err
			}
		}
	}
	for _, ref := range mask.Refs {
		if err := acc(challenge, ref); err != nil {
			return false, err
		}
	}
	// Claim side: fold the claimed accumulators and apply the secret
	// mask correction — bucket count + mask size group operations.
	fold := e.c.NewXYZZ()
	for b := t.a.BucketLo; b < t.a.BucketHi; b++ {
		if claim[b] != nil {
			a.Add(fold, claim[b])
		}
	}
	a.Add(fold, mask.Sum(e.c, e.points))
	return e.c.EqualXYZZ(challenge, fold), nil
}

// corruptShard realizes a corrupted-result fault by doubling the first
// nontrivial accumulator — still a valid curve point, but the wrong
// partial sum, exactly what the RLC verification must catch.
func corruptShard(c *curve.Curve, acc []*curve.PointXYZZ, lo, hi int) bool {
	a := c.NewAdder()
	for b := lo; b < hi; b++ {
		if acc[b] != nil && !acc[b].IsInf() {
			a.Double(acc[b])
			return true
		}
	}
	return false
}

// rlcEqual compares Σ r_b·claim[b] with Σ r_b·ref[b] over [lo, hi) for
// deterministic pseudo-random 64-bit coefficients r_b derived from
// seed. A corrupted accumulator escapes only if the coefficients align,
// probability ~2^-64 per check (the coefficients were 16-bit until
// PR 10, which left a ~2^-16 per-check escape window on the reference
// verification path).
func rlcEqual(c *curve.Curve, claim, ref []*curve.PointXYZZ, lo, hi int, seed uint64) bool {
	a := c.NewAdder()
	sumClaim, sumRef := c.NewXYZZ(), c.NewXYZZ()
	h := seed
	for b := lo; b < hi; b++ {
		h = gpusim.Mix64(h)
		r := h
		if r == 0 {
			r = 1
		}
		if claim[b] != nil {
			a.Add(sumClaim, mulSmall(c, a, claim[b], r))
		}
		if ref[b] != nil {
			a.Add(sumRef, mulSmall(c, a, ref[b], r))
		}
	}
	return c.EqualXYZZ(sumClaim, sumRef)
}

// mulSmall computes k·p for a short (≤64-bit) k by double-and-add.
func mulSmall(c *curve.Curve, a *curve.Adder, p *curve.PointXYZZ, k uint64) *curve.PointXYZZ {
	out := c.NewXYZZ()
	for i := bits.Len64(k) - 1; i >= 0; i-- {
		a.Double(out)
		if k>>uint(i)&1 == 1 {
			a.Add(out, p)
		}
	}
	return out
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// runConcurrent executes the plan on the fault-tolerant scheduler. When
// every simulated GPU is lost mid-run and the configuration allows it,
// the run degrades to the serial host engine over the same inputs —
// throughput degrades, correctness does not.
func runConcurrent(ctx context.Context, points []curve.PointAffine, scalars []bigint.Nat, plan *Plan, opts Options) (*Result, error) {
	res, faults, err := runScheduled(ctx, points, scalars, plan, opts)
	if err == nil {
		res.Stats.Faults = faults
		return res, nil
	}
	if errors.Is(err, ErrAllGPUsLost) {
		if inj := plan.Cluster.Faults; inj != nil && !inj.Config().DisableFallback {
			sres, serr := runSerial(ctx, points, scalars, plan, opts)
			if serr != nil {
				return nil, serr
			}
			faults.DegradedToSerial = true
			sres.Stats.Faults = faults
			return sres, nil
		}
	}
	return nil, err
}

// runScheduled is the concurrent engine body: one worker goroutine per
// simulated GPU pulls shards from the scheduler, and a host reducer
// goroutine bucket-reduces each window as soon as its last shard
// commits — overlapping the reduce of window j with the bucket-sum of
// window j+1 (§3.2.3). Cancellation is honoured at shard boundaries, at
// backoff/speculation waits, and every few hundred buckets inside the
// reduce itself.
func runScheduled(ctx context.Context, points []curve.PointAffine, scalars []bigint.Nat, plan *Plan, opts Options) (*Result, FaultStats, error) {
	c := plan.Curve
	res := &Result{Plan: plan}
	prov := newWindowProvider(plan, scalars)
	prov.tr = opts.Tracer
	sched := newScheduler(plan, opts)
	if h := plan.Cluster.Health; h != nil {
		// Report on every exit path — success, fault-induced failure,
		// and cancellation alike — so cross-request breaker state never
		// misses a device loss that also failed the run.
		defer sched.reportHealth(h)
	}

	windowSums := make([]*curve.PointXYZZ, plan.Windows)
	reduceCh := make(chan doneWindow, plan.Windows)
	exec := &concExec{c: c, plan: plan, points: points, prov: prov, sched: sched, reduceCh: reduceCh, tr: opts.Tracer}

	grp, gctx := newGroup(ctx)

	// The waker unblocks workers parked in next() so backoff expiries,
	// speculation deadlines and cancellation are all observed promptly.
	tickDone := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-tickDone:
				return
			case <-tick.C:
				sched.wake()
			}
		}
	}()
	defer func() {
		close(tickDone)
		tickWG.Wait()
	}()

	var (
		statsMu   sync.Mutex
		workerWG  sync.WaitGroup
		reduceOps uint64
		reduceDur time.Duration
	)
	res.Stats.PerGPU = make([]GPUStats, len(sched.gpus))
	for slot, g := range sched.gpus {
		workerWG.Add(1)
		slot, g := slot, g
		grp.Go(func() error {
			defer workerWG.Done()
			st := GPUStats{GPU: g}
			ws := exec.newWorkerScratch()
			defer func() {
				statsMu.Lock()
				res.Stats.PerGPU[slot] = st
				res.Stats.PACCOps += st.PACCOps
				res.Stats.Phase.BucketSum += st.Busy
				statsMu.Unlock()
			}()
			for {
				t, seq, spec, err := sched.next(gctx, g)
				if err != nil {
					return err
				}
				if t == nil {
					// Finished, lost, or a fatal error elsewhere.
					return sched.fatalErr()
				}
				if err := exec.execute(gctx, g, t, seq, spec, &st, ws); err != nil {
					return err
				}
			}
		})
	}
	go func() {
		workerWG.Wait()
		close(reduceCh)
	}()
	grp.Go(func() error {
		adder := c.NewAdder()
		for d := range reduceCh {
			t0 := time.Now()
			pt, ops, err := reduceBuckets(gctx, c, d.acc, adder)
			dur := time.Since(t0)
			reduceDur += dur
			reduceOps += ops
			if err != nil {
				return err
			}
			if tr := opts.Tracer; tr != nil {
				tr.Record(telemetry.Span{Name: "bucket-reduce", Cat: "msm", Track: telemetry.TrackHost,
					Start: t0, Dur: dur, Labeled: true, Window: int32(d.j)})
			}
			windowSums[d.j] = pt
		}
		return nil
	})
	if err := grp.Wait(); err != nil {
		return nil, sched.snapshot(), err
	}

	res.Stats.Scatter = prov.stats
	res.Stats.Phase.Scatter = prov.scatterTime
	res.Stats.ReduceOps = reduceOps
	res.Stats.Phase.BucketReduce = reduceDur
	res.Stats.Phase.BucketSumWall = sched.bucketSumWall()
	if err := windowReduce(ctx, plan, windowSums, res, opts.Tracer); err != nil {
		return nil, sched.snapshot(), err
	}
	return res, sched.snapshot(), nil
}
