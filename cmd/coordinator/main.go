// Command coordinator fronts a fleet of provd worker nodes: workers
// join with -join, keep heartbeat leases alive, and the coordinator
// routes /v1/prove jobs to them with circuit affinity, per-node circuit
// breakers, hedged dispatch and lost-lease re-dispatch (see
// internal/cluster).
//
// Serve mode (default):
//
//	coordinator -listen :9090 -gpus 4
//	provd -listen :8081 -join http://localhost:9090 -advertise http://localhost:8081
//	curl -s -X POST localhost:9090/v1/prove -d '{"circuit":"synthetic","seed":7}'
//	curl -s localhost:9090/v1/healthz
//
// -gpus sizes the coordinator's own degrade-to-local proving service,
// which also verifies every remote proof (the corrupted-response
// catch); -gpus 0 disables it, leaving the cluster remote-only.
//
// Smoke mode brings up a coordinator and two in-process worker nodes on
// loopback listeners, runs N jobs through the cluster, kills one worker
// abruptly mid-run (no deregister — heartbeats just stop, like a
// crashed process) and requires every job to complete via failover. It
// exits non-zero on any failure — the CI entry point:
//
//	coordinator -smoke 8
//
// MSM smoke mode (-msm-smoke N) brings up the same loopback topology
// but drives N outsourced MSMs through /v1/msm, with one of the two
// workers lying on every shard (its claims are valid curve points
// shifted by the generator — only the constant-size check can tell).
// Every result must come back byte-identical to the serial reference,
// and the run fails unless at least one rejection actually fired:
//
//	coordinator -msm-smoke 4
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/serial"
	"distmsm/internal/service"
	"distmsm/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", ":9090", "HTTP listen address (serve mode)")
		gpus        = flag.Int("gpus", 4, "simulated GPUs for the local fallback/verification service (0 disables local proving)")
		constraints = flag.Int("constraints", 512, "registered synthetic circuit size")
		lease       = flag.Duration("lease", 10*time.Second, "node heartbeat lease; a node that misses it is lost and its jobs re-dispatched")
		hedgeMult   = flag.Float64("hedge-multiple", 4, "hedge a dispatch once it is this multiple of the EWMA latency")
		maxAttempts = flag.Int("max-attempts", 4, "max nodes one job is dispatched to before giving up on remotes")
		timeout     = flag.Duration("timeout", time.Minute, "default per-job deadline")
		dispatchTO  = flag.Duration("dispatch-timeout", 15*time.Second, "cap on one dispatch attempt to one node (0 = bounded only by the job deadline)")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		smoke       = flag.Int("smoke", 0, "run an N-job two-worker failover smoke and exit instead of serving")
		msmSmoke    = flag.Int("msm-smoke", 0, "run an N-job outsourced-MSM smoke with one lying worker and exit")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := options{
		listen: *listen, gpus: *gpus, constraints: *constraints,
		lease: *lease, hedgeMult: *hedgeMult, maxAttempts: *maxAttempts,
		timeout: *timeout, dispatchTO: *dispatchTO, drain: *drain, smoke: *smoke,
		msmSmoke: *msmSmoke,
	}
	var err error
	switch {
	case o.msmSmoke > 0:
		err = runMSMSmoke(ctx, o)
	case o.smoke > 0:
		err = runSmoke(ctx, o)
	default:
		err = run(ctx, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		os.Exit(1)
	}
}

type options struct {
	listen            string
	gpus, constraints int
	lease             time.Duration
	hedgeMult         float64
	maxAttempts       int
	timeout           time.Duration
	dispatchTO        time.Duration
	drain             time.Duration
	smoke             int
	msmSmoke          int
}

// newLocalService builds the coordinator's in-process proving service:
// the degrade-to-local backend and the remote-proof verifier.
func newLocalService(ctx context.Context, gpus, constraints int, metrics *telemetry.Registry) (*service.Service, error) {
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(service.Config{Cluster: cl, Metrics: metrics})
	if err != nil {
		return nil, err
	}
	if err := svc.RegisterSynthetic(ctx, "synthetic", constraints); err != nil {
		return nil, err
	}
	return svc, nil
}

func run(ctx context.Context, o options) error {
	metrics := telemetry.NewRegistry()
	var local *service.Service
	cfg := cluster.Config{
		Lease:           o.lease,
		HedgeMultiple:   o.hedgeMult,
		MaxAttempts:     o.maxAttempts,
		DefaultTimeout:  o.timeout,
		DispatchTimeout: o.dispatchTO,
		Metrics:         metrics,
	}
	if o.gpus > 0 {
		svc, err := newLocalService(ctx, o.gpus, o.constraints, nil)
		if err != nil {
			return err
		}
		local = svc
		cfg.Local = local
		fmt.Printf("coordinator: local fallback service up (%d GPUs, circuit %q)\n", o.gpus, "synthetic")
	} else {
		fmt.Println("coordinator: remote-only (no local fallback, remote proofs unverified)")
	}
	coord := cluster.NewCoordinator(cfg)
	srv := &http.Server{Addr: o.listen, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("coordinator: listening on %s (lease %v)\n", o.listen, o.lease)

	select {
	case err := <-errCh:
		coord.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Printf("coordinator: shutting down (drain budget %v)\n", o.drain)
	shCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	_ = srv.Shutdown(shCtx)
	coord.Close()
	if local != nil {
		if err := local.Shutdown(shCtx); err != nil {
			fmt.Printf("coordinator: drain budget exhausted, cancelled remaining local jobs: %v\n", err)
		}
	}
	fmt.Println("coordinator: drained")
	return nil
}

// smokeWorker is one in-process worker node: a proving service on a
// loopback listener plus the cluster agent that keeps it registered.
type smokeWorker struct {
	svc   *service.Service
	srv   *http.Server
	ln    net.Listener
	agent *cluster.Agent
}

func startSmokeWorker(ctx context.Context, id, coordURL string, constraints int, interval time.Duration) (*smokeWorker, error) {
	svc, err := newLocalService(ctx, 2, constraints, nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	agent, err := cluster.StartAgent(cluster.AgentConfig{
		Coordinator: coordURL,
		NodeID:      id,
		Addr:        "http://" + ln.Addr().String(),
		Circuits:    []string{"synthetic"},
		Workers:     svc.Workers(),
		Interval:    interval,
		Load: func() (int, int) {
			st := svc.Stats()
			return st.Queued, st.InFlight
		},
		Logf: func(format string, args ...any) {
			fmt.Printf("coordinator: "+format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	return &smokeWorker{svc: svc, srv: srv, ln: ln, agent: agent}, nil
}

// crash simulates the worker process dying: the agent stops without
// deregistering and the listener closes mid-connection.
func (w *smokeWorker) crash() {
	w.agent.Kill()
	_ = w.srv.Close()
}

func (w *smokeWorker) stop(ctx context.Context) {
	w.agent.Stop()
	_ = w.srv.Shutdown(ctx)
	_ = w.svc.Shutdown(ctx)
}

// runSmoke is the cluster failover smoke: coordinator + two workers,
// one crashed mid-run, every job must still complete — the survivors
// and the lost-lease re-dispatch have to absorb the failure.
func runSmoke(ctx context.Context, o options) error {
	start := time.Now()
	const constraints = 200
	metrics := telemetry.NewRegistry()
	local, err := newLocalService(ctx, 2, constraints, nil)
	if err != nil {
		return err
	}
	lease := 600 * time.Millisecond
	coord := cluster.NewCoordinator(cluster.Config{
		Local:           local,
		Lease:           lease,
		DefaultTimeout:  o.timeout,
		DispatchTimeout: 10 * time.Second,
		Metrics:         metrics,
	})
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() { _ = srv.Serve(ln) }()
	coordURL := "http://" + ln.Addr().String()
	fmt.Printf("coordinator: smoke coordinator on %s (lease %v)\n", coordURL, lease)

	workers := make([]*smokeWorker, 2)
	for i := range workers {
		w, err := startSmokeWorker(ctx, fmt.Sprintf("smoke-worker-%d", i), coordURL, constraints, lease/3)
		if err != nil {
			return err
		}
		workers[i] = w
		fmt.Printf("coordinator: smoke worker %d on %s\n", i, w.ln.Addr())
	}
	// Wait until both workers hold leases before loading the cluster.
	deadline := time.Now().Add(5 * time.Second)
	for coord.AliveNodes() < len(workers) {
		if time.Now().After(deadline) {
			return fmt.Errorf("smoke: only %d of %d workers registered", coord.AliveNodes(), len(workers))
		}
		time.Sleep(20 * time.Millisecond)
	}

	n := o.smoke
	type result struct {
		seed  int64
		proof []byte
		err   error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i + 1)
			proof, err := coord.Prove(ctx, cluster.ProveRequest{Circuit: "synthetic", Seed: seed})
			results[i] = result{seed: seed, proof: proof, err: err}
		}(i)
	}
	// Kill worker 0 while the batch is in flight: its lease expires, its
	// jobs re-dispatch to worker 1 (or degrade to local), and the batch
	// must still complete.
	time.Sleep(lease / 2)
	fmt.Println("coordinator: crashing smoke worker 0 mid-batch")
	workers[0].crash()
	wg.Wait()

	failed := 0
	for _, r := range results {
		if r.err != nil {
			failed++
			fmt.Printf("coordinator: smoke seed %d FAILED: %v\n", r.seed, r.err)
			continue
		}
		ok, err := local.VerifyProof("synthetic", r.seed, r.proof)
		if err != nil || !ok {
			failed++
			fmt.Printf("coordinator: smoke seed %d proof did not verify (ok=%v err=%v)\n", r.seed, ok, err)
		}
	}
	st := coord.Stats()
	fmt.Printf("coordinator: smoke stats: %d registrations, %d lost nodes, %d recovered jobs, %d redispatches, %d hedges (%d won), %d local fallbacks\n",
		st.Registrations, st.LostNodes, st.LostJobsRecovered, st.Redispatches, st.Hedges, st.HedgeWins, st.LocalFallbacks)

	shCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	workers[1].stop(shCtx)
	_ = srv.Shutdown(shCtx)
	coord.Close()
	if err := local.Shutdown(shCtx); err != nil {
		return fmt.Errorf("smoke: local drain: %w", err)
	}
	if failed > 0 {
		return fmt.Errorf("smoke: %d of %d jobs failed after a worker crash", failed, n)
	}
	if st.LostNodes == 0 {
		return errors.New("smoke: the crashed worker was never marked lost — the failover path did not run")
	}
	fmt.Printf("coordinator: smoke ok — %d jobs survived a worker crash in %v\n", n, time.Since(start).Round(time.Millisecond))
	return nil
}

// runMSMSmoke is the verifiable-outsourcing smoke: coordinator + two
// loopback provd workers, one of them lying on every MSM shard (its
// HTTP client is wrapped with a corrupt-certain node injector, so its
// claims are valid curve points shifted by the generator). Every result
// must be byte-identical to the serial reference, and the run fails
// unless the constant-size check actually rejected something — a smoke
// in which the liar was never caught is a broken smoke.
func runMSMSmoke(ctx context.Context, o options) error {
	start := time.Now()
	const constraints = 200
	lease := 600 * time.Millisecond

	// Worker services and listeners come up first, agents later: the
	// coordinator's DialWorker needs the liar's address before anyone
	// registers.
	type msmWorkerNode struct {
		svc *service.Service
		srv *http.Server
		ln  net.Listener
	}
	nodes := make([]msmWorkerNode, 2)
	for i := range nodes {
		svc, err := newLocalService(ctx, 2, constraints, nil)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go func() { _ = srv.Serve(ln) }()
		nodes[i] = msmWorkerNode{svc: svc, srv: srv, ln: ln}
	}
	liarURL := "http://" + nodes[0].ln.Addr().String()
	inj, err := cluster.NewNodeInjector(cluster.NodeFaultConfig{Seed: 1, Corrupt: 1})
	if err != nil {
		return err
	}
	coord := cluster.NewCoordinator(cluster.Config{
		Lease:           lease,
		DefaultTimeout:  o.timeout,
		DispatchTimeout: 10 * time.Second,
		DialWorker: func(addr string) cluster.WorkerClient {
			wc := cluster.NewHTTPWorkerClient(addr)
			if addr == liarURL {
				return inj.WrapClient(0, wc)
			}
			return wc
		},
	})
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go func() { _ = srv.Serve(ln) }()
	coordURL := "http://" + ln.Addr().String()
	fmt.Printf("coordinator: msm-smoke coordinator on %s, lying worker on %s\n", coordURL, liarURL)

	agents := make([]*cluster.Agent, len(nodes))
	for i, w := range nodes {
		agent, err := cluster.StartAgent(cluster.AgentConfig{
			Coordinator: coordURL,
			NodeID:      fmt.Sprintf("msm-worker-%d", i),
			Addr:        "http://" + w.ln.Addr().String(),
			Circuits:    []string{"synthetic"},
			Workers:     w.svc.Workers(),
			Interval:    lease / 3,
			Logf: func(format string, args ...any) {
				fmt.Printf("coordinator: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		agents[i] = agent
	}
	deadline := time.Now().Add(5 * time.Second)
	for coord.AliveNodes() < len(nodes) {
		if time.Now().After(deadline) {
			return fmt.Errorf("msm-smoke: only %d of %d workers registered", coord.AliveNodes(), len(nodes))
		}
		time.Sleep(20 * time.Millisecond)
	}

	failed := 0
	for i := 0; i < o.msmSmoke; i++ {
		req := cluster.MSMRequest{Curve: "BN254", PointSeed: uint64(i + 1), ScalarSeed: int64(i + 101), N: 96 + 8*i}
		got, err := coord.MSM(ctx, req)
		if err != nil {
			failed++
			fmt.Printf("coordinator: msm-smoke job %d FAILED: %v\n", i, err)
			continue
		}
		crv, _ := curve.ByName(req.Curve)
		ref := crv.MSMReference(crv.SamplePoints(req.N, req.PointSeed), crv.SampleScalars(req.N, req.ScalarSeed))
		aff := crv.ToAffine(ref)
		if want := serial.MarshalPoint(crv, &aff, false); !bytes.Equal(got, want) {
			failed++
			fmt.Printf("coordinator: msm-smoke job %d diverges from the serial reference — a lie got through\n", i)
		}
	}
	st := coord.Stats()
	fmt.Printf("coordinator: msm-smoke stats: %d checks, %d rejects, %d corrupt claims, %d redispatches, %d local fallbacks\n",
		st.MSMChecks, st.MSMRejects, st.CorruptProofs, st.Redispatches, st.LocalFallbacks)

	shCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	for i, w := range nodes {
		agents[i].Stop()
		_ = w.srv.Shutdown(shCtx)
		_ = w.svc.Shutdown(shCtx)
	}
	_ = srv.Shutdown(shCtx)
	coord.Close()
	if failed > 0 {
		return fmt.Errorf("msm-smoke: %d of %d jobs failed", failed, o.msmSmoke)
	}
	if st.MSMRejects == 0 {
		return errors.New("msm-smoke: the lying worker was never rejected — the outsourced check did not run")
	}
	fmt.Printf("coordinator: msm-smoke ok — %d MSMs correct with a lying worker, %d lies caught, in %v\n",
		o.msmSmoke, st.MSMRejects, time.Since(start).Round(time.Millisecond))
	return nil
}
