// Package kernel models the GPU elliptic-curve kernels of DistMSM §4 at
// the microarchitectural level: the dataflow graphs of PADD (Algorithm 1)
// and PACC (Algorithm 4), register-pressure (live big-integer) accounting,
// the brute-force optimal execution-sequence search of §4.2.1, the
// explicit shared-memory spilling of §4.2.2, and the occupancy/throughput
// model the GPU simulator prices kernels with.
package kernel

import "fmt"

// Op is one scheduling unit of an EC kernel: a modular multiplication or
// an addition/subtraction on big integers, producing Dst from Srcs.
type Op struct {
	Name string
	Dst  string
	Srcs []string
	Mul  bool // modular multiplication (needs a Montgomery scratch integer)
}

// Graph is the dataflow graph of a kernel: Inputs are live on entry,
// Outputs must be live on exit, and Ops is listed in the straightforward
// (paper pseudocode) order.
type Graph struct {
	Name    string
	Ops     []Op
	Inputs  []string
	Outputs []string
}

// PACCGraph returns the dataflow graph of the dedicated point-accumulation
// kernel (Algorithm 4): acc(Xa,Ya,ZZa,ZZZa) += P(Xp,Yp), 10 multiplications.
func PACCGraph() *Graph {
	return &Graph{
		Name:    "PACC",
		Inputs:  []string{"Xa", "Ya", "ZZa", "ZZZa", "Xp", "Yp"},
		Outputs: []string{"X3", "Y3", "ZZ3", "ZZZ3"},
		Ops: []Op{
			{"U2=Xp*ZZa", "U2", []string{"Xp", "ZZa"}, true},
			{"S2=Yp*ZZZa", "S2", []string{"Yp", "ZZZa"}, true},
			{"P=U2-Xa", "P", []string{"U2", "Xa"}, false},
			{"R=S2-Ya", "R", []string{"S2", "Ya"}, false},
			{"PP=P*P", "PP", []string{"P"}, true},
			{"PPP=PP*P", "PPP", []string{"PP", "P"}, true},
			{"Q=Xa*PP", "Q", []string{"Xa", "PP"}, true},
			{"V0=R*R", "V0", []string{"R"}, true},
			{"V1=V0-PPP", "V1", []string{"V0", "PPP"}, false},
			{"V2=V1-Q", "V2", []string{"V1", "Q"}, false},
			{"X3=V2-Q", "X3", []string{"V2", "Q"}, false},
			{"T=Q-X3", "T", []string{"Q", "X3"}, false},
			{"Y0=R*T", "Y0", []string{"R", "T"}, true},
			{"T2=Ya*PPP", "T2", []string{"Ya", "PPP"}, true},
			{"Y3=Y0-T2", "Y3", []string{"Y0", "T2"}, false},
			{"ZZ3=ZZa*PP", "ZZ3", []string{"ZZa", "PP"}, true},
			{"ZZZ3=ZZZa*PPP", "ZZZ3", []string{"ZZZa", "PPP"}, true},
		},
	}
}

// PADDGraph returns the dataflow graph of the general PADD kernel
// (Algorithm 1): both operands in XYZZ form, 14 multiplications.
func PADDGraph() *Graph {
	return &Graph{
		Name:    "PADD",
		Inputs:  []string{"X1", "Y1", "ZZ1", "ZZZ1", "X2", "Y2", "ZZ2", "ZZZ2"},
		Outputs: []string{"X3", "Y3", "ZZ3", "ZZZ3"},
		Ops: []Op{
			{"U1=X1*ZZ2", "U1", []string{"X1", "ZZ2"}, true},
			{"U2=X2*ZZ1", "U2", []string{"X2", "ZZ1"}, true},
			{"S1=Y1*ZZZ2", "S1", []string{"Y1", "ZZZ2"}, true},
			{"S2=Y2*ZZZ1", "S2", []string{"Y2", "ZZZ1"}, true},
			{"P=U2-U1", "P", []string{"U2", "U1"}, false},
			{"R=S2-S1", "R", []string{"S2", "S1"}, false},
			{"PP=P*P", "PP", []string{"P"}, true},
			{"PPP=PP*P", "PPP", []string{"PP", "P"}, true},
			{"Q=U1*PP", "Q", []string{"U1", "PP"}, true},
			{"V0=R*R", "V0", []string{"R"}, true},
			{"V1=V0-PPP", "V1", []string{"V0", "PPP"}, false},
			{"V2=V1-Q", "V2", []string{"V1", "Q"}, false},
			{"X3=V2-Q", "X3", []string{"V2", "Q"}, false},
			{"T=Q-X3", "T", []string{"Q", "X3"}, false},
			{"Y0=R*T", "Y0", []string{"R", "T"}, true},
			{"T1=S1*PPP", "T1", []string{"S1", "PPP"}, true},
			{"Y3=Y0-T1", "Y3", []string{"Y0", "T1"}, false},
			{"ZZ=ZZ1*ZZ2", "ZZ", []string{"ZZ1", "ZZ2"}, true},
			{"ZZ3=ZZ*PP", "ZZ3", []string{"ZZ", "PP"}, true},
			{"ZZZ=ZZZ1*ZZZ2", "ZZZ", []string{"ZZZ1", "ZZZ2"}, true},
			{"ZZZ3=ZZZ*PPP", "ZZZ3", []string{"ZZZ", "PPP"}, true},
		},
	}
}

// PDBLGraph returns the dataflow graph of the point-doubling kernel
// (dbl-2008-s-1 in XYZZ coordinates, a = 0 variant): 2*(X1,Y1,ZZ1,ZZZ1).
func PDBLGraph() *Graph {
	return &Graph{
		Name:    "PDBL",
		Inputs:  []string{"X1", "Y1", "ZZ1", "ZZZ1"},
		Outputs: []string{"X3", "Y3", "ZZ3", "ZZZ3"},
		Ops: []Op{
			{"U=2*Y1", "U", []string{"Y1"}, false},
			{"V=U*U", "V", []string{"U"}, true},
			{"W=U*V", "W", []string{"U", "V"}, true},
			{"S=X1*V", "S", []string{"X1", "V"}, true},
			{"X2sq=X1*X1", "X2sq", []string{"X1"}, true},
			{"M=3*X2sq", "M", []string{"X2sq"}, false},
			{"M2=M*M", "M2", []string{"M"}, true},
			{"X3a=M2-S", "X3a", []string{"M2", "S"}, false},
			{"X3=X3a-S", "X3", []string{"X3a", "S"}, false},
			{"SX=S-X3", "SX", []string{"S", "X3"}, false},
			{"Y0=M*SX", "Y0", []string{"M", "SX"}, true},
			{"WY=W*Y1", "WY", []string{"W", "Y1"}, true},
			{"Y3=Y0-WY", "Y3", []string{"Y0", "WY"}, false},
			{"ZZ3=V*ZZ1", "ZZ3", []string{"V", "ZZ1"}, true},
			{"ZZZ3=W*ZZZ1", "ZZZ3", []string{"W", "ZZZ1"}, true},
		},
	}
}

// MulCount returns the number of modular multiplications in the graph.
func (g *Graph) MulCount() int {
	n := 0
	for _, op := range g.Ops {
		if op.Mul {
			n++
		}
	}
	return n
}

// Validate checks internal consistency: every source is an input or a
// prior definition, definitions are unique, and outputs are defined.
func (g *Graph) Validate() error {
	defined := map[string]bool{}
	for _, in := range g.Inputs {
		defined[in] = true
	}
	for _, op := range g.Ops {
		for _, s := range op.Srcs {
			if !defined[s] {
				return fmt.Errorf("kernel %s: op %s uses undefined %s", g.Name, op.Name, s)
			}
		}
		if defined[op.Dst] {
			return fmt.Errorf("kernel %s: op %s redefines %s", g.Name, op.Name, op.Dst)
		}
		defined[op.Dst] = true
	}
	for _, out := range g.Outputs {
		if !defined[out] {
			return fmt.Errorf("kernel %s: output %s never defined", g.Name, out)
		}
	}
	return nil
}
