package pairing

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"distmsm/internal/curve"
)

func engine(t testing.TB) *Pairing {
	t.Helper()
	e, err := NewBN254()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestE2FieldAxioms(t *testing.T) {
	e := engine(t)
	tw := e.T
	rnd := rand.New(rand.NewSource(1))
	f := e.Fp
	for iter := 0; iter < 30; iter++ {
		a := E2{f.Rand(rnd), f.Rand(rnd)}
		b := E2{f.Rand(rnd), f.Rand(rnd)}
		c := E2{f.Rand(rnd), f.Rand(rnd)}
		ab, ba := tw.E2Zero(), tw.E2Zero()
		tw.E2Mul(&ab, &a, &b)
		tw.E2Mul(&ba, &b, &a)
		if !tw.E2Equal(&ab, &ba) {
			t.Fatal("E2 mul not commutative")
		}
		// associativity
		l, r := tw.E2Zero(), tw.E2Zero()
		tw.E2Mul(&l, &ab, &c)
		tw.E2Mul(&r, &b, &c)
		tw.E2Mul(&r, &a, &r)
		if !tw.E2Equal(&l, &r) {
			t.Fatal("E2 mul not associative")
		}
		// square == mul
		sq, mm := tw.E2Zero(), tw.E2Zero()
		tw.E2Square(&sq, &a)
		tw.E2Mul(&mm, &a, &a)
		if !tw.E2Equal(&sq, &mm) {
			t.Fatal("E2 square != mul")
		}
		// inverse
		if !tw.E2IsZero(&a) {
			inv := tw.E2Zero()
			tw.E2Inv(&inv, &a)
			tw.E2Mul(&inv, &inv, &a)
			one := tw.E2One()
			if !tw.E2Equal(&inv, &one) {
				t.Fatal("E2 inverse wrong")
			}
		}
		// u² = -1: (0+u)² = -1
		u := E2{f.Zero(), f.One()}
		u2 := tw.E2Zero()
		tw.E2Square(&u2, &u)
		negOne := tw.E2One()
		tw.E2Neg(&negOne, &negOne)
		if !tw.E2Equal(&u2, &negOne) {
			t.Fatal("u² != -1")
		}
	}
}

func TestE6E12Axioms(t *testing.T) {
	e := engine(t)
	tw := e.T
	rnd := rand.New(rand.NewSource(2))
	f := e.Fp
	randE2 := func() E2 { return E2{f.Rand(rnd), f.Rand(rnd)} }
	randE6 := func() E6 { return E6{randE2(), randE2(), randE2()} }
	randE12 := func() E12 { return E12{randE6(), randE6()} }

	for iter := 0; iter < 10; iter++ {
		a, b, c := randE6(), randE6(), randE6()
		// distributivity in E6
		l, r, s := tw.E6Zero(), tw.E6Zero(), tw.E6Zero()
		tw.E6Add(&s, &b, &c)
		tw.E6Mul(&l, &a, &s)
		tw.E6Mul(&r, &a, &b)
		tw.E6Mul(&s, &a, &c)
		tw.E6Add(&r, &r, &s)
		if !tw.E6Equal(&l, &r) {
			t.Fatal("E6 not distributive")
		}
		// E6 inverse
		inv := tw.E6Zero()
		tw.E6Inv(&inv, &a)
		tw.E6Mul(&inv, &inv, &a)
		one6 := tw.E6One()
		if !tw.E6Equal(&inv, &one6) {
			t.Fatal("E6 inverse wrong")
		}
		// v³ = ξ: cube v and compare with ξ embedded in C0.
		v := tw.E6Zero()
		v.C1 = tw.E2One()
		v3 := tw.E6Zero()
		tw.E6Mul(&v3, &v, &v)
		tw.E6Mul(&v3, &v3, &v)
		xi := E2{f.FromUint64(9), f.One()}
		want := tw.E6Zero()
		tw.E2Set(&want.C0, &xi)
		if !tw.E6Equal(&v3, &want) {
			t.Fatal("v³ != ξ")
		}
		// MulByV agrees with multiplication by v.
		mv, direct := tw.E6Zero(), tw.E6Zero()
		tw.E6MulByV(&mv, &a)
		tw.E6Mul(&direct, &a, &v)
		if !tw.E6Equal(&mv, &direct) {
			t.Fatal("MulByV mismatch")
		}

		// E12
		x, y := randE12(), randE12()
		xy, yx := tw.E12Zero(), tw.E12Zero()
		tw.E12Mul(&xy, &x, &y)
		tw.E12Mul(&yx, &y, &x)
		if !tw.E12Equal(&xy, &yx) {
			t.Fatal("E12 mul not commutative")
		}
		invX := tw.E12Zero()
		tw.E12Inv(&invX, &x)
		tw.E12Mul(&invX, &invX, &x)
		if !tw.E12IsOne(&invX) {
			t.Fatal("E12 inverse wrong")
		}
		// w² = v: square (0,1) and compare to v in D0.
		w := tw.E12Zero()
		w.D1 = tw.E6One()
		w2 := tw.E12Zero()
		tw.E12Square(&w2, &w)
		wantW := tw.E12Zero()
		wantW.D0.C1 = tw.E2One()
		if !tw.E12Equal(&w2, &wantW) {
			t.Fatal("w² != v")
		}
	}
}

func TestE12ExpHomomorphic(t *testing.T) {
	e := engine(t)
	tw := e.T
	rnd := rand.New(rand.NewSource(3))
	f := e.Fp
	x := E12{
		E6{E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}},
		E6{E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}},
	}
	a, b := big.NewInt(123457), big.NewInt(987651)
	xa, xb, xab, prod := tw.E12Zero(), tw.E12Zero(), tw.E12Zero(), tw.E12Zero()
	tw.E12Exp(&xa, &x, a)
	tw.E12Exp(&xb, &x, b)
	tw.E12Mul(&prod, &xa, &xb)
	tw.E12Exp(&xab, &x, new(big.Int).Add(a, b))
	if !tw.E12Equal(&prod, &xab) {
		t.Fatal("x^a · x^b != x^(a+b)")
	}
}

func TestG2GroupLaw(t *testing.T) {
	e := engine(t)
	g2 := e.G2
	gen := &g2.Gen
	if !g2.IsOnCurve(gen) {
		t.Fatal("G2 generator off twist")
	}
	// 2G + G == 3G
	two := g2.ScalarMul(gen, big.NewInt(2))
	three := g2.ScalarMul(gen, big.NewInt(3))
	sum := g2.Add(&two, gen)
	if !g2.Equal(&sum, &three) {
		t.Fatal("2G + G != 3G")
	}
	if !g2.IsOnCurve(&three) {
		t.Fatal("3G off twist")
	}
	// G + (−G) == O
	neg := g2.Neg(gen)
	inf := g2.Add(gen, &neg)
	if !inf.Inf {
		t.Fatal("G + (-G) != O")
	}
	// r·G == O — validates the subgroup order.
	rG := g2.ScalarMul(gen, e.Fr.Modulus)
	if !rG.Inf {
		t.Fatal("r·G2 != O: generator order wrong")
	}
}

func TestG2MSMMatchesNaive(t *testing.T) {
	e := engine(t)
	g2 := e.G2
	rnd := rand.New(rand.NewSource(4))
	n := 6
	points := make([]G2Affine, n)
	scalars := make([]*big.Int, n)
	for i := range points {
		k := new(big.Int).Rand(rnd, e.Fr.Modulus)
		points[i] = g2.ScalarMul(&g2.Gen, big.NewInt(int64(i+2)))
		scalars[i] = k
	}
	got, err := g2.MSMContext(context.Background(), points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	want := G2Affine{Inf: true}
	for i := range points {
		term := g2.ScalarMul(&points[i], scalars[i])
		want = g2.Add(&want, &term)
	}
	if !g2.Equal(&got, &want) {
		t.Fatal("G2 MSM mismatch")
	}
	// empty MSM
	if out, err := g2.MSMContext(context.Background(), nil, nil); err != nil || !out.Inf {
		t.Fatal("empty G2 MSM should be O")
	}
}

func TestPairingBilinear(t *testing.T) {
	e := engine(t)
	tw := e.T
	g1 := &e.Curve.Gen
	g2 := &e.G2.Gen

	base := e.Pair(g1, g2)
	if tw.E12IsOne(&base) {
		t.Fatal("e(G1, G2) == 1: degenerate pairing")
	}
	// e(G1,G2)^r == 1 (lands in μ_r)
	toR := tw.E12Zero()
	tw.E12Exp(&toR, &base, e.Fr.Modulus)
	if !tw.E12IsOne(&toR) {
		t.Fatal("pairing value not in mu_r")
	}

	a, b := big.NewInt(31337), big.NewInt(271828)
	adder := e.Curve.NewAdder()
	w := (e.Curve.ScalarBits + 63) / 64
	aP := e.Curve.ToAffine(adder.ScalarMul(g1, natFromBig(a, w)))
	bQ := e.G2.ScalarMul(g2, b)

	lhs := e.Pair(&aP, &bQ)
	want := tw.E12Zero()
	tw.E12Exp(&want, &base, new(big.Int).Mul(a, b))
	if !tw.E12Equal(&lhs, &want) {
		t.Fatal("e(aP, bQ) != e(P,Q)^(ab)")
	}

	// e(aP, Q) == e(P, aQ)
	aQ := e.G2.ScalarMul(g2, a)
	l2 := e.Pair(&aP, g2)
	r2 := e.Pair(g1, &aQ)
	if !tw.E12Equal(&l2, &r2) {
		t.Fatal("e(aP, Q) != e(P, aQ)")
	}
}

func TestPairingInfinity(t *testing.T) {
	e := engine(t)
	tw := e.T
	infG1 := curve.PointAffine{Inf: true}
	infG2 := G2Affine{Inf: true}
	if v := e.Pair(&infG1, &e.G2.Gen); !tw.E12IsOne(&v) {
		t.Fatal("e(O, Q) != 1")
	}
	if v := e.Pair(&e.Curve.Gen, &infG2); !tw.E12IsOne(&v) {
		t.Fatal("e(P, O) != 1")
	}
}

func TestPairingProduct(t *testing.T) {
	e := engine(t)
	tw := e.T
	g1, g2 := &e.Curve.Gen, &e.G2.Gen
	// e(P,Q)·e(−P,Q) == 1
	negP := curve.PointAffine{X: g1.X.Clone(), Y: g1.Y.Clone()}
	e.Curve.NegAffine(&negP)
	out, err := e.PairingProduct(
		[]curve.PointAffine{*g1, negP},
		[]G2Affine{*g2, *g2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !tw.E12IsOne(&out) {
		t.Fatal("e(P,Q)·e(-P,Q) != 1")
	}
	if _, err := e.PairingProduct(nil, []G2Affine{*g2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func natFromBig(v *big.Int, width int) []uint64 {
	out := make([]uint64, width)
	w := new(big.Int).Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	for i := 0; i < width; i++ {
		out[i] = new(big.Int).And(w, mask).Uint64()
		w.Rsh(w, 64)
	}
	return out
}

func BenchmarkPairing(b *testing.B) {
	e := engine(b)
	for i := 0; i < b.N; i++ {
		e.Pair(&e.Curve.Gen, &e.G2.Gen)
	}
}

// The structured easy/hard final exponentiation must agree with the
// plain (p^12-1)/r reference exponent.
func TestFinalExponentiationMatchesReference(t *testing.T) {
	e := engine(t)
	tw := e.T
	f := e.MillerLoop(&e.Curve.Gen, &e.G2.Gen)
	fast := e.FinalExponentiation(&f)
	ref := tw.E12Zero()
	tw.E12Exp(&ref, &f, e.ReferenceFinalExp())
	if !tw.E12Equal(&fast, &ref) {
		t.Fatal("structured final exponentiation != reference")
	}
}

func TestFrobeniusP2IsHomomorphism(t *testing.T) {
	e := engine(t)
	tw := e.T
	rnd := rand.New(rand.NewSource(11))
	f := e.Fp
	randE12 := func() E12 {
		return E12{
			E6{E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}},
			E6{E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}, E2{f.Rand(rnd), f.Rand(rnd)}},
		}
	}
	x, y := randE12(), randE12()
	// frob(x*y) == frob(x)*frob(y)
	xy, l, fx, fy, r := tw.E12Zero(), tw.E12Zero(), tw.E12Zero(), tw.E12Zero(), tw.E12Zero()
	tw.E12Mul(&xy, &x, &y)
	e.FrobeniusP2(&l, &xy)
	e.FrobeniusP2(&fx, &x)
	e.FrobeniusP2(&fy, &y)
	tw.E12Mul(&r, &fx, &fy)
	if !tw.E12Equal(&l, &r) {
		t.Fatal("FrobeniusP2 is not multiplicative")
	}
	// frob is x^(p^2): check against plain exponentiation.
	p2 := new(big.Int).Mul(e.Fp.Modulus, e.Fp.Modulus)
	want := tw.E12Zero()
	tw.E12Exp(&want, &x, p2)
	if !tw.E12Equal(&fx, &want) {
		t.Fatal("FrobeniusP2 != x^(p^2)")
	}
}
