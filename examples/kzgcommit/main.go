// kzgcommit: the polynomial-commitment workload the paper frames MSM
// around (§2.2) — commit to polynomials with an MSM over the structured
// reference string on the simulated multi-GPU engine, then open and
// verify evaluations with pairings, including a Fiat–Shamir batched
// opening of several polynomials at once.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
	"distmsm/internal/kzg"
)

func main() {
	s, err := kzg.NewScheme()
	if err != nil {
		log.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(42))

	const degree = 255
	srs, err := s.Setup(degree, rnd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SRS: %d G1 powers of tau (degree bound %d)\n", len(srs.G1), srs.Degree())

	// Route the commitment MSMs through the simulated 8-GPU DistMSM.
	cl, err := gpusim.NewCluster(gpusim.A100(), 8)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var modeled float64
	s.MSM = func(points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
		res, err := core.RunContext(ctx, s.P.Curve, cl, points, scalars,
			core.Options{WindowSize: 8, Engine: core.EngineConcurrent})
		if err != nil {
			return nil, err
		}
		modeled += res.Cost.Total()
		return res.Point, nil
	}

	poly := make([]field.Element, degree+1)
	for i := range poly {
		poly[i] = s.Fr.Rand(rnd)
	}
	com, err := s.Commit(srs, poly)
	if err != nil {
		log.Fatal(err)
	}
	z := s.Fr.Rand(rnd)
	y, proof, err := s.Open(srs, poly, z)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := s.Verify(srs, com, z, y, proof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single opening at a random point verifies: %v\n", ok)
	fmt.Printf("modeled GPU time of the commitment MSMs so far: %.3f ms\n", modeled*1e3)

	// Batched opening of three polynomials at one point.
	polys := [][]field.Element{poly[:100], poly[:200], poly}
	coms := make([]curve.PointAffine, len(polys))
	for i, p := range polys {
		if coms[i], err = s.Commit(srs, p); err != nil {
			log.Fatal(err)
		}
	}
	ys, bproof, err := s.BatchOpen(srs, polys, z)
	if err != nil {
		log.Fatal(err)
	}
	ok, err = s.BatchVerify(srs, coms, z, ys, bproof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fiat-Shamir batched opening of %d polynomials verifies: %v (one witness point)\n",
		len(polys), ok)
}
