// Command provd runs the long-lived proving service: a worker pool
// proving Groth16 jobs against pre-registered circuits, with bounded
// admission, end-to-end job deadlines and cross-request GPU health
// (see internal/service).
//
// Serve mode (default) exposes the JSON API:
//
//	provd -gpus 8 -listen :8080 -constraints 512
//	curl -s -X POST localhost:8080/prove -d '{"circuit":"synthetic","seed":7}'
//	curl -s localhost:8080/healthz
//
// Cluster mode: -join makes this provd a worker node of a coordinator
// (see internal/cluster and cmd/coordinator) — it registers, heartbeats
// its lease, and serves coordinator dispatches on /v1/cluster/dispatch
// plus outsourced MSM shards on /v1/msm (the worker cannot tell a real
// shard from the coordinator's secret challenge instance, so it cannot
// selectively cheat — see internal/outsource):
//
//	provd -gpus 8 -listen :8081 -join http://coord:9090 -advertise http://10.0.0.7:8081
//
// Shutdown is a bounded graceful drain: on SIGTERM/SIGINT the node
// deregisters from its coordinator (new dispatches stop, in-flight jobs
// finish), stops admission, and drains queued and in-flight jobs for at
// most -drain-timeout before cancelling the stragglers — a node restart
// never dies mid-proof unless the drain budget runs out.
//
// Tail-latency knobs: -queue-policy picks EDF (default) or FIFO
// dequeue order, -circuit-quota bounds any one circuit's share of queue
// slots and workers, -shed drops jobs that cannot meet their deadline
// anyway, and -coalesce-slack arbitrates between deadline order and
// circuit-affinity coalescing (see cmd/loadgen for measuring the
// effect of each).
//
// Smoke mode runs N jobs through the full service lifecycle (submit,
// prove, verify, drain) without a listener and exits non-zero on any
// failure — the CI entry point:
//
//	provd -gpus 4 -constraints 200 -smoke 6
//
// Observability: /metrics serves the Prometheus text exposition (job
// latency, queue depth, fault/retry rates, per-GPU breaker states),
// -trace-dir writes a Chrome trace_event JSON per job (open it in
// chrome://tracing or https://ui.perfetto.dev), and -pprof mounts
// net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/gpusim"
	"distmsm/internal/service"
	"distmsm/internal/telemetry"
)

func main() {
	var (
		gpus        = flag.Int("gpus", 8, "simulated GPU count")
		workers     = flag.Int("workers", 0, "proving workers (0 = one per DGX node)")
		queue       = flag.Int("queue", 0, "queue depth (0 = 2x workers)")
		constraints = flag.Int("constraints", 512, "registered synthetic circuit size")
		listen      = flag.String("listen", ":8080", "HTTP listen address (serve mode)")
		timeout     = flag.Duration("timeout", time.Minute, "default per-job deadline")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget: queued and in-flight jobs get this long to finish before being cancelled")
		join        = flag.String("join", "", "coordinator base URL to join as a cluster worker node (e.g. http://coord:9090)")
		advertise   = flag.String("advertise", "", "dispatch address advertised to the coordinator (default http://<listen>)")
		nodeID      = flag.String("node-id", "", "stable cluster node identifier (default the hostname)")
		pipelined   = flag.Bool("pipelined", false, "prove with the phase-DAG pipeline (quotient NTTs overlap witness MSMs on GPU sub-pools)")
		queuePolicy = flag.String("queue-policy", "edf", "pending-queue order: edf (earliest deadline first) or fifo (arrival order)")
		quota       = flag.Float64("circuit-quota", 0, "per-circuit admission quota as a fraction of capacity in (0,1]; 0 disables")
		shed        = flag.Bool("shed", false, "shed doomed jobs (expired or EWMA-predicted deadline miss) at dequeue and at prover phase boundaries")
		slack       = flag.Duration("coalesce-slack", 0, "minimum slack on the EDF head before circuit-affinity coalescing may jump the queue (0 = 1s default, negative = always coalesce)")
		smoke       = flag.Int("smoke", 0, "run N smoke jobs and exit instead of serving")
		traceDir    = flag.String("trace-dir", "", "write a Chrome trace JSON per job into this directory")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := options{
		gpus: *gpus, workers: *workers, queue: *queue, constraints: *constraints,
		listen: *listen, timeout: *timeout, drain: *drain,
		join: *join, advertise: *advertise, nodeID: *nodeID, pipelined: *pipelined,
		smoke: *smoke, traceDir: *traceDir, pprofOn: *pprofOn,
		queuePolicy: *queuePolicy, quota: *quota, shed: *shed, slack: *slack,
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintln(os.Stderr, "provd:", err)
		os.Exit(1)
	}
}

type options struct {
	gpus, workers, queue, constraints int
	listen                            string
	timeout, drain                    time.Duration
	join, advertise, nodeID           string
	pipelined                         bool
	smoke                             int
	traceDir                          string
	pprofOn                           bool
	queuePolicy                       string
	quota                             float64
	shed                              bool
	slack                             time.Duration
}

// parseQueuePolicy maps the -queue-policy flag onto the service enum.
func parseQueuePolicy(s string) (service.QueuePolicy, error) {
	switch s {
	case "edf", "":
		return service.QueueEDF, nil
	case "fifo":
		return service.QueueFIFO, nil
	}
	return 0, fmt.Errorf("unknown -queue-policy %q (want edf or fifo)", s)
}

func run(ctx context.Context, o options) error {
	cl, err := gpusim.NewCluster(gpusim.A100(), o.gpus)
	if err != nil {
		return err
	}
	if o.traceDir != "" {
		if err := os.MkdirAll(o.traceDir, 0o755); err != nil {
			return err
		}
	}
	policy, err := parseQueuePolicy(o.queuePolicy)
	if err != nil {
		return err
	}
	metrics := telemetry.NewRegistry()
	svc, err := service.New(service.Config{
		Cluster:        cl,
		Workers:        o.workers,
		QueueDepth:     o.queue,
		DefaultTimeout: o.timeout,
		Metrics:        metrics,
		TraceDir:       o.traceDir,
		ProvePipelined: o.pipelined,
		QueuePolicy:    policy,
		CircuitQuota:   o.quota,
		ShedDoomed:     o.shed,
		CoalesceSlack:  o.slack,
	})
	if err != nil {
		return err
	}
	if err := svc.RegisterSynthetic(ctx, "synthetic", o.constraints); err != nil {
		return err
	}
	fmt.Printf("provd: %d simulated %s GPUs, %d workers, circuit %q (%d constraints)\n",
		o.gpus, cl.Dev.Name, svc.Workers(), "synthetic", o.constraints)
	if o.traceDir != "" {
		fmt.Printf("provd: writing per-job Chrome traces to %s\n", o.traceDir)
	}

	if o.smoke > 0 {
		return runSmoke(ctx, svc, o.smoke, o.drain)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if o.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("provd: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: o.listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("provd: listening on %s\n", o.listen)

	// Cluster mode: join the coordinator's fleet and keep the heartbeat
	// lease alive; dispatches arrive on /v1/cluster/dispatch like any
	// other request.
	var agent *cluster.Agent
	if o.join != "" {
		id := o.nodeID
		if id == "" {
			if id, err = os.Hostname(); err != nil || id == "" {
				id = fmt.Sprintf("provd-%d", os.Getpid())
			}
		}
		addr := o.advertise
		if addr == "" {
			addr = "http://" + o.listen
		}
		agent, err = cluster.StartAgent(cluster.AgentConfig{
			Coordinator: o.join,
			NodeID:      id,
			Addr:        addr,
			Circuits:    []string{"synthetic"},
			Workers:     svc.Workers(),
			Load: func() (int, int) {
				st := svc.Stats()
				return st.Queued, st.InFlight
			},
			Logf: func(format string, args ...any) {
				fmt.Printf("provd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
	}

	select {
	case err := <-errCh:
		if agent != nil {
			agent.Stop()
		}
		return err
	case <-ctx.Done():
	}
	// Bounded graceful drain: deregister first (the coordinator stops
	// routing here but our in-flight jobs finish), then drain the queue
	// and the pool under the -drain-timeout budget.
	fmt.Printf("provd: shutting down (drain budget %v)\n", o.drain)
	if agent != nil {
		agent.Stop()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	_ = srv.Shutdown(shCtx)
	if err := svc.Shutdown(shCtx); err != nil {
		fmt.Printf("provd: drain budget exhausted, cancelled remaining jobs: %v\n", err)
		return nil
	}
	fmt.Println("provd: drained cleanly")
	return nil
}

// runSmoke pushes n jobs through the service and verifies every proof
// arrived (the service verifies each proof itself before returning it).
func runSmoke(ctx context.Context, svc *service.Service, n int, drain time.Duration) error {
	start := time.Now()
	jobs := make([]*service.Job, 0, n)
	for i := 0; i < n; i++ {
		job, err := svc.Submit(service.Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			// Admission rejection is expected when n exceeds the queue:
			// back off like a client would.
			var qe *service.QueueFullError
			if errors.As(err, &qe) {
				time.Sleep(qe.RetryAfter)
				i--
				continue
			}
			return err
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			return fmt.Errorf("job %d: %w", job.ID, err)
		}
		fmt.Printf("provd: job %d (seed %d) proved and verified\n", job.ID, job.Seed)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := svc.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := svc.Stats()
	fmt.Printf("provd: smoke ok — %d completed, %d rejected, %v total\n",
		st.Completed, st.Rejected, time.Since(start).Round(time.Millisecond))
	if st.Completed != uint64(len(jobs)) {
		return fmt.Errorf("completed %d of %d jobs", st.Completed, len(jobs))
	}
	return nil
}
