package gpusim

import (
	"errors"
	"fmt"
)

// ErrNoGPUs is returned when a cluster is requested with fewer than one
// GPU. It is re-exported by the public API and matches with errors.Is.
var ErrNoGPUs = errors.New("gpusim: cluster needs at least one GPU")

// Cluster is a homogeneous multi-GPU system with a host CPU, the
// execution substrate DistMSM schedules onto.
type Cluster struct {
	Dev  Device
	N    int
	IC   Interconnect
	Host CPU
}

// NewCluster returns an n-GPU cluster of the given device with the DGX
// interconnect and host CPU profile.
func NewCluster(dev Device, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w, got %d", ErrNoGPUs, n)
	}
	return &Cluster{Dev: dev, N: n, IC: NVLinkDGX(), Host: Rome7742()}, nil
}

// Model returns the per-device cost model.
func (c *Cluster) Model() Model { return Model{Dev: c.Dev} }

// Cost is a wall-time breakdown of one MSM execution, in seconds, by the
// phases of Figure 1. Phases within one entry are already serialised;
// Total assumes the phases themselves run back to back except for the
// CPU bucket-reduce, which §3.2.3 overlaps with GPU work.
type Cost struct {
	Scatter      float64 // bucket-scatter kernels
	BucketSum    float64 // bucket accumulation kernels
	BucketReduce float64 // Σ 2^i·B_i (GPU or CPU depending on algorithm)
	WindowReduce float64 // final window combination
	Transfer     float64 // host<->device traffic
	// ReduceOnCPU marks BucketReduce as host work that overlaps GPU
	// execution; it then contributes only the excess beyond GPU time.
	ReduceOnCPU bool
}

// Total returns the end-to-end seconds.
func (c Cost) Total() float64 {
	gpu := c.Scatter + c.BucketSum + c.Transfer
	if c.ReduceOnCPU {
		// CPU reduce is pipelined behind GPU phases; only the tail that
		// outlasts the GPU shows up.
		if c.BucketReduce > gpu {
			return c.BucketReduce + c.WindowReduce
		}
		return gpu + c.WindowReduce
	}
	return gpu + c.BucketReduce + c.WindowReduce
}

// AddInPlace accumulates o into c field by field.
func (c *Cost) AddInPlace(o Cost) {
	c.Scatter += o.Scatter
	c.BucketSum += o.BucketSum
	c.BucketReduce += o.BucketReduce
	c.WindowReduce += o.WindowReduce
	c.Transfer += o.Transfer
	c.ReduceOnCPU = c.ReduceOnCPU || o.ReduceOnCPU
}

// Milliseconds formats seconds as milliseconds for reporting.
func Milliseconds(sec float64) float64 { return sec * 1e3 }

// NodeSize is the GPUs per DGX node in the paper's testbed; beyond it a
// cluster spans multiple nodes. The paper's methodology runs the
// per-node shares sequentially on one DGX and reports the longest
// runtime — equivalent to parallel nodes with no inter-node traffic —
// which is exactly how the cost model composes per-GPU loads (phase
// times are the max over GPUs). DistMSM needs no inter-node exchanges
// until the final window results reach the host.
const NodeSize = 8

// Nodes returns the DGX node count the cluster spans.
func (c *Cluster) Nodes() int { return (c.N + NodeSize - 1) / NodeSize }
