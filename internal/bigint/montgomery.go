package bigint

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Montgomery holds the precomputed constants for Montgomery modular
// arithmetic modulo an odd modulus N, with R = 2^(64*width).
//
// Three multiplication variants are provided — SOS (Separated Operand
// Scanning, Algorithm 2 in the paper), CIOS (Coarsely Integrated Operand
// Scanning) and FIOS (Finely Integrated Operand Scanning) — matching the
// family analysed by Koç, Acar and Kaliski. All three compute
// z = x*y*R^-1 mod N for x, y < N and agree bit-for-bit; CIOS is used by
// the hot paths and the others serve as cross-checks and benchmarks.
type Montgomery struct {
	N       Nat    // modulus, odd, highest limb nonzero
	NPrime0 uint64 // -N^-1 mod 2^64
	R2      Nat    // R^2 mod N (for conversion into Montgomery form)
	One     Nat    // R mod N   (the Montgomery representation of 1)
	width   int

	// Function-pointer dispatch, selected once at construction: the
	// width-specialised unrolled kernels when the modulus qualifies
	// (see unrolledOK), the generic loops otherwise. All hot callers
	// (field, curve, msm, ntt, pairing, groth16) go through Mul/Square/
	// AddMod/SubMod and pick up the fast path with no call-site changes.
	backend string
	mulFn   func(z, x, y Nat)
	sqrFn   func(z, x Nat)
	addFn   func(z, x, y Nat)
	subFn   func(z, x, y Nat)
}

// NewMontgomery builds a Montgomery context for the given odd modulus.
func NewMontgomery(modulus *big.Int) (*Montgomery, error) {
	if modulus.Sign() <= 0 || modulus.Bit(0) == 0 {
		return nil, fmt.Errorf("bigint: Montgomery modulus must be positive and odd, got %s", modulus)
	}
	width := (modulus.BitLen() + 63) / 64
	m := &Montgomery{N: FromBig(modulus, width), width: width}

	// NPrime0 = -N^-1 mod 2^64, via Newton iteration on the low limb.
	// inv := N[0] gives inv*N ≡ 1 mod 2^3 for odd N; each step doubles the
	// number of correct low bits.
	inv := m.N[0]
	for i := 0; i < 6; i++ { // 3 -> 6 -> 12 -> 24 -> 48 -> 96 bits (>= 64)
		inv *= 2 - m.N[0]*inv
	}
	m.NPrime0 = -inv

	r := new(big.Int).Lsh(big.NewInt(1), uint(width*64))
	m.One = FromBig(new(big.Int).Mod(r, modulus), width)
	r2 := new(big.Int).Mul(r, r)
	m.R2 = FromBig(r2.Mod(r2, modulus), width)
	m.selectBackend()
	return m, nil
}

// selectBackend installs the arithmetic function pointers: the unrolled
// fixed-limb kernels for qualifying 4- and 6-limb moduli, the generic
// variable-width loops otherwise.
func (m *Montgomery) selectBackend() {
	m.backend = "generic"
	m.mulFn = m.MulCIOS
	m.sqrFn = m.SquareSOS
	m.addFn = m.addModGeneric
	m.subFn = m.subModGeneric
	if !unrolledOK(m.N) {
		return
	}
	np := m.NPrime0
	switch m.width {
	case 4:
		n := (*[4]uint64)(m.N)
		m.backend = "unrolled4"
		m.mulFn = func(z, x, y Nat) { mul4((*[4]uint64)(z), (*[4]uint64)(x), (*[4]uint64)(y), n, np) }
		m.sqrFn = func(z, x Nat) { sqr4((*[4]uint64)(z), (*[4]uint64)(x), n, np) }
		m.addFn = func(z, x, y Nat) { add4((*[4]uint64)(z), (*[4]uint64)(x), (*[4]uint64)(y), n) }
		m.subFn = func(z, x, y Nat) { sub4((*[4]uint64)(z), (*[4]uint64)(x), (*[4]uint64)(y), n) }
	case 6:
		n := (*[6]uint64)(m.N)
		m.backend = "unrolled6"
		m.mulFn = func(z, x, y Nat) { mul6((*[6]uint64)(z), (*[6]uint64)(x), (*[6]uint64)(y), n, np) }
		m.sqrFn = func(z, x Nat) { sqr6((*[6]uint64)(z), (*[6]uint64)(x), n, np) }
		m.addFn = func(z, x, y Nat) { add6((*[6]uint64)(z), (*[6]uint64)(x), (*[6]uint64)(y), n) }
		m.subFn = func(z, x, y Nat) { sub6((*[6]uint64)(z), (*[6]uint64)(x), (*[6]uint64)(y), n) }
	}
}

// Backend names the arithmetic backend this context dispatches to:
// "unrolled4", "unrolled6", or "generic".
func (m *Montgomery) Backend() string { return m.backend }

// Mul sets z = x*y*R^-1 mod N through the selected backend. z may alias
// x or y. This is the multiplier every hot path should call; MulCIOS,
// MulSOS and MulFIOS remain as the generic cross-check variants.
func (m *Montgomery) Mul(z, x, y Nat) { m.mulFn(z, x, y) }

// Square sets z = x²·R^-1 mod N through the selected backend. z may
// alias x.
func (m *Montgomery) Square(z, x Nat) { m.sqrFn(z, x) }

// Width returns the limb count of the context.
func (m *Montgomery) Width() int { return m.width }

// reduceOnce conditionally subtracts N so that z < N, assuming z < 2N.
func (m *Montgomery) reduceOnce(z Nat, overflow uint64) {
	// Subtract when z >= N or when the addition overflowed past R.
	ge := uint64(0)
	if overflow != 0 || z.Cmp(m.N) >= 0 {
		ge = 1
	}
	CondSubInto(z, z, m.N, ge)
}

// MulCIOS sets z = x*y*R^-1 mod N using Coarsely Integrated Operand
// Scanning. z may alias x or y (the product is accumulated in a local
// buffer and copied out). This is the default multiplier.
func (m *Montgomery) MulCIOS(z, x, y Nat) {
	w := m.width
	if w > maxLimbs {
		m.mulCIOSLarge(z, x, y)
		return
	}
	// t has w+2 limbs conceptually; we keep the top two in scalars.
	// The declaration zero-initialises t on every call, so no explicit
	// clearing is needed on exit.
	var t [maxLimbs + 1]uint64
	var tHigh uint64
	for i := 0; i < w; i++ {
		// t += x[i] * y
		var carry uint64
		xi := x[i]
		for j := 0; j < w; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var c uint64
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j] = lo
			carry = hi
		}
		var c uint64
		t[w], c = bits.Add64(t[w], carry, 0)
		tHigh += c

		// u = t[0] * N'0; t += u*N; t >>= 64
		u := t[0] * m.NPrime0
		hi, lo := bits.Mul64(u, m.N[0])
		_, c = bits.Add64(lo, t[0], 0)
		carry = hi + c
		for j := 1; j < w; j++ {
			hi, lo = bits.Mul64(u, m.N[j])
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j-1] = lo
			carry = hi
		}
		t[w-1], c = bits.Add64(t[w], carry, 0)
		t[w] = tHigh + c
		tHigh = 0
	}
	copy(z, t[:w])
	m.reduceOnce(z, t[w])
}

// maxLimbs is the largest width served by the stack-allocated fast path;
// 12 limbs covers the 753-bit MNT4753-class fields.
const maxLimbs = 13

// mulCIOSLarge is the allocation-based fallback for very wide moduli.
func (m *Montgomery) mulCIOSLarge(z, x, y Nat) {
	w := m.width
	t := make(Nat, w+1)
	var tHigh uint64
	for i := 0; i < w; i++ {
		var carry uint64
		xi := x[i]
		for j := 0; j < w; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var c uint64
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j] = lo
			carry = hi
		}
		var c uint64
		t[w], c = bits.Add64(t[w], carry, 0)
		tHigh += c

		u := t[0] * m.NPrime0
		hi, lo := bits.Mul64(u, m.N[0])
		_, c = bits.Add64(lo, t[0], 0)
		carry = hi + c
		for j := 1; j < w; j++ {
			hi, lo = bits.Mul64(u, m.N[j])
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j-1] = lo
			carry = hi
		}
		t[w-1], c = bits.Add64(t[w], carry, 0)
		t[w] = tHigh + c
		tHigh = 0
	}
	copy(z, t[:w])
	m.reduceOnce(z, t[w])
}

// MulSOS sets z = x*y*R^-1 mod N using Separated Operand Scanning —
// the method shown as Algorithm 2 in the paper: a full double-width
// product first, then a separate reduction pass. z may alias x or y.
func (m *Montgomery) MulSOS(z, x, y Nat) {
	w := m.width
	t := make(Nat, 2*w+1)
	// Step 1: t = x * y (full 2w-limb product).
	MulInto(t[:2*w], x, y)
	// Step 2: for each low limb, u = t[i]*N'0; t += u*N << (64i).
	for i := 0; i < w; i++ {
		u := t[i] * m.NPrime0
		var carry uint64
		for j := 0; j < w; j++ {
			hi, lo := bits.Mul64(u, m.N[j])
			var c uint64
			lo, c = bits.Add64(lo, t[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[i+j] = lo
			carry = hi
		}
		// Propagate the carry through the rest of t.
		for k := i + w; carry != 0 && k < len(t); k++ {
			t[k], carry = bits.Add64(t[k], carry, 0)
		}
	}
	// Step 3: z = t >> (64w), with a final conditional subtraction.
	copy(z, t[w:2*w])
	m.reduceOnce(z, t[2*w])
}

// MulFIOS sets z = x*y*R^-1 mod N using Finely Integrated Operand
// Scanning: the multiplication and reduction inner loops are fused.
// z may alias x or y.
func (m *Montgomery) MulFIOS(z, x, y Nat) {
	w := m.width
	t := make(Nat, w+2)
	for i := 0; i < w; i++ {
		// First column: t[0] + x[i]*y[0] determines u.
		hi, lo := bits.Mul64(x[i], y[0])
		var c uint64
		sum, c := bits.Add64(t[0], lo, 0)
		carryMul := hi + c
		u := sum * m.NPrime0
		hi2, lo2 := bits.Mul64(u, m.N[0])
		_, c = bits.Add64(sum, lo2, 0)
		carryRed := hi2 + c
		// Remaining columns, fusing x[i]*y[j] and u*N[j].
		for j := 1; j < w; j++ {
			hi, lo = bits.Mul64(x[i], y[j])
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carryMul, 0)
			hi += c
			carryMul = hi

			hi2, lo2 = bits.Mul64(u, m.N[j])
			lo2, c = bits.Add64(lo2, lo, 0)
			hi2 += c
			lo2, c = bits.Add64(lo2, carryRed, 0)
			hi2 += c
			carryRed = hi2
			t[j-1] = lo2
		}
		var c2 uint64
		t[w-1], c2 = bits.Add64(carryMul, carryRed, 0)
		t[w-1], c = bits.Add64(t[w-1], t[w], 0)
		t[w] = t[w+1] + c + c2
		t[w+1] = 0
	}
	copy(z, t[:w])
	m.reduceOnce(z, t[w])
}

// AddMod sets z = x + y mod N (operands already reduced) through the
// selected backend.
func (m *Montgomery) AddMod(z, x, y Nat) { m.addFn(z, x, y) }

// SubMod sets z = x - y mod N (operands already reduced) through the
// selected backend.
func (m *Montgomery) SubMod(z, x, y Nat) { m.subFn(z, x, y) }

// addModGeneric is the variable-width modular addition.
func (m *Montgomery) addModGeneric(z, x, y Nat) {
	carry := AddInto(z, x, y)
	m.reduceOnce(z, carry)
}

// subModGeneric is the variable-width modular subtraction.
func (m *Montgomery) subModGeneric(z, x, y Nat) {
	borrow := SubInto(z, x, y)
	// If we borrowed, add N back.
	mask := -borrow
	var carry uint64
	for i := range z {
		z[i], carry = bits.Add64(z[i], m.N[i]&mask, carry)
	}
}

// NegMod sets z = -x mod N.
func (m *Montgomery) NegMod(z, x Nat) {
	if x.IsZero() {
		z.SetZero()
		return
	}
	SubInto(z, m.N, x)
}

// ToMont converts x (a plain residue < N) to Montgomery form.
func (m *Montgomery) ToMont(z, x Nat) { m.Mul(z, x, m.R2) }

// FromMont converts x from Montgomery form back to a plain residue.
func (m *Montgomery) FromMont(z, x Nat) {
	one := New(m.width)
	one[0] = 1
	m.Mul(z, x, one)
}
