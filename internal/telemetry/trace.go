// Package telemetry is the observability layer of the repo: span-based
// tracing of MSM and Groth16 executions (exportable as Chrome
// trace_event JSON) and a dependency-free metrics registry (counters,
// gauges, fixed-bucket histograms) with Prometheus text exposition.
//
// The package exists because the paper's whole argument rests on
// per-phase, per-GPU breakdowns — §3.1's workload formulas and §3.2.3's
// overlap of the CPU bucket-reduce with the next window's bucket-sum
// are claims about *where time goes*, and a production service needs
// those numbers continuously, not just in a benchmark harness.
//
// Both halves are allocation-conscious by construction:
//
//   - a Tracer's span ring buffer is fully allocated at construction,
//     so Record never allocates (and a nil *Tracer is a no-op — the
//     disabled-telemetry hot path costs one branch, zero allocations);
//   - every metric handle (Counter, Gauge, Histogram) updates via
//     atomics; allocation happens only at registration and exposition.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Track identifies the logical execution lane a span ran on — the "tid"
// of the Chrome trace. Host phases (scatter, bucket-reduce,
// window-reduce, the Groth16 pipeline) share TrackHost; each simulated
// GPU's shard executions get their own lane via TrackGPU so the §3.2.3
// pipeline overlap is visible as parallel bars in the viewer.
type Track int32

// TrackHost is the host-side lane (scatter, reducers, Groth16 phases).
const TrackHost Track = 0

// TrackGPU returns the lane of simulated GPU g.
func TrackGPU(g int) Track { return Track(1 + g) }

// TrackPhase returns the lane of pipelined Groth16 prover phase i
// (negative tids, so they never collide with host/GPU lanes). The
// phase-DAG executor draws each concurrent phase on its own lane —
// quotient overlapping a witness MSM shows up as parallel bars instead
// of aliasing on TrackHost.
func TrackPhase(i int) Track { return Track(-1 - i) }

// TrackName returns the viewer lane name for a track ("host", "gpuN",
// "phaseN").
func TrackName(tr Track) string {
	switch {
	case tr == TrackHost:
		return "host"
	case tr > TrackHost:
		return fmt.Sprintf("gpu%d", int(tr)-1)
	default:
		return fmt.Sprintf("phase%d", -int(tr)-1)
	}
}

// Span is one completed trace interval. The zero value of the label
// fields means "absent": Window and Attempt are only exported when
// Labeled is set (a window-0, attempt-0 shard is distinguishable from
// an unlabeled host phase).
type Span struct {
	// Name is the event name shown by the viewer ("shard", "scatter",
	// "bucket-reduce", "groth16/quotient", ...).
	Name string
	// Cat is the trace_event category ("msm", "groth16", "service").
	Cat string
	// Track is the lane (tid) the span is drawn on.
	Track Track
	// Start and Dur delimit the interval in host wall time.
	Start time.Time
	Dur   time.Duration
	// Labeled marks the shard-label fields below as meaningful.
	Labeled bool
	// Window, BucketLo, BucketHi and Attempt identify a shard execution;
	// Speculative marks a duplicate launched for an overdue shard.
	Window      int32
	BucketLo    int32
	BucketHi    int32
	Attempt     int32
	Speculative bool
}

// Tracer records spans of one run into a fixed-capacity ring buffer.
// It is safe for concurrent use. The zero value is not valid; use
// NewTracer. A nil *Tracer is valid everywhere and records nothing.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	n     int // total spans recorded; the ring holds the last len(spans)
}

// DefaultSpanCapacity is the ring size of NewTracer(0): enough for
// every shard, window and phase of a paper-scale MSM plus the Groth16
// phases around it.
const DefaultSpanCapacity = 1 << 14

// NewTracer builds a tracer whose ring holds the last `capacity` spans
// (DefaultSpanCapacity when capacity <= 0). The ring is fully allocated
// here; Record never allocates.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{spans: make([]Span, capacity)}
}

// Record appends a completed span. It is nil-safe (a nil tracer records
// nothing) and allocation-free: the span is copied into the
// pre-allocated ring, overwriting the oldest entry once full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans[t.n%len(t.spans)] = s
	t.n++
	t.mu.Unlock()
}

// Len returns how many spans the tracer currently holds (at most the
// ring capacity). Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.spans) {
		return t.n
	}
	return len(t.spans)
}

// Dropped returns how many spans were overwritten because the ring
// filled up — a non-zero value means the trace is a suffix of the run.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= len(t.spans) {
		return 0
	}
	return t.n - len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.orderedLocked()
}

func (t *Tracer) orderedLocked() []Span {
	if t.n <= len(t.spans) {
		out := make([]Span, t.n)
		copy(out, t.spans[:t.n])
		return out
	}
	out := make([]Span, len(t.spans))
	head := t.n % len(t.spans)
	copy(out, t.spans[head:])
	copy(out[len(t.spans)-head:], t.spans[:head])
	return out
}

// traceEvent is the Chrome trace_event wire form of one span
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// complete ("X") events with microsecond timestamps.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serialises the recorded spans as a Chrome
// trace_event JSON document ({"traceEvents": [...]}), loadable in
// chrome://tracing or https://ui.perfetto.dev. Timestamps are relative
// to the earliest recorded span. Lanes are named via thread_name
// metadata events ("host", "gpu0", "gpu1", ...).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var epoch time.Time
	tracks := map[Track]bool{}
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
		tracks[s.Track] = true
	}
	events := make([]traceEvent, 0, len(spans)+len(tracks))
	for tr := range tracks {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int32(tr),
			Args: map[string]any{"name": TrackName(tr)},
		})
	}
	for _, s := range spans {
		ev := traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  int32(s.Track),
		}
		if s.Labeled {
			args := map[string]any{
				"window":  s.Window,
				"attempt": s.Attempt,
			}
			if s.BucketHi > s.BucketLo {
				args["bucket_lo"] = s.BucketLo
				args["bucket_hi"] = s.BucketHi
			}
			if s.Speculative {
				args["speculative"] = true
			}
			ev.Args = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteChromeTraceFile writes the trace to path (0644, truncating).
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
