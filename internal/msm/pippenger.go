package msm

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
)

// Config controls the CPU Pippenger implementation.
type Config struct {
	// WindowSize is s; 0 selects a size from the classic N-based heuristic.
	WindowSize int
	// Signed enables signed-digit recoding (half the buckets).
	Signed bool
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
}

// HeuristicWindowSize returns the classic single-machine choice of s,
// minimising ⌈λ/s⌉(N + 2^(s+1)) — roughly log2(N) - log2(log2(N)).
func HeuristicWindowSize(n int) int {
	if n <= 1 {
		return 1
	}
	best, bestCost := 1, math.Inf(1)
	for s := 1; s <= 26; s++ {
		cost := math.Ceil(256.0/float64(s)) * (float64(n) + math.Exp2(float64(s+1)))
		if cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

func (cfg Config) resolve(n int) Config {
	if cfg.WindowSize == 0 {
		cfg.WindowSize = HeuristicWindowSize(n)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// MSM computes Σ scalars[i]·points[i] with Pippenger's algorithm.
func MSM(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, cfg Config) (*curve.PointXYZZ, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("msm: %d points but %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return c.NewXYZZ(), nil
	}
	for i, k := range scalars {
		if k.BitLen() > c.ScalarBits {
			return nil, fmt.Errorf("msm: scalar %d has %d bits, curve limit is %d",
				i, k.BitLen(), c.ScalarBits)
		}
	}
	cfg = cfg.resolve(len(points))
	if cfg.Workers <= 1 {
		return serialMSM(c, points, scalars, cfg), nil
	}
	return parallelMSM(c, points, scalars, cfg), nil
}

// digitsMatrix recodes every scalar; digits[j][i] is point i's digit in
// window j. Unsigned digits are stored as int32 with all values >= 0.
func digitsMatrix(c *curve.Curve, scalars []bigint.Nat, cfg Config) [][]int32 {
	s := cfg.WindowSize
	nWin := NumWindows(c.ScalarBits, s)
	if cfg.Signed {
		nWin++ // possible carry window
	}
	digits := make([][]int32, nWin)
	for j := range digits {
		digits[j] = make([]int32, len(scalars))
	}
	for i, k := range scalars {
		if cfg.Signed {
			for j, d := range SignedDigits(k, c.ScalarBits, s) {
				digits[j][i] = d
			}
		} else {
			for j, d := range Digits(k, c.ScalarBits, s) {
				digits[j][i] = int32(d)
			}
		}
	}
	// Drop a trailing all-zero carry window.
	for len(digits) > 1 {
		last := digits[len(digits)-1]
		zero := true
		for _, d := range last {
			if d != 0 {
				zero = false
				break
			}
		}
		if !zero {
			break
		}
		digits = digits[:len(digits)-1]
	}
	return digits
}

// windowSum computes one window's Σ d_i·P_i: bucket scatter-sum followed
// by the running-suffix bucket reduction (no per-bucket doublings).
func windowSum(c *curve.Curve, points []curve.PointAffine, digits []int32, cfg Config, a *curve.Adder) *curve.PointXYZZ {
	nBuckets := 1 << cfg.WindowSize // index by digit; bucket 0 unused
	if cfg.Signed {
		nBuckets = 1<<(cfg.WindowSize-1) + 1
	}
	buckets := make([]*curve.PointXYZZ, nBuckets)
	var neg curve.PointAffine
	negY := c.Fp.NewElement()
	for i := range points {
		d := digits[i]
		if d == 0 || points[i].Inf {
			continue
		}
		pt := &points[i]
		if d < 0 {
			c.Fp.Neg(negY, pt.Y)
			neg = curve.PointAffine{X: pt.X, Y: negY}
			pt = &neg
			d = -d
		}
		if buckets[d] == nil {
			buckets[d] = c.NewXYZZ()
		}
		a.Acc(buckets[d], pt)
	}
	// Bucket reduce: Σ i·B_i via running suffix sums.
	running := c.NewXYZZ()
	total := c.NewXYZZ()
	for i := nBuckets - 1; i >= 1; i-- {
		if buckets[i] != nil {
			a.Add(running, buckets[i])
		}
		a.Add(total, running)
	}
	return total
}

// reduceWindows combines per-window results W_j into Σ 2^(j·s)·W_j by
// Horner's rule from the top window down (s doublings per step).
func reduceWindows(c *curve.Curve, windows []*curve.PointXYZZ, s int, a *curve.Adder) *curve.PointXYZZ {
	acc := c.NewXYZZ()
	for j := len(windows) - 1; j >= 0; j-- {
		for b := 0; b < s; b++ {
			a.Double(acc)
		}
		a.Add(acc, windows[j])
	}
	return acc
}

func serialMSM(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, cfg Config) *curve.PointXYZZ {
	a := c.NewAdder()
	digits := digitsMatrix(c, scalars, cfg)
	windows := make([]*curve.PointXYZZ, len(digits))
	for j := range digits {
		windows[j] = windowSum(c, points, digits[j], cfg, a)
	}
	return reduceWindows(c, windows, cfg.WindowSize, a)
}

// parallelMSM distributes windows across goroutines (W-dim parallelism);
// when there are more workers than windows, each window's points are
// additionally split across workers with private bucket accumulators that
// are merged afterwards (B-dim parallelism, mirroring the GPU strategy).
func parallelMSM(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, cfg Config) *curve.PointXYZZ {
	digits := digitsMatrix(c, scalars, cfg)
	windows := make([]*curve.PointXYZZ, len(digits))

	perWindow := cfg.Workers / len(digits)
	if perWindow < 1 {
		perWindow = 1
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for j := range digits {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if perWindow == 1 {
				a := c.NewAdder()
				windows[j] = windowSum(c, points, digits[j], cfg, a)
				return
			}
			windows[j] = splitWindowSum(c, points, digits[j], cfg, perWindow)
		}(j)
	}
	wg.Wait()
	a := c.NewAdder()
	return reduceWindows(c, windows, cfg.WindowSize, a)
}

// splitWindowSum computes one window using k point-range partitions, each
// summed into private buckets, merged pairwise, then reduced once.
func splitWindowSum(c *curve.Curve, points []curve.PointAffine, digits []int32, cfg Config, k int) *curve.PointXYZZ {
	parts := make([]*curve.PointXYZZ, k)
	var wg sync.WaitGroup
	chunk := (len(points) + k - 1) / k
	for w := 0; w < k; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			parts[w] = c.NewXYZZ()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			a := c.NewAdder()
			parts[w] = windowSum(c, points[lo:hi], digits[lo:hi], cfg, a)
		}(w, lo, hi)
	}
	wg.Wait()
	a := c.NewAdder()
	acc := parts[0]
	for _, p := range parts[1:] {
		a.Add(acc, p)
	}
	return acc
}
