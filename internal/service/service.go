// Package service is the production proving service of the repo: a
// long-running daemon that accepts Groth16 proof jobs against
// pre-registered circuits and routes every proof's G1 MSMs through the
// simulated multi-GPU DistMSM engine.
//
// The pieces a single-shot prover does not need, and a service cannot
// live without:
//
//   - Admission control: a bounded job queue plus a memory budget.
//     Submissions beyond either bound are rejected *immediately* with a
//     typed QueueFullError carrying a retry-after hint — clients see
//     backpressure, not latency.
//   - End-to-end deadlines: every job gets a deadline measured from
//     Submit (queue wait included), propagated as a context.Context
//     through witness generation, the quotient's coset NTTs, the MSM
//     shards and every Groth16 phase boundary. A job that blows its
//     deadline in the queue fails inside groth16.ProveContext with
//     context.DeadlineExceeded, exactly like one that blows it mid-MSM.
//   - Cross-request GPU health: one gpusim.HealthRegistry shared by all
//     jobs. A device that keeps dying or corrupting results is
//     quarantined by its circuit breaker and re-admitted through probe
//     shards; a sick GPU costs the cluster its own share, not a
//     rediscovery per request.
//   - Tail-latency hardening: the pending queue is earliest-deadline-
//     first (EDF) instead of FIFO, so a tight-deadline job is never
//     pinned behind a wall of long-deadline batch work; per-circuit
//     admission quotas (Config.CircuitQuota) bound one hot circuit's
//     share of queue slots and workers; and doomed-job shedding
//     (Config.ShedDoomed) turns jobs that can no longer meet their
//     deadline into fast misses at dequeue and at prover phase
//     boundaries instead of burning a worker on a result nobody can
//     use. cmd/loadgen measures the p50/p99/p999 effect under open-loop
//     Poisson load.
//   - Graceful shutdown: Shutdown stops admission, drains queued and
//     in-flight jobs under a deadline, then cancels the rest. No
//     goroutine outlives it.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
	"distmsm/internal/groth16"
	"distmsm/internal/pairing"
	"distmsm/internal/r1cs"
	"distmsm/internal/telemetry"
)

// Typed sentinels of the service API; all match with errors.Is.
var (
	// ErrQueueFull rejects a submission the admission controller cannot
	// accept right now (queue depth or memory budget exceeded). The
	// concrete error is a *QueueFullError carrying a retry-after hint.
	ErrQueueFull = errors.New("service: queue full")
	// ErrShuttingDown rejects submissions after Shutdown began.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownCircuit rejects jobs against a name never registered.
	ErrUnknownCircuit = errors.New("service: unknown circuit")
	// ErrBadRequest rejects malformed job requests (empty or oversized
	// circuit names, negative or absurd timeouts).
	ErrBadRequest = errors.New("service: bad request")
	// ErrProofRejected reports a completed proof that failed the
	// service's own verification — never returned to a client as success.
	ErrProofRejected = errors.New("service: proof failed verification")
)

// QueueFullError is the admission-control rejection: which bound was
// hit and when a retry is likely to be admitted. It unwraps to
// ErrQueueFull.
type QueueFullError struct {
	// Queued is the outstanding job count (waiting + in flight) at
	// rejection time; Depth is the admission capacity it hit. For a
	// quota rejection both are scoped to the submitting circuit.
	Queued, Depth int
	// Memory reports whether the memory budget (not the depth) was the
	// binding constraint.
	Memory bool
	// Quota reports that the submitting circuit's per-circuit admission
	// quota (Config.CircuitQuota) was the binding constraint — the
	// service as a whole still has room, this circuit does not. Circuit
	// names it.
	Quota   bool
	Circuit string
	// RetryAfter estimates how long until a retry of this submission is
	// likely to be admitted. For a capacity rejection that is the first
	// completion among the in-flight jobs (one completion frees one
	// outstanding slot); for a quota rejection it is the time for the
	// submitting circuit to drain its own backlog through its own
	// in-flight lanes — computed from the circuit's completion-time
	// EWMA, so a hot over-quota circuit gets an honestly larger hint
	// than one rejected by global capacity.
	RetryAfter time.Duration
}

// RetryAfterHint returns the retry-after estimate. It exists so callers
// that must not import this package (internal/cluster's coordinator,
// whose dependency arrow points the other way) can detect retryable
// admission rejections structurally via errors.As.
func (e *QueueFullError) RetryAfterHint() time.Duration { return e.RetryAfter }

func (e *QueueFullError) Error() string {
	bound := fmt.Sprintf("%d/%d jobs queued", e.Queued, e.Depth)
	switch {
	case e.Memory:
		bound = "memory budget exceeded"
	case e.Quota:
		bound = fmt.Sprintf("circuit %q over quota (%d/%d slots)", e.Circuit, e.Queued, e.Depth)
	}
	return fmt.Sprintf("service: queue full (%s), retry after %v", bound, e.RetryAfter)
}

func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// Shed reasons — the label values of distmsm_jobs_shed_total and the
// Reason field of ShedError.
const (
	// ShedExpired: the deadline had already passed when a worker reached
	// the job (it missed in the queue).
	ShedExpired = "expired"
	// ShedDoomed: the deadline had not passed at dequeue, but the
	// remaining budget was below the circuit's EWMA prove time — the job
	// would almost surely have burned a worker only to miss anyway.
	ShedDoomed = "doomed"
	// ShedPhase: mid-prove, the remaining budget dropped below the EWMA
	// cost of the next MSM phase; the job is dropped at the phase
	// boundary instead of launching work it cannot finish.
	ShedPhase = "phase"
)

// ShedError reports a job dropped by doomed-job shedding
// (Config.ShedDoomed): the service concluded the job could no longer
// meet its deadline and failed it fast instead of burning a worker. It
// unwraps to context.DeadlineExceeded — from the client's seat a shed
// job is a deadline miss, just a cheap one.
type ShedError struct {
	// Reason is one of ShedExpired, ShedDoomed, ShedPhase.
	Reason string
	// Remaining is the budget left on the deadline at the shed decision
	// (negative when already expired); Estimate is the EWMA cost the
	// budget was compared against (zero for ShedExpired).
	Remaining, Estimate time.Duration
}

func (e *ShedError) Error() string {
	if e.Reason == ShedExpired {
		return fmt.Sprintf("service: job shed (%s): deadline passed %v ago", e.Reason, -e.Remaining)
	}
	return fmt.Sprintf("service: job shed (%s): %v remaining < %v estimated", e.Reason, e.Remaining, e.Estimate)
}

func (e *ShedError) Unwrap() error { return context.DeadlineExceeded }

// Config configures a Service. Cluster is required; everything else has
// a documented default.
type Config struct {
	// Cluster is the simulated multi-GPU system the proofs' MSMs run on.
	Cluster *gpusim.Cluster
	// Workers is the proving worker-pool size — the service's in-flight
	// bound. Default: one worker per DGX node of the cluster (each job's
	// MSMs already fan out across the node's GPUs; more workers would
	// oversubscribe the same simulated devices).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker: admission accepts
	// at most Workers+QueueDepth outstanding jobs. Default 2×Workers.
	QueueDepth int
	// QueuePolicy orders the pending queue: QueueEDF (the default) pops
	// the earliest-deadline job first so tight-deadline work is never
	// stuck behind long-deadline batch jobs; QueueFIFO keeps strict
	// arrival order. Deadline ties break by arrival order either way,
	// so EDF is exactly FIFO for uniform-timeout workloads.
	QueuePolicy QueuePolicy
	// CoalesceSlack gates circuit-affinity coalescing under EDF: a
	// worker may prefer a same-circuit job over the earliest-deadline
	// job only while that earliest deadline still has at least this
	// much slack — cache affinity is a throughput optimisation and must
	// never cause a miss the EDF order would have avoided. 0 uses the
	// 1s default; negative disables the gate (affinity always wins, the
	// legacy behaviour). Ignored under QueueFIFO.
	CoalesceSlack time.Duration
	// CircuitQuota bounds each circuit's share of the service, as a
	// fraction in (0, 1]: a circuit may hold at most
	// ceil(CircuitQuota·(Workers+QueueDepth)) outstanding jobs (submits
	// beyond that are rejected with a Quota-flagged QueueFullError) and
	// at most ceil(CircuitQuota·Workers) jobs on workers at once (the
	// scheduler passes over its jobs while it is at the limit). One hot
	// circuit can then never starve the rest of the mix. 0 (the
	// default) disables quotas.
	CircuitQuota float64
	// ShedDoomed enables doomed-job shedding: at dequeue, jobs whose
	// deadline already passed — or whose remaining budget is below the
	// circuit's EWMA prove time — are failed immediately as deadline
	// misses (*ShedError, unwrapping context.DeadlineExceeded) without
	// burning a worker on a prove; mid-prove, the same check runs
	// against each MSM phase's EWMA cost at the phase boundary. Off by
	// default: shedding pre-empts the documented guarantee that an
	// expired job's DeadlineExceeded surfaces from inside
	// groth16.ProveContext, so it is an explicit opt-in.
	ShedDoomed bool
	// MemoryBudget bounds the summed memory estimates of queued and
	// in-flight jobs, in bytes; 0 means unbounded.
	MemoryBudget int64
	// DefaultTimeout is the per-job deadline when the request does not
	// set one (default 1 minute). The deadline is end-to-end from Submit.
	DefaultTimeout time.Duration
	// Health tunes the cross-request GPU circuit breakers.
	Health gpusim.HealthConfig
	// Faults optionally injects deterministic GPU faults into every job's
	// MSMs (chaos testing); nil injects nothing.
	Faults *gpusim.FaultConfig
	// Retry tunes the MSM scheduler's fault handling.
	Retry core.RetryPolicy
	// VerifySampling is forwarded to the MSM scheduler (see
	// core.Options.VerifySampling).
	VerifySampling float64
	// WindowSize pins the MSM window size; 0 lets the planner choose.
	WindowSize int
	// DisableBaseCache turns off the per-circuit fixed-base cache:
	// RegisterCircuit then skips the proving-key table precomputation and
	// every job recomputes from the raw key columns (the pre-cache
	// behaviour; mostly useful for benchmarking the cache itself).
	DisableBaseCache bool
	// ProvePipelined runs every job's proof as a phase DAG instead of a
	// phase list: the quotient (on parallel coset NTTs) overlaps the
	// witness-only MSM phases and msm-Z starts the moment the quotient
	// lands. Each G1 phase gets a disjoint GPU sub-pool (clusters of
	// ≥ 4 devices) so concurrent MSMs never contend for a simulated
	// GPU. Proofs are byte-identical to the sequential prover; this is
	// the single-proof-latency knob, orthogonal to batch throughput.
	ProvePipelined bool
	// OnJobStart/OnJobDone, when set, are called on the worker goroutine
	// immediately before and after each job's proving pipeline —
	// observability hooks, also used by the tests to synchronise with the
	// pool.
	OnJobStart func(*Job)
	OnJobDone  func(*Job)
	// Metrics, when set, receives the service's operational metrics:
	// job outcomes and latency, queue depth, admission rejects, deadline
	// misses, the scheduler's fault/retry/steal/speculation rates and
	// per-GPU breaker-state gauges. Expose it with Registry.Handler (the
	// service's Handler mounts it at /metrics automatically). Nil
	// disables metrics at the cost of a nil check per event.
	Metrics *telemetry.Registry
	// TraceDir, when set, records a span trace of every job's proving
	// pipeline (Groth16 phases, MSM scatter/shard/reduce) and writes it
	// as Chrome trace_event JSON to TraceDir/job-<id>.trace.json when
	// the job reaches a terminal state. Empty disables tracing.
	TraceDir string
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = c.Cluster.Nodes()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = time.Minute
	}
	if c.CoalesceSlack == 0 {
		c.CoalesceSlack = time.Second
	}
	return c
}

// circuit is one registered proving target: the constraint system, its
// Groth16 keys, the server-side witness generator and the job memory
// estimate.
type circuit struct {
	name    string
	cs      *r1cs.System
	pk      *groth16.ProvingKey
	vk      *groth16.VerifyingKey
	witness func(seed int64) ([]field.Element, error)
	// memEst is the *marginal* per-job footprint (witness, NTT vectors,
	// quotient, scratch). The cached fixed-base tables are deliberately
	// NOT part of it: they are shared by every job of the circuit and
	// charged to the budget exactly once, at registration — charging them
	// per job double-counted the same tables once per queued job and made
	// the admission controller reject far below the real footprint.
	memEst int64
	// bases is the circuit's cached fixed-base precomputation; nil when
	// the cache is disabled, the budget had no room, or it was evicted.
	// Guarded by Service.mu; the pointed-to tables are immutable, so a
	// job that grabbed the pointer survives a concurrent eviction.
	bases *circuitBases
	// ewmaSec is the circuit's own completion-time EWMA, fed by the same
	// outcomes as the service-wide one. It prices this circuit's
	// retry-after hints and the doomed-job shed decision (a job whose
	// remaining budget is below it is a near-certain miss). Guarded by
	// Service.mu.
	ewmaSec float64
	// phaseEwma tracks the EWMA wall cost of each G1 MSM phase for this
	// circuit (indexed by groth16.MSMPhase), feeding the phase-boundary
	// shed check. Guarded by Service.mu.
	phaseEwma [4]float64
}

// circuitBases is one circuit's proving-key precomputation: §2.3.1
// per-window tables (with the GLV split folded in — BN254 G1 has
// cofactor 1, so every key column lives in the prime-order subgroup)
// for the four G1 columns, and the Jacobian-reduce fixed-base tables
// for the G2 column B2. Only witness-dependent work remains per job.
type circuitBases struct {
	g1      [4]*core.FixedBase // indexed by groth16.MSMPhase
	b2      *pairing.G2Precomputed
	mem     int64
	lastUse time.Time // LRU clock for eviction, under Service.mu
}

// JobState is the lifecycle of one job.
type JobState int32

const (
	JobQueued JobState = iota
	JobProving
	JobDone
)

// Job is one accepted proof request. Wait for it, or Cancel it.
type Job struct {
	ID      uint64
	Circuit string
	Seed    int64
	// Deadline is the job's end-to-end deadline, measured from Submit.
	Deadline time.Time

	svc    *Service
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	state JobState
	proof *groth16.Proof
	err   error
}

// Cancel aborts the job wherever it is — queued jobs fail without
// running, proving jobs unwind at the next cancellation point of the
// pipeline. Safe to call at any time, from any goroutine, repeatedly.
func (j *Job) Cancel() { j.cancel() }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or ctx is cancelled. On
// completion it returns the job's own result, whatever ctx did.
func (j *Job) Wait(ctx context.Context) (*groth16.Proof, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the terminal (proof, error) pair; it is only
// meaningful after Done is closed.
func (j *Job) Result() (*groth16.Proof, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.proof, j.err
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) finish(p *groth16.Proof, err error) {
	j.mu.Lock()
	j.state = JobDone
	j.proof = p
	j.err = err
	j.mu.Unlock()
	j.cancel() // release the deadline timer
	close(j.done)
}

// Stats is a counters snapshot of the service.
type Stats struct {
	Submitted uint64
	Rejected  uint64 // admission-control rejections (ErrQueueFull)
	Completed uint64 // proofs returned, verified
	Failed    uint64 // terminal errors (faults, verification, internal)
	Cancelled uint64 // context cancellations / deadline misses
	Queued    int    // jobs waiting for a worker, right now
	InFlight  int    // jobs on a worker, right now
	// MemoryInUse is the summed memory estimate of queued + in-flight
	// jobs plus the cached fixed-base tables, in bytes.
	MemoryInUse int64
	// Base-cache counters: jobs served from a circuit's cached tables
	// (hits), jobs that had to recompute from raw key columns (misses),
	// caches dropped under memory pressure (evictions), and the bytes
	// currently held by cached tables.
	BaseCacheHits      uint64
	BaseCacheMisses    uint64
	BaseCacheEvictions uint64
	BaseCacheBytes     int64
	// BatchesCoalesced counts worker dequeues that stayed on the
	// previous job's circuit (cache-affinity pops).
	BatchesCoalesced uint64
	// QueueReorders counts dequeues where the deadline order overtook
	// arrival order — the popped job was not the oldest pending one.
	// Zero under QueueFIFO (and under EDF with uniform timeouts); a
	// live EDF path under a mixed-deadline load must move it.
	QueueReorders uint64
	// QuotaRejected counts submissions rejected by the per-circuit
	// admission quota (a subset of Rejected).
	QuotaRejected uint64
	// Shed counters, by reason: jobs dropped by doomed-job shedding as
	// fast deadline misses (also counted in Cancelled). ShedExpired
	// jobs were already past deadline at dequeue, ShedDoomed had less
	// budget left than the circuit's EWMA prove time, ShedPhase ran out
	// of budget at a prover phase boundary mid-job.
	ShedExpired uint64
	ShedDoomed  uint64
	ShedPhase   uint64
}

// Service is the proving daemon. Build with New, stop with Shutdown.
type Service struct {
	cfg     Config
	eng     *groth16.Engine
	cluster *gpusim.Cluster // cfg.Cluster with the health registry attached
	health  *gpusim.HealthRegistry
	metrics *serviceMetrics // nil when Config.Metrics is unset
	// phasePools holds the per-phase GPU sub-pools of the pipelined
	// prover, indexed by groth16.MSMPhase. Nil entries mean "the whole
	// cluster" (sequential mode, or clusters too small to partition).
	phasePools [4][]int

	// baseCtx parents every job context; cancelling it (forced shutdown)
	// aborts all in-flight work.
	baseCtx   context.Context
	baseStop  context.CancelFunc
	workersWG sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signals queue arrivals, quota releases and shutdown
	circuits map[string]*circuit
	// queue is the waiting-job priority queue: EDF by default, strict
	// FIFO under Config.QueuePolicy == QueueFIFO, with circuit-affinity
	// coalescing layered on top (see nextJob): a worker prefers a job
	// of the circuit it just proved, so same-circuit jobs run back to
	// back on warm caches — bounded by coalesceBurst for fairness and,
	// under EDF, by Config.CoalesceSlack so affinity never endangers
	// the earliest deadline.
	queue jobQueue
	// inFlightBy / outstandingBy track each circuit's jobs on workers
	// and queued+on-workers — the occupancy the per-circuit quota
	// bounds and retry-after hints are computed from.
	inFlightBy    map[string]int
	outstandingBy map[string]int
	closed        bool
	nextID        uint64
	memInUse      int64
	queued        int
	inFlight      int
	stats         Stats
	// ewmaJobSec is the completion-time EWMA feeding retry-after hints.
	ewmaJobSec float64
}

// coalesceBurst bounds how many consecutive jobs a worker may pull by
// circuit affinity before it must take the queue head: same-circuit
// batches keep the base caches warm, the cap keeps other circuits from
// starving behind a deep single-circuit backlog.
const coalesceBurst = 16

// New validates the configuration, builds the Groth16 engine and the
// health registry, and starts the worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("%w: Config.Cluster is required", ErrBadRequest)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Faults != nil {
		// Validate eagerly: a bad fault config should fail service start,
		// not every job.
		if _, err := gpusim.NewFaultInjector(*cfg.Faults); err != nil {
			return nil, err
		}
	}
	if cfg.CircuitQuota < 0 || cfg.CircuitQuota > 1 {
		return nil, fmt.Errorf("%w: CircuitQuota = %v outside [0, 1]", ErrBadRequest, cfg.CircuitQuota)
	}
	if cfg.QueuePolicy != QueueEDF && cfg.QueuePolicy != QueueFIFO {
		return nil, fmt.Errorf("%w: unknown QueuePolicy %d", ErrBadRequest, cfg.QueuePolicy)
	}
	cfg = cfg.withDefaults()
	eng, err := groth16.NewEngine()
	if err != nil {
		return nil, err
	}
	reg := gpusim.NewHealthRegistry(cfg.Health)
	s := &Service{
		cfg:           cfg,
		eng:           eng,
		cluster:       cfg.Cluster.WithHealth(reg),
		health:        reg,
		circuits:      map[string]*circuit{},
		queue:         jobQueue{policy: cfg.QueuePolicy},
		inFlightBy:    map[string]int{},
		outstandingBy: map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.metrics = newServiceMetrics(cfg.Metrics, reg, s.cluster.N)
	if cfg.ProvePipelined {
		s.phasePools = phaseDevicePools(s.cluster.N)
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// phaseDevicePools partitions the cluster's GPUs into disjoint
// contiguous sub-pools, one per G1 MSM phase (A, B1, K, Z), so the
// pipelined prover's concurrent phases never queue shards onto the same
// simulated device. Clusters under four GPUs cannot be partitioned one
// pool per phase; they keep nil pools (every phase plans over the whole
// cluster — correct either way, since shards hold whole buckets).
func phaseDevicePools(n int) [4][]int {
	var pools [4][]int
	if n < 4 {
		return pools
	}
	for i := 0; i < 4; i++ {
		lo, hi := i*n/4, (i+1)*n/4
		pool := make([]int, 0, hi-lo)
		for g := lo; g < hi; g++ {
			pool = append(pool, g)
		}
		pools[i] = pool
	}
	return pools
}

// Engine exposes the service's Groth16 engine (marshalling, field).
func (s *Service) Engine() *groth16.Engine { return s.eng }

// Health returns the per-GPU breaker snapshot.
func (s *Service) Health() []gpusim.GPUHealth { return s.health.Snapshot(s.cluster.N) }

// Workers returns the proving-pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// RegisterCircuit runs the trusted setup for cs and registers it under
// name with a server-side witness generator (jobs reference circuits by
// name and carry only a witness seed — proof requests stay small). The
// context bounds the setup itself.
//
// Unless Config.DisableBaseCache is set, registration also precomputes
// the circuit's fixed-base tables — the §2.3.1 per-window tables (with
// the GLV split) for the G1 key columns A/B1/K/Z and the
// Jacobian-reduce tables for the G2 column B2 — so every job against
// the circuit runs only witness-dependent work. The tables are charged
// to the memory budget once, here; when the budget has no room (after
// evicting colder caches) the circuit registers uncached and jobs fall
// back to the raw key columns.
func (s *Service) RegisterCircuit(ctx context.Context, name string, cs *r1cs.System, witness func(seed int64) ([]field.Element, error)) error {
	if name == "" {
		return fmt.Errorf("%w: empty circuit name", ErrBadRequest)
	}
	pk, vk, err := s.eng.SetupContext(ctx, cs, rand.New(rand.NewSource(int64(len(name))+int64(cs.NVars))))
	if err != nil {
		return err
	}
	c := &circuit{name: name, cs: cs, pk: pk, vk: vk, witness: witness, memEst: estimateJobBytes(cs)}
	var bases *circuitBases
	if !s.cfg.DisableBaseCache {
		// Built outside s.mu — table construction is the expensive part of
		// registration and must not block Submit/Stats.
		if bases, err = s.buildBases(ctx, pk); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	if _, dup := s.circuits[name]; dup {
		return fmt.Errorf("%w: circuit %q already registered", ErrBadRequest, name)
	}
	if bases != nil {
		if s.cfg.MemoryBudget > 0 && s.memInUse+bases.mem > s.cfg.MemoryBudget {
			s.evictBasesLocked(s.memInUse + bases.mem - s.cfg.MemoryBudget)
		}
		if s.cfg.MemoryBudget > 0 && s.memInUse+bases.mem > s.cfg.MemoryBudget {
			bases = nil // no room even after eviction: register uncached
		} else {
			bases.lastUse = time.Now()
			s.memInUse += bases.mem
			s.stats.MemoryInUse = s.memInUse
			s.stats.BaseCacheBytes += bases.mem
			s.metrics.observeBaseSize(s.stats.BaseCacheBytes, false)
		}
	}
	c.bases = bases
	s.circuits[name] = c
	return nil
}

// buildBases precomputes a proving key's fixed-base tables. The context
// is checked between columns — table construction over a large key is
// the dominant cost of registration.
func (s *Service) buildBases(ctx context.Context, pk *groth16.ProvingKey) (*circuitBases, error) {
	b := &circuitBases{}
	opts := core.Options{WindowSize: s.cfg.WindowSize, GLV: true}
	for phase, col := range map[groth16.MSMPhase][]curve.PointAffine{
		groth16.PhaseA: pk.A, groth16.PhaseB1: pk.B1, groth16.PhaseK: pk.K, groth16.PhaseZ: pk.Z,
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fb, err := core.NewFixedBase(s.eng.P.Curve, col, opts)
		if err != nil {
			return nil, err
		}
		b.g1[phase] = fb
		b.mem += fb.MemoryBytes()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.b2 = s.eng.P.G2.Precompute(pk.B2, s.cfg.WindowSize, s.eng.Fr.Modulus.BitLen())
	b.mem += b.b2.MemoryBytes()
	return b, nil
}

// evictBasesLocked drops cached tables, coldest first, until need bytes
// are freed or no caches remain. Evicted circuits stay registered and
// fall back to raw key columns; in-flight jobs keep the (immutable)
// tables they already grabbed.
func (s *Service) evictBasesLocked(need int64) {
	for need > 0 {
		var victim *circuit
		for _, c := range s.circuits {
			if c.bases == nil {
				continue
			}
			if victim == nil || c.bases.lastUse.Before(victim.bases.lastUse) {
				victim = c
			}
		}
		if victim == nil {
			return
		}
		freed := victim.bases.mem
		victim.bases = nil
		need -= freed
		s.memInUse -= freed
		s.stats.MemoryInUse = s.memInUse
		s.stats.BaseCacheBytes -= freed
		s.stats.BaseCacheEvictions++
		s.metrics.observeBaseSize(s.stats.BaseCacheBytes, true)
	}
}

// RegisterSynthetic registers the n-constraint synthetic workload
// circuit under name. The circuit (a multiply chain
// x_{q+1} = x_q·(x_q + c_q) ending in a public output) is fixed, but
// its starting value is a free private input, so the witness generator
// derives x_0 from the job seed and walks the chain — every seed proves
// a different statement against the same proving key.
func (s *Service) RegisterSynthetic(ctx context.Context, name string, n int) error {
	f := s.eng.Fr
	cs, _ := r1cs.BuildSynthetic(f, n, 1)
	// Replay the builder's RNG to recover the chain coefficients baked
	// into the constraints (its first draw is the x_0 we re-derive).
	rnd := rand.New(rand.NewSource(1))
	f.Rand(rnd)
	coeffs := make([]field.Element, n)
	for q := range coeffs {
		coeffs[q] = f.Rand(rnd)
	}
	return s.RegisterCircuit(ctx, name, cs, func(seed int64) ([]field.Element, error) {
		w := cs.NewWitness()
		x := f.Rand(rand.New(rand.NewSource(seed)))
		// Variable layout of BuildSynthetic: slot 1 is the public output,
		// slots 2..2+n are the chain values x_0..x_n.
		for q := 0; q < n; q++ {
			w[2+q].Set(x)
			t := f.NewElement()
			f.Add(t, x, coeffs[q])
			next := f.NewElement()
			f.Mul(next, x, t)
			x = next
		}
		w[2+n].Set(x)
		w[1].Set(x)
		return w, nil
	})
}

// estimateJobBytes is the admission controller's per-job memory model:
// the witness, the three QAP evaluation vectors over the (padded)
// domain, and the quotient, at 32 bytes per field element, plus a fixed
// overhead for buckets and scratch.
func estimateJobBytes(cs *r1cs.System) int64 {
	d := 1
	for d < len(cs.Constraints)+1 {
		d <<= 1
	}
	const elem = 32
	return int64(cs.NVars+4*d)*elem + 1<<16
}

// Request is one proof submission.
type Request struct {
	// Circuit names a registered circuit.
	Circuit string
	// Seed parameterises the server-side witness generator; the same
	// (circuit, seed) always proves the same statement.
	Seed int64
	// Timeout is the end-to-end deadline measured from Submit; 0 uses
	// the service default.
	Timeout time.Duration
}

// Submit runs admission control and, if the job is accepted, enqueues
// it. It never blocks: over-capacity submissions fail immediately with
// a *QueueFullError (errors.Is ErrQueueFull) so clients can back off.
// The returned Job is live — Wait on it or Cancel it.
func (s *Service) Submit(req Request) (*Job, error) {
	jobs, err := s.SubmitBatch([]Request{req})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// SubmitBatch admits a group of proof requests atomically: either every
// job is accepted and enqueued, or none is and the batch fails with one
// error (admission is all-or-nothing so a client never has to unwind a
// half-accepted batch). Enqueued together, same-circuit jobs coalesce
// on the workers and amortise the circuit's cached fixed-base tables.
func (s *Service) SubmitBatch(reqs []Request) ([]*Job, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted += uint64(len(reqs))
	if s.closed {
		return nil, ErrShuttingDown
	}
	var batchMem int64
	for _, req := range reqs {
		c := s.circuits[req.Circuit]
		if c == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownCircuit, req.Circuit)
		}
		batchMem += c.memEst
	}
	// Admission bounds *outstanding* jobs: Workers in flight plus
	// QueueDepth waiting. A freshly accepted job counts as queued until a
	// worker dequeues it, so the two are bounded together. Jobs carry
	// only their marginal footprint — the circuit's cached tables were
	// charged once at registration.
	outstanding := s.queued + s.inFlight
	capacity := s.cfg.QueueDepth + s.cfg.Workers
	if outstanding+len(reqs) > capacity {
		s.stats.Rejected += uint64(len(reqs))
		s.metrics.observeAdmission(true)
		return nil, &QueueFullError{Queued: outstanding, Depth: capacity, RetryAfter: s.retryAfterLocked(reqs[0].Circuit)}
	}
	// Per-circuit quota: no circuit may hold more than its share of the
	// admission capacity, so one hot circuit cannot occupy every queue
	// slot and starve the rest of the mix. All-or-nothing like the
	// bounds above — the whole batch is rejected if any member circuit
	// would go over.
	if s.cfg.CircuitQuota > 0 {
		slots := s.quotaSlotsLocked()
		byCircuit := map[string]int{}
		for _, req := range reqs {
			byCircuit[req.Circuit]++
		}
		for name, n := range byCircuit {
			if s.outstandingBy[name]+n > slots {
				s.stats.Rejected += uint64(len(reqs))
				s.stats.QuotaRejected += uint64(len(reqs))
				s.metrics.observeAdmission(true)
				return nil, &QueueFullError{
					Queued: s.outstandingBy[name], Depth: slots,
					Quota: true, Circuit: name,
					RetryAfter: s.quotaRetryAfterLocked(name),
				}
			}
		}
	}
	if s.cfg.MemoryBudget > 0 && s.memInUse+batchMem > s.cfg.MemoryBudget {
		// Cached tables are reclaimable: drop cold ones before rejecting.
		s.evictBasesLocked(s.memInUse + batchMem - s.cfg.MemoryBudget)
	}
	if s.cfg.MemoryBudget > 0 && s.memInUse+batchMem > s.cfg.MemoryBudget {
		s.stats.Rejected += uint64(len(reqs))
		s.metrics.observeAdmission(true)
		return nil, &QueueFullError{Queued: outstanding, Depth: capacity, Memory: true, RetryAfter: s.retryAfterLocked(reqs[0].Circuit)}
	}
	s.metrics.observeAdmission(false)
	jobs := make([]*Job, len(reqs))
	now := time.Now()
	for i, req := range reqs {
		timeout := req.Timeout
		if timeout == 0 {
			timeout = s.cfg.DefaultTimeout
		}
		s.nextID++
		job := &Job{
			ID:       s.nextID,
			Circuit:  req.Circuit,
			Seed:     req.Seed,
			Deadline: now.Add(timeout),
			svc:      s,
			done:     make(chan struct{}),
		}
		job.ctx, job.cancel = context.WithDeadline(s.baseCtx, job.Deadline)
		s.queue.add(job)
		s.queued++
		s.outstandingBy[req.Circuit]++
		s.memInUse += s.circuits[req.Circuit].memEst
		jobs[i] = job
	}
	s.stats.Queued = s.queued
	s.stats.MemoryInUse = s.memInUse
	s.metrics.observeOccupancy(s.queued, s.inFlight, s.memInUse)
	if len(reqs) == 1 {
		s.cond.Signal()
	} else {
		s.cond.Broadcast()
	}
	return jobs, nil
}

// quotaSlotsLocked is the outstanding-job bound per circuit under
// Config.CircuitQuota: the circuit's share of the admission capacity,
// rounded up, never below one slot.
func (s *Service) quotaSlotsLocked() int {
	slots := int(math.Ceil(s.cfg.CircuitQuota * float64(s.cfg.Workers+s.cfg.QueueDepth)))
	if slots < 1 {
		slots = 1
	}
	return slots
}

// quotaLanesLocked is the in-flight bound per circuit under
// Config.CircuitQuota: the circuit's share of the worker pool, rounded
// up, never below one lane.
func (s *Service) quotaLanesLocked() int {
	lanes := int(math.Ceil(s.cfg.CircuitQuota * float64(s.cfg.Workers)))
	if lanes < 1 {
		lanes = 1
	}
	if lanes > s.cfg.Workers {
		lanes = s.cfg.Workers
	}
	return lanes
}

// circuitEwmaLocked is the best completion-time estimate for pricing a
// circuit's retry hints: the circuit's own EWMA when calibrated, the
// service-wide one otherwise, 1s before anything has completed.
func (s *Service) circuitEwmaLocked(circuit string) float64 {
	if c := s.circuits[circuit]; c != nil && c.ewmaSec > 0 {
		return c.ewmaSec
	}
	if s.ewmaJobSec > 0 {
		return s.ewmaJobSec
	}
	return 1
}

// retryAfterFloor keeps hints from telling clients to hot-loop.
const retryAfterFloor = 100 * time.Millisecond

// retryAfterLocked prices a capacity (or memory) rejection: admission
// needs exactly one outstanding slot, and one frees at the first
// terminal completion among the in-flight jobs — expected at about one
// job time divided by the number of jobs racing to finish. The old hint
// assumed the whole queue had to drain FIFO ahead of the newcomer,
// which is not how a bounded-outstanding admission check works (and
// under EDF the newcomer may well run before the backlog).
func (s *Service) retryAfterLocked(circuit string) time.Duration {
	racing := s.inFlight
	if racing < 1 {
		racing = 1
	}
	d := time.Duration(s.circuitEwmaLocked(circuit) / float64(racing) * float64(time.Second))
	if d < retryAfterFloor {
		d = retryAfterFloor
	}
	return d
}

// quotaRetryAfterLocked prices a per-circuit quota rejection: the
// circuit must drain its own backlog through its own in-flight lanes
// before a quota slot reliably frees, so the hint scales with the
// circuit's occupancy over its lane count at its own EWMA job time — an
// over-quota circuit is told to wait longer than one bouncing off
// global capacity, honestly reflecting that its slots are the scarce
// resource.
func (s *Service) quotaRetryAfterLocked(circuit string) time.Duration {
	occupancy := s.outstandingBy[circuit]
	if occupancy < 1 {
		occupancy = 1
	}
	d := time.Duration(s.circuitEwmaLocked(circuit) * float64(occupancy) / float64(s.quotaLanesLocked()) * float64(time.Second))
	if d < retryAfterFloor {
		d = retryAfterFloor
	}
	return d
}

// worker is one proving-pool goroutine: pull a job, shed it if it can
// no longer meet its deadline, otherwise run the pipeline under the
// job's deadline and publish the result. Exits when the queue is closed
// and drained.
func (s *Service) worker() {
	defer s.workersWG.Done()
	var lastCircuit string
	burst := 0
	for {
		job := s.nextJob(&lastCircuit, &burst)
		if job == nil {
			return
		}
		if shed := s.shedVerdict(job); shed != nil {
			s.shedJob(job, shed)
			continue
		}
		s.runJob(job)
	}
}

// nextJob blocks for the worker's next job, which is chosen in three
// layers:
//
//  1. Policy order: the earliest-deadline pending job (EDF, the
//     default) or the oldest (FIFO), skipping circuits at their
//     in-flight quota.
//  2. Circuit affinity: the worker prefers a job of the circuit it just
//     proved — same-circuit runs reuse the warm base cache back to back
//     — but after coalesceBurst consecutive affinity pops it must take
//     the policy head, so other circuits cannot starve, and under EDF
//     affinity is only allowed while the policy head's deadline has at
//     least Config.CoalesceSlack of slack left: cache warmth must never
//     cost a miss the deadline order would have avoided.
//  3. Quota gating: when every pending job's circuit is at its
//     in-flight quota the worker waits for a completion to free a lane
//     rather than oversubscribe a hot circuit.
//
// Returns nil when the service is closed and the queue drained; during
// shutdown the quota gate is dropped so draining cannot deadlock.
func (s *Service) nextJob(lastCircuit *string, burst *int) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queue.Len() == 0 {
			if s.closed {
				return nil
			}
			s.cond.Wait()
			continue
		}
		idx, reordered := s.selectLocked(*lastCircuit, *burst)
		if idx < 0 {
			// Everything pending is quota-blocked: a lane frees when an
			// in-flight job (there is at least one — every blocked circuit
			// holds at least a full lane) reaches a terminal state.
			s.cond.Wait()
			continue
		}
		job := s.queue.removeAt(idx)
		if reordered {
			s.stats.QueueReorders++
			s.metrics.observeReorder()
		}
		if job.Circuit == *lastCircuit {
			*burst++
			s.stats.BatchesCoalesced++
		} else {
			*lastCircuit = job.Circuit
			*burst = 1
		}
		return job
	}
}

// selectLocked picks the next job's heap index (see nextJob for the
// policy), or -1 when every pending job is quota-blocked. reordered
// reports a deadline-driven pop that overtook an older job — the
// QueueReorders signal.
func (s *Service) selectLocked(lastCircuit string, burst int) (idx int, reordered bool) {
	eligible := func(j *Job) bool { return s.laneFreeLocked(j.Circuit) }
	if s.closed {
		// Drain mode: quota gating is about fairness under load, and a
		// closing service must not strand queued jobs behind it.
		eligible = func(*Job) bool { return true }
	}
	head := s.queue.bestEligible(eligible)
	if head < 0 {
		return -1, false
	}
	pick := head
	if lastCircuit != "" && burst < coalesceBurst && s.queue.items[head].Circuit != lastCircuit &&
		s.affinityAllowedLocked(s.queue.items[head]) {
		if ai := s.queue.bestFor(lastCircuit, eligible); ai >= 0 {
			pick = ai
		}
	}
	oldest, haveOldest := s.queue.oldestID()
	reordered = s.cfg.QueuePolicy == QueueEDF && pick == head &&
		haveOldest && s.queue.items[pick].ID != oldest
	return pick, reordered
}

// affinityAllowedLocked gates circuit-affinity coalescing: under EDF a
// worker may bypass the earliest-deadline job for cache warmth only
// while that deadline still has Config.CoalesceSlack of headroom.
// Negative slack disables the gate; FIFO never had one.
func (s *Service) affinityAllowedLocked(head *Job) bool {
	if s.cfg.QueuePolicy == QueueFIFO || s.cfg.CoalesceSlack < 0 {
		return true
	}
	return time.Until(head.Deadline) >= s.cfg.CoalesceSlack
}

// laneFreeLocked reports whether the circuit is below its in-flight
// quota (always true with quotas off).
func (s *Service) laneFreeLocked(circuit string) bool {
	if s.cfg.CircuitQuota <= 0 {
		return true
	}
	return s.inFlightBy[circuit] < s.quotaLanesLocked()
}

// shedVerdict decides whether a just-dequeued job should be shed
// instead of proved: with Config.ShedDoomed on, a job past its deadline
// — or with less budget left than the circuit's EWMA prove time — is a
// near-certain miss and burning a worker on it only lengthens everyone
// else's tail. Returns nil to run the job.
func (s *Service) shedVerdict(job *Job) *ShedError {
	if !s.cfg.ShedDoomed {
		return nil
	}
	remaining := time.Until(job.Deadline)
	if remaining <= 0 {
		return &ShedError{Reason: ShedExpired, Remaining: remaining}
	}
	s.mu.Lock()
	ewma := s.circuits[job.Circuit].ewmaSec
	s.mu.Unlock()
	if est := time.Duration(ewma * float64(time.Second)); est > 0 && remaining < est {
		return &ShedError{Reason: ShedDoomed, Remaining: remaining, Estimate: est}
	}
	return nil
}

// shedJob fails a dequeued job without running it: accounting mirrors a
// deadline miss, minus the worker time. Shed jobs never feed the EWMAs
// — their near-zero wall time measures the shed decision, not job cost.
func (s *Service) shedJob(job *Job, shed *ShedError) {
	s.mu.Lock()
	c := s.circuits[job.Circuit]
	s.queued--
	s.outstandingBy[job.Circuit]--
	s.memInUse -= c.memEst
	s.stats.Queued = s.queued
	s.stats.MemoryInUse = s.memInUse
	s.stats.Cancelled++
	switch shed.Reason {
	case ShedExpired:
		s.stats.ShedExpired++
	default:
		s.stats.ShedDoomed++
	}
	s.metrics.observeOccupancy(s.queued, s.inFlight, s.memInUse)
	s.mu.Unlock()
	s.metrics.observeShed(shed.Reason)
	s.metrics.observeJob(outcomeDeadline, 0) // a shed consumes no worker time
	job.finish(nil, shed)
}

func (s *Service) runJob(job *Job) {
	s.mu.Lock()
	c := s.circuits[job.Circuit]
	bases := c.bases
	if bases != nil {
		bases.lastUse = time.Now()
		s.stats.BaseCacheHits++
	} else {
		s.stats.BaseCacheMisses++
	}
	s.metrics.observeBaseLookup(bases != nil)
	s.queued--
	s.inFlight++
	s.inFlightBy[job.Circuit]++
	s.stats.Queued = s.queued
	s.stats.InFlight = s.inFlight
	s.metrics.observeOccupancy(s.queued, s.inFlight, s.memInUse)
	s.mu.Unlock()
	job.mu.Lock()
	job.state = JobProving
	job.mu.Unlock()

	ctx := job.ctx
	var tr *telemetry.Tracer
	if s.cfg.TraceDir != "" {
		tr = telemetry.NewTracer(0)
		ctx = telemetry.NewContext(ctx, tr)
	}

	start := time.Now()
	if s.cfg.OnJobStart != nil {
		s.cfg.OnJobStart(job)
	}
	proof, err := s.prove(ctx, c, bases, job.Seed)
	if s.cfg.OnJobDone != nil {
		s.cfg.OnJobDone(job)
	}
	sec := time.Since(start).Seconds()

	outcome := outcomeCompleted
	var shed *ShedError
	switch {
	case err == nil:
	case errors.As(err, &shed):
		// A phase-boundary shed (the dequeue sheds never reach runJob):
		// a deadline miss on the wire, a distinct reason in the metrics.
		outcome = outcomeDeadline
	case errors.Is(err, context.DeadlineExceeded):
		outcome = outcomeDeadline
	case errors.Is(err, context.Canceled):
		outcome = outcomeCancelled
	default:
		outcome = outcomeFailed
	}

	s.mu.Lock()
	s.inFlight--
	s.inFlightBy[job.Circuit]--
	s.outstandingBy[job.Circuit]--
	s.memInUse -= c.memEst
	s.stats.InFlight = s.inFlight
	s.stats.MemoryInUse = s.memInUse
	s.metrics.observeOccupancy(s.queued, s.inFlight, s.memInUse)
	switch outcome {
	case outcomeCompleted:
		s.stats.Completed++
	case outcomeDeadline, outcomeCancelled:
		s.stats.Cancelled++
	default:
		s.stats.Failed++
	}
	if shed != nil {
		s.stats.ShedPhase++
	}
	// Every terminal outcome that consumed a worker feeds the
	// completion-time EWMAs (the service-wide one and the circuit's own)
	// — successes, deadline misses and failures alike. Updating it only
	// on success left a deadline-heavy (or fault-heavy) workload with a
	// stale or zero EWMA, so Retry-After hints never converged to the
	// observed job time. Two exclusions: pure client cancellations,
	// whose wall time measures the client's patience, not job cost; and
	// shed jobs, whose truncated wall time would talk the EWMA down and
	// make the shed threshold eat ever-healthier jobs.
	if outcome != outcomeCancelled && shed == nil {
		if s.ewmaJobSec == 0 {
			s.ewmaJobSec = sec
		} else {
			s.ewmaJobSec += 0.25 * (sec - s.ewmaJobSec)
		}
		if c.ewmaSec == 0 {
			c.ewmaSec = sec
		} else {
			c.ewmaSec += 0.25 * (sec - c.ewmaSec)
		}
	}
	// A finished job frees its circuit's in-flight lane: wake workers
	// parked on the quota gate.
	if s.cfg.CircuitQuota > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if shed != nil {
		s.metrics.observeShed(ShedPhase)
	}
	s.metrics.observeJob(outcome, sec)

	if tr != nil {
		// Written before finish so the file is complete by the time a
		// waiting client observes the terminal state. Best-effort: a
		// failed trace write never fails the job.
		path := filepath.Join(s.cfg.TraceDir, fmt.Sprintf("job-%d.trace.json", job.ID))
		_ = tr.WriteChromeTraceFile(path)
	}
	job.finish(proof, err)
}

// prove runs the full pipeline for one job: witness generation, Groth16
// proving with the G1 MSMs on the health-gated multi-GPU cluster, and
// the service's own verification of the result. ctx is honoured at
// every phase boundary of every stage. bases, when non-nil, routes each
// key-column MSM through the circuit's cached fixed-base tables (the
// snapshot taken at dequeue — a concurrent eviction cannot pull the
// immutable tables out from under the job).
func (s *Service) prove(ctx context.Context, c *circuit, bases *circuitBases, seed int64) (*groth16.Proof, error) {
	w, err := c.witness(seed)
	if err != nil {
		return nil, err
	}
	// No pre-flight deadline check here: a job that is already past its
	// deadline must fail from inside groth16.ProveContext (its entry
	// cancellation point), proving the context reaches the pipeline.
	pr := groth16.Provers{
		// The ctx-aware form: the pipelined prover passes its per-proof
		// group context, so the first failing phase cancels the other
		// phases' MSMs at their next shard boundary.
		G1Ctx: func(msmCtx context.Context, phase groth16.MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
			// Phase-boundary shedding: before launching the phase's MSM,
			// compare the remaining deadline budget against the circuit's
			// EWMA cost of this phase. A job that cannot afford the phase
			// is dropped here — between phases, never inside the MSM
			// scheduler, so the shards, plans and proofs of every job that
			// is NOT shed stay bit-identical to an unshedded run.
			if s.cfg.ShedDoomed {
				if dl, ok := msmCtx.Deadline(); ok {
					s.mu.Lock()
					est := time.Duration(c.phaseEwma[phase] * float64(time.Second))
					s.mu.Unlock()
					if remaining := time.Until(dl); est > 0 && remaining < est {
						return nil, &ShedError{Reason: ShedPhase, Remaining: remaining, Estimate: est}
					}
				}
			}
			phaseStart := time.Now()
			opts := core.Options{
				WindowSize:     s.cfg.WindowSize,
				Engine:         core.EngineConcurrent,
				Faults:         s.cfg.Faults,
				Retry:          s.cfg.Retry,
				VerifySampling: s.cfg.VerifySampling,
				Tracer:         telemetry.FromContext(ctx),
				// Pipelined proofs run G1 phases concurrently: each
				// phase schedules onto its own GPU sub-pool (nil =
				// whole cluster), so two phases never queue shards on
				// the same simulated device.
				Devices: s.phasePools[phase],
			}
			if bases != nil {
				opts.FixedBase = bases.g1[phase]
			}
			res, err := core.RunContext(msmCtx, s.eng.P.Curve, s.cluster, points, scalars, opts)
			if err != nil {
				return nil, err
			}
			// Calibrate the circuit's per-phase cost model for the shed
			// check above (completed phases only — a cancelled phase's
			// wall time measures the deadline, not the phase).
			sec := time.Since(phaseStart).Seconds()
			s.mu.Lock()
			if c.phaseEwma[phase] == 0 {
				c.phaseEwma[phase] = sec
			} else {
				c.phaseEwma[phase] += 0.25 * (sec - c.phaseEwma[phase])
			}
			s.mu.Unlock()
			s.metrics.observeMSM(res.Stats.Faults)
			return res.Point, nil
		},
	}
	if bases != nil && bases.b2 != nil {
		pr.G2Ctx = func(msmCtx context.Context, _ []pairing.G2Affine, scalars []*big.Int) (pairing.G2Affine, error) {
			return bases.b2.MSMContext(msmCtx, scalars)
		}
	}
	if s.cfg.ProvePipelined {
		pr.Pipeline = &groth16.PipelineOptions{
			OnPhase: s.metrics.observePhase,
		}
	}
	proof, err := s.eng.ProveContextWith(ctx, c.cs, c.pk, w, rand.New(rand.NewSource(seed)), pr)
	if err != nil {
		return nil, err
	}
	ok, err := s.eng.Verify(c.vk, proof, w[1:1+c.cs.NPublic])
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrProofRejected
	}
	return proof, nil
}

// VerifyingKey returns the registered circuit's verifying key.
func (s *Service) VerifyingKey(name string) (*groth16.VerifyingKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.circuits[name]
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCircuit, name)
	}
	return c.vk, nil
}

// Stats returns a counters snapshot.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Shutdown stops the service: admission closes immediately (further
// Submits fail with ErrShuttingDown), queued and in-flight jobs drain
// until ctx expires, then everything still running is cancelled and the
// pool is joined unconditionally. Shutdown returns nil on a clean drain
// and ctx.Err() if it had to cancel; either way no service goroutine
// survives the call. Safe to call once.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workersWG.Wait()
		return nil
	}
	s.closed = true
	s.cond.Broadcast() // wake idle workers so they observe the close
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseStop() // cancel every in-flight job
		<-drained
	}
	s.baseStop()
	return err
}
