package cluster

import (
	"testing"
	"time"
)

// FuzzClusterWire throws arbitrary bytes at every wire parser and at
// the coordinator's registration/heartbeat/deregistration surface. The
// invariants: no parser panics, parse-rejected input never reaches
// coordinator state, and — the leak that matters — junk can never grow
// the node table past MaxNodes, and an unknown-node heartbeat never
// creates a table entry at all.
func FuzzClusterWire(f *testing.F) {
	// One coordinator shared across iterations: state accumulated from
	// accepted messages makes later iterations probe a populated table.
	c := NewCoordinator(Config{
		MaxNodes:   8,
		Lease:      time.Hour, // the sweeper must not race the fuzzer's table checks
		DialWorker: func(addr string) WorkerClient { return proofClient([]byte("p")) },
	})
	f.Cleanup(c.Close)

	f.Add([]byte(`{"node_id":"n1","addr":"http://10.0.0.7:8080","circuits":["synthetic"],"workers":8}`))
	f.Add([]byte(`{"node_id":"n1","seq":1,"queued":2,"in_flight":1}`))
	f.Add([]byte(`{"node_id":"n1"}`))
	f.Add([]byte(`{"job_id":7,"circuit":"synthetic","seed":42,"timeout_ms":1000}`))
	f.Add([]byte(`{"job_id":7,"proof":"deadbeef"}`))
	f.Add([]byte(`{"job_id":7,"error":"boom"}`))
	f.Add([]byte(`{"circuit":"synthetic","seed":-9223372036854775808}`))
	f.Add([]byte(`{"node_id":"` + string(make([]byte, 65)) + `"}`))
	f.Add([]byte(`{"node_id":"n1","seq":18446744073709551615}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[[[[[[`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Every parser must reject or accept without panicking.
		regReq, regErr := ParseRegisterRequest(data)
		hbReq, hbErr := ParseHeartbeatRequest(data)
		deregReq, deregErr := ParseDeregisterRequest(data)
		if _, err := ParseDispatchRequest(data); err == nil {
			// accepted dispatch requests carry validated names and bounds
		}
		if w, proof, err := ParseDispatchResponse(data); err == nil {
			if w.Error == "" && len(proof) == 0 {
				t.Fatal("dispatch response accepted with neither proof bytes nor error")
			}
		}
		if _, err := ParseProveRequest(data); err == nil {
			// accepted prove requests carry validated names and bounds
		}

		// Accepted messages drive the coordinator; rejected ones must not.
		before := len(c.Snapshot())
		if regErr == nil {
			_, _ = c.Register(regReq)
		}
		if hbErr == nil {
			resp, err := c.Heartbeat(hbReq)
			if err == nil && !resp.OK && resp.Reregister {
				// Unknown node: the answer must not have created an entry.
				if got := len(c.Snapshot()); got != before && regErr != nil {
					t.Fatalf("unknown-node heartbeat grew the table: %d → %d", before, got)
				}
			}
		}
		if deregErr == nil {
			_ = c.Deregister(deregReq)
		}
		if got := len(c.Snapshot()); got > 8 {
			t.Fatalf("node table grew past MaxNodes: %d entries", got)
		}
	})
}
