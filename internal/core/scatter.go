package core

import "fmt"

// BlockConfig describes the thread-block geometry of the scatter kernels.
type BlockConfig struct {
	// Threads per thread block.
	Threads int
	// K is the coefficients each thread caches in registers per pass
	// (Algorithm 3); a block locally scatters Threads×K points.
	K int
}

// DefaultBlock is the configuration the paper quotes: 1024 threads with
// 128 KB of shared memory for point-id storage scatter 64K points locally.
func DefaultBlock() BlockConfig { return BlockConfig{Threads: 1024, K: 64} }

// PointsPerBlock returns the points one block scatters per pass.
func (b BlockConfig) PointsPerBlock() int { return b.Threads * b.K }

// ScatterStats counts the simulated-hardware events of a scatter.
type ScatterStats struct {
	GlobalAtomics int // atomic ops on device-memory bucket descriptors
	SharedAtomics int // atomic ops on shared-memory counters/offsets
	Passes        int // thread-block passes (shared-memory refills)
}

// ScatterResult is a window's bucket assignment: Buckets[b] lists signed
// point references (ref = idx+1, negative when the point enters negated),
// exactly as the GPU's bucket arrays would after the scatter kernels.
type ScatterResult struct {
	Buckets [][]int32
	Stats   ScatterStats
}

// bucketRef encodes digit d of point idx as (bucket, signed reference);
// returns bucket -1 for zero digits (skipped).
func bucketRef(idx int, d int32) (int, int32) {
	if d == 0 {
		return -1, 0
	}
	ref := int32(idx + 1)
	if d < 0 {
		return int(-d), -ref
	}
	return int(d), ref
}

// NaiveScatter is the baseline bucket scatter: every point issues one
// global atomic to allocate a slot in its bucket (§3.2.1's strawman).
func NaiveScatter(digits []int32, nBuckets int) (*ScatterResult, error) {
	if nBuckets < 2 {
		return nil, fmt.Errorf("core: scatter needs at least 2 buckets, got %d", nBuckets)
	}
	res := &ScatterResult{Buckets: make([][]int32, nBuckets)}
	for i, d := range digits {
		b, ref := bucketRef(i, d)
		if b < 0 {
			continue
		}
		if b >= nBuckets {
			return nil, fmt.Errorf("core: digit %d out of bucket range %d", d, nBuckets)
		}
		res.Buckets[b] = append(res.Buckets[b], ref)
		res.Stats.GlobalAtomics++
	}
	return res, nil
}

// HierarchicalScatter is the three-level bucket scatter of Algorithm 3:
// each thread block locally scatters Threads×K points through shared
// memory (per-point shared atomics for counting and placement, a parallel
// prefix sum for exact per-bucket offsets) and then commits each
// non-empty local bucket to global memory with a single global atomic.
// The produced buckets hold the same point multisets as NaiveScatter —
// only the intra-bucket order and the atomic traffic differ.
func HierarchicalScatter(digits []int32, nBuckets int, block BlockConfig) (*ScatterResult, error) {
	if nBuckets < 2 {
		return nil, fmt.Errorf("core: scatter needs at least 2 buckets, got %d", nBuckets)
	}
	if block.Threads <= 0 || block.K <= 0 {
		return nil, fmt.Errorf("core: invalid block config %+v", block)
	}
	res := &ScatterResult{Buckets: make([][]int32, nBuckets)}
	per := block.PointsPerBlock()
	counts := make([]int, nBuckets)
	localRefs := make([][]int32, nBuckets)
	for lo := 0; lo < len(digits); lo += per {
		hi := lo + per
		if hi > len(digits) {
			hi = len(digits)
		}
		res.Stats.Passes++
		// Level 1: count digits into shared counters (one shared atomic
		// per point; the bucket id stays in a register).
		for i := range counts {
			counts[i] = 0
		}
		for i := lo; i < hi; i++ {
			b, _ := bucketRef(i, digits[i])
			if b < 0 {
				continue
			}
			if b >= nBuckets {
				return nil, fmt.Errorf("core: digit %d out of bucket range %d", digits[i], nBuckets)
			}
			counts[b]++
			res.Stats.SharedAtomics++
		}
		// Level 2: prefix sum gives each bucket exactly its element count
		// of shared memory (Figure 4b); each point is placed with one
		// shared atomic on its bucket's offset.
		for i := range localRefs {
			localRefs[i] = localRefs[i][:0]
		}
		for i := lo; i < hi; i++ {
			b, ref := bucketRef(i, digits[i])
			if b < 0 {
				continue
			}
			localRefs[b] = append(localRefs[b], ref)
			res.Stats.SharedAtomics++
		}
		// Level 3: one global atomic per non-empty local bucket reserves
		// the device-memory range; the block then writes its points.
		for b, refs := range localRefs {
			if len(refs) == 0 {
				continue
			}
			res.Stats.GlobalAtomics++
			res.Buckets[b] = append(res.Buckets[b], refs...)
		}
	}
	return res, nil
}

// SharedBytesNeeded returns the shared memory one block needs for the
// local scatter: 2 bytes per point id (reg_idx‖tid fits 16 bits) plus a
// 4-byte counter per bucket. §5.3.2 notes execution fails when this
// exceeds the device's shared memory (s > 14 on the A100).
func SharedBytesNeeded(block BlockConfig, nBuckets int) int {
	return 2*block.PointsPerBlock() + 4*nBuckets
}
