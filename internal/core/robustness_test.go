package core

import (
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/msm"
)

// Failure-injection / adversarial-input tests for the functional DistMSM
// path: extreme scalars, degenerate point sets, and mixed-sign digit
// streams must all reduce to the double-and-add reference.

func TestRunExtremeScalars(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 4)
	points := c.SamplePoints(8, 101)
	w := (c.ScalarBits + 63) / 64

	allOnes := bigint.New(w)
	for i := 0; i < c.ScalarBits; i++ {
		allOnes[i/64] |= 1 << (uint(i) % 64)
	}
	one := bigint.New(w)
	one.SetUint64(1)
	powTwo := bigint.New(w)
	powTwo[w-1] = 1 << 61 // the isolated top in-range bit (position 253)

	scalars := []bigint.Nat{
		allOnes,         // forces carries through every signed window
		bigint.New(w),   // zero
		one,             // identity coefficient
		powTwo,          // isolated high bit
		allOnes.Clone(), // duplicate of an extreme value
		one.Clone(),     // duplicate small value
		allOnes.Clone(), // triplicate
		bigint.New(w),   // another zero
	}
	want := c.MSMReference(points, scalars)
	for _, opts := range []Options{
		{WindowSize: 7},
		{WindowSize: 13, Unsigned: true},
		{WindowSize: 4, ForceNaiveScatter: true},
	} {
		res, err := Run(c, cl, points, scalars, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Fatalf("%+v: extreme-scalar MSM mismatch", opts)
		}
	}
}

// Scalars wider than the curve's λ must be rejected, not silently
// truncated (found by this very test before the guard existed).
func TestRunRejectsOverwideScalars(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	points := c.SamplePoints(1, 110)
	w := (c.ScalarBits + 63) / 64
	tooWide := bigint.New(w)
	tooWide[w-1] = 1 << 62 // bit 254 == 2^λ
	if _, err := Run(c, cl, points, []bigint.Nat{tooWide}, Options{WindowSize: 8}); err == nil {
		t.Fatal("over-wide scalar accepted")
	}
}

func TestRunDegeneratePointSets(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	cl := cluster(t, 8)
	base := c.SamplePoints(1, 102)[0]
	neg := curve.PointAffine{X: base.X.Clone(), Y: base.Y.Clone()}
	c.NegAffine(&neg)

	// All the same point, plus its negation, plus infinities: every
	// bucket-edge (doubling, cancellation, skip) fires.
	points := []curve.PointAffine{base, base, neg, {Inf: true}, base, neg, {Inf: true}, base}
	scalars := c.SampleScalars(len(points), 103)
	want := c.MSMReference(points, scalars)
	res, err := Run(c, cl, points, scalars, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("degenerate point-set MSM mismatch")
	}
}

func TestRunStatsConsistency(t *testing.T) {
	// The recorded PACC count must match the nonzero-digit count the
	// plan implies (one accumulate per scattered point).
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	n := 64
	points := c.SamplePoints(n, 104)
	scalars := c.SampleScalars(n, 105)
	res, err := Run(c, cl, points, scalars, Options{WindowSize: 9, Unsigned: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count nonzero digits directly with the streaming recoder.
	plan := res.Plan
	rec := msm.NewWindowRecoder(scalars, c.ScalarBits, plan.S, plan.Signed)
	var nonzero uint64
	var digits []int32
	for j := 0; j < plan.Windows; j++ {
		digits = rec.Window(j, digits)
		for _, d := range digits {
			if d != 0 {
				nonzero++
			}
		}
	}
	if res.Stats.PACCOps != nonzero {
		t.Fatalf("PACC ops %d != nonzero digits %d", res.Stats.PACCOps, nonzero)
	}
	if res.Stats.Scatter.GlobalAtomics == 0 {
		t.Fatal("scatter stats missing")
	}
}
