package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPProveRoundTrip drives the JSON API end to end: submit over
// HTTP, decode the hex proof, unmarshal and verify it out of band.
func TestHTTPProveRoundTrip(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/prove", "application/json",
		strings.NewReader(`{"circuit":"synthetic","seed":11}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /prove: status %d", resp.StatusCode)
	}
	var out struct {
		JobID uint64 `json:"job_id"`
		Proof string `json:"proof"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	raw, err := hex.DecodeString(out.Proof)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := svc.eng.UnmarshalProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	vk, err := svc.VerifyingKey("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	w, err := svc.circuits["synthetic"].witness(11)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := svc.eng.Verify(vk, proof, w[1:1+svc.circuits["synthetic"].cs.NPublic])
	if err != nil || !ok {
		t.Fatalf("HTTP-delivered proof failed verification: ok=%v err=%v", ok, err)
	}

	// Error mapping: unknown circuit → 404, malformed body → 400.
	resp, err = http.Post(srv.URL+"/prove", "application/json", strings.NewReader(`{"circuit":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown circuit: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/prove", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Health and stats endpoints respond with JSON.
	for _, path := range []string{"/healthz", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	srv.Close()
	shutdownClean(t, svc)
	check()
}

// TestHTTPBatchRoundTrip drives POST /v1/batch end to end: the response
// lists one entry per job in request order, each proof verifies, and
// the batch shows up as base-cache hits. Also pins the versioned /v1/
// aliases and the batch error mapping.
func TestHTTPBatchRoundTrip(t *testing.T) {
	check := leakCheck(t)
	// A 2-GPU cluster is one scheduling node → 1 worker and a depth-2
	// queue by default; give the batch room to be admitted whole.
	svc := newTestService(t, 2, 64, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 8
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	const n = 4
	body := `{"jobs":[`
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`{"circuit":"synthetic","seed":%d}`, 100+i)
	}
	body += `]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/batch: status %d", resp.StatusCode)
	}
	var out struct {
		Jobs []struct {
			JobID uint64 `json:"job_id"`
			Proof string `json:"proof"`
			Error string `json:"error"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != n {
		t.Fatalf("got %d batch entries, want %d", len(out.Jobs), n)
	}
	vk, err := svc.VerifyingKey("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	for i, entry := range out.Jobs {
		if entry.Error != "" {
			t.Fatalf("batch entry %d failed: %s", i, entry.Error)
		}
		raw, err := hex.DecodeString(entry.Proof)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		proof, err := svc.eng.UnmarshalProof(raw)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		// Entries come back in request order: entry i proves seed 100+i.
		w, err := svc.circuits["synthetic"].witness(int64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		ok, err := svc.eng.Verify(vk, proof, w[1:1+svc.circuits["synthetic"].cs.NPublic])
		if err != nil || !ok {
			t.Fatalf("entry %d proof failed verification: ok=%v err=%v", i, ok, err)
		}
	}
	if st := svc.Stats(); st.BaseCacheHits != n {
		t.Fatalf("BaseCacheHits = %d after HTTP batch, want %d", st.BaseCacheHits, n)
	}

	// The v1 prove alias serves the same handler as the legacy path.
	resp, err = http.Post(srv.URL+"/v1/prove", "application/json",
		strings.NewReader(`{"circuit":"synthetic","seed":9}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/prove: status %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/healthz", "/v1/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// Error mapping: empty batch and an over-cap batch are both 400;
	// an unknown circuit anywhere rejects the whole batch with 404.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"jobs":[]}`, http.StatusBadRequest},
		{`{"jobs":[` + strings.Repeat(`{"circuit":"x"},`, maxBatchJobs) + `{"circuit":"x"}]}`, http.StatusBadRequest},
		{`{"jobs":[{"circuit":"synthetic","seed":1},{"circuit":"nope","seed":2}]}`, http.StatusNotFound},
	} {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("batch %q: status %d, want %d", tc.body[:min(len(tc.body), 40)], resp.StatusCode, tc.want)
		}
	}

	srv.Close()
	shutdownClean(t, svc)
	check()
}
