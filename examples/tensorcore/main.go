// tensorcore: demonstrate the §4.3 tensor-core Montgomery multiplication
// — big integers as uint8 digit matrices, the 23-bit expanded outputs,
// the fragment-layout column shuffle, and on-the-fly compaction — and
// check it bit-for-bit against the CUDA-core (CIOS) path.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"distmsm/internal/bigint"
	"distmsm/internal/tensorcore"
)

func main() {
	// The BN254 base field modulus: the constant operand of the m×n
	// multiplication in Montgomery reduction.
	p, _ := new(big.Int).SetString(
		"21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)
	mont, err := bigint.NewMontgomery(p)
	if err != nil {
		log.Fatal(err)
	}
	w := mont.Width()

	// A warp-level batch of 8 independent Montgomery products (Fig. 7a).
	rnd := rand.New(rand.NewSource(1))
	var xs, ys, zs [tensorcore.Batch]bigint.Nat
	for i := range xs {
		xs[i] = bigint.FromBig(new(big.Int).Rand(rnd, p), w)
		ys[i] = bigint.FromBig(new(big.Int).Rand(rnd, p), w)
		zs[i] = bigint.New(w)
	}

	tc := tensorcore.NewMontMultiplier(mont)
	tc.Compact = true
	tc.MulBatch(&zs, &xs, &ys)

	allMatch := true
	for i := range zs {
		want := bigint.New(w)
		mont.MulCIOS(want, xs[i], ys[i])
		if !zs[i].Equal(want) {
			allMatch = false
		}
	}
	fmt.Printf("tensor-core Montgomery products match CIOS bit-for-bit: %v\n", allMatch)

	cnt := tc.Counters()
	fmt.Printf("simulated hardware: %d MMA (8x8x16) tile ops, %d in-register compaction MADs, %d fragment memory writes\n",
		cnt.MMAOps, cnt.CompactOps, cnt.MemWrites)

	// The naive path writes the 4x-expanded fragments through memory.
	tcNaive := tensorcore.NewMontMultiplier(mont)
	tcNaive.Compact = false
	tcNaive.MulBatch(&zs, &xs, &ys)
	fmt.Printf("without on-the-fly compaction the same batch writes %d expanded uint32 fragments to memory\n",
		tcNaive.Counters().MemWrites)

	// The Figure 7 layout property: under the natural fragment layout,
	// groups of four consecutive outputs straddle threads; after the
	// column shuffle every group is thread-local.
	naiveLocal, shuffledLocal := 0, 0
	const groups = 16
	for g := 0; g < groups; g++ {
		if tensorcore.GroupThreadLocal(tensorcore.NaiveOwner, g) {
			naiveLocal++
		}
		if tensorcore.GroupThreadLocal(tensorcore.ShuffledOwner, g) {
			shuffledLocal++
		}
	}
	fmt.Printf("compaction groups thread-local: natural layout %d/%d, shuffled layout %d/%d\n",
		naiveLocal, groups, shuffledLocal, groups)
}
