package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distmsm/internal/telemetry"
)

// TestEWMAFeedsFromDeadlineMisses pins the retry-after calibration fix:
// the completion-time EWMA must learn from every terminal outcome that
// consumed a worker, not only successes. A deadline-only workload used
// to leave the EWMA at zero, so QueueFullError.RetryAfter fell back to
// the 1s default hint forever instead of converging to the observed
// job time.
func TestEWMAFeedsFromDeadlineMisses(t *testing.T) {
	defer leakCheck(t)()
	const hold = 150 * time.Millisecond
	svc := newTestService(t, 2, 64, func(cfg *Config) {
		cfg.Workers = 1
		cfg.OnJobStart = func(*Job) { time.Sleep(hold) }
	})
	defer shutdownClean(t, svc)

	// Three jobs whose deadline expires while the worker holds them:
	// every one terminates with DeadlineExceeded after ~hold.
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1), Timeout: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("job %d err = %v, want DeadlineExceeded", i, err)
		}
	}

	svc.mu.Lock()
	ewma := svc.ewmaJobSec
	svc.mu.Unlock()
	if ewma <= 0 {
		t.Fatal("ewmaJobSec still zero after three deadline misses — deadline outcomes not feeding the EWMA")
	}
	if ewma < hold.Seconds()/2 || ewma > 10*hold.Seconds() {
		t.Fatalf("ewmaJobSec = %.3fs, want around the observed %.3fs job time", ewma, hold.Seconds())
	}

	// Fill the service (1 worker + 2 queue slots) and overflow it: the
	// rejection's Retry-After must be derived from the learned EWMA
	// (sub-second here), not the 1s-per-job fallback (≥ 3s at this
	// occupancy).
	var jobs []*Job
	for i := 0; i < 3; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(100 + i), Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	_, err := svc.Submit(Request{Circuit: "synthetic", Seed: 999})
	var full *QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("overflow submit err = %v, want QueueFullError", err)
	}
	if full.RetryAfter < 100*time.Millisecond || full.RetryAfter > 2*time.Second {
		t.Errorf("RetryAfter = %v, want a hint near 3 × %.3fs (and far below the 3s zero-EWMA fallback)",
			full.RetryAfter, ewma)
	}
	for _, job := range jobs {
		job.Cancel()
		<-job.Done()
	}
}

// TestMetricsEndpoint drives one successful job and scrapes /metrics:
// the job outcome, latency histogram, per-MSM scheduler counters and
// per-GPU breaker gauges must all be exposed in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	defer leakCheck(t)()
	reg := telemetry.NewRegistry()
	svc := newTestService(t, 2, 64, func(cfg *Config) { cfg.Metrics = reg })
	defer shutdownClean(t, svc)

	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	out := string(body)
	for _, want := range []string{
		"distmsm_jobs_submitted_total 1",
		`distmsm_jobs_total{outcome="completed"} 1`,
		"distmsm_job_seconds_count 1",
		// One Groth16 proof routes exactly four G1 MSMs (A, B1, K, Z)
		// through the scheduler.
		"distmsm_msm_runs_total 4",
		`distmsm_gpu_breaker_state{gpu="0"} 0`,
		`distmsm_gpu_breaker_state{gpu="1"} 0`,
		"distmsm_queue_depth 0",
		"distmsm_inflight_jobs 0",
		"# TYPE distmsm_job_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsAdmissionRejects: admission-control rejections are counted.
func TestMetricsAdmissionRejects(t *testing.T) {
	defer leakCheck(t)()
	reg := telemetry.NewRegistry()
	block := make(chan struct{})
	svc := newTestService(t, 2, 64, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.OnJobStart = func(*Job) { <-block }
	})
	defer shutdownClean(t, svc)

	var jobs []*Job
	for i := 0; i < 2; i++ { // fill worker + queue
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if _, err := svc.Submit(Request{Circuit: "synthetic", Seed: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	out := reg.WritePrometheus()
	if !strings.Contains(out, "distmsm_admission_rejects_total 1") {
		t.Errorf("admission reject not counted:\n%s", out)
	}
	if !strings.Contains(out, "distmsm_jobs_submitted_total 3") {
		t.Errorf("submissions not counted:\n%s", out)
	}
	close(block)
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceDirWritesChromeTrace proves a job's whole pipeline —
// Groth16 phases and MSM shard executions — lands in a loadable Chrome
// trace file when Config.TraceDir is set, complete by the time the
// client observes the terminal state.
func TestTraceDirWritesChromeTrace(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()
	svc := newTestService(t, 2, 64, func(cfg *Config) { cfg.TraceDir = dir })
	defer shutdownClean(t, svc)

	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "job-1.trace.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"quotient", "msm-A", "msm-K", "msm-Z", "shard", "scatter", "bucket-reduce", "window-reduce"} {
		if !seen[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}
