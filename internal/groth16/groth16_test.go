package groth16

import (
	"context"
	"math/rand"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
	"distmsm/internal/r1cs"
)

func newEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProveVerifyProduct(t *testing.T) {
	e := newEngine(t)
	fr := e.Fr
	cs, _, _ := r1cs.BuildProduct(fr)
	rnd := rand.New(rand.NewSource(1))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	a := fr.FromUint64(6700417)
	b := fr.FromUint64(274177)
	w, err := r1cs.WitnessProduct(cs, a, b)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := fr.NewElement()
	fr.Mul(c, a, b)
	ok, err := e.Verify(vk, proof, []field.Element{c})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid proof rejected")
	}

	// Wrong public input must fail.
	wrong := fr.FromUint64(42)
	ok, err = e.Verify(vk, proof, []field.Element{wrong})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("proof accepted for wrong public input")
	}

	// Tampered proof must fail.
	bad := *proof
	bad.A = curve.PointAffine{X: proof.C.X, Y: proof.C.Y}
	ok, err = e.Verify(vk, &bad, []field.Element{c})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered proof accepted")
	}

	// Mismatched public-input arity errors.
	if _, err := e.Verify(vk, proof, nil); err == nil {
		t.Fatal("want arity error")
	}
}

func TestProveRejectsBadWitness(t *testing.T) {
	e := newEngine(t)
	cs, _, _ := r1cs.BuildProduct(e.Fr)
	rnd := rand.New(rand.NewSource(2))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	w := cs.NewWitness() // all zeros except the one: violates constraints
	if _, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil); err == nil {
		t.Fatal("prover accepted an unsatisfying witness")
	}
}

func TestSyntheticCircuitSizes(t *testing.T) {
	e := newEngine(t)
	rnd := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 64, 200} {
		cs, w := r1cs.BuildSynthetic(e.Fr, n, int64(n))
		if err := cs.Satisfied(w); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ok, err := e.Verify(vk, proof, w[1:1+cs.NPublic])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !ok {
			t.Fatalf("n=%d: valid proof rejected", n)
		}
	}
}

// The headline integration: proving with the G1 MSMs routed through the
// simulated multi-GPU DistMSM produces proofs the verifier accepts, and
// the modeled GPU cost is recorded.
func TestProveWithDistMSM(t *testing.T) {
	e := newEngine(t)
	rnd := rand.New(rand.NewSource(4))
	cs, w := r1cs.BuildSynthetic(e.Fr, 50, 99)
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gpusim.NewCluster(gpusim.A100(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var modeled float64
	msmFn := func(points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
		res, err := core.RunContext(context.Background(), e.P.Curve, cl, points, scalars, core.Options{WindowSize: 8})
		if err != nil {
			return nil, err
		}
		modeled += res.Cost.Total()
		return res.Point, nil
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, msmFn)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(vk, proof, w[1:1+cs.NPublic])
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("DistMSM-routed proof rejected")
	}
	if modeled <= 0 {
		t.Fatal("no modeled GPU cost accumulated")
	}
}

func TestProofDeterministicVerification(t *testing.T) {
	// Different prover randomness yields different proofs for the same
	// statement, all of which verify (zero-knowledge rerandomisation).
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 10, 7)
	rnd := rand.New(rand.NewSource(5))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := e.ProveContext(context.Background(), cs, pk, w, rand.New(rand.NewSource(100)), nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.ProveContext(context.Background(), cs, pk, w, rand.New(rand.NewSource(200)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.P.Curve.EqualAffine(&p1.A, &p2.A) {
		t.Fatal("proofs should be rerandomised")
	}
	for _, p := range []*Proof{p1, p2} {
		ok, err := e.Verify(vk, p, w[1:1+cs.NPublic])
		if err != nil || !ok {
			t.Fatalf("rerandomised proof rejected: %v", err)
		}
	}
}

func BenchmarkProve(b *testing.B) {
	e := newEngine(b)
	cs, w := r1cs.BuildSynthetic(e.Fr, 128, 1)
	rnd := rand.New(rand.NewSource(6))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	e := newEngine(b)
	cs, w := r1cs.BuildSynthetic(e.Fr, 32, 2)
	rnd := rand.New(rand.NewSource(7))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		b.Fatal(err)
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Verify(vk, proof, w[1:1+cs.NPublic]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProofAndKeySerialization(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 20, 13)
	rnd := rand.New(rand.NewSource(14))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := e.ProveContext(context.Background(), cs, pk, w, rnd, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Proof round trip, then verify the decoded proof.
	enc := e.MarshalProof(proof)
	if len(enc) != e.ProofSize() {
		t.Fatalf("proof encoding %d bytes, want %d", len(enc), e.ProofSize())
	}
	back, err := e.UnmarshalProof(enc)
	if err != nil {
		t.Fatal(err)
	}
	vkEnc := e.MarshalVerifyingKey(vk)
	vkBack, err := e.UnmarshalVerifyingKey(vkEnc)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(vkBack, back, w[1:1+cs.NPublic])
	if err != nil || !ok {
		t.Fatalf("decoded proof/key failed to verify: %v", err)
	}

	// Corruption is detected.
	bad := append([]byte(nil), enc...)
	bad[5] ^= 0xff
	if p2, err := e.UnmarshalProof(bad); err == nil {
		// Decoding may still succeed (another valid point); then
		// verification must fail.
		ok, err := e.Verify(vk, p2, w[1:1+cs.NPublic])
		if err == nil && ok {
			t.Fatal("corrupted proof accepted")
		}
	}
	if _, err := e.UnmarshalProof(enc[:10]); err == nil {
		t.Fatal("truncated proof accepted")
	}
	if _, err := e.UnmarshalVerifyingKey(vkEnc[:20]); err == nil {
		t.Fatal("truncated key accepted")
	}
	// The proof is succinct: ~3 group elements regardless of circuit size.
	if e.ProofSize() > 300 {
		t.Fatalf("proof suspiciously large: %d bytes", e.ProofSize())
	}
}
