package field

import (
	"math/big"
	"math/rand"
	"testing"
)

var testPrimes = map[string]string{
	// p ≡ 3 mod 4
	"bn254-fp": "21888242871839275222246405745257275088696311157297823662689037894645226208583",
	// high 2-adicity (28): exercises Tonelli–Shanks
	"bn254-fr": "21888242871839275222246405745257275088548364400416034343698204186575808495617",
	"bls381-fp": "4002409555221667393417789825735904156556882819939007885332058136124031650490" +
		"837864442687629129015664037894272559787",
	"small": "65537",
}

func mustField(t testing.TB, name string) *Field {
	t.Helper()
	p, ok := new(big.Int).SetString(testPrimes[name], 10)
	if !ok {
		t.Fatalf("bad prime %s", name)
	}
	f, err := New(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFieldAxioms(t *testing.T) {
	for name := range testPrimes {
		f := mustField(t, name)
		rnd := rand.New(rand.NewSource(1))
		for iter := 0; iter < 50; iter++ {
			a, b, c := f.Rand(rnd), f.Rand(rnd), f.Rand(rnd)
			t1, t2, t3 := f.NewElement(), f.NewElement(), f.NewElement()

			// commutativity
			f.Add(t1, a, b)
			f.Add(t2, b, a)
			if !t1.Equal(t2) {
				t.Fatalf("%s: a+b != b+a", name)
			}
			f.Mul(t1, a, b)
			f.Mul(t2, b, a)
			if !t1.Equal(t2) {
				t.Fatalf("%s: ab != ba", name)
			}
			// associativity of mul
			f.Mul(t1, a, b)
			f.Mul(t1, t1, c)
			f.Mul(t2, b, c)
			f.Mul(t2, a, t2)
			if !t1.Equal(t2) {
				t.Fatalf("%s: (ab)c != a(bc)", name)
			}
			// distributivity
			f.Add(t1, b, c)
			f.Mul(t1, a, t1)
			f.Mul(t2, a, b)
			f.Mul(t3, a, c)
			f.Add(t2, t2, t3)
			if !t1.Equal(t2) {
				t.Fatalf("%s: a(b+c) != ab+ac", name)
			}
			// identities
			f.Mul(t1, a, f.One())
			if !t1.Equal(a) {
				t.Fatalf("%s: a*1 != a", name)
			}
			f.Add(t1, a, f.Zero())
			if !t1.Equal(a) {
				t.Fatalf("%s: a+0 != a", name)
			}
			// inverse
			if !a.IsZero() {
				f.Inv(t1, a)
				f.Mul(t1, t1, a)
				if !t1.Equal(f.One()) {
					t.Fatalf("%s: a * a^-1 != 1", name)
				}
			}
			// negation
			f.Neg(t1, a)
			f.Add(t1, t1, a)
			if !t1.IsZero() {
				t.Fatalf("%s: a + (-a) != 0", name)
			}
		}
	}
}

func TestFieldMatchesBig(t *testing.T) {
	f := mustField(t, "bn254-fp")
	rnd := rand.New(rand.NewSource(2))
	for iter := 0; iter < 100; iter++ {
		av := new(big.Int).Rand(rnd, f.Modulus)
		bv := new(big.Int).Rand(rnd, f.Modulus)
		a, b := f.FromBig(av), f.FromBig(bv)
		z := f.NewElement()

		f.Mul(z, a, b)
		want := new(big.Int).Mul(av, bv)
		want.Mod(want, f.Modulus)
		if f.ToBig(z).Cmp(want) != 0 {
			t.Fatal("Mul mismatch vs math/big")
		}
		f.Add(z, a, b)
		want.Add(av, bv).Mod(want, f.Modulus)
		if f.ToBig(z).Cmp(want) != 0 {
			t.Fatal("Add mismatch vs math/big")
		}
	}
}

func TestExpMatchesBig(t *testing.T) {
	f := mustField(t, "bn254-fr")
	rnd := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		av := new(big.Int).Rand(rnd, f.Modulus)
		e := new(big.Int).Rand(rnd, f.Modulus)
		a := f.FromBig(av)
		z := f.NewElement()
		f.Exp(z, a, e)
		want := new(big.Int).Exp(av, e, f.Modulus)
		if f.ToBig(z).Cmp(want) != 0 {
			t.Fatal("Exp mismatch vs math/big")
		}
	}
	// edge: x^0 == 1, 0^e == 0 (e>0)
	z := f.NewElement()
	f.Exp(z, f.FromUint64(12345), big.NewInt(0))
	if !z.Equal(f.One()) {
		t.Fatal("x^0 != 1")
	}
	f.Exp(z, f.Zero(), big.NewInt(5))
	if !z.IsZero() {
		t.Fatal("0^5 != 0")
	}
}

func TestSqrtBothBranches(t *testing.T) {
	for _, name := range []string{"bn254-fp", "bn254-fr", "small"} {
		f := mustField(t, name)
		rnd := rand.New(rand.NewSource(4))
		found := 0
		for iter := 0; iter < 60; iter++ {
			a := f.Rand(rnd)
			sq := f.NewElement()
			f.Square(sq, a)
			root := f.NewElement()
			if !f.Sqrt(root, sq) {
				t.Fatalf("%s: square reported as non-residue", name)
			}
			check := f.NewElement()
			f.Square(check, root)
			if !check.Equal(sq) {
				t.Fatalf("%s: sqrt(a^2)^2 != a^2", name)
			}
			// Non-residues must be rejected.
			if f.Legendre(a) == -1 {
				found++
				if f.Sqrt(root, a) {
					t.Fatalf("%s: accepted sqrt of non-residue", name)
				}
			}
		}
		if found == 0 {
			t.Fatalf("%s: no non-residues sampled", name)
		}
	}
}

func TestBatchInvert(t *testing.T) {
	f := mustField(t, "bn254-fp")
	rnd := rand.New(rand.NewSource(5))
	xs := make([]Element, 30)
	want := make([]Element, len(xs))
	for i := range xs {
		if i%7 == 3 {
			xs[i] = f.Zero() // zeros must survive untouched
		} else {
			xs[i] = f.Rand(rnd)
		}
		want[i] = f.NewElement()
		f.Inv(want[i], xs[i])
	}
	f.BatchInvert(xs)
	for i := range xs {
		if !xs[i].Equal(want[i]) {
			t.Fatalf("BatchInvert[%d] mismatch", i)
		}
	}
	// empty batch is a no-op
	f.BatchInvert(nil)
}

func TestRootOfUnity(t *testing.T) {
	f := mustField(t, "bn254-fr") // 2-adicity 28
	if f.TwoAdicity() != 28 {
		t.Fatalf("bn254-fr 2-adicity = %d, want 28", f.TwoAdicity())
	}
	for _, k := range []int{0, 1, 5, 16, 28} {
		w, err := f.RootOfUnity(k)
		if err != nil {
			t.Fatal(err)
		}
		// w^(2^k) == 1 and w^(2^(k-1)) != 1
		acc := w.Clone()
		tmp := f.NewElement()
		for i := 0; i < k-1; i++ {
			f.Square(tmp, acc)
			acc.Set(tmp)
		}
		if k >= 1 {
			if acc.Equal(f.One()) {
				t.Fatalf("order of root < 2^%d", k)
			}
			f.Square(tmp, acc)
			acc.Set(tmp)
		}
		if !acc.Equal(f.One()) {
			t.Fatalf("root^2^%d != 1", k)
		}
	}
	if _, err := f.RootOfUnity(29); err == nil {
		t.Fatal("expected error beyond 2-adicity")
	}
}

func TestLegendreMultiplicative(t *testing.T) {
	f := mustField(t, "bn254-fp")
	rnd := rand.New(rand.NewSource(6))
	for iter := 0; iter < 50; iter++ {
		a, b := f.Rand(rnd), f.Rand(rnd)
		if a.IsZero() || b.IsZero() {
			continue
		}
		ab := f.NewElement()
		f.Mul(ab, a, b)
		if f.Legendre(ab) != f.Legendre(a)*f.Legendre(b) {
			t.Fatal("Legendre symbol not multiplicative")
		}
	}
}

func BenchmarkFieldMul(b *testing.B) {
	f := mustField(b, "bn254-fp")
	rnd := rand.New(rand.NewSource(7))
	x, y := f.Rand(rnd), f.Rand(rnd)
	z := f.NewElement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Mul(z, x, y)
	}
}

// BenchmarkFieldOps measures the dispatched hot operations per field:
// the numbers feed the perf-regression report (`make bench`).
func BenchmarkFieldOps(b *testing.B) {
	for _, name := range []string{"bn254-fp", "bls381-fp"} {
		f := mustField(b, name)
		rnd := rand.New(rand.NewSource(9))
		x, y := f.Rand(rnd), f.Rand(rnd)
		z := f.NewElement()
		b.Run(name+"/Mul", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.Mul(z, x, y)
			}
		})
		b.Run(name+"/Square", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.Square(z, x)
			}
		})
		b.Run(name+"/Add", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f.Add(z, x, y)
			}
		})
	}
}

func BenchmarkFieldInv(b *testing.B) {
	f := mustField(b, "bn254-fp")
	rnd := rand.New(rand.NewSource(8))
	x := f.Rand(rnd)
	z := f.NewElement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Inv(z, x)
	}
}
