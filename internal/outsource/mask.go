package outsource

import (
	"fmt"
	"io"
	"math/big"

	"distmsm/internal/curve"
)

// Mask is the engine-tier variant of the sparse secret mask: s signed
// point references the scheduler mixes into a shard's challenge
// aggregation pass. The engine's per-shard claim is a vector of bucket
// accumulators rather than a single MSM output, and the bucket-sum
// kernel only adds, so the challenge instance there is additive: the
// kernel re-aggregates the shard's references into ONE accumulator with
// the mask references shuffled in, and the scheduler accepts iff
//
//	challenge == Σ_b claim[b] + Σⱼ ±P_{mⱼ}
//
// a comparison whose cost is the shard's bucket count plus s point
// additions — independent of how many references (points) the shard
// actually aggregates, which is what grows with the MSM size. Refs use
// the engine's scatter convention: 1-indexed, negative for subtraction.
type Mask struct {
	Refs []int32
}

// NewMask draws a sparse mask of `terms` distinct signed references
// into a table of n points.
func NewMask(n, terms int, rnd io.Reader) (*Mask, error) {
	if n <= 0 || terms < 1 {
		return nil, fmt.Errorf("%w: mask over %d points with %d terms", ErrBadParams, n, terms)
	}
	if terms > n {
		terms = n
	}
	idx, err := randIndices(rnd, n, terms)
	if err != nil {
		return nil, err
	}
	m := &Mask{Refs: make([]int32, terms)}
	two := big.NewInt(2)
	for j, i := range idx {
		ref := int32(i + 1)
		bit, err := randBelow(rnd, two)
		if err != nil {
			return nil, err
		}
		if bit == 1 {
			ref = -ref
		}
		m.Refs[j] = ref
	}
	return m, nil
}

// Sum computes the claim-side mask correction Σⱼ ±P_{mⱼ}.
func (m *Mask) Sum(c *curve.Curve, points []curve.PointAffine) *curve.PointXYZZ {
	a := c.NewAdder()
	out := c.NewXYZZ()
	for _, ref := range m.Refs {
		if ref > 0 {
			a.Acc(out, &points[ref-1])
		} else {
			p := clonePoint(points[-ref-1])
			c.NegAffine(&p)
			a.Acc(out, &p)
		}
	}
	return out
}

// randBelow draws a uniform integer in [0, max).
func randBelow(rnd io.Reader, max *big.Int) (int64, error) {
	v, err := randInt(rnd, max)
	if err != nil {
		return 0, err
	}
	return v.Int64(), nil
}
