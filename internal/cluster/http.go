package cluster

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
)

// This file is the coordinator's HTTP face.
//
// Wire schema (v1)
//
//	POST /v1/cluster/register     worker → coordinator: join / rejoin
//	  request   RegisterRequest   response RegisterResponse
//	POST /v1/cluster/heartbeat    worker → coordinator: lease renewal
//	  request   HeartbeatRequest  response HeartbeatResponse
//	            (Reregister=true asks the node to register again)
//	POST /v1/cluster/deregister   worker → coordinator: graceful drain
//	  request   DeregisterRequest response {"ok": true}
//
//	POST /v1/prove                client-facing, same shape as provd's:
//	  request   {"circuit": "<name>", "seed": <int64>, "timeout_ms": <opt>}
//	  response  200 {"proof": "<hex>"}
//	            400 malformed   503 no nodes / shutting down
//	            504 job deadline blown   499 client closed request
//
//	GET /v1/healthz               node table (503 when no node is alive
//	                              and no local fallback exists)
//	GET /v1/cluster/nodes         node table only (always 200)
//	GET /v1/stats                 counters snapshot
//	GET /v1/metrics, /metrics     Prometheus text (when Config.Metrics set)
//
// Malformed messages are rejected with 400 before they touch coordinator
// state — FuzzClusterWire holds the whole surface to "never panic, never
// grow the node table on junk".

func readWireBody(r *http.Request) []byte {
	return readCapped(r.Body, maxWireBody)
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/cluster/register", c.handleRegister)
	mux.HandleFunc("/v1/cluster/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/cluster/deregister", c.handleDeregister)
	mux.HandleFunc("/v1/prove", c.handleProve)
	mux.HandleFunc("/v1/msm", c.handleMSM)
	mux.HandleFunc("/v1/healthz", c.handleHealthz)
	mux.HandleFunc("/v1/cluster/nodes", c.handleNodes)
	mux.HandleFunc("/v1/stats", c.handleStats)
	if c.metrics != nil {
		mux.Handle("/v1/metrics", c.metrics.reg.Handler())
		mux.Handle("/metrics", c.metrics.reg.Handler())
	}
	return mux
}

func writeClusterJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func postOnly(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	req, err := ParseRegisterRequest(readWireBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Register(req)
	switch {
	case errors.Is(err, ErrTooManyNodes):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrShuttingDown):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeClusterJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	req, err := ParseHeartbeatRequest(readWireBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil && !errors.Is(err, ErrStaleLease) {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A stale heartbeat is answered 200 {"ok": false}: the node is not
	// wrong to exist, its datagram was just late.
	writeClusterJSON(w, resp)
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	req, err := ParseDeregisterRequest(readWireBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := c.Deregister(req); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrUnknownNode) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeClusterJSON(w, map[string]any{"ok": true})
}

func (c *Coordinator) handleProve(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	req, err := ParseProveRequest(readWireBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	proof, err := c.Prove(r.Context(), req)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNoNodes), errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			code = 499 // nginx's "client closed request"
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeClusterJSON(w, map[string]any{"proof": hex.EncodeToString(proof)})
}

// handleMSM serves a client-facing outsourced MSM: the instance is
// named by (curve, point_seed, scalar_seed, n), sharded across the
// fleet, and every shard claim passes the constant-size check before it
// is folded into the answer.
//
//	POST /v1/msm
//	  request   {"curve", "point_seed", "scalar_seed", "n", "timeout_ms"?}
//	  response  200 {"result": "<hex uncompressed point>"}
//	            400 malformed   503 shutting down
//	            504 job deadline blown   499 client closed request
func (c *Coordinator) handleMSM(w http.ResponseWriter, r *http.Request) {
	if !postOnly(w, r) {
		return
	}
	req, err := ParseMSMRequest(readWireBody(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	result, err := c.MSM(r.Context(), req)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrBadMessage):
			code = http.StatusBadRequest
		case errors.Is(err, ErrNoNodes), errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			code = 499
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeClusterJSON(w, map[string]any{"result": hex.EncodeToString(result)})
}

// handleHealthz reports the node table. Honest degradation, mirroring
// the worker's healthz: 503 only when the cluster can prove nothing at
// all (no live node AND no local fallback); a cluster that lost some
// nodes but can still serve stays 200 with "degraded": true.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := c.Snapshot()
	alive := 0
	for _, n := range nodes {
		if n.State == "alive" {
			alive++
		}
	}
	degraded := alive < len(nodes)
	down := alive == 0 && c.cfg.Local == nil
	if down {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeClusterJSON(w, map[string]any{
		"status":   healthStatus(down, degraded),
		"degraded": degraded,
		"alive":    alive,
		"nodes":    nodes,
	})
}

func healthStatus(down, degraded bool) string {
	switch {
	case down:
		return "down"
	case degraded:
		return "degraded"
	}
	return "ok"
}

// handleNodes serves the node table alone — the operator's view of who
// is alive, lost or draining, each node's breaker state, in-flight
// count and dispatch EWMA. Unlike healthz it never answers 503: an
// empty cluster is an answer, not an outage.
func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeClusterJSON(w, map[string]any{"nodes": c.Snapshot()})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeClusterJSON(w, c.Stats())
}
