package groth16

import (
	"fmt"

	"distmsm/internal/curve"
	"distmsm/internal/pairing"
	"distmsm/internal/serial"
)

// Binary encodings for proofs and verification keys: G1 points use the
// compressed SEC1 form from internal/serial; G2 points encode their two
// Fp2 coordinates as four base-field elements behind a one-byte
// infinity/uncompressed tag.

func (e *Engine) g2Size() int { return 1 + 4*serial.ElementSize(e.P.Fp) }

func (e *Engine) marshalG2(q *pairing.G2Affine) []byte {
	out := make([]byte, e.g2Size())
	if q.Inf {
		out[0] = serial.PrefixInfinity
		return out
	}
	out[0] = serial.PrefixUncompressed
	es := serial.ElementSize(e.P.Fp)
	off := 1
	copy(out[off:], serial.MarshalElement(e.P.Fp, q.X.A0))
	off += es
	copy(out[off:], serial.MarshalElement(e.P.Fp, q.X.A1))
	off += es
	copy(out[off:], serial.MarshalElement(e.P.Fp, q.Y.A0))
	off += es
	copy(out[off:], serial.MarshalElement(e.P.Fp, q.Y.A1))
	return out
}

func (e *Engine) unmarshalG2(b []byte) (pairing.G2Affine, error) {
	if len(b) != e.g2Size() {
		return pairing.G2Affine{}, fmt.Errorf("groth16: G2 encoding length %d, want %d", len(b), e.g2Size())
	}
	if b[0] == serial.PrefixInfinity {
		for _, x := range b[1:] {
			if x != 0 {
				return pairing.G2Affine{}, fmt.Errorf("groth16: malformed G2 infinity")
			}
		}
		return pairing.G2Affine{Inf: true}, nil
	}
	if b[0] != serial.PrefixUncompressed {
		return pairing.G2Affine{}, fmt.Errorf("groth16: unknown G2 prefix 0x%02x", b[0])
	}
	es := serial.ElementSize(e.P.Fp)
	x0, err := serial.UnmarshalElement(e.P.Fp, b[1:1+es])
	if err != nil {
		return pairing.G2Affine{}, err
	}
	x1, err := serial.UnmarshalElement(e.P.Fp, b[1+es:1+2*es])
	if err != nil {
		return pairing.G2Affine{}, err
	}
	y0, err := serial.UnmarshalElement(e.P.Fp, b[1+2*es:1+3*es])
	if err != nil {
		return pairing.G2Affine{}, err
	}
	y1, err := serial.UnmarshalElement(e.P.Fp, b[1+3*es:])
	if err != nil {
		return pairing.G2Affine{}, err
	}
	q := pairing.G2Affine{X: pairing.E2{A0: x0, A1: x1}, Y: pairing.E2{A0: y0, A1: y1}}
	if !e.P.G2.IsOnCurve(&q) {
		return pairing.G2Affine{}, fmt.Errorf("groth16: G2 point not on the twist")
	}
	return q, nil
}

// ProofSize returns the encoded proof length in bytes.
func (e *Engine) ProofSize() int {
	g1 := serial.PointSize(e.P.Curve, true)
	return 2*g1 + e.g2Size()
}

// MarshalProof encodes a proof as A‖B‖C (G1 compressed, G2 uncompressed).
func (e *Engine) MarshalProof(p *Proof) []byte {
	out := serial.MarshalPoint(e.P.Curve, &p.A, true)
	out = append(out, e.marshalG2(&p.B)...)
	out = append(out, serial.MarshalPoint(e.P.Curve, &p.C, true)...)
	return out
}

// UnmarshalProof decodes and validates a proof encoding.
func (e *Engine) UnmarshalProof(b []byte) (*Proof, error) {
	g1 := serial.PointSize(e.P.Curve, true)
	if len(b) != e.ProofSize() {
		return nil, fmt.Errorf("groth16: proof length %d, want %d", len(b), e.ProofSize())
	}
	a, err := serial.UnmarshalPoint(e.P.Curve, b[:g1])
	if err != nil {
		return nil, fmt.Errorf("groth16: proof A: %w", err)
	}
	bb, err := e.unmarshalG2(b[g1 : g1+e.g2Size()])
	if err != nil {
		return nil, fmt.Errorf("groth16: proof B: %w", err)
	}
	c, err := serial.UnmarshalPoint(e.P.Curve, b[g1+e.g2Size():])
	if err != nil {
		return nil, fmt.Errorf("groth16: proof C: %w", err)
	}
	return &Proof{A: a, B: bb, C: c}, nil
}

// MarshalVerifyingKey encodes a verification key: α‖β₂‖γ₂‖δ₂‖len(IC)‖IC…
func (e *Engine) MarshalVerifyingKey(vk *VerifyingKey) []byte {
	out := serial.MarshalPoint(e.P.Curve, &vk.Alpha, true)
	out = append(out, e.marshalG2(&vk.Beta2)...)
	out = append(out, e.marshalG2(&vk.Gamma2)...)
	out = append(out, e.marshalG2(&vk.Delta2)...)
	out = append(out, byte(len(vk.IC)>>8), byte(len(vk.IC)))
	for i := range vk.IC {
		out = append(out, serial.MarshalPoint(e.P.Curve, &vk.IC[i], true)...)
	}
	return out
}

// UnmarshalVerifyingKey decodes a verification key.
func (e *Engine) UnmarshalVerifyingKey(b []byte) (*VerifyingKey, error) {
	g1 := serial.PointSize(e.P.Curve, true)
	g2 := e.g2Size()
	head := g1 + 3*g2 + 2
	if len(b) < head {
		return nil, fmt.Errorf("groth16: verifying key too short (%d bytes)", len(b))
	}
	vk := &VerifyingKey{}
	var err error
	off := 0
	if vk.Alpha, err = serial.UnmarshalPoint(e.P.Curve, b[off:off+g1]); err != nil {
		return nil, fmt.Errorf("groth16: vk alpha: %w", err)
	}
	off += g1
	if vk.Beta2, err = e.unmarshalG2(b[off : off+g2]); err != nil {
		return nil, fmt.Errorf("groth16: vk beta: %w", err)
	}
	off += g2
	if vk.Gamma2, err = e.unmarshalG2(b[off : off+g2]); err != nil {
		return nil, fmt.Errorf("groth16: vk gamma: %w", err)
	}
	off += g2
	if vk.Delta2, err = e.unmarshalG2(b[off : off+g2]); err != nil {
		return nil, fmt.Errorf("groth16: vk delta: %w", err)
	}
	off += g2
	n := int(b[off])<<8 | int(b[off+1])
	off += 2
	if len(b) != off+n*g1 {
		return nil, fmt.Errorf("groth16: verifying key length %d, want %d", len(b), off+n*g1)
	}
	vk.IC = make([]curve.PointAffine, n)
	for i := 0; i < n; i++ {
		if vk.IC[i], err = serial.UnmarshalPoint(e.P.Curve, b[off:off+g1]); err != nil {
			return nil, fmt.Errorf("groth16: vk IC[%d]: %w", i, err)
		}
		off += g1
	}
	return vk, nil
}
