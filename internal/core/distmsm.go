package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/msm"
)

// Stats aggregates the simulated-hardware event counts of one execution.
type Stats struct {
	Scatter ScatterStats
	// PACCOps is the bucket-accumulation point operations (all GPUs).
	PACCOps uint64
	// ReduceOps is the bucket-reduce point operations (CPU or GPU).
	ReduceOps uint64
	// WindowOps is the final window-reduction point operations.
	WindowOps uint64
}

// Result is the outcome of a DistMSM execution.
type Result struct {
	// Point is the MSM value (nil in analytic mode).
	Point *curve.PointXYZZ
	// Cost is the modeled wall-time breakdown on the cluster.
	Cost  gpusim.Cost
	Plan  *Plan
	Stats Stats
}

// Run executes DistMSM functionally: it computes the exact MSM result by
// running the real scatter/sum/reduce phases of the plan, and prices the
// same work with the GPU cost model. Use Analytic for paper-scale sizes.
func Run(c *curve.Curve, cl *gpusim.Cluster, points []curve.PointAffine, scalars []bigint.Nat, opts Options) (*Result, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("core: %d points but %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return &Result{Point: c.NewXYZZ()}, nil
	}
	plan, err := BuildPlan(c, cl, len(points), opts)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: plan}

	digits, err := digitsMatrix(plan, scalars)
	if err != nil {
		return nil, err
	}

	// Phase 1+2 per window: scatter, then bucket-sum over each GPU's
	// bucket range. The sums are real (the simulated GPUs' work), run on
	// host goroutines for speed.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	windowSums := make([]*curve.PointXYZZ, plan.Windows)
	bucketAcc := make([][]*curve.PointXYZZ, plan.Windows)
	for j := 0; j < plan.Windows; j++ {
		var sc *ScatterResult
		if plan.Hierarchical {
			sc, err = HierarchicalScatter(digits[j], plan.Buckets, plan.Block)
		} else {
			sc, err = NaiveScatter(digits[j], plan.Buckets)
		}
		if err != nil {
			return nil, err
		}
		res.Stats.Scatter.GlobalAtomics += sc.Stats.GlobalAtomics
		res.Stats.Scatter.SharedAtomics += sc.Stats.SharedAtomics
		res.Stats.Scatter.Passes += sc.Stats.Passes

		bucketAcc[j], err = sumBuckets(c, points, sc.Buckets, workers, &res.Stats)
		if err != nil {
			return nil, err
		}
	}

	// Phase 3 (§3.2.3, host CPU): bucket-reduce each window with the
	// serial running-suffix method.
	adder := c.NewAdder()
	for j := 0; j < plan.Windows; j++ {
		windowSums[j] = reduceBuckets(c, bucketAcc[j], adder, &res.Stats)
	}

	// Phase 4: window-reduce by Horner's rule.
	acc := c.NewXYZZ()
	for j := plan.Windows - 1; j >= 0; j-- {
		for b := 0; b < plan.S; b++ {
			adder.Double(acc)
			res.Stats.WindowOps++
		}
		adder.Add(acc, windowSums[j])
		res.Stats.WindowOps++
	}
	res.Point = acc
	res.Cost = plan.EstimateCost()
	return res, nil
}

// Analytic prices an N-point MSM on the cluster without computing it —
// the mode used for the paper-scale inputs (2^22–2^28) of Table 3.
func Analytic(c *curve.Curve, cl *gpusim.Cluster, n int, opts Options) (*Result, error) {
	plan, err := BuildPlan(c, cl, n, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Cost: plan.EstimateCost()}, nil
}

// digitsMatrix recodes scalars per the plan: digits[j][i] is point i's
// (possibly signed) digit in window j.
func digitsMatrix(p *Plan, scalars []bigint.Nat) ([][]int32, error) {
	digits := make([][]int32, p.Windows)
	for j := range digits {
		digits[j] = make([]int32, len(scalars))
	}
	for i, k := range scalars {
		if k.BitLen() > p.Curve.ScalarBits {
			return nil, fmt.Errorf("core: scalar %d has %d bits, curve limit is %d",
				i, k.BitLen(), p.Curve.ScalarBits)
		}
		if p.Signed {
			ds := msm.SignedDigits(k, p.Curve.ScalarBits, p.S)
			if len(ds) > p.Windows {
				return nil, fmt.Errorf("core: signed recoding produced %d windows > %d", len(ds), p.Windows)
			}
			for j, d := range ds {
				digits[j][i] = d
			}
		} else {
			for j, d := range msm.Digits(k, p.Curve.ScalarBits, p.S) {
				digits[j][i] = int32(d)
			}
		}
	}
	return digits, nil
}

// sumBuckets accumulates each bucket's points (PACC per insertion,
// negating references with negative sign), in parallel across buckets.
func sumBuckets(c *curve.Curve, points []curve.PointAffine, buckets [][]int32, workers int, stats *Stats) ([]*curve.PointXYZZ, error) {
	out := make([]*curve.PointXYZZ, len(buckets))
	var wg sync.WaitGroup
	var mu sync.Mutex
	chunk := (len(buckets) + workers - 1) / workers
	var firstErr error
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(buckets) {
			hi = len(buckets)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			a := c.NewAdder()
			negY := c.Fp.NewElement()
			var ops uint64
			for b := lo; b < hi; b++ {
				if len(buckets[b]) == 0 {
					continue
				}
				acc := c.NewXYZZ()
				for _, ref := range buckets[b] {
					negated := ref < 0
					if negated {
						ref = -ref
					}
					pt := &points[int(ref)-1]
					if pt.Inf {
						continue
					}
					if negated {
						c.Fp.Neg(negY, pt.Y)
						neg := curve.PointAffine{X: pt.X, Y: negY}
						a.Acc(acc, &neg)
					} else {
						a.Acc(acc, pt)
					}
					ops++
				}
				out[b] = acc
			}
			mu.Lock()
			stats.PACCOps += ops
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	return out, firstErr
}

// reduceBuckets computes Σ i·B_i with the serial running-suffix method
// (two PADDs per bucket — the "few thousand PADD operations" of §3.2.3).
func reduceBuckets(c *curve.Curve, buckets []*curve.PointXYZZ, a *curve.Adder, stats *Stats) *curve.PointXYZZ {
	running := c.NewXYZZ()
	total := c.NewXYZZ()
	for i := len(buckets) - 1; i >= 1; i-- {
		if buckets[i] != nil {
			a.Add(running, buckets[i])
			stats.ReduceOps++
		}
		a.Add(total, running)
		stats.ReduceOps++
	}
	return total
}

// EstimateCost prices the plan on the cluster: the phase times of the
// most-loaded GPU, host transfers, and the (possibly overlapped) reduce.
func (p *Plan) EstimateCost() gpusim.Cost {
	model := p.Cluster.Model()
	bits := p.Curve.Fp.Bits()
	nt := float64(p.NT)
	var cost gpusim.Cost

	// Per-GPU load: points and buckets from the assignments (uniform
	// digit distribution: a bucket range holds N·range/buckets points).
	type load struct {
		points  float64
		buckets float64
		windows map[int]bool
	}
	loads := map[int]*load{}
	if p.SplitNDim {
		// Rejected first approach of §3.2.2: every GPU runs all windows
		// over an N/N_gpu point slice and emits a full bucket array.
		for g := 0; g < p.Cluster.N; g++ {
			l := &load{windows: map[int]bool{}}
			for j := 0; j < p.Windows; j++ {
				l.windows[j] = true
			}
			l.points = float64(p.N) / float64(p.Cluster.N) * float64(p.Windows)
			l.buckets = float64(p.Buckets) * float64(p.Windows)
			loads[g] = l
		}
	} else {
		for _, a := range p.Assignments {
			l := loads[a.GPU]
			if l == nil {
				l = &load{windows: map[int]bool{}}
				loads[a.GPU] = l
			}
			frac := float64(a.BucketHi-a.BucketLo) / float64(p.Buckets)
			l.points += float64(p.N) * frac
			l.buckets += float64(a.BucketHi - a.BucketLo)
			l.windows[a.Window] = true
		}
	}

	var maxScatter, maxSum float64
	for _, l := range loads {
		// --- bucket-scatter ---
		var scatter float64
		if p.Hierarchical {
			// Two shared atomics per point (count + place), contention
			// from the block's threads spread over the buckets; one
			// global atomic per non-empty local bucket per pass.
			shmContention := float64(p.Block.Threads) / float64(p.Buckets)
			scatter += model.SharedAtomicSeconds(2*l.points, shmContention)
			passes := math.Ceil(l.points / float64(p.Block.PointsPerBlock()))
			nonEmpty := math.Min(float64(p.Buckets), float64(p.Block.PointsPerBlock()))
			activeBlocks := nt / float64(p.Block.Threads)
			globContention := activeBlocks / float64(p.Buckets)
			scatter += model.GlobalAtomicSeconds(passes*nonEmpty, globContention)
		} else {
			globContention := nt / float64(p.Buckets)
			scatter += model.GlobalAtomicSeconds(l.points, globContention)
		}
		// Streaming each window's s-bit coefficient slices and writing
		// the scattered point ids.
		winCount := float64(len(l.windows))
		scatter += model.MemSeconds(winCount*float64(p.N)*float64(p.S)/8) +
			model.MemSeconds(l.points*4)
		if scatter > maxScatter {
			maxScatter = scatter
		}

		// --- bucket-sum ---
		// Per-thread work: P/N_T accumulations plus the intra-bucket
		// reduction of log2(threads-per-bucket) PADDs (§3.2.2).
		perThread := l.points / nt
		if l.buckets > 0 && l.buckets < nt {
			perThread += math.Log2(nt / l.buckets)
		}
		sum := model.ECOpSeconds(p.Spec, bits, perThread*nt)
		// Reading each point once from device memory.
		sum += model.MemSeconds(l.points * 2 * float64(bits) / 8)
		if sum > maxSum {
			maxSum = sum
		}
	}
	cost.Scatter = maxScatter
	cost.BucketSum = maxSum

	// --- bucket-reduce ---
	// N-dim splitting (§3.2.2's rejected first approach) leaves every
	// GPU with all windows to reduce — or, on the CPU path, ships N_gpu
	// full bucket arrays to the host ("increasing the CPU's workload").
	reduceOps := float64(p.Windows) * 2 * float64(p.Buckets)
	if p.SplitNDim {
		reduceOps *= float64(p.Cluster.N)
	}
	if p.ReduceOnGPU {
		// The paper's per-thread GPU formula: 2s·⌈B/N_T⌉ doubling-ladder
		// work plus the parallel-reduction tail with global syncs.
		chunk := math.Ceil(float64(p.Buckets) / nt)
		perThread := 2*float64(p.S)*chunk +
			math.Min(chunk+math.Log2(nt), float64(p.S))
		winPerGPU := math.Ceil(float64(p.Windows) / float64(p.Cluster.N))
		if p.SplitNDim {
			winPerGPU = float64(p.Windows) // not amortised across GPUs
		}
		cost.BucketReduce = model.ECOpSeconds(p.PADDSpec, bits, winPerGPU*perThread*nt)
	} else {
		cost.BucketReduce = gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits, reduceOps)
		cost.ReduceOnCPU = true
	}

	// --- window-reduce (host, negligible) ---
	cost.WindowReduce = gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits,
		float64(p.Curve.ScalarBits)+float64(p.Windows))

	// --- transfers. Following the kernel-only timing convention of the
	// GPU MSM baselines, the scalar vector is staged on (or streamed to)
	// the devices overlapped with preceding work; only per-phase launch
	// latencies and the per-window result readback are on the clock.
	// N-dim splitting additionally merges N_gpu full bucket arrays on
	// the host — the CPU burden that made the paper reject it (§3.2.2).
	launches := float64(p.Windows + len(p.Assignments))
	resultBytes := float64(p.Windows) * 4 * float64(bits) / 8
	if p.SplitNDim {
		// Every GPU returns one partial result per window; the host sums
		// the N_gpu partials (a handful of PADDs, priced in WindowReduce).
		resultBytes *= float64(p.Cluster.N)
		cost.WindowReduce += gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits,
			float64(p.Cluster.N-1))
	}
	cost.Transfer = launches*p.Cluster.IC.HostLatency +
		gpusim.HostTransferSeconds(resultBytes, p.Cluster.IC)
	return cost
}
