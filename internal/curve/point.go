package curve

import (
	"fmt"

	"distmsm/internal/field"
)

// PointAffine is an affine curve point. Inf marks the point at infinity,
// in which case X and Y are ignored (and may be nil).
type PointAffine struct {
	X, Y field.Element
	Inf  bool
}

// PointXYZZ is a point in the XYZZ coordinate system of Algorithm 1:
// the affine point is (X/ZZ, Y/ZZZ) with the invariant ZZ³ = ZZZ².
// The point at infinity is represented by ZZ = 0.
type PointXYZZ struct {
	X, Y, ZZ, ZZZ field.Element
}

// NewXYZZ returns a fresh point at infinity for curve c.
func (c *Curve) NewXYZZ() *PointXYZZ {
	return &PointXYZZ{
		X:   c.Fp.NewElement(),
		Y:   c.Fp.NewElement(),
		ZZ:  c.Fp.NewElement(),
		ZZZ: c.Fp.NewElement(),
	}
}

// IsInf reports whether p is the point at infinity.
func (p *PointXYZZ) IsInf() bool { return p.ZZ.IsZero() }

// SetInf sets p to the point at infinity.
func (p *PointXYZZ) SetInf() {
	p.X.SetZero()
	p.Y.SetZero()
	p.ZZ.SetZero()
	p.ZZZ.SetZero()
}

// Set copies q into p.
func (p *PointXYZZ) Set(q *PointXYZZ) {
	p.X.Set(q.X)
	p.Y.Set(q.Y)
	p.ZZ.Set(q.ZZ)
	p.ZZZ.Set(q.ZZZ)
}

// SetAffine sets p to the XYZZ form of affine point a (ZZ = ZZZ = 1).
// Allocation-free: it runs on every first insertion into a bucket.
func (c *Curve) SetAffine(p *PointXYZZ, a *PointAffine) {
	if a.Inf {
		p.SetInf()
		return
	}
	p.X.Set(a.X)
	p.Y.Set(a.Y)
	c.Fp.SetOne(p.ZZ)
	c.Fp.SetOne(p.ZZZ)
}

// NewXYZZBatch returns n points at infinity whose coordinate limbs share
// one flat backing array: two allocations instead of 5n, for callers
// that materialise many bucket accumulators at once.
func (c *Curve) NewXYZZBatch(n int) []PointXYZZ {
	w := c.Fp.Width()
	limbs := make([]uint64, 4*n*w)
	pts := make([]PointXYZZ, n)
	for i := range pts {
		base := limbs[4*i*w:]
		pts[i] = PointXYZZ{
			X:   field.Element(base[0*w : 1*w]),
			Y:   field.Element(base[1*w : 2*w]),
			ZZ:  field.Element(base[2*w : 3*w]),
			ZZZ: field.Element(base[3*w : 4*w]),
		}
	}
	return pts
}

// Clone returns an independent copy of p.
func (p *PointXYZZ) Clone() *PointXYZZ {
	return &PointXYZZ{X: p.X.Clone(), Y: p.Y.Clone(), ZZ: p.ZZ.Clone(), ZZZ: p.ZZZ.Clone()}
}

// Neg negates p in place.
func (c *Curve) Neg(p *PointXYZZ) { c.Fp.Neg(p.Y, p.Y) }

// NegAffine negates a in place.
func (c *Curve) NegAffine(a *PointAffine) {
	if !a.Inf {
		c.Fp.Neg(a.Y, a.Y)
	}
}

// IsOnCurveAffine reports whether a satisfies y² = x³ + Ax + B.
func (c *Curve) IsOnCurveAffine(a *PointAffine) bool {
	if a.Inf {
		return true
	}
	f := c.Fp
	lhs, rhs, t := f.NewElement(), f.NewElement(), f.NewElement()
	f.Square(lhs, a.Y)
	f.Square(rhs, a.X)
	f.Mul(rhs, rhs, a.X)
	f.Mul(t, c.A, a.X)
	f.Add(rhs, rhs, t)
	f.Add(rhs, rhs, c.B)
	return lhs.Equal(rhs)
}

// IsOnCurve reports whether p (in XYZZ form) is on the curve, including
// the coordinate-system invariant ZZ³ = ZZZ².
func (c *Curve) IsOnCurve(p *PointXYZZ) bool {
	if p.IsInf() {
		return true
	}
	f := c.Fp
	// Invariant ZZ³ == ZZZ².
	zz3, zzz2 := f.NewElement(), f.NewElement()
	f.Square(zz3, p.ZZ)
	f.Mul(zz3, zz3, p.ZZ)
	f.Square(zzz2, p.ZZZ)
	if !zz3.Equal(zzz2) {
		return false
	}
	a := c.ToAffine(p)
	return c.IsOnCurveAffine(&a)
}

// ToAffine converts p to affine coordinates (one field inversion).
func (c *Curve) ToAffine(p *PointXYZZ) PointAffine {
	if p.IsInf() {
		return PointAffine{Inf: true}
	}
	f := c.Fp
	zzInv, zzzInv := f.NewElement(), f.NewElement()
	f.Inv(zzInv, p.ZZ)
	f.Inv(zzzInv, p.ZZZ)
	a := PointAffine{X: f.NewElement(), Y: f.NewElement()}
	f.Mul(a.X, p.X, zzInv)
	f.Mul(a.Y, p.Y, zzzInv)
	return a
}

// BatchToAffine converts many XYZZ points with a single inversion via
// Montgomery's trick (2 inversions total: the ZZ batch and the ZZZ batch
// share one BatchInvert each).
func (c *Curve) BatchToAffine(ps []*PointXYZZ) []PointAffine {
	f := c.Fp
	zz := make([]field.Element, len(ps))
	zzz := make([]field.Element, len(ps))
	for i, p := range ps {
		zz[i] = p.ZZ.Clone()
		zzz[i] = p.ZZZ.Clone()
	}
	f.BatchInvert(zz)
	f.BatchInvert(zzz)
	out := make([]PointAffine, len(ps))
	for i, p := range ps {
		if p.IsInf() {
			out[i] = PointAffine{Inf: true}
			continue
		}
		out[i] = PointAffine{X: f.NewElement(), Y: f.NewElement()}
		f.Mul(out[i].X, p.X, zz[i])
		f.Mul(out[i].Y, p.Y, zzz[i])
	}
	return out
}

// EqualXYZZ reports whether p and q represent the same curve point
// (comparing cross-multiplied coordinates, no inversion).
func (c *Curve) EqualXYZZ(p, q *PointXYZZ) bool {
	if p.IsInf() || q.IsInf() {
		return p.IsInf() == q.IsInf()
	}
	f := c.Fp
	l, r := f.NewElement(), f.NewElement()
	f.Mul(l, p.X, q.ZZ)
	f.Mul(r, q.X, p.ZZ)
	if !l.Equal(r) {
		return false
	}
	f.Mul(l, p.Y, q.ZZZ)
	f.Mul(r, q.Y, p.ZZZ)
	return l.Equal(r)
}

// EqualAffine reports whether two affine points are equal.
func (c *Curve) EqualAffine(a, b *PointAffine) bool {
	if a.Inf || b.Inf {
		return a.Inf == b.Inf
	}
	return a.X.Equal(b.X) && a.Y.Equal(b.Y)
}

// String formats an affine point.
func (a PointAffine) String() string {
	if a.Inf {
		return "(inf)"
	}
	return fmt.Sprintf("(%s, %s)", a.X, a.Y)
}
