package core

import (
	"testing"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
)

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// prices both sides of one decision on the cost model and reports the
// modeled milliseconds as custom metrics, so `go test -bench=Ablation`
// prints the whole design-space comparison.

func ablationCurve(b *testing.B) *curve.Curve {
	b.Helper()
	c, err := curve.ByName("BLS12-381")
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func modeledMS(b *testing.B, c *curve.Curve, gpus, n int, opts Options) float64 {
	b.Helper()
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Analytic(c, cl, n, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cost.Total() * 1e3
}

// BenchmarkAblationScatter: hierarchical vs naive bucket scatter (§3.2.1).
func BenchmarkAblationScatter(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(modeledMS(b, c, 16, 1<<26, Options{WindowSize: 11}), "hier_ms")
		b.ReportMetric(modeledMS(b, c, 16, 1<<26, Options{WindowSize: 11, ForceNaiveScatter: true}), "naive_ms")
	}
}

// BenchmarkAblationReducePlacement: CPU-offloaded vs GPU bucket-reduce
// (§3.2.3).
func BenchmarkAblationReducePlacement(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(modeledMS(b, c, 16, 1<<26, Options{WindowSize: 11}), "cpu_reduce_ms")
		b.ReportMetric(modeledMS(b, c, 16, 1<<26, Options{WindowSize: 11, ReduceOnGPU: true}), "gpu_reduce_ms")
	}
}

// BenchmarkAblationMultiGPUSplit: bucket-split vs N-split window sharing
// (§3.2.2).
func BenchmarkAblationMultiGPUSplit(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(modeledMS(b, c, 32, 1<<26, Options{WindowSize: 13}), "bucket_split_ms")
		b.ReportMetric(modeledMS(b, c, 32, 1<<26, Options{WindowSize: 13, SplitNDim: true}), "n_split_ms")
	}
}

// BenchmarkAblationSignedDigits: signed vs unsigned digit recoding.
func BenchmarkAblationSignedDigits(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		b.ReportMetric(modeledMS(b, c, 8, 1<<24, Options{WindowSize: 12}), "signed_ms")
		b.ReportMetric(modeledMS(b, c, 8, 1<<24, Options{WindowSize: 12, Unsigned: true}), "unsigned_ms")
	}
}

// BenchmarkAblationKernelVariant: the accumulation kernel pipeline levels.
func BenchmarkAblationKernelVariant(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		for _, v := range kernel.Variants() {
			ms := modeledMS(b, c, 8, 1<<24, Options{WindowSize: 12, Variant: v, VariantSet: true})
			b.ReportMetric(ms, "v"+v.String()[:4]+"_ms")
		}
	}
}

// BenchmarkAblationWindowSize: the end-to-end cost curve over s, the
// quantity the planner minimises.
func BenchmarkAblationWindowSize(b *testing.B) {
	c := ablationCurve(b)
	for i := 0; i < b.N; i++ {
		for _, s := range []int{8, 11, 14, 17, 20, 23} {
			ms := modeledMS(b, c, 16, 1<<26, Options{WindowSize: s})
			b.ReportMetric(ms, "s"+string(rune('0'+s/10))+string(rune('0'+s%10))+"_ms")
		}
	}
}

// The ablations' directional claims, as plain tests.
func TestAblationDirections(t *testing.T) {
	c, err := curve.ByName("BLS12-381")
	if err != nil {
		t.Fatal(err)
	}
	cl16, _ := gpusim.NewCluster(gpusim.A100(), 16)
	get := func(opts Options) float64 {
		res, err := Analytic(c, cl16, 1<<26, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Total()
	}
	if get(Options{WindowSize: 11}) >= get(Options{WindowSize: 11, ForceNaiveScatter: true}) {
		t.Error("hierarchical scatter should win at s=11 on 16 GPUs")
	}
	// Signed recoding halves the buckets: the reduce phase (and the
	// scatter contention) must get cheaper, even though the extra carry
	// window adds ~1/N_win more bucket-sum work.
	getCost := func(opts Options) gpusim.Cost {
		res, err := Analytic(c, cl16, 1<<26, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost
	}
	// (On the CPU path the reduce op count is exact; the GPU formula's
	// ⌈B/N_T⌉ quantises the difference away below N_T buckets.)
	signed := getCost(Options{WindowSize: 12})
	unsigned := getCost(Options{WindowSize: 12, Unsigned: true})
	if signed.BucketReduce >= unsigned.BucketReduce {
		t.Error("signed digits should halve the bucket-reduce work")
	}
	if get(Options{WindowSize: 13}) >= get(Options{WindowSize: 13, SplitNDim: true}) {
		t.Error("bucket splitting should beat N-splitting at 16 GPUs")
	}
}
