package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/serial"
)

// This file extends the seedable fault-injection philosophy of
// internal/gpusim/faults.go from GPU shards to whole nodes. Every
// injection decision is a pure hash of (seed, node, dispatch-sequence),
// so a given seed reproduces the same fault pattern regardless of
// goroutine scheduling — which is what lets the chaos tests assert hard
// invariants ("every job completes, proofs byte-identical") across
// seeds instead of eyeballing flaky runs.
//
// The four node-level fault classes, and who catches each:
//
//	crash      the node dies and stays dead: every later dispatch fails
//	           fast and its heartbeats stop (the test harness consults
//	           Crashed) — caught by the heartbeat lease, absorbed by
//	           re-dispatch to survivors.
//	partition  the dispatch hangs until its context is cancelled —
//	           caught by hedged dispatch (a second node finishes first)
//	           or by the lease expiry cancelling the attempt.
//	slow-node  the dispatch completes after an injected delay — caught
//	           by hedging; throughput degrades, correctness never.
//	corrupt    the dispatch returns a perturbed proof — caught by the
//	           coordinator's proof verification, costs one redispatch.

// NodeFaultClass enumerates the injectable node-level fault classes.
type NodeFaultClass int

const (
	// NodeFaultNone: the dispatch proceeds normally.
	NodeFaultNone NodeFaultClass = iota
	// NodeFaultCrash permanently kills the node: this and every later
	// dispatch to it fail fast, and Crashed reports true so harnesses
	// stop its heartbeats too.
	NodeFaultCrash
	// NodeFaultPartition hangs this dispatch until its context is
	// cancelled — the network ate the request.
	NodeFaultPartition
	// NodeFaultSlow delays this dispatch by the configured SlowDelay
	// before letting it proceed.
	NodeFaultSlow
	// NodeFaultCorrupt flips a byte in the returned proof.
	NodeFaultCorrupt
)

func (c NodeFaultClass) String() string {
	switch c {
	case NodeFaultNone:
		return "none"
	case NodeFaultCrash:
		return "crash"
	case NodeFaultPartition:
		return "partition"
	case NodeFaultSlow:
		return "slow-node"
	case NodeFaultCorrupt:
		return "corrupted-response"
	}
	return "unknown"
}

// ErrNodeCrashed is the dispatch error of a crashed node — the
// node-level stand-in for "connection refused".
var ErrNodeCrashed = errors.New("cluster: node crashed (injected)")

// ErrBadNodeFaultConfig reports an invalid NodeFaultConfig.
var ErrBadNodeFaultConfig = errors.New("cluster: invalid node-fault configuration")

// NodeFaultConfig describes per-dispatch fault probabilities. All
// probabilities are in [0, 1] and their sum must not exceed 1 (at most
// one fault fires per dispatch). The zero value injects nothing.
type NodeFaultConfig struct {
	// Seed makes every decision a pure function of
	// (Seed, node, dispatch-sequence).
	Seed int64
	// Crash is the probability a dispatch permanently kills its node.
	Crash float64
	// Partition is the probability a dispatch hangs until cancelled.
	Partition float64
	// Slow is the probability a dispatch is delayed by SlowDelay.
	Slow float64
	// Corrupt is the probability a dispatch returns a perturbed proof.
	Corrupt float64
	// SlowDelay is the injected delay of a slow dispatch (default 200ms).
	SlowDelay time.Duration
}

// DefaultSlowDelay is the slow-node delay when NodeFaultConfig.SlowDelay
// is unset.
const DefaultSlowDelay = 200 * time.Millisecond

// hash-domain tag keeping node-level decisions independent of the GPU
// injector's streams even under the same seed.
const tagNodeDecide uint64 = 0x4E0DE

// NodeInjector makes deterministic node-fault decisions. Decisions are
// pure in (seed, node, seq); the only mutable state is the sticky
// crashed set and the per-node dispatch sequence counters.
type NodeInjector struct {
	cfg NodeFaultConfig
	// cumulative thresholds over the unit interval, in class order
	thCrash, thPartition, thSlow, thCorrupt float64

	mu      sync.Mutex
	seq     map[int]uint64
	crashed map[int]bool
}

// NewNodeInjector validates cfg and returns an injector for it.
func NewNodeInjector(cfg NodeFaultConfig) (*NodeInjector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Crash", cfg.Crash},
		{"Partition", cfg.Partition},
		{"Slow", cfg.Slow},
		{"Corrupt", cfg.Corrupt},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("%w: %s = %v outside [0, 1]", ErrBadNodeFaultConfig, p.name, p.v)
		}
	}
	if sum := cfg.Crash + cfg.Partition + cfg.Slow + cfg.Corrupt; sum > 1 {
		return nil, fmt.Errorf("%w: probabilities sum to %v > 1", ErrBadNodeFaultConfig, sum)
	}
	if cfg.SlowDelay < 0 {
		return nil, fmt.Errorf("%w: SlowDelay = %v < 0", ErrBadNodeFaultConfig, cfg.SlowDelay)
	}
	if cfg.SlowDelay == 0 {
		cfg.SlowDelay = DefaultSlowDelay
	}
	i := &NodeInjector{cfg: cfg, seq: map[int]uint64{}, crashed: map[int]bool{}}
	i.thCrash = cfg.Crash
	i.thPartition = i.thCrash + cfg.Partition
	i.thSlow = i.thPartition + cfg.Slow
	i.thCorrupt = i.thSlow + cfg.Corrupt
	return i, nil
}

// Config returns the (default-filled) configuration.
func (i *NodeInjector) Config() NodeFaultConfig { return i.cfg }

// Decide returns the fault (if any) injected into the seq-th dispatch
// to the given node. The decision is deterministic in (seed, node, seq).
// A nil injector injects nothing.
func (i *NodeInjector) Decide(node int, seq uint64) NodeFaultClass {
	if i == nil {
		return NodeFaultNone
	}
	u := gpusim.HashUnit(uint64(i.cfg.Seed), tagNodeDecide, uint64(node), seq)
	switch {
	case u < i.thCrash:
		return NodeFaultCrash
	case u < i.thPartition:
		return NodeFaultPartition
	case u < i.thSlow:
		return NodeFaultSlow
	case u < i.thCorrupt:
		return NodeFaultCorrupt
	}
	return NodeFaultNone
}

// Crashed reports whether the node has been killed by an injected
// crash. Harnesses consult it to stop the node's heartbeats — a crashed
// process does not heartbeat.
func (i *NodeInjector) Crashed(node int) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed[node]
}

// CrashedCount returns how many distinct nodes the injector has killed.
func (i *NodeInjector) CrashedCount() int {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return len(i.crashed)
}

// next draws the node's next dispatch decision, applying the sticky
// crash state.
func (i *NodeInjector) next(node int) NodeFaultClass {
	i.mu.Lock()
	if i.crashed[node] {
		i.mu.Unlock()
		return NodeFaultCrash
	}
	s := i.seq[node]
	i.seq[node] = s + 1
	i.mu.Unlock()
	f := i.Decide(node, s)
	if f == NodeFaultCrash {
		i.mu.Lock()
		i.crashed[node] = true
		i.mu.Unlock()
	}
	return f
}

// WrapClient returns wc with the injector's faults applied: crashes
// fail fast (and stick), partitions hang until the context is
// cancelled, slow nodes delay, and corruption flips a byte of the
// returned proof. A nil injector returns wc unchanged.
func (i *NodeInjector) WrapClient(node int, wc WorkerClient) WorkerClient {
	if i == nil {
		return wc
	}
	fc := &faultClient{inj: i, node: node, inner: wc}
	if _, ok := wc.(MSMWorkerClient); ok {
		// Wrap the MSM surface only when the inner client serves it, so
		// the coordinator's MSMWorkerClient type assertion keeps telling
		// the truth about the node's capabilities.
		return &msmFaultClient{faultClient: fc}
	}
	return fc
}

// faultClient is a WorkerClient with injected node faults.
type faultClient struct {
	inj   *NodeInjector
	node  int
	inner WorkerClient
}

func (f *faultClient) Dispatch(ctx context.Context, req DispatchRequest) ([]byte, error) {
	switch f.inj.next(f.node) {
	case NodeFaultCrash:
		return nil, fmt.Errorf("%w: node %d", ErrNodeCrashed, f.node)
	case NodeFaultPartition:
		<-ctx.Done()
		return nil, fmt.Errorf("cluster: node %d partitioned (injected): %w", f.node, ctx.Err())
	case NodeFaultSlow:
		select {
		case <-time.After(f.inj.cfg.SlowDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	case NodeFaultCorrupt:
		proof, err := f.inner.Dispatch(ctx, req)
		if err != nil {
			return nil, err
		}
		perturbed := append([]byte(nil), proof...)
		if len(perturbed) > 0 {
			// Flip a low bit of a coordinate byte (index 1: index 0 is the
			// point-encoding tag, whose corruption would fail unmarshalling
			// rather than verification — both paths are worth exercising,
			// and the tag byte is covered by FuzzClusterWire).
			perturbed[len(perturbed)/2] ^= 0x01
		}
		return perturbed, nil
	}
	return f.inner.Dispatch(ctx, req)
}

// msmFaultClient extends faultClient over the MSM dispatch surface. It
// exists as a separate type so WrapClient only advertises
// MSMWorkerClient when the wrapped client really implements it.
type msmFaultClient struct {
	*faultClient
}

func (f *msmFaultClient) DispatchMSM(ctx context.Context, req MSMDispatchRequest) ([]byte, error) {
	inner := f.inner.(MSMWorkerClient)
	switch f.inj.next(f.node) {
	case NodeFaultCrash:
		return nil, fmt.Errorf("%w: node %d", ErrNodeCrashed, f.node)
	case NodeFaultPartition:
		<-ctx.Done()
		return nil, fmt.Errorf("cluster: node %d partitioned (injected): %w", f.node, ctx.Err())
	case NodeFaultSlow:
		select {
		case <-time.After(f.inj.cfg.SlowDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	case NodeFaultCorrupt:
		result, err := inner.DispatchMSM(ctx, req)
		if err != nil {
			return nil, err
		}
		return corruptMSMResult(req.Curve, result), nil
	}
	return inner.DispatchMSM(ctx, req)
}

// corruptMSMResult models a LYING worker, not line noise: it replaces
// the claimed shard sum with a different but perfectly valid curve
// point (claim + generator), which sails through point decoding and
// curve-membership checks — only the outsourced constant-size check can
// catch it. When the claim does not decode on the declared curve the
// corruption degrades to a byte flip (the junk-response path, caught at
// decode time).
func corruptMSMResult(curveName string, result []byte) []byte {
	crv, err := curve.ByName(curveName)
	if err == nil {
		if aff, perr := serial.UnmarshalPoint(crv, result); perr == nil {
			p := crv.NewXYZZ()
			crv.SetAffine(p, &aff)
			crv.NewAdder().Acc(p, &crv.Gen)
			out := crv.ToAffine(p)
			return serial.MarshalPoint(crv, &out, false)
		}
	}
	perturbed := append([]byte(nil), result...)
	if len(perturbed) > 0 {
		perturbed[len(perturbed)/2] ^= 0x01
	}
	return perturbed
}
