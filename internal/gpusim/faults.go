package gpusim

import (
	"errors"
	"fmt"
)

// This file is the fault model of the simulated cluster: a deterministic,
// seedable injector the execution engine consults once per shard
// execution. Production multi-GPU ZKP deployments see exactly these
// failure classes — whole-device loss (XID errors, ECC retirement),
// transient kernel failures, stragglers from clock throttling or
// contention, and (rarely, but catastrophically for a proof) corrupted
// partial results — and the DistMSM scheduler must degrade throughput,
// never correctness, under all of them.

// FaultClass enumerates the injectable fault classes.
type FaultClass int

const (
	// FaultNone: the shard executes normally.
	FaultNone FaultClass = iota
	// FaultDeviceLost permanently removes the executing GPU from the
	// cluster; its queued shards must be reassigned to survivors.
	FaultDeviceLost
	// FaultTransient fails this shard execution; the device survives and
	// a retry (with a fresh attempt index) may succeed.
	FaultTransient
	// FaultStraggler inflates the shard's execution cost by the
	// configured factor without failing it.
	FaultStraggler
	// FaultCorrupt makes the shard return a wrong partial bucket sum
	// (one XYZZ accumulator is perturbed to a different curve point).
	FaultCorrupt
)

func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultDeviceLost:
		return "device-lost"
	case FaultTransient:
		return "transient-error"
	case FaultStraggler:
		return "straggler"
	case FaultCorrupt:
		return "corrupted-result"
	}
	return "unknown"
}

// Fault is one injection decision.
type Fault struct {
	Class FaultClass
	// Factor is the cost-inflation multiple for FaultStraggler (the
	// configured StragglerFactor); zero otherwise.
	Factor float64
}

// ErrBadFaultConfig reports an invalid FaultConfig.
var ErrBadFaultConfig = errors.New("gpusim: invalid fault configuration")

// FaultConfig describes the per-shard-execution fault probabilities. All
// probabilities are in [0, 1] and their sum must not exceed 1 (at most
// one fault fires per execution). The zero value injects nothing.
type FaultConfig struct {
	// Seed makes every injection decision a pure function of
	// (Seed, gpu, window, bucketLo, attempt): the same seed reproduces
	// the same decision at every decision point regardless of the
	// host's goroutine scheduling.
	Seed int64
	// DeviceLost is the probability a shard execution permanently kills
	// its GPU.
	DeviceLost float64
	// Transient is the probability a shard execution fails recoverably.
	Transient float64
	// Straggler is the probability a shard execution is slowed by
	// StragglerFactor.
	Straggler float64
	// Corrupt is the probability a shard returns a perturbed result.
	Corrupt float64
	// StragglerFactor is the cost-inflation multiple of a straggling
	// shard (default 32 when zero).
	StragglerFactor float64
	// DisableFallback surfaces ErrAllGPUsLost from the engine instead of
	// degrading to the serial host engine when every GPU is lost.
	DisableFallback bool
}

// DefaultStragglerFactor is the cost inflation applied to straggling
// shards when FaultConfig.StragglerFactor is unset.
const DefaultStragglerFactor = 32

// FaultInjector makes deterministic fault decisions from a FaultConfig.
// It is stateless and safe for concurrent use.
type FaultInjector struct {
	cfg FaultConfig
	// cumulative thresholds over the unit interval, in class order
	thLost, thTransient, thStraggler, thCorrupt float64
}

// NewFaultInjector validates cfg and returns an injector for it.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DeviceLost", cfg.DeviceLost},
		{"Transient", cfg.Transient},
		{"Straggler", cfg.Straggler},
		{"Corrupt", cfg.Corrupt},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("%w: %s = %v outside [0, 1]", ErrBadFaultConfig, p.name, p.v)
		}
	}
	sum := cfg.DeviceLost + cfg.Transient + cfg.Straggler + cfg.Corrupt
	if sum > 1 {
		return nil, fmt.Errorf("%w: probabilities sum to %v > 1", ErrBadFaultConfig, sum)
	}
	if cfg.StragglerFactor < 0 {
		return nil, fmt.Errorf("%w: StragglerFactor = %v < 0", ErrBadFaultConfig, cfg.StragglerFactor)
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = DefaultStragglerFactor
	}
	f := &FaultInjector{cfg: cfg}
	f.thLost = cfg.DeviceLost
	f.thTransient = f.thLost + cfg.Transient
	f.thStraggler = f.thTransient + cfg.Straggler
	f.thCorrupt = f.thStraggler + cfg.Corrupt
	return f, nil
}

// Config returns the (default-filled) configuration.
func (f *FaultInjector) Config() FaultConfig { return f.cfg }

// hash-domain tags keeping the decision, verification-sampling and
// verification-coefficient streams independent.
const (
	tagDecide uint64 = 0xD1CE
	// TagVerify is the domain of the engine's verification-sampling rolls.
	TagVerify uint64 = 0x5EED
	// TagCoeff is the domain of the verification RLC coefficients.
	TagCoeff uint64 = 0xC0EF
	// TagChallenge is the domain of the outsourced-verification
	// challenge secrets (sparse-mask derivation, internal/outsource).
	TagChallenge uint64 = 0xCA11
)

// Decide returns the fault (if any) injected into the attempt-th
// execution of the (window, bucketLo) shard on the given GPU. Decisions
// are deterministic in the tuple and independent across attempts, so a
// retried or reassigned execution rolls afresh. A nil injector injects
// nothing.
func (f *FaultInjector) Decide(gpu, window, bucketLo, attempt int) Fault {
	if f == nil {
		return Fault{}
	}
	u := HashUnit(uint64(f.cfg.Seed), tagDecide,
		uint64(gpu), uint64(window), uint64(bucketLo), uint64(attempt))
	switch {
	case u < f.thLost:
		return Fault{Class: FaultDeviceLost}
	case u < f.thTransient:
		return Fault{Class: FaultTransient}
	case u < f.thStraggler:
		return Fault{Class: FaultStraggler, Factor: f.cfg.StragglerFactor}
	case u < f.thCorrupt:
		return Fault{Class: FaultCorrupt}
	}
	return Fault{}
}

// Mix64 is the SplitMix64 finalizer, the mixing primitive of the
// injector's counter-based randomness.
func Mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 folds the parts into one well-mixed 64-bit value.
func Hash64(parts ...uint64) uint64 {
	var h uint64 = 0x9e3779b97f4a7c15
	for _, p := range parts {
		h = Mix64(h ^ p)
	}
	return h
}

// HashUnit maps the parts to a uniform float64 in [0, 1).
func HashUnit(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / float64(1<<53)
}
