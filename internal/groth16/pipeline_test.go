package groth16

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/pairing"
	"distmsm/internal/r1cs"
	"distmsm/internal/telemetry"
)

// TestPipelinedParityMatrix is the acceptance grid of the phase-DAG PR:
// the pipelined prover must produce byte-identical proofs to the
// sequential schedule with the G1 MSMs routed through DistMSM, across
// both execution engines, all four fault classes, and cached
// (fixed-base + precomputed G2) vs uncached key columns — with each
// concurrent phase confined to its own disjoint GPU sub-pool.
func TestPipelinedParityMatrix(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 200, 9)
	rnd := rand.New(rand.NewSource(31))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := gpusim.NewCluster(gpusim.A100(), 8)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const seed = 77
	seq, err := e.ProveContextWith(ctx, cs, pk, w, rand.New(rand.NewSource(seed)), Provers{})
	if err != nil {
		t.Fatal(err)
	}
	want := e.MarshalProof(seq)
	if ok, err := e.Verify(vk, seq, w[1:1+cs.NPublic]); err != nil || !ok {
		t.Fatalf("sequential reference proof rejected: %v", err)
	}

	// The cached configuration mirrors a service registration: GLV-folded
	// fixed-base tables per G1 column plus the precomputed G2 over pk.B2.
	var fb [4]*core.FixedBase
	for phase, col := range map[MSMPhase][]curve.PointAffine{
		PhaseA: pk.A, PhaseB1: pk.B1, PhaseK: pk.K, PhaseZ: pk.Z,
	} {
		tb, err := core.NewFixedBase(e.P.Curve, col, core.Options{GLV: true})
		if err != nil {
			t.Fatalf("NewFixedBase(%s): %v", phase, err)
		}
		fb[phase] = tb
	}
	g2pre := e.P.G2.Precompute(pk.B2, 0, e.Fr.Modulus.BitLen())

	faultClasses := []struct {
		name string
		cfg  *gpusim.FaultConfig
	}{
		{name: "fault-free", cfg: nil},
		{name: "transient-straggler", cfg: &gpusim.FaultConfig{Seed: 7, Transient: 0.3, Straggler: 0.2, StragglerFactor: 16}},
		{name: "corrupt", cfg: &gpusim.FaultConfig{Seed: 7, Corrupt: 0.3}},
		{name: "device-lost", cfg: &gpusim.FaultConfig{Seed: 7, DeviceLost: 0.15}},
	}
	// Disjoint sub-pools, one per G1 phase (indexed by MSMPhase).
	pools := [4][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}

	for _, eng := range []core.Engine{core.EngineSerial, core.EngineConcurrent} {
		for _, fc := range faultClasses {
			if fc.cfg != nil && eng == core.EngineSerial {
				continue // injection targets the shard scheduler
			}
			for _, cached := range []bool{false, true} {
				name := fmt.Sprintf("%s/%s/cached=%v", eng, fc.name, cached)
				pr := Provers{Pipeline: &PipelineOptions{NTTWorkers: 4}}
				eng, fc, cached := eng, fc, cached
				pr.G1Ctx = func(msmCtx context.Context, phase MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
					opts := core.Options{Engine: eng, Devices: pools[phase]}
					if fc.cfg != nil {
						cfg := *fc.cfg
						opts.Faults = &cfg
					}
					if cached {
						opts.FixedBase = fb[phase]
						opts.GLV = true
					}
					res, err := core.RunContext(msmCtx, e.P.Curve, cl, points, scalars, opts)
					if err != nil {
						return nil, err
					}
					return res.Point, nil
				}
				if cached {
					pr.G2Ctx = func(msmCtx context.Context, _ []pairing.G2Affine, scalars []*big.Int) (pairing.G2Affine, error) {
						return g2pre.MSMContext(msmCtx, scalars)
					}
				}
				proof, err := e.ProveContextWith(ctx, cs, pk, w, rand.New(rand.NewSource(seed)), pr)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(e.MarshalProof(proof), want) {
					t.Fatalf("%s: pipelined proof differs from the sequential prover's bytes", name)
				}
			}
		}
	}
}

// TestQuotientParallelNTTParity: at a domain large enough to clear the
// parallel transform's serial fallback (d >= 1024) the quotient computed
// on the parallel coset NTTs is bit-identical to the serial path for
// every worker count, and a dead context still surfaces from inside the
// parallel butterfly passes.
func TestQuotientParallelNTTParity(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 1023, 3)
	const d = 1024
	ctx := context.Background()
	serial, err := e.quotient(ctx, cs, d, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		got, err := e.quotient(ctx, cs, d, w, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d coefficients, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if !got[i].Equal(serial[i]) {
				t.Fatalf("workers=%d: coefficient %d differs from serial quotient", workers, i)
			}
		}
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := e.quotient(dead, cs, d, w, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel quotient on dead context: want context.Canceled, got %v", err)
	}
}

// TestPipelinedCancelMidPhase: an external cancel lands while every G1
// phase is blocked mid-MSM, and the DAG join returns context.Canceled
// without hanging; a spontaneously failing phase cancels its in-flight
// siblings and the error comes back annotated with the phase name.
func TestPipelinedCancelMidPhase(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 60, 5)
	rnd := rand.New(rand.NewSource(6))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}

	// (a) External cancellation mid-phase.
	started := make(chan struct{})
	var once sync.Once
	blocking := func(msmCtx context.Context, _ MSMPhase, _ []curve.PointAffine, _ []bigint.Nat) (*curve.PointXYZZ, error) {
		once.Do(func() { close(started) })
		<-msmCtx.Done()
		return nil, msmCtx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.ProveContextWith(ctx, cs, pk, w, rand.New(rand.NewSource(1)),
			Provers{G1Ctx: blocking, Pipeline: &PipelineOptions{}})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled pipelined prove did not return")
	}

	// (b) First phase error cancels in-flight siblings.
	wantErr := errors.New("injected msm-K failure")
	var siblingCancelled atomic.Bool
	failing := func(msmCtx context.Context, phase MSMPhase, _ []curve.PointAffine, _ []bigint.Nat) (*curve.PointXYZZ, error) {
		if phase == PhaseK {
			return nil, wantErr
		}
		// Other phases block until the group context dies: the failure
		// must cancel running siblings, not just unstarted ones.
		<-msmCtx.Done()
		siblingCancelled.Store(true)
		return nil, msmCtx.Err()
	}
	_, err = e.ProveContextWith(context.Background(), cs, pk, w, rand.New(rand.NewSource(2)),
		Provers{G1Ctx: failing, Pipeline: &PipelineOptions{}})
	if !errors.Is(err, wantErr) {
		t.Fatalf("want the injected phase error, got %v", err)
	}
	if !strings.Contains(err.Error(), "msm-K") {
		t.Fatalf("error not annotated with the failing phase: %v", err)
	}
	if !siblingCancelled.Load() {
		t.Fatal("a failing phase did not cancel its in-flight siblings")
	}
}

// TestPipelinedNoGoroutineLeak: the DAG join leaves no phase goroutine
// behind, on success and on phase failure alike.
func TestPipelinedNoGoroutineLeak(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 40, 8)
	rnd := rand.New(rand.NewSource(4))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	for i := 0; i < 5; i++ {
		if _, err := e.ProveContextWith(context.Background(), cs, pk, w,
			rand.New(rand.NewSource(int64(i))), Provers{Pipeline: &PipelineOptions{NTTWorkers: 2}}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		pr := Provers{Pipeline: &PipelineOptions{}}
		pr.G1Ctx = func(_ context.Context, phase MSMPhase, _ []curve.PointAffine, _ []bigint.Nat) (*curve.PointXYZZ, error) {
			if phase == PhaseB1 {
				return nil, boom
			}
			return e.P.Curve.NewXYZZ(), nil
		}
		if _, err := e.ProveContextWith(context.Background(), cs, pk, w,
			rand.New(rand.NewSource(int64(i))), pr); !errors.Is(err, boom) {
			t.Fatalf("failing run %d: want boom, got %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelinedPhaseSpans runs one traced pipelined prove at a domain
// large enough for the parallel NTT (so the quotient goroutine yields
// mid-transform) and pins the telemetry contract of the phase DAG.
func TestPipelinedPhaseSpans(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 1023, 4)
	rnd := rand.New(rand.NewSource(9))
	pk, _, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	tr := telemetry.NewTracer(0)
	ctx := telemetry.NewContext(context.Background(), tr)
	phaseDur := make(map[string]time.Duration)
	var mu sync.Mutex
	opt := &PipelineOptions{NTTWorkers: 4, OnPhase: func(name string, d time.Duration) {
		mu.Lock()
		phaseDur[name] = d
		mu.Unlock()
	}}
	if _, err := e.ProveContextWith(ctx, cs, pk, w, rnd, Provers{Pipeline: opt}); err != nil {
		t.Fatal(err)
	}

	spans := make(map[string]telemetry.Span)
	for _, s := range tr.Spans() {
		if s.Cat == "groth16" {
			if _, dup := spans[s.Name]; dup {
				t.Fatalf("phase %q recorded twice", s.Name)
			}
			spans[s.Name] = s
		}
	}
	phases := []string{"quotient", "msm-A", "msm-B2", "msm-B1", "msm-K", "msm-Z"}

	// Satellite pin: each phase records its own start on its own lane —
	// overlapping spans never alias a shared start time or track.
	t.Run("no-alias", func(t *testing.T) {
		lanes := make(map[telemetry.Track]string)
		for _, name := range phases {
			s, ok := spans[name]
			if !ok {
				t.Fatalf("phase %q recorded no span", name)
			}
			if s.Dur <= 0 {
				t.Errorf("phase %q has non-positive duration %v", name, s.Dur)
			}
			if s.Track >= telemetry.TrackHost {
				t.Errorf("phase %q drawn on lane %d, want a dedicated phase lane", name, s.Track)
			}
			if prev, taken := lanes[s.Track]; taken {
				t.Errorf("phases %q and %q alias lane %d", prev, name, s.Track)
			}
			lanes[s.Track] = name
			if d, ok := phaseDur[name]; !ok || d <= 0 {
				t.Errorf("OnPhase callback missing or zero for %q", name)
			}
		}
	})

	// Acceptance pin: the quotient span overlaps at least one witness-MSM
	// span in wall time — the whole point of the DAG schedule.
	t.Run("quotient-overlaps-witness-msm", func(t *testing.T) {
		q := spans["quotient"]
		overlap := false
		for _, name := range []string{"msm-A", "msm-B2", "msm-B1", "msm-K"} {
			s := spans[name]
			if s.Start.Before(q.Start.Add(q.Dur)) && q.Start.Before(s.Start.Add(s.Dur)) {
				overlap = true
				break
			}
		}
		if !overlap {
			t.Fatal("quotient span overlaps no witness-MSM span — the phases ran sequentially")
		}
	})

	// The exported Chrome trace names the phase lanes so the overlap is
	// visible in the viewer.
	t.Run("chrome-trace-lanes", func(t *testing.T) {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		for _, lane := range []string{"phase0", "phase5"} {
			if !strings.Contains(buf.String(), lane) {
				t.Errorf("Chrome trace missing thread_name %q", lane)
			}
		}
	})

	// The sequential prover keeps drawing its phases on the host lane.
	t.Run("sequential-stays-on-host", func(t *testing.T) {
		trSeq := telemetry.NewTracer(0)
		ctxSeq := telemetry.NewContext(context.Background(), trSeq)
		csS, wS := r1cs.BuildSynthetic(e.Fr, 40, 2)
		pkS, _, err := e.SetupContext(context.Background(), csS, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.ProveContextWith(ctxSeq, csS, pkS, wS, rnd, Provers{}); err != nil {
			t.Fatal(err)
		}
		for _, s := range trSeq.Spans() {
			if s.Cat == "groth16" && s.Track != telemetry.TrackHost {
				t.Errorf("sequential phase %q left the host lane (%d)", s.Name, s.Track)
			}
		}
	})
}

// TestPipelinedProveBasics: entry guards and the happy path of the
// pipelined prover itself (no custom MSM backends).
func TestPipelinedProveBasics(t *testing.T) {
	e := newEngine(t)
	cs, w := r1cs.BuildSynthetic(e.Fr, 30, 11)
	rnd := rand.New(rand.NewSource(12))
	pk, vk, err := e.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	pip := Provers{Pipeline: &PipelineOptions{}}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ProveContextWith(dead, cs, pk, w, rnd, pip); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: want context.Canceled, got %v", err)
	}
	// The zero witness satisfies the synthetic multiply chain, so the
	// unsatisfying-witness guard is pinned on the product circuit.
	csBad, _, _ := r1cs.BuildProduct(e.Fr)
	pkBad, _, err := e.SetupContext(context.Background(), csBad, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProveContextWith(context.Background(), csBad, pkBad, csBad.NewWitness(), rnd, pip); err == nil {
		t.Fatal("pipelined prover accepted an unsatisfying witness")
	}
	proof, err := e.ProveContextWith(context.Background(), cs, pk, w, rnd, pip)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := e.Verify(vk, proof, w[1:1+cs.NPublic]); err != nil || !ok {
		t.Fatalf("pipelined proof rejected: %v", err)
	}
}
