package msm

import (
	"math/big"
	"math/rand"
	"testing"

	"distmsm/internal/bigint"
)

// randScalars returns n random scalars of at most `bits` bits.
func randScalars(n, bits int, seed int64) []bigint.Nat {
	rnd := rand.New(rand.NewSource(seed))
	words := (bits + 63) / 64
	out := make([]bigint.Nat, n)
	for i := range out {
		k := bigint.New(words)
		for w := range k {
			k[w] = rnd.Uint64()
		}
		// Mask down to the scalar width.
		if rem := bits % 64; rem != 0 {
			k[words-1] &= (1 << rem) - 1
		}
		out[i] = k
	}
	// Force the edge values in as well: zero, one, all-ones.
	if n >= 3 {
		out[0] = bigint.New(words)
		one := bigint.New(words)
		one.SetUint64(1)
		out[1] = one
		ones := bigint.New(words)
		for i := 0; i < bits; i++ {
			ones[i/64] |= 1 << (uint(i) % 64)
		}
		out[2] = ones
	}
	return out
}

// TestWindowRecoderMatchesBatchRecoding checks the streaming recoder is
// bit-identical to Digits / SignedDigits across window sizes, including
// the carry window and the zero tail past the recoding's length.
func TestWindowRecoderMatchesBatchRecoding(t *testing.T) {
	const scalarBits = 253
	scalars := randScalars(32, scalarBits, 7)
	for _, signed := range []bool{false, true} {
		for _, s := range []int{2, 4, 8, 13, 16, 21} {
			windows := NumWindows(scalarBits, s) + 2 // past the natural length
			rec := NewWindowRecoder(scalars, scalarBits, s, signed)
			var digits []int32
			for j := 0; j < windows; j++ {
				digits = rec.Window(j, digits)
				for i, k := range scalars {
					var want int32
					if signed {
						ds := SignedDigits(k, scalarBits, s)
						if j < len(ds) {
							want = ds[j]
						}
					} else {
						ds := Digits(k, scalarBits, s)
						if j < len(ds) {
							want = int32(ds[j])
						}
					}
					if digits[i] != want {
						t.Fatalf("signed=%v s=%d window %d scalar %d: got %d want %d",
							signed, s, j, i, digits[i], want)
					}
				}
			}
		}
	}
}

// FuzzWindowRecoder cross-checks the streaming recoder against the
// materialized Digits / SignedDigits recodings on fuzzer-chosen scalar
// bytes, window sizes and signedness — the streaming path must be
// bit-for-bit identical including the carry window and the zero tail.
func FuzzWindowRecoder(f *testing.F) {
	f.Add(uint8(8), true, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(2), false, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(uint8(13), true, []byte{})
	f.Add(uint8(16), false, []byte{0x80})
	f.Add(uint8(21), true, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF})
	f.Fuzz(func(t *testing.T, sRaw uint8, signed bool, raw []byte) {
		const scalarBits = 253
		s := 2 + int(sRaw)%20 // window size in [2, 21]
		words := (scalarBits + 63) / 64
		// Pack the fuzzed bytes into up to 4 scalars, masked to width.
		nScalars := len(raw)/(words*8) + 1
		if nScalars > 4 {
			nScalars = 4
		}
		scalars := make([]bigint.Nat, nScalars)
		for i := range scalars {
			k := bigint.New(words)
			for w := 0; w < words*8; w++ {
				idx := i*words*8 + w
				if idx >= len(raw) {
					break
				}
				k[w/8] |= uint64(raw[idx]) << (uint(w%8) * 8)
			}
			if rem := scalarBits % 64; rem != 0 {
				k[words-1] &= (1 << rem) - 1
			}
			scalars[i] = k
		}
		windows := NumWindows(scalarBits, s) + 2 // past the natural length
		rec := NewWindowRecoder(scalars, scalarBits, s, signed)
		var digits []int32
		for j := 0; j < windows; j++ {
			digits = rec.Window(j, digits)
			for i, k := range scalars {
				var want int32
				if signed {
					ds := SignedDigits(k, scalarBits, s)
					if j < len(ds) {
						want = ds[j]
					}
				} else {
					ds := Digits(k, scalarBits, s)
					if j < len(ds) {
						want = int32(ds[j])
					}
				}
				if digits[i] != want {
					t.Fatalf("signed=%v s=%d window %d scalar %d: streaming %d != batch %d",
						signed, s, j, i, digits[i], want)
				}
			}
		}
		// The signed recoding must reconstruct the scalar: Σ d_j·2^(j·s) = k.
		if signed {
			for i, k := range scalars {
				ds := SignedDigits(k, scalarBits, s)
				back := new(big.Int)
				for j := len(ds) - 1; j >= 0; j-- {
					back.Lsh(back, uint(s))
					back.Add(back, big.NewInt(int64(ds[j])))
				}
				if back.Cmp(k.ToBig()) != 0 {
					t.Fatalf("s=%d scalar %d: signed digits do not reconstruct the scalar", s, i)
				}
			}
		}
	})
}

func TestWindowRecoderEnforcesOrder(t *testing.T) {
	scalars := randScalars(4, 253, 8)
	rec := NewWindowRecoder(scalars, 253, 8, true)
	rec.Window(0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order window request must panic")
		}
	}()
	rec.Window(2, nil)
}
