// Package transcript implements a Fiat–Shamir transcript over SHA-256:
// both parties absorb the same protocol messages and derive identical
// pseudo-random challenges, turning interactive arguments (like KZG
// batch openings) non-interactive.
package transcript

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"

	"distmsm/internal/field"
)

// Transcript accumulates labelled protocol messages.
type Transcript struct {
	state [32]byte
}

// New creates a transcript bound to a domain-separation label.
func New(label string) *Transcript {
	t := &Transcript{}
	t.Append("domain", []byte(label))
	return t
}

// Append absorbs a labelled message: state ← H(state ‖ len(label) ‖
// label ‖ len(msg) ‖ msg).
func (t *Transcript) Append(label string, msg []byte) {
	h := sha256.New()
	h.Write(t.state[:])
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(label)))
	h.Write(lenBuf[:])
	h.Write([]byte(label))
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(msg)))
	h.Write(lenBuf[:])
	h.Write(msg)
	copy(t.state[:], h.Sum(nil))
}

// Challenge derives a field element from the current state (and ratchets
// the state so successive challenges are independent).
func (t *Transcript) Challenge(label string, f *field.Field) field.Element {
	t.Append("challenge:"+label, nil)
	// Two hash blocks give > field-size bits; reduce mod p (the bias is
	// negligible for ~256-bit fields and irrelevant for 753-bit ones).
	h1 := sha256.Sum256(append(t.state[:], 0x01))
	h2 := sha256.Sum256(append(t.state[:], 0x02))
	v := new(big.Int).SetBytes(append(h1[:], h2[:]...))
	return f.FromBig(v)
}
