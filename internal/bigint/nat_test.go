package bigint

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randNat(rnd *rand.Rand, width int) Nat {
	z := New(width)
	for i := range z {
		z[i] = rnd.Uint64()
	}
	return z
}

func natFromLimbs(limbs ...uint64) Nat { return Nat(limbs) }

func TestAddSubRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 4, 6, 12} {
		for iter := 0; iter < 200; iter++ {
			x := randNat(rnd, width)
			y := randNat(rnd, width)
			sum := New(width)
			carry := AddInto(sum, x, y)
			back := New(width)
			borrow := SubInto(back, sum, y)
			if !back.Equal(x) {
				t.Fatalf("width %d: (x+y)-y != x: x=%v y=%v", width, x, y)
			}
			if carry != borrow {
				t.Fatalf("width %d: carry %d != borrow %d", width, carry, borrow)
			}
		}
	}
}

func TestAddMatchesBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	mod := new(big.Int).Lsh(big.NewInt(1), 256)
	for iter := 0; iter < 200; iter++ {
		x := randNat(rnd, 4)
		y := randNat(rnd, 4)
		z := New(4)
		carry := AddInto(z, x, y)
		want := new(big.Int).Add(x.ToBig(), y.ToBig())
		wantCarry := uint64(0)
		if want.Cmp(mod) >= 0 {
			wantCarry = 1
			want.Sub(want, mod)
		}
		if z.ToBig().Cmp(want) != 0 || carry != wantCarry {
			t.Fatalf("add mismatch: %v + %v", x, y)
		}
	}
}

func TestMulMatchesBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for _, width := range []int{1, 3, 4, 6, 12} {
		for iter := 0; iter < 100; iter++ {
			x := randNat(rnd, width)
			y := randNat(rnd, width)
			z := New(2 * width)
			MulInto(z, x, y)
			want := new(big.Int).Mul(x.ToBig(), y.ToBig())
			if z.ToBig().Cmp(want) != 0 {
				t.Fatalf("width %d mul mismatch: %v * %v = %v, want %v", width, x, y, z, want)
			}
		}
	}
}

func TestBitsExtraction(t *testing.T) {
	x := natFromLimbs(0xfedcba9876543210, 0x0123456789abcdef)
	cases := []struct {
		off, width int
		want       uint64
	}{
		{0, 4, 0x0},
		{4, 4, 0x1},
		{0, 16, 0x3210},
		{60, 8, 0xff}, // spans the limb boundary: low nibble f | next limb's f
		{64, 16, 0xcdef},
		{120, 8, 0x01},
		{124, 4, 0x0},
		{0, 64, 0xfedcba9876543210},
	}
	for _, c := range cases {
		if got := x.Bits(c.off, c.width); got != c.want {
			t.Errorf("Bits(%d,%d) = %#x, want %#x", c.off, c.width, got, c.want)
		}
	}
}

func TestBitsMatchesBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		x := randNat(rnd, 6)
		b := x.ToBig()
		off := rnd.Intn(6*64 + 10)
		width := 1 + rnd.Intn(64)
		var want uint64
		for i := 0; i < width; i++ {
			want |= uint64(b.Bit(off+i)) << uint(i)
		}
		if got := x.Bits(off, width); got != want {
			t.Fatalf("Bits(%d,%d) on %v = %#x, want %#x", off, width, x, got, want)
		}
	}
}

func TestBigRoundTrip(t *testing.T) {
	f := func(a, b, c, d uint64) bool {
		x := natFromLimbs(a, b, c, d)
		return FromBig(x.ToBig(), 4).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShifts(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		x := randNat(rnd, 4)
		s := uint(rnd.Intn(64))
		shl := New(4)
		ShlInto(shl, x, s)
		want := new(big.Int).Lsh(x.ToBig(), s)
		want.And(want, new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(1)))
		if shl.ToBig().Cmp(want) != 0 {
			t.Fatalf("shl %d mismatch", s)
		}
		shr := New(4)
		ShrInto(shr, x, s)
		if shr.ToBig().Cmp(new(big.Int).Rsh(x.ToBig(), s)) != 0 {
			t.Fatalf("shr %d mismatch", s)
		}
	}
}

func TestCmpAndZero(t *testing.T) {
	a := natFromLimbs(1, 0, 0)
	b := natFromLimbs(0, 0, 1)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a.Clone()) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
	z := New(3)
	if !z.IsZero() || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
	z.SetUint64(7)
	if z.IsZero() || z[0] != 7 {
		t.Fatal("SetUint64 wrong")
	}
}

func TestBitLen(t *testing.T) {
	if New(4).BitLen() != 0 {
		t.Fatal("zero BitLen")
	}
	x := New(4)
	x[2] = 0x8000
	if x.BitLen() != 2*64+16 {
		t.Fatalf("BitLen = %d", x.BitLen())
	}
}

func TestCondSubInto(t *testing.T) {
	x := natFromLimbs(10, 0)
	y := natFromLimbs(3, 0)
	z := New(2)
	CondSubInto(z, x, y, 0)
	if !z.Equal(x) {
		t.Fatal("cond=0 should copy")
	}
	CondSubInto(z, x, y, 1)
	if z[0] != 7 || z[1] != 0 {
		t.Fatal("cond=1 should subtract")
	}
}
