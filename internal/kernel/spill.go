package kernel

import (
	"fmt"
	"sort"
)

// SpillPlan is the result of the explicit register-spilling pass of
// §4.2.2: selected big integers are kept in shared memory instead of
// registers, with explicit store/load routines woven into the kernel.
//
// Model: big-integer routines access shared-memory residents limb by
// limb, streaming through the kernel's existing scratch registers, so a
// spilled integer contributes no full-width register pressure at its
// definition or uses — only shared-memory occupancy and transfer traffic.
// (This is why shared memory beats the compiler's device-memory spilling:
// the per-limb round trips stay on-chip.)
type SpillPlan struct {
	Graph  *Graph
	Order  []int
	Target int

	Spilled       []string // values resident in shared memory
	PeakRegisters int      // peak live big integers in registers after spilling
	PeakShared    int      // peak big integers in shared memory at once
	Transfers     int      // store+load big-integer transfers inserted
}

// PlanSpills lowers the peak register pressure of the given schedule to at
// most target live big integers by moving values to shared memory. The
// victim choice follows Belady's rule: among registers live at the peak
// operation, spill the one whose next use is furthest away.
func PlanSpills(g *Graph, order []int, target int) (*SpillPlan, error) {
	if !IsTopological(g, order) {
		return nil, fmt.Errorf("kernel: spill order is not topological for %s", g.Name)
	}
	spilled := map[string]bool{}
	for {
		peak, prof, _ := spilledProfile(g, order, spilled)
		if peak <= target {
			break
		}
		peakIdx := -1
		for i, p := range prof {
			if p == peak {
				peakIdx = i
				break
			}
		}
		victim := chooseVictim(g, order, peakIdx, spilled)
		if victim == "" {
			return nil, fmt.Errorf("kernel %s: cannot reach target %d (stuck at %d)", g.Name, target, peak)
		}
		spilled[victim] = true
	}

	peak, _, shared := spilledProfile(g, order, spilled)
	plan := &SpillPlan{Graph: g, Order: order, Target: target, PeakRegisters: peak, PeakShared: shared}
	uses := useCounts(g)
	for v := range spilled {
		plan.Spilled = append(plan.Spilled, v)
		plan.Transfers += 1 + uses[v] // one store + one load per use
	}
	sort.Strings(plan.Spilled)
	return plan, nil
}

// spilledProfile computes the register-pressure profile with the given
// spill set, returning (peak registers, per-op profile, peak shared slots).
func spilledProfile(g *Graph, order []int, spilled map[string]bool) (int, []int, int) {
	remaining := useCounts(g)
	outputs := map[string]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	liveReg := map[string]bool{}
	liveShm := map[string]bool{}
	for _, in := range g.Inputs {
		if spilled[in] {
			liveShm[in] = true
		} else {
			liveReg[in] = true
		}
	}
	peak, peakShm := len(liveReg), len(liveShm)
	prof := make([]int, len(order))
	for i, idx := range order {
		op := g.Ops[idx]
		before := len(liveReg)
		for _, s := range op.Srcs {
			remaining[s]--
			if remaining[s] == 0 && !outputs[s] {
				delete(liveReg, s)
				delete(liveShm, s)
			}
		}
		if remaining[op.Dst] > 0 || outputs[op.Dst] {
			if spilled[op.Dst] && !outputs[op.Dst] {
				liveShm[op.Dst] = true // streamed to shared memory as produced
			} else {
				liveReg[op.Dst] = true
			}
		}
		after := len(liveReg)
		p := before
		if after > p {
			p = after
		}
		if op.Mul {
			p++ // Montgomery scratch
		}
		prof[i] = p
		if p > peak {
			peak = p
		}
		if len(liveShm) > peakShm {
			peakShm = len(liveShm)
		}
	}
	return peak, prof, peakShm
}

// chooseVictim picks the register-resident value at order[peakIdx] whose
// next use is furthest away (Belady). Kernel outputs (the accumulator,
// which must end in registers) and already-spilled values are ineligible;
// the op's own destination is kept in registers.
func chooseVictim(g *Graph, order []int, peakIdx int, spilled map[string]bool) string {
	outputs := map[string]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	dst := g.Ops[order[peakIdx]].Dst
	// next use position at or after peakIdx, per value.
	nextUse := map[string]int{}
	for pos := len(order) - 1; pos >= peakIdx; pos-- {
		for _, s := range g.Ops[order[pos]].Srcs {
			nextUse[s] = pos
		}
	}
	definedBefore := map[string]bool{}
	for _, in := range g.Inputs {
		definedBefore[in] = true
	}
	for pos := 0; pos < peakIdx; pos++ {
		definedBefore[g.Ops[order[pos]].Dst] = true
	}
	best, bestDist := "", -1
	for v, use := range nextUse {
		if !definedBefore[v] || v == dst || spilled[v] || outputs[v] {
			continue
		}
		if use > bestDist {
			best, bestDist = v, use
		}
	}
	return best
}
