// Command outsourcebench measures the point of the outsourced-MSM
// protocol: accepting a worker's claim with the constant-size check of
// internal/outsource versus re-running the MSM yourself.
//
// For each instance size it times three things:
//
//	derive     NewCheck — the client's one pass over the scalar vector
//	           deriving the secret challenge instance (O(n) word-sized
//	           big-int arithmetic, no group operations)
//	check      Check.Verify — the accept decision given the two claimed
//	           outputs: 1+s short scalar multiplications and s+1 point
//	           additions, CONSTANT in n
//	recompute  curve.MSMReference over the shard — what verification
//	           costs without the protocol (the scheduler's old
//	           verifyShard, and the coordinator's rejection-path
//	           adjudicator)
//
// The headline: check time stays flat from 2^12 to 2^16 while recompute
// grows linearly, so the crossover — the instance size past which the
// check is cheaper than recomputing — sits at a few dozen points, and
// at 2^16 the gap is four orders of magnitude. Every run also asserts
// soundness on the measured instances: the honest claim is accepted and
// a claim shifted by the generator is rejected.
//
//	outsourcebench -sizes 4096,16384,65536 -out BENCH_pr10.json
//	outsourcebench -smoke   # CI variant: one small size, no file
//
// Exit is non-zero on any acceptance/rejection failure, a check that is
// not flat (max/min check time above a generous ratio), or a recompute
// that does not grow with n.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"distmsm/internal/curve"
	"distmsm/internal/outsource"
)

type sizeResult struct {
	N                int     `json:"n"`
	DeriveSeconds    float64 `json:"derive_seconds"`
	CheckSeconds     float64 `json:"check_seconds"`
	RecomputeSeconds float64 `json:"recompute_seconds"`
	// Speedup is recompute/check — how much cheaper accepting a claim
	// is than re-earning it.
	Speedup float64 `json:"speedup"`
}

type report struct {
	Tool      string       `json:"tool"`
	Go        string       `json:"go"`
	Curve     string       `json:"curve"`
	Lambda    int          `json:"lambda"`
	MaskTerms int          `json:"mask_terms"`
	Reps      int          `json:"reps"`
	Sizes     []sizeResult `json:"sizes"`
	// CheckFlatRatio is max/min check time across sizes — ~1 when the
	// check is truly constant-size.
	CheckFlatRatio float64 `json:"check_flat_ratio"`
	// RecomputeGrowthRatio is recompute(max n)/recompute(min n).
	RecomputeGrowthRatio float64 `json:"recompute_growth_ratio"`
	// CrossoverPoints estimates the instance size past which the check
	// is cheaper than recomputing: check_seconds / recompute-per-point.
	CrossoverPoints int `json:"crossover_points"`
}

func main() {
	var (
		sizesFlag = flag.String("sizes", "4096,16384,65536", "comma-separated instance sizes")
		curveName = flag.String("curve", "BN254", "curve name")
		reps      = flag.Int("reps", 3, "timing repetitions (minimum taken)")
		out       = flag.String("out", "", "write the JSON report to this file")
		smoke     = flag.Bool("smoke", false, "CI smoke: one small size, no file, gate check < recompute")
	)
	flag.Parse()

	if *smoke {
		*sizesFlag = "1024"
		*out = ""
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}
	crv, err := curve.ByName(*curveName)
	if err != nil {
		fatalf("%v", err)
	}

	params := outsource.Params{}
	rep := report{
		Tool:      "outsourcebench",
		Go:        runtime.Version(),
		Curve:     *curveName,
		Lambda:    outsource.DefaultLambda,
		MaskTerms: outsource.DefaultMaskTerms,
		Reps:      *reps,
	}

	for i, n := range sizes {
		r := benchSize(crv, n, params, *reps, uint64(i+1))
		rep.Sizes = append(rep.Sizes, r)
		fmt.Printf("n=%-7d derive=%.6fs check=%.6fs recompute=%.4fs speedup=%.0fx\n",
			r.N, r.DeriveSeconds, r.CheckSeconds, r.RecomputeSeconds, r.Speedup)
	}

	minChk, maxChk := rep.Sizes[0].CheckSeconds, rep.Sizes[0].CheckSeconds
	for _, r := range rep.Sizes {
		if r.CheckSeconds < minChk {
			minChk = r.CheckSeconds
		}
		if r.CheckSeconds > maxChk {
			maxChk = r.CheckSeconds
		}
	}
	rep.CheckFlatRatio = maxChk / minChk
	first, last := rep.Sizes[0], rep.Sizes[len(rep.Sizes)-1]
	rep.RecomputeGrowthRatio = last.RecomputeSeconds / first.RecomputeSeconds
	rep.CrossoverPoints = int(maxChk / (last.RecomputeSeconds / float64(last.N)))
	fmt.Printf("check flat ratio %.2f, recompute growth %.1fx over %dx size, crossover ≈ %d points\n",
		rep.CheckFlatRatio, rep.RecomputeGrowthRatio, last.N/first.N, rep.CrossoverPoints)

	switch {
	case *smoke:
		if last.CheckSeconds >= last.RecomputeSeconds {
			fatalf("smoke gate: check (%.6fs) not cheaper than recompute (%.6fs) at n=%d",
				last.CheckSeconds, last.RecomputeSeconds, last.N)
		}
	case len(sizes) > 1:
		// Flatness gate: the check's absolute cost is microseconds, so
		// scheduling noise is relatively large — 5x headroom still cleanly
		// separates "constant" from the 16x of a linear check.
		if rep.CheckFlatRatio > 5 {
			fatalf("check time is not flat across sizes: max/min = %.2f", rep.CheckFlatRatio)
		}
		sizeRatio := float64(last.N) / float64(first.N)
		if rep.RecomputeGrowthRatio < sizeRatio/4 {
			fatalf("recompute did not grow with n: %.1fx over a %.0fx size range",
				rep.RecomputeGrowthRatio, sizeRatio)
		}
	}

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// benchSize measures one instance size, asserting soundness on the way:
// the honest claim pair must verify and a perturbed claim must not.
func benchSize(crv *curve.Curve, n int, params outsource.Params, reps int, seed uint64) sizeResult {
	points := crv.SamplePoints(n, seed)
	scalars := crv.SampleScalars(n, int64(seed))
	res := sizeResult{N: n}
	for rep := 0; rep < reps; rep++ {
		rnd := outsource.NewSeededReader(seed*1000 + uint64(rep))

		t0 := time.Now()
		ck, err := outsource.NewCheck(crv, points, scalars, params, rnd)
		if err != nil {
			fatalf("NewCheck(n=%d): %v", n, err)
		}
		derive := time.Since(t0).Seconds()

		// The worker's side: the real and challenge evaluations. The real
		// one doubles as the recompute timing — it is exactly the MSM a
		// recomputing verifier would re-run.
		t0 = time.Now()
		claimR := crv.MSMReference(points, scalars)
		recompute := time.Since(t0).Seconds()
		claimT := crv.MSMReference(points, ck.Challenge())

		t0 = time.Now()
		ok := ck.Verify(claimR, claimT)
		check := time.Since(t0).Seconds()
		if !ok {
			fatalf("honest claim rejected at n=%d rep=%d", n, rep)
		}
		affR := crv.ToAffine(claimR)
		lie := crv.NewXYZZ()
		crv.SetAffine(lie, &affR)
		crv.NewAdder().Acc(lie, &crv.Gen)
		if ck.Verify(lie, claimT) {
			fatalf("perturbed claim accepted at n=%d rep=%d", n, rep)
		}

		if rep == 0 || derive < res.DeriveSeconds {
			res.DeriveSeconds = derive
		}
		if rep == 0 || check < res.CheckSeconds {
			res.CheckSeconds = check
		}
		if rep == 0 || recompute < res.RecomputeSeconds {
			res.RecomputeSeconds = recompute
		}
	}
	res.Speedup = res.RecomputeSeconds / res.CheckSeconds
	return res
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "outsourcebench: "+format+"\n", args...)
	os.Exit(1)
}
