package core

import (
	"context"
	"reflect"
	"testing"

	"distmsm/internal/gpusim"
)

// checkUnitCoverage asserts the plan's assignments cover every
// (window, bucket) unit exactly once — the invariant that makes any
// health-filtered partition bit-identical to the default one.
func checkUnitCoverage(t *testing.T, p *Plan) {
	t.Helper()
	seen := make([]bool, p.Windows*p.Buckets)
	for _, a := range p.Assignments {
		if a.Window < 0 || a.Window >= p.Windows || a.BucketLo < 0 ||
			a.BucketHi > p.Buckets || a.BucketLo >= a.BucketHi {
			t.Fatalf("malformed assignment %+v", a)
		}
		for b := a.BucketLo; b < a.BucketHi; b++ {
			u := a.Window*p.Buckets + b
			if seen[u] {
				t.Fatalf("unit window=%d bucket=%d assigned twice", a.Window, b)
			}
			seen[u] = true
		}
	}
	for u, ok := range seen {
		if !ok {
			t.Fatalf("unit window=%d bucket=%d unassigned", u/p.Buckets, u%p.Buckets)
		}
	}
}

// TestPlanExcludesQuarantinedGPU: a tripped breaker removes the device
// from the plan entirely while the survivors still cover every unit.
func TestPlanExcludesQuarantinedGPU(t *testing.T) {
	c := mustCurve(t, "BN254")
	reg := gpusim.NewHealthRegistry(gpusim.HealthConfig{})
	reg.RecordRun(2, 0, 3) // trip GPU 2's breaker
	cl := cluster(t, 4).WithHealth(reg)
	p, err := BuildPlan(c, cl, 64, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Assignments {
		if a.GPU == 2 {
			t.Fatalf("quarantined GPU 2 received assignment %+v", a)
		}
	}
	if got := p.GPUsOf(); got != 3 {
		t.Fatalf("plan uses %d GPUs, want 3", got)
	}
	checkUnitCoverage(t, p)
}

// TestPlanProbeShard: after the cooldown a half-open GPU is limited to
// one probe shard of at most ProbeBuckets units; the rest of the space
// levels across the healthy devices, with full coverage maintained.
func TestPlanProbeShard(t *testing.T) {
	c := mustCurve(t, "BN254")
	reg := gpusim.NewHealthRegistry(gpusim.HealthConfig{})
	reg.RecordRun(1, 0, 3)
	cl := cluster(t, 4).WithHealth(reg)
	var p *Plan
	for i := 0; i < reg.Config().CooldownRuns; i++ {
		var err error
		if p, err = BuildPlan(c, cl, 64, Options{WindowSize: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if s := reg.State(1); s != gpusim.BreakerHalfOpen {
		t.Fatalf("after cooldown plans: state %v, want half-open", s)
	}
	units := 0
	for _, a := range p.Assignments {
		if a.GPU == 1 {
			units += a.BucketHi - a.BucketLo
		}
	}
	if units == 0 {
		t.Fatal("half-open GPU 1 received no probe shard")
	}
	if units > reg.Config().ProbeBuckets {
		t.Fatalf("probe shard is %d units, want at most %d", units, reg.Config().ProbeBuckets)
	}
	checkUnitCoverage(t, p)
}

// TestQuarantinedRunBitIdentical is the cross-request acceptance
// criterion: runs on a cluster with a quarantined GPU produce points
// bit-identical to the fault-free serial reference, through quarantine,
// probe and recovery alike — and the probe run heals the breaker.
func TestQuarantinedRunBitIdentical(t *testing.T) {
	c := mustCurve(t, "BN254")
	base := cluster(t, 4)
	const n = 48
	points := c.SamplePoints(n, 41)
	scalars := c.SampleScalars(n, 42)
	ctx := context.Background()

	ref, err := RunContext(ctx, c, base, points, scalars, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	reg := gpusim.NewHealthRegistry(gpusim.HealthConfig{})
	reg.RecordRun(1, 0, 3) // quarantine GPU 1
	cl := base.WithHealth(reg)
	for run := 0; run < 6; run++ {
		res, err := RunContext(ctx, c, cl, points, scalars,
			Options{WindowSize: 8, Engine: EngineConcurrent})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !reflect.DeepEqual(ref.Point, res.Point) {
			t.Fatalf("run %d (GPU 1 %v): not bit-identical to serial reference",
				run, reg.State(1))
		}
	}
	// Cooldown elapsed during the runs, the probe ran fault-free, and
	// the breaker closed again.
	if s := reg.State(1); s != gpusim.BreakerClosed {
		t.Fatalf("after recovery runs: state %v, want closed", s)
	}
	snap := reg.Snapshot(4)
	if snap[0].Shards == 0 || snap[1].Shards == 0 {
		t.Fatalf("scheduler did not report committed shards: %+v", snap)
	}
}

// TestBreakerTripsFromDeviceLostRuns drives the whole loop end to end:
// deterministic device-lost injection kills every GPU, each run degrades
// to the serial host engine (still returning the correct point), the
// scheduler charges the losses to the registry, and after the threshold
// the entire cluster is quarantined — subsequent plans re-admit the
// devices through the all-open emergency probe path.
func TestBreakerTripsFromDeviceLostRuns(t *testing.T) {
	c := mustCurve(t, "BN254")
	const n = 40
	points := c.SamplePoints(n, 43)
	scalars := c.SampleScalars(n, 44)
	want := c.MSMReference(points, scalars)

	reg := gpusim.NewHealthRegistry(gpusim.HealthConfig{FaultThreshold: 2, CooldownRuns: 100})
	cl := cluster(t, 2).WithHealth(reg)
	cfg := gpusim.FaultConfig{Seed: 7, DeviceLost: 1}
	opts := Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg}
	for run := 0; run < 3; run++ {
		res, err := RunContext(context.Background(), c, cl, points, scalars, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !res.Stats.Faults.DegradedToSerial {
			t.Fatalf("run %d: expected serial degradation", run)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Fatalf("run %d: wrong point", run)
		}
	}
	if q := reg.Quarantined(2); q != 2 {
		t.Fatalf("quarantined = %d, want 2 (snapshot %+v)", q, reg.Snapshot(2))
	}
	// Next plan: every device open, cooldown far away — the emergency
	// path must still produce a plan covering all units.
	p, err := BuildPlan(c, cl, 64, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkUnitCoverage(t, p)
	if got := p.GPUsOf(); got != 2 {
		t.Fatalf("emergency plan uses %d GPUs, want 2", got)
	}
}
