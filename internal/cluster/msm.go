package cluster

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/outsource"
	"distmsm/internal/serial"
)

// This file is the coordinator's outsourced-MSM path: one large MSM is
// split into contiguous index-range shards, each shard is dispatched to
// untrusted worker nodes, and each claim is accepted only after the
// constant-size check of internal/outsource — never by recomputing the
// shard.
//
// Per shard the coordinator derives a secret challenge instance
// (internal/outsource: y = α·x + sparse mask over the integers) and
// dispatches the real and challenge instances as two structurally
// identical messages, to two distinct nodes whenever two admit — a
// single node holding both instances could recover the secrets by ratio
// analysis, while oblivious faults (bit flips, truncated kernels, stale
// device buffers) are caught regardless of placement. The shard is
// accepted iff the two claims satisfy the check's constant-size
// relation.
//
// When the check rejects, the coordinator must decide which node lied
// before charging a breaker — charging both would let one bad node
// quarantine a healthy one. It adjudicates by recomputing the shard's
// reference locally: the node whose claim disagrees is charged exactly
// like a corrupt proof (breaker failure + corrupt counter) and the
// shard re-routes away from it. The recompute runs only on the
// rejection path; the accept path — the common case — stays constant
// size. A production deployment without local compute would arbitrate
// with a fresh challenge through a third node instead; the simulated
// coordinator holds the (deterministically derived) bases anyway, so
// local adjudication is available and decisive.

// ErrCorruptMSM reports an MSM shard claim that failed the outsourced
// check — the MSM analogue of ErrCorruptProof.
var ErrCorruptMSM = errors.New("cluster: MSM shard failed the outsourced check")

// MSMWorkerClient is the optional MSM extension of WorkerClient: a
// transport to a node that serves /v1/msm. The coordinator routes MSM
// shards only to nodes whose client implements it, so existing
// WorkerClient implementations (and test fakes) are unaffected.
type MSMWorkerClient interface {
	// DispatchMSM computes one MSM shard on the node and returns the
	// marshalled (uncompressed serial) result point. Context rules
	// mirror WorkerClient.Dispatch.
	DispatchMSM(ctx context.Context, req MSMDispatchRequest) ([]byte, error)
}

// msmCircuit keys breaker/affinity bookkeeping for MSM dispatches; MSM
// shards share the node's breaker with proof jobs — a node that lies
// about MSMs is not trusted with proofs either.
func msmCircuit(curveName string) string { return "msm/" + curveName }

// msmRand returns the coordinator's secret-randomness source for the
// outsourced checks.
func (c *Coordinator) msmRand() io.Reader {
	if c.cfg.MSMRandom != nil {
		return c.cfg.MSMRandom
	}
	return rand.Reader
}

// MSM runs one verifiable outsourced MSM through the cluster: shard,
// dispatch real + challenge instances, accept each shard after the
// constant-size check, and fold the shard sums in deterministic index
// order. Returns the uncompressed serial encoding of the result point —
// byte-identical to marshalling curve.MSMReference over the same
// instance, whatever faults the fleet throws.
func (c *Coordinator) MSM(ctx context.Context, req MSMRequest) ([]byte, error) {
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	if req.N < 1 || req.N > MaxMSMPoints {
		return nil, fmt.Errorf("%w: n %d outside [1, %d]", ErrBadMessage, req.N, MaxMSMPoints)
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrShuttingDown
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = c.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	jobID := c.lastJob.Add(1)

	// The instance is named by seeds, derived here exactly as the
	// workers derive their base ranges. The coordinator needs the bases
	// only for mask-point snapshots (s per shard) and for rejection-path
	// adjudication; the per-shard acceptance work stays constant size.
	points := crv.SamplePoints(req.N, req.PointSeed)
	scalars := crv.SampleScalars(req.N, req.ScalarSeed)

	shards := msmShardRanges(req.N, c.msmNodeCount())
	results := make([]*curve.PointXYZZ, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			results[i], errs[i] = c.msmShard(ctx, jobID, crv, req, points, scalars, lo, hi)
		}(i, sh[0], sh[1])
	}
	wg.Wait()
	total := crv.NewXYZZ()
	a := crv.NewAdder()
	for i := range shards {
		if errs[i] != nil {
			c.noteFailed()
			return nil, errs[i]
		}
		a.Add(total, results[i])
	}
	c.mu.Lock()
	c.stats.JobsCompleted++
	c.mu.Unlock()
	aff := crv.ToAffine(total)
	return serial.MarshalPoint(crv, &aff, false), nil
}

// msmNodeCount counts nodes that could take an MSM shard right now —
// only a sizing hint for sharding; admission happens per dispatch.
func (c *Coordinator) msmNodeCount() int {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	count := 0
	for _, id := range c.order {
		n := c.nodes[id]
		if _, ok := n.client.(MSMWorkerClient); ok && n.dispatchable(now, c.cfg.Breaker) {
			count++
		}
	}
	return count
}

// msmShardRanges splits [0, n) into contiguous ranges: one per
// MSM-capable node (so the fleet works in parallel), but never fewer
// than the wire's shard cap forces and never more than n.
func msmShardRanges(n, nodes int) [][2]int {
	shards := nodes
	if shards < 1 {
		shards = 1
	}
	if min := (n + MaxMSMShard - 1) / MaxMSMShard; shards < min {
		shards = min
	}
	if shards > n {
		shards = n
	}
	out := make([][2]int, 0, shards)
	size := (n + shards - 1) / shards
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// msmShard runs one shard to acceptance: derive fresh secrets, dispatch
// both instances, run the constant-size check, adjudicate and re-route
// on rejection, and degrade to local evaluation when no node admits.
func (c *Coordinator) msmShard(ctx context.Context, jobID uint64, crv *curve.Curve, req MSMRequest, points []curve.PointAffine, scalars []bigint.Nat, lo, hi int) (*curve.PointXYZZ, error) {
	exclude := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// Fresh secrets every attempt: a rejected attempt leaked nothing,
		// but reusing α across re-dispatches would hand a second sample to
		// whichever node sees the retry.
		ck, err := outsource.NewCheck(crv, points[lo:hi], scalars[lo:hi], outsource.Params{}, c.msmRand())
		if err != nil {
			return nil, err
		}
		bits := ck.ChallengeBits()
		frame := MSMDispatchRequest{
			JobID:      jobID,
			Curve:      req.Curve,
			PointSeed:  req.PointSeed,
			RangeLo:    lo,
			RangeHi:    hi,
			ScalarBits: bits,
		}
		realReq, chalReq := frame, frame
		realReq.Scalars = EncodeMSMScalars(scalars[lo:hi], bits)
		chalReq.Scalars = EncodeMSMScalars(ck.Challenge(), bits)

		nReal, probeReal := c.pickMSMNode(exclude)
		if nReal == nil {
			return c.msmLocal(crv, points, scalars, lo, hi)
		}
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Redispatches++
			c.mu.Unlock()
			c.metrics.observeRedispatch()
		}
		// Distinct challenge node whenever a second one admits (the
		// adaptive-adversary caveat); otherwise the same node takes both —
		// oblivious faults are caught regardless of placement.
		pairExclude := map[string]bool{nReal.id: true}
		for id := range exclude {
			pairExclude[id] = true
		}
		nChal, probeChal := c.pickMSMNode(pairExclude)
		if nChal == nil {
			nChal, probeChal = nReal, false
		}

		circ := msmCircuit(req.Curve)
		var r, t *curve.PointXYZZ
		var secR, secT float64
		var errR, errT error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); r, secR, errR = c.dispatchMSM(ctx, nReal, probeReal, realReq, crv) }()
		go func() { defer wg.Done(); t, secT, errT = c.dispatchMSM(ctx, nChal, probeChal, chalReq, crv) }()
		wg.Wait()
		if errR != nil || errT != nil {
			// Settle the half that answered, if any: without its counterpart
			// the claim is unusable and the attempt re-runs, but the node did
			// deliver a well-formed answer.
			if errR == nil {
				c.recordDispatch(nReal, true, secR, circ)
			}
			if errT == nil {
				c.recordDispatch(nChal, true, secT, circ)
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if errR != nil {
				lastErr = errR
				exclude[nReal.id] = true
			}
			if errT != nil {
				lastErr = errT
				exclude[nChal.id] = true
			}
			continue
		}

		// The accept decision: constant group work, independent of hi-lo.
		// A delivered claim settles its node's breaker only here, by the
		// check's verdict — settling "success" at decode time would let a
		// consistent liar alternate success and failure on its breaker and
		// never trip it.
		start := time.Now()
		ok := ck.Verify(r, t)
		c.mu.Lock()
		c.stats.MSMChecks++
		if !ok {
			c.stats.MSMRejects++
		}
		c.mu.Unlock()
		c.metrics.observeOutsourceCheck(ok, time.Since(start).Seconds())
		if ok {
			c.recordDispatch(nReal, true, secR, circ)
			c.recordDispatch(nChal, true, secT, circ)
			return r, nil
		}

		// Rejection: adjudicate locally, charge the liar like a corrupt
		// proof, and either keep the vindicated real claim or re-route.
		ref := crv.MSMReference(points[lo:hi], scalars[lo:hi])
		liar, vind, vindSec := nReal, nChal, secT
		if crv.EqualXYZZ(r, ref) {
			liar, vind, vindSec = nChal, nReal, secR
		}
		if vind != liar {
			c.recordDispatch(vind, true, vindSec, circ)
		}
		c.recordDispatch(liar, false, 0, circ)
		c.mu.Lock()
		c.stats.CorruptProofs++
		c.mu.Unlock()
		c.metrics.observeCorrupt()
		lastErr = fmt.Errorf("%w (node %s)", ErrCorruptMSM, liar.id)
		exclude[liar.id] = true
		if liar != nReal {
			// The challenge node lied; the real claim matched the reference
			// and is safe to keep.
			return r, nil
		}
	}
	return nil, fmt.Errorf("cluster: MSM shard [%d, %d) failed after %d attempts: %w", lo, hi, c.cfg.MaxAttempts, lastErr)
}

// msmLocal evaluates a shard in-process — the degrade path when no
// MSM-capable node admits, mirroring proveLocal.
func (c *Coordinator) msmLocal(crv *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, lo, hi int) (*curve.PointXYZZ, error) {
	c.mu.Lock()
	c.stats.LocalFallbacks++
	c.mu.Unlock()
	c.metrics.observeLocalFallback()
	return crv.MSMReference(points[lo:hi], scalars[lo:hi]), nil
}

// pickMSMNode chooses the least-loaded dispatchable node whose client
// serves MSM shards, ties broken by registration order. Admission and
// probe semantics mirror pickNode.
func (c *Coordinator) pickMSMNode(exclude map[string]bool) (n *node, probe bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *node
	for _, id := range c.order {
		n := c.nodes[id]
		if exclude[id] || !n.dispatchable(now, c.cfg.Breaker) {
			continue
		}
		if _, ok := n.client.(MSMWorkerClient); !ok {
			continue
		}
		if best == nil || len(n.inflight) < len(best.inflight) {
			best = n
		}
	}
	if best == nil {
		return nil, false
	}
	admitted, probe := best.br.admit(now, c.cfg.Breaker)
	if !admitted {
		return nil, false
	}
	return best, probe
}

// dispatchMSM runs one shard dispatch on one node and decodes the
// claimed point. Transport failures and non-point answers are charged
// to the node's breaker; the coordinator's own cancellation is not (the
// probe slot still comes back). A well-formed claim is NOT settled here
// — the caller settles it by the check's verdict, so a lying node's
// breaker sees an unbroken failure streak. The fail-fast rule of
// dispatchHedged applies: an already-expired deadline never reaches the
// wire, where TimeoutMS = 0 would mean "worker default".
func (c *Coordinator) dispatchMSM(ctx context.Context, n *node, probe bool, req MSMDispatchRequest, crv *curve.Curve) (*curve.PointXYZZ, float64, error) {
	mc, ok := n.client.(MSMWorkerClient)
	if !ok {
		if probe {
			c.releaseProbe(n)
		}
		return nil, 0, fmt.Errorf("cluster: node %s does not serve MSM shards", n.id)
	}
	var actx context.Context
	var acancel context.CancelFunc
	if c.cfg.DispatchTimeout > 0 {
		actx, acancel = context.WithTimeout(ctx, c.cfg.DispatchTimeout)
	} else {
		actx, acancel = context.WithCancel(ctx)
	}
	defer acancel()
	_, release := c.trackInflight(n, acancel)
	defer release()
	if deadline, ok := actx.Deadline(); ok {
		d := time.Until(deadline)
		if d <= 0 {
			if probe {
				c.releaseProbe(n)
			}
			return nil, 0, context.DeadlineExceeded
		}
		req.TimeoutMS = d.Milliseconds()
	}
	start := time.Now()
	raw, err := mc.DispatchMSM(actx, req)
	sec := time.Since(start).Seconds()
	if err != nil {
		if ctx.Err() != nil {
			// Our own deadline or cancellation — not the node's fault.
			if probe {
				c.releaseProbe(n)
			}
			return nil, sec, err
		}
		c.recordDispatch(n, false, sec, msmCircuit(req.Curve))
		return nil, sec, err
	}
	aff, err := serial.UnmarshalPoint(crv, raw)
	if err != nil {
		// Junk that is not even a curve point: charged like any corrupt
		// response, no outsourced check needed to see it.
		c.recordDispatch(n, false, sec, msmCircuit(req.Curve))
		c.mu.Lock()
		c.stats.CorruptProofs++
		c.mu.Unlock()
		c.metrics.observeCorrupt()
		return nil, sec, fmt.Errorf("%w: node %s returned a non-point: %v", ErrCorruptMSM, n.id, err)
	}
	p := crv.NewXYZZ()
	crv.SetAffine(p, &aff)
	return p, sec, nil
}
