package gpusim

import (
	"errors"
	"math"
	"testing"
)

// TestFaultInjectorDeterminism: decisions are a pure function of
// (seed, gpu, window, bucketLo, attempt) — the same tuple always rolls
// the same fault, different seeds roll (mostly) different sequences, and
// different attempts on the same shard re-roll independently.
func TestFaultInjectorDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, DeviceLost: 0.1, Transient: 0.2, Straggler: 0.2, Corrupt: 0.1}
	a, err := NewFaultInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFaultInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewFaultInjector(FaultConfig{Seed: 43, DeviceLost: 0.1, Transient: 0.2, Straggler: 0.2, Corrupt: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for gpu := 0; gpu < 4; gpu++ {
		for win := 0; win < 8; win++ {
			for att := 0; att < 3; att++ {
				x := a.Decide(gpu, win, 100*gpu, att)
				if y := b.Decide(gpu, win, 100*gpu, att); x != y {
					t.Fatalf("same seed, same tuple, different faults: %v vs %v", x, y)
				}
				if x != other.Decide(gpu, win, 100*gpu, att) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Error("seed 42 and 43 made identical decisions at every point")
	}
	// Straggler decisions carry the configured factor.
	fi, err := NewFaultInjector(FaultConfig{Straggler: 1, StragglerFactor: 5})
	if err != nil {
		t.Fatal(err)
	}
	if f := fi.Decide(0, 0, 0, 0); f.Class != FaultStraggler || f.Factor != 5 {
		t.Fatalf("Straggler=1: want {straggler 5}, got %v", f)
	}
	if fi.Config().StragglerFactor != 5 {
		t.Error("Config() lost the straggler factor")
	}
}

// TestFaultInjectorFrequencies: over many decision points each class
// fires at roughly its configured probability.
func TestFaultInjectorFrequencies(t *testing.T) {
	cfg := FaultConfig{Seed: 7, DeviceLost: 0.05, Transient: 0.25, Straggler: 0.15, Corrupt: 0.1}
	fi, err := NewFaultInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40000
	counts := map[FaultClass]int{}
	for i := 0; i < trials; i++ {
		counts[fi.Decide(i%16, i/16, i%1000, i%5).Class]++
	}
	for _, c := range []struct {
		class FaultClass
		p     float64
	}{
		{FaultDeviceLost, cfg.DeviceLost},
		{FaultTransient, cfg.Transient},
		{FaultStraggler, cfg.Straggler},
		{FaultCorrupt, cfg.Corrupt},
		{FaultNone, 1 - cfg.DeviceLost - cfg.Transient - cfg.Straggler - cfg.Corrupt},
	} {
		got := float64(counts[c.class]) / trials
		if math.Abs(got-c.p) > 0.02 {
			t.Errorf("%v: frequency %.3f, want ~%.3f", c.class, got, c.p)
		}
	}
}

// TestFaultConfigValidation: bad configs are rejected with the typed
// sentinel.
func TestFaultConfigValidation(t *testing.T) {
	bad := []FaultConfig{
		{Transient: -0.1},
		{Corrupt: 1.5},
		{DeviceLost: 0.5, Transient: 0.3, Straggler: 0.2, Corrupt: 0.1}, // sum 1.1
		{Straggler: 0.1, StragglerFactor: -2},
	}
	for _, cfg := range bad {
		if _, err := NewFaultInjector(cfg); !errors.Is(err, ErrBadFaultConfig) {
			t.Errorf("%+v: want ErrBadFaultConfig, got %v", cfg, err)
		}
	}
	// The zero config is valid and injects nothing; the default factor
	// fills in.
	fi, err := NewFaultInjector(FaultConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if f := fi.Decide(i, i, i, 0); f.Class != FaultNone {
			t.Fatalf("zero config injected %v", f)
		}
	}
	if fi.Config().StragglerFactor != DefaultStragglerFactor {
		t.Errorf("zero StragglerFactor must default to %v", DefaultStragglerFactor)
	}
}

// TestShardFaultNilSafe: a cluster without an injector reports FaultNone,
// and WithFaults does not mutate its receiver.
func TestShardFaultNilSafe(t *testing.T) {
	cl, err := NewCluster(A100(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if f := cl.ShardFault(0, 0, 0, 0); f.Class != FaultNone {
		t.Fatalf("injector-free cluster injected %v", f)
	}
	fi, err := NewFaultInjector(FaultConfig{Transient: 1})
	if err != nil {
		t.Fatal(err)
	}
	faulty := cl.WithFaults(fi)
	if f := faulty.ShardFault(0, 0, 0, 0); f.Class != FaultTransient {
		t.Fatalf("want transient, got %v", f)
	}
	if cl.Faults != nil {
		t.Error("WithFaults mutated the receiver")
	}
}

// TestNewClusterValidation: n < 1 and non-physical device specs are
// rejected with their sentinels.
func TestNewClusterValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewCluster(A100(), n); !errors.Is(err, ErrNoGPUs) {
			t.Errorf("n=%d: want ErrNoGPUs, got %v", n, err)
		}
	}
	cases := map[string]func(*Device){
		"zero device": func(d *Device) { *d = Device{} },
		"empty name":  func(d *Device) { d.Name = "" },
		"zero SMs":    func(d *Device) { d.SMs = 0 },
		"negative bandwidth": func(d *Device) {
			d.MemBandwidthGBs = -1
		},
		"zero efficiency":  func(d *Device) { d.Efficiency = 0 },
		"negative tensor":  func(d *Device) { d.TensorInt8TOPS = -1 },
		"zero shared mem":  func(d *Device) { d.SharedMemPerSM = 0 },
		"zero reg file":    func(d *Device) { d.RegFilePerSM = 0 },
		"zero int32 TOPS":  func(d *Device) { d.Int32TOPS = 0 },
		"zero max threads": func(d *Device) { d.MaxThreadsPerSM = 0 },
	}
	for name, mutate := range cases {
		dev := A100()
		mutate(&dev)
		if _, err := NewCluster(dev, 4); !errors.Is(err, ErrBadDevice) {
			t.Errorf("%s: want ErrBadDevice, got %v", name, err)
		}
	}
	// The stock profiles all pass validation.
	for _, dev := range []Device{A100(), RTX4090(), AMD6900XT()} {
		if _, err := NewCluster(dev, 1); err != nil {
			t.Errorf("%s: stock profile rejected: %v", dev.Name, err)
		}
	}
}

// TestHashUnitRange: the unit hash stays in [0, 1) and is well spread.
func TestHashUnitRange(t *testing.T) {
	var sum float64
	const trials = 10000
	for i := 0; i < trials; i++ {
		u := HashUnit(uint64(i), 99)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit out of [0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("HashUnit mean %.3f, want ~0.5", mean)
	}
}
