package service

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestSubmitBatchCoalescesAndHitsCache: a batch of same-circuit jobs is
// admitted atomically, every job proves from the circuit's cached
// fixed-base tables, and the single worker pulls the batch back to back
// (affinity pops counted in BatchesCoalesced).
func TestSubmitBatchCoalescesAndHitsCache(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 16
	})
	const n = 6
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Circuit: "synthetic", Seed: int64(i + 1)}
	}
	jobs, err := svc.SubmitBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != n {
		t.Fatalf("got %d jobs, want %d", len(jobs), n)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", job.ID, err)
		}
	}
	st := svc.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d, want %d", st.Completed, n)
	}
	if st.BaseCacheHits != n || st.BaseCacheMisses != 0 {
		t.Fatalf("cache hits=%d misses=%d, want %d/0", st.BaseCacheHits, st.BaseCacheMisses, n)
	}
	if st.BaseCacheBytes <= 0 {
		t.Fatalf("BaseCacheBytes = %d, want > 0", st.BaseCacheBytes)
	}
	if st.BatchesCoalesced == 0 {
		t.Fatal("no affinity pops recorded for a same-circuit batch")
	}
	shutdownClean(t, svc)
	check()
}

// TestSubmitBatchAllOrNothing: a batch that does not fit the admission
// capacity is rejected whole — no partial enqueue to unwind.
func TestSubmitBatchAllOrNothing(t *testing.T) {
	block := make(chan struct{})
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 2
		c.OnJobStart = func(*Job) { <-block }
	})
	t.Cleanup(func() { shutdownClean(t, svc) })
	t.Cleanup(func() { close(block) })

	reqs := make([]Request, 4) // capacity is 1+2 = 3
	for i := range reqs {
		reqs[i] = Request{Circuit: "synthetic", Seed: int64(i)}
	}
	_, err := svc.SubmitBatch(reqs)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	st := svc.Stats()
	if st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("rejected batch left jobs behind: %+v", st)
	}
	if st.Rejected != 4 {
		t.Fatalf("Rejected = %d, want 4 (whole batch)", st.Rejected)
	}
	if _, err := svc.SubmitBatch(nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: want ErrBadRequest, got %v", err)
	}
	// An unknown circuit anywhere in the batch rejects the whole batch.
	_, err = svc.SubmitBatch([]Request{
		{Circuit: "synthetic", Seed: 1}, {Circuit: "nope", Seed: 2},
	})
	if !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("want ErrUnknownCircuit, got %v", err)
	}
}

// TestBaseCacheEvictionUnderPressure: when job admission hits the
// memory budget, cold cached tables are dropped to make room, the
// eviction is counted, and subsequent jobs fall back to the raw key
// columns (misses) while still proving correctly.
func TestBaseCacheEvictionUnderPressure(t *testing.T) {
	svc := newTestService(t, 1, 32, nil)
	defer shutdownClean(t, svc)
	svc.mu.Lock()
	c := svc.circuits["synthetic"]
	if c.bases == nil {
		svc.mu.Unlock()
		t.Fatal("circuit registered without cached bases")
	}
	// Leave room for exactly one job after the tables are evicted.
	svc.cfg.MemoryBudget = c.memEst
	svc.mu.Unlock()

	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 3})
	if err != nil {
		t.Fatalf("submit after eviction opportunity: %v", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.BaseCacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.BaseCacheEvictions)
	}
	if st.BaseCacheMisses != 1 || st.BaseCacheHits != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/1 after eviction", st.BaseCacheHits, st.BaseCacheMisses)
	}
	if st.BaseCacheBytes != 0 {
		t.Fatalf("BaseCacheBytes = %d after eviction, want 0", st.BaseCacheBytes)
	}
}

// TestBatchProofBytesMatchCPUReference: proofs produced through the
// cached fixed-base/GLV multi-GPU path marshal byte-identically to the
// plain CPU-Pippenger prover over the same witness and randomness.
func TestBatchProofBytesMatchCPUReference(t *testing.T) {
	svc := newTestService(t, 2, 64, nil)
	defer shutdownClean(t, svc)
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		proof, err := job.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		svc.mu.Lock()
		c := svc.circuits["synthetic"]
		svc.mu.Unlock()
		w, err := c.witness(seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := svc.eng.ProveContext(ctx, c.cs, c.pk, w, rand.New(rand.NewSource(seed)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(svc.eng.MarshalProof(proof), svc.eng.MarshalProof(ref)) {
			t.Fatalf("seed %d: cached-path proof bytes differ from CPU reference", seed)
		}
	}
}

// TestCacheWarmProveDoesNotRebuildTables pins the cache-warm prove path
// by allocation count: proving against warm tables must allocate less
// than one rebuild of those tables — the regression this catches is a
// prove path that quietly re-precomputes per job.
func TestCacheWarmProveDoesNotRebuildTables(t *testing.T) {
	svc := newTestService(t, 1, 48, nil)
	defer shutdownClean(t, svc)
	svc.mu.Lock()
	c := svc.circuits["synthetic"]
	bases := c.bases
	svc.mu.Unlock()
	if bases == nil {
		t.Fatal("no cached bases")
	}
	ctx := context.Background()
	warm := testing.AllocsPerRun(3, func() {
		if _, err := svc.prove(ctx, c, bases, 7); err != nil {
			t.Fatal(err)
		}
	})
	cold := testing.AllocsPerRun(1, func() {
		b, err := svc.buildBases(ctx, c.pk)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.prove(ctx, c, b, 7); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold {
		t.Fatalf("cache-warm prove allocates %.0f ≥ build+prove %.0f — is the prove path rebuilding tables?",
			warm, cold)
	}
}
