package cluster

import (
	"distmsm/internal/telemetry"
)

// coordMetrics holds the coordinator's pre-registered metric handles,
// following the nil-safe pattern of internal/service: a Config without
// a Metrics registry costs one nil check per event. The node-state and
// heartbeat-age gauges are GaugeFuncs reading the coordinator under its
// own mutex at scrape time; the coordinator never calls into the
// registry while holding that mutex, so the lock order is one-way.
type coordMetrics struct {
	reg *telemetry.Registry

	registrations  *telemetry.Counter
	heartbeats     *telemetry.Counter
	lostNodes      *telemetry.Counter
	lostRecovered  *telemetry.Counter
	redispatches   *telemetry.Counter
	hedges         *telemetry.Counter
	hedgeWins      *telemetry.Counter
	localFallbacks *telemetry.Counter
	corruptProofs  *telemetry.Counter
	breakerTrips   *telemetry.Counter
	dispatchOK     *telemetry.Counter
	dispatchErr    *telemetry.Counter
	dispatchSec    *telemetry.Histogram

	outsourceChecks   *telemetry.Counter
	outsourceRejects  *telemetry.Counter
	outsourceCheckSec *telemetry.Histogram
}

// newCoordMetrics registers the coordinator's metric families on
// cfg.Metrics (nil disables metrics).
func newCoordMetrics(cfg Config, c *Coordinator) *coordMetrics {
	reg := cfg.Metrics
	if reg == nil {
		return nil
	}
	m := &coordMetrics{reg: reg}

	m.registrations = reg.Counter("distmsm_cluster_registrations_total",
		"Worker-node registrations accepted (including re-registrations).", "")
	m.heartbeats = reg.Counter("distmsm_cluster_heartbeats_total",
		"Heartbeats accepted (lease renewals).", "")
	m.lostNodes = reg.Counter("distmsm_cluster_lost_nodes_total",
		"Nodes marked lost after a missed heartbeat lease.", "")
	m.lostRecovered = reg.Counter("distmsm_cluster_lost_job_recoveries_total",
		"In-flight dispatches cancelled by a lost lease and re-dispatched to survivors.", "")
	m.redispatches = reg.Counter("distmsm_cluster_redispatches_total",
		"Job attempts re-routed to another node after a dispatch failure.", "")
	m.hedges = reg.Counter("distmsm_cluster_hedges_total",
		"Speculative duplicate dispatches launched for straggling jobs.", "")
	m.hedgeWins = reg.Counter("distmsm_cluster_hedge_wins_total",
		"Speculative dispatches that finished before the primary.", "")
	m.localFallbacks = reg.Counter("distmsm_cluster_local_fallbacks_total",
		"Jobs degraded to local in-process proving (no dispatchable node).", "")
	m.corruptProofs = reg.Counter("distmsm_cluster_corrupt_responses_total",
		"Remote proofs rejected by the coordinator's verification.", "")
	m.breakerTrips = reg.Counter("distmsm_cluster_breaker_trips_total",
		"Node circuit breakers tripped open.", "")
	dispatch := func(outcome string) *telemetry.Counter {
		return reg.Counter("distmsm_cluster_dispatches_total",
			"Dispatch outcomes by result.", `outcome="`+outcome+`"`)
	}
	m.dispatchOK = dispatch("ok")
	m.dispatchErr = dispatch("error")
	m.dispatchSec = reg.Histogram("distmsm_cluster_dispatch_seconds",
		"Remote dispatch latency (launch to result).", "", nil)
	m.outsourceChecks = reg.Counter("distmsm_outsource_checks_total",
		"Constant-size outsourced-MSM verification checks run.", "")
	m.outsourceRejects = reg.Counter("distmsm_outsource_rejects_total",
		"Outsourced-MSM checks that rejected a worker claim.", "")
	m.outsourceCheckSec = reg.Histogram("distmsm_outsource_check_seconds",
		"Outsourced-MSM acceptance-check latency — constant in the shard size by construction.", "", nil)

	state := func(s string, fn func() float64) {
		reg.GaugeFunc("distmsm_cluster_nodes",
			"Registered nodes by table state.", `state="`+s+`"`, fn)
	}
	state("alive", func() float64 { a, _, _, _ := c.nodeStates(); return float64(a) })
	state("lost", func() float64 { _, l, _, _ := c.nodeStates(); return float64(l) })
	state("draining", func() float64 { _, _, d, _ := c.nodeStates(); return float64(d) })
	reg.GaugeFunc("distmsm_cluster_nodes_quarantined",
		"Nodes whose circuit breaker is currently open.", "",
		func() float64 { _, _, _, o := c.nodeStates(); return float64(o) })
	reg.GaugeFunc("distmsm_cluster_heartbeat_age_seconds",
		"Age of the stalest live lease — the early warning for the next lease expiry.", "",
		c.oldestHeartbeatAge)
	return m
}

func (m *coordMetrics) observeRegistration() {
	if m != nil {
		m.registrations.Inc()
	}
}

func (m *coordMetrics) observeHeartbeat() {
	if m != nil {
		m.heartbeats.Inc()
	}
}

func (m *coordMetrics) observeLostNodes(nodes, recovered int) {
	if m != nil {
		m.lostNodes.Add(uint64(nodes))
		m.lostRecovered.Add(uint64(recovered))
	}
}

func (m *coordMetrics) observeRedispatch() {
	if m != nil {
		m.redispatches.Inc()
	}
}

func (m *coordMetrics) observeHedge() {
	if m != nil {
		m.hedges.Inc()
	}
}

func (m *coordMetrics) observeHedgeWin() {
	if m != nil {
		m.hedgeWins.Inc()
	}
}

func (m *coordMetrics) observeLocalFallback() {
	if m != nil {
		m.localFallbacks.Inc()
	}
}

func (m *coordMetrics) observeCorrupt() {
	if m != nil {
		m.corruptProofs.Inc()
	}
}

func (m *coordMetrics) observeOutsourceCheck(ok bool, sec float64) {
	if m == nil {
		return
	}
	m.outsourceChecks.Inc()
	m.outsourceCheckSec.Observe(sec)
	if !ok {
		m.outsourceRejects.Inc()
	}
}

func (m *coordMetrics) observeDispatch(ok bool, sec float64, tripped bool) {
	if m == nil {
		return
	}
	if ok {
		m.dispatchOK.Inc()
		m.dispatchSec.Observe(sec)
	} else {
		m.dispatchErr.Inc()
	}
	if tripped {
		m.breakerTrips.Inc()
	}
}
