package tensorcore

import (
	"math/big"
	"math/rand"
	"testing"

	"distmsm/internal/bigint"
)

func randLimbs(rnd *rand.Rand, w int) []uint64 {
	out := make([]uint64, w)
	for i := range out {
		out[i] = rnd.Uint64()
	}
	return out
}

func limbsToBig(l []uint64) *big.Int { return bigint.Nat(l).ToBig() }

func TestDigits8RoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	limbs := randLimbs(rnd, 6)
	d := Digits8(limbs)
	if len(d) != 48 {
		t.Fatalf("digit count %d", len(d))
	}
	v := new(big.Int)
	for i := len(d) - 1; i >= 0; i-- {
		v.Lsh(v, 8)
		v.Add(v, big.NewInt(int64(d[i])))
	}
	if v.Cmp(limbsToBig(limbs)) != 0 {
		t.Fatal("Digits8 does not reconstruct value")
	}
}

func TestMulBatchMatchesBig(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for _, w := range []int{4, 6, 12} { // BN254-, BLS-, MNT-class widths
		constLimbs := randLimbs(rnd, w)
		e := NewEngine(constLimbs, w)
		var as [Batch][]uint8
		aBig := make([]*big.Int, Batch)
		for i := 0; i < Batch; i++ {
			a := randLimbs(rnd, w)
			as[i] = Digits8(a)
			aBig[i] = limbsToBig(a)
		}
		out := e.MulBatch(&as)
		cBig := limbsToBig(constLimbs)
		for i := 0; i < Batch; i++ {
			got := limbsToBig(ExpandedToValue(out[i], 2*w))
			want := new(big.Int).Mul(aBig[i], cBig)
			if got.Cmp(want) != 0 {
				t.Fatalf("w=%d product %d mismatch", w, i)
			}
		}
		if e.Counters.MMAOps == 0 {
			t.Fatal("no MMA ops counted")
		}
	}
}

// The paper's significant-bits claim: every expanded element carries at
// most ~23 significant bits (95 uint16 terms for 753-bit operands), and
// for 256-bit operands the compacted values fit in 45 bits.
func TestExpandedSignificantBits(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		w, maxBits int
	}{
		{4, 21},  // 32 terms × (2^8-1)^2 < 2^21
		{12, 23}, // 96 terms → < 2^23 (the paper's 23-bit bound)
	} {
		e := NewEngine(randLimbs(rnd, tc.w), tc.w)
		var as [Batch][]uint8
		for i := range as {
			// all-0xff operands maximise every convolution element
			d := make([]uint8, tc.w*8)
			for j := range d {
				d[j] = 0xff
			}
			as[i] = d
		}
		eAll := NewEngine(onesLimbs(tc.w), tc.w)
		out := eAll.MulBatch(&as)
		for _, c := range out[0] {
			if bits := bitLen32(c); bits > tc.maxBits {
				t.Fatalf("w=%d: element has %d significant bits > %d", tc.w, bits, tc.maxBits)
			}
		}
		// compacted bound: 45 bits for 256-bit operands
		if tc.w == 4 {
			for _, d := range eAll.CompactOnTheFly(out[0]) {
				if bits := bitLen64(d); bits > 45 {
					t.Fatalf("compacted value has %d bits > 45", bits)
				}
			}
		}
		_ = e
	}
}

func onesLimbs(w int) []uint64 {
	out := make([]uint64, w)
	for i := range out {
		out[i] = ^uint64(0)
	}
	return out
}

func bitLen32(v uint32) int { return big.NewInt(int64(v)).BitLen() }
func bitLen64(v uint64) int { return new(big.Int).SetUint64(v).BitLen() }

func TestCompactionPathsAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	e := NewEngine(randLimbs(rnd, 6), 6)
	var as [Batch][]uint8
	for i := range as {
		as[i] = Digits8(randLimbs(rnd, 6))
	}
	out := e.MulBatch(&as)
	for i := 0; i < Batch; i++ {
		fly := e.CompactOnTheFly(out[i])
		mem := e.CompactViaMemory(out[i])
		if len(fly) != len(mem) {
			t.Fatal("length mismatch")
		}
		for j := range fly {
			if fly[j] != mem[j] {
				t.Fatal("compaction paths disagree")
			}
		}
		a := limbsToBig(CompactedToValue(fly, 12))
		b := limbsToBig(ExpandedToValue(out[i], 12))
		if a.Cmp(b) != 0 {
			t.Fatal("CompactedToValue != ExpandedToValue")
		}
	}
	// The memory path must account 4x-traffic writes; the register path none.
	if e.Counters.MemWrites == 0 || e.Counters.CompactOps == 0 {
		t.Fatalf("counters not recorded: %+v", e.Counters)
	}
}

// Under the natural fragment layout, compaction groups straddle threads;
// after the column shuffle every group is thread-local (the property that
// makes on-the-fly compaction possible without warp exchanges).
func TestFragmentLayoutShuffle(t *testing.T) {
	anySplit := false
	for g := 0; g < 16; g++ {
		if !GroupThreadLocal(NaiveOwner, g) {
			anySplit = true
		}
		if !GroupThreadLocal(ShuffledOwner, g) {
			t.Fatalf("group %d not thread-local after shuffle", g)
		}
	}
	if !anySplit {
		t.Fatal("naive layout unexpectedly thread-local (shuffle would be pointless)")
	}
	// The shuffle is a permutation within each 32-element block.
	seen := map[int]bool{}
	for v := 0; v < FragBlock; v++ {
		p := ShuffledColumn(v)
		if p < 0 || p >= FragBlock || seen[p] {
			t.Fatalf("ShuffledColumn not a block permutation: v=%d p=%d", v, p)
		}
		seen[p] = true
	}
	// Blocks beyond the first shift consistently.
	if ShuffledColumn(FragBlock+2) != FragBlock+ShuffledColumn(2) {
		t.Fatal("shuffle not block-periodic")
	}
}

var montModuli = []string{
	"21888242871839275222246405745257275088696311157297823662689037894645226208583",                                       // BN254
	"258664426012969094010652733694893533536393512754914660539884262666720468348340822774968888139573360124440321458177",  // BLS12-377
	"4002409555221667393417789825735904156556882819939007885332058136124031650490837864442687629129015664037894272559787", // BLS12-381
}

func TestMontMulBatchMatchesCIOS(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for _, dec := range montModuli {
		n, _ := new(big.Int).SetString(dec, 10)
		m, err := bigint.NewMontgomery(n)
		if err != nil {
			t.Fatal(err)
		}
		w := m.Width()
		for _, compact := range []bool{false, true} {
			tm := NewMontMultiplier(m)
			tm.Compact = compact
			var xs, ys, zs [Batch]bigint.Nat
			want := make([]bigint.Nat, Batch)
			for i := 0; i < Batch; i++ {
				xs[i] = bigint.FromBig(new(big.Int).Rand(rnd, n), w)
				ys[i] = bigint.FromBig(new(big.Int).Rand(rnd, n), w)
				zs[i] = bigint.New(w)
				want[i] = bigint.New(w)
				m.MulCIOS(want[i], xs[i], ys[i])
			}
			tm.MulBatch(&zs, &xs, &ys)
			for i := 0; i < Batch; i++ {
				if !zs[i].Equal(want[i]) {
					t.Fatalf("mod %s compact=%v: TC Montgomery != CIOS at %d", dec[:12], compact, i)
				}
			}
			c := tm.Counters()
			if c.MMAOps == 0 {
				t.Fatal("no tensor-core ops recorded")
			}
			if compact && c.MemWrites != 0 {
				t.Fatal("on-the-fly path should not write fragments to memory")
			}
			if !compact && c.MemWrites == 0 {
				t.Fatal("memory path should record fragment writes")
			}
		}
	}
}

func TestMontMulEdgeValues(t *testing.T) {
	n, _ := new(big.Int).SetString(montModuli[0], 10)
	m, _ := bigint.NewMontgomery(n)
	w := m.Width()
	tm := NewMontMultiplier(m)
	tm.Compact = true
	var xs, ys, zs [Batch]bigint.Nat
	nm1 := bigint.FromBig(new(big.Int).Sub(n, big.NewInt(1)), w)
	for i := 0; i < Batch; i++ {
		zs[i] = bigint.New(w)
		switch i % 4 {
		case 0:
			xs[i], ys[i] = bigint.New(w), nm1.Clone() // 0 * (n-1)
		case 1:
			xs[i], ys[i] = nm1.Clone(), nm1.Clone() // (n-1)^2
		case 2:
			one := bigint.New(w)
			one[0] = 1
			xs[i], ys[i] = one, nm1.Clone()
		default:
			xs[i], ys[i] = m.One.Clone(), m.R2.Clone()
		}
	}
	tm.MulBatch(&zs, &xs, &ys)
	for i := 0; i < Batch; i++ {
		want := bigint.New(w)
		m.MulCIOS(want, xs[i], ys[i])
		if !zs[i].Equal(want) {
			t.Fatalf("edge case %d mismatch", i)
		}
	}
}

func BenchmarkTCMontMul(b *testing.B) {
	rnd := rand.New(rand.NewSource(6))
	n, _ := new(big.Int).SetString(montModuli[0], 10)
	m, _ := bigint.NewMontgomery(n)
	w := m.Width()
	tm := NewMontMultiplier(m)
	tm.Compact = true
	var xs, ys, zs [Batch]bigint.Nat
	for i := 0; i < Batch; i++ {
		xs[i] = bigint.FromBig(new(big.Int).Rand(rnd, n), w)
		ys[i] = bigint.FromBig(new(big.Int).Rand(rnd, n), w)
		zs[i] = bigint.New(w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.MulBatch(&zs, &xs, &ys)
	}
}
