package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
)

// Sentinel errors of the execution engines, matchable with errors.Is.
// The public API re-exports them.
var (
	// ErrLengthMismatch is returned when the point and scalar vectors
	// have different lengths.
	ErrLengthMismatch = errors.New("core: points/scalars length mismatch")
	// ErrScalarTooWide is returned when a scalar exceeds the curve's
	// scalar-field bit width (scalars are rejected, never truncated).
	ErrScalarTooWide = errors.New("core: scalar wider than the curve scalar field")
	// ErrEmptyInput is returned when an execution or plan is requested
	// for zero points: an empty MSM in a prover pipeline is almost
	// always an upstream bug, so it is rejected rather than answered
	// with the identity.
	ErrEmptyInput = errors.New("core: empty input, MSM needs at least one point")
	// ErrAllGPUsLost is returned by the concurrent engine when fault
	// injection removes every simulated GPU and the serial-fallback
	// degradation is disabled.
	ErrAllGPUsLost = errors.New("core: every simulated GPU was lost")
	// ErrVerificationFailed is returned when a shard's randomized result
	// verification keeps rejecting its partial bucket sums even after
	// the retry budget is exhausted.
	ErrVerificationFailed = errors.New("core: shard result verification failed")
)

// PhaseTimes records the host-measured time of each functional
// execution phase. These are real durations of this host's goroutines
// (useful for engine comparisons), not the modeled GPU cost — that is
// Result.Cost.
//
// Bucket-sum has two distinct readings and the struct carries both:
//
//   - BucketSum is the *aggregate busy time* — the per-worker compute
//     seconds summed across every simulated GPU (Σ PerGPU.Busy for the
//     concurrent engine). It measures work done, so on a 4-GPU run it
//     can legitimately exceed the run's wall time.
//   - BucketSumWall is the *phase wall time* — the span from the first
//     shard launch to the last shard commit. It is the number to
//     compare against Scatter/BucketReduce/WindowReduce and against
//     the run's total duration.
//
// Invariant (concurrent engine, workers kept busy): BucketSumWall ≤
// BucketSum = Σ PerGPU.Busy, with equality only on one GPU with no
// idle gaps. Earlier revisions reported the aggregate under the name
// BucketSum alone, which made "phase time" exceed wall time on
// multi-GPU runs and the phases impossible to compare.
//
// The serial engine runs bucket-sum windows back to back on the host,
// so there BucketSumWall equals the summed per-window durations.
type PhaseTimes struct {
	Scatter time.Duration
	// BucketSum is the aggregate bucket-sum busy time over all workers
	// (Σ PerGPU.Busy on the concurrent engine).
	BucketSum time.Duration
	// BucketSumWall is the bucket-sum phase's wall-clock span:
	// first-shard-start → last-shard-commit.
	BucketSumWall time.Duration
	BucketReduce  time.Duration
	WindowReduce  time.Duration
}

// GPUStats is one simulated GPU's share of a concurrent execution.
type GPUStats struct {
	// GPU is the simulated device index.
	GPU int
	// Shards is the number of (window, bucket-range) assignments the
	// GPU's worker executed.
	Shards int
	// PACCOps is the bucket-accumulation point operations it performed.
	PACCOps uint64
	// Busy is the cumulative host wall time its worker spent summing.
	Busy time.Duration
}

// FaultStats aggregates the fault-tolerance events of one concurrent
// execution: every injected fault the scheduler observed and every
// recovery action it took. The zero value means a fault-free run.
type FaultStats struct {
	// DevicesLost is the number of GPUs permanently removed mid-run.
	DevicesLost int
	// TransientErrors is the number of shard executions that failed
	// recoverably.
	TransientErrors int
	// Stragglers is the number of shard executions slowed by injection.
	Stragglers int
	// Corruptions is the number of shard executions whose result was
	// perturbed by injection.
	Corruptions int
	// Retries is the number of shard re-executions queued after a
	// failure (transient or verification), with capped backoff.
	// Executions torn down by run cancellation are not retries and are
	// never counted here.
	Retries int
	// Steals is the number of shards a worker took from another healthy
	// GPU's queue instead of idling.
	Steals int
	// Reassignments is the number of shards moved to a different GPU —
	// requeues off a lost device plus retry escalations.
	Reassignments int
	// SpeculativeLaunches is the number of speculative duplicate
	// executions started for overdue shards; SpeculativeWins counts how
	// many of them committed before the original.
	SpeculativeLaunches int
	SpeculativeWins     int
	// VerificationRuns is the number of sampled randomized result
	// verifications; VerificationFailures counts rejections (each
	// triggers a re-execution).
	VerificationRuns     int
	VerificationFailures int
	// DegradedToSerial reports that every GPU was lost and the run fell
	// back to the serial host engine.
	DegradedToSerial bool
}

// Any reports whether any fault event was recorded.
func (f FaultStats) Any() bool { return f != FaultStats{} }

// Stats aggregates the simulated-hardware event counts of one execution.
// The op-count fields are engine-independent: the serial and concurrent
// engines perform bit-identical work and report identical counts.
type Stats struct {
	Scatter ScatterStats
	// PACCOps is the bucket-accumulation point operations (all GPUs).
	PACCOps uint64
	// ReduceOps is the bucket-reduce point operations (CPU or GPU).
	ReduceOps uint64
	// WindowOps is the final window-reduction point operations.
	WindowOps uint64
	// Phase is the cumulative host busy time per phase.
	Phase PhaseTimes
	// PerGPU breaks the bucket-sum work down by simulated GPU. It is
	// populated by the concurrent engine only (nil for the serial one).
	PerGPU []GPUStats
	// Faults records the fault-tolerance events of the run (concurrent
	// engine; zero for a fault-free or serial execution).
	Faults FaultStats
}

func (s *ScatterStats) add(o ScatterStats) {
	s.GlobalAtomics += o.GlobalAtomics
	s.SharedAtomics += o.SharedAtomics
	s.Passes += o.Passes
}

// Result is the outcome of a DistMSM execution.
type Result struct {
	// Point is the MSM value (nil in analytic mode).
	Point *curve.PointXYZZ
	// Cost is the modeled wall-time breakdown on the cluster.
	Cost  gpusim.Cost
	Plan  *Plan
	Stats Stats
}

// Run executes DistMSM without cancellation support.
//
// Deprecated: use RunContext, which additionally honours a
// context.Context and selects the execution engine via Options.Engine.
func Run(c *curve.Curve, cl *gpusim.Cluster, points []curve.PointAffine, scalars []bigint.Nat, opts Options) (*Result, error) {
	return RunContext(context.Background(), c, cl, points, scalars, opts)
}

// RunContext executes DistMSM functionally: it computes the exact MSM
// result by running the real scatter/sum/reduce phases of the plan, and
// prices the same work with the GPU cost model. Use Analytic for
// paper-scale sizes.
//
// The context is checked at every shard boundary: cancelling it makes
// RunContext return ctx.Err() promptly without leaking workers.
// Options.Engine selects the serial reference or the concurrent
// per-GPU engine; both produce bit-identical points and op counts.
//
// A zero-length input is rejected with ErrEmptyInput; mismatched vector
// lengths with ErrLengthMismatch. With Options.Faults set, a
// deterministic fault injector is attached to (a copy of) the cluster
// and the concurrent engine recovers from the injected faults; see
// FaultStats and RetryPolicy.
func RunContext(ctx context.Context, c *curve.Curve, cl *gpusim.Cluster, points []curve.PointAffine, scalars []bigint.Nat, opts Options) (*Result, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("%w: %d points but %d scalars", ErrLengthMismatch, len(points), len(scalars))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: got 0 points and 0 scalars", ErrEmptyInput)
	}
	for i, k := range scalars {
		if k.BitLen() > c.ScalarBits {
			return nil, fmt.Errorf("%w: scalar %d has %d bits, curve limit is %d",
				ErrScalarTooWide, i, k.BitLen(), c.ScalarBits)
		}
	}
	if err := opts.Retry.Validate(); err != nil {
		return nil, err
	}
	if opts.Faults != nil {
		inj, err := gpusim.NewFaultInjector(*opts.Faults)
		if err != nil {
			return nil, err
		}
		cl = cl.WithFaults(inj)
	}
	if opts.FixedBase != nil {
		// Fixed-base strategy: the base vector lives in the precomputed
		// tables; the caller's points are only checked for identity above.
		return runFixedBase(ctx, c, cl, scalars, opts)
	}
	if opts.GLV {
		// GLV endomorphism strategy (§2.3.2): split every (point, scalar)
		// pair into two half-width pairs, then plan and execute the 2N-point
		// MSM on a half-width curve view. Purely an input transform — the
		// scheduler below is unchanged.
		g, err := glvContext(c)
		if err != nil {
			return nil, err
		}
		points, scalars, c, err = glvSplit(g, c, points, scalars)
		if err != nil {
			return nil, err
		}
	}
	plan, err := BuildPlan(c, cl, len(points), opts)
	if err != nil {
		return nil, err
	}
	var res *Result
	switch opts.Engine {
	case EngineConcurrent:
		res, err = runConcurrent(ctx, points, scalars, plan, opts)
	case EngineSerial:
		res, err = runSerial(ctx, points, scalars, plan, opts)
	default:
		return nil, fmt.Errorf("core: unknown engine %d", opts.Engine)
	}
	if err != nil {
		return nil, err
	}
	res.Cost = plan.EstimateCost()
	return res, nil
}

// Analytic prices an N-point MSM on the cluster without computing it —
// the mode used for the paper-scale inputs (2^22–2^28) of Table 3.
func Analytic(c *curve.Curve, cl *gpusim.Cluster, n int, opts Options) (*Result, error) {
	plan, err := BuildPlan(c, cl, n, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: plan, Cost: plan.EstimateCost()}, nil
}

// scatterWindow runs the plan's bucket scatter on one window's digits.
func scatterWindow(p *Plan, digits []int32) (*ScatterResult, error) {
	if p.Hierarchical {
		return HierarchicalScatter(digits, p.Buckets, p.Block)
	}
	return NaiveScatter(digits, p.Buckets)
}

// bucketScratch is the reusable per-worker state of sumBucketRange: the
// adder's registers and the negation temporary survive across shards so
// the inner accumulation loop allocates nothing beyond the bucket
// accumulators themselves.
type bucketScratch struct {
	a    *curve.Adder
	negY field.Element
}

func newBucketScratch(c *curve.Curve) *bucketScratch {
	return &bucketScratch{a: c.NewAdder(), negY: c.Fp.NewElement()}
}

// sumBucketRange accumulates buckets[lo:hi] into out[lo:hi]: one PACC
// per referenced point, negating references with negative sign. It is
// the per-shard kernel both engines share, and it validates the bucket
// references so a corrupt scatter surfaces as an error instead of a
// silent wrong answer or panic. The accumulators for the range come
// from one flat arena (NewXYZZBatch), and scr holds the caller's
// reusable scratch — each worker owns one.
func sumBucketRange(c *curve.Curve, points []curve.PointAffine, buckets [][]int32, lo, hi int, out []*curve.PointXYZZ, scr *bucketScratch) (uint64, error) {
	a, negY := scr.a, scr.negY
	nonEmpty := 0
	for b := lo; b < hi; b++ {
		if len(buckets[b]) > 0 {
			nonEmpty++
		}
	}
	batch := c.NewXYZZBatch(nonEmpty)
	next := 0
	var ops uint64
	for b := lo; b < hi; b++ {
		if len(buckets[b]) == 0 {
			continue
		}
		acc := &batch[next]
		next++
		for _, ref := range buckets[b] {
			negated := ref < 0
			if negated {
				ref = -ref
			}
			if ref < 1 || int(ref) > len(points) {
				return ops, fmt.Errorf("core: bucket %d references point %d outside the %d-point input", b, ref, len(points))
			}
			pt := &points[int(ref)-1]
			if pt.Inf {
				continue
			}
			if negated {
				c.Fp.Neg(negY, pt.Y)
				neg := curve.PointAffine{X: pt.X, Y: negY}
				a.Acc(acc, &neg)
			} else {
				a.Acc(acc, pt)
			}
			ops++
		}
		out[b] = acc
	}
	return ops, nil
}

// sumBuckets accumulates every bucket, in parallel across `workers`
// host goroutines; the first worker error is propagated. scr carries
// one reusable scratch per worker (grown on demand) so repeated calls —
// one per window in the serial engine — reuse the adder registers.
func sumBuckets(c *curve.Curve, points []curve.PointAffine, buckets [][]int32, workers int, scr *[]*bucketScratch, stats *Stats) ([]*curve.PointXYZZ, error) {
	out := make([]*curve.PointXYZZ, len(buckets))
	if workers < 1 {
		workers = 1
	}
	for len(*scr) < workers {
		*scr = append(*scr, newBucketScratch(c))
	}
	chunk := (len(buckets) + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(buckets) {
			hi = len(buckets)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		scratch := (*scr)[w]
		go func(lo, hi int, scratch *bucketScratch) {
			defer wg.Done()
			ops, err := sumBucketRange(c, points, buckets, lo, hi, out, scratch)
			mu.Lock()
			stats.PACCOps += ops
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(lo, hi, scratch)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// reduceBuckets computes Σ i·B_i with the serial running-suffix method
// (two PADDs per bucket — the "few thousand PADD operations" of §3.2.3)
// and returns the window sum with its PADD count. Cancellation is
// checked every 256 buckets, so a cancel lands mid-reduce instead of
// waiting out a whole window (the reduce of one large-window 753-bit
// curve can run for tens of milliseconds).
func reduceBuckets(ctx context.Context, c *curve.Curve, buckets []*curve.PointXYZZ, a *curve.Adder) (*curve.PointXYZZ, uint64, error) {
	running := c.NewXYZZ()
	total := c.NewXYZZ()
	var ops uint64
	for i := len(buckets) - 1; i >= 1; i-- {
		if i&0xFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, ops, err
			}
		}
		if buckets[i] != nil {
			a.Add(running, buckets[i])
			ops++
		}
		a.Add(total, running)
		ops++
	}
	return total, ops, nil
}

// EstimateCost prices the plan on the cluster: the phase times of the
// most-loaded GPU, host transfers, and the (possibly overlapped) reduce.
func (p *Plan) EstimateCost() gpusim.Cost {
	model := p.Cluster.Model()
	bits := p.Curve.Fp.Bits()
	nt := float64(p.NT)
	var cost gpusim.Cost

	// Per-GPU load: points and buckets from the assignments (uniform
	// digit distribution: a bucket range holds N·range/buckets points).
	type load struct {
		points  float64
		buckets float64
		windows map[int]bool
	}
	loads := map[int]*load{}
	if p.SplitNDim {
		// Rejected first approach of §3.2.2: every GPU runs all windows
		// over an N/N_gpu point slice and emits a full bucket array.
		for g := 0; g < p.Cluster.N; g++ {
			l := &load{windows: map[int]bool{}}
			for j := 0; j < p.Windows; j++ {
				l.windows[j] = true
			}
			l.points = float64(p.N) / float64(p.Cluster.N) * float64(p.Windows)
			l.buckets = float64(p.Buckets) * float64(p.Windows)
			loads[g] = l
		}
	} else {
		for _, a := range p.Assignments {
			l := loads[a.GPU]
			if l == nil {
				l = &load{windows: map[int]bool{}}
				loads[a.GPU] = l
			}
			frac := float64(a.BucketHi-a.BucketLo) / float64(p.Buckets)
			l.points += float64(p.N) * frac
			l.buckets += float64(a.BucketHi - a.BucketLo)
			l.windows[a.Window] = true
		}
	}

	var maxScatter, maxSum float64
	for _, l := range loads {
		// --- bucket-scatter ---
		var scatter float64
		if p.Hierarchical {
			// Two shared atomics per point (count + place), contention
			// from the block's threads spread over the buckets; one
			// global atomic per non-empty local bucket per pass.
			shmContention := float64(p.Block.Threads) / float64(p.Buckets)
			scatter += model.SharedAtomicSeconds(2*l.points, shmContention)
			passes := math.Ceil(l.points / float64(p.Block.PointsPerBlock()))
			nonEmpty := math.Min(float64(p.Buckets), float64(p.Block.PointsPerBlock()))
			activeBlocks := nt / float64(p.Block.Threads)
			globContention := activeBlocks / float64(p.Buckets)
			scatter += model.GlobalAtomicSeconds(passes*nonEmpty, globContention)
		} else {
			globContention := nt / float64(p.Buckets)
			scatter += model.GlobalAtomicSeconds(l.points, globContention)
		}
		// Streaming each window's s-bit coefficient slices and writing
		// the scattered point ids.
		winCount := float64(len(l.windows))
		scatter += model.MemSeconds(winCount*float64(p.N)*float64(p.S)/8) +
			model.MemSeconds(l.points*4)
		if scatter > maxScatter {
			maxScatter = scatter
		}

		// --- bucket-sum ---
		// Per-thread work: P/N_T accumulations plus the intra-bucket
		// reduction of log2(threads-per-bucket) PADDs (§3.2.2).
		perThread := l.points / nt
		if l.buckets > 0 && l.buckets < nt {
			perThread += math.Log2(nt / l.buckets)
		}
		sum := model.ECOpSeconds(p.Spec, bits, perThread*nt)
		// Reading each point once from device memory.
		sum += model.MemSeconds(l.points * 2 * float64(bits) / 8)
		if sum > maxSum {
			maxSum = sum
		}
	}
	cost.Scatter = maxScatter
	cost.BucketSum = maxSum

	// --- bucket-reduce ---
	// N-dim splitting (§3.2.2's rejected first approach) leaves every
	// GPU with all windows to reduce — or, on the CPU path, ships N_gpu
	// full bucket arrays to the host ("increasing the CPU's workload").
	reduceOps := float64(p.Windows) * 2 * float64(p.Buckets)
	if p.SplitNDim {
		reduceOps *= float64(p.Cluster.N)
	}
	if p.ReduceOnGPU {
		// The paper's per-thread GPU formula: 2s·⌈B/N_T⌉ doubling-ladder
		// work plus the parallel-reduction tail with global syncs.
		chunk := math.Ceil(float64(p.Buckets) / nt)
		perThread := 2*float64(p.S)*chunk +
			math.Min(chunk+math.Log2(nt), float64(p.S))
		winPerGPU := math.Ceil(float64(p.Windows) / float64(p.poolSize()))
		if p.SplitNDim {
			winPerGPU = float64(p.Windows) // not amortised across GPUs
		}
		cost.BucketReduce = model.ECOpSeconds(p.PADDSpec, bits, winPerGPU*perThread*nt)
	} else {
		cost.BucketReduce = gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits, reduceOps)
		cost.ReduceOnCPU = true
	}

	// --- window-reduce (host, negligible) ---
	cost.WindowReduce = gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits,
		float64(p.Curve.ScalarBits)+float64(p.Windows))

	// --- transfers. Following the kernel-only timing convention of the
	// GPU MSM baselines, the scalar vector is staged on (or streamed to)
	// the devices overlapped with preceding work; only per-phase launch
	// latencies and the per-window result readback are on the clock.
	// N-dim splitting additionally merges N_gpu full bucket arrays on
	// the host — the CPU burden that made the paper reject it (§3.2.2).
	launches := float64(p.Windows + len(p.Assignments))
	resultBytes := float64(p.Windows) * 4 * float64(bits) / 8
	if p.SplitNDim {
		// Every GPU returns one partial result per window; the host sums
		// the N_gpu partials (a handful of PADDs, priced in WindowReduce).
		resultBytes *= float64(p.Cluster.N)
		cost.WindowReduce += gpusim.CPUECOpSeconds(p.Cluster.Host, p.PADDSpec, bits,
			float64(p.Cluster.N-1))
	}
	cost.Transfer = launches*p.Cluster.IC.HostLatency +
		gpusim.HostTransferSeconds(resultBytes, p.Cluster.IC)
	return cost
}
