// Command pipelinebench measures the single-proof latency win of the
// phase-DAG pipelined Groth16 prover against the sequential prover, at
// 2^12–2^16 constraints on a simulated 8-GPU cluster.
//
// Both sides run the same proving key, witness, and per-proof
// randomness seed, with the G1 MSMs routed through the multi-GPU
// DistMSM scheduler; the pipelined side additionally overlaps the
// quotient (parallel coset NTTs) with the witness MSMs and confines
// each concurrent phase to a disjoint GPU sub-pool. Every run asserts
// the two proofs are byte-identical and that the quotient span overlaps
// a witness-MSM span in the recorded trace.
//
// The headline number is the *modeled* wall-clock reduction from the
// gpusim cost model (deterministic, host-independent): sequential =
// host-CPU NTT + the four G1 MSM phases back to back; pipelined =
// max(multi-GPU NTT, witness MSMs on their sub-pools) + msm-Z. The G2
// MSM runs on the host on both sides and cancels out of the
// comparison. Real wall seconds are reported informationally — on a
// single-core CI host, concurrent CPU-bound phases cannot shrink real
// time, which is exactly why the floor gates on modeled seconds.
//
//	pipelinebench -gpus 8 -sizes 4095,16383,65535 -out BENCH_pr8.json
//	pipelinebench -smoke   # CI variant: one small size, no file
//
// Exit is non-zero on any proof failure, a byte-identity mismatch, a
// non-overlapping quotient, or (outside -smoke) a modeled reduction
// below the floor at 2^14+ domains. In -smoke mode the gate is simply
// pipelined-modeled < sequential-modeled.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
	"distmsm/internal/groth16"
	"distmsm/internal/kernel"
	"distmsm/internal/ntt"
	"distmsm/internal/r1cs"
	"distmsm/internal/telemetry"
)

// nttWorkers is the pipelined quotient's host-parallel NTT fan-out.
const nttWorkers = 4

// quotientTransforms is how many size-d NTTs one quotient runs
// (3 inverse + 3 coset-forward + 1 coset-inverse).
const quotientTransforms = 7

type sizeReport struct {
	Constraints int `json:"constraints"`
	Domain      int `json:"domain"`

	SequentialRealSeconds float64 `json:"sequential_real_seconds"`
	PipelinedRealSeconds  float64 `json:"pipelined_real_seconds"`

	SequentialModeledSeconds float64            `json:"sequential_modeled_seconds"`
	PipelinedModeledSeconds  float64            `json:"pipelined_modeled_seconds"`
	ModeledReduction         float64            `json:"modeled_reduction"`
	ModeledPhaseSeconds      map[string]float64 `json:"modeled_phase_seconds"`

	ByteIdentical       bool `json:"byte_identical"`
	QuotientOverlapsMSM bool `json:"quotient_overlaps_witness_msm"`
}

type report struct {
	GPUs  int          `json:"gpus"`
	Note  string       `json:"note"`
	Sizes []sizeReport `json:"sizes"`
}

func main() {
	var (
		gpus  = flag.Int("gpus", 8, "simulated GPU count")
		sizes = flag.String("sizes", "4095,16383,65535", "comma-separated synthetic constraint counts")
		out   = flag.String("out", "", "write the JSON report here (default stdout)")
		floor = flag.Float64("floor", 0.25, "minimum modeled reduction at domains >= 2^14")
		smoke = flag.Bool("smoke", false, "CI smoke: one small size, gate is pipelined < sequential")
	)
	flag.Parse()
	if *smoke {
		*sizes, *out = "1023", ""
	}
	if err := run(*gpus, *sizes, *out, *floor, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "pipelinebench:", err)
		os.Exit(1)
	}
}

func run(gpus int, sizeList, out string, floor float64, smoke bool) error {
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		return err
	}
	e, err := groth16.NewEngine()
	if err != nil {
		return err
	}
	rep := report{
		GPUs: gpus,
		Note: "modeled seconds come from the gpusim cost model (host NTT vs multi-GPU NTT, " +
			"per-sub-pool MSM plans); the host-side G2 MSM is identical on both sides and excluded. " +
			"real seconds depend on the benchmark host's core count.",
	}

	for _, tok := range strings.Split(sizeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -sizes entry %q", tok)
		}
		sr, err := benchSize(e, cl, n)
		if err != nil {
			return fmt.Errorf("%d constraints: %w", n, err)
		}
		rep.Sizes = append(rep.Sizes, sr)
		fmt.Printf("pipelinebench: %d constraints (domain %d) on %d GPUs\n", sr.Constraints, sr.Domain, gpus)
		fmt.Printf("  sequential: %.4gs modeled, %.2fs real\n", sr.SequentialModeledSeconds, sr.SequentialRealSeconds)
		fmt.Printf("  pipelined:  %.4gs modeled, %.2fs real\n", sr.PipelinedModeledSeconds, sr.PipelinedRealSeconds)
		fmt.Printf("  modeled reduction: %.1f%%  byte-identical: %v  quotient overlaps MSM: %v\n",
			100*sr.ModeledReduction, sr.ByteIdentical, sr.QuotientOverlapsMSM)

		if !sr.ByteIdentical {
			return fmt.Errorf("%d constraints: pipelined proof is not byte-identical to sequential", n)
		}
		if !sr.QuotientOverlapsMSM {
			return fmt.Errorf("%d constraints: quotient span does not overlap any witness-MSM span", n)
		}
		if smoke {
			if sr.PipelinedModeledSeconds >= sr.SequentialModeledSeconds {
				return fmt.Errorf("smoke: pipelined modeled %.4gs not below sequential %.4gs",
					sr.PipelinedModeledSeconds, sr.SequentialModeledSeconds)
			}
		} else if sr.Domain >= 1<<14 && sr.ModeledReduction < floor {
			return fmt.Errorf("modeled reduction %.1f%% below the %.0f%% floor at domain %d",
				100*sr.ModeledReduction, 100*floor, sr.Domain)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		os.Stdout.Write(enc)
		return nil
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Println("pipelinebench: wrote", out)
	return nil
}

// benchSize sets up one synthetic circuit and proves it twice — the
// sequential schedule, then the phase DAG — with the same seed.
func benchSize(e *groth16.Engine, cl *gpusim.Cluster, constraints int) (sizeReport, error) {
	cs, w := r1cs.BuildSynthetic(e.Fr, constraints, 1)
	d := 1
	for d < constraints+1 {
		d <<= 1
	}
	pk, vk, err := e.SetupContext(context.Background(), cs, rand.New(rand.NewSource(int64(constraints))))
	if err != nil {
		return sizeReport{}, err
	}

	const seed = 99
	seq, err := prove(e, cl, cs, pk, w, seed, false)
	if err != nil {
		return sizeReport{}, fmt.Errorf("sequential: %w", err)
	}
	pip, err := prove(e, cl, cs, pk, w, seed, true)
	if err != nil {
		return sizeReport{}, fmt.Errorf("pipelined: %w", err)
	}
	// Sanity: the shared proof actually verifies.
	proof, err := e.UnmarshalProof(seq.proof)
	if err != nil {
		return sizeReport{}, err
	}
	if ok, err := e.Verify(vk, proof, w[1:1+cs.NPublic]); err != nil || !ok {
		return sizeReport{}, fmt.Errorf("proof rejected: %v", err)
	}

	frBits := e.Fr.Modulus.BitLen()
	nttHost := float64(quotientTransforms) * hostNTTSeconds(cl, d, frBits)
	nttGPU := float64(quotientTransforms) * ntt.MultiGPUNTTSeconds(cl, d, frBits)

	seqModel := nttHost
	phases := map[string]float64{
		"quotient-host-ntt":     nttHost,
		"quotient-multigpu-ntt": nttGPU,
	}
	for _, ph := range []groth16.MSMPhase{groth16.PhaseA, groth16.PhaseB1, groth16.PhaseK, groth16.PhaseZ} {
		seqModel += seq.msmModel[ph]
		phases["msm-"+ph.String()+"-fullpool"] = seq.msmModel[ph]
		phases["msm-"+ph.String()+"-subpool"] = pip.msmModel[ph]
	}
	// The DAG's modeled critical path: the witness MSMs and the
	// multi-GPU quotient run concurrently on disjoint resources, msm-Z
	// follows the quotient.
	pipModel := max(nttGPU, pip.msmModel[groth16.PhaseA], pip.msmModel[groth16.PhaseB1],
		pip.msmModel[groth16.PhaseK]) + pip.msmModel[groth16.PhaseZ]

	return sizeReport{
		Constraints:              constraints,
		Domain:                   d,
		SequentialRealSeconds:    seq.realSec,
		PipelinedRealSeconds:     pip.realSec,
		SequentialModeledSeconds: seqModel,
		PipelinedModeledSeconds:  pipModel,
		ModeledReduction:         1 - pipModel/seqModel,
		ModeledPhaseSeconds:      phases,
		ByteIdentical:            string(seq.proof) == string(pip.proof),
		QuotientOverlapsMSM:      pip.overlap,
	}, nil
}

type measurement struct {
	proof    []byte
	realSec  float64
	msmModel map[groth16.MSMPhase]float64
	overlap  bool
}

// prove runs one proof with the G1 MSMs on the simulated cluster —
// pipelined confines each phase to its quarter of the GPUs and records
// a trace to check the quotient/MSM overlap.
func prove(e *groth16.Engine, cl *gpusim.Cluster, cs *r1cs.System, pk *groth16.ProvingKey, w []field.Element, seed int64, pipelined bool) (*measurement, error) {
	m := &measurement{msmModel: map[groth16.MSMPhase]float64{}}
	var pools [4][]int
	if pipelined && cl.N >= 4 {
		for i := range pools {
			for g := i * cl.N / 4; g < (i+1)*cl.N/4; g++ {
				pools[i] = append(pools[i], g)
			}
		}
	}
	var mu sync.Mutex
	pr := groth16.Provers{
		G1Ctx: func(ctx context.Context, phase groth16.MSMPhase, points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
			res, err := core.RunContext(ctx, e.P.Curve, cl, points, scalars,
				core.Options{Engine: core.EngineConcurrent, Devices: pools[phase]})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			m.msmModel[phase] += res.Cost.Total()
			mu.Unlock()
			return res.Point, nil
		},
	}
	if pipelined {
		pr.Pipeline = &groth16.PipelineOptions{NTTWorkers: nttWorkers}
	}
	tr := telemetry.NewTracer(0)
	ctx := telemetry.NewContext(context.Background(), tr)
	start := time.Now()
	proof, err := e.ProveContextWith(ctx, cs, pk, w, rand.New(rand.NewSource(seed)), pr)
	if err != nil {
		return nil, err
	}
	m.realSec = time.Since(start).Seconds()
	m.proof = e.MarshalProof(proof)
	if pipelined {
		m.overlap = quotientOverlap(tr.Spans())
	}
	return m, nil
}

// quotientOverlap reports whether the quotient span overlaps any
// witness-MSM span in wall time.
func quotientOverlap(spans []telemetry.Span) bool {
	var q *telemetry.Span
	for i := range spans {
		if spans[i].Cat == "groth16" && spans[i].Name == "quotient" {
			q = &spans[i]
			break
		}
	}
	if q == nil {
		return false
	}
	qEnd := q.Start.Add(q.Dur)
	for _, s := range spans {
		switch s.Name {
		case "msm-A", "msm-B2", "msm-B1", "msm-K":
			if s.Cat == "groth16" && s.Start.Before(qEnd) && q.Start.Before(s.Start.Add(s.Dur)) {
				return true
			}
		}
	}
	return false
}

// hostNTTSeconds prices one serial size-n NTT on the host CPU — the
// sequential quotient's transform backend — with the same per-butterfly
// work spec MultiGPUNTTSeconds uses for the GPUs, scaled by the host's
// EC throughput ratio (§3.2.3's "a GPU could be up to 128x faster").
func hostNTTSeconds(cl *gpusim.Cluster, n, fieldBits int) float64 {
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	spec := kernel.Spec{Variant: kernel.VariantOptimalOrder, Muls: 1, PeakLive: 3}
	ops := float64(n)/2*float64(logN) + float64(n) // butterflies + twiddle pass
	return gpusim.CPUECOpSeconds(cl.Host, spec, fieldBits, ops)
}
