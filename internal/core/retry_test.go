package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"distmsm/internal/gpusim"
)

func TestRetryPolicyValidate(t *testing.T) {
	bad := []struct {
		name string
		pol  RetryPolicy
	}{
		{"max-below-base", RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Millisecond}},
		{"max-below-default-base", RetryPolicy{MaxBackoff: time.Nanosecond}},
		{"nan-straggler", RetryPolicy{StragglerMultiple: math.NaN()}},
		{"inf-straggler", RetryPolicy{StragglerMultiple: math.Inf(1)}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.pol.Validate()
			if !errors.Is(err, gpusim.ErrBadFaultConfig) {
				t.Fatalf("Validate() = %v, want ErrBadFaultConfig", err)
			}
		})
	}
	good := []RetryPolicy{
		{}, // zero value resolves to the documented defaults
		{BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		{StragglerMultiple: -1}, // negative disables speculation, valid
		{MaxAttempts: 1, BaseBackoff: time.Microsecond, MaxBackoff: time.Second, StragglerMultiple: 2},
	}
	for _, pol := range good {
		if err := pol.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", pol, err)
		}
	}
}

// TestRunContextRejectsBadRetryPolicy: the misconfiguration surfaces
// from the run entry point itself, before any plan is built or worker
// started.
func TestRunContextRejectsBadRetryPolicy(t *testing.T) {
	c := mustCurve(t, "BN254")
	cl := cluster(t, 2)
	points := c.SamplePoints(4, 51)
	scalars := c.SampleScalars(4, 52)
	_, err := RunContext(context.Background(), c, cl, points, scalars, Options{
		Engine: EngineConcurrent,
		Retry:  RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Millisecond},
	})
	if !errors.Is(err, gpusim.ErrBadFaultConfig) {
		t.Fatalf("RunContext = %v, want ErrBadFaultConfig", err)
	}
}
