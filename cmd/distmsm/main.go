// Command distmsm runs a multi-scalar multiplication on a simulated
// multi-GPU system and reports the result digest, the modeled cost
// breakdown and the chosen execution plan.
//
// Usage:
//
//	distmsm -curve BN254 -n 4096 -gpus 8 [-window 0] [-device a100]
//	        [-engine concurrent] [-naive-scatter] [-gpu-reduce]
//	        [-unsigned] [-estimate]
//	        [-inject-faults transient=0.2,straggler=0.1,device-lost=0.05,corrupt=0.1]
//	        [-fault-seed 1]
//
// With -estimate the MSM is priced analytically (paper-scale N allowed);
// otherwise it is computed functionally and verified against the CPU
// Pippenger implementation. Ctrl-C cancels an in-flight execution.
//
// -inject-faults turns on deterministic fault injection on the simulated
// GPUs (concurrent engine): a comma-separated class=probability list
// over transient, straggler, device-lost and corrupt (plus the optional
// straggler-factor=N cost multiple), seeded by -fault-seed. The
// scheduler's recovery actions are reported after the run, and the
// result is still verified against the CPU Pippenger.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"distmsm"
)

func main() {
	var (
		curveName = flag.String("curve", "BN254", "elliptic curve: "+strings.Join(distmsm.Curves(), ", "))
		n         = flag.Int("n", 1<<12, "number of points")
		gpus      = flag.Int("gpus", 8, "simulated GPU count")
		device    = flag.String("device", "a100", "device model: a100, rtx4090, amd6900xt")
		window    = flag.Int("window", 0, "window size s (0 = auto)")
		engine    = flag.String("engine", "concurrent", "execution engine: serial, concurrent")
		naive     = flag.Bool("naive-scatter", false, "disable the hierarchical bucket scatter")
		gpuReduce = flag.Bool("gpu-reduce", false, "keep bucket-reduce on the GPUs")
		unsigned  = flag.Bool("unsigned", false, "disable signed-digit recoding")
		estimate  = flag.Bool("estimate", false, "analytic cost only (no functional execution)")
		seed      = flag.Int64("seed", 42, "workload seed")
		faults    = flag.String("inject-faults", "", "fault injection spec, e.g. transient=0.2,straggler=0.1,device-lost=0.05,corrupt=0.1[,straggler-factor=16]")
		faultSeed = flag.Int64("fault-seed", 1, "fault-injection seed (with -inject-faults)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *curveName, *device, *engine, *n, *gpus, *window, *naive, *gpuReduce, *unsigned, *estimate, *seed, *faults, *faultSeed); err != nil {
		fmt.Fprintln(os.Stderr, "distmsm:", err)
		os.Exit(1)
	}
}

// parseFaultSpec turns the -inject-faults class=probability list into a
// FaultConfig (validated later by the injector itself).
func parseFaultSpec(spec string, seed int64) (distmsm.FaultConfig, error) {
	cfg := distmsm.FaultConfig{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("bad fault spec entry %q: want class=probability", part)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return cfg, fmt.Errorf("bad fault probability in %q: %v", part, err)
		}
		switch strings.TrimSpace(key) {
		case "transient":
			cfg.Transient = p
		case "straggler":
			cfg.Straggler = p
		case "device-lost":
			cfg.DeviceLost = p
		case "corrupt":
			cfg.Corrupt = p
		case "straggler-factor":
			cfg.StragglerFactor = p
		default:
			return cfg, fmt.Errorf("unknown fault class %q (want transient, straggler, device-lost, corrupt or straggler-factor)", key)
		}
	}
	return cfg, nil
}

func run(ctx context.Context, curveName, device, engine string, n, gpus, window int, naive, gpuReduce, unsigned, estimate bool, seed int64, faultSpec string, faultSeed int64) error {
	var model distmsm.DeviceModel
	switch strings.ToLower(device) {
	case "a100":
		model = distmsm.A100
	case "rtx4090":
		model = distmsm.RTX4090
	case "amd6900xt":
		model = distmsm.AMD6900XT
	default:
		return fmt.Errorf("unknown device %q", device)
	}
	var eng distmsm.Engine
	switch strings.ToLower(engine) {
	case "serial":
		eng = distmsm.EngineSerial
	case "concurrent":
		eng = distmsm.EngineConcurrent
	default:
		return fmt.Errorf("unknown engine %q", engine)
	}
	c, err := distmsm.Curve(curveName)
	if err != nil {
		return err
	}
	sys, err := distmsm.NewSystem(model, gpus)
	if err != nil {
		return err
	}
	opts := []distmsm.Option{
		distmsm.WithWindowBits(window),
		distmsm.WithEngine(eng),
		distmsm.WithHierarchicalScatter(!naive),
		distmsm.WithGPUReduce(gpuReduce),
		distmsm.WithSignedDigits(!unsigned),
	}
	if faultSpec != "" {
		cfg, err := parseFaultSpec(faultSpec, faultSeed)
		if err != nil {
			return err
		}
		opts = append(opts, distmsm.WithFaultInjection(cfg))
	}

	var res *distmsm.Result
	if estimate {
		res, err = sys.EstimateContext(ctx, c, n, opts...)
	} else {
		points := c.SamplePoints(n, uint64(seed))
		scalars := c.SampleScalars(n, seed)
		res, err = sys.MSMContext(ctx, c, points, scalars, opts...)
		if err != nil {
			return err
		}
		want, err := distmsm.CPUMSM(c, points, scalars)
		if err != nil {
			return err
		}
		if !c.EqualXYZZ(res.Point, want) {
			return fmt.Errorf("verification FAILED: DistMSM result differs from CPU Pippenger")
		}
		aff := c.ToAffine(res.Point)
		fmt.Printf("result     : %s\n", aff)
		fmt.Println("verified   : matches CPU Pippenger")
	}
	if err != nil {
		return err
	}

	p := res.Plan
	fmt.Printf("curve      : %s (λ=%d bits, p=%d bits)\n", c.Name, c.ScalarBits, c.Fp.Bits())
	fmt.Printf("system     : %d x %s (%s engine)\n", sys.GPUs(), sys.DeviceName(), eng)
	fmt.Printf("plan       : s=%d windows=%d buckets=%d signed=%v hierarchical=%v cpu-reduce=%v\n",
		p.S, p.Windows, p.Buckets, p.Signed, p.Hierarchical, !p.ReduceOnGPU)
	fmt.Printf("modeled ms : total=%.3f scatter=%.3f bucket-sum=%.3f reduce=%.3f transfer=%.3f\n",
		res.Cost.Total()*1e3, res.Cost.Scatter*1e3, res.Cost.BucketSum*1e3,
		res.Cost.BucketReduce*1e3, res.Cost.Transfer*1e3)
	if !estimate {
		for _, g := range res.Stats.PerGPU {
			fmt.Printf("gpu %-6d : %d shards, %d PACC ops, %.3f ms host busy\n",
				g.GPU, g.Shards, g.PACCOps, float64(g.Busy.Microseconds())/1e3)
		}
		if f := res.Stats.Faults; f.Any() {
			fmt.Printf("faults     : lost=%d transient=%d stragglers=%d corruptions=%d\n",
				f.DevicesLost, f.TransientErrors, f.Stragglers, f.Corruptions)
			fmt.Printf("recovery   : retries=%d reassigned=%d speculative=%d (won %d) verified=%d (rejected %d)\n",
				f.Retries, f.Reassignments, f.SpeculativeLaunches, f.SpeculativeWins,
				f.VerificationRuns, f.VerificationFailures)
			if f.DegradedToSerial {
				fmt.Println("degraded   : every GPU lost, completed on the serial host engine")
			}
		}
	}
	return nil
}
