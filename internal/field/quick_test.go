package field

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick): field invariants over elements
// derived from arbitrary uint64 quadruples.

func quickField(t *testing.T) *Field {
	t.Helper()
	return mustField(t, "bn254-fr")
}

func elemFrom(f *Field, a, b, c, d uint64) Element {
	v := new(big.Int).SetUint64(a)
	for _, x := range []uint64{b, c, d} {
		v.Lsh(v, 64)
		v.Add(v, new(big.Int).SetUint64(x))
	}
	return f.FromBig(v)
}

func TestQuickMulCommutesAndDistributes(t *testing.T) {
	f := quickField(t)
	prop := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 uint64) bool {
		a := elemFrom(f, a1, a2, a3, a4)
		b := elemFrom(f, b1, b2, b3, b4)
		c := elemFrom(f, c1, c2, c3, c4)
		ab, ba := f.NewElement(), f.NewElement()
		f.Mul(ab, a, b)
		f.Mul(ba, b, a)
		if !ab.Equal(ba) {
			return false
		}
		// a(b+c) == ab + ac
		s, l, ac, r := f.NewElement(), f.NewElement(), f.NewElement(), f.NewElement()
		f.Add(s, b, c)
		f.Mul(l, a, s)
		f.Mul(ac, a, c)
		f.Add(r, ab, ac)
		return l.Equal(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInverseAndNegation(t *testing.T) {
	f := quickField(t)
	prop := func(a1, a2, a3, a4 uint64) bool {
		a := elemFrom(f, a1, a2, a3, a4)
		// a + (-a) == 0
		n, s := f.NewElement(), f.NewElement()
		f.Neg(n, a)
		f.Add(s, a, n)
		if !s.IsZero() {
			return false
		}
		if a.IsZero() {
			return true
		}
		// a * a^-1 == 1
		inv := f.NewElement()
		f.Inv(inv, a)
		f.Mul(inv, inv, a)
		return inv.Equal(f.One())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSqrtOfSquare(t *testing.T) {
	f := quickField(t)
	prop := func(a1, a2, a3, a4 uint64) bool {
		a := elemFrom(f, a1, a2, a3, a4)
		sq, root, check := f.NewElement(), f.NewElement(), f.NewElement()
		f.Square(sq, a)
		if !f.Sqrt(root, sq) {
			return false
		}
		f.Square(check, root)
		return check.Equal(sq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickToBigRoundTrip(t *testing.T) {
	f := quickField(t)
	prop := func(a1, a2, a3, a4 uint64) bool {
		a := elemFrom(f, a1, a2, a3, a4)
		return f.FromBig(f.ToBig(a)).Equal(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
