// Command provd runs the long-lived proving service: a worker pool
// proving Groth16 jobs against pre-registered circuits, with bounded
// admission, end-to-end job deadlines and cross-request GPU health
// (see internal/service).
//
// Serve mode (default) exposes the JSON API:
//
//	provd -gpus 8 -listen :8080 -constraints 512
//	curl -s -X POST localhost:8080/prove -d '{"circuit":"synthetic","seed":7}'
//	curl -s localhost:8080/healthz
//
// Smoke mode runs N jobs through the full service lifecycle (submit,
// prove, verify, drain) without a listener and exits non-zero on any
// failure — the CI entry point:
//
//	provd -gpus 4 -constraints 200 -smoke 6
//
// Observability: /metrics serves the Prometheus text exposition (job
// latency, queue depth, fault/retry rates, per-GPU breaker states),
// -trace-dir writes a Chrome trace_event JSON per job (open it in
// chrome://tracing or https://ui.perfetto.dev), and -pprof mounts
// net/http/pprof under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distmsm/internal/gpusim"
	"distmsm/internal/service"
	"distmsm/internal/telemetry"
)

func main() {
	var (
		gpus        = flag.Int("gpus", 8, "simulated GPU count")
		workers     = flag.Int("workers", 0, "proving workers (0 = one per DGX node)")
		queue       = flag.Int("queue", 0, "queue depth (0 = 2x workers)")
		constraints = flag.Int("constraints", 512, "registered synthetic circuit size")
		listen      = flag.String("listen", ":8080", "HTTP listen address (serve mode)")
		timeout     = flag.Duration("timeout", time.Minute, "default per-job deadline")
		smoke       = flag.Int("smoke", 0, "run N smoke jobs and exit instead of serving")
		traceDir    = flag.String("trace-dir", "", "write a Chrome trace JSON per job into this directory")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *gpus, *workers, *queue, *constraints, *listen, *timeout, *smoke, *traceDir, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "provd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, gpus, workers, queue, constraints int, listen string, timeout time.Duration, smoke int, traceDir string, pprofOn bool) error {
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		return err
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return err
		}
	}
	metrics := telemetry.NewRegistry()
	svc, err := service.New(service.Config{
		Cluster:        cl,
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: timeout,
		Metrics:        metrics,
		TraceDir:       traceDir,
	})
	if err != nil {
		return err
	}
	if err := svc.RegisterSynthetic(ctx, "synthetic", constraints); err != nil {
		return err
	}
	fmt.Printf("provd: %d simulated %s GPUs, %d workers, circuit %q (%d constraints)\n",
		gpus, cl.Dev.Name, svc.Workers(), "synthetic", constraints)
	if traceDir != "" {
		fmt.Printf("provd: writing per-job Chrome traces to %s\n", traceDir)
	}

	if smoke > 0 {
		return runSmoke(ctx, svc, smoke)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Println("provd: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("provd: listening on %s\n", listen)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("provd: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = srv.Shutdown(shCtx)
	return svc.Shutdown(shCtx)
}

// runSmoke pushes n jobs through the service and verifies every proof
// arrived (the service verifies each proof itself before returning it).
func runSmoke(ctx context.Context, svc *service.Service, n int) error {
	start := time.Now()
	jobs := make([]*service.Job, 0, n)
	for i := 0; i < n; i++ {
		job, err := svc.Submit(service.Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			// Admission rejection is expected when n exceeds the queue:
			// back off like a client would.
			var qe *service.QueueFullError
			if errors.As(err, &qe) {
				time.Sleep(qe.RetryAfter)
				i--
				continue
			}
			return err
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(ctx); err != nil {
			return fmt.Errorf("job %d: %w", job.ID, err)
		}
		fmt.Printf("provd: job %d (seed %d) proved and verified\n", job.ID, job.Seed)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(shCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := svc.Stats()
	fmt.Printf("provd: smoke ok — %d completed, %d rejected, %v total\n",
		st.Completed, st.Rejected, time.Since(start).Round(time.Millisecond))
	if st.Completed != uint64(len(jobs)) {
		return fmt.Errorf("completed %d of %d jobs", st.Completed, len(jobs))
	}
	return nil
}
