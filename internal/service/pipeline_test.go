package service

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"distmsm/internal/telemetry"
)

// TestPhaseDevicePools pins the sub-pool partition the pipelined prover
// hands its concurrent G1 phases: below four GPUs every phase shares
// the whole cluster (nil pools); at four and above the pools are
// non-empty, disjoint, and cover every device exactly once.
func TestPhaseDevicePools(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		for i, p := range phaseDevicePools(n) {
			if p != nil {
				t.Errorf("n=%d: phase %d got pool %v, want nil (whole cluster)", n, i, p)
			}
		}
	}
	for _, n := range []int{4, 5, 8, 13} {
		seen := map[int]bool{}
		total := 0
		for i, p := range phaseDevicePools(n) {
			if len(p) == 0 {
				t.Fatalf("n=%d: phase %d got an empty pool", n, i)
			}
			for _, g := range p {
				if g < 0 || g >= n {
					t.Fatalf("n=%d: phase %d pool holds out-of-range device %d", n, i, g)
				}
				if seen[g] {
					t.Fatalf("n=%d: device %d appears in two phase pools", n, g)
				}
				seen[g] = true
			}
			total += len(p)
		}
		if total != n {
			t.Fatalf("n=%d: pools cover %d devices, want all %d", n, total, n)
		}
	}
}

// TestServicePipelinedProveParity: the ProvePipelined knob changes the
// schedule, not the proof — a pipelined service and a sequential service
// produce byte-identical proofs for the same job seed — and the
// per-phase latency histograms are exposed on /metrics.
func TestServicePipelinedProveParity(t *testing.T) {
	defer leakCheck(t)()
	reg := telemetry.NewRegistry()
	pip := newTestService(t, 8, 64, func(cfg *Config) {
		cfg.ProvePipelined = true
		cfg.Metrics = reg
	})
	defer shutdownClean(t, pip)
	seq := newTestService(t, 8, 64, nil)
	defer shutdownClean(t, seq)

	var proofs [2][]byte
	for i, svc := range []*Service{pip, seq} {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		proof, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		proofs[i] = svc.Engine().MarshalProof(proof)
	}
	if !bytes.Equal(proofs[0], proofs[1]) {
		t.Fatal("pipelined service proof differs from the sequential service's bytes")
	}

	srv := httptest.NewServer(pip.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, phase := range provePhases {
		want := `distmsm_prove_phase_seconds_count{phase="` + phase + `"} 1`
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
