//go:build race

package service

// timingScale under the race detector: instrumentation slows the
// CPU-bound prover ~6x on a single-core host, so timing-sensitive
// deadlines stretch by the same factor — the FIFO-side margins scale
// with the prover, keeping both halves of the starvation test
// deterministic.
const timingScale = 6
