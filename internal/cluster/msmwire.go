package cluster

import (
	"encoding/hex"
	"fmt"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/serial"
)

// This file is the wire format of the outsourced-MSM dispatch surface:
// the coordinator shards one large MSM across worker nodes and accepts
// each shard's claim only after the constant-size check of
// internal/outsource. A shard travels as explicit scalars plus a
// (curve, point_seed, range) triple the worker derives its base points
// from — the bases are deterministic public data, only the scalars need
// shipping.
//
// Framing indistinguishability: the coordinator dispatches a shard's
// real instance and its secret challenge instance as two structurally
// identical messages — same curve, same point seed, same range, same
// scalar_bits (the challenge width, to which real scalars are padded).
// A worker cannot tell from the frame which instance it is grading
// itself on; only the scalar values differ, and those look uniform.

// Wire bounds of the MSM surface.
const (
	// MaxMSMShard bounds one dispatch's point range — a shard, not the
	// whole MSM; the coordinator splits larger instances.
	MaxMSMShard = 1 << 16
	// MaxMSMScalarBits bounds the declared scalar width. Challenge
	// scalars run ~λ bits past the curve's scalar field, so the bound
	// leaves headroom above every supported curve (MNT4753 is 753-bit).
	MaxMSMScalarBits = 1024
	// MaxMSMBody caps an MSM dispatch-request body: MaxMSMShard scalars
	// of MaxMSMScalarBits, hex-encoded, plus JSON framing.
	MaxMSMBody = MaxMSMShard*(MaxMSMScalarBits/8)*2 + 1<<12
)

// MSMDispatchRequest is one MSM shard sent coordinator → worker: compute
// Σ k_i · P_i over the bases P_i = SamplePoints(curve, point_seed)
// [range_lo, range_hi) with the explicit scalars k, and return the sum.
type MSMDispatchRequest struct {
	JobID     uint64 `json:"job_id"`
	Curve     string `json:"curve"`
	PointSeed uint64 `json:"point_seed"`
	RangeLo   int    `json:"range_lo"`
	RangeHi   int    `json:"range_hi"`
	// ScalarBits is the fixed width every scalar in the blob is padded
	// to. Real and challenge instances of one shard declare the same
	// width (the challenge width), so the two frames are identical.
	ScalarBits int `json:"scalar_bits"`
	// Scalars is the hex of (range_hi-range_lo) big-endian fixed-width
	// scalars, concatenated.
	Scalars   string `json:"scalars"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// Timeout converts the wire deadline.
func (r MSMDispatchRequest) Timeout() time.Duration {
	return time.Duration(r.TimeoutMS) * time.Millisecond
}

// DecodeScalars decodes the scalar blob into the shard's scalar vector.
func (r MSMDispatchRequest) DecodeScalars() ([]bigint.Nat, error) {
	blob, err := hex.DecodeString(r.Scalars)
	if err != nil {
		return nil, fmt.Errorf("%w: scalars not hex: %v", ErrBadMessage, err)
	}
	n := r.RangeHi - r.RangeLo
	size := (r.ScalarBits + 7) / 8
	if len(blob) != n*size {
		return nil, fmt.Errorf("%w: scalar blob of %d bytes, want %d×%d", ErrBadMessage, len(blob), n, size)
	}
	out := make([]bigint.Nat, n)
	for i := 0; i < n; i++ {
		k, err := serial.UnmarshalScalar(blob[i*size:(i+1)*size], r.ScalarBits)
		if err != nil {
			return nil, fmt.Errorf("%w: scalar %d: %v", ErrBadMessage, i, err)
		}
		out[i] = k
	}
	return out, nil
}

// EncodeMSMScalars builds the wire blob: every scalar padded to the
// shard's uniform width.
func EncodeMSMScalars(scalars []bigint.Nat, scalarBits int) string {
	size := (scalarBits + 7) / 8
	blob := make([]byte, 0, len(scalars)*size)
	for _, k := range scalars {
		blob = append(blob, serial.MarshalScalar(k, scalarBits)...)
	}
	return hex.EncodeToString(blob)
}

// MSMDispatchResponse is the worker's answer: the shard sum as an
// uncompressed serial point in hex, or a terminal error string.
type MSMDispatchResponse struct {
	JobID  uint64 `json:"job_id"`
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// MSMRequest is the coordinator's client-facing MSM job: n points from
// the deterministic sample chain, n scalars from the scalar seed, split
// into shards across the fleet. The witness-seed pattern of /v1/prove —
// the instance is named, not shipped.
type MSMRequest struct {
	Curve      string
	PointSeed  uint64
	ScalarSeed int64
	N          int
	// Timeout is the end-to-end deadline; 0 uses the coordinator
	// default.
	Timeout time.Duration
}

// msmRequestWire is the POST /v1/msm body (coordinator, client-facing).
type msmRequestWire struct {
	Curve      string `json:"curve"`
	PointSeed  uint64 `json:"point_seed"`
	ScalarSeed int64  `json:"scalar_seed"`
	N          int    `json:"n"`
	TimeoutMS  int64  `json:"timeout_ms,omitempty"`
}

// MaxMSMPoints bounds a client-facing MSM instance; the coordinator
// shards it into at most ceil(N / MaxMSMShard)·2 dispatches.
const MaxMSMPoints = 1 << 20

func validateCurveName(name string) error {
	if _, err := curve.ByName(name); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return nil
}

// ParseMSMDispatchRequest decodes and validates one MSM shard dispatch.
// Strict and panic-free on any input (FuzzOutsourceWire holds it to
// that); the scalar blob's hex is validated for exact size here but
// decoded lazily by DecodeScalars.
func ParseMSMDispatchRequest(body []byte) (MSMDispatchRequest, error) {
	var w MSMDispatchRequest
	if err := unmarshalWireCapped(body, MaxMSMBody, &w); err != nil {
		return MSMDispatchRequest{}, err
	}
	if err := validateCurveName(w.Curve); err != nil {
		return MSMDispatchRequest{}, err
	}
	if w.RangeLo < 0 || w.RangeHi <= w.RangeLo {
		return MSMDispatchRequest{}, fmt.Errorf("%w: bad range [%d, %d)", ErrBadMessage, w.RangeLo, w.RangeHi)
	}
	n := w.RangeHi - w.RangeLo
	if n > MaxMSMShard {
		return MSMDispatchRequest{}, fmt.Errorf("%w: shard of %d points above the %d cap", ErrBadMessage, n, MaxMSMShard)
	}
	if w.ScalarBits < 1 || w.ScalarBits > MaxMSMScalarBits {
		return MSMDispatchRequest{}, fmt.Errorf("%w: scalar_bits %d outside [1, %d]", ErrBadMessage, w.ScalarBits, MaxMSMScalarBits)
	}
	if want := n * ((w.ScalarBits + 7) / 8) * 2; len(w.Scalars) != want {
		return MSMDispatchRequest{}, fmt.Errorf("%w: scalar hex of %d chars, want %d", ErrBadMessage, len(w.Scalars), want)
	}
	if w.TimeoutMS < 0 {
		return MSMDispatchRequest{}, fmt.Errorf("%w: negative timeout_ms", ErrBadMessage)
	}
	if w.Timeout() > MaxDispatchTimeout {
		return MSMDispatchRequest{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadMessage, MaxDispatchTimeout)
	}
	return w, nil
}

// ParseMSMDispatchResponse decodes and validates a worker's MSM answer,
// returning the decoded result-point bytes on success. Like dispatch
// responses, carrying both a result and an error — or neither — is
// malformed. The point bytes are NOT decoded onto the curve here; the
// coordinator does that against the declared curve (junk that is not a
// curve point is rejected there, and counted as a corrupt response).
func ParseMSMDispatchResponse(body []byte) (MSMDispatchResponse, []byte, error) {
	var w MSMDispatchResponse
	if err := unmarshalWire(body, &w); err != nil {
		return MSMDispatchResponse{}, nil, err
	}
	if w.Error != "" {
		if w.Result != "" {
			return MSMDispatchResponse{}, nil, fmt.Errorf("%w: response carries both result and error", ErrBadMessage)
		}
		return w, nil, nil
	}
	if w.Result == "" {
		return MSMDispatchResponse{}, nil, fmt.Errorf("%w: response carries neither result nor error", ErrBadMessage)
	}
	result, err := hex.DecodeString(w.Result)
	if err != nil {
		return MSMDispatchResponse{}, nil, fmt.Errorf("%w: result is not hex: %v", ErrBadMessage, err)
	}
	return w, result, nil
}

// ParseMSMRequest decodes and validates a client-facing MSM job.
func ParseMSMRequest(body []byte) (MSMRequest, error) {
	var w msmRequestWire
	if err := unmarshalWire(body, &w); err != nil {
		return MSMRequest{}, err
	}
	if err := validateCurveName(w.Curve); err != nil {
		return MSMRequest{}, err
	}
	if w.N < 1 || w.N > MaxMSMPoints {
		return MSMRequest{}, fmt.Errorf("%w: n %d outside [1, %d]", ErrBadMessage, w.N, MaxMSMPoints)
	}
	if w.TimeoutMS < 0 {
		return MSMRequest{}, fmt.Errorf("%w: negative timeout_ms", ErrBadMessage)
	}
	timeout := time.Duration(w.TimeoutMS) * time.Millisecond
	if timeout > MaxDispatchTimeout {
		return MSMRequest{}, fmt.Errorf("%w: timeout_ms above the %v cap", ErrBadMessage, MaxDispatchTimeout)
	}
	return MSMRequest{Curve: w.Curve, PointSeed: w.PointSeed, ScalarSeed: w.ScalarSeed, N: w.N, Timeout: timeout}, nil
}
