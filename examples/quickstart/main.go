// Quickstart: compute a multi-scalar multiplication on a simulated
// 8-GPU system with DistMSM, verify it against the CPU Pippenger
// implementation, and print the modeled execution cost.
package main

import (
	"context"
	"fmt"
	"log"

	"distmsm"
)

func main() {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		log.Fatal(err)
	}

	// A 4096-term MSM: fixed points (the SNARK proving key in practice)
	// and per-proof scalars.
	const n = 1 << 12
	points := c.SamplePoints(n, 1)
	scalars := c.SampleScalars(n, 2)

	sys, err := distmsm.NewSystem(distmsm.A100, 8)
	if err != nil {
		log.Fatal(err)
	}
	// The concurrent per-GPU engine is the default; the context makes
	// the execution cancellable at every shard boundary.
	res, err := sys.MSMContext(context.Background(), c, points, scalars,
		distmsm.WithEngine(distmsm.EngineConcurrent))
	if err != nil {
		log.Fatal(err)
	}

	// Cross-check against the host implementation.
	want, err := distmsm.CPUMSM(c, points, scalars)
	if err != nil {
		log.Fatal(err)
	}
	if !c.EqualXYZZ(res.Point, want) {
		log.Fatal("mismatch between DistMSM and CPU Pippenger")
	}

	fmt.Printf("MSM over %d points on %d x %s\n", n, sys.GPUs(), sys.DeviceName())
	fmt.Printf("result: %s\n", c.ToAffine(res.Point))
	fmt.Printf("plan: window=%d buckets=%d hierarchical-scatter=%v cpu-reduce=%v\n",
		res.Plan.S, res.Plan.Buckets, res.Plan.Hierarchical, !res.Plan.ReduceOnGPU)
	fmt.Printf("modeled time: %.3f ms (scatter %.3f, bucket-sum %.3f, reduce %.3f)\n",
		res.Cost.Total()*1e3, res.Cost.Scatter*1e3, res.Cost.BucketSum*1e3, res.Cost.BucketReduce*1e3)
	for _, g := range res.Stats.PerGPU {
		fmt.Printf("  gpu %d: %d shards, %d bucket-accumulate ops\n", g.GPU, g.Shards, g.PACCOps)
	}
	fmt.Println("verified against CPU Pippenger ✓")
}
