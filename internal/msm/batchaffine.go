package msm

import (
	"fmt"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
)

// Batch-affine bucket accumulation: points are added into buckets
// entirely in affine coordinates, amortising the modular inversion of
// the affine-addition slope across many buckets with Montgomery's
// batch-inversion trick — the "cheap affine additions" technique of the
// ZPrize single-GPU winners (§6: "lazy Montgomery reduction,
// precomputation, ..."). An affine addition costs 1M + 1S + (amortised)
// ~3M for the inversion versus the 10M of the XYZZ PACC, at the price of
// a scheduling constraint: each bucket can absorb at most one point per
// round.

// pendingRef is one queued insertion: point `idx` (negated when neg)
// into bucket `bucket`.
type pendingRef struct {
	bucket int32
	idx    int32
	neg    bool
}

// BatchAffineAccumulator owns every buffer the batch-affine bucket sum
// needs — the bucket array and its coordinate arena, the insertion
// queues, the per-round slope denominators and the batch-inversion
// scratch — so that after the first (warm-up) call a window is
// accumulated with zero heap allocations. Not safe for concurrent use;
// give each worker its own.
type BatchAffineAccumulator struct {
	c        *curve.Curve
	f        *field.Field
	nBuckets int

	buckets []curve.PointAffine // X/Y backed by arena
	arena   []uint64

	queue, next []pendingRef
	stamp       []int32 // stamp[b] == round ⇒ bucket b already took a point
	round       int32

	denoms   []field.Element // backed by denArena, one slot per bucket
	denArena []uint64
	ops      []pendingRef

	inverter *field.BatchInverter
	adder    *curve.Adder // fallback for doubling / cancellation edges

	lam, t, x3, y3, negY field.Element
	tmp                  *curve.PointXYZZ
}

// NewBatchAffineAccumulator returns an accumulator for nBuckets buckets
// on curve c.
func NewBatchAffineAccumulator(c *curve.Curve, nBuckets int) *BatchAffineAccumulator {
	f := c.Fp
	w := f.Width()
	b := &BatchAffineAccumulator{
		c:        c,
		f:        f,
		nBuckets: nBuckets,
		arena:    make([]uint64, 2*nBuckets*w),
		buckets:  make([]curve.PointAffine, nBuckets),
		stamp:    make([]int32, nBuckets),
		denoms:   make([]field.Element, 0, nBuckets),
		denArena: make([]uint64, nBuckets*w),
		ops:      make([]pendingRef, 0, nBuckets),
		inverter: f.NewBatchInverter(nBuckets),
		adder:    c.NewAdder(),
		lam:      f.NewElement(),
		t:        f.NewElement(),
		x3:       f.NewElement(),
		y3:       f.NewElement(),
		negY:     f.NewElement(),
		tmp:      c.NewXYZZ(),
	}
	for i := range b.buckets {
		base := b.arena[2*i*w:]
		b.buckets[i] = curve.PointAffine{
			X:   field.Element(base[0:w]),
			Y:   field.Element(base[w : 2*w]),
			Inf: true,
		}
	}
	return b
}

// Sum accumulates points into buckets according to digits (windowSum
// convention: 0 = skip, negative = negated point) and returns the bucket
// array in affine form. The returned slice and its coordinate storage
// are owned by the accumulator and are valid until the next Sum call.
func (b *BatchAffineAccumulator) Sum(points []curve.PointAffine, digits []int32) []curve.PointAffine {
	f := b.f
	for i := range b.buckets {
		b.buckets[i].Inf = true
	}
	b.queue = b.queue[:0]
	for i := range points {
		d := digits[i]
		if d == 0 || points[i].Inf {
			continue
		}
		neg := d < 0
		if neg {
			d = -d
		}
		b.queue = append(b.queue, pendingRef{bucket: d, idx: int32(i), neg: neg})
	}

	for len(b.queue) > 0 {
		// One round: pick at most one insertion per bucket.
		b.round++
		b.next = b.next[:0]
		b.denoms = b.denoms[:0]
		b.ops = b.ops[:0]
		w := f.Width()
		for _, p := range b.queue {
			if b.stamp[p.bucket] == b.round {
				b.next = append(b.next, p)
				continue
			}
			b.stamp[p.bucket] = b.round
			acc := &b.buckets[p.bucket]
			pt := &points[p.idx]
			if acc.Inf {
				// First insertion: plain copy into the arena-backed slot.
				acc.X.Set(pt.X)
				if p.neg {
					f.Neg(acc.Y, pt.Y)
				} else {
					acc.Y.Set(pt.Y)
				}
				acc.Inf = false
				continue
			}
			if acc.X.Equal(pt.X) {
				// Doubling or cancellation: route through the XYZZ adder
				// (rare; keeps the batch path simple and correct).
				b.edgeInsert(acc, pt, p.neg)
				continue
			}
			den := field.Element(b.denArena[len(b.denoms)*w : (len(b.denoms)+1)*w])
			f.Sub(den, pt.X, acc.X)
			b.denoms = append(b.denoms, den)
			b.ops = append(b.ops, p)
		}
		// Batch invert all slopes' denominators at once.
		b.inverter.Invert(b.denoms)
		for i, p := range b.ops {
			acc := &b.buckets[p.bucket]
			pt := &points[p.idx]
			// λ = (±y2 − y1)·(x2 − x1)⁻¹
			if p.neg {
				f.Add(b.t, pt.Y, acc.Y)
				f.Neg(b.t, b.t)
			} else {
				f.Sub(b.t, pt.Y, acc.Y)
			}
			f.Mul(b.lam, b.t, b.denoms[i])
			// x3 = λ² − x1 − x2 ; y3 = λ(x1 − x3) − y1
			f.Square(b.x3, b.lam)
			f.Sub(b.x3, b.x3, acc.X)
			f.Sub(b.x3, b.x3, pt.X)
			f.Sub(b.t, acc.X, b.x3)
			f.Mul(b.y3, b.lam, b.t)
			f.Sub(b.y3, b.y3, acc.Y)
			acc.X.Set(b.x3)
			acc.Y.Set(b.y3)
		}
		b.queue, b.next = b.next, b.queue
	}
	return b.buckets
}

// edgeInsert handles the equal-x edge (doubling or cancellation) through
// the XYZZ adder. It may allocate (via ToAffine's inversions); the edge
// needs two insertions of the same x-coordinate into one bucket, which
// random MSM inputs essentially never produce.
func (b *BatchAffineAccumulator) edgeInsert(acc *curve.PointAffine, pt *curve.PointAffine, neg bool) {
	f := b.f
	in := *pt
	if neg {
		f.Neg(b.negY, pt.Y)
		in = curve.PointAffine{X: pt.X, Y: b.negY}
	}
	b.c.SetAffine(b.tmp, acc)
	b.adder.Acc(b.tmp, &in)
	out := b.c.ToAffine(b.tmp)
	if out.Inf {
		acc.Inf = true
		return
	}
	acc.X.Set(out.X)
	acc.Y.Set(out.Y)
	acc.Inf = false
}

// BatchAffineSum accumulates points into nBuckets buckets with a fresh
// accumulator (one-shot form; hot paths should hold a
// BatchAffineAccumulator and call Sum to reuse its pools). digits follow
// the windowSum convention (0 = skip, negative = negated point).
func BatchAffineSum(c *curve.Curve, points []curve.PointAffine, digits []int32, nBuckets int) []curve.PointAffine {
	return NewBatchAffineAccumulator(c, nBuckets).Sum(points, digits)
}

// BatchAffineMSM is a full MSM built on the batch-affine bucket
// accumulation (serial windows; a reference for the ablation benchmark).
// One accumulator is reused across all windows.
func BatchAffineMSM(c *curve.Curve, points []curve.PointAffine, scalars []bigint.Nat, cfg Config) (*curve.PointXYZZ, error) {
	if len(points) != len(scalars) {
		return nil, fmt.Errorf("msm: %d points but %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return c.NewXYZZ(), nil
	}
	cfg = cfg.resolve(len(points))
	digits := digitsMatrix(c, scalars, cfg)
	nBuckets := 1 << cfg.WindowSize
	if cfg.Signed {
		nBuckets = 1<<(cfg.WindowSize-1) + 1
	}
	a := c.NewAdder()
	accum := NewBatchAffineAccumulator(c, nBuckets)
	windows := make([]*curve.PointXYZZ, len(digits))
	for j := range digits {
		buckets := accum.Sum(points, digits[j])
		running := c.NewXYZZ()
		total := c.NewXYZZ()
		for b := nBuckets - 1; b >= 1; b-- {
			if !buckets[b].Inf {
				a.Acc(running, &buckets[b])
			}
			a.Add(total, running)
		}
		windows[j] = total
	}
	return reduceWindows(c, windows, cfg.WindowSize, a), nil
}
