package r1cs

import (
	"testing"

	"distmsm/internal/curve"
	"distmsm/internal/field"
)

func frField(t testing.TB) *field.Field {
	t.Helper()
	c, err := curve.ByName("BN254")
	if err != nil {
		t.Fatal(err)
	}
	return c.ScalarField
}

func TestProductCircuit(t *testing.T) {
	f := frField(t)
	cs, aIdx, bIdx := BuildProduct(f)
	if cs.NPublic != 1 {
		t.Fatalf("NPublic = %d", cs.NPublic)
	}
	a := f.FromUint64(17)
	b := f.FromUint64(19)
	w, err := WitnessProduct(cs, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Satisfied(w); err != nil {
		t.Fatal(err)
	}
	if !w[aIdx].Equal(a) || !w[bIdx].Equal(b) {
		t.Fatal("witness slots wrong")
	}
	// A factor of one must be rejected (the circuit forbids trivial
	// factorisations).
	if _, err := WitnessProduct(cs, f.One(), b); err == nil {
		t.Fatal("factor 1 should be rejected")
	}
	// A corrupted witness fails.
	w[1] = f.FromUint64(999)
	if err := cs.Satisfied(w); err == nil {
		t.Fatal("corrupted witness accepted")
	}
}

func TestSatisfiedValidation(t *testing.T) {
	f := frField(t)
	cs, _, _ := BuildProduct(f)
	if err := cs.Satisfied(make([]field.Element, 2)); err == nil {
		t.Fatal("short witness accepted")
	}
	w := cs.NewWitness()
	w[0] = f.Zero()
	if err := cs.Satisfied(w); err == nil {
		t.Fatal("witness without constant one accepted")
	}
}

func TestSyntheticCircuit(t *testing.T) {
	f := frField(t)
	for _, n := range []int{1, 5, 100, 1000} {
		cs, w := BuildSynthetic(f, n, 42)
		if len(cs.Constraints) != n+1 {
			t.Fatalf("n=%d: %d constraints", n, len(cs.Constraints))
		}
		if err := cs.Satisfied(w); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	// Deterministic for a fixed seed.
	_, w1 := BuildSynthetic(f, 10, 7)
	_, w2 := BuildSynthetic(f, 10, 7)
	for i := range w1 {
		if !w1[i].Equal(w2[i]) {
			t.Fatal("synthetic circuit not deterministic")
		}
	}
}

func TestEvalLC(t *testing.T) {
	f := frField(t)
	s := New(f, 0)
	x := s.AllocVar()
	w := s.NewWitness()
	w[x] = f.FromUint64(3)
	lc := LC{{0, f.FromUint64(10)}, {x, f.FromUint64(4)}}
	got := s.EvalLC(lc, w)
	if !got.Equal(f.FromUint64(22)) {
		t.Fatalf("EvalLC = %v", f.ToBig(got))
	}
}
