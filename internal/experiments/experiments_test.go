package experiments

import (
	"strings"
	"testing"
)

func TestRunAllByName(t *testing.T) {
	for _, n := range Names() {
		out, err := Run(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short report", n)
		}
	}
	if _, err := Run("table99"); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestTable1Content(t *testing.T) {
	out, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BN254", "254", "MNT4753", "753", "BLS12-381", "381"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

// Table 3's headline claims: DistMSM wins every multi-GPU cell except the
// BLS12-377 rows where Yrrid leads at low GPU counts; the average
// multi-GPU speedup is in the paper's single-digit band; speedups on
// MNT4753 are the largest.
func TestTable3Shape(t *testing.T) {
	cells, err := Table3Cells(Table3Config{Sizes: []int{22, 26}, GPUs: []int{1, 8, 16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	var sum, cnt float64
	var mntMin = 1e9
	for _, c := range cells {
		if c.GPUs == 1 {
			continue
		}
		sp := c.Speedup()
		sum += sp
		cnt++
		if c.Curve == "MNT4753" && sp < mntMin {
			mntMin = sp
		}
		if c.Curve != "BLS12-377" && sp <= 1 {
			t.Errorf("%s logN=%d g=%d: DistMSM lost (%.2fx)", c.Curve, c.LogN, c.GPUs, sp)
		}
	}
	avg := sum / cnt
	if avg < 3 || avg > 15 {
		t.Errorf("average multi-GPU speedup %.2fx outside the plausible band around the paper's 6.39x", avg)
	}
	if mntMin < 8 {
		t.Errorf("minimum MNT4753 multi-GPU speedup %.1fx below the paper's 10-20x regime", mntMin)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 workloads, got %d", len(rows))
	}
	for _, r := range rows {
		sp := r.LibsnarkSec / r.DistMSMSec
		if sp < 18 || sp > 35 {
			t.Errorf("%s: end-to-end speedup %.1fx outside the paper's ~25x band", r.Workload.Name, sp)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	series, err := Fig8Data(DefaultFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range series {
		byName[s.Name] = s.Speedups
	}
	dist := byName["DistMSM"]
	if dist == nil {
		t.Fatal("missing DistMSM series")
	}
	last := len(dist) - 1
	// Near-linear DistMSM scaling at 32 GPUs; every baseline scales worse.
	if dist[last] < 16 {
		t.Errorf("DistMSM 32-GPU scaling %.1fx not near-linear", dist[last])
	}
	for name, sp := range byName {
		if name == "DistMSM" {
			continue
		}
		if sp[last] >= dist[last] {
			t.Errorf("%s out-scales DistMSM (%.1fx >= %.1fx)", name, sp[last], dist[last])
		}
	}
	// Yrrid and Sppark (single-GPU champions) scale worst (§5.1).
	if byName["Yrrid"][last] > byName["cuZK"][last] {
		t.Error("Yrrid should scale worse than cuZK")
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9Data()
	if err != nil {
		t.Fatal(err)
	}
	byDev := map[string]Fig9Row{}
	for _, r := range rows {
		byDev[r.Device] = r
	}
	a100, rtx, amd := byDev["NVIDIA A100"], byDev["NVIDIA RTX4090"], byDev["AMD 6900XT"]
	// DistMSM beats Bellperson everywhere; the gap is smaller on AMD.
	for _, r := range rows {
		if r.DistMSM >= r.Bellperson {
			t.Errorf("%s: DistMSM (%.3g) not faster than Bellperson (%.3g)", r.Device, r.DistMSM, r.Bellperson)
		}
	}
	nvRatio := a100.Bellperson / a100.DistMSM
	amdRatio := amd.Bellperson / amd.DistMSM
	if amdRatio >= nvRatio {
		t.Errorf("AMD speedup %.1fx should be below the NVIDIA %.1fx (paper: 9.4 vs 16.5)", amdRatio, nvRatio)
	}
	// Both run faster on the RTX4090 than the A100, and DistMSM gains more
	// (its compute-bound kernels track the 2.12x int throughput).
	if rtx.DistMSM >= a100.DistMSM || rtx.Bellperson >= a100.Bellperson {
		t.Error("RTX4090 should beat A100 for both implementations")
	}
	distGain := a100.DistMSM / rtx.DistMSM
	bellGain := a100.Bellperson / rtx.Bellperson
	if distGain <= bellGain {
		t.Errorf("DistMSM's RTX4090 gain %.2fx should exceed Bellperson's %.2fx", distGain, bellGain)
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10Data(26)
	if err != nil {
		t.Fatal(err)
	}
	var prevAlg float64
	for i, r := range rows {
		alg := r.NoOpt / r.AlgOnly
		kern := r.NoOpt / r.KernelOnly
		obs := r.NoOpt / r.Full
		// Multi-GPU algorithm gains grow with GPU count.
		if i > 0 && alg < prevAlg*0.95 {
			t.Errorf("g=%d: algorithm speedup fell (%.2f -> %.2f)", r.GPUs, prevAlg, alg)
		}
		prevAlg = alg
		if r.GPUs >= 8 {
			// Synergy (§5.3.1): observed exceeds the product of parts.
			if obs <= alg*kern*0.95 {
				t.Errorf("g=%d: no synergy (observed %.2f vs product %.2f)", r.GPUs, obs, alg*kern)
			}
		}
	}
	// PADD-kernel benefit shrinks as GPUs are added under NO-OPT.
	first := rows[0].NoOpt / rows[0].KernelOnly
	lastRow := rows[len(rows)-1]
	lastKern := lastRow.NoOpt / lastRow.KernelOnly
	if lastKern >= first {
		t.Errorf("kernel-only speedup should shrink with GPUs (%.2f -> %.2f)", first, lastKern)
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11Data()
	if err != nil {
		t.Fatal(err)
	}
	var prevRatio float64 = 1e9
	for _, r := range rows {
		if r.S > 14 {
			if r.Hierarchical >= 0 {
				t.Errorf("s=%d: hierarchical should fail (shared memory)", r.S)
			}
			continue
		}
		if r.Hierarchical < 0 {
			t.Errorf("s=%d: hierarchical unexpectedly failed", r.S)
			continue
		}
		ratio := r.Naive / r.Hierarchical
		if ratio <= 1 {
			t.Errorf("s=%d: hierarchical not faster (%.2fx)", r.S, ratio)
		}
		// The advantage grows as s shrinks (paper: 6.7x at s=11, 18.3x at s=9).
		if ratio > prevRatio*1.05 {
			t.Errorf("s=%d: advantage should shrink with larger s", r.S)
		}
		if r.S == 11 && (ratio < 3 || ratio > 14) {
			t.Errorf("s=11 advantage %.1fx far from the paper's 6.7x", ratio)
		}
		prevRatio = ratio
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12Data()
	if err != nil {
		t.Fatal(err)
	}
	byCurve := map[string][]float64{}
	for _, r := range rows {
		byCurve[r.Curve] = r.Speedups
	}
	for name, sp := range byCurve {
		if len(sp) != 6 {
			t.Fatalf("%s: %d variants", name, len(sp))
		}
		// PACC is the largest single step (§5.3.3).
		if sp[1] < 1.3 {
			t.Errorf("%s: PADD→PACC speedup %.2fx too small", name, sp[1])
		}
		// Naive tensor-core use regresses from the spill level; compaction
		// recovers it (except on MNT4753, where fragments worsen pressure).
		if sp[4] >= sp[3] {
			t.Errorf("%s: naive TC should regress from spill (%.2f vs %.2f)", name, sp[4], sp[3])
		}
		if name != "MNT4753" && sp[5] <= sp[3] {
			t.Errorf("%s: compacted TC should beat spill (%.2f vs %.2f)", name, sp[5], sp[3])
		}
		if name == "MNT4753" && sp[5] >= sp[3] {
			t.Errorf("MNT4753: compacted TC should stay below spill (register pressure)")
		}
	}
	// The register-pressure work pays off most on MNT4753 (§5.3.3:
	// 1.94x overall vs 1.61x for the narrow curves).
	if byCurve["MNT4753"][3] <= byCurve["BN254"][3] {
		t.Error("MNT4753 should gain more from pressure optimisations than BN254")
	}
}

func TestFig3Report(t *testing.T) {
	out, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal s for  1 GPU(s): 20") {
		t.Errorf("Figure 3 should report the paper's single-GPU optimum of 20:\n%s", out)
	}
}
