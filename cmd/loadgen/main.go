// Command loadgen is an open-loop load generator for the proving
// service: it fires POST /v1/prove requests at a configured Poisson
// arrival rate over a weighted circuit mix and reports per-circuit
// end-to-end latency quantiles (p50/p99/p999) plus reject, timeout and
// deadline-miss rates. Open-loop means arrivals never wait for
// responses — the generator models independent clients, so queueing
// delay shows up as measured latency instead of silently throttling
// the offered load (closed-loop generators hide exactly the tail this
// tool exists to measure).
//
// By default loadgen self-hosts a service in-process on a loopback
// listener, so one command measures a full policy configuration:
//
//	loadgen -rate 6 -duration 20s \
//	    -mix 'interactive:1:1500:64,batch:4:8000:160' \
//	    -queue-policy edf -circuit-quota 0.75 -shed
//
// Point it at a running provd or coordinator instead with -target
// (both serve /v1/prove); the policy and fault flags then have no
// effect — they configure the self-hosted server only.
//
// Determinism: one seed drives the arrival process, the circuit
// choices and the per-job witness seeds, so a scenario replays the
// same offered load every run. Fault injection composes via the
// -fault-* flags (forwarded to internal/gpusim's deterministic
// injector).
//
// -bench runs the checked-in benchmark matrix (steady load at two
// rates, with and without injected faults, plus an adversarial
// flood+trickle mix under FIFO and under EDF+quota+shed), writes
// BENCH_pr9.json and enforces the tail floor: the tuned policy must
// cut the trickle circuit's p999 by at least 2x versus FIFO. -smoke is
// the CI entry point: a miniature adversarial pair that fails unless
// quantiles were recorded, nothing failed unexpectedly, and the EDF
// reorder and shed paths actually fired.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"distmsm/internal/gpusim"
	"distmsm/internal/service"
	"distmsm/internal/telemetry"
)

func main() {
	var (
		target   = flag.String("target", "", "base URL of a running provd/coordinator (default: self-host in-process)")
		mixSpec  = flag.String("mix", "synthetic:1:5000:96", "circuit mix: comma-separated name:weight:timeout_ms[:constraints]")
		rate     = flag.Float64("rate", 4, "offered load, jobs/second (Poisson arrivals)")
		duration = flag.Duration("duration", 15*time.Second, "generation window")
		seed     = flag.Int64("seed", 1, "load seed: arrivals, circuit choices and job seeds")
		out      = flag.String("out", "", "write the JSON report here (default stdout summary only)")
		bench    = flag.Bool("bench", false, "run the benchmark matrix and enforce the adversarial p999 floor")
		smoke    = flag.Bool("smoke", false, "run the CI smoke pair: asserts quantiles recorded, no unexpected failures, live shed/reorder paths")

		gpus    = flag.Int("gpus", 8, "self-host: simulated GPU count")
		workers = flag.Int("workers", 4, "self-host: proving workers")
		queue   = flag.Int("queue", 16, "self-host: queue depth")

		queuePolicy = flag.String("queue-policy", "edf", "self-host: pending-queue order, edf or fifo")
		quota       = flag.Float64("circuit-quota", 0, "self-host: per-circuit admission quota fraction (0 disables)")
		shed        = flag.Bool("shed", false, "self-host: shed doomed jobs")
		slack       = flag.Duration("coalesce-slack", 0, "self-host: EDF slack gate for circuit-affinity coalescing")

		fTransient = flag.Float64("fault-transient", 0, "self-host: per-shard transient fault probability")
		fStraggler = flag.Float64("fault-straggler", 0, "self-host: per-shard straggler probability")
		fCorrupt   = flag.Float64("fault-corrupt", 0, "self-host: per-shard corruption probability")
		fLost      = flag.Float64("fault-device-lost", 0, "self-host: per-shard device-loss probability")
		fSeed      = flag.Int64("fault-seed", 1, "self-host: fault-injection seed")
	)
	flag.Parse()
	if err := run(runOpts{
		target: *target, mixSpec: *mixSpec, rate: *rate, duration: *duration,
		seed: *seed, out: *out, bench: *bench, smoke: *smoke,
		srv: serverOpts{
			gpus: *gpus, workers: *workers, queue: *queue,
			policy: *queuePolicy, quota: *quota, shed: *shed, slack: *slack,
			faults: faultOpts{
				transient: *fTransient, straggler: *fStraggler,
				corrupt: *fCorrupt, lost: *fLost, seed: *fSeed,
			},
		},
	}); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type runOpts struct {
	target   string
	mixSpec  string
	rate     float64
	duration time.Duration
	seed     int64
	out      string
	bench    bool
	smoke    bool
	srv      serverOpts
}

// mixEntry is one circuit of the offered mix.
type mixEntry struct {
	Name        string  `json:"name"`
	Weight      float64 `json:"weight"`
	TimeoutMS   int64   `json:"timeout_ms"`
	Constraints int     `json:"constraints"`
}

// parseMix parses "name:weight:timeout_ms[:constraints]" entries.
func parseMix(spec string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) != 3 && len(f) != 4 {
			return nil, fmt.Errorf("mix entry %q: want name:weight:timeout_ms[:constraints]", part)
		}
		w, err := strconv.ParseFloat(f[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		tmo, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil || tmo <= 0 {
			return nil, fmt.Errorf("mix entry %q: bad timeout_ms", part)
		}
		e := mixEntry{Name: f[0], Weight: w, TimeoutMS: tmo, Constraints: 96}
		if len(f) == 4 {
			if e.Constraints, err = strconv.Atoi(f[3]); err != nil || e.Constraints <= 0 {
				return nil, fmt.Errorf("mix entry %q: bad constraints", part)
			}
		}
		mix = append(mix, e)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

type faultOpts struct {
	transient, straggler, corrupt, lost float64
	seed                                int64
}

func (f faultOpts) config() *gpusim.FaultConfig {
	if f.transient == 0 && f.straggler == 0 && f.corrupt == 0 && f.lost == 0 {
		return nil
	}
	return &gpusim.FaultConfig{
		Seed: f.seed, Transient: f.transient, Straggler: f.straggler,
		Corrupt: f.corrupt, DeviceLost: f.lost,
	}
}

type serverOpts struct {
	gpus, workers, queue int
	policy               string
	quota                float64
	shed                 bool
	slack                time.Duration
	faults               faultOpts
}

// startServer self-hosts a service on a loopback listener and returns
// its base URL plus a shutdown func.
func startServer(ctx context.Context, o serverOpts, mix []mixEntry) (string, func(), error) {
	cl, err := gpusim.NewCluster(gpusim.A100(), o.gpus)
	if err != nil {
		return "", nil, err
	}
	var policy service.QueuePolicy
	switch o.policy {
	case "edf", "":
		policy = service.QueueEDF
	case "fifo":
		policy = service.QueueFIFO
	default:
		return "", nil, fmt.Errorf("unknown queue policy %q", o.policy)
	}
	svc, err := service.New(service.Config{
		Cluster:        cl,
		Workers:        o.workers,
		QueueDepth:     o.queue,
		DefaultTimeout: time.Minute,
		Metrics:        telemetry.NewRegistry(),
		QueuePolicy:    policy,
		CircuitQuota:   o.quota,
		ShedDoomed:     o.shed,
		CoalesceSlack:  o.slack,
		Faults:         o.faults.config(),
	})
	if err != nil {
		return "", nil, err
	}
	registered := map[string]bool{}
	for _, e := range mix {
		if registered[e.Name] {
			continue
		}
		registered[e.Name] = true
		if err := svc.RegisterSynthetic(ctx, e.Name, e.Constraints); err != nil {
			return "", nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
		_ = svc.Shutdown(shCtx)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// circuitReport is the measured outcome of one circuit in one scenario.
type circuitReport struct {
	Sent          int     `json:"sent"`
	OK            int     `json:"ok"`
	Rejected      int     `json:"rejected"`
	QuotaRejected int     `json:"quota_rejected"`
	DeadlineMiss  int     `json:"deadline_miss"`
	Errors        int     `json:"errors"`
	MissRate      float64 `json:"miss_rate"` // deadline misses / admitted
	P50ms         float64 `json:"p50_ms"`
	P99ms         float64 `json:"p99_ms"`
	P999ms        float64 `json:"p999_ms"`
}

// serverStats is the subset of GET /v1/stats loadgen interprets.
type serverStats struct {
	Completed        uint64 `json:"Completed"`
	Rejected         uint64 `json:"Rejected"`
	Cancelled        uint64 `json:"Cancelled"`
	Failed           uint64 `json:"Failed"`
	BatchesCoalesced uint64 `json:"BatchesCoalesced"`
	QueueReorders    uint64 `json:"QueueReorders"`
	QuotaRejected    uint64 `json:"QuotaRejected"`
	ShedExpired      uint64 `json:"ShedExpired"`
	ShedDoomed       uint64 `json:"ShedDoomed"`
	ShedPhase        uint64 `json:"ShedPhase"`
	JobSeconds       *struct {
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
		P999  float64 `json:"p999"`
	} `json:"job_seconds"`
}

// scenarioReport is one scenario's full result.
type scenarioReport struct {
	Name        string                    `json:"name"`
	Target      string                    `json:"target"`
	RatePerSec  float64                   `json:"rate_per_sec"`
	DurationSec float64                   `json:"duration_sec"`
	Seed        int64                     `json:"seed"`
	Mix         []mixEntry                `json:"mix"`
	Policy      map[string]any            `json:"policy,omitempty"`
	Faults      map[string]any            `json:"faults,omitempty"`
	Circuits    map[string]*circuitReport `json:"circuits"`
	Overall     *circuitReport            `json:"overall"`
	ServerStats *serverStats              `json:"server_stats,omitempty"`
}

// circuitAgg accumulates one circuit's outcomes during a run. The
// histogram records end-to-end latency of ADMITTED jobs only (proofs
// and deadline misses); instant 429 rejects would drag the quantiles
// down and are reported as a rate instead.
type circuitAgg struct {
	mu   sync.Mutex
	rep  circuitReport
	hist *telemetry.Histogram
	// pooled, when set, receives every admitted-job latency too — the
	// scenario-wide histogram backing the "overall" quantiles.
	pooled *telemetry.Histogram
}

// latencyBuckets is a fine ~x1.22 geometric grid (2ms..150s) so
// Histogram.Quantile resolves 2x latency ratios cleanly — the default
// x2.5 exposition buckets would blur exactly the comparison the
// adversarial floor assertion needs.
func latencyBuckets() []float64 {
	var b []float64
	for v := 0.002; v < 150; v *= 1.22 {
		b = append(b, v)
	}
	return b
}

type outcome int

const (
	outOK outcome = iota
	outRejected
	outQuotaRejected
	outDeadlineMiss
	outError
)

func (a *circuitAgg) record(o outcome, latency time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Sent++
	switch o {
	case outOK:
		a.rep.OK++
		a.observe(latency)
	case outRejected:
		a.rep.Rejected++
	case outQuotaRejected:
		a.rep.Rejected++
		a.rep.QuotaRejected++
	case outDeadlineMiss:
		a.rep.DeadlineMiss++
		a.observe(latency)
	case outError:
		a.rep.Errors++
	}
}

func (a *circuitAgg) observe(latency time.Duration) {
	a.hist.Observe(latency.Seconds())
	if a.pooled != nil {
		a.pooled.Observe(latency.Seconds())
	}
}

func (a *circuitAgg) finish() *circuitReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.rep
	if admitted := r.OK + r.DeadlineMiss; admitted > 0 {
		r.MissRate = float64(r.DeadlineMiss) / float64(admitted)
	}
	if a.hist.Count() > 0 {
		r.P50ms = a.hist.Quantile(0.50) * 1000
		r.P99ms = a.hist.Quantile(0.99) * 1000
		r.P999ms = a.hist.Quantile(0.999) * 1000
	}
	return &r
}

// fire sends one prove request and classifies the response.
func fire(client *http.Client, target string, e mixEntry, jobSeed int64, agg *circuitAgg) {
	body, _ := json.Marshal(map[string]any{
		"circuit": e.Name, "seed": jobSeed, "timeout_ms": e.TimeoutMS,
	})
	// The client deadline sits well past the job deadline: the 504 must
	// come from the server's deadline machinery, not from the transport.
	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(e.TimeoutMS)*time.Millisecond+30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/prove", bytes.NewReader(body))
	if err != nil {
		agg.record(outError, 0)
		return
	}
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		agg.record(outError, lat)
		return
	}
	respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		agg.record(outOK, lat)
	case http.StatusTooManyRequests:
		if bytes.Contains(respBody, []byte("over quota")) {
			agg.record(outQuotaRejected, lat)
		} else {
			agg.record(outRejected, lat)
		}
	case http.StatusGatewayTimeout:
		agg.record(outDeadlineMiss, lat)
	default:
		agg.record(outError, lat)
	}
}

// runScenario drives one open-loop run against target and aggregates
// the results. The single generator goroutine owns the seeded RNG, so
// the (arrival offset, circuit, job seed) sequence is a pure function
// of the seed.
func runScenario(name, target string, mix []mixEntry, rate float64, dur time.Duration, seed int64) *scenarioReport {
	rnd := rand.New(rand.NewSource(seed))
	total := 0.0
	for _, e := range mix {
		total += e.Weight
	}
	hist := func() *telemetry.Histogram {
		return telemetry.NewRegistry().Histogram(
			"loadgen_latency_seconds", "", "", latencyBuckets())
	}
	overall := &circuitAgg{hist: hist()}
	aggs := map[string]*circuitAgg{}
	for _, e := range mix {
		if aggs[e.Name] == nil {
			aggs[e.Name] = &circuitAgg{hist: hist(), pooled: overall.hist}
		}
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	var wg sync.WaitGroup
	start := time.Now()
	for offset := 0.0; offset < dur.Seconds(); offset += rnd.ExpFloat64() / rate {
		// Weighted circuit pick and job seed, both drawn on this
		// goroutine to keep the sequence deterministic.
		pick := rnd.Float64() * total
		e := mix[0]
		for _, c := range mix {
			if pick < c.Weight {
				e = c
				break
			}
			pick -= c.Weight
		}
		jobSeed := rnd.Int63()
		if d := time.Until(start.Add(time.Duration(offset * float64(time.Second)))); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fire(client, target, e, jobSeed, aggs[e.Name])
		}()
	}
	wg.Wait()
	client.CloseIdleConnections()

	rep := &scenarioReport{
		Name: name, Target: target, RatePerSec: rate,
		DurationSec: dur.Seconds(), Seed: seed, Mix: mix,
		Circuits: map[string]*circuitReport{},
	}
	for cname, a := range aggs {
		r := a.finish()
		rep.Circuits[cname] = r
		overall.mu.Lock()
		overall.rep.Sent += r.Sent
		overall.rep.OK += r.OK
		overall.rep.Rejected += r.Rejected
		overall.rep.QuotaRejected += r.QuotaRejected
		overall.rep.DeadlineMiss += r.DeadlineMiss
		overall.rep.Errors += r.Errors
		overall.mu.Unlock()
	}
	rep.Overall = overall.finish()
	rep.ServerStats = fetchStats(client, target)
	return rep
}

func fetchStats(client *http.Client, target string) *serverStats {
	resp, err := client.Get(target + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st serverStats
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return nil
	}
	return &st
}

func (o serverOpts) policyJSON() map[string]any {
	return map[string]any{
		"queue_policy":      o.policy,
		"circuit_quota":     o.quota,
		"shed":              o.shed,
		"coalesce_slack_ms": o.slack.Milliseconds(),
		"gpus":              o.gpus,
		"workers":           o.workers,
		"queue_depth":       o.queue,
	}
}

func (f faultOpts) faultsJSON() map[string]any {
	if f.config() == nil {
		return nil
	}
	return map[string]any{
		"transient": f.transient, "straggler": f.straggler,
		"corrupt": f.corrupt, "device_lost": f.lost, "seed": f.seed,
	}
}

// runSelfHosted spins up a server for o.srv, runs one scenario against
// it and tears it down.
func runSelfHosted(name string, o serverOpts, mix []mixEntry, rate float64, dur time.Duration, seed int64) (*scenarioReport, error) {
	ctx := context.Background()
	base, stop, err := startServer(ctx, o, mix)
	if err != nil {
		return nil, err
	}
	rep := runScenario(name, base, mix, rate, dur, seed)
	stop()
	rep.Target = "self-hosted"
	rep.Policy = o.policyJSON()
	rep.Faults = o.faults.faultsJSON()
	return rep, nil
}

// report is the full JSON document (-out / BENCH_pr9.json).
type report struct {
	Tool       string            `json:"tool"`
	Go         string            `json:"go"`
	Scenarios  []*scenarioReport `json:"scenarios"`
	Assertions []assertion       `json:"assertions,omitempty"`
}

type assertion struct {
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
	Value  float64 `json:"value"`
	Floor  float64 `json:"floor"`
	Pass   bool    `json:"pass"`
}

func run(o runOpts) error {
	switch {
	case o.bench:
		return runBench(o)
	case o.smoke:
		return runSmoke(o)
	}
	mix, err := parseMix(o.mixSpec)
	if err != nil {
		return err
	}
	var rep *scenarioReport
	if o.target != "" {
		rep = runScenario("adhoc", o.target, mix, o.rate, o.duration, o.seed)
	} else {
		if rep, err = runSelfHosted("adhoc", o.srv, mix, o.rate, o.duration, o.seed); err != nil {
			return err
		}
	}
	printScenario(rep)
	if o.out != "" {
		return writeReport(o.out, &report{Tool: "loadgen", Go: runtime.Version(), Scenarios: []*scenarioReport{rep}})
	}
	return nil
}

func printScenario(rep *scenarioReport) {
	fmt.Printf("scenario %s: rate %.2g/s for %.3gs against %s\n",
		rep.Name, rep.RatePerSec, rep.DurationSec, rep.Target)
	for name, c := range rep.Circuits {
		fmt.Printf("  %-14s sent %-5d ok %-5d rej %-4d (quota %d) miss %-4d err %-3d  p50 %7.1fms  p99 %8.1fms  p999 %8.1fms\n",
			name, c.Sent, c.OK, c.Rejected, c.QuotaRejected, c.DeadlineMiss, c.Errors, c.P50ms, c.P99ms, c.P999ms)
	}
	if st := rep.ServerStats; st != nil {
		fmt.Printf("  server: reorders %d, coalesced %d, quota-rejected %d, shed %d/%d/%d (expired/doomed/phase)\n",
			st.QueueReorders, st.BatchesCoalesced, st.QuotaRejected,
			st.ShedExpired, st.ShedDoomed, st.ShedPhase)
	}
}

func writeReport(path string, rep *report) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Benchmark matrix circuits. The steady mix is two mid-size circuits
// with comfortable deadlines; the adversarial mix floods a heavy batch
// circuit while an interactive circuit trickles tight-deadline jobs —
// the FIFO worst case, because every interactive job queues behind a
// window of heavy jobs.
var (
	steadyMix = []mixEntry{
		{Name: "circuit-a", Weight: 1, TimeoutMS: 8000, Constraints: 96},
		{Name: "circuit-b", Weight: 1, TimeoutMS: 8000, Constraints: 96},
	}
	adversarialMix = []mixEntry{
		{Name: "batch-heavy", Weight: 8, TimeoutMS: 3000, Constraints: 192},
		{Name: "interactive", Weight: 1, TimeoutMS: 1500, Constraints: 64},
	}
)

// tunedOpts is the hardened policy under test; fifoOpts is the
// pre-hardening baseline (strict FIFO, unconditional coalescing, no
// quotas, no shedding).
func tunedOpts(base serverOpts) serverOpts {
	base.policy = "edf"
	base.quota = 0.75
	base.shed = true
	base.slack = 2 * time.Second
	return base
}

func fifoOpts(base serverOpts) serverOpts {
	base.policy = "fifo"
	base.quota = 0
	base.shed = false
	base.slack = -1
	return base
}

func runBench(o runOpts) error {
	outPath := o.out
	if outPath == "" {
		outPath = "BENCH_pr9.json"
	}
	rep := &report{Tool: "loadgen", Go: runtime.Version()}
	base := o.srv

	type spec struct {
		name string
		opts serverOpts
		mix  []mixEntry
		rate float64
		dur  time.Duration
	}
	specs := []spec{
		{"steady-r4-tuned", tunedOpts(base), steadyMix, 4, 20 * time.Second},
		{"steady-r8-tuned", tunedOpts(base), steadyMix, 8, 20 * time.Second},
		{"steady-r8-tuned-faults", withFaults(tunedOpts(base)), steadyMix, 8, 20 * time.Second},
		{"adversarial-fifo", fifoOpts(base), adversarialMix, 12, 25 * time.Second},
		{"adversarial-tuned", tunedOpts(base), adversarialMix, 12, 25 * time.Second},
		{"adversarial-tuned-faults", withFaults(tunedOpts(base)), adversarialMix, 12, 25 * time.Second},
	}
	byName := map[string]*scenarioReport{}
	for _, sp := range specs {
		fmt.Printf("== %s\n", sp.name)
		r, err := runSelfHosted(sp.name, sp.opts, sp.mix, sp.rate, sp.dur, o.seed)
		if err != nil {
			return err
		}
		printScenario(r)
		rep.Scenarios = append(rep.Scenarios, r)
		byName[sp.name] = r
	}

	// The floor: the hardened policy must cut the interactive circuit's
	// p999 by >= 2x on the adversarial mix.
	fifo := byName["adversarial-fifo"].Circuits["interactive"]
	tuned := byName["adversarial-tuned"].Circuits["interactive"]
	ratio := 0.0
	if tuned.P999ms > 0 {
		ratio = fifo.P999ms / tuned.P999ms
	}
	floor := assertion{
		Name: "adversarial-interactive-p999-floor",
		Detail: fmt.Sprintf("interactive p999 %.1fms (FIFO) vs %.1fms (EDF+quota+shed)",
			fifo.P999ms, tuned.P999ms),
		Value: ratio, Floor: 2.0, Pass: ratio >= 2.0,
	}
	rep.Assertions = append(rep.Assertions, floor)
	if err := writeReport(outPath, rep); err != nil {
		return err
	}
	fmt.Printf("== %s: p999 ratio %.2fx (floor %.1fx) -> %s\n",
		floor.Name, floor.Value, floor.Floor, passFail(floor.Pass))
	fmt.Printf("wrote %s\n", outPath)
	if !floor.Pass {
		return fmt.Errorf("assertion %s failed: %s", floor.Name, floor.Detail)
	}
	return nil
}

func withFaults(o serverOpts) serverOpts {
	o.faults = faultOpts{transient: 0.05, straggler: 0.03, seed: 7}
	return o
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// runSmoke is the CI gate: a miniature adversarial pair. It fails
// unless (a) the interactive p999 was recorded under the tuned policy,
// (b) nothing failed unexpectedly (transport or 5xx), and (c) the EDF
// reorder and shed paths actually fired — a refactor that silently
// disables either reads as a hard failure here, not as a quietly
// FIFO-shaped latency profile.
func runSmoke(o runOpts) error {
	base := o.srv
	base.gpus, base.workers, base.queue = 4, 2, 8
	// Deliberately overloaded: ~2x the two workers' capacity, plus a
	// trickle circuit whose deadline sits below its own prove time —
	// every one of its queued jobs is provably doomed (expired at
	// dequeue under load, out of budget at a phase boundary otherwise),
	// so the smoke sees the shed path fire rather than passing on an
	// idle system.
	mix := []mixEntry{
		{Name: "batch-heavy", Weight: 6, TimeoutMS: 1400, Constraints: 192},
		{Name: "interactive", Weight: 1, TimeoutMS: 1000, Constraints: 48},
		{Name: "doomed", Weight: 1, TimeoutMS: 450, Constraints: 192},
	}
	tuned, err := runSelfHosted("smoke-tuned", tunedOpts(base), mix, 12, 8*time.Second, o.seed)
	if err != nil {
		return err
	}
	printScenario(tuned)

	var fails []string
	inter := tuned.Circuits["interactive"]
	if inter == nil || inter.OK+inter.DeadlineMiss == 0 || inter.P999ms <= 0 {
		fails = append(fails, "interactive p999 not recorded")
	}
	if n := tuned.Overall.Errors; n > 0 {
		fails = append(fails, fmt.Sprintf("%d unexpected failures", n))
	}
	st := tuned.ServerStats
	switch {
	case st == nil:
		fails = append(fails, "no /v1/stats snapshot")
	default:
		if st.QueueReorders == 0 {
			fails = append(fails, "EDF path inert: zero queue reorders under a mixed-deadline load")
		}
		if st.ShedExpired+st.ShedDoomed+st.ShedPhase == 0 {
			fails = append(fails, "shed path inert: zero jobs shed under overload")
		}
		if st.JobSeconds == nil || st.JobSeconds.Count == 0 {
			fails = append(fails, "/v1/stats job_seconds quantiles missing")
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("smoke failed: %s", strings.Join(fails, "; "))
	}
	fmt.Println("loadgen smoke ok")
	return nil
}
