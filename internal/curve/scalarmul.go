package curve

import (
	"math/big"

	"distmsm/internal/bigint"
)

// Optimised scalar-multiplication strategies beyond the double-and-add
// reference: width-w NAF for variable bases and a fixed-base comb for
// repeated multiplications of one point (the trusted-setup workload,
// which multiplies the generator by thousands of scalars).

// wnafDigits recodes k into width-w non-adjacent form: digits are odd,
// |d| < 2^(w-1), and non-zero digits are separated by at least w-1
// zeros, so a scalar multiplication needs ~λ/(w+1) additions.
func wnafDigits(k bigint.Nat, w int) []int8 {
	if w < 2 || w > 7 {
		panic("curve: wNAF width out of range [2,7]")
	}
	v := k.ToBig()
	var out []int8
	mod := int64(1) << uint(w)
	half := mod >> 1
	for v.Sign() > 0 {
		var d int64
		if v.Bit(0) == 1 {
			low := int64(0)
			for i := 0; i < w; i++ {
				low |= int64(v.Bit(i)) << uint(i)
			}
			d = low
			if d >= half {
				d -= mod
			}
			if d > 0 {
				v.Sub(v, big.NewInt(d))
			} else {
				v.Add(v, big.NewInt(-d))
			}
		}
		out = append(out, int8(d))
		v.Rsh(v, 1)
	}
	return out
}

// ScalarMulWNAF computes k·P with width-w NAF and a small odd-multiples
// table (P, 3P, …, (2^(w-1)−1)P).
func (a *Adder) ScalarMulWNAF(pt *PointAffine, k bigint.Nat, w int) *PointXYZZ {
	c := a.c
	if pt.Inf || k.IsZero() {
		return c.NewXYZZ()
	}
	digits := wnafDigits(k, w)
	// Odd multiples table in affine form (batch-normalised).
	tableSize := 1 << uint(w-1) // entries for 1P, 3P, ..., (2^(w-1)−1)·P pairs
	jac := make([]*PointXYZZ, 0, tableSize/2)
	cur := c.NewXYZZ()
	c.SetAffine(cur, pt)
	double := cur.Clone()
	a.Double(double)
	dblAff := c.ToAffine(double)
	for i := 0; i < tableSize/2; i++ {
		jac = append(jac, cur.Clone())
		a.Acc(cur, &dblAff) // cur += 2P
	}
	table := c.BatchToAffine(jac) // table[i] = (2i+1)·P

	acc := c.NewXYZZ()
	negY := c.Fp.NewElement()
	for i := len(digits) - 1; i >= 0; i-- {
		a.Double(acc)
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			a.Acc(acc, &table[(int(d)-1)/2])
		} else {
			e := &table[(int(-d)-1)/2]
			c.Fp.Neg(negY, e.Y)
			neg := PointAffine{X: e.X, Y: negY}
			a.Acc(acc, &neg)
		}
	}
	return acc
}

// Comb is a fixed-base comb precomputation: for base P it stores
// T[b] = Σ_{j: bit j of b set} 2^(j·d)·P for all 2^t tooth patterns,
// where d = ⌈λ/t⌉ is the tooth spacing. One multiplication then costs
// d doublings and d table additions — ~8× fewer operations than
// double-and-add at t = 8.
type Comb struct {
	c     *Curve
	teeth int
	gap   int // d
	table []PointAffine
}

// NewComb builds the comb table for the given base with t teeth.
func (c *Curve) NewComb(base *PointAffine, teeth int) *Comb {
	if teeth < 2 || teeth > 12 {
		panic("curve: comb teeth out of range [2,12]")
	}
	a := c.NewAdder()
	gap := (c.ScalarBits + teeth - 1) / teeth
	// Column points 2^(j·gap)·P.
	cols := make([]PointAffine, teeth)
	cur := c.NewXYZZ()
	c.SetAffine(cur, base)
	for j := 0; j < teeth; j++ {
		cols[j] = c.ToAffine(cur)
		for b := 0; b < gap; b++ {
			a.Double(cur)
		}
	}
	// All subset sums.
	size := 1 << uint(teeth)
	jac := make([]*PointXYZZ, size)
	jac[0] = c.NewXYZZ()
	for b := 1; b < size; b++ {
		low := b & (-b)
		j := 0
		for 1<<uint(j) != low {
			j++
		}
		p := jac[b^low].Clone()
		a.Acc(p, &cols[j])
		jac[b] = p
	}
	return &Comb{c: c, teeth: teeth, gap: gap, table: c.BatchToAffine(jac)}
}

// Mul computes k·P for the comb's base.
func (m *Comb) Mul(k bigint.Nat) *PointXYZZ {
	c := m.c
	a := c.NewAdder()
	acc := c.NewXYZZ()
	for i := m.gap - 1; i >= 0; i-- {
		a.Double(acc)
		idx := 0
		for j := 0; j < m.teeth; j++ {
			idx |= int(k.Bit(j*m.gap+i)) << uint(j)
		}
		if idx != 0 {
			a.Acc(acc, &m.table[idx])
		}
	}
	return acc
}
