package field

import (
	"math/rand"
	"testing"
)

// TestFieldOpsAllocFree pins the zero-allocation property of the hot
// arithmetic: every Mul/Square/Add/Sub in the MSM inner loops runs on
// caller-provided limb storage, so a regression here multiplies into
// millions of heap allocations per MSM.
func TestFieldOpsAllocFree(t *testing.T) {
	for _, name := range []string{"bn254-fp", "bls381-fp"} {
		f := mustField(t, name)
		rnd := rand.New(rand.NewSource(91))
		x, y, z := f.Rand(rnd), f.Rand(rnd), f.NewElement()
		cases := []struct {
			op string
			fn func()
		}{
			{"Mul", func() { f.Mul(z, x, y) }},
			{"Square", func() { f.Square(z, x) }},
			{"Add", func() { f.Add(z, x, y) }},
			{"Sub", func() { f.Sub(z, x, y) }},
			{"Neg", func() { f.Neg(z, x) }},
			{"SetOne", func() { f.SetOne(z) }},
		}
		for _, tc := range cases {
			if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
				t.Errorf("%s: %s allocates %.1f objects/op, want 0", name, tc.op, allocs)
			}
		}
	}
}

// TestBatchInverterAllocFree: after the warm-up call sizes the arena,
// repeated batch inversions must not allocate — this is the per-round
// cost of the batch-affine bucket accumulation.
func TestBatchInverterAllocFree(t *testing.T) {
	f := mustField(t, "bn254-fp")
	rnd := rand.New(rand.NewSource(92))
	xs := make([]Element, 64)
	for i := range xs {
		xs[i] = f.Rand(rnd)
	}
	bi := f.NewBatchInverter(len(xs))
	bi.Invert(xs) // warm-up: grows the prefix arena once
	for i := range xs {
		xs[i] = f.Rand(rnd)
	}
	if allocs := testing.AllocsPerRun(20, func() { bi.Invert(xs) }); allocs != 0 {
		t.Errorf("BatchInverter.Invert allocates %.1f objects/op, want 0", allocs)
	}
}
