package ntt

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"distmsm/internal/field"
)

// Property-based tests (testing/quick) for the NTT.

func TestQuickRoundTrip(t *testing.T) {
	f := frField(t)
	d, err := NewDomain(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, coset bool) bool {
		rnd := rand.New(rand.NewSource(seed))
		v := randVec(f, rnd, 64)
		w := cloneVec(v)
		if coset {
			mustCosetForward(t, d, w)
			mustCosetInverse(t, d, w)
		} else {
			mustForward(t, d, w)
			mustInverse(t, d, w)
		}
		for i := range v {
			if !w[i].Equal(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Convolution theorem: NTT(a)·NTT(b) pointwise == NTT(a ⊛ b).
func TestQuickConvolutionTheorem(t *testing.T) {
	f := frField(t)
	d, err := NewDomain(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := randVec(f, rnd, 12)
		b := randVec(f, rnd, 12)
		viaNTT, err := d.MulPolys(a, b)
		if err != nil {
			return false
		}
		// Schoolbook product evaluated at the domain root.
		direct := make([]field.Element, 32)
		for i := range direct {
			direct[i] = f.NewElement()
		}
		tmp := f.NewElement()
		for i := range a {
			for j := range b {
				f.Mul(tmp, a[i], b[j])
				f.Add(direct[i+j], direct[i+j], tmp)
			}
		}
		for i := range direct {
			if !viaNTT[i].Equal(direct[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Parseval-flavoured invariant: the NTT of a delta function is the
// geometric sequence of root powers.
func TestQuickDeltaTransform(t *testing.T) {
	f := frField(t)
	d, err := NewDomain(f, 16)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(posRaw uint8) bool {
		pos := int(posRaw) % 16
		v := make([]field.Element, 16)
		for i := range v {
			v[i] = f.NewElement()
		}
		v[pos].Set(f.One())
		mustForward(t, d, v)
		// v[j] should be ω^(pos·j).
		w := f.One()
		step := f.NewElement()
		f.Exp(step, d.Root(), bigFromInt(pos))
		tmp := f.NewElement()
		for j := 0; j < 16; j++ {
			if !v[j].Equal(w) {
				return false
			}
			f.Mul(tmp, w, step)
			w.Set(tmp)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func bigFromInt(v int) *big.Int { return big.NewInt(int64(v)) }
