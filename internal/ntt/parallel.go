package ntt

import (
	"context"
	"runtime"
	"sync"

	"distmsm/internal/field"
)

// ParallelForward computes the in-place NTT using worker goroutines: at
// each butterfly level the independent blocks are sharded across
// workers (the host-side analogue of the GPU NTT's thread-parallel
// stages). workers <= 0 selects GOMAXPROCS. Output is identical to
// Forward.
func (d *Domain) ParallelForward(a []field.Element, workers int) {
	_ = d.parallelTransform(context.Background(), a, d.root, workers)
}

// ParallelInverse computes the in-place inverse NTT with workers.
func (d *Domain) ParallelInverse(a []field.Element, workers int) {
	_ = d.ParallelInverseContext(context.Background(), a, workers)
}

// ParallelForwardContext computes the in-place NTT with worker
// goroutines, honouring ctx between butterfly passes exactly like
// ForwardContext (a cancellation lands within one O(N) pass). Output is
// bit-identical to ForwardContext.
func (d *Domain) ParallelForwardContext(ctx context.Context, a []field.Element, workers int) error {
	return d.parallelTransform(ctx, a, d.root, workers)
}

// ParallelInverseContext computes the in-place inverse NTT with worker
// goroutines, honouring ctx between butterfly passes. Output is
// bit-identical to InverseContext.
func (d *Domain) ParallelInverseContext(ctx context.Context, a []field.Element, workers int) error {
	if err := d.parallelTransform(ctx, a, d.rootInv, workers); err != nil {
		return err
	}
	f := d.F
	parallelRange(len(a), workers, func(lo, hi int) {
		tmp := f.NewElement()
		for i := lo; i < hi; i++ {
			f.Mul(tmp, a[i], d.nInv)
			a[i].Set(tmp)
		}
	})
	return nil
}

// ParallelCosetForwardContext evaluates the polynomial on the coset
// g·⟨ω⟩ using worker goroutines, honouring ctx between butterfly
// passes. Output is bit-identical to CosetForwardContext.
func (d *Domain) ParallelCosetForwardContext(ctx context.Context, a []field.Element, workers int) error {
	d.parallelShift(a, d.gen, workers)
	return d.parallelTransform(ctx, a, d.root, workers)
}

// ParallelCosetInverseContext interpolates from the coset g·⟨ω⟩ back to
// coefficients using worker goroutines, honouring ctx between butterfly
// passes. Output is bit-identical to CosetInverseContext.
func (d *Domain) ParallelCosetInverseContext(ctx context.Context, a []field.Element, workers int) error {
	if err := d.ParallelInverseContext(ctx, a, workers); err != nil {
		return err
	}
	d.parallelShift(a, d.genInv, workers)
	return nil
}

// parallelShift multiplies a[i] by g^i, sharding the range across
// workers (each shard seeds its own power g^lo, so the result is
// bit-identical to the serial shift).
func (d *Domain) parallelShift(a []field.Element, g field.Element, workers int) {
	f := d.F
	parallelRange(len(a), workers, func(lo, hi int) {
		pw := powElement(f, g, lo)
		tmp := f.NewElement()
		for i := lo; i < hi; i++ {
			f.Mul(tmp, a[i], pw)
			a[i].Set(tmp)
			f.Mul(tmp, pw, g)
			pw.Set(tmp)
		}
	})
}

func (d *Domain) parallelTransform(ctx context.Context, a []field.Element, omega field.Element, workers int) error {
	n := len(a)
	if n != d.N {
		panic("ntt: input length != domain size")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < 1024 || workers == 1 {
		return d.transform(ctx, a, omega)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f := d.F
	// Bit-reversal permutation (cheap, serial).
	shift := 64 - uint(trailingZeros(n))
	for i := 0; i < n; i++ {
		j := int(reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		half := size >> 1
		w := omega.Clone()
		tmp := f.NewElement()
		for m := n; m > size; m >>= 1 {
			f.Square(tmp, w)
			w.Set(tmp)
		}
		blocks := n / size
		if blocks >= workers {
			// Shard whole blocks.
			parallelRange(blocks, workers, func(lo, hi int) {
				t1, t2, tw, tm := f.NewElement(), f.NewElement(), f.NewElement(), f.NewElement()
				for blk := lo; blk < hi; blk++ {
					start := blk * size
					tw.Set(f.One())
					for k := start; k < start+half; k++ {
						f.Mul(t1, a[k+half], tw)
						f.Sub(t2, a[k], t1)
						f.Add(a[k], a[k], t1)
						a[k+half].Set(t2)
						f.Mul(tm, tw, w)
						tw.Set(tm)
					}
				}
			})
			continue
		}
		// Few large blocks: shard butterflies inside each block. Each
		// worker seeds its twiddle as w^lo.
		for start := 0; start < n; start += size {
			parallelRange(half, workers, func(lo, hi int) {
				t1, t2, tm := f.NewElement(), f.NewElement(), f.NewElement()
				tw := powElement(f, w, lo)
				for off := lo; off < hi; off++ {
					k := start + off
					f.Mul(t1, a[k+half], tw)
					f.Sub(t2, a[k], t1)
					f.Add(a[k], a[k], t1)
					a[k+half].Set(t2)
					f.Mul(tm, tw, w)
					tw.Set(tm)
				}
			})
		}
	}
	return nil
}

// powElement computes base^e for a small non-negative exponent.
func powElement(f *field.Field, base field.Element, e int) field.Element {
	acc := f.One()
	tmp := f.NewElement()
	b := base.Clone()
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			f.Mul(tmp, acc, b)
			acc.Set(tmp)
		}
		f.Square(tmp, b)
		b.Set(tmp)
	}
	return acc
}

// parallelRange splits [0, n) across workers and waits for completion.
func parallelRange(n, workers int, fn func(lo, hi int)) {
	if workers <= 1 || n < 2*workers {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func trailingZeros(n int) int {
	k := 0
	for n&1 == 0 {
		n >>= 1
		k++
	}
	return k
}

func reverse64(v uint64) uint64 {
	v = v>>32 | v<<32
	v = (v&0xffff0000ffff0000)>>16 | (v&0x0000ffff0000ffff)<<16
	v = (v&0xff00ff00ff00ff00)>>8 | (v&0x00ff00ff00ff00ff)<<8
	v = (v&0xf0f0f0f0f0f0f0f0)>>4 | (v&0x0f0f0f0f0f0f0f0f)<<4
	v = (v&0xcccccccccccccccc)>>2 | (v&0x3333333333333333)<<2
	v = (v&0xaaaaaaaaaaaaaaaa)>>1 | (v&0x5555555555555555)<<1
	return v
}
