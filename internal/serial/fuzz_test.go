package serial

import (
	"bytes"
	"testing"

	"distmsm/internal/curve"
)

// Fuzz-style decoders: arbitrary bytes must never panic, and every
// successful decode must re-encode to a valid (round-trippable) object.

func FuzzUnmarshalPoint(f *testing.F) {
	c, err := curve.ByName("BN254")
	if err != nil {
		f.Fatal(err)
	}
	pts := c.SamplePoints(3, 1)
	for i := range pts {
		f.Add(MarshalPoint(c, &pts[i], true))
		f.Add(MarshalPoint(c, &pts[i], false))
	}
	f.Add([]byte{})
	f.Add([]byte{0x02})
	f.Add(bytes.Repeat([]byte{0xff}, 33))
	f.Add(bytes.Repeat([]byte{0x00}, 65))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPoint(c, data)
		if err != nil {
			return
		}
		if !c.IsOnCurveAffine(&p) {
			t.Fatal("decoder produced an off-curve point")
		}
		// Re-encode in the matching form and decode again.
		compressed := len(data) > 0 && (data[0] == PrefixCompressedE || data[0] == PrefixCompressedO)
		if len(data) > 0 && data[0] == PrefixInfinity {
			compressed = true // infinity frames exist in both sizes; pick one
		}
		enc := MarshalPoint(c, &p, compressed)
		back, err := UnmarshalPoint(c, enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !c.EqualAffine(&back, &p) {
			t.Fatal("round trip changed the point")
		}
	})
}

func FuzzUnmarshalScalar(f *testing.F) {
	f.Add(bytes.Repeat([]byte{0xab}, 32))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := UnmarshalScalar(data, 254)
		if err != nil {
			return
		}
		enc := MarshalScalar(k, 254)
		back, err := UnmarshalScalar(enc, 254)
		if err != nil || !back.Equal(k) {
			t.Fatal("scalar round trip failed")
		}
	})
}
