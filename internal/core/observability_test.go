package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"distmsm/internal/gpusim"
	"distmsm/internal/telemetry"
)

// --- Phase.BucketSumWall vs aggregate busy ---

// TestBucketSumWallInvariant pins the repaired phase accounting: on a
// saturated multi-GPU run the bucket-sum wall span (first shard launch
// to last shard commit) must not exceed the aggregate GPU busy time —
// the quantity the old code reported as "phase time" — and neither may
// exceed the run's total duration. The old conflated reading violated
// the first bound by construction (Σ busy ≈ nGPU × wall).
//
// Saturation needs the four workers actually overlapping, so the test
// pins GOMAXPROCS ≥ 4 for its duration: on a single-proc host the
// workers would time-slice with Σ busy ≈ wall, and scheduling noise
// could push either side of the bound.
func TestBucketSumWallInvariant(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	c := mustCurve(t, "BN254")
	const n = 4096
	points := c.SamplePoints(n, 5)
	scalars := c.SampleScalars(n, 6)
	sys := cluster(t, 4)

	t0 := time.Now()
	res, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent})
	total := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}

	wall := res.Stats.Phase.BucketSumWall
	if wall <= 0 {
		t.Fatal("concurrent run recorded no BucketSumWall")
	}
	var busy time.Duration
	for _, st := range res.Stats.PerGPU {
		busy += st.Busy
	}
	if res.Stats.Phase.BucketSum != busy {
		t.Errorf("Phase.BucketSum = %v, want the aggregate busy Σ PerGPU.Busy = %v", res.Stats.Phase.BucketSum, busy)
	}
	if wall > busy {
		t.Errorf("BucketSumWall %v exceeds aggregate busy %v on a 4-GPU busy-dominated run", wall, busy)
	}
	if wall > total {
		t.Errorf("BucketSumWall %v exceeds the whole run's duration %v", wall, total)
	}
}

// TestBucketSumWallSerial: the serial engine has no busy/wall
// distinction — one window's sum at a time — so both readings agree.
func TestBucketSumWallSerial(t *testing.T) {
	c := mustCurve(t, "BN254")
	const n = 256
	points := c.SamplePoints(n, 7)
	scalars := c.SampleScalars(n, 8)
	res, err := RunContext(context.Background(), c, cluster(t, 2), points, scalars,
		Options{WindowSize: 8, Engine: EngineSerial})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Phase.BucketSumWall != res.Stats.Phase.BucketSum {
		t.Errorf("serial engine: BucketSumWall %v != BucketSum %v",
			res.Stats.Phase.BucketSumWall, res.Stats.Phase.BucketSum)
	}
	if res.Stats.Phase.BucketSumWall <= 0 {
		t.Error("serial engine recorded no bucket-sum time")
	}
}

// --- cancellation during an injected straggler stall ---

// TestCancelledStragglerChargesNoRetries pins the teardown accounting
// fix: cancelling a run while every shard sits in an injected straggler
// stall must not charge FaultStats.Retries (or consecutive-failure
// budget) for executions that were unwound, not failed. The old path
// routed the cancellation through sched.fail, counting one retry per
// stalled shard of a run that was already ending.
func TestCancelledStragglerChargesNoRetries(t *testing.T) {
	c := mustCurve(t, "BN254")
	const n = 64
	points := c.SamplePoints(n, 9)
	scalars := c.SampleScalars(n, 10)

	cfg := gpusim.FaultConfig{Straggler: 1.0, StragglerFactor: 64, Seed: 1}
	inj, err := gpusim.NewFaultInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster(t, 4).WithFaults(inj)
	opts := Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg}
	plan, err := BuildPlan(c, cl, n, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Every execution stalls for at least minStragglerWait (8ms of host
	// time); cancel well inside the first stall so each worker unwinds
	// from sleepCtx, never from a shard failure.
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(3*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	_, faults, err := runScheduled(ctx, points, scalars, plan, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if faults.Stragglers == 0 {
		t.Fatal("no straggler stalls recorded — the cancellation never hit the stall path")
	}
	if faults.Retries != 0 {
		t.Errorf("cancelled run charged %d retries; teardown must not count as failure", faults.Retries)
	}
}

// --- work stealing scans for the true minimum window ---

// TestStealPrefersLowestWindow pins the steal-order fix: queues stop
// being window-ordered once requeueLocked appends a retried shard at
// the tail, so stealLocked must scan every ready entry for the minimum
// window instead of grabbing the first ready one. The reducer consumes
// windows in order; stealing window 5 while window 2 waits stalls it.
func TestStealPrefersLowestWindow(t *testing.T) {
	c := mustCurve(t, "BN254")
	plan, err := BuildPlan(c, cluster(t, 2), 64, Options{WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the queue shape left behind by a retry: GPU 1 holds
	// window 5 ahead of window 2 (the retried shard re-appended at the
	// tail); GPU 0 is idle and comes stealing.
	plan.Assignments = []Assignment{
		{Window: 5, GPU: 1, BucketLo: 0, BucketHi: plan.Buckets},
		{Window: 2, GPU: 1, BucketLo: 0, BucketHi: plan.Buckets},
	}
	s := newScheduler(plan, Options{})

	got := s.stealLocked(0, time.Now())
	if got == nil {
		t.Fatal("stealLocked found nothing to steal")
	}
	if got.a.Window != 2 {
		t.Errorf("stole window %d, want the minimum ready window 2", got.a.Window)
	}
	if s.stats.Steals != 1 {
		t.Errorf("Steals = %d, want 1", s.stats.Steals)
	}
	// Entries still in backoff are invisible to the scan.
	s.queues[1][0].notBefore = time.Now().Add(time.Hour)
	if s.stealLocked(0, time.Now()) != nil {
		t.Error("stole a task still in backoff")
	}
}

// --- tracing ---

// TestTraceShardAllocFree pins the tentpole's zero-cost contract on the
// shard hot path: the single telemetry touchpoint allocates nothing,
// whether tracing is disabled (nil tracer) or enabled (pre-allocated
// ring).
func TestTraceShardAllocFree(t *testing.T) {
	task := &shardTask{a: Assignment{Window: 3, GPU: 1, BucketLo: 0, BucketHi: 128}}
	start := time.Now()
	if allocs := testing.AllocsPerRun(100, func() {
		traceShard(nil, 1, task, 2, false, start, time.Millisecond)
	}); allocs != 0 {
		t.Errorf("disabled traceShard allocates %.1f objects/op, want 0", allocs)
	}
	tr := telemetry.NewTracer(256)
	if allocs := testing.AllocsPerRun(100, func() {
		traceShard(tr, 1, task, 2, true, start, time.Millisecond)
	}); allocs != 0 {
		t.Errorf("enabled traceShard allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentRunTraceSpans drives a traced multi-GPU run end to end
// and checks every phase of the span model shows up: scatter, shard
// (on a GPU track, labeled), bucket-reduce and window-reduce.
func TestConcurrentRunTraceSpans(t *testing.T) {
	c := mustCurve(t, "BN254")
	const n = 512
	points := c.SamplePoints(n, 11)
	scalars := c.SampleScalars(n, 12)
	tr := telemetry.NewTracer(0)
	res, err := RunContext(context.Background(), c, cluster(t, 4), points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	gpuTracks := map[telemetry.Track]bool{}
	for _, s := range tr.Spans() {
		seen[s.Name]++
		if s.Name == "shard" {
			if !s.Labeled {
				t.Error("shard span not labeled")
			}
			gpuTracks[s.Track] = true
			if s.Track == telemetry.TrackHost {
				t.Error("shard span recorded on the host track")
			}
		}
	}
	windows := res.Plan.Windows
	for _, name := range []string{"scatter", "shard", "bucket-reduce", "window-reduce"} {
		if seen[name] == 0 {
			t.Errorf("no %q spans recorded", name)
		}
	}
	if seen["scatter"] != windows || seen["bucket-reduce"] != windows {
		t.Errorf("scatter/bucket-reduce spans = %d/%d, want one per window (%d)",
			seen["scatter"], seen["bucket-reduce"], windows)
	}
	if len(gpuTracks) < 2 {
		t.Errorf("shard spans landed on %d GPU tracks, want ≥ 2 on a 4-GPU run", len(gpuTracks))
	}
	if seen["shard"] < len(res.Plan.Assignments) {
		t.Errorf("%d shard spans for %d assignments", seen["shard"], len(res.Plan.Assignments))
	}
}
