package distmsm_test

import (
	"math/rand"
	"strings"
	"testing"

	"distmsm"
)

func TestPublicAPICurves(t *testing.T) {
	names := distmsm.Curves()
	if len(names) != 4 {
		t.Fatalf("want 4 curves, got %v", names)
	}
	for _, n := range names {
		c, err := distmsm.Curve(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != n {
			t.Errorf("curve name mismatch: %s != %s", c.Name, n)
		}
	}
	if _, err := distmsm.Curve("secp256k1"); err == nil {
		t.Error("unsupported curve must error")
	}
}

func TestPublicAPIMSM(t *testing.T) {
	c, err := distmsm.Curve("BLS12-381")
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	points := c.SamplePoints(n, 5)
	scalars := c.SampleScalars(n, 6)

	for _, model := range []distmsm.DeviceModel{distmsm.A100, distmsm.RTX4090, distmsm.AMD6900XT} {
		sys, err := distmsm.NewSystem(model, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.MSM(c, points, scalars, distmsm.Options{WindowSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		want, err := distmsm.CPUMSM(c, points, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Fatalf("%s: MSM result mismatch", sys.DeviceName())
		}
		if res.Cost.Total() <= 0 {
			t.Fatalf("%s: non-positive cost", sys.DeviceName())
		}
	}
	if _, err := distmsm.NewSystem(distmsm.A100, 0); err == nil {
		t.Error("zero-GPU system must error")
	}
}

func TestPublicAPIEstimateAndBaseline(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Estimate(c, 1<<26, distmsm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bg, name, err := distmsm.BestBaseline(c, distmsm.A100, 16, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || bg <= res.Cost.Total() {
		t.Errorf("DistMSM (%.4g) should beat baseline %s (%.4g) at 16 GPUs", res.Cost.Total(), name, bg)
	}
}

func TestPublicAPISNARK(t *testing.T) {
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	snark, err := distmsm.NewSNARK(sys)
	if err != nil {
		t.Fatal(err)
	}
	fr := snark.ScalarField()
	cs, witnessFor := snark.ProductCircuit()
	rnd := rand.New(rand.NewSource(9))
	pk, vk, err := snark.Setup(cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fr.FromUint64(101), fr.FromUint64(103)
	w, err := witnessFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := snark.Prove(cs, pk, w, rnd)
	if err != nil {
		t.Fatal(err)
	}
	c := fr.NewElement()
	fr.Mul(c, a, b)
	ok, err := snark.Verify(vk, proof, []distmsm.FieldElement{c})
	if err != nil || !ok {
		t.Fatalf("public-API proof failed: %v", err)
	}
	if snark.ModeledMSMSeconds <= 0 {
		t.Error("GPU-routed prover should accumulate modeled MSM time")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	ws := distmsm.Workloads()
	if len(ws) != 3 {
		t.Fatalf("want 3 workloads, got %v", ws)
	}
	cpu, gpu, err := distmsm.WorkloadEstimate("Zcash-Sprout", 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp := cpu / gpu; sp < 18 || sp > 35 {
		t.Errorf("Zcash-Sprout speedup %.1fx outside ~25x band", sp)
	}
	if _, _, err := distmsm.WorkloadEstimate("nope", 8); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(distmsm.Experiments()) != 10 {
		t.Fatalf("want 10 experiments, got %v", distmsm.Experiments())
	}
	out, err := distmsm.RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BN254") {
		t.Error("table1 output malformed")
	}
}

func TestPublicAPIPipelined(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 8)
	if err != nil {
		t.Fatal(err)
	}
	one, err := sys.Estimate(c, 1<<24, distmsm.Options{WindowSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := sys.EstimatePipelined(c, 1<<24, 6, distmsm.Options{WindowSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Total() <= one.Cost.Total() || pipe.Total() >= 7*one.Cost.Total() {
		t.Errorf("pipelined total %.4g implausible vs single %.4g", pipe.Total(), one.Cost.Total())
	}
}
