package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// This file is the cluster's HTTP transport: the coordinator's client
// to a worker's /v1/cluster/dispatch endpoint, and the worker-side
// Agent that registers with a coordinator and keeps its heartbeat lease
// alive. Both speak the wire types of wire.go and nothing else.

// readCapped reads at most limit+1 bytes of a response body; the +1
// lets the parser reject an oversized body instead of silently
// truncating it into a different (possibly valid) message.
func readCapped(r io.Reader, limit int64) []byte {
	b, _ := io.ReadAll(io.LimitReader(r, limit+1))
	return b
}

// HTTPWorkerClient dispatches jobs to one worker node over HTTP.
type HTTPWorkerClient struct {
	base string
	hc   *http.Client
}

// NewHTTPWorkerClient builds a client for the worker at base (scheme +
// host, e.g. "http://10.0.0.7:8080"). No per-request timeout is set on
// the http.Client: the dispatch context carries the job deadline, and a
// partitioned node is detected by that deadline or by the lease expiry
// cancelling the attempt.
func NewHTTPWorkerClient(base string) *HTTPWorkerClient {
	return &HTTPWorkerClient{base: strings.TrimSuffix(base, "/"), hc: &http.Client{}}
}

// Dispatch implements WorkerClient.
func (c *HTTPWorkerClient) Dispatch(ctx context.Context, req DispatchRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster/dispatch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Dispatch responses carry a proof, so they get the larger cap that
	// makes maxProofHex reachable.
	rb := readCapped(resp.Body, maxDispatchRespBody)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: dispatch to %s: HTTP %d: %s", c.base, resp.StatusCode, strings.TrimSpace(string(rb)))
	}
	w, proof, err := ParseDispatchResponse(rb)
	if err != nil {
		return nil, err
	}
	if w.Error != "" {
		return nil, fmt.Errorf("cluster: worker %s: %s", c.base, w.Error)
	}
	return proof, nil
}

// DispatchMSM implements MSMWorkerClient against the worker's /v1/msm
// endpoint, returning the decoded result-point bytes.
func (c *HTTPWorkerClient) DispatchMSM(ctx context.Context, req MSMDispatchRequest) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/msm", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb := readCapped(resp.Body, maxWireBody)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: msm dispatch to %s: HTTP %d: %s", c.base, resp.StatusCode, strings.TrimSpace(string(rb)))
	}
	w, result, err := ParseMSMDispatchResponse(rb)
	if err != nil {
		return nil, err
	}
	if w.Error != "" {
		return nil, fmt.Errorf("cluster: worker %s: %s", c.base, w.Error)
	}
	return result, nil
}

// AgentConfig configures a worker-side cluster Agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// NodeID identifies this node; it must be stable across restarts of
	// the same node so re-registration resumes the same table entry.
	NodeID string
	// Addr is the address the coordinator should dispatch to — this
	// node's own HTTP listener, as reachable from the coordinator.
	Addr string
	// Circuits advertises what this node can prove (informational).
	Circuits []string
	// Workers advertises the node's proving-pool size (informational).
	Workers int
	// Interval overrides the heartbeat cadence; 0 uses the lease the
	// coordinator granted divided by three.
	Interval time.Duration
	// Client overrides the HTTP client (tests); nil uses a default.
	Client *http.Client
	// Load, when set, is sampled on every heartbeat to report the
	// node's queue depth and in-flight count.
	Load func() (queued, inFlight int)
	// Logf, when set, receives agent lifecycle messages.
	Logf func(format string, args ...any)
}

// Agent keeps one worker registered with its coordinator: it registers,
// heartbeats every lease/3, re-registers when the coordinator asks
// (coordinator restart, forgotten lease), and keeps retrying through
// coordinator outages. Stop for a graceful drain: the agent sends a
// deregister (so the coordinator stops routing here but lets in-flight
// jobs finish) and stops heartbeating.
type Agent struct {
	cfg  AgentConfig
	hc   *http.Client
	stop context.CancelFunc
	done chan struct{}

	mu  sync.Mutex
	seq uint64
}

// StartAgent registers with the coordinator and starts the heartbeat
// loop. Registration failures are retried by the loop, so a worker can
// start before its coordinator does.
func StartAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Coordinator == "" || cfg.NodeID == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("%w: AgentConfig needs Coordinator, NodeID and Addr", ErrBadMessage)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agent{cfg: cfg, hc: cfg.Client, done: make(chan struct{})}
	if a.hc == nil {
		a.hc = &http.Client{Timeout: 10 * time.Second}
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.stop = cancel
	interval, err := a.register(ctx)
	if err != nil {
		// Not fatal: the coordinator may simply not be up yet. Heartbeats
		// will keep asking and re-register on Reregister.
		a.cfg.Logf("cluster agent %s: initial registration failed (will retry): %v", cfg.NodeID, err)
		interval = 2 * time.Second
	}
	go a.loop(ctx, interval)
	return a, nil
}

// Stop drains the agent: deregister (best effort), stop heartbeating,
// and wait for the loop to exit. The coordinator stops routing new jobs
// here immediately; jobs already dispatched to this node are left to
// finish, which is what a graceful provd shutdown needs.
func (a *Agent) Stop() {
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = a.post(dctx, "/v1/cluster/deregister", DeregisterRequest{NodeID: a.cfg.NodeID}, nil)
	a.stop()
	<-a.done
}

// Kill stops the agent abruptly — no deregister, heartbeats just stop,
// exactly what the coordinator observes when the node process dies. The
// coordinator marks the node lost when its lease expires and
// re-dispatches its jobs. Chaos harnesses use this; operators want Stop.
func (a *Agent) Kill() {
	a.stop()
	<-a.done
}

func (a *Agent) post(ctx context.Context, path string, req, into any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(a.cfg.Coordinator, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	rb := readCapped(resp.Body, maxWireBody)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(rb)))
	}
	if into == nil {
		return nil
	}
	if err := json.Unmarshal(rb, into); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	return nil
}

// register announces the node and returns the heartbeat interval the
// coordinator granted.
func (a *Agent) register(ctx context.Context) (time.Duration, error) {
	var resp RegisterResponse
	err := a.post(ctx, "/v1/cluster/register", RegisterRequest{
		NodeID:   a.cfg.NodeID,
		Addr:     a.cfg.Addr,
		Circuits: a.cfg.Circuits,
		Workers:  a.cfg.Workers,
	}, &resp)
	if err != nil {
		return 0, err
	}
	a.mu.Lock()
	a.seq = 0 // a fresh registration resets the coordinator's seq floor
	a.mu.Unlock()
	interval := a.cfg.Interval
	if interval <= 0 {
		interval = time.Duration(resp.HeartbeatMS) * time.Millisecond
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	a.cfg.Logf("cluster agent %s: registered with %s (lease %dms, heartbeat every %v)",
		a.cfg.NodeID, a.cfg.Coordinator, resp.LeaseMS, interval)
	return interval, nil
}

func (a *Agent) loop(ctx context.Context, interval time.Duration) {
	defer close(a.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		a.mu.Lock()
		a.seq++
		req := HeartbeatRequest{NodeID: a.cfg.NodeID, Seq: a.seq}
		a.mu.Unlock()
		if a.cfg.Load != nil {
			req.Queued, req.InFlight = a.cfg.Load()
		}
		var resp HeartbeatResponse
		hctx, cancel := context.WithTimeout(ctx, interval)
		err := a.post(hctx, "/v1/cluster/heartbeat", req, &resp)
		cancel()
		switch {
		case err != nil:
			a.cfg.Logf("cluster agent %s: heartbeat failed: %v", a.cfg.NodeID, err)
		case resp.Reregister:
			if ni, rerr := a.register(ctx); rerr == nil && ni != interval {
				interval = ni
				t.Reset(interval)
			}
		}
	}
}
