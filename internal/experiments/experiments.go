// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from this repository's implementations and cost models.
// Each experiment returns a structured result plus a formatted text table
// whose rows mirror the paper's; cmd/experiments prints them and the
// repository benchmarks execute them (see DESIGN.md §3 for the index and
// EXPERIMENTS.md for paper-vs-model comparisons).
package experiments

import (
	"fmt"
	"strings"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
)

// Names lists the experiment identifiers in paper order.
func Names() []string {
	return []string{"table1", "table2", "table3", "table4",
		"fig3", "fig8", "fig9", "fig10", "fig11", "fig12"}
}

// Run executes one experiment by name and returns its report.
func Run(name string) (string, error) {
	switch name {
	case "table1":
		return Table1()
	case "table2":
		return Table2()
	case "table3":
		return Table3(DefaultTable3Config())
	case "table4":
		return Table4()
	case "fig3":
		return Fig3()
	case "fig8":
		return Fig8(DefaultFig8Config())
	case "fig9":
		return Fig9()
	case "fig10":
		return Fig10()
	case "fig11":
		return Fig11()
	case "fig12":
		return Fig12()
	default:
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
}

// table is a tiny fixed-width text-table builder.
type table struct {
	sb     strings.Builder
	widths []int
}

func newTable(title string, widths ...int) *table {
	t := &table{widths: widths}
	t.sb.WriteString(title + "\n")
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(&t.sb, "%-*s", w, c)
	}
	t.sb.WriteString("\n")
}

func (t *table) line(s string) { t.sb.WriteString(s + "\n") }

func (t *table) String() string { return t.sb.String() }

func ms(sec float64) string { return fmt.Sprintf("%.2f", gpusim.Milliseconds(sec)) }

func mustCurves() ([]*curve.Curve, error) { return curve.All() }
