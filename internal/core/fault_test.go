package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"distmsm/internal/gpusim"
)

// faultMatrix is the acceptance grid of the fault-tolerance PR: every
// fault class, seeds 1..10, 1–16 GPUs, two curves. For each cell the
// concurrent engine under injection must return a point bit-identical
// to the fault-free run (and equal to the naive reference), with the
// injected faults and recovery actions visible in Stats.Faults.
func TestFaultToleranceMatrix(t *testing.T) {
	classes := []struct {
		name string
		cfg  gpusim.FaultConfig
		// check inspects the aggregated FaultStats of the class's whole
		// (seed × gpus × curve) grid.
		check func(t *testing.T, agg FaultStats)
	}{
		{
			name: "transient",
			cfg:  gpusim.FaultConfig{Transient: 0.3},
			check: func(t *testing.T, agg FaultStats) {
				if agg.TransientErrors == 0 {
					t.Error("no transient errors recorded across the grid")
				}
				if agg.Retries == 0 {
					t.Error("transient errors triggered no retries")
				}
			},
		},
		{
			name: "straggler",
			cfg:  gpusim.FaultConfig{Straggler: 0.3, StragglerFactor: 16},
			check: func(t *testing.T, agg FaultStats) {
				if agg.Stragglers == 0 {
					t.Error("no stragglers recorded across the grid")
				}
				if agg.SpeculativeLaunches == 0 {
					t.Error("stalled shards were never speculatively re-executed")
				}
			},
		},
		{
			name: "device-lost",
			cfg:  gpusim.FaultConfig{DeviceLost: 0.12},
			check: func(t *testing.T, agg FaultStats) {
				if agg.DevicesLost == 0 {
					t.Error("no device losses recorded across the grid")
				}
				if agg.Reassignments == 0 {
					t.Error("lost devices caused no shard reassignments")
				}
			},
		},
		{
			name: "corrupt",
			cfg:  gpusim.FaultConfig{Corrupt: 0.25},
			check: func(t *testing.T, agg FaultStats) {
				if agg.Corruptions == 0 {
					t.Error("no corruptions recorded across the grid")
				}
				if agg.VerificationRuns == 0 {
					t.Error("corruption configured but verification never ran")
				}
				if agg.VerificationFailures == 0 {
					t.Error("corrupted shards were never rejected by verification")
				}
				if agg.VerificationFailures > agg.VerificationRuns {
					t.Errorf("more verification failures (%d) than runs (%d)",
						agg.VerificationFailures, agg.VerificationRuns)
				}
			},
		},
	}
	ctx := context.Background()
	for _, cl := range classes {
		cl := cl
		t.Run(cl.name, func(t *testing.T) {
			var agg FaultStats
			for _, curveName := range []string{"BN254", "BLS12-381"} {
				c := mustCurve(t, curveName)
				const n = 40
				points := c.SamplePoints(n, 31)
				scalars := c.SampleScalars(n, 32)
				want := c.MSMReference(points, scalars)
				for _, gpus := range []int{1, 4, 16} {
					sys := cluster(t, gpus)
					clean, err := RunContext(ctx, c, sys, points, scalars,
						Options{WindowSize: 8, Engine: EngineConcurrent})
					if err != nil {
						t.Fatalf("%s gpus=%d fault-free: %v", curveName, gpus, err)
					}
					if clean.Stats.Faults.Any() {
						t.Fatalf("%s gpus=%d: fault-free run reported faults: %+v",
							curveName, gpus, clean.Stats.Faults)
					}
					if !c.EqualXYZZ(clean.Point, want) {
						t.Fatalf("%s gpus=%d: fault-free run wrong vs reference", curveName, gpus)
					}
					for seed := int64(1); seed <= 10; seed++ {
						cfg := cl.cfg
						cfg.Seed = seed
						res, err := RunContext(ctx, c, sys, points, scalars,
							Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg})
						if err != nil {
							t.Fatalf("%s gpus=%d seed=%d: %v", curveName, gpus, seed, err)
						}
						if !reflect.DeepEqual(clean.Point, res.Point) {
							t.Fatalf("%s gpus=%d seed=%d: faulted run not bit-identical to fault-free run",
								curveName, gpus, seed)
						}
						if !c.EqualXYZZ(res.Point, want) {
							t.Fatalf("%s gpus=%d seed=%d: faulted run wrong vs MSMReference",
								curveName, gpus, seed)
						}
						f := res.Stats.Faults
						agg.DevicesLost += f.DevicesLost
						agg.TransientErrors += f.TransientErrors
						agg.Stragglers += f.Stragglers
						agg.Corruptions += f.Corruptions
						agg.Retries += f.Retries
						agg.Reassignments += f.Reassignments
						agg.SpeculativeLaunches += f.SpeculativeLaunches
						agg.SpeculativeWins += f.SpeculativeWins
						agg.VerificationRuns += f.VerificationRuns
						agg.VerificationFailures += f.VerificationFailures
					}
				}
			}
			cl.check(t, agg)
		})
	}
}

// TestFaultDeterminism: the same seed reproduces the same fault history,
// stat for stat, across repeated runs (decisions are pure functions of
// the shard identity, not of goroutine interleaving).
func TestFaultDeterminism(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	const n = 48
	points := c.SamplePoints(n, 33)
	scalars := c.SampleScalars(n, 34)
	cfg := gpusim.FaultConfig{Seed: 3, Transient: 0.2, Corrupt: 0.1, DeviceLost: 0.02}
	opts := Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg}
	first, err := RunContext(context.Background(), c, sys, points, scalars, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := RunContext(context.Background(), c, sys, points, scalars, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Point, again.Point) {
			t.Fatal("same seed produced different points")
		}
		// Injected-fault counts are replayed exactly; recovery-side counts
		// (retries, speculation) may vary with host timing, the injected
		// ones may not for the deterministic classes. Transient and
		// corruption decisions depend only on (shard, attempt) tuples that
		// re-occur identically when no device is lost; compare the classes
		// that fired.
		if (first.Stats.Faults.DevicesLost > 0) != (again.Stats.Faults.DevicesLost > 0) {
			t.Errorf("run %d: device-loss behaviour diverged: %+v vs %+v",
				i, first.Stats.Faults, again.Stats.Faults)
		}
	}
}

// TestAllGPUsLostDegradesToSerial: DeviceLost = 1 kills every device on
// its first shard; the engine must fall back to the serial host engine
// and still return the exact result.
func TestAllGPUsLostDegradesToSerial(t *testing.T) {
	c := mustCurve(t, "BLS12-381")
	const n = 32
	points := c.SamplePoints(n, 35)
	scalars := c.SampleScalars(n, 36)
	want := c.MSMReference(points, scalars)
	for _, gpus := range []int{1, 4, 16} {
		sys := cluster(t, gpus)
		cfg := gpusim.FaultConfig{Seed: 5, DeviceLost: 1}
		res, err := RunContext(context.Background(), c, sys, points, scalars,
			Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg})
		if err != nil {
			t.Fatalf("gpus=%d: %v", gpus, err)
		}
		f := res.Stats.Faults
		if !f.DegradedToSerial {
			t.Errorf("gpus=%d: DegradedToSerial not set", gpus)
		}
		if f.DevicesLost != gpus {
			t.Errorf("gpus=%d: DevicesLost = %d, want %d", gpus, f.DevicesLost, gpus)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Errorf("gpus=%d: degraded run wrong vs reference", gpus)
		}
		// The serial fallback attributes no per-GPU work.
		if len(res.Stats.PerGPU) != 0 {
			t.Errorf("gpus=%d: degraded serial run reported per-GPU stats", gpus)
		}
	}
}

// TestAllGPUsLostNoFallback: with DisableFallback the loss of every
// device surfaces the typed sentinel instead of degrading.
func TestAllGPUsLostNoFallback(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	points := c.SamplePoints(16, 37)
	scalars := c.SampleScalars(16, 38)
	cfg := gpusim.FaultConfig{Seed: 5, DeviceLost: 1, DisableFallback: true}
	_, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg})
	if !errors.Is(err, ErrAllGPUsLost) {
		t.Fatalf("want ErrAllGPUsLost, got %v", err)
	}
}

// TestPersistentCorruptionFailsVerification: Corrupt = 1 corrupts every
// execution of every shard, so the verification keeps rejecting results
// until the execution budget runs out and the typed sentinel surfaces —
// the engine never silently returns a wrong point.
func TestPersistentCorruptionFailsVerification(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 2)
	points := c.SamplePoints(8, 39)
	scalars := c.SampleScalars(8, 40)
	cfg := gpusim.FaultConfig{Seed: 9, Corrupt: 1}
	_, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 10, Engine: EngineConcurrent, Faults: &cfg})
	if !errors.Is(err, ErrVerificationFailed) {
		t.Fatalf("want ErrVerificationFailed, got %v", err)
	}
}

// TestVerifySamplingOptions: negative sampling disables verification
// even under corruption (the corrupted point then escapes — documented
// sharp edge), and explicit sampling on a clean run just burns checks.
func TestVerifySamplingOptions(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	const n = 32
	points := c.SamplePoints(n, 43)
	scalars := c.SampleScalars(n, 44)
	want := c.MSMReference(points, scalars)

	// Explicit sampling, no faults: verifications run and all pass.
	res, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, VerifySampling: 1,
			Faults: &gpusim.FaultConfig{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults.VerificationRuns == 0 {
		t.Error("VerifySampling=1 ran no verifications")
	}
	if res.Stats.Faults.VerificationFailures != 0 {
		t.Error("clean run failed verification")
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("verified clean run wrong vs reference")
	}

	// Negative sampling turns verification off; with corruption injected
	// the run completes without a single check (and the result is wrong —
	// that is exactly the failure mode verification exists to stop).
	res, err = RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, VerifySampling: -1,
			Faults: &gpusim.FaultConfig{Seed: 2, Corrupt: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults.VerificationRuns != 0 {
		t.Error("negative VerifySampling still ran verifications")
	}
	if res.Stats.Faults.Corruptions > 0 && c.EqualXYZZ(res.Point, want) {
		t.Error("corrupted unverified run returned the correct point — injection inert?")
	}
}

// TestVerifyModesDifferential pins that the default constant-size
// outsourced check and the recompute-based reference agree: both accept
// every shard of a clean run, both reject injected corruption and
// recover to the bit-identical point. VerifyRecompute is kept exactly
// to serve as this oracle.
func TestVerifyModesDifferential(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	const n = 48
	points := c.SamplePoints(n, 51)
	scalars := c.SampleScalars(n, 52)
	want := c.MSMReference(points, scalars)
	for _, mode := range []VerifyMode{VerifyOutsource, VerifyRecompute} {
		for _, corrupt := range []float64{0, 0.3} {
			cfg := gpusim.FaultConfig{Seed: 7, Corrupt: corrupt}
			res, err := RunContext(context.Background(), c, sys, points, scalars,
				Options{WindowSize: 8, Engine: EngineConcurrent, VerifySampling: 1,
					VerifyMode: mode, Faults: &cfg})
			if err != nil {
				t.Fatalf("mode=%d corrupt=%v: %v", mode, corrupt, err)
			}
			if res.Stats.Faults.VerificationRuns == 0 {
				t.Errorf("mode=%d corrupt=%v: no verifications ran", mode, corrupt)
			}
			if corrupt == 0 && res.Stats.Faults.VerificationFailures != 0 {
				t.Errorf("mode=%d: clean run failed verification", mode)
			}
			if corrupt > 0 {
				if res.Stats.Faults.Corruptions == 0 {
					t.Fatalf("mode=%d: corruption schedule inert", mode)
				}
				if res.Stats.Faults.VerificationFailures == 0 {
					t.Errorf("mode=%d: corrupted shards never rejected", mode)
				}
			}
			if !c.EqualXYZZ(res.Point, want) {
				t.Errorf("mode=%d corrupt=%v: wrong point vs reference", mode, corrupt)
			}
		}
	}
}

// TestVerifyOutsourceMaskTerms: the mask-size knob plumbs through and a
// 1-term mask still rejects the injector's whole-accumulator
// perturbation (corruptShard perturbs an accumulator, not a mask-sized
// subset, so any mask size catches it via the aggregate equation).
func TestVerifyOutsourceMaskTerms(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 2)
	const n = 32
	points := c.SamplePoints(n, 53)
	scalars := c.SampleScalars(n, 54)
	want := c.MSMReference(points, scalars)
	cfg := gpusim.FaultConfig{Seed: 3, Corrupt: 0.4}
	res, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, VerifySampling: 1,
			VerifyMaskTerms: 1, Faults: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Faults.Corruptions == 0 || res.Stats.Faults.VerificationFailures == 0 {
		t.Fatalf("faults=%+v: corruption not injected or not caught", res.Stats.Faults)
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("wrong point vs reference")
	}
}

// TestRetryPolicyReassignment: MaxAttempts = 1 moves a failing shard off
// its owner immediately, so persistent per-GPU transient faults must
// show reassignments.
func TestRetryPolicyReassignment(t *testing.T) {
	c := mustCurve(t, "BN254")
	sys := cluster(t, 4)
	const n = 32
	points := c.SamplePoints(n, 45)
	scalars := c.SampleScalars(n, 46)
	cfg := gpusim.FaultConfig{Seed: 11, Transient: 0.4}
	res, err := RunContext(context.Background(), c, sys, points, scalars,
		Options{WindowSize: 8, Engine: EngineConcurrent, Faults: &cfg,
			Retry: RetryPolicy{MaxAttempts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Stats.Faults
	if f.TransientErrors == 0 {
		t.Fatal("no transient errors at p=0.4")
	}
	if f.Reassignments == 0 {
		t.Error("MaxAttempts=1 produced no reassignments despite failures")
	}
	want := c.MSMReference(points, scalars)
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("reassigned run wrong vs reference")
	}
}
