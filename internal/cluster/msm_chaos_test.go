package cluster_test

// The outsourced-MSM chaos suite: an in-process multi-node cluster
// whose MSM dispatches are hit with the same seeded node faults as the
// proving path (crash, partition, slow-node, corrupted — i.e. lying —
// responses), holding the protocol's hard invariants across seeds:
// every job completes, every result is byte-identical to the fault-free
// serial reference, every corruption is detected by the constant-size
// check, and a fault schedule that injects nothing fails the test
// rather than silently asserting nothing.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distmsm/internal/cluster"
	"distmsm/internal/curve"
	"distmsm/internal/outsource"
	"distmsm/internal/serial"
)

// msmChaosWorker is an honest in-process MSM node: it evaluates shards
// exactly like the service's /v1/msm handler. Faults are layered on top
// by the coordinator's NodeInjector (cluster.Config.Faults), so a
// "corrupt" dispatch returns a valid-but-wrong point — a lying worker,
// not line noise.
type msmChaosWorker struct{}

func (msmChaosWorker) Dispatch(ctx context.Context, req cluster.DispatchRequest) ([]byte, error) {
	return nil, errors.New("msm chaos worker does not prove")
}

func (msmChaosWorker) DispatchMSM(ctx context.Context, req cluster.MSMDispatchRequest) ([]byte, error) {
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		return nil, err
	}
	scalars, err := req.DecodeScalars()
	if err != nil {
		return nil, err
	}
	points := crv.SamplePoints(req.RangeHi, req.PointSeed)[req.RangeLo:req.RangeHi]
	sum := crv.MSMReference(points, scalars)
	aff := crv.ToAffine(sum)
	return serial.MarshalPoint(crv, &aff, false), nil
}

// msmChaosReference marshals the fault-free serial evaluation of the
// instance — the byte-identity oracle.
func msmChaosReference(t *testing.T, req cluster.MSMRequest) []byte {
	t.Helper()
	crv, err := curve.ByName(req.Curve)
	if err != nil {
		t.Fatal(err)
	}
	sum := crv.MSMReference(crv.SamplePoints(req.N, req.PointSeed), crv.SampleScalars(req.N, req.ScalarSeed))
	aff := crv.ToAffine(sum)
	return serial.MarshalPoint(crv, &aff, false)
}

// TestMSMChaos: for each fault seed, a batch of outsourced MSMs runs
// against a three-node fleet under injected crashes, partitions, slow
// nodes and lying responses. Every job must complete with bytes
// identical to the serial reference, and the schedule must not be inert.
func TestMSMChaos(t *testing.T) {
	for _, faultSeed := range []int64{5, 17, 23} {
		t.Run(fmt.Sprintf("seed=%d", faultSeed), func(t *testing.T) {
			runMSMChaos(t, faultSeed)
		})
	}
}

func runMSMChaos(t *testing.T, faultSeed int64) {
	check := clusterLeakCheck(t)
	const (
		nodes = 3
		jobs  = 6
	)
	workers := map[string]cluster.WorkerClient{}
	ids := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = fmt.Sprintf("w%d", i)
		workers[ids[i]] = msmChaosWorker{}
	}
	inj, err := cluster.NewNodeInjector(cluster.NodeFaultConfig{
		Seed:      faultSeed,
		Crash:     0.05,
		Partition: 0.10,
		Slow:      0.10,
		Corrupt:   0.15,
		SlowDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	lease := time.Second
	coord := cluster.NewCoordinator(cluster.Config{
		Lease:         lease,
		SweepInterval: 200 * time.Millisecond,
		Breaker:       cluster.BreakerConfig{FailThreshold: 2, Cooldown: 150 * time.Millisecond},
		MaxAttempts:   6,
		// A partitioned MSM dispatch must fail its attempt, not ride the
		// whole job deadline (same rule as the proving path).
		DispatchTimeout: 3 * time.Second,
		DefaultTimeout:  60 * time.Second,
		DialWorker:      func(addr string) cluster.WorkerClient { return workers[addr] },
		Faults:          inj,
		MSMRandom:       outsource.NewSeededReader(uint64(faultSeed)),
	})
	for _, id := range ids {
		if _, err := coord.Register(cluster.RegisterRequest{NodeID: id, Addr: id}); err != nil {
			t.Fatal(err)
		}
	}

	// Heartbeat pump: a node the injector crashed stops heartbeating, so
	// the lease sweeper marks it lost and shards re-route to survivors.
	stopHB := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		seqs := make([]uint64, nodes)
		tick := time.NewTicker(lease / 5)
		defer tick.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-tick.C:
				for i, id := range ids {
					if inj.Crashed(i) {
						continue
					}
					seqs[i]++
					_, _ = coord.Heartbeat(cluster.HeartbeatRequest{NodeID: id, Seq: seqs[i]})
				}
			}
		}
	}()

	reqs := make([]cluster.MSMRequest, jobs)
	for i := range reqs {
		reqs[i] = cluster.MSMRequest{Curve: "BN254", PointSeed: uint64(100 + i), ScalarSeed: int64(200 + i), N: 90 + 7*i}
	}
	results := make([][]byte, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = coord.MSM(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	close(stopHB)
	<-hbDone

	for i := range reqs {
		if errs[i] != nil {
			t.Errorf("MSM job %d failed despite failover: %v", i, errs[i])
			continue
		}
		if !bytes.Equal(results[i], msmChaosReference(t, reqs[i])) {
			t.Errorf("MSM job %d diverges from the fault-free serial reference", i)
		}
	}
	st := coord.Stats()
	t.Logf("seed %d: crashed=%d checks=%d rejects=%d corrupt=%d redispatches=%d localFallbacks=%d trips=%d",
		faultSeed, inj.CrashedCount(), st.MSMChecks, st.MSMRejects, st.CorruptProofs,
		st.Redispatches, st.LocalFallbacks, st.BreakerTrips)
	if st.MSMChecks == 0 && st.LocalFallbacks == 0 {
		t.Error("no shard was ever checked or degraded — the MSM path never ran")
	}
	// The injector must actually have injected something at these seeds
	// and rates — a chaos test that tests nothing must fail loudly.
	if st.Redispatches == 0 && st.MSMRejects == 0 && st.CorruptProofs == 0 && inj.CrashedCount() == 0 {
		t.Error("no fault was injected: the chaos configuration is inert")
	}
	coord.Close()
	check()
}

// TestMSMChaosAlwaysLyingNode is the named acceptance criterion: one of
// three nodes lies on every dispatch (corrupt-certain injector — its
// claims are valid curve points shifted by the generator), and every
// one of its claims must be caught by the constant-size check, its
// breaker charged, with every final result byte-identical to the
// reference.
func TestMSMChaosAlwaysLyingNode(t *testing.T) {
	check := clusterLeakCheck(t)
	const (
		nodes = 3
		jobs  = 4
	)
	workers := map[string]cluster.WorkerClient{}
	ids := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = fmt.Sprintf("w%d", i)
		workers[ids[i]] = msmChaosWorker{}
	}
	// Only node 0 is wrapped, with a corrupt-certain injector: every
	// dispatch it serves comes back as a lie.
	inj, err := cluster.NewNodeInjector(cluster.NodeFaultConfig{Seed: 1, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	workers[ids[0]] = inj.WrapClient(0, workers[ids[0]])

	coord := cluster.NewCoordinator(cluster.Config{
		Lease:          time.Hour, // no crashes here: leases must not interfere
		MaxAttempts:    6,
		DefaultTimeout: 60 * time.Second,
		DialWorker:     func(addr string) cluster.WorkerClient { return workers[addr] },
		MSMRandom:      outsource.NewSeededReader(2),
	})
	for _, id := range ids {
		if _, err := coord.Register(cluster.RegisterRequest{NodeID: id, Addr: id}); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < jobs; i++ {
		req := cluster.MSMRequest{Curve: "BN254", PointSeed: uint64(i + 1), ScalarSeed: int64(i + 51), N: 80 + i}
		got, err := coord.MSM(context.Background(), req)
		if err != nil {
			t.Fatalf("MSM job %d: %v", i, err)
		}
		if !bytes.Equal(got, msmChaosReference(t, req)) {
			t.Fatalf("MSM job %d diverges from the serial reference — a lie got through", i)
		}
	}

	st := coord.Stats()
	var liarDispatches, liarFailures uint64
	for _, n := range coord.Snapshot() {
		if n.ID == ids[0] {
			liarDispatches, liarFailures = n.Dispatches, n.Failures
		}
	}
	if liarDispatches == 0 {
		t.Fatal("the lying node was never dispatched to — the test asserted nothing")
	}
	// Every claim the liar produced is wrong, so every one of its settled
	// dispatches must have been charged as a failure.
	if liarFailures != liarDispatches {
		t.Errorf("lying node: %d/%d dispatches charged — some lies went unpunished", liarFailures, liarDispatches)
	}
	if st.MSMRejects == 0 {
		t.Error("no constant-size check ever rejected despite a lying node")
	}
	t.Logf("always-lying node: dispatches=%d failures=%d checks=%d rejects=%d corrupt=%d trips=%d",
		liarDispatches, liarFailures, st.MSMChecks, st.MSMRejects, st.CorruptProofs, st.BreakerTrips)
	coord.Close()
	check()
}
