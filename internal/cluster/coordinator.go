package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"distmsm/internal/telemetry"
)

// WorkerClient is the coordinator's transport to one worker node. The
// production implementation speaks HTTP to the node's
// /v1/cluster/dispatch endpoint (see client.go); tests substitute
// in-process clients, optionally wrapped by the node fault injector.
type WorkerClient interface {
	// Dispatch runs one proof job on the node and returns the marshalled
	// proof. It must honour ctx — a cancelled dispatch must abandon the
	// job on the worker (the HTTP client does this for free: the worker
	// cancels the job when the request context dies).
	Dispatch(ctx context.Context, req DispatchRequest) ([]byte, error)
}

// LocalBackend is the coordinator's in-process fallback and proof
// checker. *service.Service satisfies it; the indirection keeps this
// package free of a dependency on internal/service (which imports this
// package for the worker-side wire handling).
type LocalBackend interface {
	// ProveLocal proves (circuit, seed) in-process and returns the
	// marshalled proof.
	ProveLocal(ctx context.Context, circuit string, seed int64) ([]byte, error)
	// VerifyProof checks a marshalled proof of (circuit, seed). A
	// decode failure or a failed pairing check both report false.
	VerifyProof(circuit string, seed int64, proof []byte) (bool, error)
}

// Config configures a Coordinator. Everything has a documented default;
// a Coordinator without a Local backend cannot verify remote proofs or
// degrade to local proving, and says so in its docs rather than its
// constructor.
type Config struct {
	// Local is the in-process backend: the degrade-to-local prover when
	// every remote node is down, and the verifier of every remote proof
	// (the corrupted-response catch). Optional; without it remote proofs
	// are accepted unverified and an all-nodes-down cluster fails jobs
	// with ErrNoNodes.
	Local LocalBackend
	// Lease is how long a node stays live after its last accepted
	// heartbeat; a node that misses it is marked lost and its in-flight
	// jobs are re-dispatched (default 10s).
	Lease time.Duration
	// SweepInterval is the lease-expiry check cadence (default Lease/4).
	SweepInterval time.Duration
	// Breaker tunes the per-node circuit breakers.
	Breaker BreakerConfig
	// HedgeMultiple launches a speculative duplicate dispatch once the
	// primary has been out HedgeMultiple × the EWMA dispatch latency
	// (default 4; first result wins, the loser is cancelled).
	HedgeMultiple float64
	// HedgeMin floors the hedge delay so cold EWMAs do not hedge every
	// job (default 250ms).
	HedgeMin time.Duration
	// MaxAttempts bounds how many nodes one job may be dispatched to
	// before the coordinator gives up on remotes (default 4). The local
	// fallback is tried regardless when no node admits.
	MaxAttempts int
	// MaxNodes bounds the node table (default 64).
	MaxNodes int
	// DefaultTimeout is the per-job deadline when the request does not
	// set one (default 1 minute).
	DefaultTimeout time.Duration
	// DispatchTimeout caps one dispatch attempt to one node. A
	// partitioned or hung node fails its attempt after this long — a
	// breaker-relevant timeout — and the job re-routes, instead of
	// riding the whole job deadline on a node that will never answer.
	// 0 bounds attempts only by the job deadline (the default).
	DispatchTimeout time.Duration
	// DialWorker builds the transport to a registering node's advertised
	// address (default: the HTTP client of client.go). Tests substitute
	// in-process clients here.
	DialWorker func(addr string) WorkerClient
	// Faults optionally injects deterministic node-level faults into
	// every dispatch (chaos testing); nil injects nothing. The injector
	// wraps whatever DialWorker returns, keyed by registration order.
	Faults *NodeInjector
	// Metrics, when set, receives the coordinator's operational metrics
	// (node states, heartbeat ages, redispatches, hedges, lost-node
	// recoveries). The coordinator's Handler mounts it at /metrics.
	Metrics *telemetry.Registry
	// MSMRandom supplies the secret randomness of the outsourced-MSM
	// checks (see msm.go); nil uses crypto/rand.Reader. It must be safe
	// for concurrent readers — shards derive their checks in parallel.
	// Tests substitute outsource.NewSeededReader for reproducible
	// challenge derivation — the fault schedule stays deterministic
	// either way, this only affects which secrets the checks draw.
	MSMRandom io.Reader
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.Lease / 4
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.HedgeMultiple <= 0 {
		c.HedgeMultiple = 4
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 250 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = time.Minute
	}
	if c.DialWorker == nil {
		c.DialWorker = func(addr string) WorkerClient { return NewHTTPWorkerClient(addr) }
	}
	return c
}

// node is one registered worker's coordinator-side state.
type node struct {
	id     string
	addr   string
	index  int // registration order; keys the fault injector
	client WorkerClient

	lost     bool // lease expired; revived by heartbeat or re-register
	draining bool // deregistered gracefully; in-flight left to finish
	lastHB   time.Time
	seq      uint64
	queued   int // worker-reported, informational
	remote   int // worker-reported in-flight, informational

	// inflight tracks the coordinator-side dispatches outstanding on
	// this node: attempt ID → cancel. A lost lease cancels them all,
	// which unwinds the waiting Prove calls into redispatch.
	inflight map[uint64]context.CancelFunc

	br      nodeBreaker
	ewmaSec float64

	dispatches uint64 // lifetime, successful + failed
	failures   uint64 // lifetime failed dispatches
}

// NodeSnapshot is one node's externally visible state, the payload of
// the coordinator's health endpoint.
type NodeSnapshot struct {
	ID       string       `json:"id"`
	Addr     string       `json:"addr"`
	State    string       `json:"state"` // alive | lost | draining
	Breaker  BreakerState `json:"-"`
	BreakerS string       `json:"breaker"`
	// HeartbeatAge is the time since the last accepted heartbeat; the
	// wire carries it as whole milliseconds.
	HeartbeatAge   time.Duration `json:"-"`
	HeartbeatAgeMS int64         `json:"heartbeat_age_ms"`
	InFlight       int           `json:"in_flight"`
	Dispatches     uint64        `json:"dispatches"`
	Failures       uint64        `json:"failures"`
	Trips          int           `json:"breaker_trips"`
}

// Stats is a counters snapshot of the coordinator.
type Stats struct {
	Registrations     uint64
	Heartbeats        uint64
	StaleHeartbeats   uint64
	LostNodes         uint64 // lease expiries
	LostJobsRecovered uint64 // in-flight dispatches cancelled by a lost lease
	Redispatches      uint64 // job attempts re-routed after a failure
	Hedges            uint64 // speculative duplicate dispatches launched
	HedgeWins         uint64 // speculative dispatches that finished first
	LocalFallbacks    uint64 // jobs degraded to the local backend
	CorruptProofs     uint64 // remote proofs/claims rejected by verification
	MSMChecks         uint64 // outsourced-MSM constant-size checks run
	MSMRejects        uint64 // outsourced-MSM checks that rejected a claim
	DispatchOK        uint64
	DispatchErrors    uint64
	BreakerTrips      uint64
	JobsCompleted     uint64
	JobsFailed        uint64
}

// Coordinator fronts a fleet of provd worker nodes: it owns the node
// table with its heartbeat leases and per-node breakers, routes jobs
// with circuit affinity plus least-loaded fallback, hedges stragglers,
// re-dispatches the jobs of lost nodes, and degrades to local proving
// when no remote is available. Build with NewCoordinator, stop with
// Close.
type Coordinator struct {
	cfg     Config
	metrics *coordMetrics

	sweepStop context.CancelFunc
	sweepDone chan struct{}

	lastJob   atomic.Uint64
	attemptID atomic.Uint64

	mu       sync.Mutex
	closed   bool
	nodes    map[string]*node
	order    []string          // registration order: deterministic iteration
	affinity map[string]string // circuit → node that last proved it
	ewmaSec  float64           // global dispatch-latency EWMA (hedge clock)
	stats    Stats
}

// NewCoordinator validates the configuration and starts the lease
// sweeper.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		nodes:    map[string]*node{},
		affinity: map[string]string{},
	}
	c.metrics = newCoordMetrics(cfg, c)
	sctx, stop := context.WithCancel(context.Background())
	c.sweepStop = stop
	c.sweepDone = make(chan struct{})
	go c.sweep(sctx)
	return c
}

// Close stops the sweeper. In-flight Prove calls keep their already-
// launched dispatches; new Prove/Register calls fail with
// ErrShuttingDown.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sweepDone
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.sweepStop()
	<-c.sweepDone
}

// Lease returns the effective heartbeat lease.
func (c *Coordinator) Lease() time.Duration { return c.cfg.Lease }

// Register admits a worker node (or refreshes a known one — a node that
// restarted re-registers under its ID and simply resumes). The response
// carries the lease the node must keep renewing.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if err := validateNodeID(req.NodeID); err != nil {
		return RegisterResponse{}, err
	}
	if req.Addr == "" || len(req.Addr) > maxNodeAddr {
		return RegisterResponse{}, fmt.Errorf("%w: bad addr", ErrBadMessage)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return RegisterResponse{}, ErrShuttingDown
	}
	n := c.nodes[req.NodeID]
	if n == nil {
		if len(c.nodes) >= c.cfg.MaxNodes {
			c.mu.Unlock()
			return RegisterResponse{}, fmt.Errorf("%w (%d registered)", ErrTooManyNodes, c.cfg.MaxNodes)
		}
		n = &node{id: req.NodeID, index: len(c.order), inflight: map[uint64]context.CancelFunc{}}
		c.nodes[req.NodeID] = n
		c.order = append(c.order, req.NodeID)
	}
	if n.client == nil || n.addr != req.Addr {
		wc := c.cfg.DialWorker(req.Addr)
		n.client = c.cfg.Faults.WrapClient(n.index, wc)
	}
	n.addr = req.Addr
	n.lost = false
	n.draining = false
	n.lastHB = time.Now()
	n.seq = 0
	c.stats.Registrations++
	c.mu.Unlock()
	c.metrics.observeRegistration()
	return RegisterResponse{
		LeaseMS:     c.cfg.Lease.Milliseconds(),
		HeartbeatMS: (c.cfg.Lease / 3).Milliseconds(),
	}, nil
}

// Heartbeat renews a node's lease. A heartbeat from an unknown node
// asks it to re-register (and deliberately does NOT create a node-table
// entry: unauthenticated heartbeats must not grow coordinator state).
// A stale sequence number is a delayed duplicate and never renews.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	if err := validateNodeID(req.NodeID); err != nil {
		return HeartbeatResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[req.NodeID]
	if n == nil {
		return HeartbeatResponse{OK: false, Reregister: true}, nil
	}
	if req.Seq <= n.seq && req.Seq != 0 {
		c.stats.StaleHeartbeats++
		return HeartbeatResponse{OK: false}, fmt.Errorf("%w: seq %d ≤ %d", ErrStaleLease, req.Seq, n.seq)
	}
	n.seq = req.Seq
	n.lastHB = time.Now()
	n.lost = false
	n.queued = req.Queued
	n.remote = req.InFlight
	c.stats.Heartbeats++
	c.metrics.observeHeartbeat()
	return HeartbeatResponse{OK: true}, nil
}

// Deregister starts a graceful drain of the node: it stops receiving
// new dispatches, but — unlike a lease expiry — its in-flight jobs are
// left to finish. The entry stays in the table (bounded by MaxNodes) so
// a restart under the same ID re-registers cleanly.
func (c *Coordinator) Deregister(req DeregisterRequest) error {
	if err := validateNodeID(req.NodeID); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.nodes[req.NodeID]
	if n == nil {
		return fmt.Errorf("%w: %q", ErrUnknownNode, req.NodeID)
	}
	n.draining = true
	return nil
}

// sweep is the lease-expiry loop: a node whose heartbeat is older than
// the lease is marked lost and every dispatch outstanding on it is
// cancelled, which unwinds the waiting Prove calls into redispatch —
// the node-level analogue of shard reassignment after device loss.
func (c *Coordinator) sweep(ctx context.Context) {
	defer close(c.sweepDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.expireLeases(time.Now())
		}
	}
}

// expireLeases marks overdue nodes lost and cancels their in-flight
// dispatches. Exported to the tests via the package-internal clock
// argument so lease expiry is drivable without real waiting.
func (c *Coordinator) expireLeases(now time.Time) {
	var cancels []context.CancelFunc
	lost, recovered := 0, 0
	c.mu.Lock()
	for _, id := range c.order {
		n := c.nodes[id]
		if n.lost || now.Sub(n.lastHB) <= c.cfg.Lease {
			continue
		}
		n.lost = true
		c.stats.LostNodes++
		c.stats.LostJobsRecovered += uint64(len(n.inflight))
		lost++
		recovered += len(n.inflight)
		for _, cancel := range n.inflight {
			cancels = append(cancels, cancel)
		}
	}
	c.mu.Unlock()
	// Metric emission and cancellation happen outside the mutex: the
	// registry's scrape path takes c.mu (the GaugeFuncs), and each cancel
	// unwinds a Prove attempt that will immediately call back into
	// pickNode.
	if lost > 0 {
		c.metrics.observeLostNodes(lost, recovered)
	}
	for _, cancel := range cancels {
		cancel()
	}
}

// dispatchable reports whether the node can take a new job now
// (read-only; the breaker admission is committed separately).
func (n *node) dispatchable(now time.Time, cfg BreakerConfig) bool {
	return !n.lost && !n.draining && n.br.canAdmit(now, cfg)
}

// pickNode chooses the next node for a job: the node that last proved
// this circuit if it can take work (its per-circuit base caches are
// warm — same reason the single-node queue coalesces by circuit),
// otherwise the least-loaded dispatchable node, ties broken by
// registration order for determinism. Returns nil when no node admits.
// probe reports that the admission consumed the node's half-open probe
// slot; the caller owns the slot and must either record the dispatch
// outcome or release it via releaseProbe.
func (c *Coordinator) pickNode(circuit string, exclude map[string]bool) (n *node, probe bool) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if id := c.affinity[circuit]; id != "" && !exclude[id] {
		if n := c.nodes[id]; n != nil && n.dispatchable(now, c.cfg.Breaker) {
			if admitted, probe := n.br.admit(now, c.cfg.Breaker); admitted {
				return n, probe
			}
		}
	}
	var best *node
	for _, id := range c.order {
		n := c.nodes[id]
		if exclude[id] || !n.dispatchable(now, c.cfg.Breaker) {
			continue
		}
		if best == nil || len(n.inflight) < len(best.inflight) {
			best = n
		}
	}
	if best == nil {
		return nil, false
	}
	admitted, probe := best.br.admit(now, c.cfg.Breaker)
	if !admitted {
		return nil, false
	}
	return best, probe
}

// releaseProbe frees the half-open probe slot a dispatch attempt was
// holding when the attempt is abandoned without a recorded outcome
// (hedge loser cancelled, or the job's own context dying mid-flight).
// Without it the node's breaker would stay HalfOpen with its one probe
// slot consumed forever — permanently unroutable.
func (c *Coordinator) releaseProbe(n *node) {
	c.mu.Lock()
	n.br.releaseProbe()
	c.mu.Unlock()
}

// recordDispatch folds one dispatch outcome into the node's breaker,
// EWMAs and counters.
func (c *Coordinator) recordDispatch(n *node, ok bool, sec float64, circuit string) {
	now := time.Now()
	c.mu.Lock()
	n.dispatches++
	if ok {
		c.stats.DispatchOK++
		c.affinity[circuit] = n.id
		if n.ewmaSec == 0 {
			n.ewmaSec = sec
		} else {
			n.ewmaSec += 0.25 * (sec - n.ewmaSec)
		}
		if c.ewmaSec == 0 {
			c.ewmaSec = sec
		} else {
			c.ewmaSec += 0.25 * (sec - c.ewmaSec)
		}
	} else {
		n.failures++
		c.stats.DispatchErrors++
	}
	tripped := n.br.record(ok, now, c.cfg.Breaker)
	if tripped {
		c.stats.BreakerTrips++
	}
	c.mu.Unlock()
	c.metrics.observeDispatch(ok, sec, tripped)
}

// hedgeDelay is how long a dispatch may be outstanding before a
// speculative duplicate is launched: HedgeMultiple × the EWMA dispatch
// latency, floored at HedgeMin (a cold EWMA must not hedge everything).
func (c *Coordinator) hedgeDelay() time.Duration {
	c.mu.Lock()
	ewma := c.ewmaSec
	c.mu.Unlock()
	d := time.Duration(c.cfg.HedgeMultiple * ewma * float64(time.Second))
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	return d
}

// trackInflight registers a dispatch attempt on the node so a lost
// lease can cancel it; the returned release must run when the attempt
// finishes.
func (c *Coordinator) trackInflight(n *node, cancel context.CancelFunc) (id uint64, release func()) {
	id = c.attemptID.Add(1)
	c.mu.Lock()
	n.inflight[id] = cancel
	c.mu.Unlock()
	return id, func() {
		c.mu.Lock()
		delete(n.inflight, id)
		c.mu.Unlock()
	}
}

// Prove runs one job through the cluster: route, dispatch (hedged),
// verify, and — when routing finds nobody — degrade to the local
// backend. The error of the last failed attempt is preserved in the
// terminal error.
func (c *Coordinator) Prove(ctx context.Context, req ProveRequest) ([]byte, error) {
	if err := validateCircuitName(req.Circuit); err != nil {
		return nil, err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrShuttingDown
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = c.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	jobID := c.lastJob.Add(1)

	exclude := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		n, probe := c.pickNode(req.Circuit, exclude)
		if n == nil {
			// Every node is lost, quarantined, draining or already tried:
			// degrade to local in-process proving.
			return c.proveLocal(ctx, jobID, req, lastErr)
		}
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Redispatches++
			c.mu.Unlock()
			c.metrics.observeRedispatch()
		}
		proof, winner, err := c.dispatchHedged(ctx, n, probe, jobID, req, exclude)
		if err == nil {
			if ok := c.verifyRemote(req, proof); !ok {
				// Corrupted response: the winner produced garbage. Charge its
				// breaker and re-dispatch elsewhere.
				c.recordDispatch(winner, false, 0, req.Circuit)
				c.mu.Lock()
				c.stats.CorruptProofs++
				c.mu.Unlock()
				c.metrics.observeCorrupt()
				lastErr = fmt.Errorf("%w (node %s)", ErrCorruptProof, winner.id)
				continue
			}
			c.mu.Lock()
			c.stats.JobsCompleted++
			c.mu.Unlock()
			return proof, nil
		}
		if ctx.Err() != nil {
			// The job's own deadline or the client's cancellation — not the
			// nodes' fault; stop re-dispatching.
			c.noteFailed()
			return nil, ctx.Err()
		}
		lastErr = err
	}
	c.noteFailed()
	return nil, fmt.Errorf("cluster: job %d failed after %d dispatch attempts: %w", jobID, c.cfg.MaxAttempts, lastErr)
}

func (c *Coordinator) noteFailed() {
	c.mu.Lock()
	c.stats.JobsFailed++
	c.mu.Unlock()
}

// verifyRemote checks a remote proof against the local backend; without
// one, remote proofs are accepted as-is (documented on Config.Local).
func (c *Coordinator) verifyRemote(req ProveRequest, proof []byte) bool {
	if c.cfg.Local == nil {
		return true
	}
	ok, err := c.cfg.Local.VerifyProof(req.Circuit, req.Seed, proof)
	return err == nil && ok
}

// proveLocal is the degrade-to-local path: every remote is down, so the
// coordinator proves in-process, exactly like the engine's serial
// fallback when every GPU dies. A local admission rejection that
// carries a retry-after hint (the service's QueueFullError, detected
// structurally — this package must not import internal/service) is
// backpressure, not failure: a degraded cluster funnelling a burst into
// the local queue waits its turn under the job deadline rather than
// failing jobs it promised to absorb.
func (c *Coordinator) proveLocal(ctx context.Context, jobID uint64, req ProveRequest, lastErr error) ([]byte, error) {
	if c.cfg.Local == nil {
		c.noteFailed()
		if lastErr != nil {
			return nil, fmt.Errorf("%w; last dispatch error: %v", ErrNoNodes, lastErr)
		}
		return nil, ErrNoNodes
	}
	c.mu.Lock()
	c.stats.LocalFallbacks++
	c.mu.Unlock()
	c.metrics.observeLocalFallback()
	for {
		proof, err := c.cfg.Local.ProveLocal(ctx, req.Circuit, req.Seed)
		if err == nil {
			c.mu.Lock()
			c.stats.JobsCompleted++
			c.mu.Unlock()
			return proof, nil
		}
		var busy interface{ RetryAfterHint() time.Duration }
		if !errors.As(err, &busy) {
			c.noteFailed()
			return nil, fmt.Errorf("cluster: job %d degraded to local and failed: %w", jobID, err)
		}
		wait := busy.RetryAfterHint()
		if wait < 25*time.Millisecond {
			wait = 25 * time.Millisecond
		}
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		select {
		case <-ctx.Done():
			c.noteFailed()
			return nil, fmt.Errorf("cluster: job %d degraded to local, queue never admitted it: %w", jobID, ctx.Err())
		case <-time.After(wait):
		}
	}
}

// dispatchOutcome is one attempt's result inside dispatchHedged.
type dispatchOutcome struct {
	n      *node
	proof  []byte
	err    error
	sec    float64
	hedged bool
}

// hedgeAttempt is one launched dispatch inside dispatchHedged: its
// target, its cancel, whether its admission consumed the node's
// half-open probe slot, and whether its outcome was folded into the
// breaker. Every launched attempt must end in exactly one of
// recordDispatch or abandonment (which releases a held probe slot) —
// an abandoned probe that kept its slot would leave the breaker
// HalfOpen and the node unroutable forever.
type hedgeAttempt struct {
	n       *node
	cancel  context.CancelFunc
	probe   bool
	settled bool
}

// dispatchHedged runs one routing attempt: dispatch to primary and, if
// the primary is still out past the hedge delay, launch one speculative
// duplicate on a different node. First success wins and the loser is
// cancelled; both failing fails the attempt. Every node tried is added
// to exclude so the outer loop never revisits it for this job.
// primaryProbe says the primary's admission consumed its half-open
// probe slot (see pickNode).
func (c *Coordinator) dispatchHedged(ctx context.Context, primary *node, primaryProbe bool, jobID uint64, req ProveRequest, exclude map[string]bool) ([]byte, *node, error) {
	ch := make(chan dispatchOutcome, 2) // buffered: late losers never block
	attempts := map[string]*hedgeAttempt{}
	// abandon ends an attempt without a breaker outcome: cancel the
	// worker-side job and give back the probe slot the admission took.
	abandon := func(a *hedgeAttempt) {
		if a.settled {
			return
		}
		a.settled = true
		a.cancel()
		if a.probe {
			c.releaseProbe(a.n)
		}
	}
	launch := func(n *node, probe, hedged bool) {
		var actx context.Context
		var acancel context.CancelFunc
		if c.cfg.DispatchTimeout > 0 {
			actx, acancel = context.WithTimeout(ctx, c.cfg.DispatchTimeout)
		} else {
			actx, acancel = context.WithCancel(ctx)
		}
		_, release := c.trackInflight(n, acancel)
		attempts[n.id] = &hedgeAttempt{n: n, cancel: acancel, probe: probe}
		dreq := DispatchRequest{
			JobID:   jobID,
			Circuit: req.Circuit,
			Seed:    req.Seed,
		}
		if deadline, ok := actx.Deadline(); ok {
			d := time.Until(deadline)
			if d <= 0 {
				// The deadline already passed. Dispatching anyway would put
				// TimeoutMS = 0 on the wire — "use the worker default" — and
				// burn a worker-default timeout's worth of node capacity on a
				// job the caller has given up on. Fail the attempt fast and
				// locally; the receive loop treats it like any cancellation
				// (no breaker outcome, probe slot returned).
				release()
				acancel()
				ch <- dispatchOutcome{n: n, err: context.DeadlineExceeded, hedged: hedged}
				return
			}
			dreq.TimeoutMS = d.Milliseconds()
		}
		go func() {
			start := time.Now()
			proof, err := n.client.Dispatch(actx, dreq)
			release()
			acancel()
			ch <- dispatchOutcome{n: n, proof: proof, err: err, sec: time.Since(start).Seconds(), hedged: hedged}
		}()
	}
	exclude[primary.id] = true
	launch(primary, primaryProbe, false)

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	outstanding := 1
	hedgedYet := false
	var lastErr error
	for outstanding > 0 {
		select {
		case out := <-ch:
			outstanding--
			a := attempts[out.n.id]
			if out.err == nil {
				a.settled = true
				c.recordDispatch(out.n, true, out.sec, req.Circuit)
				if out.hedged {
					c.metrics.observeHedgeWin()
					c.mu.Lock()
					c.stats.HedgeWins++
					c.mu.Unlock()
				}
				for _, other := range attempts {
					if other.n != out.n {
						abandon(other) // the loser's worker-side job is cancelled too
					}
				}
				return out.proof, out.n, nil
			}
			if ctx.Err() == nil {
				// A real node failure, not our own deadline propagating.
				a.settled = true
				c.recordDispatch(out.n, false, out.sec, req.Circuit)
			} else {
				// Our own deadline or cancellation — not the node's fault, so
				// no breaker outcome; but a held probe slot must come back.
				abandon(a)
			}
			lastErr = out.err
		case <-hedge.C:
			if hedgedYet {
				continue
			}
			hedgedYet = true
			h, hProbe := c.pickNode(req.Circuit, exclude)
			if h == nil {
				continue // nobody to hedge on; keep waiting for the primary
			}
			exclude[h.id] = true
			launch(h, hProbe, true)
			outstanding++
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			c.metrics.observeHedge()
		case <-ctx.Done():
			for _, a := range attempts {
				abandon(a)
			}
			// The launched goroutines unblock into the buffered channel and
			// exit on their own; nothing leaks.
			return nil, nil, ctx.Err()
		}
	}
	return nil, nil, lastErr
}

// Snapshot returns the node table's externally visible state, sorted by
// registration order.
func (c *Coordinator) Snapshot() []NodeSnapshot {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeSnapshot, 0, len(c.order))
	for _, id := range c.order {
		n := c.nodes[id]
		state := "alive"
		switch {
		case n.draining:
			state = "draining"
		case n.lost:
			state = "lost"
		}
		out = append(out, NodeSnapshot{
			ID:             n.id,
			Addr:           n.addr,
			State:          state,
			Breaker:        n.br.state,
			BreakerS:       n.br.state.String(),
			HeartbeatAge:   now.Sub(n.lastHB),
			HeartbeatAgeMS: now.Sub(n.lastHB).Milliseconds(),
			InFlight:       len(n.inflight),
			Dispatches:     n.dispatches,
			Failures:       n.failures,
			Trips:          n.br.trips,
		})
	}
	return out
}

// Stats returns a counters snapshot.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AliveNodes returns how many nodes currently hold a live lease and are
// not draining.
func (c *Coordinator) AliveNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	for _, n := range c.nodes {
		if !n.lost && !n.draining {
			alive++
		}
	}
	return alive
}

// nodeStates counts nodes by (table state, breaker state) for the
// metrics gauges; called at scrape time.
func (c *Coordinator) nodeStates() (alive, lost, draining, open int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		switch {
		case n.draining:
			draining++
		case n.lost:
			lost++
		default:
			alive++
		}
		if n.br.state == NodeOpen {
			open++
		}
	}
	return
}

// oldestHeartbeatAge returns the age of the stalest live lease, the
// early-warning gauge for the next lease expiry; 0 with no live nodes.
func (c *Coordinator) oldestHeartbeatAge() float64 {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var oldest float64
	for _, n := range c.nodes {
		if n.lost || n.draining {
			continue
		}
		if age := now.Sub(n.lastHB).Seconds(); age > oldest {
			oldest = age
		}
	}
	return oldest
}
