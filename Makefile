# Build / CI entry points. `make tier1` is the gate every PR must keep
# green; `make race` runs the engine-bearing packages under the race
# detector (the concurrent MSM engine lives in internal/core).

GO ?= go

# Perf-regression harness: `make bench` runs the op-level
# microbenchmarks (bigint kernels, field, curve) plus the end-to-end
# BenchmarkReal* suite, and renders the results as BENCH_pr3.json with
# before/after columns joined from the checked-in baseline
# (bench/baseline_pr3.json, captured on the pre-unrolled-kernel tree).
BENCH_BASELINE ?= bench/baseline_pr3.json
BENCH_OUT      ?= BENCH_pr3.json
BENCH_RAW      ?= bench_raw.txt

.PHONY: all tier1 build vet test race lint bench bench-smoke batch-smoke pipeline-smoke fuzz-smoke service-smoke cluster-smoke outsource-smoke outsource-bench loadgen-smoke loadgen-bench examples

all: tier1

tier1: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static analysis: vet and the context-first guard always, staticcheck
# when the binary is on PATH (CI installs it; local trees without it
# still get the vet + ctxlint pass). ctxlint rejects new in-repo calls
# to the deprecated ctx-less wrappers (see cmd/ctxlint).
lint: vet
	$(GO) run ./cmd/ctxlint .
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./internal/core ./internal/msm ./internal/bigint ./internal/field ./internal/curve ./internal/service ./internal/cluster ./internal/groth16 ./internal/ntt ./internal/telemetry ./internal/outsource

bench:
	@rm -f $(BENCH_RAW)
	$(GO) test -bench=BenchmarkUnrolled -benchmem -run=^$$ ./internal/bigint | tee -a $(BENCH_RAW)
	$(GO) test -bench='BenchmarkField(Mul|Ops)' -benchmem -run=^$$ ./internal/field | tee -a $(BENCH_RAW)
	$(GO) test -bench='BenchmarkPACC|BenchmarkPADD' -benchmem -run=^$$ ./internal/curve | tee -a $(BENCH_RAW)
	$(GO) test -bench='BenchmarkReal' -benchmem -run=^$$ -timeout 60m . | tee -a $(BENCH_RAW)
	$(GO) run ./cmd/benchjson -baseline $(BENCH_BASELINE) -out $(BENCH_OUT) < $(BENCH_RAW)
	@echo wrote $(BENCH_OUT)

# One iteration of every microbenchmark: catches benchmarks that crash
# or allocate unexpectedly without paying the full measurement cost (CI).
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=^$$ ./internal/bigint ./internal/field ./internal/curve

# Batch-throughput smoke: one small cached-vs-recompute batch cycle
# through SubmitBatch. Fails if any job fails or the cached run did not
# actually prove from the per-circuit base cache; the 1.5x amortized
# speedup floor is only enforced on the full `go run ./cmd/batchbench`
# (small smoke sizes are too noisy to gate on).
batch-smoke:
	$(GO) run ./cmd/batchbench -smoke

# Pipeline-speedup smoke: one small phase-DAG prove vs the sequential
# schedule on 8 simulated GPUs. Fails unless the proofs are
# byte-identical, the quotient span overlaps a witness-MSM span, and the
# pipelined modeled wall-clock beats sequential; the 25% reduction floor
# at 2^14+ domains is enforced by the full `go run ./cmd/pipelinebench`.
pipeline-smoke:
	$(GO) run ./cmd/pipelinebench -smoke

# Short differential-fuzz pass over the unrolled Montgomery kernels,
# the service's wire-format parser and the proof/VK decoders.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzMul4Parity -fuzztime=10s ./internal/bigint
	$(GO) test -run=^$$ -fuzz=FuzzMul6Parity -fuzztime=10s ./internal/bigint
	$(GO) test -run=^$$ -fuzz=FuzzJobRequest -fuzztime=10s ./internal/service
	$(GO) test -run=^$$ -fuzz=FuzzBatchRequest -fuzztime=10s ./internal/service
	$(GO) test -run=^$$ -fuzz=FuzzProofRoundTrip -fuzztime=10s ./internal/groth16
	$(GO) test -run=^$$ -fuzz=FuzzClusterWire -fuzztime=10s ./internal/cluster
	$(GO) test -run=^$$ -fuzz=FuzzOutsourceWire -fuzztime=10s ./internal/cluster

# End-to-end smoke of the proving service: submit jobs through the full
# lifecycle (admission, proving on the simulated GPUs, verification,
# drain) and exit non-zero on any failure.
service-smoke:
	$(GO) run ./cmd/provd -gpus 4 -constraints 128 -smoke 6

# Tail-latency smoke: a miniature open-loop adversarial run (heavy
# flood + tight-deadline trickle + a deliberately doomed circuit)
# against an in-process service under EDF + quotas + shedding. Fails
# unless p999 was recorded, nothing failed unexpectedly, and the EDF
# reorder and shed paths actually fired — a refactor that silently
# disables either is a hard failure, not a quietly worse tail.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke

# Full tail-latency benchmark matrix: steady load at two rates (with
# and without injected GPU faults) plus the adversarial mix under FIFO
# and under EDF+quota+shed. Writes BENCH_pr9.json and fails unless the
# hardened policy cuts the trickle circuit's p999 by >= 2x vs FIFO.
loadgen-bench:
	$(GO) run ./cmd/loadgen -bench -out BENCH_pr9.json

# Cluster failover smoke: a coordinator with two in-process worker
# nodes over real loopback HTTP, one worker killed mid-batch (no
# deregister — its lease must expire). Exits non-zero unless every job
# completes with a verified proof AND the lost-node/redispatch path
# actually ran.
cluster-smoke:
	$(GO) run ./cmd/coordinator -smoke 8

# Verifiable-outsourcing smoke: coordinator + two loopback workers over
# real HTTP, one lying on every MSM shard (valid-but-wrong claims only
# the constant-size check can catch). Exits non-zero unless every
# result is byte-identical to the serial reference AND at least one
# rejection actually fired.
outsource-smoke:
	$(GO) run ./cmd/coordinator -msm-smoke 4
	$(GO) run ./cmd/outsourcebench -smoke

# Full check-vs-recompute benchmark: constant-size acceptance at
# 2^12..2^16 against full MSM recomputation. Writes BENCH_pr10.json and
# fails unless the check is flat across sizes while recompute grows.
outsource-bench:
	$(GO) run ./cmd/outsourcebench -sizes 4096,16384,65536 -out BENCH_pr10.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/scaling
	$(GO) run ./examples/zkproof
	$(GO) run ./examples/kzgcommit
