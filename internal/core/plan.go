package core

import (
	"fmt"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
	"distmsm/internal/telemetry"
)

// Options configure a DistMSM execution. The zero value is the full
// DistMSM configuration of the paper; the ablation switches turn
// individual contributions off (used by the breakdown experiments).
type Options struct {
	// WindowSize forces s; 0 selects it with the §3.1 workload model.
	WindowSize int
	// Variant selects the accumulation-kernel optimisation level;
	// DefaultVariant (tensor cores + compaction) unless set.
	Variant kernel.Variant
	// VariantSet marks Variant as explicitly chosen (allows Baseline).
	VariantSet bool
	// Unsigned disables signed-digit recoding.
	Unsigned bool
	// ForceNaiveScatter disables the hierarchical bucket scatter.
	ForceNaiveScatter bool
	// ReduceOnGPU keeps bucket-reduce on the GPUs instead of the §3.2.3
	// CPU offload.
	ReduceOnGPU bool
	// SplitNDim shares a window across GPUs by splitting the point range
	// (the paper's rejected first approach) instead of splitting buckets.
	SplitNDim bool
	// Block overrides the scatter thread-block geometry.
	Block BlockConfig
	// Workers bounds functional-execution parallelism (0 = GOMAXPROCS).
	// It applies to the serial engine's bucket-sum fan-out; the
	// concurrent engine always runs one worker per simulated GPU.
	Workers int
	// Engine selects the host execution engine (see Engine). The zero
	// value is EngineSerial, the reference composition.
	Engine Engine
	// Faults configures deterministic fault injection on the simulated
	// GPUs (concurrent engine only); nil injects nothing.
	Faults *gpusim.FaultConfig
	// Retry tunes the fault-tolerant scheduler (retry backoff, per-owner
	// attempt budget, speculation deadline). Zero value = defaults.
	Retry RetryPolicy
	// VerifySampling is the per-shard probability of the randomized
	// result-verification pass: 0 auto-enables full verification when
	// corrupted-result injection is configured, a negative value
	// disables verification entirely. VerifyMode selects the check that
	// runs on a sampled shard.
	VerifySampling float64
	// VerifyMode selects the implementation behind VerifySampling: the
	// default VerifyOutsource constant-size challenge check
	// (internal/outsource) or the VerifyRecompute full-recompute
	// differential reference.
	VerifyMode VerifyMode
	// VerifyMaskTerms is the sparse-mask size of the outsourced check —
	// the count of secret signed point references mixed into the
	// challenge aggregation (0 = outsource.DefaultMaskTerms). Ignored
	// under VerifyRecompute.
	VerifyMaskTerms int
	// FixedBase routes the execution through per-window precomputed
	// tables (§2.3.1): all windows scatter into one shared bucket array
	// indexed by the flat table vector, eliminating the per-window
	// bucket-reduces and the window-reduce doubling ladder. The scalars
	// must match the table's base vector; the points argument of the run
	// is ignored in favour of the tables. Build with NewFixedBase.
	FixedBase *FixedBase
	// GLV splits every scalar through the curve's cube-root endomorphism
	// (k·P = k1·P + k2·φ(P), |k_i| ≈ √r) before planning, halving the
	// window count. Requires a j-invariant-0 curve with a canonical
	// subgroup generator (BN254, BLS12-381) and all points in the
	// prime-order subgroup. With FixedBase set, the split must already be
	// folded into the tables (NewFixedBase with GLV).
	GLV bool
	// Tracer, when set, records a span for every scatter, shard
	// execution (with GPU/attempt/speculative labels), bucket-reduce
	// and window-reduce of the run — exportable as a Chrome trace_event
	// JSON via telemetry.Tracer.WriteChromeTrace. Nil disables tracing
	// at zero cost on the shard hot path.
	Tracer *telemetry.Tracer
	// Devices restricts the plan to a GPU sub-pool (device indices into
	// [0, cluster.N)); empty selects every device. The phase-DAG
	// pipelined prover hands concurrent per-phase MSMs disjoint
	// sub-pools so their schedulers never contend for the same simulated
	// GPU (work stealing and rebalancing stay within one plan's pool).
	// Because shards always hold whole buckets, any sub-pool produces
	// bit-identical results. Incompatible with SplitNDim (an ablation
	// path that always spans the full cluster).
	Devices []int
}

// VerifyMode selects the implementation behind Options.VerifySampling.
type VerifyMode int

const (
	// VerifyOutsource is the default: the 2G2T-style constant-size
	// check of internal/outsource. The sampled shard's references are
	// re-aggregated into ONE challenge accumulator with a secret sparse
	// mask shuffled into the stream, and the claim is accepted iff the
	// challenge equals the claimed accumulators' fold plus the mask
	// correction — a comparison whose group-operation count depends on
	// the shard's bucket count and mask size, not on how many point
	// references the shard aggregates.
	VerifyOutsource VerifyMode = iota
	// VerifyRecompute is the differential reference: re-execute the
	// full shard and compare 64-bit random-coefficient linear
	// combinations of the claimed and reference bucket accumulators.
	// It costs a complete shard recompute per sampled shard and is kept
	// selectable as the oracle the outsourced check is validated
	// against.
	VerifyRecompute
)

// DefaultVariant is the full DistMSM accumulation kernel.
const DefaultVariant = kernel.VariantTCCompact

// maxHierarchicalS is the largest window size whose per-bucket counters
// and point ids fit shared memory (§5.3.2: execution fails for s > 14).
const maxHierarchicalS = 14

// Assignment gives one GPU a contiguous bucket range [BucketLo, BucketHi)
// of one window.
type Assignment struct {
	Window   int
	GPU      int
	BucketLo int
	BucketHi int
}

// Plan is a scheduled DistMSM execution.
type Plan struct {
	Curve   *curve.Curve
	Cluster *gpusim.Cluster

	N       int
	S       int
	Signed  bool
	Windows int
	// Buckets is the per-window bucket-array length (digit magnitudes
	// index it; slot 0 is unused).
	Buckets int
	Spec    kernel.Spec
	// PADDSpec is the general point-addition kernel at the same
	// optimisation level (bucket-reduce work is PADD-bound: the dedicated
	// PACC kernel does not apply when both operands are projective).
	PADDSpec kernel.Spec
	// NT is the concurrent-thread capacity per GPU at this kernel's
	// occupancy (the paper's N_T).
	NT int
	// Hierarchical records whether the hierarchical scatter is active.
	Hierarchical bool
	ReduceOnGPU  bool
	SplitNDim    bool
	Block        BlockConfig

	// FixedBase marks a merged single-window plan over precomputed
	// tables (nil for a standard plan); its window-reduce has no
	// doubling ladder.
	FixedBase *FixedBase
	// Pre carries pre-scattered windows (fixed-base evaluation). When
	// set, the engines consume Pre[j] instead of recoding and scattering
	// window j from the scalars.
	Pre []*ScatterResult

	// Devices is the GPU sub-pool the plan was built over (every device
	// of the cluster unless Options.Devices narrowed it). Cost
	// amortisation across GPUs uses the pool size, not the cluster size.
	Devices []int

	Assignments []Assignment
}

// BuildPlan schedules an N-point MSM for the cluster. When no window
// size is forced it searches s ∈ [6, 24] — and, unless pinned by the
// options, both bucket-reduce placements — for the cheapest plan under
// the full cost model (per-thread workload, atomics, CPU offload and
// transfers), which is how DistMSM adapts to the platform (§3.1/Figure 3:
// large windows win on one GPU, small windows and CPU reduce on many).
//
// With a health registry attached to the cluster, the plan consults the
// cross-request circuit breaker exactly once (one cooldown tick per
// plan, regardless of the window-size search): quarantined GPUs receive
// no shards and half-open GPUs receive a single probe shard, so a
// device that kept dying or corrupting results in earlier runs costs
// later runs at most one probe instead of a full share of rebalancing.
func BuildPlan(c *curve.Curve, cl *gpusim.Cluster, n int, opts Options) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: plan needs n > 0, got %d", ErrEmptyInput, n)
	}
	var adm *gpusim.Admission
	if cl.Health != nil {
		a := cl.Health.Admit(cl.N)
		adm = &a
	}
	if opts.WindowSize != 0 {
		return buildPlanFixed(c, cl, n, opts, opts.WindowSize, opts.ReduceOnGPU, adm)
	}
	var best *Plan
	bestCost := 0.0
	for s := 6; s <= 24; s++ {
		placements := []bool{opts.ReduceOnGPU}
		if !opts.ReduceOnGPU {
			placements = []bool{false, true}
		}
		for _, gpuReduce := range placements {
			p, err := buildPlanFixed(c, cl, n, opts, s, gpuReduce, adm)
			if err != nil {
				return nil, err
			}
			if cost := p.EstimateCost().Total(); best == nil || cost < bestCost {
				best, bestCost = p, cost
			}
		}
	}
	return best, nil
}

func buildPlanFixed(c *curve.Curve, cl *gpusim.Cluster, n int, opts Options, s int, gpuReduce bool, adm *gpusim.Admission) (*Plan, error) {
	variant := DefaultVariant
	if opts.VariantSet {
		variant = opts.Variant
	}
	spec, err := kernel.BuildSpec(variant)
	if err != nil {
		return nil, err
	}
	paddSpec, err := kernel.BuildPADDSpec(variant)
	if err != nil {
		return nil, err
	}
	model := cl.Model()
	nt := model.ConcurrentThreads(spec, c.Fp.Bits())

	p := &Plan{
		Curve:    c,
		Cluster:  cl,
		N:        n,
		S:        s,
		Signed:   !opts.Unsigned,
		Spec:     spec,
		PADDSpec: paddSpec,
		NT:       nt,
		Block:    opts.Block,
	}
	if p.Block.Threads == 0 {
		p.Block = DefaultBlock()
	}
	if p.S < 1 || p.S > 26 {
		return nil, fmt.Errorf("core: window size %d out of range", p.S)
	}
	p.Windows = (c.ScalarBits + p.S - 1) / p.S
	if p.Signed {
		p.Windows++ // carry window of the signed recoding
		p.Buckets = 1<<(p.S-1) + 1
	} else {
		p.Buckets = 1 << p.S
	}
	// The hierarchical scatter needs its per-bucket counters in shared
	// memory; above the capacity limit DistMSM falls back to the naive
	// scatter (which is also the faster choice at large s, Figure 11).
	p.Hierarchical = !opts.ForceNaiveScatter && p.S <= maxHierarchicalS
	p.ReduceOnGPU = gpuReduce
	p.SplitNDim = opts.SplitNDim

	pool, err := devicePool(cl, opts)
	if err != nil {
		return nil, err
	}
	p.Devices = pool
	p.Assignments = assignBucketsAdmitted(p.Windows, p.Buckets, pool, adm)
	return p, nil
}

// devicePool validates opts.Devices against the cluster and returns the
// plan's GPU sub-pool (the full device list when none is given).
func devicePool(cl *gpusim.Cluster, opts Options) ([]int, error) {
	if len(opts.Devices) == 0 {
		return allDevices(cl.N), nil
	}
	if opts.SplitNDim {
		return nil, fmt.Errorf("%w: device sub-pools require the default bucket split", gpusim.ErrBadDevice)
	}
	seen := make(map[int]bool, len(opts.Devices))
	pool := make([]int, 0, len(opts.Devices))
	for _, g := range opts.Devices {
		if g < 0 || g >= cl.N {
			return nil, fmt.Errorf("%w: device %d out of range [0,%d)", gpusim.ErrBadDevice, g, cl.N)
		}
		if seen[g] {
			return nil, fmt.Errorf("%w: device %d listed twice", gpusim.ErrBadDevice, g)
		}
		seen[g] = true
		pool = append(pool, g)
	}
	return pool, nil
}

func allDevices(n int) []int {
	gpus := make([]int, n)
	for g := range gpus {
		gpus[g] = g
	}
	return gpus
}

// intersectPool filters the admission list to pool members, preserving
// the admission order.
func intersectPool(admitted, pool []int) []int {
	in := make(map[int]bool, len(pool))
	for _, g := range pool {
		in[g] = true
	}
	var out []int
	for _, g := range admitted {
		if in[g] {
			out = append(out, g)
		}
	}
	return out
}

// unitRange emits the per-window assignments covering the linear unit
// range [lo, hi) of the windows×buckets space for one GPU. Units are
// whole buckets, so a bucket is never split across shards — which is why
// any partition of the unit space produces bit-identical MSM results.
func unitRange(out []Assignment, lo, hi, buckets, gpu int) []Assignment {
	for lo < hi {
		win := lo / buckets
		bLo := lo % buckets
		bHi := buckets
		if win == hi/buckets {
			bHi = hi % buckets
		}
		if bHi > bLo {
			out = append(out, Assignment{Window: win, GPU: gpu, BucketLo: bLo, BucketHi: bHi})
		}
		lo = (win + 1) * buckets
	}
	return out
}

// splitUnits levels the unit range [lo, hi) across the given GPUs in
// contiguous shares (each GPU's shards stay window-ordered, which the
// scheduler's steal heuristic relies on).
func splitUnits(out []Assignment, lo, hi, buckets int, gpus []int) []Assignment {
	total := hi - lo
	for i, g := range gpus {
		a := lo + total*i/len(gpus)
		b := lo + total*(i+1)/len(gpus)
		out = unitRange(out, a, b, buckets, g)
	}
	return out
}

// assignBuckets partitions the windows×buckets work units into nGPU
// contiguous shares — the paper's flexible distribution ("two GPUs handle
// 2/3 of each window, the third manages the remaining 1/3 of both"),
// realised by launching different thread-block counts per GPU.
func assignBuckets(windows, buckets, nGPU int) []Assignment {
	return splitUnits(nil, 0, windows*buckets, buckets, allDevices(nGPU))
}

// assignBucketsAdmitted applies a health-registry admission to the
// partition over the plan's GPU sub-pool: half-open GPUs get one probe
// shard of adm.ProbeBuckets units each (clamped so probes never take
// more than half the work), fully-admitted GPUs level the rest, and
// quarantined GPUs get nothing. The admission lists are intersected
// with the pool; when that quarantines the whole sub-pool the space is
// levelled across the pool anyway (sub-pool-scope emergency
// re-admission, mirroring the registry's all-open behaviour — the
// scheduler still retries and rebalances shard by shard at runtime).
// A nil admission levels across the pool.
func assignBucketsAdmitted(windows, buckets int, pool []int, adm *gpusim.Admission) []Assignment {
	total := windows * buckets
	if adm == nil {
		return splitUnits(nil, 0, total, buckets, pool)
	}
	full := intersectPool(adm.Full, pool)
	probes := intersectPool(adm.Probes, pool)
	if len(full) == 0 && len(probes) == 0 {
		return splitUnits(nil, 0, total, buckets, pool)
	}
	if len(full) == 0 {
		return splitUnits(nil, 0, total, buckets, probes)
	}
	var out []Assignment
	off := 0
	if len(probes) > 0 {
		pb := adm.ProbeBuckets
		if maxPB := total / (2 * len(probes)); pb > maxPB {
			pb = maxPB
		}
		if pb < 1 {
			pb = 1
		}
		for _, g := range probes {
			hi := off + pb
			if hi > total {
				hi = total
			}
			out = unitRange(out, off, hi, buckets, g)
			off = hi
		}
	}
	return splitUnits(out, off, total, buckets, full)
}

// rebalanceTargets picks, for each of n orphaned shards of a lost GPU,
// the survivor that inherits it: always the currently least-loaded
// healthy device (ties to the first in `healthy` order) — the same
// levelling rule assignBuckets applies to the initial §3.2.2 shares,
// replayed online as devices drop out. `load` holds the survivors'
// current queue depths and is not modified.
func rebalanceTargets(n int, load map[int]int, healthy []int) []int {
	out := make([]int, n)
	l := make(map[int]int, len(load))
	for g, v := range load {
		l[g] = v
	}
	for i := range out {
		best, bestLoad := -1, 0
		for _, g := range healthy {
			if best == -1 || l[g] < bestLoad {
				best, bestLoad = g, l[g]
			}
		}
		out[i] = best
		l[best]++
	}
	return out
}

// poolSize returns the number of GPUs the plan may schedule onto (the
// sub-pool size when Options.Devices narrowed the plan, the cluster
// size otherwise).
func (p *Plan) poolSize() int {
	if len(p.Devices) > 0 {
		return len(p.Devices)
	}
	return p.Cluster.N
}

// GPUsOf returns how many distinct GPUs participate in the plan.
func (p *Plan) GPUsOf() int {
	seen := map[int]bool{}
	for _, a := range p.Assignments {
		seen[a.GPU] = true
	}
	return len(seen)
}
