package core

import (
	"context"
	"reflect"
	"testing"

	"distmsm/internal/curve"
	"distmsm/internal/gpusim"
)

// subgroupPoints returns n distinct points of the prime-order subgroup
// (multiples of the canonical generator) — required by the GLV
// strategies, harmless for the others.
func subgroupPoints(t testing.TB, c *curve.Curve, n int, seed int64) []curve.PointAffine {
	t.Helper()
	a := c.NewAdder()
	acc := c.NewXYZZ()
	c.SetAffine(acc, &c.Gen)
	step := c.SampleScalars(1, seed)[0]
	base := a.ScalarMul(&c.Gen, step)
	var chain []*curve.PointXYZZ
	for i := 0; i < n; i++ {
		a.Add(base, acc)
		chain = append(chain, base.Clone())
	}
	return c.BatchToAffine(chain)
}

// TestStrategyParityMatrix is the acceptance grid of the fixed-base/GLV
// PR: every evaluation strategy × engine × curve × fault class must
// produce a point whose affine normalisation is byte-identical to the
// plain serial reference, and within a strategy the serial and
// concurrent engines must agree bit for bit.
func TestStrategyParityMatrix(t *testing.T) {
	type strategy struct {
		name string
		glv  bool // endomorphism split
		fb   bool // precomputed tables
	}
	strategies := []strategy{
		{name: "fixed-base", fb: true},
		{name: "glv", glv: true},
		{name: "fixed-base-glv", fb: true, glv: true},
	}
	faultClasses := []struct {
		name string
		cfg  *gpusim.FaultConfig
	}{
		{name: "fault-free", cfg: nil},
		{name: "transient-straggler", cfg: &gpusim.FaultConfig{Seed: 7, Transient: 0.3, Straggler: 0.2, StragglerFactor: 16}},
		{name: "corrupt", cfg: &gpusim.FaultConfig{Seed: 7, Corrupt: 0.3}},
		{name: "device-lost", cfg: &gpusim.FaultConfig{Seed: 7, DeviceLost: 0.15}},
	}
	ctx := context.Background()
	const n = 64
	for _, curveName := range []string{"BN254", "BLS12-381"} {
		c := mustCurve(t, curveName)
		points := subgroupPoints(t, c, n, 41)
		scalars := c.SampleScalars(n, 42)
		sys := cluster(t, 4)

		ref, err := RunContext(ctx, c, sys, points, scalars, Options{Engine: EngineSerial})
		if err != nil {
			t.Fatalf("%s: plain serial reference: %v", curveName, err)
		}
		want := c.ToAffine(ref.Point).String()
		if naive := c.ToAffine(c.MSMReference(points, scalars)).String(); naive != want {
			t.Fatalf("%s: serial engine disagrees with naive reference", curveName)
		}

		for _, st := range strategies {
			var fb *FixedBase
			if st.fb {
				fb, err = NewFixedBase(c, points, Options{GLV: st.glv})
				if err != nil {
					t.Fatalf("%s/%s: NewFixedBase: %v", curveName, st.name, err)
				}
			}
			opts := Options{GLV: st.glv, FixedBase: fb}
			for _, fc := range faultClasses {
				var serialPt, concPt *curve.PointXYZZ
				for _, eng := range []Engine{EngineSerial, EngineConcurrent} {
					o := opts
					o.Engine = eng
					if fc.cfg != nil {
						if eng == EngineSerial {
							continue // injection targets the shard scheduler
						}
						cfg := *fc.cfg
						o.Faults = &cfg
					}
					res, err := RunContext(ctx, c, sys, points, scalars, o)
					if err != nil {
						t.Fatalf("%s/%s/%s/%s: %v", curveName, st.name, eng, fc.name, err)
					}
					if got := c.ToAffine(res.Point).String(); got != want {
						t.Fatalf("%s/%s/%s/%s: result differs from plain serial reference",
							curveName, st.name, eng, fc.name)
					}
					if eng == EngineSerial {
						serialPt = res.Point
					} else {
						concPt = res.Point
					}
				}
				if serialPt != nil && concPt != nil && !reflect.DeepEqual(serialPt, concPt) {
					t.Fatalf("%s/%s/%s: serial and concurrent engines not bit-identical",
						curveName, st.name, fc.name)
				}
			}
		}
	}
}

// TestFixedBaseValidation pins the error surface of the fixed-base and
// GLV strategies.
func TestFixedBaseValidation(t *testing.T) {
	ctx := context.Background()
	c := mustCurve(t, "BN254")
	sys := cluster(t, 2)
	points := subgroupPoints(t, c, 8, 5)
	scalars := c.SampleScalars(8, 6)

	if _, err := NewFixedBase(c, nil, Options{}); err == nil {
		t.Error("empty base vector must error")
	}
	if _, err := NewFixedBase(c, points, Options{Unsigned: true}); err == nil {
		t.Error("unsigned recoding must be rejected")
	}
	fb, err := NewFixedBase(c, points, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fb.N() != 8 || fb.GLV() || fb.MemoryBytes() <= 0 {
		t.Errorf("accessors: N=%d GLV=%v mem=%d", fb.N(), fb.GLV(), fb.MemoryBytes())
	}
	if _, err := RunContext(ctx, c, sys, points, scalars[:4],
		Options{FixedBase: fb, Engine: EngineSerial}); err == nil {
		t.Error("scalar count mismatch must error")
	}
	if _, err := RunContext(ctx, c, sys, points, scalars,
		Options{FixedBase: fb, Engine: EngineSerial, WindowSize: fb.WindowSize() + 1}); err == nil {
		t.Error("conflicting window size must error")
	}
	if _, err := RunContext(ctx, c, sys, points, scalars,
		Options{FixedBase: fb, GLV: true, Engine: EngineSerial}); err == nil {
		t.Error("GLV flag against non-GLV tables must error")
	}
	other := mustCurve(t, "BLS12-381")
	if _, err := RunContext(ctx, other, sys, subgroupPoints(t, other, 8, 5), other.SampleScalars(8, 6),
		Options{FixedBase: fb, Engine: EngineSerial}); err == nil {
		t.Error("curve mismatch must error")
	}
	if _, err := NewFixedBase(mustCurve(t, "MNT4753"), mustCurve(t, "MNT4753").SamplePoints(4, 1),
		Options{GLV: true}); err == nil {
		t.Error("GLV on a curve without the endomorphism must error")
	}
}
