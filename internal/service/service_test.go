package service

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"distmsm/internal/core"
	"distmsm/internal/gpusim"
)

// newTestService builds a running service on an n-GPU cluster with the
// synthetic circuit registered; overrides tweak the config first.
func newTestService(t testing.TB, gpus, constraints int, mutate func(*Config)) *Service {
	t.Helper()
	cl, err := gpusim.NewCluster(gpusim.A100(), gpus)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Cluster: cl, WindowSize: 8}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterSynthetic(context.Background(), "synthetic", constraints); err != nil {
		t.Fatal(err)
	}
	return svc
}

// leakCheck snapshots the goroutine count and returns a function that
// fails the test if the count has not settled back within 5 seconds —
// the repo's goleak-style drain check.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if g := runtime.NumGoroutine(); g <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func shutdownClean(t *testing.T, svc *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestJobIDsStartAtOne pins the allocation contract oldestID's old
// in-band zero sentinel silently depended on: the first Submit gets
// ID 1, never 0 (0 now signals "empty queue" only through the explicit
// boolean). Also exercises that sentinel directly on an empty and a
// populated queue.
func TestJobIDsStartAtOne(t *testing.T) {
	svc := newTestService(t, 1, 32, nil)
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != 1 {
		t.Fatalf("first job ID = %d, want 1", job.ID)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	shutdownClean(t, svc)

	var q jobQueue
	if id, ok := q.oldestID(); ok || id != 0 {
		t.Fatalf("empty queue oldestID = (%d, %v), want (0, false)", id, ok)
	}
	q.items = []*Job{{ID: 9}, {ID: 2}, {ID: 5}}
	if id, ok := q.oldestID(); !ok || id != 2 {
		t.Fatalf("oldestID = (%d, %v), want (2, true)", id, ok)
	}
}

// TestServiceProveAndVerify: the happy path — jobs complete, the proofs
// verify against the circuit's key, and distinct seeds prove distinct
// statements.
func TestServiceProveAndVerify(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	vk, err := svc.VerifyingKey("synthetic")
	if err != nil {
		t.Fatal(err)
	}
	_ = vk
	var jobs []*Job
	for seed := int64(1); seed <= 3; seed++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		proof, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", job.ID, err)
		}
		if proof == nil {
			t.Fatalf("job %d: nil proof without error", job.ID)
		}
	}
	st := svc.Stats()
	if st.Completed != 3 || st.Failed != 0 || st.Cancelled != 0 {
		t.Fatalf("stats %+v, want 3 completed", st)
	}
	shutdownClean(t, svc)
	check()
}

func TestSubmitUnknownCircuit(t *testing.T) {
	svc := newTestService(t, 1, 32, nil)
	defer shutdownClean(t, svc)
	if _, err := svc.Submit(Request{Circuit: "nope"}); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("want ErrUnknownCircuit, got %v", err)
	}
}

// TestBackpressure is the admission-control acceptance criterion: with
// every worker blocked, in-flight stays at the worker count, the queue
// fills to its depth, and the next submission is rejected immediately
// with ErrQueueFull.
func TestBackpressure(t *testing.T) {
	check := leakCheck(t)
	const workers, depth = 2, 3
	block := make(chan struct{})
	started := make(chan struct{}, workers+depth)
	svc := newTestService(t, 2, 32, func(c *Config) {
		c.Workers = workers
		c.QueueDepth = depth
		c.OnJobStart = func(*Job) {
			started <- struct{}{}
			<-block
		}
	})

	var jobs []*Job
	// workers jobs go in flight, depth jobs wait.
	for i := 0; i < workers+depth; i++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
		jobs = append(jobs, job)
	}
	for i := 0; i < workers; i++ {
		<-started // both workers are now parked inside OnJobStart
	}

	st := svc.Stats()
	if st.InFlight != workers {
		t.Fatalf("in-flight = %d, want %d (the worker count)", st.InFlight, workers)
	}
	if st.Queued != depth {
		t.Fatalf("queued = %d, want %d", st.Queued, depth)
	}

	// The queue is full: the next submission must fail *immediately*.
	t0 := time.Now()
	_, err := svc.Submit(Request{Circuit: "synthetic", Seed: 99})
	if took := time.Since(t0); took > time.Second {
		t.Fatalf("over-capacity Submit blocked for %v", took)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	var qe *QueueFullError
	if !errors.As(err, &qe) || qe.RetryAfter <= 0 {
		t.Fatalf("rejection carries no retry-after hint: %v", err)
	}

	close(block) // release the pool; everything drains
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d after release: %v", job.ID, err)
		}
	}
	shutdownClean(t, svc)
	check()
}

// TestMemoryBudgetAdmission: a budget below two jobs' estimates admits
// one job and rejects the second with the Memory flag set.
func TestMemoryBudgetAdmission(t *testing.T) {
	block := make(chan struct{})
	svc := newTestService(t, 1, 32, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
		c.OnJobStart = func(*Job) { <-block }
	})
	// Cleanups run LIFO: release the parked worker, then drain.
	t.Cleanup(func() { shutdownClean(t, svc) })
	t.Cleanup(func() { close(block) })
	est := svc.circuits["synthetic"].memEst
	svc.cfg.MemoryBudget = est + est/2

	if _, err := svc.Submit(Request{Circuit: "synthetic", Seed: 1}); err != nil {
		t.Fatalf("first job rejected: %v", err)
	}
	_, err := svc.Submit(Request{Circuit: "synthetic", Seed: 2})
	var qe *QueueFullError
	if !errors.As(err, &qe) || !qe.Memory {
		t.Fatalf("want memory-bound QueueFullError, got %v", err)
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("memory rejection must unwrap to ErrQueueFull, got %v", err)
	}
}

// TestDeadlineExceededFromInsideProve is the end-to-end deadline
// acceptance criterion: a job accepted with an already-elapsed deadline
// reaches a worker and fails with context.DeadlineExceeded surfacing
// from groth16.ProveContext's own cancellation points — the service
// layer does not pre-filter it.
func TestDeadlineExceededFromInsideProve(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 5, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	_, err = job.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Fatalf("stats %+v, want 1 cancelled", st)
	}
	shutdownClean(t, svc)
	check()
}

// TestCancelMidProve: cancelling a job while its pipeline runs unwinds
// promptly with context.Canceled and leaks nothing.
func TestCancelMidProve(t *testing.T) {
	check := leakCheck(t)
	proving := make(chan struct{}, 1)
	svc := newTestService(t, 2, 256, func(c *Config) {
		c.OnJobStart = func(*Job) { proving <- struct{}{} }
	})
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-proving
	time.Sleep(2 * time.Millisecond) // land the cancel inside the pipeline
	job.Cancel()
	_, err = job.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	shutdownClean(t, svc)
	check()
}

// TestShutdownDrains: Shutdown with headroom completes queued work and
// reports a clean drain; later submissions fail with ErrShuttingDown.
func TestShutdownDrains(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, nil)
	var jobs []*Job
	for seed := int64(1); seed <= 2; seed++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	for _, job := range jobs {
		if _, err := job.Result(); err != nil {
			t.Fatalf("job %d not drained: %v", job.ID, err)
		}
	}
	if _, err := svc.Submit(Request{Circuit: "synthetic"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: want ErrShuttingDown, got %v", err)
	}
	check()
}

// TestShutdownForcedCancel: an expired shutdown deadline cancels the
// in-flight jobs instead of waiting for them, and the pool still joins
// without leaks.
func TestShutdownForcedCancel(t *testing.T) {
	check := leakCheck(t)
	proving := make(chan struct{}, 1)
	svc := newTestService(t, 2, 512, func(c *Config) {
		c.OnJobStart = func(*Job) { proving <- struct{}{} }
	})
	job, err := svc.Submit(Request{Circuit: "synthetic", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-proving
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := svc.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: want DeadlineExceeded, got %v", err)
	}
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("in-flight job after forced shutdown: want Canceled, got %v", err)
	}
	check()
}

// TestWorkerPoolTeardownUnderAllGPUsLost: every job's MSMs lose every
// GPU with serial fallback disabled, so every proof fails with
// core.ErrAllGPUsLost — the pool must surface the failures and still
// tear down leak-free.
func TestWorkerPoolTeardownUnderAllGPUsLost(t *testing.T) {
	check := leakCheck(t)
	svc := newTestService(t, 2, 64, func(c *Config) {
		c.Workers = 2
		c.Faults = &gpusim.FaultConfig{Seed: 11, DeviceLost: 1, DisableFallback: true}
	})
	var jobs []*Job
	for seed := int64(1); seed <= 4; seed++ {
		job, err := svc.Submit(Request{Circuit: "synthetic", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	for _, job := range jobs {
		if _, err := job.Wait(context.Background()); !errors.Is(err, core.ErrAllGPUsLost) {
			t.Fatalf("job %d: want ErrAllGPUsLost, got %v", job.ID, err)
		}
	}
	if st := svc.Stats(); st.Failed != 4 {
		t.Fatalf("stats %+v, want 4 failed", st)
	}
	// The repeated losses must also have tripped the cross-request
	// breakers: both GPUs quarantined after the default threshold.
	quarantined := 0
	for _, h := range svc.Health() {
		if h.State == gpusim.BreakerOpen {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("repeated device losses tripped no breaker")
	}
	shutdownClean(t, svc)
	check()
}

// TestConfigValidation: bad retry policies and fault configs fail New.
func TestConfigValidation(t *testing.T) {
	cl, err := gpusim.NewCluster(gpusim.A100(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil cluster: want ErrBadRequest, got %v", err)
	}
	_, err = New(Config{Cluster: cl, Retry: core.RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Millisecond}})
	if !errors.Is(err, gpusim.ErrBadFaultConfig) {
		t.Fatalf("bad retry policy: want ErrBadFaultConfig, got %v", err)
	}
	_, err = New(Config{Cluster: cl, Faults: &gpusim.FaultConfig{Transient: 2}})
	if !errors.Is(err, gpusim.ErrBadFaultConfig) {
		t.Fatalf("bad fault config: want ErrBadFaultConfig, got %v", err)
	}
}
