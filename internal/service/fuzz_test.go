package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// FuzzJobRequest holds ParseJobRequest to its contract on arbitrary
// bytes: it never panics, and whatever it accepts satisfies every
// documented bound (usable name, non-negative capped timeout) — the
// admission controller downstream relies on those invariants instead of
// re-checking them.
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"circuit":"synthetic","seed":7}`))
	f.Add([]byte(`{"circuit":"synthetic","seed":-1,"timeout_ms":30000}`))
	f.Add([]byte(`{"circuit":""}`))
	f.Add([]byte(`{"circuit":"a b"}`))
	f.Add([]byte(`{"circuit":"x","timeout_ms":-5}`))
	f.Add([]byte(`{"circuit":"x","timeout_ms":999999999}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"circuit":"` + string(make([]byte, 100)) + `"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseJobRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("rejection %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if req.Circuit == "" || len(req.Circuit) > maxCircuitName {
			t.Fatalf("accepted circuit name %q violates the bounds", req.Circuit)
		}
		for _, r := range req.Circuit {
			if r < 0x21 || r > 0x7E {
				t.Fatalf("accepted circuit name %q contains %q", req.Circuit, r)
			}
		}
		if req.Timeout < 0 || req.Timeout > maxJobTimeout {
			t.Fatalf("accepted timeout %v outside [0, %v]", req.Timeout, maxJobTimeout)
		}
		// Accepted requests round-trip: re-encoding the parsed request
		// and parsing again is a fixed point.
		again, err := ParseJobRequest(mustWire(t, req))
		if err != nil {
			t.Fatalf("re-parse of accepted request failed: %v", err)
		}
		if again != req {
			t.Fatalf("round-trip changed the request: %+v vs %+v", again, req)
		}
	})
}

func mustWire(t *testing.T, req Request) []byte {
	t.Helper()
	b, err := json.Marshal(jobRequestWire{
		Circuit:   req.Circuit,
		Seed:      req.Seed,
		TimeoutMS: int64(req.Timeout / time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzBatchRequest holds ParseBatchRequest to the same contract on
// arbitrary bytes: no panics, every rejection wraps ErrBadRequest, and
// whatever it accepts is a non-empty batch within the size cap whose
// every entry satisfies the single-job bounds.
func FuzzBatchRequest(f *testing.F) {
	f.Add([]byte(`{"jobs":[{"circuit":"synthetic","seed":7}]}`))
	f.Add([]byte(`{"jobs":[{"circuit":"a","seed":1},{"circuit":"b","seed":2,"timeout_ms":5000}]}`))
	f.Add([]byte(`{"jobs":[]}`))
	f.Add([]byte(`{"jobs":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"jobs":[{"circuit":""}]}`))
	f.Add([]byte(`{"jobs":[{"circuit":"x","timeout_ms":-1}]}`))
	// One over the size cap: must be rejected.
	f.Add([]byte(`{"jobs":[` + strings.Repeat(`{"circuit":"x"},`, maxBatchJobs) + `{"circuit":"x"}]}`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := ParseBatchRequest(data)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("rejection %v does not wrap ErrBadRequest", err)
			}
			return
		}
		if len(reqs) == 0 || len(reqs) > maxBatchJobs {
			t.Fatalf("accepted batch of %d jobs violates (0, %d]", len(reqs), maxBatchJobs)
		}
		for _, req := range reqs {
			if req.Circuit == "" || len(req.Circuit) > maxCircuitName {
				t.Fatalf("accepted circuit name %q violates the bounds", req.Circuit)
			}
			if req.Timeout < 0 || req.Timeout > maxJobTimeout {
				t.Fatalf("accepted timeout %v outside [0, %v]", req.Timeout, maxJobTimeout)
			}
			// Every accepted entry must also stand alone.
			if _, err := ParseJobRequest(mustWire(t, req)); err != nil {
				t.Fatalf("accepted batch entry fails single-job parse: %v", err)
			}
		}
	})
}
