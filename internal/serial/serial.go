// Package serial provides canonical binary encodings for the library's
// cryptographic objects: field elements (fixed-width big-endian), curve
// points (SEC1-style: infinity / compressed with y-parity / uncompressed)
// and scalars. The Groth16 proof and key encodings in internal/groth16
// build on it.
package serial

import (
	"fmt"
	"math/big"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
)

// Point-encoding prefix bytes (SEC1 §2.3 style).
const (
	PrefixInfinity     = 0x00
	PrefixCompressedE  = 0x02 // even y
	PrefixCompressedO  = 0x03 // odd y
	PrefixUncompressed = 0x04
)

// ElementSize returns the byte length of one encoded field element.
func ElementSize(f *field.Field) int { return (f.Bits() + 7) / 8 }

// MarshalElement encodes e as fixed-width big-endian bytes (canonical,
// non-Montgomery form).
func MarshalElement(f *field.Field, e field.Element) []byte {
	return f.ToBig(e).FillBytes(make([]byte, ElementSize(f)))
}

// UnmarshalElement decodes a fixed-width big-endian element, rejecting
// wrong lengths and non-canonical (≥ p) values.
func UnmarshalElement(f *field.Field, b []byte) (field.Element, error) {
	if len(b) != ElementSize(f) {
		return nil, fmt.Errorf("serial: element length %d, want %d", len(b), ElementSize(f))
	}
	v := new(big.Int).SetBytes(b)
	if v.Cmp(f.Modulus) >= 0 {
		return nil, fmt.Errorf("serial: element not canonical (>= modulus)")
	}
	return f.FromBig(v), nil
}

// MarshalScalar encodes an MSM scalar as fixed-width big-endian bytes.
func MarshalScalar(k bigint.Nat, scalarBits int) []byte {
	size := (scalarBits + 7) / 8
	return k.ToBig().FillBytes(make([]byte, size))
}

// UnmarshalScalar decodes a fixed-width scalar.
func UnmarshalScalar(b []byte, scalarBits int) (bigint.Nat, error) {
	size := (scalarBits + 7) / 8
	if len(b) != size {
		return nil, fmt.Errorf("serial: scalar length %d, want %d", len(b), size)
	}
	v := new(big.Int).SetBytes(b)
	if v.BitLen() > scalarBits {
		return nil, fmt.Errorf("serial: scalar exceeds %d bits", scalarBits)
	}
	return bigint.FromBig(v, (scalarBits+63)/64), nil
}

// PointSize returns the encoded size of a point (compressed or not).
func PointSize(c *curve.Curve, compressed bool) int {
	if compressed {
		return 1 + ElementSize(c.Fp)
	}
	return 1 + 2*ElementSize(c.Fp)
}

// MarshalPoint encodes an affine point. Infinity encodes as a single
// zero byte padded to the fixed point size (so framing stays uniform).
func MarshalPoint(c *curve.Curve, p *curve.PointAffine, compressed bool) []byte {
	out := make([]byte, PointSize(c, compressed))
	if p.Inf {
		out[0] = PrefixInfinity
		return out
	}
	es := ElementSize(c.Fp)
	if compressed {
		if c.Fp.ToBig(p.Y).Bit(0) == 1 {
			out[0] = PrefixCompressedO
		} else {
			out[0] = PrefixCompressedE
		}
		copy(out[1:], MarshalElement(c.Fp, p.X))
		return out
	}
	out[0] = PrefixUncompressed
	copy(out[1:1+es], MarshalElement(c.Fp, p.X))
	copy(out[1+es:], MarshalElement(c.Fp, p.Y))
	return out
}

// UnmarshalPoint decodes a point in either form (detected by the prefix),
// verifying curve membership; compressed points are decompressed with a
// square root and the encoded y-parity.
func UnmarshalPoint(c *curve.Curve, b []byte) (curve.PointAffine, error) {
	if len(b) == 0 {
		return curve.PointAffine{}, fmt.Errorf("serial: empty point encoding")
	}
	f := c.Fp
	es := ElementSize(f)
	switch b[0] {
	case PrefixInfinity:
		for _, x := range b[1:] {
			if x != 0 {
				return curve.PointAffine{}, fmt.Errorf("serial: malformed infinity encoding")
			}
		}
		return curve.PointAffine{Inf: true}, nil
	case PrefixUncompressed:
		if len(b) != 1+2*es {
			return curve.PointAffine{}, fmt.Errorf("serial: uncompressed point length %d", len(b))
		}
		x, err := UnmarshalElement(f, b[1:1+es])
		if err != nil {
			return curve.PointAffine{}, err
		}
		y, err := UnmarshalElement(f, b[1+es:])
		if err != nil {
			return curve.PointAffine{}, err
		}
		p := curve.PointAffine{X: x, Y: y}
		if !c.IsOnCurveAffine(&p) {
			return curve.PointAffine{}, fmt.Errorf("serial: point not on curve")
		}
		return p, nil
	case PrefixCompressedE, PrefixCompressedO:
		if len(b) != 1+es {
			return curve.PointAffine{}, fmt.Errorf("serial: compressed point length %d", len(b))
		}
		x, err := UnmarshalElement(f, b[1:])
		if err != nil {
			return curve.PointAffine{}, err
		}
		// y² = x³ + a·x + b
		rhs, t := f.NewElement(), f.NewElement()
		f.Square(rhs, x)
		f.Mul(rhs, rhs, x)
		f.Mul(t, c.A, x)
		f.Add(rhs, rhs, t)
		f.Add(rhs, rhs, c.B)
		y := f.NewElement()
		if !f.Sqrt(y, rhs) {
			return curve.PointAffine{}, fmt.Errorf("serial: x has no point on the curve")
		}
		wantOdd := b[0] == PrefixCompressedO
		if (f.ToBig(y).Bit(0) == 1) != wantOdd {
			f.Neg(y, y)
		}
		return curve.PointAffine{X: x, Y: y}, nil
	default:
		return curve.PointAffine{}, fmt.Errorf("serial: unknown point prefix 0x%02x", b[0])
	}
}

// MarshalPoints encodes a point vector (uniform framing).
func MarshalPoints(c *curve.Curve, ps []curve.PointAffine, compressed bool) []byte {
	size := PointSize(c, compressed)
	out := make([]byte, 0, size*len(ps))
	for i := range ps {
		out = append(out, MarshalPoint(c, &ps[i], compressed)...)
	}
	return out
}

// UnmarshalPoints decodes a vector of n points.
func UnmarshalPoints(c *curve.Curve, b []byte, n int, compressed bool) ([]curve.PointAffine, error) {
	size := PointSize(c, compressed)
	if len(b) != size*n {
		return nil, fmt.Errorf("serial: point vector length %d, want %d", len(b), size*n)
	}
	out := make([]curve.PointAffine, n)
	for i := 0; i < n; i++ {
		p, err := UnmarshalPoint(c, b[i*size:(i+1)*size])
		if err != nil {
			return nil, fmt.Errorf("serial: point %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}
