// Benchmarks that regenerate every table and figure of the paper's
// evaluation (DESIGN.md §3 maps each to its experiment). The modeled
// grids run as testing.B benchmarks so `go test -bench=.` reproduces the
// full evaluation; the BenchmarkReal* entries additionally measure this
// host's genuine arithmetic throughput on functional MSMs and proofs.
package distmsm_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"distmsm"
	"distmsm/internal/experiments"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

// BenchmarkTable1Curves regenerates Table 1 (curve bit widths).
func BenchmarkTable1Curves(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Baselines regenerates Table 2 (baseline inventory).
func BenchmarkTable2Baselines(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3: DistMSM vs the best baseline
// across curves, input sizes and GPU counts.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4EndToEnd regenerates Table 4: end-to-end zkSNARK proof
// generation, libsnark vs the DistMSM configuration.
func BenchmarkTable4EndToEnd(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig3WorkloadModel regenerates Figure 3: the §3.1 per-thread
// workload estimate across window sizes and GPU counts.
func BenchmarkFig3WorkloadModel(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig8Scalability regenerates Figure 8: multi-GPU speedup over
// a single GPU for DistMSM and every baseline.
func BenchmarkFig8Scalability(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Devices regenerates Figure 9: Bellperson vs DistMSM on
// the A100, RTX4090 and AMD 6900XT models.
func BenchmarkFig9Devices(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Breakdown regenerates Figure 10: the contribution of the
// multi-GPU algorithm vs the PADD-kernel optimisations.
func BenchmarkFig10Breakdown(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Scatter regenerates Figure 11: hierarchical vs naive
// bucket scatter across window sizes.
func BenchmarkFig11Scatter(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12PADD regenerates Figure 12: the accumulation-kernel
// optimisation waterfall per curve.
func BenchmarkFig12PADD(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkRealMSM measures this host's genuine (functional) DistMSM
// throughput: real field/curve arithmetic, scheduled as on the simulated
// cluster.
func BenchmarkRealMSM(b *testing.B) {
	for _, curveName := range []string{"BN254", "BLS12-381"} {
		c, err := distmsm.Curve(curveName)
		if err != nil {
			b.Fatal(err)
		}
		sys, err := distmsm.NewSystem(distmsm.A100, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, logN := range []int{12, 16} {
			n := 1 << logN
			points := c.SamplePoints(n, 1)
			scalars := c.SampleScalars(n, 2)
			b.Run(fmt.Sprintf("%s/2^%d", curveName, logN), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sys.MSMContext(context.Background(), c, points, scalars, distmsm.WithWindowBits(10)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRealEngines compares the serial reference engine with the
// concurrent per-GPU engine on genuine arithmetic at 2^12–2^16 points,
// recording the perf trajectory of the concurrent engine from the PR
// that introduced it onward.
func BenchmarkRealEngines(b *testing.B) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 8)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, logN := range []int{12, 14, 16} {
		n := 1 << logN
		points := c.SamplePoints(n, 7)
		scalars := c.SampleScalars(n, 8)
		for _, eng := range []distmsm.Engine{distmsm.EngineSerial, distmsm.EngineConcurrent} {
			b.Run(fmt.Sprintf("%s/2^%d", eng, logN), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := sys.MSMContext(ctx, c, points, scalars,
						distmsm.WithWindowBits(12), distmsm.WithEngine(eng))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRealCPUMSM measures the plain host Pippenger path.
func BenchmarkRealCPUMSM(b *testing.B) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 14
	points := c.SamplePoints(n, 3)
	scalars := c.SampleScalars(n, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distmsm.CPUMSM(c, points, scalars); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealProof measures a genuine Groth16 prove+verify round trip
// (the functional anchor of Table 4) at demo scale.
func BenchmarkRealProof(b *testing.B) {
	snark, err := distmsm.NewSNARK(nil)
	if err != nil {
		b.Fatal(err)
	}
	cs, w := snark.SyntheticCircuit(64, 1)
	rnd := rand.New(rand.NewSource(2))
	pk, vk, err := snark.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proof, err := snark.ProveContext(context.Background(), cs, pk, w, rnd)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := snark.Verify(vk, proof, w[1:1+cs.NPublic])
		if err != nil || !ok {
			b.Fatal("verification failed")
		}
	}
}
