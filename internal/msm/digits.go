// Package msm implements Pippenger's bucket algorithm for multi-scalar
// multiplication on the CPU: a serial reference, a parallel version
// (window- and bucket-dimension parallelism), signed-digit recoding and
// window precomputation. It is both a substrate for the simulated-GPU
// DistMSM scheduler in internal/core and the "single machine" baseline
// the paper's Figure 2 describes.
package msm

import (
	"fmt"

	"distmsm/internal/bigint"
)

// NumWindows returns ⌈λ/s⌉, the window count of Pippenger's algorithm.
func NumWindows(scalarBits, s int) int { return (scalarBits + s - 1) / s }

// Digits decomposes scalar into ⌈λ/s⌉ unsigned s-bit digits, least
// significant window first, so scalar = Σ digits[j] · 2^(j·s).
func Digits(scalar bigint.Nat, scalarBits, s int) []uint32 {
	if s < 1 || s > 31 {
		panic(fmt.Sprintf("msm: window size %d out of range [1,31]", s))
	}
	n := NumWindows(scalarBits, s)
	out := make([]uint32, n)
	for j := 0; j < n; j++ {
		width := s
		if rem := scalarBits - j*s; rem < s {
			width = rem
		}
		out[j] = uint32(scalar.Bits(j*s, width))
	}
	return out
}

// SignedDigits decomposes scalar into signed digits in
// (-2^(s-1), 2^(s-1)], least significant window first, so that
// scalar = Σ digits[j] · 2^(j·s). One extra window may be produced to
// absorb the final carry. Signed recoding halves the number of buckets
// (the negation of a point is free), a standard Pippenger optimisation
// used by the ZPrize winners and adopted by DistMSM.
func SignedDigits(scalar bigint.Nat, scalarBits, s int) []int32 {
	raw := Digits(scalar, scalarBits, s)
	out := make([]int32, len(raw)+1)
	half := int64(1) << (s - 1)
	carry := int64(0)
	for j, d := range raw {
		v := int64(d) + carry
		if v > half {
			out[j] = int32(v - (int64(1) << s))
			carry = 1
		} else {
			out[j] = int32(v)
			carry = 0
		}
	}
	out[len(raw)] = int32(carry)
	if carry == 0 {
		out = out[:len(raw)]
	}
	return out
}
