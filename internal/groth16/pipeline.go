// Phase-DAG pipelined prover: the Groth16 proof is a dependency graph,
// not a straight line. The four witness-only MSM phases (msm-A, msm-B1,
// msm-K over G1 and msm-B2 over G2) depend only on the witness; the
// quotient h depends only on the witness; and msm-Z is the single phase
// that consumes h. The executor below runs the quotient — on parallel
// coset NTTs, the host stand-in for the multi-GPU four-step NTT of
// §5.1.1 — concurrently with the witness MSMs, starts msm-Z the moment
// h lands, and joins with errgroup semantics (first error cancels every
// other phase).
//
// Byte-identity with the sequential prover holds because only the
// schedule changes: r and s are drawn from rnd in the same order (the
// quotient consumes no randomness, so drawing them before launching the
// DAG yields the values the sequential prover draws after it), every
// MSM runs over exactly the same (points, scalars) vectors, the
// parallel NTT is bit-identical to the serial one, and MSM shards hold
// whole buckets, so any GPU partition sums to the same point.
package groth16

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"distmsm/internal/bigint"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/pairing"
	"distmsm/internal/r1cs"
	"distmsm/internal/telemetry"
)

// The pipelined prover's phase lanes (telemetry.TrackPhase indices).
// Each concurrent phase records its span on its own lane, so overlap is
// visible in the exported Chrome trace instead of aliasing on the host
// lane.
const (
	laneQuotient = iota
	laneMSMA
	laneMSMB2
	laneMSMB1
	laneMSMK
	laneMSMZ
)

// phaseGroup is a minimal errgroup: Go runs a phase, the first error
// cancels the derived context, and Wait blocks until every phase exits
// and returns the first error.
type phaseGroup struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
}

func newPhaseGroup(ctx context.Context) (*phaseGroup, context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	return &phaseGroup{cancel: cancel}, ctx
}

func (g *phaseGroup) Go(f func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := f(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
			g.cancel()
		}
	}()
}

func (g *phaseGroup) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// ProvePipelinedContext generates a proof by executing the prover's
// phase DAG: quotient ∥ {msm-A, msm-B2, msm-B1, msm-K}, then msm-Z as
// soon as the quotient lands. The proof bytes are identical to
// ProveContextWith's sequential schedule (see the package comment
// above); only the wall-clock schedule differs. A failing phase cancels
// every other phase's context, and the error — annotated with the phase
// name — is returned once all phase goroutines have exited, so the
// caller never leaks a running phase.
func (e *Engine) ProvePipelinedContext(ctx context.Context, cs *r1cs.System, pk *ProvingKey, witness []field.Element, rnd *rand.Rand, pr Provers, opt PipelineOptions) (*Proof, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cs.Satisfied(witness); err != nil {
		return nil, err
	}
	fr := e.Fr
	msmG1 := e.g1msm(pr)
	msmG2 := e.g2msm(pr)
	tr := telemetry.FromContext(ctx)

	// Draw the proof randomness up front, in the sequential prover's
	// order (r then s): the quotient between those draws consumes no
	// randomness, so the values — and therefore the proof bytes — match.
	r, s := fr.Rand(rnd), fr.Rand(rnd)

	wScalars := make([]bigint.Nat, len(witness))
	for i, a := range witness {
		wScalars[i] = frNat(fr, a)
	}
	big2 := make([]*big.Int, len(witness))
	for i := range witness {
		big2[i] = fr.ToBig(witness[i])
	}
	privScalars := privateScalars(fr, cs, witness, wScalars)

	grp, gctx := newPhaseGroup(ctx)

	// timed wraps one phase body with its span (own start time, own
	// lane) and the OnPhase callback.
	timed := func(lane int, name string, fn func() error) func() error {
		return func() error {
			start := time.Now()
			if err := fn(); err != nil {
				return fmt.Errorf("groth16: phase %s: %w", name, err)
			}
			phaseSpan(tr, name, telemetry.TrackPhase(lane), start)
			if opt.OnPhase != nil {
				opt.OnPhase(name, time.Since(start))
			}
			return nil
		}
	}

	var (
		h      []field.Element
		hReady = make(chan struct{})
		proofA curve.PointAffine
		proofB pairing.G2Affine
		accB1  *curve.PointXYZZ
		sumK   *curve.PointXYZZ
		sumH   *curve.PointXYZZ
	)

	grp.Go(timed(laneQuotient, "quotient", func() error {
		var err error
		h, err = e.quotient(gctx, cs, pk.Domain, witness, opt.NTTWorkers)
		if err != nil {
			return err
		}
		close(hReady)
		return nil
	}))

	// A = α + Σ a_i·u_i(τ) + r·δ  (G1)
	grp.Go(timed(laneMSMA, "msm-A", func() error {
		sumA, err := msmG1(gctx, PhaseA, pk.A, wScalars)
		if err != nil {
			return err
		}
		adder := e.P.Curve.NewAdder()
		accA := e.P.Curve.NewXYZZ()
		e.P.Curve.SetAffine(accA, &pk.Alpha)
		adder.Add(accA, sumA)
		rDelta := adder.ScalarMul(&pk.Delta, frNat(fr, r))
		adder.Add(accA, rDelta)
		proofA = e.P.Curve.ToAffine(accA)
		return nil
	}))

	// B = β + Σ a_i·v_i(τ) + s·δ  (G2)
	grp.Go(timed(laneMSMB2, "msm-B2", func() error {
		sumB2, err := msmG2(gctx, pk.B2, big2)
		if err != nil {
			return err
		}
		g2 := e.P.G2
		withBeta := g2.Add(&sumB2, &pk.Beta2)
		sDelta2 := g2.ScalarMulFr(&pk.Delta2, fr, s)
		proofB = g2.Add(&withBeta, &sDelta2)
		return nil
	}))

	// B's G1 mirror: β + Σ a_i·v_i(τ) + s·δ over G1.
	grp.Go(timed(laneMSMB1, "msm-B1", func() error {
		sumB1, err := msmG1(gctx, PhaseB1, pk.B1, wScalars)
		if err != nil {
			return err
		}
		adder := e.P.Curve.NewAdder()
		acc := e.P.Curve.NewXYZZ()
		e.P.Curve.SetAffine(acc, &pk.Beta)
		adder.Add(acc, sumB1)
		sDelta1 := adder.ScalarMul(&pk.Delta, frNat(fr, s))
		adder.Add(acc, sDelta1)
		accB1 = acc
		return nil
	}))

	grp.Go(timed(laneMSMK, "msm-K", func() error {
		var err error
		sumK, err = msmG1(gctx, PhaseK, pk.K, privScalars)
		return err
	}))

	// msm-Z is the only phase downstream of the quotient: block until h
	// lands (or the group dies), then run. The span starts at the MSM
	// launch, not at the wait, so the trace shows when Z actually ran.
	grp.Go(func() error {
		select {
		case <-hReady:
		case <-gctx.Done():
			return gctx.Err()
		}
		return timed(laneMSMZ, "msm-Z", func() error {
			hScalars := quotientScalars(fr, pk, h)
			var err error
			sumH, err = msmG1(gctx, PhaseZ, pk.Z, hScalars)
			return err
		})()
	})

	if err := grp.Wait(); err != nil {
		return nil, err
	}

	// C = Σ_priv a_i·K_i + Σ_j h_j·Z_j + s·A + r·B1 − r·s·δ — the same
	// assembly, in the same operation order, as the sequential prover.
	adder := e.P.Curve.NewAdder()
	accC := sumK
	adder.Add(accC, sumH)
	aAff := proofA
	sA := adder.ScalarMul(&aAff, frNat(fr, s))
	adder.Add(accC, sA)
	b1Aff := e.P.Curve.ToAffine(accB1)
	rB1 := adder.ScalarMul(&b1Aff, frNat(fr, r))
	adder.Add(accC, rB1)
	rs := fr.NewElement()
	fr.Mul(rs, r, s)
	rsDelta := adder.ScalarMul(&pk.Delta, frNat(fr, rs))
	e.P.Curve.Neg(rsDelta)
	adder.Add(accC, rsDelta)

	return &Proof{A: proofA, B: proofB, C: e.P.Curve.ToAffine(accC)}, nil
}
