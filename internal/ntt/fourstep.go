package ntt

import (
	"fmt"

	"distmsm/internal/field"
	"distmsm/internal/gpusim"
	"distmsm/internal/kernel"
)

// The four-step NTT decomposition — the algorithm a multi-GPU NTT would
// distribute, and the paper's named future work ("NTT and others could
// also benefit from multi-GPU acceleration", §5.1.1). For N = n1·n2 the
// transform becomes: n2 column NTTs of size n1, a twiddle scaling, n1 row
// NTTs of size n2, and a transpose. On a cluster the row/column passes
// are embarrassingly parallel and the transpose is one all-to-all
// exchange; FourStep verifies the mathematics against the direct
// transform and MultiGPUNTTSeconds prices the distributed execution.

// FourStep computes the size-(n1·n2) NTT of a via the four-step
// decomposition, returning a fresh output slice. n1 and n2 must be
// powers of two with n1·n2 == d.N.
func (d *Domain) FourStep(a []field.Element, n1, n2 int) ([]field.Element, error) {
	if n1*n2 != d.N || n1 < 1 || n2 < 1 {
		return nil, fmt.Errorf("ntt: four-step split %d x %d != %d", n1, n2, d.N)
	}
	if len(a) != d.N {
		return nil, fmt.Errorf("ntt: input length %d != %d", len(a), d.N)
	}
	f := d.F
	d1, err := NewDomain(f, n1)
	if err != nil {
		return nil, err
	}
	d2, err := NewDomain(f, n2)
	if err != nil {
		return nil, err
	}

	// Step 1: column NTTs of size n1 (column i2 = elements i1·n2 + i2).
	work := make([]field.Element, d.N)
	col := make([]field.Element, n1)
	for i2 := 0; i2 < n2; i2++ {
		for i1 := 0; i1 < n1; i1++ {
			col[i1] = a[i1*n2+i2].Clone()
		}
		d1.Forward(col[:n1])
		for k1 := 0; k1 < n1; k1++ {
			work[k1*n2+i2] = col[k1]
			col[k1] = f.NewElement() // fresh storage for the next column
		}
	}

	// Step 2: twiddle factors ω_N^(k1·i2).
	tmp := f.NewElement()
	rowTw := f.One()
	for k1 := 0; k1 < n1; k1++ {
		tw := f.One()
		for i2 := 0; i2 < n2; i2++ {
			f.Mul(tmp, work[k1*n2+i2], tw)
			work[k1*n2+i2].Set(tmp)
			f.Mul(tmp, tw, rowTw)
			tw.Set(tmp)
		}
		f.Mul(tmp, rowTw, d.root)
		rowTw.Set(tmp)
	}

	// Step 3: row NTTs of size n2 (contiguous).
	for k1 := 0; k1 < n1; k1++ {
		d2.Forward(work[k1*n2 : (k1+1)*n2])
	}

	// Step 4: transpose read-out: X[k1 + n1·k2] = work[k1·n2 + k2].
	out := make([]field.Element, d.N)
	for k1 := 0; k1 < n1; k1++ {
		for k2 := 0; k2 < n2; k2++ {
			out[k1+n1*k2] = work[k1*n2+k2]
		}
	}
	return out, nil
}

// MultiGPUNTTSeconds prices a size-n NTT distributed over the cluster
// with the four-step schedule: each GPU transforms n/G rows locally
// (twice), and the transpose is an all-to-all moving (G−1)/G of the data
// across the interconnect once in each direction.
func MultiGPUNTTSeconds(cl *gpusim.Cluster, n int, fieldBits int) float64 {
	model := cl.Model()
	g := float64(cl.N)
	// Butterfly count: (n/2)·log2(n) multiplications total, split across
	// GPUs; priced through the generic int-op path (one modular
	// multiplication plus the butterfly add/sub per step).
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	butterflies := float64(n) / 2 * float64(logN)
	spec := kernel.Spec{Variant: kernel.VariantOptimalOrder, Muls: 1, PeakLive: 3}
	compute := model.ECOpSeconds(spec, fieldBits, butterflies/g) // per-GPU share
	// Twiddle pass.
	compute += model.ECOpSeconds(spec, fieldBits, float64(n)/g)
	// All-to-all transpose: each GPU sends and receives ~n/G elements
	// (bytes = fieldBits/8 each) over the host link.
	bytes := float64(n) / g * float64(fieldBits) / 8 * 2 * (g - 1) / g
	transfer := gpusim.HostTransferSeconds(bytes, cl.IC)
	return compute + transfer
}
