package service

import (
	"fmt"
	"time"

	"distmsm/internal/core"
	"distmsm/internal/gpusim"
	"distmsm/internal/telemetry"
)

// serviceMetrics holds the pre-registered metric handles of one service
// instance. Registration happens once in New; the per-job and per-MSM
// paths only touch atomics. Every method is nil-safe so the service can
// call them unconditionally — a Config without a Metrics registry costs
// a nil check per call site.
type serviceMetrics struct {
	reg *telemetry.Registry

	submitted        *telemetry.Counter
	admissionRejects *telemetry.Counter
	jobsCompleted    *telemetry.Counter
	jobsFailed       *telemetry.Counter
	jobsCancelled    *telemetry.Counter
	deadlineMisses   *telemetry.Counter
	queueDepth       *telemetry.Gauge
	inFlight         *telemetry.Gauge
	memoryBytes      *telemetry.Gauge
	jobSeconds       *telemetry.Histogram

	baseCacheHits      *telemetry.Counter
	baseCacheMisses    *telemetry.Counter
	baseCacheEvictions *telemetry.Counter
	baseCacheBytes     *telemetry.Gauge

	jobsShed      map[string]*telemetry.Counter // by shed reason
	queueReorders *telemetry.Counter

	phaseSeconds map[string]*telemetry.Histogram

	msmRuns        *telemetry.Counter
	faultTransient *telemetry.Counter
	faultStraggler *telemetry.Counter
	faultCorrupt   *telemetry.Counter
	faultDevLost   *telemetry.Counter
	retries        *telemetry.Counter
	steals         *telemetry.Counter
	reassignments  *telemetry.Counter
	specLaunches   *telemetry.Counter
	specWins       *telemetry.Counter
	verifyRuns     *telemetry.Counter
	verifyFailures *telemetry.Counter
}

// newServiceMetrics registers the service's metric families on reg and
// wires per-GPU breaker-state gauges to the health registry. The breaker
// GaugeFuncs read the registry under its own lock at scrape time, so a
// scrape never contends with the service mutex.
func newServiceMetrics(reg *telemetry.Registry, health *gpusim.HealthRegistry, gpus int) *serviceMetrics {
	if reg == nil {
		return nil
	}
	m := &serviceMetrics{reg: reg}

	m.submitted = reg.Counter("distmsm_jobs_submitted_total",
		"Proof jobs submitted (accepted or rejected).", "")
	m.admissionRejects = reg.Counter("distmsm_admission_rejects_total",
		"Submissions rejected by admission control (queue depth or memory budget).", "")
	jobs := func(outcome string) *telemetry.Counter {
		return reg.Counter("distmsm_jobs_total",
			"Terminal job outcomes.", `outcome="`+outcome+`"`)
	}
	m.jobsCompleted = jobs("completed")
	m.jobsFailed = jobs("failed")
	m.jobsCancelled = jobs("cancelled")
	m.deadlineMisses = reg.Counter("distmsm_job_deadline_misses_total",
		"Jobs that blew their end-to-end deadline (in queue or mid-proof).", "")
	m.queueDepth = reg.Gauge("distmsm_queue_depth",
		"Jobs waiting for a proving worker.", "")
	m.inFlight = reg.Gauge("distmsm_inflight_jobs",
		"Jobs currently on a proving worker.", "")
	m.memoryBytes = reg.Gauge("distmsm_memory_inuse_bytes",
		"Summed memory estimate of queued and in-flight jobs.", "")
	m.jobSeconds = reg.Histogram("distmsm_job_seconds",
		"End-to-end job latency (dequeue to terminal state).", "", nil)

	m.baseCacheHits = reg.Counter("distmsm_base_cache_hits_total",
		"Jobs proved from a circuit's cached fixed-base tables.", "")
	m.baseCacheMisses = reg.Counter("distmsm_base_cache_misses_total",
		"Jobs that recomputed from raw proving-key columns (no cache).", "")
	m.baseCacheEvictions = reg.Counter("distmsm_base_cache_evictions_total",
		"Circuit base caches dropped under memory pressure.", "")
	m.baseCacheBytes = reg.Gauge("distmsm_base_cache_bytes",
		"Bytes currently held by cached fixed-base tables.", "")

	// Shed and reorder counters are pre-registered per reason so the
	// dequeue path never takes the registry lock.
	m.jobsShed = make(map[string]*telemetry.Counter, len(shedReasons))
	for _, reason := range shedReasons {
		m.jobsShed[reason] = reg.Counter("distmsm_jobs_shed_total",
			"Jobs shed as doomed before or during proving, by reason.",
			`reason="`+reason+`"`)
	}
	m.queueReorders = reg.Counter("distmsm_queue_reorders_total",
		"Dequeues where EDF picked a job ahead of the strict-FIFO head.", "")

	// One histogram per prover phase, pre-registered so the pipelined
	// prover's concurrent OnPhase callbacks only touch atomics.
	m.phaseSeconds = make(map[string]*telemetry.Histogram, len(provePhases))
	for _, phase := range provePhases {
		m.phaseSeconds[phase] = reg.Histogram("distmsm_prove_phase_seconds",
			"Wall time of one Groth16 prover phase (pipelined prover).",
			`phase="`+phase+`"`, nil)
	}

	m.msmRuns = reg.Counter("distmsm_msm_runs_total",
		"MSM executions completed by the multi-GPU scheduler.", "")
	fault := func(class string) *telemetry.Counter {
		return reg.Counter("distmsm_msm_faults_total",
			"Injected/observed GPU faults by class.", `class="`+class+`"`)
	}
	m.faultTransient = fault("transient")
	m.faultStraggler = fault("straggler")
	m.faultCorrupt = fault("corruption")
	m.faultDevLost = fault("device-lost")
	m.retries = reg.Counter("distmsm_msm_retries_total",
		"Shard re-executions queued after a failure.", "")
	m.steals = reg.Counter("distmsm_msm_steals_total",
		"Shards taken from another healthy GPU's queue by an idle worker.", "")
	m.reassignments = reg.Counter("distmsm_msm_reassignments_total",
		"Shards moved to a different GPU (device loss or retry escalation).", "")
	m.specLaunches = reg.Counter("distmsm_msm_speculative_launches_total",
		"Speculative duplicate executions started for overdue shards.", "")
	m.specWins = reg.Counter("distmsm_msm_speculative_wins_total",
		"Speculative executions that committed before the original.", "")
	m.verifyRuns = reg.Counter("distmsm_msm_verification_runs_total",
		"Sampled randomized result verifications.", "")
	m.verifyFailures = reg.Counter("distmsm_msm_verification_failures_total",
		"Verification rejections (each triggers a re-execution).", "")

	for g := 0; g < gpus; g++ {
		g := g
		reg.GaugeFunc("distmsm_gpu_breaker_state",
			"Per-GPU circuit-breaker state (0 closed, 1 open/quarantined, 2 half-open).",
			fmt.Sprintf(`gpu="%d"`, g),
			func() float64 { return float64(health.State(g)) })
	}
	return m
}

// observeAdmission records a Submit outcome (rejected = admission said no).
func (m *serviceMetrics) observeAdmission(rejected bool) {
	if m == nil {
		return
	}
	m.submitted.Inc()
	if rejected {
		m.admissionRejects.Inc()
	}
}

// observeOccupancy mirrors the queue/in-flight/memory gauges.
func (m *serviceMetrics) observeOccupancy(queued, inFlight int, memBytes int64) {
	if m == nil {
		return
	}
	m.queueDepth.Set(float64(queued))
	m.inFlight.Set(float64(inFlight))
	m.memoryBytes.Set(float64(memBytes))
}

// observeJob records one terminal job outcome and its wall time.
func (m *serviceMetrics) observeJob(outcome jobOutcome, seconds float64) {
	if m == nil {
		return
	}
	switch outcome {
	case outcomeCompleted:
		m.jobsCompleted.Inc()
	case outcomeDeadline:
		m.jobsCancelled.Inc()
		m.deadlineMisses.Inc()
	case outcomeCancelled:
		m.jobsCancelled.Inc()
	default:
		m.jobsFailed.Inc()
	}
	m.jobSeconds.Observe(seconds)
}

// observeBaseLookup records one job's base-cache lookup outcome.
func (m *serviceMetrics) observeBaseLookup(hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.baseCacheHits.Inc()
	} else {
		m.baseCacheMisses.Inc()
	}
}

// observeBaseSize mirrors the cached-table bytes gauge; evicted also
// counts one cache eviction.
func (m *serviceMetrics) observeBaseSize(bytes int64, evicted bool) {
	if m == nil {
		return
	}
	if evicted {
		m.baseCacheEvictions.Inc()
	}
	m.baseCacheBytes.Set(float64(bytes))
}

// shedReasons are the label values of distmsm_jobs_shed_total.
var shedReasons = []string{ShedExpired, ShedDoomed, ShedPhase}

// observeShed records one shed job by reason.
func (m *serviceMetrics) observeShed(reason string) {
	if m == nil {
		return
	}
	if c := m.jobsShed[reason]; c != nil {
		c.Inc()
	}
}

// observeReorder records one deadline-driven dequeue reorder.
func (m *serviceMetrics) observeReorder() {
	if m == nil {
		return
	}
	m.queueReorders.Inc()
}

// provePhases are the pipelined prover's phase names, in DAG order.
var provePhases = []string{"quotient", "msm-A", "msm-B2", "msm-B1", "msm-K", "msm-Z"}

// observePhase records one completed prover phase's wall time. Called
// concurrently from the pipelined prover's phase goroutines — the
// histogram handle only touches atomics.
func (m *serviceMetrics) observePhase(name string, d time.Duration) {
	if m == nil {
		return
	}
	if h := m.phaseSeconds[name]; h != nil {
		h.Observe(d.Seconds())
	}
}

// observeMSM folds one MSM execution's fault-tolerance counters into the
// service-lifetime rates.
func (m *serviceMetrics) observeMSM(f core.FaultStats) {
	if m == nil {
		return
	}
	m.msmRuns.Inc()
	m.faultTransient.Add(uint64(f.TransientErrors))
	m.faultStraggler.Add(uint64(f.Stragglers))
	m.faultCorrupt.Add(uint64(f.Corruptions))
	m.faultDevLost.Add(uint64(f.DevicesLost))
	m.retries.Add(uint64(f.Retries))
	m.steals.Add(uint64(f.Steals))
	m.reassignments.Add(uint64(f.Reassignments))
	m.specLaunches.Add(uint64(f.SpeculativeLaunches))
	m.specWins.Add(uint64(f.SpeculativeWins))
	m.verifyRuns.Add(uint64(f.VerificationRuns))
	m.verifyFailures.Add(uint64(f.VerificationFailures))
}

// jobOutcome classifies a terminal job state for metrics and the EWMA.
type jobOutcome int

const (
	outcomeCompleted jobOutcome = iota
	outcomeDeadline
	outcomeCancelled
	outcomeFailed
)
