package kernel

import (
	"fmt"
	"math/bits"
)

// Pressure accounting (§4.2): at each op, the live set is every value that
// has been defined (or is an input) and still has a pending use, or is a
// kernel output. A modular multiplication additionally needs one scratch
// big integer while it runs. The destination of an op can reuse the
// register of a source that dies at the same op (the "consecutive pairing"
// insight the paper uses to merge units), so the pressure of an op is
//
//	max(|live before|, |live after|) + (1 scratch if Mul)
//
// With this accounting the straightforward orders of Algorithms 1 and 4
// evaluate to the paper's 11 and 9 live big integers, respectively.

// PeakPressure returns the peak number of concurrently live big integers
// for executing g's ops in the given order (indices into g.Ops). Inputs
// are live from the start; outputs remain live to the end.
func PeakPressure(g *Graph, order []int) int {
	p, _ := pressureProfile(g, order)
	return p
}

// PressureProfile returns the per-op pressure for the given order.
func PressureProfile(g *Graph, order []int) []int {
	_, prof := pressureProfile(g, order)
	return prof
}

func pressureProfile(g *Graph, order []int) (int, []int) {
	remaining := useCounts(g)
	live := map[string]bool{}
	for _, in := range g.Inputs {
		live[in] = true
	}
	outputs := map[string]bool{}
	for _, o := range g.Outputs {
		outputs[o] = true
	}
	peak := len(live)
	prof := make([]int, len(order))
	for i, idx := range order {
		op := g.Ops[idx]
		before := len(live)
		// Consume sources.
		for _, s := range op.Srcs {
			remaining[s]--
			if remaining[s] == 0 && !outputs[s] {
				delete(live, s)
			}
		}
		// Define destination (it is live if used later or an output).
		if remaining[op.Dst] > 0 || outputs[op.Dst] {
			live[op.Dst] = true
		}
		after := len(live)
		p := before
		if after > p {
			p = after
		}
		if op.Mul {
			p++
		}
		prof[i] = p
		if p > peak {
			peak = p
		}
	}
	return peak, prof
}

func useCounts(g *Graph) map[string]int {
	remaining := map[string]int{}
	for _, op := range g.Ops {
		for _, s := range op.Srcs {
			remaining[s]++
		}
	}
	return remaining
}

// StraightforwardOrder returns the identity order (the paper's pseudocode
// sequence).
func StraightforwardOrder(g *Graph) []int {
	order := make([]int, len(g.Ops))
	for i := range order {
		order[i] = i
	}
	return order
}

// Schedule is the result of the optimal execution-sequence search.
type Schedule struct {
	Graph *Graph
	Order []int // indices into Graph.Ops
	Peak  int   // peak live big integers (including the Mul scratch)
}

// OptimalSchedule exhaustively searches the topological orders of g for
// one minimising peak register pressure (§4.2.1). The search is a
// branch-and-bound DFS with subset memoisation; the paper observes the
// space is small (at most 12! before dependency pruning), and in practice
// a few thousand states are visited.
func OptimalSchedule(g *Graph) (*Schedule, error) {
	n := len(g.Ops)
	if n > 63 {
		return nil, fmt.Errorf("kernel: graph too large for bitmask search (%d ops)", n)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	// Precompute per-op source/dst and dependency masks.
	varID := map[string]int{}
	id := func(v string) int {
		if i, ok := varID[v]; ok {
			return i
		}
		varID[v] = len(varID)
		return len(varID) - 1
	}
	defOf := map[string]int{} // var -> op index defining it
	for i, op := range g.Ops {
		defOf[op.Dst] = i
		id(op.Dst)
	}
	for _, in := range g.Inputs {
		id(in)
	}
	deps := make([]uint64, n) // ops that must precede op i
	for i, op := range g.Ops {
		for _, s := range op.Srcs {
			if j, ok := defOf[s]; ok {
				deps[i] |= 1 << uint(j)
			}
		}
	}

	s := &searcher{g: g, deps: deps, memo: map[uint64]int{}, bestPeak: 1 << 30}
	s.useTotal = useCounts(g)
	s.outputs = map[string]bool{}
	for _, o := range g.Outputs {
		s.outputs[o] = true
	}
	live := map[string]bool{}
	for _, in := range g.Inputs {
		live[in] = true
	}
	s.dfs(0, live, cloneCounts(s.useTotal), nil, len(live))
	if s.bestOrder == nil {
		return nil, fmt.Errorf("kernel: no topological order found for %s", g.Name)
	}
	return &Schedule{Graph: g, Order: s.bestOrder, Peak: s.bestPeak}, nil
}

type searcher struct {
	g         *Graph
	deps      []uint64
	outputs   map[string]bool
	useTotal  map[string]int
	memo      map[uint64]int // scheduled-set -> best peak-so-far seen entering it
	bestPeak  int
	bestOrder []int
}

func cloneCounts(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func (s *searcher) dfs(done uint64, live map[string]bool, remaining map[string]int, order []int, peakSoFar int) {
	n := len(s.g.Ops)
	if peakSoFar >= s.bestPeak {
		return // cannot improve
	}
	if best, ok := s.memo[done]; ok && best <= peakSoFar {
		return // reached this subset with no-worse pressure before
	}
	s.memo[done] = peakSoFar
	if bits.OnesCount64(done) == n {
		s.bestPeak = peakSoFar
		s.bestOrder = append([]int(nil), order...)
		return
	}
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if done&bit != 0 || s.deps[i]&^done != 0 {
			continue
		}
		op := s.g.Ops[i]
		// Apply op.
		before := len(live)
		var killed []string
		for _, src := range op.Srcs {
			remaining[src]--
			if remaining[src] == 0 && !s.outputs[src] && live[src] {
				delete(live, src)
				killed = append(killed, src)
			}
		}
		defined := false
		if remaining[op.Dst] > 0 || s.outputs[op.Dst] {
			live[op.Dst] = true
			defined = true
		}
		after := len(live)
		p := before
		if after > p {
			p = after
		}
		if op.Mul {
			p++
		}
		newPeak := peakSoFar
		if p > newPeak {
			newPeak = p
		}
		s.dfs(done|bit, live, remaining, append(order, i), newPeak)
		// Undo op.
		if defined {
			delete(live, op.Dst)
		}
		for _, src := range op.Srcs {
			remaining[src]++
		}
		for _, src := range killed {
			live[src] = true
		}
	}
}

// IsTopological reports whether order is a valid topological order of g.
func IsTopological(g *Graph, order []int) bool {
	if len(order) != len(g.Ops) {
		return false
	}
	defined := map[string]bool{}
	for _, in := range g.Inputs {
		defined[in] = true
	}
	seen := map[int]bool{}
	for _, idx := range order {
		if idx < 0 || idx >= len(g.Ops) || seen[idx] {
			return false
		}
		seen[idx] = true
		op := g.Ops[idx]
		for _, s := range op.Srcs {
			if !defined[s] {
				return false
			}
		}
		defined[op.Dst] = true
	}
	return true
}
