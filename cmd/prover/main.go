// Command prover runs the full zkSNARK pipeline at a chosen circuit
// size: build a synthetic workload circuit, run the trusted setup, prove
// with the G1 MSMs on a simulated multi-GPU system, serialise the proof
// and verification key, and verify from the decoded bytes.
//
// Usage:
//
//	prover -constraints 200 -gpus 8 [-out proof.bin]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"distmsm"
	"distmsm/internal/groth16"
	"distmsm/internal/r1cs"
)

func main() {
	var (
		constraints = flag.Int("constraints", 200, "synthetic circuit size")
		gpus        = flag.Int("gpus", 8, "simulated GPU count for the prover's MSMs")
		out         = flag.String("out", "", "optional path to write the serialised proof")
		seed        = flag.Int64("seed", 1, "circuit/setup seed")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *constraints, *gpus, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "prover:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, constraints, gpus int, out string, seed int64) error {
	sys, err := distmsm.NewSystem(distmsm.A100, gpus)
	if err != nil {
		return err
	}
	snark, err := distmsm.NewSNARK(sys)
	if err != nil {
		return err
	}
	engine, err := groth16.NewEngine()
	if err != nil {
		return err
	}
	cs, w := r1cs.BuildSynthetic(snark.ScalarField(), constraints, seed)
	rnd := rand.New(rand.NewSource(seed))

	start := time.Now()
	pk, vk, err := snark.SetupContext(ctx, cs, rnd)
	if err != nil {
		return err
	}
	setupDur := time.Since(start)

	start = time.Now()
	proof, err := snark.ProveContext(ctx, cs, pk, w, rnd)
	if err != nil {
		return err
	}
	proveDur := time.Since(start)

	proofBytes := engine.MarshalProof(proof)
	vkBytes := engine.MarshalVerifyingKey(vk)
	decodedProof, err := engine.UnmarshalProof(proofBytes)
	if err != nil {
		return err
	}
	decodedVK, err := engine.UnmarshalVerifyingKey(vkBytes)
	if err != nil {
		return err
	}

	start = time.Now()
	ok, err := snark.Verify(decodedVK, decodedProof, w[1:1+cs.NPublic])
	if err != nil {
		return err
	}
	verifyDur := time.Since(start)
	if !ok {
		return fmt.Errorf("proof did not verify")
	}

	fmt.Printf("circuit      : %d constraints, %d variables, %d public\n",
		len(cs.Constraints), cs.NVars, cs.NPublic)
	fmt.Printf("setup        : %v (host)\n", setupDur)
	fmt.Printf("prove        : %v host wall clock; %.3f ms modeled MSM time on %d simulated A100s\n",
		proveDur, snark.ModeledMSMSeconds*1e3, gpus)
	fmt.Printf("verify       : %v (host, from decoded bytes)\n", verifyDur)
	fmt.Printf("proof        : %d bytes; verification key: %d bytes\n", len(proofBytes), len(vkBytes))
	if out != "" {
		if err := os.WriteFile(out, proofBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("proof written to %s\n", out)
	}
	return nil
}
