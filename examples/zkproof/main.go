// zkproof: an end-to-end zero-knowledge proof in the style of the
// paper's digital-currency workloads — prove knowledge of a non-trivial
// factorisation of a public number without revealing the factors, with
// the prover's multi-scalar multiplications executed by DistMSM on a
// simulated 8-GPU system (the Table 4 configuration, at demo scale).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"distmsm"
)

func main() {
	sys, err := distmsm.NewSystem(distmsm.A100, 8)
	if err != nil {
		log.Fatal(err)
	}
	snark, err := distmsm.NewSNARK(sys)
	if err != nil {
		log.Fatal(err)
	}
	fr := snark.ScalarField()

	// Statement: "I know factors a, b ≠ 1 with a·b = c" for public c.
	cs, witnessFor := snark.ProductCircuit()
	rnd := rand.New(rand.NewSource(7))
	pk, vk, err := snark.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		log.Fatal(err)
	}

	// The prover's secret: the 6th Fermat number's famous factorisation.
	a := fr.FromUint64(274177)
	b := fr.FromUint64(67280421310721 % (1 << 62)) // fits uint64
	w, err := witnessFor(a, b)
	if err != nil {
		log.Fatal(err)
	}
	proof, err := snark.ProveContext(context.Background(), cs, pk, w, rnd)
	if err != nil {
		log.Fatal(err)
	}

	// The verifier sees only c = a·b.
	c := fr.NewElement()
	fr.Mul(c, a, b)
	ok, err := snark.Verify(vk, proof, []distmsm.FieldElement{c})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public statement: c = %s\n", fr.ToBig(c))
	fmt.Printf("proof verifies: %v (factors never revealed)\n", ok)
	fmt.Printf("modeled GPU time of the prover's MSMs: %.3f ms on 8 simulated A100s\n",
		snark.ModeledMSMSeconds*1e3)

	// A cheating verifier input is rejected.
	bad := fr.FromUint64(12345)
	ok, err = snark.Verify(vk, proof, []distmsm.FieldElement{bad})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrong statement rejected: %v\n", !ok)

	// Paper-scale context (Table 4): modeled end-to-end times.
	fmt.Println("\nTable 4 workloads (modeled end-to-end proof generation):")
	for _, name := range distmsm.Workloads() {
		cpuSec, gpuSec, err := distmsm.WorkloadEstimate(name, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s libsnark %8.1f s   DistMSM %7.1f s   (%.1fx)\n",
			name, cpuSec, gpuSec, cpuSec/gpuSec)
	}
}
