package distmsm_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"distmsm"
)

func TestPublicAPICurves(t *testing.T) {
	names := distmsm.Curves()
	if len(names) != 4 {
		t.Fatalf("want 4 curves, got %v", names)
	}
	for _, n := range names {
		c, err := distmsm.Curve(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name != n {
			t.Errorf("curve name mismatch: %s != %s", c.Name, n)
		}
	}
	if _, err := distmsm.Curve("secp256k1"); err == nil {
		t.Error("unsupported curve must error")
	}
}

func TestPublicAPIMSM(t *testing.T) {
	c, err := distmsm.Curve("BLS12-381")
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	points := c.SamplePoints(n, 5)
	scalars := c.SampleScalars(n, 6)

	for _, model := range []distmsm.DeviceModel{distmsm.A100, distmsm.RTX4090, distmsm.AMD6900XT} {
		sys, err := distmsm.NewSystem(model, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.MSMContext(context.Background(), c, points, scalars, distmsm.WithWindowBits(8))
		if err != nil {
			t.Fatal(err)
		}
		want, err := distmsm.CPUMSM(c, points, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !c.EqualXYZZ(res.Point, want) {
			t.Fatalf("%s: MSM result mismatch", sys.DeviceName())
		}
		if res.Cost.Total() <= 0 {
			t.Fatalf("%s: non-positive cost", sys.DeviceName())
		}
	}
	if _, err := distmsm.NewSystem(distmsm.A100, 0); err == nil {
		t.Error("zero-GPU system must error")
	}
}

func TestPublicAPIEstimateAndBaseline(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.EstimateContext(context.Background(), c, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	bg, name, err := distmsm.BestBaseline(c, distmsm.A100, 16, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" || bg <= res.Cost.Total() {
		t.Errorf("DistMSM (%.4g) should beat baseline %s (%.4g) at 16 GPUs", res.Cost.Total(), name, bg)
	}
}

func TestPublicAPISNARK(t *testing.T) {
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	snark, err := distmsm.NewSNARK(sys)
	if err != nil {
		t.Fatal(err)
	}
	fr := snark.ScalarField()
	cs, witnessFor := snark.ProductCircuit()
	rnd := rand.New(rand.NewSource(9))
	pk, vk, err := snark.SetupContext(context.Background(), cs, rnd)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fr.FromUint64(101), fr.FromUint64(103)
	w, err := witnessFor(a, b)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := snark.ProveContext(context.Background(), cs, pk, w, rnd)
	if err != nil {
		t.Fatal(err)
	}
	c := fr.NewElement()
	fr.Mul(c, a, b)
	ok, err := snark.Verify(vk, proof, []distmsm.FieldElement{c})
	if err != nil || !ok {
		t.Fatalf("public-API proof failed: %v", err)
	}
	if snark.ModeledMSMSeconds <= 0 {
		t.Error("GPU-routed prover should accumulate modeled MSM time")
	}
}

func TestPublicAPIMSMContext(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	const n = 96
	points := c.SamplePoints(n, 11)
	scalars := c.SampleScalars(n, 12)
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Default (concurrent engine, auto window) against the CPU reference.
	res, err := sys.MSMContext(ctx, c, points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	want, err := distmsm.CPUMSM(c, points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	if !c.EqualXYZZ(res.Point, want) {
		t.Fatal("MSMContext result mismatch")
	}
	if len(res.Stats.PerGPU) == 0 {
		t.Error("concurrent default should record per-GPU stats")
	}

	// Functional options compose, and the two engines agree bit-for-bit.
	ser, err := sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithWindowBits(9),
		distmsm.WithEngine(distmsm.EngineSerial),
		distmsm.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithWindowBits(9),
		distmsm.WithEngine(distmsm.EngineConcurrent))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ser.Point, conc.Point) {
		t.Fatal("serial and concurrent engines disagree through the public API")
	}

	// The deprecated Options-struct wrapper still matches, and the
	// WithOptions bridge carries a legacy struct into the new API.
	old, err := sys.MSM(c, points, scalars, distmsm.Options{WindowSize: 9}) //ctxlint:allow (pinning the deprecated wrapper)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old.Point, conc.Point) {
		t.Fatal("deprecated MSM wrapper diverged")
	}
	bridged, err := sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithOptions(distmsm.Options{WindowSize: 9}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bridged.Point, conc.Point) {
		t.Fatal("WithOptions bridge diverged")
	}
}

func TestPublicAPISentinelErrors(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := distmsm.NewSystem(distmsm.A100, 0); !errors.Is(err, distmsm.ErrNoGPUs) {
		t.Errorf("want ErrNoGPUs, got %v", err)
	}
	_, err = sys.MSMContext(ctx, c, c.SamplePoints(2, 1), c.SampleScalars(1, 1))
	if !errors.Is(err, distmsm.ErrLengthMismatch) {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	// A scalar one bit past λ must be rejected as too wide.
	wide := c.SampleScalars(1, 2)
	words := len(wide[0])
	wide[0][words-1] = 0
	wide[0][(c.ScalarBits)/64] |= 1 << (uint(c.ScalarBits) % 64)
	_, err = sys.MSMContext(ctx, c, c.SamplePoints(1, 2), wide)
	if !errors.Is(err, distmsm.ErrScalarTooWide) {
		t.Errorf("want ErrScalarTooWide, got %v", err)
	}
}

func TestPublicAPICancellation(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.MSMContext(ctx, c, c.SamplePoints(8, 3), c.SampleScalars(8, 4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestPublicAPIEmptyInput(t *testing.T) {
	c, err := distmsm.Curve("BLS12-381")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MSMContext(context.Background(), c, nil, nil); !errors.Is(err, distmsm.ErrEmptyInput) {
		t.Fatalf("empty MSMContext: want ErrEmptyInput, got %v", err)
	}
	// The plain CPU path keeps the mathematical convention: Σ over the
	// empty set is the identity.
	pt, err := distmsm.CPUMSM(c, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pt == nil || !pt.IsInf() {
		t.Fatal("empty CPUMSM must return a non-nil point at infinity")
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	points := c.SamplePoints(n, 21)
	scalars := c.SampleScalars(n, 22)
	sys, err := distmsm.NewSystem(distmsm.A100, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	clean, err := sys.MSMContext(ctx, c, points, scalars, distmsm.WithWindowBits(8))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Stats.Faults.Any() {
		t.Fatalf("fault-free run reported fault activity: %+v", clean.Stats.Faults)
	}

	// A mixed fault load: the result must stay bit-identical and the
	// recovery must be visible in the stats.
	faulty, err := sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithWindowBits(8),
		distmsm.WithFaultInjection(distmsm.FaultConfig{
			Seed: 7, Transient: 0.2, Straggler: 0.1, Corrupt: 0.1, DeviceLost: 0.02,
		}),
		distmsm.WithRetryPolicy(distmsm.RetryPolicy{MaxAttempts: 3}),
		distmsm.WithVerifySampling(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean.Point, faulty.Point) {
		t.Fatal("fault recovery changed the MSM result")
	}
	if !faulty.Stats.Faults.Any() {
		t.Error("injected faults left no trace in Stats.Faults")
	}
	if faulty.Stats.Faults.VerificationRuns == 0 {
		t.Error("WithVerifySampling(1) ran no verifications")
	}

	// Losing every device degrades to the serial engine, same result.
	lost, err := sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithWindowBits(8),
		distmsm.WithFaultInjection(distmsm.FaultConfig{Seed: 1, DeviceLost: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !lost.Stats.Faults.DegradedToSerial {
		t.Error("all-GPUs-lost run did not report serial degradation")
	}
	if !reflect.DeepEqual(clean.Point, lost.Point) {
		t.Fatal("degraded serial run changed the MSM result")
	}

	// ...unless fallback is disabled, then the sentinel surfaces.
	_, err = sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithWindowBits(8),
		distmsm.WithFaultInjection(distmsm.FaultConfig{Seed: 1, DeviceLost: 1, DisableFallback: true}))
	if !errors.Is(err, distmsm.ErrAllGPUsLost) {
		t.Fatalf("want ErrAllGPUsLost, got %v", err)
	}

	// An invalid fault config is rejected up front.
	_, err = sys.MSMContext(ctx, c, points, scalars,
		distmsm.WithFaultInjection(distmsm.FaultConfig{Transient: 0.8, Corrupt: 0.8}))
	if !errors.Is(err, distmsm.ErrBadFaultConfig) {
		t.Fatalf("want ErrBadFaultConfig, got %v", err)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	ws := distmsm.Workloads()
	if len(ws) != 3 {
		t.Fatalf("want 3 workloads, got %v", ws)
	}
	cpu, gpu, err := distmsm.WorkloadEstimate("Zcash-Sprout", 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp := cpu / gpu; sp < 18 || sp > 35 {
		t.Errorf("Zcash-Sprout speedup %.1fx outside ~25x band", sp)
	}
	if _, _, err := distmsm.WorkloadEstimate("nope", 8); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(distmsm.Experiments()) != 10 {
		t.Fatalf("want 10 experiments, got %v", distmsm.Experiments())
	}
	out, err := distmsm.RunExperiment("table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BN254") {
		t.Error("table1 output malformed")
	}
}

func TestPublicAPIPipelined(t *testing.T) {
	c, err := distmsm.Curve("BN254")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := distmsm.NewSystem(distmsm.A100, 8)
	if err != nil {
		t.Fatal(err)
	}
	one, err := sys.EstimateContext(context.Background(), c, 1<<24, distmsm.WithWindowBits(12))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := sys.EstimatePipelinedContext(context.Background(), c, 1<<24, 6, distmsm.WithWindowBits(12))
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Total() <= one.Cost.Total() || pipe.Total() >= 7*one.Cost.Total() {
		t.Errorf("pipelined total %.4g implausible vs single %.4g", pipe.Total(), one.Cost.Total())
	}
}
