// scaling: sweep the simulated GPU count for a paper-scale MSM and print
// the scalability of DistMSM against the best published baseline —
// the experiment behind Figure 8 and the multi-GPU columns of Table 3.
package main

import (
	"context"
	"fmt"
	"log"

	"distmsm"
)

func main() {
	const logN = 26
	n := 1 << logN

	for _, curveName := range []string{"BLS12-381", "MNT4753"} {
		c, err := distmsm.Curve(curveName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, N = 2^%d, modeled on NVIDIA A100s\n", curveName, logN)
		fmt.Printf("%6s %14s %14s %10s %10s\n", "GPUs", "DistMSM(ms)", "Best-GPU(ms)", "speedup", "scaling")

		var t1 float64
		for _, g := range []int{1, 2, 4, 8, 16, 32} {
			sys, err := distmsm.NewSystem(distmsm.A100, g)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.EstimateContext(context.Background(), c, n)
			if err != nil {
				log.Fatal(err)
			}
			bg, bgName, err := distmsm.BestBaseline(c, distmsm.A100, g, n)
			if err != nil {
				log.Fatal(err)
			}
			tot := res.Cost.Total()
			if g == 1 {
				t1 = tot
			}
			fmt.Printf("%6d %14.2f %14.2f %9.1fx %9.1fx  (BG: %s, s=%d)\n",
				g, tot*1e3, bg*1e3, bg/tot, t1/tot, bgName, res.Plan.S)
		}
		fmt.Println()
	}
}
