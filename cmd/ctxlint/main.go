// Command ctxlint guards the context-first migration: it type-checks
// every package in the module and rejects calls to the Deprecated
// ctx-less wrappers (SNARK.Setup/Prove, System.MSM/Estimate/
// EstimatePipelined, groth16.Engine.Setup/Prove, core.Run, and the
// ntt.Domain Forward/Inverse/Coset* quartet). `make lint` runs it, so
// new in-repo callers of a deprecated form fail CI with a pointer to
// the Context replacement.
//
// Resolution is semantic, not textual: calls resolve through go/types,
// so an unrelated method that happens to be named Setup (e.g.
// kzg.Scheme.Setup, which has no Context variant) is never flagged.
//
// Two escapes exist, both deliberate:
//   - the package that defines a wrapper may call it from non-test
//     files (the wrapper bodies and their in-package convenience
//     callers are implementation, not migration debt);
//   - a call whose line carries a "//ctxlint:allow" comment is skipped
//     (used by the tests that pin the deprecated wrappers' behaviour).
//
// Usage: ctxlint [module-root]   (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const modulePath = "distmsm"

// deprecated maps "defining-package-path.Receiver.Method" (or
// "defining-package-path.Func" for package-level functions) to the
// replacement named in the diagnostic.
var deprecated = map[string]string{
	"distmsm.SNARK.Setup":                      "SetupContext",
	"distmsm.SNARK.Prove":                      "ProveContext",
	"distmsm.System.MSM":                       "MSMContext",
	"distmsm.System.Estimate":                  "EstimateContext",
	"distmsm.System.EstimatePipelined":         "EstimatePipelinedContext",
	"distmsm/internal/groth16.Engine.Setup":    "SetupContext",
	"distmsm/internal/groth16.Engine.Prove":    "ProveContext or ProveContextWith",
	"distmsm/internal/core.Run":                "RunContext",
	"distmsm/internal/ntt.Domain.Forward":        "ForwardContext",
	"distmsm/internal/ntt.Domain.Inverse":        "InverseContext",
	"distmsm/internal/ntt.Domain.CosetForward":   "CosetForwardContext",
	"distmsm/internal/ntt.Domain.CosetInverse":   "CosetInverseContext",
	"distmsm/internal/pairing.G2.MSM":            "MSMContext",
	"distmsm/internal/pairing.G2Precomputed.MSM": "MSMContext",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := run(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "ctxlint: %d call(s) to deprecated ctx-less wrappers\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("ctxlint: no deprecated ctx-less calls")
}

func run(root string) ([]string, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	ld := newLoader(root)
	var findings []string
	for _, dir := range dirs {
		fs, err := ld.checkDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	return findings, nil
}

// packageDirs lists every directory under root holding .go files.
// Deduplicated with a set: WalkDir interleaves a directory's files with
// its subdirectories, so last-seen tracking would list a dir once per
// interleaving and every finding in it would repeat.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// loader type-checks module packages on demand. Imports of module
// packages resolve recursively through the same loader (non-test files
// only, memoized); the standard library resolves through the source
// importer so no compiled export data is needed.
type loader struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
}

func newLoader(root string) *loader {
	l := &loader{root: root, fset: token.NewFileSet(), cache: map[string]*types.Package{}}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

// Import implements types.Importer for the type-checker's import
// resolution (only ever called for non-test dependency packages).
func (l *loader) Import(path string) (*types.Package, error) {
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/"))
		return l.importModulePkg(path, dir)
	}
	return l.std.Import(path)
}

func (l *loader) importModulePkg(path, dir string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

func (l *loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints under the default (tag-less) build, so
		// mutually exclusive files like the race/!race timingScale pair
		// don't type-check as a redeclaration.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkDir type-checks every package rooted in dir — the primary
// package plus, when present, its external _test package — and reports
// deprecated calls found in either.
func (l *loader) checkDir(dir string) ([]string, error) {
	all, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	for _, f := range all {
		name := f.Name.Name
		byName[name] = append(byName[name], f)
	}
	pkgPath := l.pathFor(dir)
	var findings []string
	for name, files := range byName {
		path := pkgPath
		if strings.HasSuffix(name, "_test") && len(byName) > 1 {
			path = pkgPath + "_test"
		}
		info := &types.Info{
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: l}
		if _, err := conf.Check(path, l.fset, files, info); err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", path, err)
		}
		findings = append(findings, l.scan(pkgPath, files, info)...)
	}
	return findings, nil
}

func (l *loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

// scan walks the checked files and reports calls that resolve to a
// deprecated wrapper, honouring the two escapes described in the
// package comment.
func (l *loader) scan(pkgPath string, files []*ast.File, info *types.Info) []string {
	var findings []string
	for _, file := range files {
		allowed := allowedLines(l.fset, file)
		fileName := l.fset.Position(file.Pos()).Filename
		isTestFile := strings.HasSuffix(fileName, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := resolve(sel, info)
			repl, bad := deprecated[key]
			if !bad {
				return true
			}
			pos := l.fset.Position(call.Pos())
			if pkgPath == definingPackage(key) && !isTestFile {
				return true // the defining package's own implementation
			}
			if allowed[pos.Line] {
				return true // explicit //ctxlint:allow
			}
			findings = append(findings,
				fmt.Sprintf("%s:%d: deprecated ctx-less call %s — use %s", pos.Filename, pos.Line, key, repl))
			return true
		})
	}
	return findings
}

// definingPackage extracts the package path from a deny-list key: the
// import paths in play contain no dots, so everything before the first
// dot past the last slash is the path.
func definingPackage(key string) string {
	base, prefix := key, ""
	if j := strings.LastIndex(key, "/"); j >= 0 {
		prefix, base = key[:j+1], key[j+1:]
	}
	if i := strings.Index(base, "."); i >= 0 {
		base = base[:i]
	}
	return prefix + base
}

// resolve names the called function as defPkgPath.Recv.Method (method)
// or defPkgPath.Func (package-level), or "" when it is neither.
func resolve(sel *ast.SelectorExpr, info *types.Info) string {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	if obj, ok := info.Uses[sel.Sel]; ok {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				return fn.Pkg().Path() + "." + fn.Name()
			}
		}
	}
	return ""
}

// allowedLines collects the lines carrying a //ctxlint:allow comment.
func allowedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "ctxlint:allow") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
