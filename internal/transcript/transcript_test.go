package transcript

import (
	"testing"

	"distmsm/internal/curve"
)

func TestDeterministicAndOrderSensitive(t *testing.T) {
	c, err := curve.ByName("BN254")
	if err != nil {
		t.Fatal(err)
	}
	fr := c.ScalarField

	t1 := New("proto")
	t1.Append("a", []byte{1, 2, 3})
	t1.Append("b", []byte{4})
	c1 := t1.Challenge("x", fr)

	t2 := New("proto")
	t2.Append("a", []byte{1, 2, 3})
	t2.Append("b", []byte{4})
	c2 := t2.Challenge("x", fr)
	if !c1.Equal(c2) {
		t.Fatal("same transcript produced different challenges")
	}

	// Order matters.
	t3 := New("proto")
	t3.Append("b", []byte{4})
	t3.Append("a", []byte{1, 2, 3})
	if t3.Challenge("x", fr).Equal(c1) {
		t.Fatal("reordered transcript collided")
	}

	// Domain separation matters.
	t4 := New("other-proto")
	t4.Append("a", []byte{1, 2, 3})
	t4.Append("b", []byte{4})
	if t4.Challenge("x", fr).Equal(c1) {
		t.Fatal("different domain collided")
	}

	// Message boundaries matter: ("ab", "") vs ("a", "b").
	t5 := New("proto")
	t5.Append("l", []byte("ab"))
	t6 := New("proto")
	t6.Append("l", []byte("a"))
	t6.Append("l", []byte("b"))
	if t5.Challenge("x", fr).Equal(t6.Challenge("x", fr)) {
		t.Fatal("length framing broken")
	}

	// Successive challenges differ (state ratchets).
	t7 := New("proto")
	x1 := t7.Challenge("x", fr)
	x2 := t7.Challenge("x", fr)
	if x1.Equal(x2) {
		t.Fatal("challenge stream repeated")
	}
}
