package kzg

import (
	"context"
	"math/rand"
	"testing"

	"distmsm/internal/bigint"
	"distmsm/internal/core"
	"distmsm/internal/curve"
	"distmsm/internal/field"
	"distmsm/internal/gpusim"
)

func scheme(t testing.TB) *Scheme {
	t.Helper()
	s, err := NewScheme()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randPoly(f *field.Field, rnd *rand.Rand, n int) []field.Element {
	out := make([]field.Element, n)
	for i := range out {
		out[i] = f.Rand(rnd)
	}
	return out
}

func TestCommitOpenVerify(t *testing.T) {
	s := scheme(t)
	rnd := rand.New(rand.NewSource(1))
	srs, err := s.Setup(64, rnd)
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []int{0, 1, 7, 63} {
		p := randPoly(s.Fr, rnd, deg+1)
		com, err := s.Commit(srs, p)
		if err != nil {
			t.Fatal(err)
		}
		z := s.Fr.Rand(rnd)
		y, proof, err := s.Open(srs, p, z)
		if err != nil {
			t.Fatal(err)
		}
		if !y.Equal(evalPoly(s.Fr, p, z)) {
			t.Fatalf("deg %d: opened value wrong", deg)
		}
		ok, err := s.Verify(srs, com, z, y, proof)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("deg %d: valid opening rejected", deg)
		}
		// A wrong evaluation must be rejected.
		bad := s.Fr.NewElement()
		s.Fr.Add(bad, y, s.Fr.One())
		ok, err = s.Verify(srs, com, z, bad, proof)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("deg %d: wrong evaluation accepted", deg)
		}
	}
}

func TestCommitRejectsOversized(t *testing.T) {
	s := scheme(t)
	rnd := rand.New(rand.NewSource(2))
	srs, err := s.Setup(4, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(srs, randPoly(s.Fr, rnd, 7)); err == nil {
		t.Fatal("oversized polynomial accepted")
	}
	if _, err := s.Commit(srs, nil); err == nil {
		t.Fatal("empty polynomial accepted")
	}
	if _, err := s.Setup(0, rnd); err == nil {
		t.Fatal("degree-0 SRS accepted")
	}
}

func TestCommitmentIsBinding(t *testing.T) {
	// Two different polynomials almost surely have different commitments,
	// and the same polynomial always has the same commitment.
	s := scheme(t)
	rnd := rand.New(rand.NewSource(3))
	srs, err := s.Setup(16, rnd)
	if err != nil {
		t.Fatal(err)
	}
	p1 := randPoly(s.Fr, rnd, 10)
	p2 := randPoly(s.Fr, rnd, 10)
	c1, _ := s.Commit(srs, p1)
	c1b, _ := s.Commit(srs, p1)
	c2, _ := s.Commit(srs, p2)
	if !s.P.Curve.EqualAffine(&c1, &c1b) {
		t.Fatal("commitment not deterministic")
	}
	if s.P.Curve.EqualAffine(&c1, &c2) {
		t.Fatal("distinct polynomials collided")
	}
}

func TestBatchOpenVerify(t *testing.T) {
	s := scheme(t)
	rnd := rand.New(rand.NewSource(4))
	srs, err := s.Setup(32, rnd)
	if err != nil {
		t.Fatal(err)
	}
	polys := [][]field.Element{
		randPoly(s.Fr, rnd, 5),
		randPoly(s.Fr, rnd, 20),
		randPoly(s.Fr, rnd, 33),
	}
	coms := make([]curve.PointAffine, len(polys))
	for i, p := range polys {
		c, err := s.Commit(srs, p)
		if err != nil {
			t.Fatal(err)
		}
		coms[i] = c
	}
	z := s.Fr.Rand(rnd)
	ys, proof, err := s.BatchOpen(srs, polys, z)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.BatchVerify(srs, coms, z, ys, proof)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid batch opening rejected")
	}
	// Tampering with any evaluation breaks the batch.
	s.Fr.Add(ys[1], ys[1], s.Fr.One())
	ok, err = s.BatchVerify(srs, coms, z, ys, proof)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tampered batch accepted")
	}
	// Arity errors.
	if _, err := s.BatchVerify(srs, coms[:1], z, ys, proof); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, _, err := s.BatchOpen(srs, nil, z); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Committing through the simulated multi-GPU DistMSM engine: same
// commitment, modeled GPU cost recorded.
func TestCommitViaDistMSM(t *testing.T) {
	s := scheme(t)
	rnd := rand.New(rand.NewSource(5))
	srs, err := s.Setup(128, rnd)
	if err != nil {
		t.Fatal(err)
	}
	p := randPoly(s.Fr, rnd, 129)
	cpuCom, err := s.Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := gpusim.NewCluster(gpusim.A100(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var modeled float64
	s.MSM = func(points []curve.PointAffine, scalars []bigint.Nat) (*curve.PointXYZZ, error) {
		res, err := core.RunContext(context.Background(), s.P.Curve, cl, points, scalars, core.Options{WindowSize: 8})
		if err != nil {
			return nil, err
		}
		modeled += res.Cost.Total()
		return res.Point, nil
	}
	gpuCom, err := s.Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.P.Curve.EqualAffine(&cpuCom, &gpuCom) {
		t.Fatal("DistMSM commitment differs from CPU commitment")
	}
	if modeled <= 0 {
		t.Fatal("no modeled GPU time recorded")
	}
}

func BenchmarkCommit(b *testing.B) {
	s := scheme(b)
	rnd := rand.New(rand.NewSource(6))
	srs, err := s.Setup(1<<10, rnd)
	if err != nil {
		b.Fatal(err)
	}
	p := randPoly(s.Fr, rnd, 1<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Commit(srs, p); err != nil {
			b.Fatal(err)
		}
	}
}
